package cbn

import (
	"fmt"
	"sort"

	"cosmos/internal/obs"
	"cosmos/internal/overlay"
	"cosmos/internal/profile"
	"cosmos/internal/stream"
)

// Assumed wire overheads (bytes) for message accounting; the simulator is
// what the paper itself used to evaluate the CBN ("The CBN is simulated
// in the experiments", §5).
const (
	DataHeaderBytes   = 16
	AdvertBytes       = 32
	SubscribeBaseSize = 48
	ConstraintBytes   = 24
	AttrNameBytes     = 12
)

// LinkStats accumulates traffic counters for one undirected overlay link.
type LinkStats struct {
	A, B    int
	DelayMs float64
	// DataBytes / DataMsgs count tuple traffic; CtrlBytes / CtrlMsgs
	// count advertisements and subscriptions.
	DataBytes int64
	DataMsgs  int64
	CtrlBytes int64
	CtrlMsgs  int64
}

// linkKey orders a node pair canonically.
type linkKey struct{ a, b int }

func mkLinkKey(a, b int) linkKey {
	if a > b {
		a, b = b, a
	}
	return linkKey{a, b}
}

// SimClient is an endpoint attached to a broker in a SimNet: a source, a
// processor, or a user proxy.
type SimClient struct {
	net   *SimNet
	Node  int
	iface IfaceID
	// OnTuple receives tuples delivered to this client (nil to discard).
	OnTuple func(stream.Tuple)
}

// Iface returns the broker interface this client occupies — needed to
// withdraw subscriptions via Broker.Unsubscribe.
func (c *SimClient) Iface() IfaceID { return c.iface }

// SetOnTuple installs the delivery callback, mirroring LiveClient so the
// system layer can assemble against either transport.
func (c *SimClient) SetOnTuple(fn func(stream.Tuple)) { c.OnTuple = fn }

// Close stops delivery to this client, mirroring LiveClient (SimClients
// hold no resources beyond the callback).
func (c *SimClient) Close() { c.OnTuple = nil }

// endpoint describes where one broker interface leads.
type endpoint struct {
	isClient bool
	client   *SimClient
	peerNode int
	link     linkKey
}

// event is one in-flight message.
type event struct {
	node  int
	from  IfaceID
	kind  int // 0 data, 1 subscribe, 2 advertise
	tuple stream.Tuple
	prof  *profile.Profile
	name  string
}

// SimNet is a deterministic, synchronous CBN over an overlay: messages
// are processed in FIFO order until quiescence, and per-link traffic is
// accounted. It is single-threaded by design (determinism for the
// experiments); LiveNet provides the concurrent variant.
type SimNet struct {
	brokers   []*Broker
	endpoints []map[IfaceID]endpoint
	nextIface []IfaceID
	links     map[linkKey]*LinkStats
	// queue/qhead form a FIFO with an explicit head index: consuming an
	// event advances qhead instead of re-slicing, so a long cascade does
	// not strand the consumed prefix behind the slice header, and the
	// backing array is reused once drained.
	queue []event
	qhead int
	// reverse maps an outgoing (node, iface) to the arrival iface on the
	// peer broker.
	reverse map[route]IfaceID
	// metrics, when non-nil, observes the route stage (nil-safe).
	metrics *obs.Metrics
	// ctrlErr retains the first control-plane drain failure (advert or
	// subscription cascade), since Advertise/Subscribe have no error
	// return; Err surfaces it instead of letting it vanish.
	ctrlErr error
}

// Err reports the first control-plane failure (a failed advertisement
// or subscription flood) observed by this network, or nil.
func (n *SimNet) Err() error { return n.ctrlErr }

// SetMetrics attaches the observability hub; each broker routing hop
// counts one route-stage event (sampled for latency) against it.
func (n *SimNet) SetMetrics(m *obs.Metrics) { n.metrics = m }

// NewSimNet builds a network of n brokers with no links.
func NewSimNet(n int) *SimNet {
	net := &SimNet{
		brokers:   make([]*Broker, n),
		endpoints: make([]map[IfaceID]endpoint, n),
		nextIface: make([]IfaceID, n),
		links:     map[linkKey]*LinkStats{},
		reverse:   map[route]IfaceID{},
	}
	for i := 0; i < n; i++ {
		net.brokers[i] = NewBroker(i)
		net.endpoints[i] = map[IfaceID]endpoint{}
	}
	return net
}

// NewSimNetFromTree builds a network whose links mirror a dissemination
// tree's edges.
func NewSimNetFromTree(t *overlay.Tree) *SimNet {
	net := NewSimNet(t.NumNodes())
	for v := 0; v < t.NumNodes(); v++ {
		if v == t.Root {
			continue
		}
		net.AddLink(v, t.Parent[v], t.LinkDelay[v])
	}
	return net
}

// NumNodes returns the broker count.
func (n *SimNet) NumNodes() int { return len(n.brokers) }

// Broker exposes a node's broker (for tests and inspection).
func (n *SimNet) Broker(node int) *Broker { return n.brokers[node] }

// allocIface claims the next interface ID on a node.
func (n *SimNet) allocIface(node int) IfaceID {
	id := n.nextIface[node]
	n.nextIface[node]++
	n.brokers[node].AttachIface(id)
	return id
}

// AddLink joins two brokers with an undirected overlay link.
func (n *SimNet) AddLink(a, b int, delayMs float64) {
	key := mkLinkKey(a, b)
	if _, dup := n.links[key]; dup {
		return
	}
	n.links[key] = &LinkStats{A: key.a, B: key.b, DelayMs: delayMs}
	ia := n.allocIface(a)
	ib := n.allocIface(b)
	n.endpoints[a][ia] = endpoint{peerNode: b, link: key}
	n.endpoints[b][ib] = endpoint{peerNode: a, link: key}
	// Remember the reverse interface for delivery addressing.
	n.reverse[route{a, ia}] = ib
	n.reverse[route{b, ib}] = ia
}

type route struct {
	node  int
	iface IfaceID
}

// AttachClient attaches a client endpoint to a node.
func (n *SimNet) AttachClient(node int) *SimClient {
	c := &SimClient{net: n, Node: node, iface: n.allocIface(node)}
	n.endpoints[node][c.iface] = endpoint{isClient: true, client: c}
	return c
}

// Advertise announces a stream from this client's node; the advert floods
// the overlay.
func (c *SimClient) Advertise(streamName string) {
	c.net.enqueue(event{node: c.Node, from: c.iface, kind: 2, name: streamName})
	if err := c.net.drain(); err != nil && c.net.ctrlErr == nil {
		c.net.ctrlErr = err
	}
}

// Subscribe submits a data-interest profile from this client.
func (c *SimClient) Subscribe(p *profile.Profile) {
	c.net.enqueue(event{node: c.Node, from: c.iface, kind: 1, prof: p})
	if err := c.net.drain(); err != nil && c.net.ctrlErr == nil {
		c.net.ctrlErr = err
	}
}

// Publish injects a datagram from this client.
func (c *SimClient) Publish(t stream.Tuple) error {
	c.net.enqueue(event{node: c.Node, from: c.iface, kind: 0, tuple: t})
	return c.net.drain()
}

func (n *SimNet) enqueue(e event) { n.queue = append(n.queue, e) }

// drainCompactThreshold is the consumed-prefix length past which drain
// compacts mid-cascade; a variable so tests can lower it.
var drainCompactThreshold = 1024

// drain processes queued events to quiescence.
func (n *SimNet) drain() error {
	for n.qhead < len(n.queue) {
		// Compact once the consumed prefix dominates the queue, bounding
		// memory during unboundedly long cascades.
		if n.qhead >= drainCompactThreshold && n.qhead*2 >= len(n.queue) {
			n.compactQueue()
		}
		e := n.queue[n.qhead]
		n.queue[n.qhead] = event{} // release tuple/profile references
		n.qhead++
		if err := n.process(e); err != nil {
			n.compactQueue()
			return err
		}
	}
	n.queue = n.queue[:0]
	n.qhead = 0
	return nil
}

// compactQueue drops the consumed prefix, keeping pending events.
func (n *SimNet) compactQueue() {
	if n.qhead == 0 {
		return
	}
	m := copy(n.queue, n.queue[n.qhead:])
	for i := m; i < len(n.queue); i++ {
		n.queue[i] = event{}
	}
	n.queue = n.queue[:m]
	n.qhead = 0
}

func (n *SimNet) process(e event) error {
	b := n.brokers[e.node]
	switch e.kind {
	case 0: // data
		start := n.metrics.StageStart(obs.StageRoute)
		deliveries, err := b.RouteTuple(e.tuple, e.from)
		n.metrics.StageEnd(obs.StageRoute, start)
		n.metrics.TraceMark(int64(e.tuple.Ts), obs.StageRoute)
		if err != nil {
			return err
		}
		for _, d := range deliveries {
			ep, ok := n.endpoints[e.node][d.Iface]
			if !ok {
				return fmt.Errorf("cbn: node %d has no endpoint for iface %d", e.node, d.Iface)
			}
			if ep.isClient {
				if ep.client.OnTuple != nil {
					ep.client.OnTuple(d.Tuple)
				}
				continue
			}
			ls := n.links[ep.link]
			ls.DataMsgs++
			ls.DataBytes += int64(d.Tuple.WireSize() + DataHeaderBytes)
			n.enqueue(event{node: ep.peerNode, from: n.peerIface(e.node, d.Iface), kind: 0, tuple: d.Tuple})
		}
	case 1: // subscribe
		for _, fw := range b.HandleSubscribe(e.prof, e.from) {
			ep := n.endpoints[e.node][fw.Iface]
			if ep.isClient {
				continue // clients do not route subscriptions
			}
			ls := n.links[ep.link]
			ls.CtrlMsgs++
			ls.CtrlBytes += int64(profileWireSize(fw.Prof))
			n.enqueue(event{node: ep.peerNode, from: n.peerIface(e.node, fw.Iface), kind: 1, prof: fw.Prof})
		}
	case 2: // advertise
		adverts, subs := b.HandleAdvertise(e.name, e.from)
		for _, a := range adverts {
			ep := n.endpoints[e.node][a.Iface]
			if ep.isClient {
				continue
			}
			ls := n.links[ep.link]
			ls.CtrlMsgs++
			ls.CtrlBytes += int64(AdvertBytes + len(a.Stream))
			n.enqueue(event{node: ep.peerNode, from: n.peerIface(e.node, a.Iface), kind: 2, name: a.Stream})
		}
		for _, fw := range subs {
			ep := n.endpoints[e.node][fw.Iface]
			if ep.isClient {
				continue
			}
			ls := n.links[ep.link]
			ls.CtrlMsgs++
			ls.CtrlBytes += int64(profileWireSize(fw.Prof))
			n.enqueue(event{node: ep.peerNode, from: n.peerIface(e.node, fw.Iface), kind: 1, prof: fw.Prof})
		}
	}
	return nil
}

// peerIface resolves the arrival interface on the peer for a message sent
// out of (node, iface).
func (n *SimNet) peerIface(node int, iface IfaceID) IfaceID {
	return n.reverse[route{node, iface}]
}

// SetCatalog installs a stream catalog on every broker as the
// schema-drift guard for compiled routing.
func (n *SimNet) SetCatalog(reg *stream.Registry) {
	for _, b := range n.brokers {
		b.SetCatalog(reg)
	}
}

// PruneStream garbage-collects a retired stream's state on every broker
// (simulating the TTL expiry of a long-running deployment).
func (n *SimNet) PruneStream(name string) {
	for _, b := range n.brokers {
		b.PruneStream(name)
	}
}

// Stats returns per-link counters sorted by (A, B).
func (n *SimNet) Stats() []*LinkStats {
	out := make([]*LinkStats, 0, len(n.links))
	for _, ls := range n.links {
		out = append(out, ls)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].A != out[j].A {
			return out[i].A < out[j].A
		}
		return out[i].B < out[j].B
	})
	return out
}

// TotalDataBytes sums tuple traffic over all links.
func (n *SimNet) TotalDataBytes() int64 {
	var total int64
	for _, ls := range n.links {
		total += ls.DataBytes
	}
	return total
}

// WeightedDataCost sums bytes × link delay over all links: the
// communication cost metric of the evaluation.
func (n *SimNet) WeightedDataCost() float64 {
	total := 0.0
	for _, ls := range n.links {
		total += float64(ls.DataBytes) * ls.DelayMs
	}
	return total
}

// profileWireSize estimates a subscription message's size.
func profileWireSize(p *profile.Profile) int {
	size := SubscribeBaseSize
	for _, s := range p.Streams {
		size += len(s)
		if attrs := p.AttrsFor(s); attrs != nil {
			size += AttrNameBytes * len(attrs)
		}
		for _, cj := range p.FilterFor(s) {
			size += ConstraintBytes * len(cj)
		}
	}
	return size
}
