package topology

import (
	"math"
	"testing"
)

func TestGeneratePowerLawBasics(t *testing.T) {
	g, err := GeneratePowerLaw(1000, 2, 42)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 1000 {
		t.Fatalf("nodes = %d", g.NumNodes())
	}
	// Seed clique (m+1 choose 2) + m per additional node.
	wantEdges := 3 + (1000-3)*2
	if g.NumEdges() != wantEdges {
		t.Errorf("edges = %d, want %d", g.NumEdges(), wantEdges)
	}
	if !g.Connected() {
		t.Error("BA graphs are connected by construction")
	}
}

func TestGeneratePowerLawHeavyTail(t *testing.T) {
	g, err := GeneratePowerLaw(1000, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Power-law graphs have hubs: max degree far above the minimum m.
	if g.MaxDegree() < 20 {
		t.Errorf("max degree = %d, expected a heavy tail", g.MaxDegree())
	}
	// Most nodes have small degree.
	h := g.DegreeHistogram()
	small := 0
	for d, c := range h {
		if d <= 4 {
			small += c
		}
	}
	if small < 600 {
		t.Errorf("only %d nodes with degree <= 4; distribution not skewed", small)
	}
}

func TestGeneratePowerLawDeterminism(t *testing.T) {
	a, _ := GeneratePowerLaw(200, 2, 7)
	b, _ := GeneratePowerLaw(200, 2, 7)
	if a.NumEdges() != b.NumEdges() {
		t.Fatal("same seed must give same graph")
	}
	for i := range a.Nodes {
		if a.Nodes[i] != b.Nodes[i] || a.Degree(i) != b.Degree(i) {
			t.Fatalf("node %d differs across same-seed runs", i)
		}
	}
	c, _ := GeneratePowerLaw(200, 2, 8)
	same := true
	for i := range a.Nodes {
		if a.Degree(i) != c.Degree(i) {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds should give different graphs")
	}
}

func TestGeneratePowerLawErrors(t *testing.T) {
	if _, err := GeneratePowerLaw(2, 2, 1); err == nil {
		t.Error("n <= m should fail")
	}
	if _, err := GeneratePowerLaw(10, 0, 1); err == nil {
		t.Error("m < 1 should fail")
	}
}

func TestDelayRange(t *testing.T) {
	g, _ := GeneratePowerLaw(100, 2, 3)
	for i := range g.Nodes {
		for _, e := range g.Adj[i] {
			if e.Delay < MinDelayMs || e.Delay > MaxDelayMs {
				t.Fatalf("delay %f out of range", e.Delay)
			}
		}
	}
}

func TestDelaySymmetric(t *testing.T) {
	g, _ := GeneratePowerLaw(100, 2, 3)
	for i := range g.Nodes {
		for _, e := range g.Adj[i] {
			back, ok := g.DelayBetween(e.To, i)
			if !ok || math.Abs(back-e.Delay) > 1e-12 {
				t.Fatalf("asymmetric link %d-%d", i, e.To)
			}
		}
	}
}

func TestGenerateWaxman(t *testing.T) {
	g, err := GenerateWaxman(300, 0.15, 0.2, 11)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 300 {
		t.Fatalf("nodes = %d", g.NumNodes())
	}
	if !g.Connected() {
		t.Error("Waxman graphs are patched to be connected")
	}
	if _, err := GenerateWaxman(1, 0.5, 0.5, 1); err == nil {
		t.Error("n < 2 should fail")
	}
	if _, err := GenerateWaxman(10, 0, 0.5, 1); err == nil {
		t.Error("alpha <= 0 should fail")
	}
}

func TestWaxmanLocality(t *testing.T) {
	// Waxman links should be biased towards short distances.
	g, _ := GenerateWaxman(400, 0.1, 0.12, 5)
	var sum float64
	var count int
	for i := range g.Nodes {
		for _, e := range g.Adj[i] {
			if e.To > i {
				sum += e.Delay
				count++
			}
		}
	}
	avg := sum / float64(count)
	// Uniform random pairs average ~0.52 of the max distance → ~52 ms;
	// Waxman with small beta should sit well below that.
	if avg > 45 {
		t.Errorf("average link delay %f suggests no locality bias", avg)
	}
}

func TestDelayBetweenMissing(t *testing.T) {
	g, _ := GeneratePowerLaw(10, 2, 1)
	// Find a non-adjacent pair.
	for i := 0; i < g.NumNodes(); i++ {
		for j := 0; j < g.NumNodes(); j++ {
			if i != j && !g.hasEdge(i, j) {
				if _, ok := g.DelayBetween(i, j); ok {
					t.Fatal("DelayBetween reported a missing edge")
				}
				return
			}
		}
	}
}
