package cosmos

import (
	"context"
	"sync"

	"cosmos/internal/cbn"
	"cosmos/internal/core"
	"cosmos/internal/obs"
)

// Client is the transport-agnostic session surface of a COSMOS
// deployment: one programming model whether the system runs embedded in
// this process over the deterministic SimNet (Embed), embedded over the
// concurrent LiveNet (EmbedLive), or in a remote cosmosd daemon reached
// over TCP (Dial). The paper's point — consumers express interest
// through one profile abstraction regardless of where the query runs —
// carried onto the API: the same session code drives all three
// deployments, and the three backends deliver identical per-query result
// sequences for the same workload.
//
// A Client is safe for concurrent use on every backend (the
// synchronous SimNet backend serialises its session operations
// internally to honour the single-threaded network's discipline).
// Close tears down the client's sessions
// (every Subscription ends, every Source stops accepting); it
// does not stop an embedded deployment, whose owner keeps that
// responsibility (LiveSystem.Close), and for a remote deployment it
// closes only this connection, never the daemon.
type Client interface {
	// RegisterStream attaches a data source at an overlay node: the
	// schema floods into the catalog, the stream is advertised through
	// the CBN, and the returned Source publishes its tuples.
	RegisterStream(info *StreamInfo, node int) (Source, error)

	// Source returns the publish port of an already-registered stream —
	// the session-level counterpart of RegisterStream for processes
	// that publish into streams another session registered (the CBN
	// decouples the two: sources publish without knowing consumers, and
	// registration is one session's act on the shared catalog).
	Source(name string) (Source, error)

	// Submit registers the CQL continuous query on behalf of a user
	// attached at userNode and returns its live Subscription. The
	// subscription ends when ctx is done, Cancel is called, the client
	// closes, or the server side ends it (e.g. graceful daemon
	// shutdown); a nil ctx means background.
	Submit(ctx context.Context, cql string, userNode int) (*Subscription, error)

	// Catalog lists the deployment's registered streams — sources and
	// live result streams — sorted by name.
	Catalog() ([]*StreamInfo, error)

	// Stats snapshots deployment statistics: query/processor counts,
	// per-processor load, and per-link network counters (the same shape
	// on SimNet and LiveNet). Under live traffic the snapshot is not a
	// consistent cut; Quiesce first for exact readouts.
	Stats() (SystemStats, error)

	// Quiesce blocks until no tuple is in flight anywhere in the
	// deployment. It is a stabilisation barrier for tests, experiment
	// readouts and control-plane settling (subscription propagation is
	// asynchronous on concurrent transports) — never a data-path step:
	// results stream continuously without it. Only meaningful while no
	// source is concurrently publishing.
	Quiesce() error

	// Close ends every subscription opened through this client (their
	// Results channels close after draining) and releases the client's
	// resources. Idempotent.
	Close() error
}

// Source publishes one registered source stream into the data layer.
// Implementations are safe for concurrent use when the underlying
// transport is (LiveNet, TCP); on the synchronous SimNet the
// single-threaded network imposes single-caller discipline.
type Source interface {
	// Stream returns the source's stream name.
	Stream() string
	// Schema returns the stream's schema — what Publish validates
	// tuples against and what callers need to build them.
	Schema() *Schema
	// Publish injects one tuple of the source's stream.
	Publish(t Tuple) error
}

// SystemStats is the deployment statistics snapshot Client.Stats
// reports — identical shape on every backend.
type SystemStats = core.SystemStats

// LinkStats holds one overlay link's traffic counters (data and control
// plane), accounted on both the simulated and the live network.
type LinkStats = cbn.LinkStats

// Observability surface: the per-stage / per-plan / per-worker series
// carried inside SystemStats (identical shape on every backend, gob-
// shipped verbatim over the TCP transport), plus the tuple-trace
// records retained when Options.Obs.TraceEvery > 0.
type (
	// StageStats is one data-path stage's series: total event count and
	// the sampled latency histogram (ingest, route, exec, deliver, wire).
	StageStats = obs.StageStats
	// HistSnapshot is a mergeable log-linear latency histogram snapshot;
	// Quantile(0.5|0.99|0.9999) reads p50/p99/p99.99.
	HistSnapshot = obs.HistSnapshot
	// PlanStats is one installed plan's execution series plus the
	// queries it serves.
	PlanStats = core.PlanStats
	// WorkerStats is one exec worker's queue gauge and throughput.
	WorkerStats = core.WorkerStats
	// WireStats is the TCP result path's series (daemon side only).
	WireStats = obs.WireStats
	// ObsOptions configures sampling and tracing (Options.Obs).
	ObsOptions = obs.Options
	// Trace is one sampled tuple's per-stage latency breakdown.
	Trace = obs.Trace
)

// Subscription is one live continuous query's result session. Results
// arrive on the Results channel in delivery order (per query, the total
// emission order of its plan — identical across backends for the same
// workload). The channel is fed through an elastic buffer, so a slow
// consumer never blocks the deployment's data path; it closes after the
// subscription ends AND the buffer has drained, at which point Err
// reports the terminal status.
//
// Consumers MUST drain Results until it closes — ranging over the
// channel does this naturally, and SubmitFunc does it for callback
// consumers. After Cancel (or context cancellation, client Close,
// server-side end) the already-buffered results are still delivered
// before the channel closes; a consumer that abandons the channel
// without draining parks the subscription's delivery goroutine and its
// buffer for the process lifetime.
type Subscription struct {
	out  chan Tuple
	done chan struct{} // closed when the pump exits (out is closed)

	// cancel is the backend hook tearing the query down; runs at most
	// once.
	cancel     func() error
	cancelOnce sync.Once
	cancelErr  error

	mu    sync.Mutex
	cond  *sync.Cond
	tag   string
	queue []Tuple
	gaps  []Gap
	ended bool
	err   error
}

// newSubscription builds a subscription and starts its delivery pump.
// The backend feeds it via push and terminates it via end; cancel is
// installed by the backend before the subscription is returned to the
// user.
func newSubscription() *Subscription {
	s := &Subscription{out: make(chan Tuple, 64), done: make(chan struct{})}
	s.cond = sync.NewCond(&s.mu)
	go s.pump()
	return s
}

// Tag returns the query tag identifying this subscription in the
// deployment (the result stream carries the same name).
func (s *Subscription) Tag() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.tag
}

func (s *Subscription) setTag(tag string) {
	s.mu.Lock()
	s.tag = tag
	s.mu.Unlock()
}

// Results returns the result channel. It closes after the subscription
// ends and every buffered result has been delivered.
func (s *Subscription) Results() <-chan Tuple { return s.out }

// Err returns the terminal status once Results has closed: nil after a
// clean end (Cancel, context cancellation, client Close, graceful
// server shutdown), the cause otherwise (e.g. a lost connection).
// Before the channel closes — including while buffered results are
// still draining after the terminating event — it returns nil.
func (s *Subscription) Err() error {
	select {
	case <-s.done:
	default:
		return nil // still delivering; no terminal status yet
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// Cancel tears the query down. Buffered results still drain to the
// Results channel, which then closes. Idempotent; safe after the client
// closed (the teardown is then already done and Cancel reports nil).
func (s *Subscription) Cancel() error {
	s.cancelOnce.Do(func() {
		s.mu.Lock()
		ended := s.ended
		s.mu.Unlock()
		// An already-ended subscription (client Close, server-side end)
		// needs no backend teardown: Cancel is then a clean no-op.
		if !ended && s.cancel != nil {
			s.cancelErr = s.cancel()
		}
		s.end(nil)
	})
	return s.cancelErr
}

// Gaps reports the delivery gaps a resilient connection (Dial with
// WithResilience) recorded on this subscription: one entry per
// reconnect that lost results. Always empty on embedded backends and
// fail-fast connections. Safe to call at any time; the slice is a
// snapshot in reconnect order.
func (s *Subscription) Gaps() []Gap {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Gap, len(s.gaps))
	copy(out, s.gaps)
	return out
}

// addGap records a delivery gap (resilient remote backend only).
func (s *Subscription) addGap(g Gap) {
	s.mu.Lock()
	s.gaps = append(s.gaps, g)
	s.mu.Unlock()
}

// push enqueues one result; never blocks (the queue is elastic).
// Deliveries after the subscription ended are dropped.
func (s *Subscription) push(t Tuple) {
	s.mu.Lock()
	if !s.ended {
		s.queue = append(s.queue, t)
		s.cond.Signal()
	}
	s.mu.Unlock()
}

// end marks the subscription terminated; the first cause wins. The pump
// drains what is queued and closes the channel.
func (s *Subscription) end(err error) {
	s.mu.Lock()
	if !s.ended {
		s.ended = true
		s.err = err
		s.cond.Signal()
	}
	s.mu.Unlock()
}

// pump is the delivery loop: it moves batches from the elastic queue to
// the consumer channel, and closes the channel once the subscription has
// ended and the queue is dry.
func (s *Subscription) pump() {
	for {
		s.mu.Lock()
		for len(s.queue) == 0 && !s.ended {
			s.cond.Wait()
		}
		batch := s.queue
		s.queue = nil
		ended := s.ended
		s.mu.Unlock()
		for _, t := range batch {
			s.out <- t
		}
		if ended {
			s.mu.Lock()
			drained := len(s.queue) == 0
			s.mu.Unlock()
			if drained {
				// done first: a consumer unblocked by the channel
				// close must observe the terminal status via Err.
				close(s.done)
				close(s.out)
				return
			}
		}
	}
}

// watchContext cancels the subscription when ctx ends; the watcher
// goroutine exits with the subscription.
func (s *Subscription) watchContext(ctx context.Context) {
	if ctx == nil || ctx.Done() == nil {
		return
	}
	go func() {
		select {
		case <-ctx.Done():
			_ = s.Cancel()
		case <-s.done:
		}
	}()
}

// SubmitFunc is the callback form of Client.Submit, kept as a thin
// adapter over the Subscription session: a goroutine drains the result
// channel into fn (per-query order preserved; fn runs on that single
// goroutine) until the subscription ends.
func SubmitFunc(ctx context.Context, c Client, cql string, userNode int, fn func(Tuple)) (*Subscription, error) {
	sub, err := c.Submit(ctx, cql, userNode)
	if err != nil {
		return nil, err
	}
	go func() {
		for t := range sub.Results() {
			fn(t)
		}
	}()
	return sub, nil
}
