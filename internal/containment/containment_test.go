package containment

import (
	"testing"

	"cosmos/internal/cql"
	"cosmos/internal/stream"
)

func catalog() *stream.Registry {
	r := stream.NewRegistry()
	infos := []*stream.Info{
		{Schema: stream.MustSchema("OpenAuction",
			stream.Field{Name: "itemID", Kind: stream.KindInt},
			stream.Field{Name: "sellerID", Kind: stream.KindInt},
			stream.Field{Name: "start_price", Kind: stream.KindFloat},
			stream.Field{Name: "timestamp", Kind: stream.KindTime},
		), Rate: 50},
		{Schema: stream.MustSchema("ClosedAuction",
			stream.Field{Name: "itemID", Kind: stream.KindInt},
			stream.Field{Name: "buyerID", Kind: stream.KindInt},
			stream.Field{Name: "timestamp", Kind: stream.KindTime},
		), Rate: 30},
		{Schema: stream.MustSchema("Sensor",
			stream.Field{Name: "station", Kind: stream.KindInt},
			stream.Field{Name: "temp", Kind: stream.KindFloat},
		), Rate: 10},
	}
	for _, in := range infos {
		if err := r.Register(in); err != nil {
			panic(err)
		}
	}
	return r
}

func bind(t *testing.T, text string) *cql.Bound {
	t.Helper()
	b, err := cql.AnalyzeString(text, catalog())
	if err != nil {
		t.Fatalf("%s: %v", text, err)
	}
	return b
}

// The paper's running example: q1 (3-hour window, O.*) and q2 (5-hour
// window, 4 columns) are both contained in q3 (5-hour window, O.* plus
// buyer columns).
const (
	q1Text = `SELECT O.* FROM OpenAuction [Range 3 Hour] O, ClosedAuction [Now] C WHERE O.itemID = C.itemID`
	q2Text = `SELECT O.itemID, O.timestamp, C.buyerID, C.timestamp FROM OpenAuction [Range 5 Hour] O, ClosedAuction [Now] C WHERE O.itemID = C.itemID`
	q3Text = `SELECT O.*, C.buyerID, C.timestamp FROM OpenAuction [Range 5 Hour] O, ClosedAuction [Now] C WHERE O.itemID = C.itemID`
)

func TestPaperTable1Containment(t *testing.T) {
	q1, q2, q3 := bind(t, q1Text), bind(t, q2Text), bind(t, q3Text)
	if !Contains(q1, q3) {
		t.Errorf("q1 should be contained in q3: %v", Explain(q1, q3))
	}
	if !Contains(q2, q3) {
		t.Errorf("q2 should be contained in q3: %v", Explain(q2, q3))
	}
	if Contains(q3, q1) {
		t.Error("q3 must not be contained in q1 (wider window, wider projection)")
	}
	if Contains(q1, q2) {
		t.Error("q1 is not contained in q2 (q2 projects fewer attributes)")
	}
}

func TestWindowConditionSPJ(t *testing.T) {
	narrow := bind(t, q1Text)
	wide := bind(t, `SELECT O.* FROM OpenAuction [Range 5 Hour] O, ClosedAuction [Now] C WHERE O.itemID = C.itemID`)
	if !Contains(narrow, wide) {
		t.Errorf("3h should be contained in 5h: %v", Explain(narrow, wide))
	}
	if Contains(wide, narrow) {
		t.Error("5h must not be contained in 3h")
	}
	unbounded := bind(t, `SELECT O.* FROM OpenAuction O, ClosedAuction [Now] C WHERE O.itemID = C.itemID`)
	if !Contains(wide, unbounded) {
		t.Error("bounded should be contained in unbounded")
	}
	if Contains(unbounded, wide) {
		t.Error("unbounded must not be contained in bounded")
	}
}

func TestSelectionCondition(t *testing.T) {
	tight := bind(t, `SELECT itemID FROM OpenAuction [Now] WHERE start_price > 100`)
	loose := bind(t, `SELECT itemID FROM OpenAuction [Now] WHERE start_price > 10`)
	if !Contains(tight, loose) {
		t.Errorf("tighter selection should be contained: %v", Explain(tight, loose))
	}
	if Contains(loose, tight) {
		t.Error("looser selection must not be contained")
	}
}

func TestDifferentStreamsNeverContained(t *testing.T) {
	a := bind(t, `SELECT itemID FROM OpenAuction [Now]`)
	b := bind(t, `SELECT station FROM Sensor [Now]`)
	if Contains(a, b) || Contains(b, a) {
		t.Error("different streams must not be contained")
	}
}

func TestDifferentJoinsNeverContained(t *testing.T) {
	a := bind(t, `SELECT O.itemID FROM OpenAuction [Now] O, ClosedAuction [Now] C WHERE O.itemID = C.itemID`)
	b := bind(t, `SELECT O.itemID FROM OpenAuction [Now] O, ClosedAuction [Now] C WHERE O.sellerID = C.buyerID`)
	if Contains(a, b) || Contains(b, a) {
		t.Error("different join predicates must not be contained")
	}
}

func TestAggregateTheorem2(t *testing.T) {
	a := bind(t, `SELECT station, AVG(temp) FROM Sensor [Range 30 Minute] GROUP BY station`)
	same := bind(t, `SELECT station, AVG(temp) FROM Sensor [Range 30 Minute] GROUP BY station`)
	widerWin := bind(t, `SELECT station, AVG(temp) FROM Sensor [Range 60 Minute] GROUP BY station`)
	otherAgg := bind(t, `SELECT station, MAX(temp) FROM Sensor [Range 30 Minute] GROUP BY station`)

	if !Contains(a, same) || !Contains(same, a) {
		t.Error("identical aggregates should be mutually contained")
	}
	// Theorem 2 requires EQUAL windows: a 30-minute average is not part
	// of a 60-minute average.
	if Contains(a, widerWin) || Contains(widerWin, a) {
		t.Error("aggregate windows must match exactly")
	}
	if Contains(a, otherAgg) || Contains(otherAgg, a) {
		t.Error("different aggregate functions are never contained")
	}
}

func TestAggregateSelectionCondition(t *testing.T) {
	tight := bind(t, `SELECT station, AVG(temp) FROM Sensor [Range 30 Minute] WHERE temp > 20 GROUP BY station`)
	loose := bind(t, `SELECT station, AVG(temp) FROM Sensor [Range 30 Minute] WHERE temp > 10 GROUP BY station`)
	// Grouped aggregates over different input subsets produce different
	// aggregate VALUES, not subsets of rows, so implication of selections
	// is not enough: containment demands equivalence for aggregates.
	if Contains(tight, loose) || Contains(loose, tight) {
		t.Error("aggregates with different selections are never contained")
	}
	sameSel := bind(t, `SELECT station, AVG(temp) FROM Sensor [Range 30 Minute] WHERE temp >= 20 GROUP BY station`)
	tightEquiv := bind(t, `SELECT station, AVG(temp) FROM Sensor [Range 30 Minute] WHERE temp >= 20 GROUP BY station`)
	if !Contains(sameSel, tightEquiv) {
		t.Errorf("equivalent aggregate selections should be contained: %v", Explain(sameSel, tightEquiv))
	}
}

func TestResidualCondition(t *testing.T) {
	// Queries with residual (cross-stream) predicates.
	tight := bind(t, `SELECT O.itemID FROM OpenAuction [Range 5 Hour] O, ClosedAuction [Now] C WHERE O.itemID = C.itemID AND (O.start_price > 50 OR C.buyerID = 3)`)
	loose := bind(t, `SELECT O.itemID FROM OpenAuction [Range 5 Hour] O, ClosedAuction [Now] C WHERE O.itemID = C.itemID AND (O.start_price > 10 OR C.buyerID = 3)`)
	if !Contains(tight, loose) {
		t.Errorf("tighter residual should be contained: %v", Explain(tight, loose))
	}
	if Contains(loose, tight) {
		t.Error("looser residual must not be contained")
	}
}

func TestEquivalentQueriesDifferentAliases(t *testing.T) {
	a := bind(t, q1Text)
	b := bind(t, `SELECT X.* FROM OpenAuction [Range 3 Hour] X, ClosedAuction [Now] Y WHERE X.itemID = Y.itemID`)
	if !Equivalent(a, b) {
		t.Errorf("alias choice must not affect containment: %v", Explain(a, b))
	}
}

func TestExplainReasons(t *testing.T) {
	q1, q3 := bind(t, q1Text), bind(t, q3Text)
	r := Explain(q1, q3)
	if !r.Contained || r.Reason == "" {
		t.Errorf("positive result should carry a reason: %+v", r)
	}
	r = Explain(q3, q1)
	if r.Contained || r.Reason == "" {
		t.Errorf("negative result should carry a reason: %+v", r)
	}
}
