// Package guardneg is the lockguard false-positive regression guard:
// every access pattern here is correctly locked or legitimately exempt,
// so the analyzer must stay silent.
package guardneg

import "sync"

type counter struct {
	mu sync.Mutex
	// n is guarded by mu.
	n int

	rw sync.RWMutex
	// m is guarded by rw.
	m map[string]int
}

func lockedWrite(c *counter) {
	c.mu.Lock()
	c.n = 1
	c.mu.Unlock()
}

func lockedReadWrite(c *counter) int {
	c.rw.Lock()
	defer c.rw.Unlock()
	c.m["x"]++
	return c.m["x"]
}

func rlockRead(c *counter) int {
	c.rw.RLock()
	defer c.rw.RUnlock()
	return c.m["x"]
}

// bumpLocked inherits the caller's critical section by convention.
func bumpLocked(c *counter) {
	c.n++
}

// bumpHeld requires that the caller must hold c.mu.
func bumpHeld(c *counter) {
	c.n++
}

// readHeld reads both guarded fields. Callers hold c.mu and c.rw.
func readHeld(c *counter) int {
	return c.n + c.m["x"]
}

// newCounter initialises guarded fields before the value is shared.
func newCounter() *counter {
	c := &counter{}
	c.n = 7
	c.m = map[string]int{}
	return c
}

// newCounterVar uses var + new; equally unpublished.
func newCounterVar() *counter {
	var c = new(counter)
	c.n = 1
	return c
}

func twoBases(a, b *counter) int {
	a.mu.Lock()
	b.mu.Lock()
	defer a.mu.Unlock()
	defer b.mu.Unlock()
	return a.n + b.n
}

// unguarded fields need no evidence.
type plain struct {
	mu sync.Mutex
	k  int
}

func freeAccess(p *plain) int {
	p.k = 2
	return p.k
}
