package obs

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// TraceEvent is one stage mark on a traced tuple's path. At is
// nanoseconds on the package monotonic clock (compare to Trace.Start).
type TraceEvent struct {
	Stage string
	At    int64
}

// Trace follows one sampled tuple from Source.Publish onward. Key is
// the tuple's application timestamp (stream.Tuple.Ts), which survives
// plan execution for select/project plans and result delivery — so a
// trace typically shows ingest → route* → exec → deliver [→ wire].
// Operators that synthesise new timestamps (aggregate windows, joins
// taking the max of their inputs) break the key chain; such traces end
// at the last stage that saw the original timestamp. Route appears once
// per broker hop.
type Trace struct {
	Key    int64 // application timestamp of the traced tuple
	Stream string
	Start  int64 // Now() at sampling (in Source.Publish)
	Events []TraceEvent
}

// End returns the offset from Start to the last recorded event, or 0
// for an event-less trace.
func (t Trace) End() time.Duration {
	if len(t.Events) == 0 {
		return 0
	}
	return time.Duration(t.Events[len(t.Events)-1].At - t.Start)
}

// StageSpan is one entry of a trace's per-stage latency breakdown.
type StageSpan struct {
	Stage  string
	Offset time.Duration // elapsed from Trace.Start to this mark
}

// Breakdown stitches the trace's events into per-stage offsets from
// publish, in event order — the per-tuple latency breakdown.
func (t Trace) Breakdown() []StageSpan {
	out := make([]StageSpan, len(t.Events))
	for i, e := range t.Events {
		out[i] = StageSpan{Stage: e.Stage, Offset: time.Duration(e.At - t.Start)}
	}
	return out
}

// tracer is the sampled-tuple tracing engine inside Metrics. When
// disabled (every == 0) the mark path is a single immutable field test.
// When enabled, sampling stays systematic (every N-th publish, phase
// set by the seed) so runs are reproducible, and the active set is a
// bounded FIFO keyed by tuple timestamp.
type tracer struct {
	every int64 // immutable after init; 0 = off
	cap   int
	tick  atomic.Int64

	mu     sync.Mutex
	active map[int64]*Trace // guarded by mu
	order  []int64          // guarded by mu; insertion order for FIFO eviction
}

func (tr *tracer) init(o Options) {
	tr.every = int64(o.TraceEvery)
	if tr.every < 0 {
		tr.every = 0
	}
	tr.cap = o.TraceCap
	if tr.cap <= 0 {
		tr.cap = 256
	}
	if tr.every > 0 {
		tr.tick.Store(o.TraceSeed % tr.every)
		//lint:ignore lockguard init runs inside New before the Metrics pointer is published; no concurrent access exists yet
		tr.active = make(map[int64]*Trace)
	}
}

// TraceSample ticks the trace sampler for one published tuple and, when
// the tuple is chosen, opens a trace for it. Call once per
// Source.Publish, before the publish proper.
//
//cosmos:hotpath
func (m *Metrics) TraceSample(key int64, stream string) {
	if m == nil || m.tracer.every == 0 {
		return
	}
	tr := &m.tracer
	if tr.tick.Add(1)%tr.every != 0 {
		return
	}
	t := &Trace{Key: key, Stream: stream, Start: Now()}
	tr.mu.Lock()
	if _, dup := tr.active[key]; !dup {
		if len(tr.order) >= tr.cap {
			evict := tr.order[0]
			tr.order = tr.order[1:]
			delete(tr.active, evict)
		}
		tr.active[key] = t
		tr.order = append(tr.order, key)
	}
	tr.mu.Unlock()
}

// TraceMark records stage s on the trace of the tuple keyed by key, if
// that tuple is being traced. When tracing is off this is one field
// test — cheap enough for every hot-path call site.
//
//cosmos:hotpath
func (m *Metrics) TraceMark(key int64, s Stage) {
	if m == nil || m.tracer.every == 0 {
		return
	}
	tr := &m.tracer
	now := Now()
	tr.mu.Lock()
	if t := tr.active[key]; t != nil {
		t.Events = append(t.Events, TraceEvent{Stage: s.String(), At: now})
	}
	tr.mu.Unlock()
}

// TraceOn reports whether tracing is enabled.
//
//cosmos:hotpath
func (m *Metrics) TraceOn() bool { return m != nil && m.tracer.every > 0 }

// Traces snapshots the retained traces, oldest first. Event slices are
// copied; the result is safe to hold.
func (m *Metrics) Traces() []Trace {
	if m == nil || m.tracer.every == 0 {
		return nil
	}
	tr := &m.tracer
	tr.mu.Lock()
	out := make([]Trace, 0, len(tr.order))
	for _, key := range tr.order {
		if t := tr.active[key]; t != nil {
			c := *t
			c.Events = append([]TraceEvent(nil), t.Events...)
			out = append(out, c)
		}
	}
	tr.mu.Unlock()
	sort.SliceStable(out, func(i, j int) bool { return out[i].Start < out[j].Start })
	return out
}
