package querygen

import (
	"math"
	"math/rand"
	"testing"

	"cosmos/internal/predicate"
	"cosmos/internal/sensordata"
	"cosmos/internal/stream"
)

func TestZipfUniformDegenerate(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	z, err := NewZipf(rng, 0, 10)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, 10)
	const N = 100000
	for i := 0; i < N; i++ {
		counts[z.Draw()]++
	}
	for k, c := range counts {
		p := float64(c) / N
		if math.Abs(p-0.1) > 0.01 {
			t.Errorf("uniform draw %d has p=%f", k, p)
		}
	}
}

func TestZipfSkewConcentrates(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, s := range []float64{1.0, 1.5, 2.0} {
		z, err := NewZipf(rng, s, 63)
		if err != nil {
			t.Fatal(err)
		}
		counts := make([]int, 63)
		const N = 50000
		for i := 0; i < N; i++ {
			counts[z.Draw()]++
		}
		// Rank 0 must dominate and the mass of the top-5 must grow with s.
		if counts[0] < counts[1] || counts[1] < counts[5] {
			t.Errorf("s=%f: not rank-decreasing: %v", s, counts[:8])
		}
		top5 := 0
		for k := 0; k < 5; k++ {
			top5 += counts[k]
		}
		minShare := map[float64]float64{1.0: 0.4, 1.5: 0.7, 2.0: 0.85}[s]
		if share := float64(top5) / N; share < minShare {
			t.Errorf("s=%f: top-5 share %f below %f", s, share, minShare)
		}
	}
}

func TestZipfTheoreticalRatios(t *testing.T) {
	// For s=1, P(0)/P(1) = 2.
	rng := rand.New(rand.NewSource(3))
	z, _ := NewZipf(rng, 1.0, 100)
	counts := make([]int, 100)
	const N = 200000
	for i := 0; i < N; i++ {
		counts[z.Draw()]++
	}
	ratio := float64(counts[0]) / float64(counts[1])
	if ratio < 1.8 || ratio > 2.2 {
		t.Errorf("P(0)/P(1) = %f, want ≈2", ratio)
	}
}

func TestZipfErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := NewZipf(rng, 1, 0); err == nil {
		t.Error("n=0 should fail")
	}
	if _, err := NewZipf(rng, -1, 5); err == nil {
		t.Error("negative s should fail")
	}
}

func TestGeneratorProducesValidQueries(t *testing.T) {
	reg := stream.NewRegistry()
	if err := sensordata.RegisterAll(reg); err != nil {
		t.Fatal(err)
	}
	for _, dist := range PaperDistributions() {
		g, err := New(Config{Dist: dist, Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		bound, err := g.BindBatch(200, reg)
		if err != nil {
			t.Fatalf("%s: %v", dist.Name, err)
		}
		if len(bound) != 200 {
			t.Fatalf("%s: got %d queries", dist.Name, len(bound))
		}
		for _, b := range bound {
			if len(b.From) != 1 {
				t.Fatalf("unexpected multi-stream query")
			}
			if b.Sel[b.From[0].Alias].IsTrue() {
				t.Fatalf("query without filter: %s", b.Raw)
			}
		}
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	g1, _ := New(Config{Dist: Zipf15, Seed: 11})
	g2, _ := New(Config{Dist: Zipf15, Seed: 11})
	a, b := g1.Batch(50), g2.Batch(50)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("query %d differs across same-seed runs", i)
		}
	}
}

func TestSkewIncreasesDuplicateQueries(t *testing.T) {
	count := func(dist Distribution) int {
		g, _ := New(Config{Dist: dist, Seed: 5})
		seen := map[string]int{}
		for _, q := range g.Batch(2000) {
			seen[q]++
		}
		return len(seen)
	}
	uniform := count(Uniform)
	skewed := count(Zipf20)
	if skewed >= uniform {
		t.Errorf("zipf2 should repeat templates: distinct uniform=%d zipf2=%d", uniform, skewed)
	}
}

func TestPaperDistributionsOrder(t *testing.T) {
	ds := PaperDistributions()
	if len(ds) != 4 || ds[0].Name != "uniform" || ds[3].Name != "zipf2" {
		t.Errorf("distributions = %v", ds)
	}
}

func TestJoinFractionGeneratesBindableJoins(t *testing.T) {
	reg := stream.NewRegistry()
	if err := sensordata.RegisterAll(reg); err != nil {
		t.Fatal(err)
	}
	g, err := New(Config{Dist: Zipf10, Seed: 9, JoinFraction: 1})
	if err != nil {
		t.Fatal(err)
	}
	bound, err := g.BindBatch(60, reg)
	if err != nil {
		t.Fatal(err)
	}
	equi, nonEqui := 0, 0
	for _, b := range bound {
		if len(b.From) != 2 {
			t.Fatalf("JoinFraction=1 generated a non-join: %s", b.Raw)
		}
		if b.From[0].Stream != b.From[1].Stream {
			t.Fatalf("self-join expected: %s", b.Raw)
		}
		if len(b.Joins) == 0 {
			t.Fatalf("join query without join predicate: %s", b.Raw)
		}
		hasEq := false
		for _, j := range b.Joins {
			if j.Op == predicate.EQ {
				hasEq = true
			}
		}
		if hasEq {
			equi++
		} else {
			nonEqui++
		}
	}
	if equi == 0 || nonEqui == 0 {
		t.Errorf("join menu should mix equi and non-equi shapes: equi=%d nonEqui=%d", equi, nonEqui)
	}
}
