// Package ft implements the two fault-tolerance layers of COSMOS (paper
// §2): "The module at the query layer is responsible for recovering the
// processing of queries from failures, while the one at the data layer
// is targeted at providing highly available data transmission service."
//
// Data layer:
//
//   - Retransmitter/Receiver give each overlay link sequenced,
//     acknowledged delivery with a bounded replay buffer, so transient
//     loss is repaired by NACK-driven retransmission;
//   - RepairTree re-attaches the orphaned subtrees of a failed broker to
//     their nearest surviving ancestor and reports which subscriptions
//     must be re-issued.
//
// Query layer:
//
//   - Checkpointer periodically snapshots plan state (window buffers,
//     watermark — see spe.Snapshot);
//   - Failover re-places a failed processor's queries on survivors and
//     restores the latest checkpoint.
package ft

import (
	"fmt"
	"sort"
	"sync"

	"cosmos/internal/overlay"
	"cosmos/internal/stream"
)

// Seq is a per-link monotonically increasing sequence number.
type Seq uint64

// Frame is one sequenced datagram on a link.
type Frame struct {
	Seq   Seq
	Tuple stream.Tuple
}

// Retransmitter is the sender side of one reliable link: it assigns
// sequence numbers and keeps unacknowledged frames for replay, bounded
// by Window frames (older unacked frames are dropped — the horizon a
// receiver can recover from).
type Retransmitter struct {
	mu     sync.Mutex
	next   Seq     // guarded by mu
	buf    []Frame // guarded by mu; unacked, ascending seq
	Window int
}

// NewRetransmitter builds a sender with the given replay window
// (default 1024 when window <= 0).
func NewRetransmitter(window int) *Retransmitter {
	if window <= 0 {
		window = 1024
	}
	return &Retransmitter{Window: window, next: 1}
}

// Send assigns the next sequence number and retains the frame.
func (r *Retransmitter) Send(t stream.Tuple) Frame {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := Frame{Seq: r.next, Tuple: t}
	r.next++
	r.buf = append(r.buf, f)
	if len(r.buf) > r.Window {
		r.buf = r.buf[len(r.buf)-r.Window:]
	}
	return f
}

// Ack discards frames up to and including seq.
func (r *Retransmitter) Ack(seq Seq) {
	r.mu.Lock()
	defer r.mu.Unlock()
	i := sort.Search(len(r.buf), func(i int) bool { return r.buf[i].Seq > seq })
	r.buf = append(r.buf[:0], r.buf[i:]...)
}

// Replay returns the retained frames in (from, to]; it errors when the
// range has already been evicted (the receiver must resubscribe).
func (r *Retransmitter) Replay(from, to Seq) ([]Frame, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.buf) > 0 && from+1 < r.buf[0].Seq {
		return nil, fmt.Errorf("ft: frames up to %d evicted (oldest retained %d)", from, r.buf[0].Seq)
	}
	var out []Frame
	for _, f := range r.buf {
		if f.Seq > from && f.Seq <= to {
			out = append(out, f)
		}
	}
	return out, nil
}

// Pending returns the number of unacknowledged frames.
func (r *Retransmitter) Pending() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.buf)
}

// Receiver is the receiving side: it detects gaps and emits NACK ranges.
type Receiver struct {
	mu   sync.Mutex
	last Seq // guarded by mu
}

// Gap describes missing sequence numbers (exclusive from, inclusive to).
type Gap struct{ From, To Seq }

// Accept processes an arriving frame. It returns whether the frame is
// new (not a duplicate) and, when a gap precedes it, the NACK range to
// request.
func (rc *Receiver) Accept(f Frame) (fresh bool, gap *Gap) {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	switch {
	case f.Seq <= rc.last:
		return false, nil // duplicate or replayed frame already seen
	case f.Seq == rc.last+1:
		rc.last = f.Seq
		return true, nil
	default:
		g := &Gap{From: rc.last, To: f.Seq - 1}
		rc.last = f.Seq
		return true, g
	}
}

// Last returns the highest sequence number seen, the low-water mark for
// acknowledgements.
func (rc *Receiver) Last() Seq {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	return rc.last
}

// RepairResult describes a tree repair.
type RepairResult struct {
	// NewParent maps each orphaned child to its replacement parent.
	NewParent map[int]int
	// Resubscribe lists the nodes whose subscriptions must be re-issued
	// toward the new parent (the orphaned subtree roots).
	Resubscribe []int
}

// RepairTree removes a failed node from a dissemination tree, attaching
// its children to the failed node's parent (their nearest surviving
// ancestor). The root cannot be repaired this way — electing a new root
// is a control-plane decision — so failing the root returns an error.
// delayFn supplies overlay delays for the new links.
func RepairTree(t *overlay.Tree, failed int, delayFn func(a, b int) float64) (*RepairResult, error) {
	if failed == t.Root {
		return nil, fmt.Errorf("ft: cannot repair failure of the tree root")
	}
	if failed < 0 || failed >= t.NumNodes() {
		return nil, fmt.Errorf("ft: node %d out of range", failed)
	}
	parent := t.Parent[failed]
	res := &RepairResult{NewParent: map[int]int{}}
	children := append([]int(nil), t.Children[failed]...)
	for _, c := range children {
		// Re-attach c under the failed node's parent.
		t.Parent[c] = parent
		t.LinkDelay[c] = delayFn(c, parent)
		t.Children[parent] = append(t.Children[parent], c)
		res.NewParent[c] = parent
		res.Resubscribe = append(res.Resubscribe, c)
	}
	// Detach the failed node.
	for i, c := range t.Children[parent] {
		if c == failed {
			t.Children[parent] = append(t.Children[parent][:i], t.Children[parent][i+1:]...)
			break
		}
	}
	t.Children[failed] = nil
	t.Parent[failed] = -1
	sort.Ints(res.Resubscribe)
	return res, nil
}
