// Package drop seeds errdrop violations; the analyzer must catch every
// one (see the // want expectations).
package drop

import (
	"errors"
	"fmt"
	"io"
)

func fail() error { return errors.New("boom") }

func failPair() (int, error) { return 0, errors.New("boom") }

type conn struct{}

func (conn) Close() error { return nil }

func drops(c conn, f func() error) {
	fail()     // want "fail returns an error that is silently dropped"
	failPair() // want "failPair returns an error that is silently dropped"
	c.Close()  // want "Close returns an error that is silently dropped"
	f()        // want "f returns an error that is silently dropped"
}

// The infallible-writer exemption must not leak to arbitrary writers.
func realWriter(w io.Writer) {
	fmt.Fprintf(w, "x") // want "Fprintf returns an error that is silently dropped"
}

func ignoredWithReason(c conn) {
	// Best-effort cleanup on the teardown path.
	//lint:ignore errdrop close errors after FIN are uninformative
	c.Close()
}
