package load

import (
	"testing"
	"time"
)

// TestPacerHoldsSchedule pins the open-loop property: tick i's intended
// offset is exactly i*interval, fixed at construction, independent of
// how long the caller took between ticks.
func TestPacerHoldsSchedule(t *testing.T) {
	p := NewPacer(100000) // 10µs interval: fast enough to run 200 ticks instantly
	for i := int64(0); i < 200; i++ {
		if got, want := p.Tick(), time.Duration(i)*p.interval; got != want {
			t.Fatalf("tick %d: intended offset %v, want %v", i, got, want)
		}
	}
	if p.Ticks() != 200 {
		t.Fatalf("Ticks() = %d, want 200", p.Ticks())
	}
	if got := p.Offered(); got != 100000 {
		t.Fatalf("Offered() = %v, want 100000", got)
	}
	if lag := p.LagSnapshot(); lag.Count != 200 {
		t.Fatalf("lag histogram holds %d observations, want one per tick", lag.Count)
	}
}

// TestPacerCoordinatedOmissionGuard pins the harness's central
// measurement claim: a stalled driver can only make the numbers worse,
// never better. After a stall the schedule is NOT re-planned — the next
// tick still carries its original intended offset — so the stall
// surfaces as recorded scheduling lag and, through the intended-offset
// latency stamp, as inflated delivery latency.
func TestPacerCoordinatedOmissionGuard(t *testing.T) {
	const stall = 80 * time.Millisecond
	p := NewPacer(2000) // 500µs interval
	rec := NewRecorder(p.Start())
	track := rec.NewTrack(1)

	for i := 0; i < 5; i++ {
		p.Tick()
	}
	time.Sleep(stall) // the consumer wedges; the schedule does not care

	intended := p.Tick()
	if want := time.Duration(5) * p.interval; intended != want {
		t.Fatalf("post-stall tick rescheduled: intended offset %v, want %v", intended, want)
	}
	// The stall is on the record: scheduling lag for the late tick is
	// roughly the stall length (generous lower bound for slow machines).
	if lag := p.LagSnapshot(); time.Duration(lag.Max) < stall/2 {
		t.Fatalf("scheduling lag max %v does not surface the %v stall", time.Duration(lag.Max), stall)
	}
	// A tuple published now but stamped with its intended offset carries
	// the backlog into end-to-end latency.
	rec.Observe(track, 0, int64(intended), -1)
	if lat := rec.LatencySnapshot(); time.Duration(lat.Max) < stall/2 {
		t.Fatalf("delivery latency max %v does not surface the %v stall", time.Duration(lat.Max), stall)
	}
	if svc := rec.SvcSnapshot(); svc.Count != 0 {
		t.Fatalf("service latency recorded %d observations despite actNanos < 0", svc.Count)
	}
}

// TestPacerShift pins the announced-pause escape hatch: Shift re-anchors
// the schedule so a deliberate control-plane pause is excluded from lag
// accounting (it is reported as a shift instead), while the intended
// offsets keep advancing past the pause on the run's time axis.
func TestPacerShift(t *testing.T) {
	const pause = 200 * time.Millisecond
	p := NewPacer(1000)
	p.Tick()
	time.Sleep(pause)
	p.Shift()

	intended := p.Tick()
	if p.Shifts() != 1 {
		t.Fatalf("Shifts() = %d, want 1", p.Shifts())
	}
	// The re-anchored tick is due immediately: its lag must be far below
	// the pause it would otherwise have absorbed.
	if lag := p.LagSnapshot(); time.Duration(lag.Max) > pause/2 {
		t.Fatalf("lag max %v: Shift failed to exclude the %v pause", time.Duration(lag.Max), pause)
	}
	// The pause stays visible on the intended-offset axis: the schedule
	// jumped forward, it was not silently compressed.
	if intended < pause*3/4 {
		t.Fatalf("post-shift intended offset %v hides the %v pause", intended, pause)
	}
}
