package exec_test

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"cosmos/internal/cql"
	"cosmos/internal/exec"
	"cosmos/internal/querygen"
	"cosmos/internal/sensordata"
	"cosmos/internal/spe"
	"cosmos/internal/stream"
)

// workload is a randomized querygen mix (select, self-join equi and
// non-equi, aggregate) plus the tuple trace driving it — the same shape
// as the spe compiled-path differential.
type workload struct {
	reg    *stream.Registry
	bounds []*cql.Bound
	tuples []stream.Tuple
}

const workloadStations = 5

func buildWorkload(t *testing.T, queries, rounds int) *workload {
	t.Helper()
	reg := stream.NewRegistry()
	if err := sensordata.RegisterAll(reg); err != nil {
		t.Fatal(err)
	}
	gen, err := querygen.New(querygen.Config{
		Dist:         querygen.Zipf10,
		Seed:         23,
		Streams:      workloadStations,
		AggFraction:  0.3,
		JoinFraction: 0.3,
		WindowMenu: []stream.Duration{
			2 * stream.Minute, 5 * stream.Minute, 10 * stream.Minute,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	bounds, err := gen.BindBatch(queries, reg)
	if err != nil {
		t.Fatal(err)
	}
	gens := make([]*sensordata.Generator, workloadStations)
	for s := range gens {
		gens[s] = sensordata.NewGenerator(s, int64(s+1))
	}
	var tuples []stream.Tuple
	for round := 0; round < rounds; round++ {
		for s := range gens {
			tuples = append(tuples, gens[s].Next())
		}
	}
	return &workload{reg: reg, bounds: bounds, tuples: tuples}
}

func planID(i int) string { return fmt.Sprintf("q%03d", i) }

// runReference drives the sequential spe.Engine over the workload and
// returns the rendered global emission sequence.
func runReference(t *testing.T, w *workload) []string {
	t.Helper()
	var out []string
	eng := spe.NewEngine(func(tp stream.Tuple) { out = append(out, tp.String()) })
	for i, b := range w.bounds {
		if _, err := eng.Install(planID(i), b, "res"+planID(i)); err != nil {
			t.Fatalf("install %d (%s): %v", i, b.Raw, err)
		}
	}
	for _, tp := range w.tuples {
		if err := eng.Consume(tp); err != nil {
			t.Fatalf("reference consume: %v", err)
		}
	}
	return out
}

// collector gathers runtime emissions; safe for concurrent emit.
type collector struct {
	mu  sync.Mutex
	out []string
}

func (c *collector) emit(t stream.Tuple) {
	c.mu.Lock()
	c.out = append(c.out, t.String())
	c.mu.Unlock()
}

func (c *collector) rendered() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]string(nil), c.out...)
}

func installAll(t *testing.T, rt *exec.Runtime, w *workload) {
	t.Helper()
	for i, b := range w.bounds {
		if _, err := rt.Install(planID(i), b, "res"+planID(i)); err != nil {
			t.Fatalf("install %d: %v", i, err)
		}
	}
}

func diffSequences(t *testing.T, ctx string, got, want []string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d emissions, reference %d", ctx, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: emission %d differs:\nruntime:   %s\nreference: %s", ctx, i, got[i], want[i])
		}
	}
}

// byPlan groups a rendered emission sequence by result stream (one per
// plan), preserving order within each plan.
func byPlan(seq []string) map[string][]string {
	out := map[string][]string{}
	for _, s := range seq {
		name := s
		if i := strings.IndexByte(s, '@'); i >= 0 {
			name = s[:i]
		}
		out[name] = append(out[name], s)
	}
	return out
}

// TestRuntimeDifferentialQuerygen is the keystone differential test of
// the execution runtime: over a randomized querygen workload the
// runtime must reproduce the pre-existing sequential engine —
// byte-identical globally in synchronous and single-worker modes, and
// byte-identical per plan in sharded mode, at batch sizes 1, 16 and 64.
func TestRuntimeDifferentialQuerygen(t *testing.T) {
	w := buildWorkload(t, 40, 90)
	want := runReference(t, w)
	if len(want) == 0 {
		t.Fatal("reference emitted nothing; differential is vacuous")
	}

	t.Run("sync", func(t *testing.T) {
		var c collector
		rt := exec.New(exec.Config{Emit: c.emit})
		defer rt.Close()
		installAll(t, rt, w)
		for _, tp := range w.tuples {
			if err := rt.Consume(tp); err != nil {
				t.Fatalf("consume: %v", err)
			}
		}
		diffSequences(t, "sync", c.rendered(), want)
	})

	for _, batch := range []int{16, 64} {
		t.Run(fmt.Sprintf("sync-batch%d", batch), func(t *testing.T) {
			var c collector
			rt := exec.New(exec.Config{Emit: c.emit})
			defer rt.Close()
			installAll(t, rt, w)
			for i := 0; i < len(w.tuples); i += batch {
				j := i + batch
				if j > len(w.tuples) {
					j = len(w.tuples)
				}
				if err := rt.ConsumeBatch(w.tuples[i:j]); err != nil {
					t.Fatalf("consume batch: %v", err)
				}
			}
			diffSequences(t, "sync-batch", c.rendered(), want)
		})
	}

	// One worker: all plans share a FIFO shard, so even the global
	// emission order must reproduce the sequential engine.
	t.Run("workers1", func(t *testing.T) {
		var c collector
		rt := exec.New(exec.Config{Workers: 1, Emit: c.emit})
		defer rt.Close()
		installAll(t, rt, w)
		for _, tp := range w.tuples {
			if err := rt.Consume(tp); err != nil {
				t.Fatalf("consume: %v", err)
			}
		}
		rt.Barrier()
		diffSequences(t, "workers1", c.rendered(), want)
	})

	// Sharded: per-plan sequences must match the reference exactly;
	// cross-plan interleaving is unconstrained.
	for _, cfg := range []struct {
		workers, batch int
	}{{3, 1}, {3, 16}, {4, 64}} {
		name := fmt.Sprintf("workers%d-batch%d", cfg.workers, cfg.batch)
		t.Run(name, func(t *testing.T) {
			var c collector
			rt := exec.New(exec.Config{Workers: cfg.workers, Emit: c.emit})
			defer rt.Close()
			installAll(t, rt, w)
			for i := 0; i < len(w.tuples); i += cfg.batch {
				j := i + cfg.batch
				if j > len(w.tuples) {
					j = len(w.tuples)
				}
				if err := rt.ConsumeBatch(w.tuples[i:j]); err != nil {
					t.Fatalf("consume batch: %v", err)
				}
			}
			rt.Barrier()
			got := byPlan(c.rendered())
			ref := byPlan(want)
			if len(got) != len(ref) {
				t.Fatalf("%s: %d emitting plans, reference %d", name, len(got), len(ref))
			}
			plans := make([]string, 0, len(ref))
			for p := range ref {
				plans = append(plans, p)
			}
			sort.Strings(plans)
			for _, p := range plans {
				diffSequences(t, name+"/"+p, got[p], ref[p])
			}
		})
	}
}

// TestRuntimeErrorParity: a tuple whose schema drifted under a stream
// name (missing a needed attribute) must produce the same error as the
// sequential engine in synchronous mode, and surface through OnError —
// with the failing plan's ID — in both modes.
func TestRuntimeErrorParity(t *testing.T) {
	reg := stream.NewRegistry()
	full := stream.MustSchema("S",
		stream.Field{Name: "a", Kind: stream.KindInt},
		stream.Field{Name: "b", Kind: stream.KindInt},
	)
	if err := reg.Register(&stream.Info{Schema: full, Rate: 1}); err != nil {
		t.Fatal(err)
	}
	b, err := cql.AnalyzeString("SELECT a FROM S [Now] WHERE b > 0", reg)
	if err != nil {
		t.Fatal(err)
	}
	// Same stream name, but the attribute the plan needs is gone.
	drifted := stream.MustSchema("S", stream.Field{Name: "a", Kind: stream.KindInt})
	bad := stream.MustTuple(drifted, 1, stream.Int(1))

	eng := spe.NewEngine(nil)
	if _, err := eng.Install("p0", b, "res"); err != nil {
		t.Fatal(err)
	}
	refErr := eng.Consume(bad)
	if refErr == nil {
		t.Fatal("reference engine accepted drifted tuple")
	}

	var gotPlan string
	var gotErr error
	rt := exec.New(exec.Config{OnError: func(id string, err error) { gotPlan, gotErr = id, err }})
	defer rt.Close()
	if _, err := rt.Install("p0", b, "res"); err != nil {
		t.Fatal(err)
	}
	err = rt.Consume(bad)
	if err == nil || err.Error() != refErr.Error() {
		t.Fatalf("sync error = %v, reference %v", err, refErr)
	}
	if gotPlan != "p0" || gotErr == nil || gotErr.Error() != refErr.Error() {
		t.Fatalf("OnError = (%q, %v), want (p0, %v)", gotPlan, gotErr, refErr)
	}

	// Sharded: the error surfaces via OnError only, and other plans keep
	// running.
	var mu sync.Mutex
	var asyncPlans []string
	var emitted int
	rtA := exec.New(exec.Config{
		Workers: 2,
		Emit: func(stream.Tuple) {
			mu.Lock()
			emitted++
			mu.Unlock()
		},
		OnError: func(id string, err error) {
			mu.Lock()
			asyncPlans = append(asyncPlans, id)
			mu.Unlock()
		},
	})
	defer rtA.Close()
	if _, err := rtA.Install("p0", b, "res0"); err != nil {
		t.Fatal(err)
	}
	ok, err := cql.AnalyzeString("SELECT a FROM S [Now]", reg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rtA.Install("p1", ok, "res1"); err != nil {
		t.Fatal(err)
	}
	if err := rtA.Consume(bad); err != nil {
		t.Fatalf("sharded Consume returned %v; errors should flow to OnError", err)
	}
	rtA.Barrier()
	mu.Lock()
	defer mu.Unlock()
	if len(asyncPlans) != 1 || asyncPlans[0] != "p0" {
		t.Fatalf("async OnError plans = %v", asyncPlans)
	}
	if emitted != 1 {
		t.Fatalf("plan p1 emitted %d results, want 1 (drifted tuple still has attribute a)", emitted)
	}
}

// TestWithPlanQuiescesOnlyTarget: holding one plan captured must not
// block consumption for plans on other workers.
func TestWithPlanQuiescesOnlyTarget(t *testing.T) {
	reg := stream.NewRegistry()
	if err := sensordata.RegisterAll(reg); err != nil {
		t.Fatal(err)
	}
	qa, err := cql.AnalyzeString("SELECT station FROM Sensor00 [Now]", reg)
	if err != nil {
		t.Fatal(err)
	}
	qb, err := cql.AnalyzeString("SELECT station FROM Sensor01 [Now]", reg)
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var emitted []string
	rt := exec.New(exec.Config{Workers: 2, Emit: func(tp stream.Tuple) {
		mu.Lock()
		emitted = append(emitted, tp.Schema.Stream)
		mu.Unlock()
	}})
	defer rt.Close()
	// Install order pins A to worker 0, B to worker 1.
	if _, err := rt.Install("A", qa, "resA"); err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Install("B", qb, "resB"); err != nil {
		t.Fatal(err)
	}

	holdA := make(chan struct{})
	captured := make(chan struct{})
	go rt.WithPlan("A", func(*spe.Plan) {
		close(captured)
		<-holdA
	})
	<-captured

	// With A held, B must keep consuming and draining.
	done := make(chan struct{})
	go func() {
		defer close(done)
		gen := sensordata.NewGenerator(1, 7)
		for i := 0; i < 64; i++ {
			rt.Consume(gen.Next())
		}
		rt.Drain("B")
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("consumption for plan B blocked while plan A was captured")
	}
	close(holdA)
	rt.Barrier()
	mu.Lock()
	defer mu.Unlock()
	if len(emitted) != 64 {
		t.Fatalf("plan B emitted %d results, want 64", len(emitted))
	}
}

// TestDispatchNoMatchAllocationFree: a tuple of a stream no plan
// consumes must cost zero allocations on the dispatch path, in both
// modes — the dispatch table is precomputed at Install/Remove time.
func TestDispatchNoMatchAllocationFree(t *testing.T) {
	reg := stream.NewRegistry()
	if err := sensordata.RegisterAll(reg); err != nil {
		t.Fatal(err)
	}
	b, err := cql.AnalyzeString("SELECT station FROM Sensor00 [Now]", reg)
	if err != nil {
		t.Fatal(err)
	}
	noMatch := sensordata.NewGenerator(3, 1).Next() // Sensor03: no plans

	for _, workers := range []int{0, 2} {
		rt := exec.New(exec.Config{Workers: workers})
		for i := 0; i < 4; i++ {
			if _, err := rt.Install(fmt.Sprintf("p%d", i), b, fmt.Sprintf("r%d", i)); err != nil {
				t.Fatal(err)
			}
		}
		if allocs := testing.AllocsPerRun(200, func() {
			if err := rt.Consume(noMatch); err != nil {
				t.Fatal(err)
			}
		}); allocs != 0 {
			t.Errorf("workers=%d: no-match Consume allocates %.1f/op, want 0", workers, allocs)
		}
		rt.Close()
	}

	// The sequential engine's dispatch is equally allocation-free now
	// that the per-stream plan lists are maintained at Install time.
	eng := spe.NewEngine(nil)
	if _, err := eng.Install("p0", b, "r0"); err != nil {
		t.Fatal(err)
	}
	if allocs := testing.AllocsPerRun(200, func() {
		if err := eng.Consume(noMatch); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Errorf("engine: no-match Consume allocates %.1f/op, want 0", allocs)
	}
}

// TestReplaceDrainsQueuedTuples: replacing a plan in sharded mode must
// drain the plan's worker queue first, so tuples enqueued before the
// replacement reach the OLD plan — the sequential engine's semantics.
func TestReplaceDrainsQueuedTuples(t *testing.T) {
	reg := stream.NewRegistry()
	if err := sensordata.RegisterAll(reg); err != nil {
		t.Fatal(err)
	}
	b, err := cql.AnalyzeString("SELECT station FROM Sensor00 [Now]", reg)
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	counts := map[string]int{}
	rt := exec.New(exec.Config{Workers: 1, Emit: func(tp stream.Tuple) {
		mu.Lock()
		counts[tp.Schema.Stream]++
		mu.Unlock()
	}})
	defer rt.Close()
	if _, err := rt.Install("A", b, "resOld"); err != nil {
		t.Fatal(err)
	}
	// Hold the plan's lock so tuples pile up in the worker queue.
	held := make(chan struct{})
	release := make(chan struct{})
	go rt.WithPlan("A", func(*spe.Plan) {
		close(held)
		<-release
	})
	<-held
	gen := sensordata.NewGenerator(0, 4)
	for i := 0; i < 9; i++ {
		if err := rt.Consume(gen.Next()); err != nil {
			t.Fatal(err)
		}
	}
	// Replace while 9 tuples are queued: Install must not swap before
	// they reach the old plan.
	installed := make(chan error, 1)
	go func() {
		_, err := rt.Install("A", b, "resNew")
		installed <- err
	}()
	close(release)
	if err := <-installed; err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := rt.Consume(gen.Next()); err != nil {
			t.Fatal(err)
		}
	}
	rt.Barrier()
	mu.Lock()
	defer mu.Unlock()
	if counts["resOld"] != 9 || counts["resNew"] != 3 {
		t.Fatalf("emissions = %v, want resOld:9 resNew:3", counts)
	}
}

// TestConsumeBatchContinuesPastErrors: a failing tuple inside a batch
// must not drop the tuples after it — ConsumeBatch matches per-tuple
// Consume semantics, returning the first error.
func TestConsumeBatchContinuesPastErrors(t *testing.T) {
	reg := stream.NewRegistry()
	full := stream.MustSchema("S",
		stream.Field{Name: "a", Kind: stream.KindInt},
		stream.Field{Name: "b", Kind: stream.KindInt},
	)
	if err := reg.Register(&stream.Info{Schema: full, Rate: 1}); err != nil {
		t.Fatal(err)
	}
	bound, err := cql.AnalyzeString("SELECT a FROM S [Now] WHERE b > 0", reg)
	if err != nil {
		t.Fatal(err)
	}
	drifted := stream.MustSchema("S", stream.Field{Name: "a", Kind: stream.KindInt})
	good := func(ts int64) stream.Tuple {
		return stream.MustTuple(full, stream.Timestamp(ts), stream.Int(1), stream.Int(1))
	}
	var c collector
	var errMu sync.Mutex
	var errIDs []string
	rt := exec.New(exec.Config{Emit: c.emit, OnError: func(id string, err error) {
		errMu.Lock()
		errIDs = append(errIDs, id)
		errMu.Unlock()
	}})
	defer rt.Close()
	if _, err := rt.Install("p0", bound, "res"); err != nil {
		t.Fatal(err)
	}
	batch := []stream.Tuple{
		{}, // schema-less
		good(1),
		stream.MustTuple(drifted, 2, stream.Int(1)), // plan error (missing b)
		good(3),
	}
	err = rt.ConsumeBatch(batch)
	if err == nil {
		t.Fatal("batch with failing tuples returned nil")
	}
	if got := c.rendered(); len(got) != 2 {
		t.Fatalf("emitted %d results, want 2 (the two good tuples)", len(got))
	}
	errMu.Lock()
	defer errMu.Unlock()
	if len(errIDs) != 2 || errIDs[0] != "" || errIDs[1] != "p0" {
		t.Fatalf("OnError ids = %v, want [\"\" p0]", errIDs)
	}
}

// TestInstallRemoveUnderLoad exercises control-plane mutations racing
// the data plane (run under -race in CI).
func TestInstallRemoveUnderLoad(t *testing.T) {
	reg := stream.NewRegistry()
	if err := sensordata.RegisterAll(reg); err != nil {
		t.Fatal(err)
	}
	b, err := cql.AnalyzeString("SELECT station, temperature FROM Sensor00 [Now]", reg)
	if err != nil {
		t.Fatal(err)
	}
	rt := exec.New(exec.Config{Workers: 3})
	defer rt.Close()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		gen := sensordata.NewGenerator(0, 5)
		for {
			select {
			case <-stop:
				return
			default:
				rt.Consume(gen.Next())
			}
		}
	}()
	for round := 0; round < 50; round++ {
		id := fmt.Sprintf("p%d", round%7)
		if _, err := rt.Install(id, b, "res-"+id); err != nil {
			t.Fatal(err)
		}
		if round%3 == 0 {
			rt.Remove(id)
		}
		if round%5 == 0 {
			rt.Drain(id)
		}
	}
	close(stop)
	wg.Wait()
	rt.Barrier()
	// Removed plans are gone; surviving ones still listed.
	for _, id := range rt.Plans() {
		if _, ok := rt.Plan(id); !ok {
			t.Errorf("plan %s listed but not retrievable", id)
		}
	}
}

// TestCloseDropsWork: after Close the runtime accepts no work and
// Consume is a safe no-op.
func TestCloseDropsWork(t *testing.T) {
	reg := stream.NewRegistry()
	if err := sensordata.RegisterAll(reg); err != nil {
		t.Fatal(err)
	}
	b, err := cql.AnalyzeString("SELECT station FROM Sensor00 [Now]", reg)
	if err != nil {
		t.Fatal(err)
	}
	rt := exec.New(exec.Config{Workers: 2})
	if _, err := rt.Install("p0", b, "res"); err != nil {
		t.Fatal(err)
	}
	rt.Close()
	rt.Close() // idempotent
	if err := rt.Consume(sensordata.NewGenerator(0, 1).Next()); err != nil {
		t.Fatalf("consume after close: %v", err)
	}
	if _, err := rt.Install("p1", b, "res2"); err == nil {
		t.Fatal("install after close should fail")
	}
	rt.Barrier() // must not hang
}
