package cost

import (
	"math"
	"testing"

	"cosmos/internal/cql"
	"cosmos/internal/predicate"
	"cosmos/internal/stream"
)

func catalog() *stream.Registry {
	r := stream.NewRegistry()
	infos := []*stream.Info{
		{
			Schema: stream.MustSchema("T",
				stream.Field{Name: "a", Kind: stream.KindInt},
				stream.Field{Name: "b", Kind: stream.KindInt},
			),
			Rate: 100,
			Stats: map[string]stream.AttrStats{
				"a": {Min: 0, Max: 100, Distinct: 100},
				"b": {Min: 0, Max: 10, Distinct: 10},
			},
		},
		{
			Schema: stream.MustSchema("U",
				stream.Field{Name: "a", Kind: stream.KindInt},
				stream.Field{Name: "c", Kind: stream.KindInt},
			),
			Rate: 10,
			Stats: map[string]stream.AttrStats{
				"a": {Min: 0, Max: 100, Distinct: 50},
			},
		},
	}
	for _, in := range infos {
		if err := r.Register(in); err != nil {
			panic(err)
		}
	}
	return r
}

func info(t *testing.T) *stream.Info {
	t.Helper()
	in, ok := catalog().Lookup("T")
	if !ok {
		t.Fatal("no T")
	}
	return in
}

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestSelectivityConstraintRange(t *testing.T) {
	e := Estimator{}
	in := info(t)
	// a > 80 over [0,100] → 0.2.
	got := e.SelectivityConstraint(in, predicate.C("a", predicate.GT, stream.Int(80)))
	if !approx(got, 0.2, 1e-9) {
		t.Errorf("sel(a>80) = %f", got)
	}
	// a <= 25 → 0.25.
	got = e.SelectivityConstraint(in, predicate.C("a", predicate.LE, stream.Int(25)))
	if !approx(got, 0.25, 1e-9) {
		t.Errorf("sel(a<=25) = %f", got)
	}
	// Out-of-domain constraint clamps to 0.
	got = e.SelectivityConstraint(in, predicate.C("a", predicate.GT, stream.Int(1000)))
	if got != 0 {
		t.Errorf("sel(a>1000) = %f", got)
	}
}

func TestSelectivityConstraintEqNe(t *testing.T) {
	e := Estimator{}
	in := info(t)
	if got := e.SelectivityConstraint(in, predicate.C("a", predicate.EQ, stream.Int(5))); !approx(got, 0.01, 1e-9) {
		t.Errorf("sel(a=5) = %f", got)
	}
	if got := e.SelectivityConstraint(in, predicate.C("b", predicate.NE, stream.Int(5))); !approx(got, 0.9, 1e-9) {
		t.Errorf("sel(b!=5) = %f", got)
	}
	// Unknown attribute falls back to defaults.
	if got := e.SelectivityConstraint(in, predicate.C("zz", predicate.EQ, stream.Int(5))); got != DefaultEqSelectivity {
		t.Errorf("default eq = %f", got)
	}
	if got := e.SelectivityConstraint(nil, predicate.C("a", predicate.GT, stream.Int(5))); got != DefaultRangeSelectivity {
		t.Errorf("default range = %f", got)
	}
}

func TestSelectivityConjCombinesRanges(t *testing.T) {
	e := Estimator{}
	in := info(t)
	// 20 <= a <= 40 → 0.2, not 0.8*0.4.
	cj := predicate.Conj{
		predicate.C("a", predicate.GE, stream.Int(20)),
		predicate.C("a", predicate.LE, stream.Int(40)),
	}
	if got := e.SelectivityConj(in, cj); !approx(got, 0.2, 1e-9) {
		t.Errorf("sel(20<=a<=40) = %f", got)
	}
	// Independent attributes multiply.
	cj2 := predicate.Conj{
		predicate.C("a", predicate.GT, stream.Int(50)), // 0.5
		predicate.C("b", predicate.GT, stream.Int(5)),  // 0.5
	}
	if got := e.SelectivityConj(in, cj2); !approx(got, 0.25, 1e-9) {
		t.Errorf("sel(a>50 AND b>5) = %f", got)
	}
	// Unsatisfiable → 0.
	cj3 := predicate.Conj{
		predicate.C("a", predicate.GT, stream.Int(50)),
		predicate.C("a", predicate.LT, stream.Int(10)),
	}
	if got := e.SelectivityConj(in, cj3); got != 0 {
		t.Errorf("sel(unsat) = %f", got)
	}
	// Empty conjunction → 1.
	if got := e.SelectivityConj(in, nil); got != 1 {
		t.Errorf("sel(TRUE) = %f", got)
	}
}

func TestSelectivityDNF(t *testing.T) {
	e := Estimator{}
	in := info(t)
	d := predicate.DNF{
		{predicate.C("a", predicate.GT, stream.Int(50))}, // 0.5
		{predicate.C("b", predicate.GT, stream.Int(5))},  // 0.5
	}
	// 1 - 0.5*0.5 = 0.75.
	if got := e.SelectivityDNF(in, d); !approx(got, 0.75, 1e-9) {
		t.Errorf("sel(DNF) = %f", got)
	}
	if got := e.SelectivityDNF(in, predicate.True()); got != 1 {
		t.Errorf("sel(TRUE) = %f", got)
	}
	if got := e.SelectivityDNF(in, predicate.DNF{}); got != 0 {
		t.Errorf("sel(FALSE) = %f", got)
	}
}

func TestOutputRateSingleStream(t *testing.T) {
	e := Estimator{}
	b, err := cql.AnalyzeString("SELECT a FROM T [Now] WHERE a > 80", catalog())
	if err != nil {
		t.Fatal(err)
	}
	est := e.OutputRate(b)
	// 100 tuples/s * 0.2 = 20 tuples/s; width = 8 (a) + 8 (ts) = 16.
	if !approx(est.TuplesPerSec, 20, 1e-9) {
		t.Errorf("rate = %f", est.TuplesPerSec)
	}
	if est.TupleBytes != 16 {
		t.Errorf("width = %d", est.TupleBytes)
	}
	// Bps includes the per-datagram framing overhead: 20 × (16 + 16).
	if !approx(est.Bps(), 20*float64(16+DatagramOverheadBytes), 1e-9) {
		t.Errorf("bps = %f", est.Bps())
	}
}

func TestOutputRateProjectionNarrowing(t *testing.T) {
	// Selecting fewer columns must reduce C(q): this is the early
	// projection saving the paper's data layer exploits.
	e := Estimator{}
	wide, err := cql.AnalyzeString("SELECT * FROM T [Now]", catalog())
	if err != nil {
		t.Fatal(err)
	}
	narrow, err := cql.AnalyzeString("SELECT a FROM T [Now]", catalog())
	if err != nil {
		t.Fatal(err)
	}
	if e.Bps(narrow) >= e.Bps(wide) {
		t.Errorf("narrow projection should cost less: %f vs %f", e.Bps(narrow), e.Bps(wide))
	}
}

func TestOutputRateJoin(t *testing.T) {
	e := Estimator{}
	b, err := cql.AnalyzeString(
		"SELECT T.a FROM T [Range 10 Second], U [Now] WHERE T.a = U.a", catalog())
	if err != nil {
		t.Fatal(err)
	}
	est := e.OutputRate(b)
	// r1=100, r2=10, W=10s, jsel=1/max(100,50)=0.01 → 100*10*10*0.01 = 100.
	if !approx(est.TuplesPerSec, 100, 1e-6) {
		t.Errorf("join rate = %f", est.TuplesPerSec)
	}
}

func TestOutputRateJoinWindowMonotone(t *testing.T) {
	e := Estimator{}
	small, err := cql.AnalyzeString("SELECT T.a FROM T [Range 10 Second], U [Now] WHERE T.a = U.a", catalog())
	if err != nil {
		t.Fatal(err)
	}
	big, err := cql.AnalyzeString("SELECT T.a FROM T [Range 60 Second], U [Now] WHERE T.a = U.a", catalog())
	if err != nil {
		t.Fatal(err)
	}
	if e.Bps(big) <= e.Bps(small) {
		t.Errorf("wider window must cost more: %f vs %f", e.Bps(big), e.Bps(small))
	}
}

func TestOutputRateNowNowJoinUsesTick(t *testing.T) {
	e := Estimator{}
	b, err := cql.AnalyzeString("SELECT T.a FROM T [Now], U [Now] WHERE T.a = U.a", catalog())
	if err != nil {
		t.Fatal(err)
	}
	est := e.OutputRate(b)
	if est.TuplesPerSec <= 0 {
		t.Errorf("Now-Now join should still have positive rate, got %f", est.TuplesPerSec)
	}
	// 100 * 10 * 0.001 * 0.01 = 0.01
	if !approx(est.TuplesPerSec, 0.01, 1e-9) {
		t.Errorf("rate = %f", est.TuplesPerSec)
	}
}

func TestOutputRateSelectionReducesJoin(t *testing.T) {
	e := Estimator{}
	all, err := cql.AnalyzeString("SELECT T.a FROM T [Range 10 Second], U [Now] WHERE T.a = U.a", catalog())
	if err != nil {
		t.Fatal(err)
	}
	filtered, err := cql.AnalyzeString("SELECT T.a FROM T [Range 10 Second], U [Now] WHERE T.a = U.a AND T.b > 5", catalog())
	if err != nil {
		t.Fatal(err)
	}
	if e.Bps(filtered) >= e.Bps(all) {
		t.Errorf("selection should reduce join cost: %f vs %f", e.Bps(filtered), e.Bps(all))
	}
}

func TestOutputRateAggregate(t *testing.T) {
	e := Estimator{}
	b, err := cql.AnalyzeString("SELECT b, COUNT(*) FROM T [Range 1 Minute] GROUP BY b", catalog())
	if err != nil {
		t.Fatal(err)
	}
	est := e.OutputRate(b)
	// Istream model: filtered input rate (no filter → 100/s), narrow row.
	if !approx(est.TuplesPerSec, 100, 1e-9) {
		t.Errorf("agg rate = %f", est.TuplesPerSec)
	}
	if est.TupleBytes != 8+8+8 {
		t.Errorf("agg width = %d", est.TupleBytes)
	}
}

func TestWindowSecondsUnboundedFinite(t *testing.T) {
	if s := windowSeconds(stream.Unbounded); s <= 0 || math.IsInf(s, 1) {
		t.Errorf("unbounded window seconds = %f", s)
	}
	if s := windowSeconds(5 * stream.Second); s != 5 {
		t.Errorf("5s = %f", s)
	}
}
