#!/usr/bin/env bash
# Transport result-path benchmarks.
#
#   scripts/bench_transport.sh          # refresh BENCH_transport.json + print A/B
#
# Runs the sustained-load test (writing its JSON report to
# BENCH_transport.json at the repo root) and the v1-gob vs v2-binary
# result-path benchmark for comparison.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== sustained load (writes BENCH_transport.json) =="
COSMOS_BENCH_OUT="$PWD/BENCH_transport.json" \
    go test . -run TestSustainedTransportLoad -count=1 -v | grep -v '^=== RUN'

echo
echo "== result path A/B: wire=1 (gob) vs wire=2 (binary) =="
go test . -run '^$' -bench BenchmarkDialResultPath -benchmem -benchtime 2s -count=1
