package cbn

import (
	"sync/atomic"
	"testing"
	"time"

	"cosmos/internal/stream"
)

// TestLiveNetBrokerPanicContainment kills one broker with a poisoned
// control message and checks the failure stays inside that node: other
// brokers keep routing, traffic toward the dead node is black-holed
// with its accounting settled (Quiesce still converges, publishers are
// not starved of credits), and Stop tears the network down cleanly.
func TestLiveNetBrokerPanicContainment(t *testing.T) {
	net := NewLiveNet(2, WithInboxCap(4))
	if err := net.AddLink(0, 1); err != nil {
		t.Fatal(err)
	}
	src, err := net.AttachClient(0)
	if err != nil {
		t.Fatal(err)
	}
	sub0, err := net.AttachClient(0)
	if err != nil {
		t.Fatal(err)
	}
	sub1, err := net.AttachClient(1)
	if err != nil {
		t.Fatal(err)
	}
	poison, err := net.AttachClient(1)
	if err != nil {
		t.Fatal(err)
	}
	var got0, got1 atomic.Int64
	sub0.SetOnTuple(func(stream.Tuple) { got0.Add(1) })
	sub1.SetOnTuple(func(stream.Tuple) { got1.Add(1) })
	net.Start()
	defer net.Stop()

	src.Advertise("Sensor1")
	net.Quiesce()
	sub0.Subscribe(tempProfile(0, nil))
	sub1.Subscribe(tempProfile(0, nil))
	net.Quiesce()
	for i := 0; i < 10; i++ {
		if err := src.Publish(sensorTuple(stream.Timestamp(i), 1, 25, 0.5)); err != nil {
			t.Fatal(err)
		}
	}
	net.Quiesce()
	if got0.Load() != 10 || got1.Load() != 10 {
		t.Fatalf("before fault: sub0=%d sub1=%d, want 10/10", got0.Load(), got1.Load())
	}

	// A nil profile panics the broker that processes it (nil Clone).
	// Only node 1 must die.
	poison.Subscribe(nil)
	net.Quiesce()

	for i := 10; i < 20; i++ {
		if err := src.Publish(sensorTuple(stream.Timestamp(i), 1, 25, 0.5)); err != nil {
			t.Fatal(err)
		}
	}
	net.Quiesce()
	if got0.Load() != 20 {
		t.Errorf("sub0 after fault = %d, want 20 (broker 0 must keep routing)", got0.Load())
	}
	if got1.Load() != 10 {
		t.Errorf("sub1 after fault = %d, want 10 (node 1 traffic black-holed)", got1.Load())
	}

	// Publishing into the dead node must neither block on exhausted
	// credits (cap is 4) nor break quiescence accounting.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 100; i++ {
			if err := poison.Publish(sensorTuple(stream.Timestamp(i), 1, 25, 0.5)); err != nil {
				t.Errorf("publish into dead node: %v", err)
				return
			}
		}
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("publish into dead node blocked (credit leak)")
	}
	net.Quiesce()
}

// TestLiveNetClientPanicContainment panics one subscriber's delivery
// callback and checks only that client fails: the other subscriber
// keeps receiving every tuple, quiescence converges and Stop is clean.
func TestLiveNetClientPanicContainment(t *testing.T) {
	net := NewLiveNet(1)
	src, err := net.AttachClient(0)
	if err != nil {
		t.Fatal(err)
	}
	bad, err := net.AttachClient(0)
	if err != nil {
		t.Fatal(err)
	}
	good, err := net.AttachClient(0)
	if err != nil {
		t.Fatal(err)
	}
	var badGot, goodGot atomic.Int64
	bad.SetOnTuple(func(stream.Tuple) {
		if badGot.Add(1) == 3 {
			panic("cbn test: consumer fault")
		}
	})
	good.SetOnTuple(func(stream.Tuple) { goodGot.Add(1) })
	net.Start()
	defer net.Stop()

	src.Advertise("Sensor1")
	net.Quiesce()
	bad.Subscribe(tempProfile(0, nil))
	good.Subscribe(tempProfile(0, nil))
	net.Quiesce()
	for i := 0; i < 50; i++ {
		if err := src.Publish(sensorTuple(stream.Timestamp(i), 1, 25, 0.5)); err != nil {
			t.Fatal(err)
		}
	}
	net.Quiesce()
	if goodGot.Load() != 50 {
		t.Errorf("good subscriber got %d, want 50 (unaffected by peer panic)", goodGot.Load())
	}
	if badGot.Load() != 3 {
		t.Errorf("bad subscriber got %d deliveries, want exactly 3 (fails at the panic)", badGot.Load())
	}
}
