package core

import (
	"fmt"
	"sync"
	"sync/atomic"

	"cosmos/internal/cost"
	"cosmos/internal/cql"
	"cosmos/internal/exec"
	"cosmos/internal/ft"
	"cosmos/internal/merge"
	"cosmos/internal/profile"
	"cosmos/internal/spe"
	"cosmos/internal/stream"
)

// Processor is a COSMOS server equipped with a stream processing engine
// (paper §1: "Some of these servers are only used to route data across
// the network while others are equipped with stream processing engines
// and hence are able to process complex continuous queries").
//
// Its query-management module (paper Figure 2) analyses incoming
// queries, groups them with the merging optimiser, installs (or
// replaces) the representative query in the SPE, and maintains the
// data-interest profiles that pull source streams in and push result
// streams out. When checkpointing is enabled it periodically captures
// plan state for query-layer fault tolerance.
type Processor struct {
	ID   int
	Node int

	sys    *System
	client netClient
	rt     *exec.Runtime
	opt    *merge.Optimizer
	est    cost.Estimator
	cp     *ft.Checkpointer

	// live marks a processor deployed over the concurrent transport:
	// emissions publish straight into the network (the client is
	// thread-safe) instead of buffering until a world-stop.
	live bool
	// batcher decouples data-layer delivery from plan execution when the
	// processor runs the sharded runtime (Options.ExecWorkers > 0); nil
	// in the synchronous (deterministic) mode.
	batcher *exec.Batcher
	// planErrs counts plan execution failures surfaced by the runtime.
	planErrs atomic.Int64
	// outbox buffers sharded-mode emissions on the SIMULATED transport
	// only, where the single-threaded network cannot accept publishes
	// from worker goroutines; System.Quiesce flushes it. Unused (nil) on
	// the live transport.
	outMu  sync.Mutex
	outbox []stream.Tuple // guarded by outMu

	mu sync.Mutex
	// groups tracks installed representative queries by group ID.
	// Guarded by mu.
	groups map[int]*groupState
	// adopted holds groups taken over from failed processors, keyed by
	// result stream name; they serve and shrink but accept no new
	// members. Guarded by mu.
	adopted         map[string]*groupState
	load            int  // guarded by mu
	alive           bool // guarded by mu
	consumeCount    int  // guarded by mu
	checkpointEvery int
}

// groupState is the processor-side record of one query group.
type groupState struct {
	id           int
	plan         string // engine plan ID, unique system-wide
	version      int
	resultStream string
	rep          *cql.Bound
	memberTags   []string
}

// resultStreamName derives the versioned result stream name of a group.
// The version bumps on every membership change: a fresh stream name
// invalidates every stale subscription in the network at once, avoiding
// distributed unsubscription (old names simply stop carrying data when
// the old plan is replaced).
func resultStreamName(procID, groupID, version int) string {
	return fmt.Sprintf("res-p%d-g%d-v%d", procID, groupID, version)
}

func newProcessor(s *System, id, node int) (*Processor, error) {
	minBenefit := 0.0
	if s.opts.DisableMerging {
		// An unattainable bar keeps every query in its own group — the
		// "Non-Share" baseline.
		minBenefit = 1e308
	}
	client, err := s.net.AttachClient(node)
	if err != nil {
		return nil, err
	}
	p := &Processor{
		ID:     id,
		Node:   node,
		sys:    s,
		client: client,
		live:   s.live != nil,
		opt: merge.NewOptimizer(merge.Options{
			Mode:          s.opts.Mode,
			MaxCandidates: s.opts.MaxCandidates,
			MinBenefit:    minBenefit,
		}),
		cp:              ft.NewCheckpointer(),
		groups:          map[int]*groupState{},
		adopted:         map[string]*groupState{},
		alive:           true,
		checkpointEvery: s.opts.CheckpointEvery,
	}
	cfg := exec.Config{
		Workers: s.opts.ExecWorkers,
		Emit:    p.emit,
		OnError: p.onPlanError,
		Metrics: s.obs,
	}
	if p.live && s.opts.ExecWorkers > 0 {
		// Each worker publishes through its own network client, so a
		// plan's results enter the network on its owning worker's
		// connection — per-plan emission order carries end to end, and a
		// full broker channel throttles exactly that worker.
		egress := make([]netClient, s.opts.ExecWorkers)
		for i := range egress {
			c, err := s.net.AttachClient(node)
			if err != nil {
				return nil, err
			}
			egress[i] = c
		}
		cfg.EmitForWorker = func(worker int) exec.Sink {
			c := egress[worker]
			return func(t stream.Tuple) { _ = c.Publish(t) }
		}
	}
	p.rt = exec.New(cfg)
	if s.opts.ExecWorkers > 0 {
		p.batcher = exec.NewBatcher(p.rt, 0, s.opts.IngestBatch)
	}
	p.client.SetOnTuple(p.consume)
	return p, nil
}

// consume feeds data-layer deliveries into the SPE and drives periodic
// checkpointing.
func (p *Processor) consume(t stream.Tuple) {
	p.mu.Lock()
	if !p.alive {
		p.mu.Unlock()
		return
	}
	p.consumeCount++
	capture := p.checkpointEvery > 0 && p.consumeCount%p.checkpointEvery == 0
	p.mu.Unlock()
	// Plan errors indicate schema drift between the data layer and the
	// installed plans; the runtime surfaces them through onPlanError (the
	// error counter and Options.OnPlanError) rather than crashing the
	// data path.
	if p.batcher != nil {
		p.batcher.Put(t)
	} else {
		_ = p.rt.Consume(t)
	}
	if capture {
		p.captureAll()
	}
}

// onPlanError records a plan execution failure reported by the runtime.
func (p *Processor) onPlanError(planID string, err error) {
	p.planErrs.Add(1)
	if cb := p.sys.opts.OnPlanError; cb != nil {
		cb(p.ID, planID, err)
	}
}

// PlanErrors returns the number of plan execution failures observed.
func (p *Processor) PlanErrors() int64 { return p.planErrs.Load() }

// planOf resolves the engine plan ID executing a query tag, searching
// owned and adopted groups.
func (p *Processor) planOf(tag string) (string, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, gs := range p.groups {
		for _, member := range gs.memberTags {
			if member == tag {
				return gs.plan, true
			}
		}
	}
	for _, gs := range p.adopted {
		for _, member := range gs.memberTags {
			if member == tag {
				return gs.plan, true
			}
		}
	}
	return "", false
}

// planQueries resolves the member query tags and result stream served
// by an engine plan, searching owned and adopted groups.
func (p *Processor) planQueries(planID string) (tags []string, resultStream string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, gs := range p.groups {
		if gs.plan == planID {
			return append([]string(nil), gs.memberTags...), gs.resultStream
		}
	}
	for _, gs := range p.adopted {
		if gs.plan == planID {
			return append([]string(nil), gs.memberTags...), gs.resultStream
		}
	}
	return nil, ""
}

// quiesce drains the sharded ingest path and publishes buffered results
// into the (simulated) data layer, reporting whether anything was
// published. A no-op (false) for synchronous processors. Live
// processors have no outbox — see drainExec.
func (p *Processor) quiesce() bool {
	if p.batcher == nil || !p.Alive() {
		return false
	}
	p.batcher.Flush()
	p.rt.Barrier()
	p.outMu.Lock()
	out := p.outbox
	p.outbox = nil
	p.outMu.Unlock()
	for _, t := range out {
		_ = p.client.Publish(t)
	}
	return len(out) > 0
}

// drainExec blocks until every tuple already accepted by this
// processor's ingest queue has been processed by its plans (emissions,
// on the live transport, are published into the network by the workers
// themselves before this returns). Part of the LiveSystem stabilisation
// barrier.
func (p *Processor) drainExec() {
	if !p.Alive() {
		return
	}
	if p.batcher != nil {
		p.batcher.Flush()
	}
	p.rt.Barrier()
}

// shutdownExec stops the processor's execution runtime (crash
// simulation): queued ingest and buffered results are dropped.
func (p *Processor) shutdownExec() {
	if p.batcher != nil {
		p.batcher.Close()
	}
	p.rt.Close()
	p.outMu.Lock()
	p.outbox = nil
	p.outMu.Unlock()
}

// captureAll snapshots every live plan into the checkpoint store. The
// ingest queue is flushed first so the checkpoint cut is deterministic:
// it reflects exactly the tuples delivered to this processor before the
// trigger, in both synchronous and sharded modes. WithPlan then
// quiesces one plan at a time — capture under live traffic never stops
// the world.
func (p *Processor) captureAll() {
	if p.batcher != nil {
		p.batcher.Flush()
	}
	p.mu.Lock()
	plans := make([]string, 0, len(p.groups)+len(p.adopted))
	for _, gs := range p.groups {
		plans = append(plans, gs.plan)
	}
	for _, gs := range p.adopted {
		plans = append(plans, gs.plan)
	}
	p.mu.Unlock()
	for _, id := range plans {
		p.rt.WithPlan(id, func(plan *spe.Plan) { p.cp.Capture(plan) })
	}
}

// emit publishes SPE results back into the data layer. On the live
// transport the client is thread-safe and results go straight into the
// network (sharded workers normally bypass this via their per-worker
// egress clients; this path serves the synchronous live mode). On the
// simulated transport, sharded-mode emissions arrive on worker
// goroutines and must buffer until quiesce, because the simulated
// network is single-threaded. Per-plan order is preserved in every mode
// (the runtime emits under the plan's lock).
func (p *Processor) emit(t stream.Tuple) {
	if p.live {
		_ = p.client.Publish(t)
		return
	}
	if p.batcher != nil {
		p.outMu.Lock()
		p.outbox = append(p.outbox, t)
		p.outMu.Unlock()
		return
	}
	_ = p.client.Publish(t)
}

// accept runs the query-management path for one new query: group it,
// install/replace the representative plan, advertise the (versioned)
// result stream, and (re)subscribe the input profile. Returns the
// affected group. Called under the system lock.
func (p *Processor) accept(tag string, b *cql.Bound) (*groupState, error) {
	placement, err := p.opt.Add(tag, b)
	if err != nil {
		return nil, err
	}
	g := placement.Group
	p.mu.Lock()
	gs, known := p.groups[g.ID]
	if !known {
		gs = &groupState{
			id:   g.ID,
			plan: fmt.Sprintf("p%d-g%04d", p.ID, g.ID),
		}
		p.groups[g.ID] = gs
	} else {
		gs.version++
		p.sys.reg.Deregister(gs.resultStream)
		p.sys.net.PruneStream(gs.resultStream)
	}
	gs.resultStream = resultStreamName(p.ID, gs.id, gs.version)
	gs.rep = g.Rep
	gs.memberTags = memberTags(g)
	p.load++
	p.mu.Unlock()

	if err := p.installGroup(gs); err != nil {
		return nil, err
	}
	return gs, nil
}

// remove drops a query; returns the surviving group (nil when the group
// dissolved). Called under the system lock.
func (p *Processor) remove(tag string) (*groupState, error) {
	g, ok := p.opt.GroupOf(tag)
	if !ok {
		// Not in the optimiser: the query may belong to an adopted
		// (failed-over) group.
		return p.removeAdopted(tag)
	}
	p.mu.Lock()
	gs := p.groups[g.ID]
	p.mu.Unlock()
	survivor, _ := p.opt.Remove(tag)
	p.mu.Lock()
	p.load--
	if survivor == nil {
		p.rt.Remove(gs.plan)
		p.cp.Drop(gs.plan)
		p.sys.reg.Deregister(gs.resultStream)
		p.sys.net.PruneStream(gs.resultStream)
		delete(p.groups, gs.id)
		p.mu.Unlock()
		return nil, nil
	}
	gs.version++
	p.sys.reg.Deregister(gs.resultStream)
	p.sys.net.PruneStream(gs.resultStream)
	gs.resultStream = resultStreamName(p.ID, gs.id, gs.version)
	gs.rep = survivor.Rep
	gs.memberTags = memberTags(survivor)
	p.mu.Unlock()
	if err := p.installGroup(gs); err != nil {
		return nil, err
	}
	return gs, nil
}

// installGroup (re)installs the representative plan under the group's
// current (versioned) result stream name, registers the schema, and
// subscribes the input profile. Each new version is advertised; older
// versions stop carrying data the moment the plan is replaced.
func (p *Processor) installGroup(gs *groupState) error {
	if _, err := p.rt.Install(gs.plan, gs.rep, gs.resultStream); err != nil {
		return err
	}
	p.cp.Register(gs.plan, gs.rep, gs.resultStream)
	// Register (or refresh) the result stream's schema and estimated
	// rate in the flooded catalog.
	est := p.est.OutputRate(gs.rep)
	resInfo := &stream.Info{
		Schema: gs.rep.OutSchema.Rename(gs.resultStream),
		Rate:   est.TuplesPerSec,
	}
	if err := p.sys.reg.Register(resInfo); err != nil {
		return err
	}
	p.client.Advertise(gs.resultStream)
	// Pull the representative's source data: compose and subscribe the
	// profile of paper §4 ("For each query, a profile is composed for
	// retrieving the source data").
	p.client.Subscribe(profile.FromQuery(gs.rep))
	return nil
}

// Load returns the number of queries assigned to this processor.
func (p *Processor) Load() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.load
}

// Groups returns the number of live query groups (owned + adopted).
func (p *Processor) Groups() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.groups) + len(p.adopted)
}

// Stats exposes the optimiser's merging statistics.
func (p *Processor) Stats() merge.Stats { return p.opt.Stats() }

func memberTags(g *merge.Group) []string {
	tags := make([]string, len(g.Members))
	for i, m := range g.Members {
		tags[i] = m.Tag
	}
	return tags
}
