package load

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// smokeEvents scales a scenario's event budget down for -short runs
// (the CI load-smoke job runs these under -race).
func smokeEvents(full int) int {
	if testing.Short() {
		return full / 2
	}
	return full
}

// checkClean asserts the scenario's ledger contract: every due result
// arrived exactly once, and the report carries coherent rate figures.
func checkClean(t *testing.T, rep *Report, area string) {
	t.Helper()
	if rep.Area != area {
		t.Fatalf("report area %q, want %q", rep.Area, area)
	}
	r := rep.Results
	t.Logf("%s: published %d delivered %d lost %d dup %d achieved %.0f/s p50 %.0fµs p99 %.0fµs",
		area, r.Published, r.Delivered, r.Lost, r.Duplicated,
		r.AchievedPerSec, r.LatencyUs.P50, r.LatencyUs.P99)
	if r.Lost != 0 || r.Duplicated != 0 {
		t.Fatalf("ledger: lost %d, duplicated %d; want 0/0", r.Lost, r.Duplicated)
	}
	if r.Delivered <= 0 {
		t.Fatal("no results delivered")
	}
	if r.Expected != 0 && r.Delivered != r.Expected {
		t.Fatalf("delivered %d results, expected exactly %d", r.Delivered, r.Expected)
	}
	if r.AchievedPerSec <= 0 || r.OfferedPerSec <= 0 {
		t.Fatalf("rate figures missing: offered %v achieved %v", r.OfferedPerSec, r.AchievedPerSec)
	}
	if len(rep.Stages) == 0 {
		t.Fatal("report carries no stage breakdown")
	}
}

func TestScenarioTransport(t *testing.T) {
	out := filepath.Join(t.TempDir(), "BENCH_transport.json")
	rep, err := Run(Config{
		Scenario: "transport",
		Rate:     2000,
		Events:   smokeEvents(500),
		Subs:     4,
		Out:      out,
	})
	if err != nil {
		t.Fatal(err)
	}
	checkClean(t, rep, "transport")
	if rep.Results.SvcLatencyUs == nil {
		t.Fatal("transport results carry no service latency block")
	}
	// The Out path wires through WriteReport: the file must be a valid
	// current-schema report.
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var onDisk Report
	if err := json.Unmarshal(data, &onDisk); err != nil {
		t.Fatalf("BENCH file is not a valid report: %v", err)
	}
	if onDisk.Schema != SchemaVersion || onDisk.Area != "transport" {
		t.Fatalf("BENCH file schema/area = %q/%q", onDisk.Schema, onDisk.Area)
	}
}

func TestScenarioAuction(t *testing.T) {
	rep, err := Run(Config{
		Scenario: "auction",
		Rate:     2000,
		Events:   smokeEvents(400),
		Subs:     2,
	})
	if err != nil {
		t.Fatal(err)
	}
	checkClean(t, rep, "auction")
	// The workload is constructed for exact counts (see auction.go);
	// Expected must be populated so the equality above had teeth.
	if rep.Results.Expected == 0 {
		t.Fatal("auction report carries no expected-count")
	}
}

func TestScenarioChurn(t *testing.T) {
	rep, err := Run(Config{
		Scenario: "churn",
		Rate:     2000,
		Events:   smokeEvents(600),
		Subs:     8,
		Streams:  4,
	})
	if err != nil {
		t.Fatal(err)
	}
	checkClean(t, rep, "churn")
	// The scenario's boundaries are announced schedule amendments: the
	// join, the failover and each membership op shift the pacer.
	if rep.Config.Shifts < 3 {
		t.Fatalf("schedule_shifts = %d; the join, failover and churn ops must all be announced", rep.Config.Shifts)
	}
}

func TestScenarioClients(t *testing.T) {
	rep, err := Run(Config{
		Scenario: "clients",
		Rate:     2000,
		Events:   smokeEvents(400),
		Clients:  16,
		Streams:  2,
	})
	if err != nil {
		t.Fatal(err)
	}
	checkClean(t, rep, "clients")
	if rep.Config.Shifts != 1 {
		t.Fatalf("schedule_shifts = %d, want exactly the halfway churn burst", rep.Config.Shifts)
	}
}

func TestRunUnknownScenario(t *testing.T) {
	if _, err := Run(Config{Scenario: "nope"}); err == nil {
		t.Fatal("unknown scenario accepted")
	}
}

func TestRunDefaultsResolve(t *testing.T) {
	for _, name := range Scenarios() {
		cfg := Config{Scenario: name}.withDefaults()
		if cfg.Rate <= 0 || cfg.Seed == 0 || cfg.DrainTimeout <= 0 {
			t.Fatalf("%s defaults incomplete: %+v", name, cfg)
		}
		if cfg.targetEvents() < 1 {
			t.Fatalf("%s resolves to an empty event budget", name)
		}
	}
	// An explicit event count wins over the duration-derived budget.
	cfg := Config{Scenario: "transport", Rate: 1000, Duration: time.Hour, Events: 42}.withDefaults()
	if cfg.targetEvents() != 42 {
		t.Fatalf("targetEvents() = %d, want the explicit 42", cfg.targetEvents())
	}
}
