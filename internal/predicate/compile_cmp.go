package predicate

import (
	"fmt"

	"cosmos/internal/stream"
)

// This file extends the compiled-predicate layer to attribute-vs-attribute
// comparisons — the form join predicates take. Like Compile for
// constant-side filters, CompileAttrCmps resolves both attribute
// references to column indices against one schema (for joins, the plan's
// joined namespace) at control-plane time and picks a comparison
// specialisation from the declared kinds, so data-plane evaluation is a
// pure index walk with no name lookups and no runtime errors.
// Compilation fails whenever the interpreted AttrCmp.Eval could error at
// runtime (missing attribute, incomparable kinds); callers then keep the
// interpreted path, preserving error semantics exactly.

// ccMode selects the column-vs-column comparison specialisation. Each
// mode reproduces exactly the branch Value.Compare takes for the operand
// kinds the schema guarantees.
type ccMode uint8

const (
	// ccInt: both columns are declared non-float numerics, so both
	// runtime payloads are exact integers.
	ccInt ccMode = iota
	// ccNum: at least one column is declared float. A float field may
	// hold a widened int at runtime, so the runtime kinds pick the
	// exact-int vs float branch, exactly as Value.Compare does.
	ccNum
	// ccString / ccBool: same-kind ordered comparisons.
	ccString
	ccBool
)

// compiledAttrCmp is one AttrCmp with both sides pre-resolved to column
// indices of the schema the set was compiled against.
type compiledAttrCmp struct {
	colL, colR int
	mode       ccMode
	op         Op
}

//cosmos:hotpath
func (cc *compiledAttrCmp) eval(vals []stream.Value) bool {
	a, b := vals[cc.colL], vals[cc.colR]
	var cmp int
	switch cc.mode {
	case ccInt:
		cmp = cmp3i(a.AsInt(), b.AsInt())
	case ccNum:
		if a.Kind() == stream.KindFloat || b.Kind() == stream.KindFloat {
			cmp = cmp3f(a.AsFloat(), b.AsFloat())
		} else {
			cmp = cmp3i(a.AsInt(), b.AsInt())
		}
	case ccString:
		cmp = cmp3s(a.AsString(), b.AsString())
	default: // ccBool
		var x, y int64
		if a.AsBool() {
			x = 1
		}
		if b.AsBool() {
			y = 1
		}
		cmp = cmp3i(x, y)
	}
	return cc.op.Holds(cmp)
}

// CompiledCmps is a conjunction of AttrCmp comparisons compiled against
// one schema. It is immutable after compilation and safe for concurrent
// evaluation. The empty set is TRUE.
type CompiledCmps struct {
	cmps []compiledAttrCmp
}

// CompileAttrCmps resolves every comparison of the conjunction against
// the schema and type-checks both sides. It errors whenever interpreted
// evaluation could error at runtime for a tuple of this schema.
func CompileAttrCmps(cmps []AttrCmp, s *stream.Schema) (*CompiledCmps, error) {
	if s == nil {
		return nil, fmt.Errorf("predicate: compile against nil schema")
	}
	out := &CompiledCmps{cmps: make([]compiledAttrCmp, len(cmps))}
	for i, c := range cmps {
		cc, err := compileAttrCmp(c, s)
		if err != nil {
			return nil, err
		}
		out.cmps[i] = cc
	}
	return out, nil
}

func compileAttrCmp(c AttrCmp, s *stream.Schema) (compiledAttrCmp, error) {
	// AttrCmp.Eval resolves strictly through Tuple.Get (no intrinsic
	// timestamp), so only schema columns are valid here.
	colL := s.ColIndex(c.Left)
	if colL < 0 {
		return compiledAttrCmp{}, fmt.Errorf("predicate: tuple lacks attribute %s", c.Left)
	}
	colR := s.ColIndex(c.Right)
	if colR < 0 {
		return compiledAttrCmp{}, fmt.Errorf("predicate: tuple lacks attribute %s", c.Right)
	}
	kindL, kindR := s.Fields[colL].Kind, s.Fields[colR].Kind
	cc := compiledAttrCmp{colL: colL, colR: colR, op: c.Op}
	switch {
	case numericKind(kindL) && numericKind(kindR):
		if kindL == stream.KindFloat || kindR == stream.KindFloat {
			cc.mode = ccNum
		} else {
			cc.mode = ccInt
		}
	case kindL == stream.KindString && kindR == stream.KindString:
		cc.mode = ccString
	case kindL == stream.KindBool && kindR == stream.KindBool:
		cc.mode = ccBool
	default:
		return compiledAttrCmp{}, fmt.Errorf(
			"predicate: cannot compare %s (%s) with %s (%s)", c.Left, kindL, c.Right, kindR)
	}
	return cc, nil
}

// EvalValues evaluates the compiled conjunction against a tuple's value
// slice. It never touches attribute names and never allocates. The
// values must conform to the schema the set was compiled against.
//
//cosmos:hotpath
func (c *CompiledCmps) EvalValues(vals []stream.Value) bool {
	for i := range c.cmps {
		if !c.cmps[i].eval(vals) {
			return false
		}
	}
	return true
}
