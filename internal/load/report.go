package load

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"cosmos/internal/core"
	"cosmos/internal/obs"
)

// SchemaVersion identifies the BENCH_<area>.json report layout. Bump it
// when fields change meaning; readers keep older reports verbatim in
// the history block, so a file's trajectory survives schema changes.
const SchemaVersion = "cosmos-load/v1"

// Report is one trajectory point of an area's sustained-load behaviour:
// what was offered, what the machine was, what came back, and how late.
// Successive PRs append comparable points by re-running the same
// scenario and letting WriteReport push the previous point into History.
type Report struct {
	Schema    string       `json:"schema"`
	Area      string       `json:"area"`
	Scenario  string       `json:"scenario"`
	Generated string       `json:"generated,omitempty"`
	Machine   Machine      `json:"machine"`
	Config    ReportConfig `json:"config"`
	Results   Results      `json:"results"`
	// Stages is the per-stage view over the run: event-count delta plus
	// the sampled latency quantiles of the system's obs histograms.
	Stages []StageReport `json:"stages,omitempty"`
	// History holds earlier reports for this area, oldest first, each
	// stripped of its own history block. Entries are raw JSON so points
	// written under older schemas (e.g. the pre-harness flat
	// BENCH_transport.json) survive verbatim.
	History []json.RawMessage `json:"history,omitempty"`
}

// Machine records where the numbers were taken — without it a
// trajectory across PRs is meaningless.
type Machine struct {
	Go       string `json:"go"`
	OS       string `json:"os"`
	Arch     string `json:"arch"`
	CPUs     int    `json:"cpus"`
	MaxProcs int    `json:"maxprocs"`
}

// ReportConfig echoes the run's effective configuration.
type ReportConfig struct {
	Backend     string  `json:"backend"`
	RatePerSec  int     `json:"rate_per_s"`
	DurationS   float64 `json:"duration_s,omitempty"`
	Events      int     `json:"events,omitempty"`
	Subs        int     `json:"subscribers,omitempty"`
	Clients     int     `json:"clients,omitempty"`
	Streams     int     `json:"streams,omitempty"`
	Workers     int     `json:"workers,omitempty"`
	Seed        int64   `json:"seed"`
	WireVersion int     `json:"wire_version,omitempty"`
	Shifts      int     `json:"schedule_shifts,omitempty"`
}

// Results is the measured outcome of the run.
type Results struct {
	Published  int64 `json:"published"`
	Expected   int64 `json:"expected,omitempty"`
	Delivered  int64 `json:"delivered"`
	Lost       int64 `json:"lost"`
	Duplicated int64 `json:"duplicated"`

	OfferedPerSec   float64 `json:"offered_per_s"`
	AchievedPerSec  float64 `json:"achieved_per_s"`
	DeliveredPerSec float64 `json:"delivered_per_s"`
	ElapsedS        float64 `json:"elapsed_s"`

	NsPerResult     float64 `json:"ns_per_result"`
	AllocsPerResult float64 `json:"allocs_per_result"`

	// LatencyUs is end-to-end delivery latency measured from each
	// tuple's intended (scheduled) publish time — scheduling backlog
	// counts against it, so coordinated omission cannot fake good tails.
	LatencyUs LatencySummary `json:"latency_us"`
	// SvcLatencyUs is delivery latency measured from the tuple's actual
	// publish instant: the service time of the path alone, excluding
	// driver backlog (the pre-harness transport bench's definition).
	// Absent when the scenario cannot stamp actual publish times.
	SvcLatencyUs *LatencySummary `json:"svc_latency_us,omitempty"`
	// SchedLagUs is the pacer's per-tick scheduling lag (0 when a tick
	// fired on time): the run's own evidence the offered rate was held.
	SchedLagUs LatencySummary `json:"sched_lag_us"`
}

// LatencySummary is the standard quantile block, in microseconds.
type LatencySummary struct {
	P50   float64 `json:"p50"`
	P99   float64 `json:"p99"`
	P9999 float64 `json:"p9999"`
	Max   float64 `json:"max"`
	Mean  float64 `json:"mean"`
}

// StageReport is one data-path stage's view over the run.
type StageReport struct {
	Stage string  `json:"stage"`
	Count int64   `json:"count"`
	P50Us float64 `json:"p50_us"`
	P99Us float64 `json:"p99_us"`
}

// summarize renders a histogram snapshot into the microsecond quantile
// block.
func summarize(h obs.HistSnapshot) LatencySummary {
	us := func(ns int64) float64 { return float64(ns) / 1e3 }
	return LatencySummary{
		P50:   us(h.Quantile(0.50)),
		P99:   us(h.Quantile(0.99)),
		P9999: us(h.Quantile(0.9999)),
		Max:   us(h.Max),
		Mean:  h.Mean() / 1e3,
	}
}

// machineInfo fills the Machine block from the running process.
func machineInfo() Machine {
	return Machine{
		Go:       runtime.Version(),
		OS:       runtime.GOOS,
		Arch:     runtime.GOARCH,
		CPUs:     runtime.NumCPU(),
		MaxProcs: runtime.GOMAXPROCS(0),
	}
}

// stageReports distills the stage series bracketing a run into the
// report block: counts are window deltas; quantiles read the end
// snapshot (quantiles of merged histograms cannot be subtracted — on a
// system assembled fresh for the run they are the run's own).
func stageReports(prev, cur core.SystemStats) []StageReport {
	prevCount := map[string]int64{}
	for _, s := range prev.Stages {
		prevCount[s.Stage] = s.Count
	}
	var out []StageReport
	for _, s := range cur.Stages {
		out = append(out, StageReport{
			Stage: s.Stage,
			Count: s.Count - prevCount[s.Stage],
			P50Us: float64(s.Lat.Quantile(0.50)) / 1e3,
			P99Us: float64(s.Lat.Quantile(0.99)) / 1e3,
		})
	}
	return out
}

// WriteReport writes rep to path as indented JSON. When the file
// already holds a report — this schema or an older one — the old
// content is pushed onto the new report's history (oldest first), its
// own history block hoisted, so the file accumulates the area's full
// trajectory across PRs.
func WriteReport(path string, rep *Report) error {
	out := *rep
	out.Schema = SchemaVersion
	if out.Generated == "" {
		out.Generated = time.Now().UTC().Format(time.RFC3339)
	}
	out.Machine = machineInfo()

	if old, err := os.ReadFile(path); err == nil && len(old) > 0 {
		hist, prev, err := splitHistory(old)
		if err != nil {
			return fmt.Errorf("load: cannot migrate existing %s: %w", path, err)
		}
		out.History = append(hist, prev)
	}

	data, err := json.MarshalIndent(&out, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// splitHistory separates an existing report file into its history
// entries and the report itself (stripped of the history field).
func splitHistory(data []byte) (hist []json.RawMessage, self json.RawMessage, err error) {
	var obj map[string]json.RawMessage
	if err := json.Unmarshal(data, &obj); err != nil {
		return nil, nil, err
	}
	if rawHist, ok := obj["history"]; ok {
		if err := json.Unmarshal(rawHist, &hist); err != nil {
			return nil, nil, err
		}
		delete(obj, "history")
	}
	self, err = json.Marshal(obj)
	return hist, self, err
}
