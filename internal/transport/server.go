package transport

import (
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"sync"

	"cosmos/internal/core"
	"cosmos/internal/stream"
)

// Server exposes a core.System over TCP.
type Server struct {
	sys *core.System
	ln  net.Listener

	mu      sync.Mutex
	sources map[string]*core.SourcePort
	queries map[string]*core.QueryHandle
	closed  bool
	wg      sync.WaitGroup
}

// NewServer wraps a system; callers own the listener lifecycle via Serve.
func NewServer(sys *core.System) *Server {
	return &Server{
		sys:     sys,
		sources: map[string]*core.SourcePort{},
		queries: map[string]*core.QueryHandle{},
	}
}

// Serve accepts connections until the listener closes.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	s.ln = ln
	s.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.handle(conn)
		}()
	}
}

// Close stops accepting and waits for connection handlers.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	ln := s.ln
	s.mu.Unlock()
	var err error
	if ln != nil {
		err = ln.Close()
	}
	s.wg.Wait()
	return err
}

// connWriter serialises gob writes on one connection.
type connWriter struct {
	mu  sync.Mutex
	enc *gob.Encoder
}

func (w *connWriter) send(r *Response) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.enc.Encode(r)
}

func (s *Server) handle(conn net.Conn) {
	defer conn.Close()
	dec := gob.NewDecoder(conn)
	w := &connWriter{enc: gob.NewEncoder(conn)}
	// Queries owned by this connection, cancelled when it drops.
	var mine []string
	defer func() {
		s.mu.Lock()
		defer s.mu.Unlock()
		for _, tag := range mine {
			if h, ok := s.queries[tag]; ok {
				delete(s.queries, tag)
				if err := s.sys.Cancel(h); err != nil {
					log.Printf("cosmosd: cancel %s: %v", tag, err)
				}
			}
		}
	}()
	for {
		var req Request
		if err := dec.Decode(&req); err != nil {
			if !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) {
				log.Printf("cosmosd: decode: %v", err)
			}
			return
		}
		resp := s.dispatch(&req, w, &mine)
		resp.ID = req.ID
		if err := w.send(resp); err != nil {
			return
		}
	}
}

func errResp(format string, args ...interface{}) *Response {
	return &Response{Kind: MsgError, Error: fmt.Sprintf(format, args...)}
}

func (s *Server) dispatch(req *Request, w *connWriter, mine *[]string) *Response {
	switch req.Kind {
	case MsgRegister:
		info, err := FromWireInfo(req.Info)
		if err != nil {
			return errResp("bad stream info: %v", err)
		}
		port, err := s.sys.RegisterStream(info, req.Node)
		if err != nil {
			return errResp("%v", err)
		}
		s.mu.Lock()
		s.sources[info.Schema.Stream] = port
		s.mu.Unlock()
		return &Response{Kind: MsgOK}

	case MsgPublish:
		s.mu.Lock()
		port, ok := s.sources[req.Tuple.Stream]
		s.mu.Unlock()
		if !ok {
			return errResp("stream %q not registered", req.Tuple.Stream)
		}
		schema, ok := s.sys.Catalog().Schema(req.Tuple.Stream)
		if !ok {
			return errResp("no schema for %q", req.Tuple.Stream)
		}
		t, err := FromWireTuple(req.Tuple, schema)
		if err != nil {
			return errResp("bad tuple: %v", err)
		}
		if err := port.Publish(t); err != nil {
			return errResp("%v", err)
		}
		return &Response{Kind: MsgOK}

	case MsgSubmit:
		h, err := s.sys.Submit(req.CQL, req.UserNode, func(t stream.Tuple) {
			_ = w.send(&Response{
				Kind:   MsgResult,
				Tuple:  ToWireTuple(t),
				Schema: ToWireSchema(t.Schema),
			})
		})
		if err != nil {
			return errResp("%v", err)
		}
		s.mu.Lock()
		s.queries[h.Tag] = h
		s.mu.Unlock()
		*mine = append(*mine, h.Tag)
		return &Response{Kind: MsgOK, QueryTag: h.Tag}

	case MsgCancel:
		s.mu.Lock()
		h, ok := s.queries[req.QueryTag]
		if ok {
			delete(s.queries, req.QueryTag)
		}
		s.mu.Unlock()
		if !ok {
			return errResp("unknown query %q", req.QueryTag)
		}
		if err := s.sys.Cancel(h); err != nil {
			return errResp("%v", err)
		}
		return &Response{Kind: MsgOK}

	case MsgStats:
		st := SystemStats{
			Queries:        s.sys.Queries(),
			Processors:     len(s.sys.Processors()),
			TotalDataBytes: s.sys.TotalDataBytes(),
		}
		for _, p := range s.sys.Processors() {
			st.GroupsPerProc = append(st.GroupsPerProc, p.Groups())
			st.LoadPerProc = append(st.LoadPerProc, p.Load())
		}
		return &Response{Kind: MsgOK, Stats: st}

	default:
		return errResp("unknown request kind %d", req.Kind)
	}
}
