// Package hotneg is the hotpath false-positive regression guard: every
// construct here is allowed on the hot path, so the analyzer must stay
// silent (the suite fails on any unexpected diagnostic).
package hotneg

import (
	"encoding/binary"
	"math"
	"math/bits"
	"sync"
	"sync/atomic"
	"time"

	"cosmos/internal/analysis/hotpath/testdata/src/hotdep"
)

type tuple struct {
	ts     int64
	values []float64
	name   string
}

//cosmos:hotpath
func leaf(t tuple) int64 { return t.ts }

//cosmos:hotpath-ok — audited boundary, pinned by its own benchmarks.
func audited(t tuple) int64 { return t.ts }

// Sink is the emission contract; implementations are audited per
// transport.
//
//cosmos:hotpath-ok
type Sink func(tuple)

type state struct {
	mu    sync.Mutex
	count atomic.Int64
	// onResult is the subscriber callback.
	//cosmos:hotpath-ok
	onResult func(tuple)
}

type pusher interface {
	// Push is on the data path.
	//cosmos:hotpath-ok
	Push(tuple) error
}

//cosmos:hotpath
func allAllowed(s *state, p pusher, emit Sink, t tuple) (out int64, err error) {
	// Annotated and audited callees, same-package and cross-package.
	out += leaf(t)
	out += audited(t)
	out += hotdep.Leaf(t.ts)
	out += hotdep.Boundary(t.ts)
	// Allowlisted leaf packages.
	s.mu.Lock()
	s.count.Add(1)
	s.mu.Unlock()
	out += int64(math.Float64bits(1.5))
	out += int64(bits.Len64(uint64(t.ts)))
	out += int64(time.Duration(t.ts))
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(t.ts))
	// Builtins, conversions, non-map range.
	vals := make([]float64, 0, len(t.values))
	vals = append(vals, t.values...)
	for i := range vals {
		out += int64(vals[i])
	}
	// Constant concatenation folds at compile time.
	const tag = "a" + "b"
	if t.name == tag {
		out++
	}
	// Vouched dynamic calls: named Sink type, annotated field,
	// annotated interface method.
	emit(t)
	s.onResult(t)
	err = p.Push(t)
	// Immediately-invoked and deferred literals never escape.
	defer func() { out += 0 }()
	func() { out++ }()
	return out, err
}
