package spe

import (
	"fmt"

	"cosmos/internal/stream"
)

// Snapshot captures a plan's execution state — the live window buffers
// and the watermark — for query-layer fault tolerance (paper §2: the
// query-layer module "is responsible for recovering the processing of
// queries from failures"). A restored plan continues exactly where the
// snapshot was taken.
type Snapshot struct {
	PlanID    string
	Watermark stream.Timestamp
	// Buffers maps alias → buffered tuples in arrival order.
	Buffers map[string][]stream.Tuple
}

// Snapshot exports the plan's current state. Tuples are shared, not
// copied; they are immutable by convention.
func (p *Plan) Snapshot() *Snapshot {
	s := &Snapshot{
		PlanID:    p.ID,
		Watermark: p.watermark,
		Buffers:   map[string][]stream.Tuple{},
	}
	for _, in := range p.inputs {
		s.Buffers[in.alias] = append([]stream.Tuple(nil), in.buf...)
	}
	return s
}

// Restore loads a snapshot into a freshly compiled plan of the same
// query. It errors when the snapshot's aliases do not match the plan.
func (p *Plan) Restore(s *Snapshot) error {
	for alias := range s.Buffers {
		if _, ok := p.byAlias[alias]; !ok {
			return fmt.Errorf("spe: snapshot alias %q unknown to plan %s", alias, p.ID)
		}
	}
	for _, in := range p.inputs {
		buf, ok := s.Buffers[in.alias]
		if !ok {
			return fmt.Errorf("spe: snapshot lacks alias %q", in.alias)
		}
		in.buf = append(in.buf[:0], buf...)
	}
	p.watermark = s.Watermark
	return nil
}
