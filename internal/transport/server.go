package transport

import (
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"runtime/debug"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"cosmos/internal/core"
	"cosmos/internal/obs"
	"cosmos/internal/stream"
)

// Server exposes a core deployment over TCP. The hosted system is
// usually a LiveSystem (cmd/cosmosd's default): subscription results
// then reach the wire through the per-worker direct-publish data path —
// each query proxy's delivery pump writes result frames as they arrive,
// with no stabilisation barrier on the steady-state path.
type Server struct {
	sys      *core.System
	closeSys func()
	// serialize marks a hosted synchronous (SimNet) system: its
	// single-threaded network cannot take concurrent publishes, so
	// dispatch from the per-connection goroutines funnels through opMu.
	// Live systems skip it — their surfaces are thread-safe. The price
	// of emulating a single-threaded network faithfully is that one
	// session's blocking write inside a publish cascade stalls the
	// others' system operations; -sim is the replay/debug mode, and a
	// graceful shutdown still terminates because it bounds every
	// writer first.
	serialize bool
	opMu      sync.Mutex

	// stateMu orders dispatch against shutdown: work-accepting requests
	// (register/publish/submit) hold the read side for their whole
	// operation, and stop flips closed under the write side — so once
	// stop proceeds, every accepted publish has fully landed in the
	// system and the drain covers it.
	stateMu sync.RWMutex
	closed  bool // guarded by stateMu

	// idleTimeout, when > 0, applies a read deadline to every session:
	// a connection that sends nothing (clients ping on a heartbeat
	// interval) within the window is considered dead. Off by default;
	// cosmosd enables it via -idle-timeout.
	idleTimeout time.Duration
	// linger is how long a resumable session's subscriptions survive a
	// dropped connection awaiting a resume before they are cancelled.
	linger time.Duration
	// maxWire caps the wire format version hellos may negotiate
	// (WithWireVersion; cosmosd's -wire flag forces v1 for debugging
	// or old peers).
	maxWire int

	mu       sync.Mutex
	ln       net.Listener                // guarded by mu
	sessions map[*session]struct{}       // guarded by mu
	detached map[string]*detachedSession // guarded by mu
	stopped  bool                        // guarded by mu
	wg       sync.WaitGroup

	// wire aggregates result-path counters across every session's
	// writer; snapshotted into SystemStats.Wire by MsgStats.
	wire wireMetrics
}

// wireMetrics is the server-wide wire-stage accounting shared by every
// connection writer: lock-free counters plus the hosted system's obs
// hub (for StageWire sampling and trace marks).
type wireMetrics struct {
	results atomic.Int64
	batches atomic.Int64
	bytes   atomic.Int64
	obs     *obs.Metrics
}

// WireStats snapshots the server's result-path series: counters plus
// the instantaneous pump backlog and session count.
func (s *Server) WireStats() obs.WireStats {
	ws := obs.WireStats{
		Results: s.wire.results.Load(),
		Batches: s.wire.batches.Load(),
		Bytes:   s.wire.bytes.Load(),
	}
	s.mu.Lock()
	ws.Connections = len(s.sessions)
	sessions := make([]*session, 0, len(s.sessions))
	for sess := range s.sessions {
		sessions = append(sessions, sess)
	}
	s.mu.Unlock()
	for _, sess := range sessions {
		if p := sess.w.pump.Load(); p != nil {
			ws.QueueDepth += p.depth()
		}
	}
	return ws
}

// defaultSessionLinger is how long a resumable session may stay
// disconnected before its subscriptions are cancelled.
const defaultSessionLinger = 2 * time.Minute

// ServerOption configures a Server.
type ServerOption func(*Server)

// WithSystemClose installs the deployment teardown Shutdown calls after
// the last connection has drained — core.LiveSystem.Close for a live
// daemon, nothing for an embedded test system.
func WithSystemClose(fn func()) ServerOption {
	return func(s *Server) { s.closeSys = fn }
}

// WithIdleTimeout bounds how long a session may go without sending any
// frame (requests and heartbeat pings both count) before the server
// drops it as dead. Zero or negative disables the deadline.
func WithIdleTimeout(d time.Duration) ServerOption {
	return func(s *Server) { s.idleTimeout = d }
}

// WithSessionLinger sets how long a resumable session's subscriptions
// are retained after its connection drops, awaiting a resume. Zero or
// negative disables resumption: a drop cancels the queries immediately,
// as for plain sessions.
func WithSessionLinger(d time.Duration) ServerOption {
	return func(s *Server) { s.linger = d }
}

// WithWireVersion caps the wire format version the server negotiates
// (see WireV1/WireV2). Values outside [1, WireMax] — including the
// zero value — keep the default, WireMax. Forcing WireV1 pins every
// connection to the plain gob protocol.
func WithWireVersion(v int) ServerOption {
	return func(s *Server) {
		if v >= WireV1 && v <= WireMax {
			s.maxWire = v
		}
	}
}

// NewServer wraps a system; callers own the listener lifecycle via Serve.
func NewServer(sys *core.System, opts ...ServerOption) *Server {
	s := &Server{
		sys:       sys,
		serialize: !sys.Live(),
		sessions:  map[*session]struct{}{},
		detached:  map[string]*detachedSession{},
		linger:    defaultSessionLinger,
		maxWire:   WireMax,
	}
	s.wire.obs = sys.Obs()
	for _, opt := range opts {
		opt(s)
	}
	return s
}

// Serve accepts connections until the listener closes.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	s.ln = ln
	stopped := s.stopped
	s.mu.Unlock()
	if stopped {
		// Stopped before Serve stored the listener (e.g. a SIGTERM in
		// the startup window): close it here so we don't accept
		// forever on a listener Shutdown never saw.
		_ = ln.Close() // best-effort: the listener never served
		return nil
	}
	for {
		conn, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			stopped := s.stopped
			s.mu.Unlock()
			if stopped {
				return nil
			}
			return err
		}
		sess := &session{
			srv:  s,
			conn: conn,
			w:    newConnWriter(conn, &s.wire),
			subs: map[string]*subState{},
		}
		s.mu.Lock()
		if s.stopped {
			s.mu.Unlock()
			_ = conn.Close() // refused during shutdown; nothing to report
			return nil
		}
		s.sessions[sess] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go func() {
			defer s.wg.Done()
			sess.serve()
			s.mu.Lock()
			delete(s.sessions, sess)
			s.mu.Unlock()
		}()
	}
}

// Close stops accepting, drops every connection, and waits for the
// handlers (each cancels its own queries on the way out). For the
// graceful variant — drain in-flight results, notify subscribers, close
// the hosted system — use Shutdown.
func (s *Server) Close() error {
	err, _ := s.stop(false)
	return err
}

// Shutdown is the graceful stop: close the listener, run the
// stabilisation barrier so every result already in flight reaches the
// wire, end each live subscription with a MsgEnd push, drop the
// connections, wait for the handlers, and finally close the hosted
// system (WithSystemClose). New publishes and submits are rejected the
// moment the stop begins ("server shutting down"), so a steadily
// publishing client cannot livelock the drain; what was accepted before
// still reaches subscribers. Idempotent, like Close: whichever runs
// first wins.
func (s *Server) Shutdown() error {
	err, first := s.stop(true)
	if first && s.closeSys != nil {
		s.closeSys()
	}
	return err
}

// stop implements Close (graceful=false) and Shutdown (graceful=true);
// reports whether this call was the one that performed the stop.
func (s *Server) stop(graceful bool) (error, bool) {
	s.mu.Lock()
	if s.stopped {
		s.mu.Unlock()
		return nil, false
	}
	s.stopped = true
	ln := s.ln
	sessions := make([]*session, 0, len(s.sessions))
	for sess := range s.sessions {
		sessions = append(sessions, sess)
	}
	s.mu.Unlock()
	if graceful {
		// Bound every write first: a subscriber that stopped reading
		// (full TCP buffer) would otherwise block a result write
		// inside a delivery pump — or a dispatch we are about to wait
		// out — indefinitely. The bound refreshes per write, so a
		// healthy-but-slow drain of a large backlog is not truncated;
		// only a stuck writer is.
		for _, sess := range sessions {
			sess.w.bound()
		}
	}
	// Flip the dispatch gate. Taking the write side waits for every
	// in-flight register/publish/submit (they hold the read side for
	// their whole operation), so once we proceed, everything the server
	// acknowledged has fully landed in the system — the drain below
	// covers it — and everything later is rejected.
	s.stateMu.Lock()
	s.closed = true
	s.stateMu.Unlock()
	var err error
	if ln != nil {
		err = ln.Close()
	}
	// Detached sessions can no longer be resumed (stopped is set, so
	// none can be parked after this either): drop their queries.
	s.mu.Lock()
	det := make([]*detachedSession, 0, len(s.detached))
	for id, d := range s.detached {
		delete(s.detached, id)
		d.timer.Stop()
		det = append(det, d)
	}
	s.mu.Unlock()
	for _, d := range det {
		s.dropDetached(d)
	}
	if graceful {
		// Flush results already accepted by the system onto the wire:
		// query-proxy pumps write result frames from their own
		// goroutines, and Quiesce returns only after those deliveries
		// (callback included) complete. This converges because the
		// gate above stopped further publishes — only the finite
		// backlog drains. On a synchronous system the barrier
		// serialises with any in-flight dispatch.
		if s.serialize {
			s.opMu.Lock()
		}
		s.sys.Quiesce()
		if s.serialize {
			s.opMu.Unlock()
		}
	}
	for _, sess := range sessions {
		sess.close(graceful)
	}
	s.wg.Wait()
	return err, true
}

// connWriter serialises server→client writes on one connection. Once
// bounded (graceful shutdown), every write refreshes a per-write
// deadline: a healthy-but-slow drain keeps extending it, while a
// subscriber that stopped reading fails its write within the bound
// instead of stalling the drain forever.
//
// Under wire v1 writes gob-encode directly onto the connection, as
// ever. A v2 hello upgrades the writer: every later message routes
// through the per-connection resultPump's single writer goroutine,
// which owns the encoder from then on. One gob encoder persists across
// the switch — gob emits type definitions once per stream, so starting
// a second encoder mid-connection would desynchronise the peer — and
// its output target flips from the raw conn to the pump's buffer.
type connWriter struct {
	conn    net.Conn
	bounded atomic.Bool
	wire    *wireMetrics // server-wide result-path accounting; never nil

	mu   sync.Mutex
	enc  *gob.Encoder               // guarded by mu
	tgt  *gobTarget                 // guarded by mu
	pump atomic.Pointer[resultPump] // non-nil once upgraded to v2
}

// gobTarget is the persistent encoder's redirectable output.
type gobTarget struct{ w io.Writer }

func (g *gobTarget) Write(b []byte) (int, error) { return g.w.Write(b) }

func newConnWriter(conn net.Conn, wire *wireMetrics) *connWriter {
	w := &connWriter{conn: conn, wire: wire}
	w.tgt = &gobTarget{w: conn}
	w.enc = gob.NewEncoder(w.tgt)
	return w
}

// writeBound is the per-write deadline applied during a graceful drain.
const writeBound = 5 * time.Second

func (w *connWriter) send(r *Response) error {
	if p := w.pump.Load(); p != nil {
		return p.sendControl(r)
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if p := w.pump.Load(); p != nil {
		// Upgraded while we waited for the lock: the pump owns the
		// encoder now.
		return p.sendControl(r)
	}
	if w.bounded.Load() {
		_ = w.conn.SetWriteDeadline(time.Now().Add(writeBound))
	}
	return w.enc.Encode(r)
}

// sendResult pushes one result tuple. v1 builds the classic gob
// MsgResult frame; v2 enqueues the raw tuple on the pump, which
// batches and binary-encodes it.
func (w *connWriter) sendResult(st *subState, t stream.Tuple, seq uint64) error {
	if p := w.pump.Load(); p != nil {
		return p.sendResult(st, t, seq)
	}
	// v1: one gob frame per result, written synchronously here — account
	// the wire stage around the encode+write.
	wm := w.wire
	wm.results.Add(1)
	wm.batches.Add(1)
	start := wm.obs.StageStartN(obs.StageWire, 1)
	err := w.send(&Response{
		Kind:     MsgResult,
		QueryTag: t.Schema.Stream,
		Tuple:    ToWireTuple(t),
		Schema:   ToWireSchema(t.Schema),
		Seq:      seq,
	})
	wm.obs.StageEnd(obs.StageWire, start)
	wm.obs.TraceMark(int64(t.Ts), obs.StageWire)
	return err
}

// upgrade writes the hello OK as the connection's last unframed
// message and atomically installs the v2 result pump behind it, so no
// other write can interleave between the two. Idempotent: a repeated
// hello routes its OK through the existing pump.
func (w *connWriter) upgrade(resp *Response) error {
	w.mu.Lock()
	if p := w.pump.Load(); p != nil {
		w.mu.Unlock()
		return p.sendControl(resp)
	}
	if w.bounded.Load() {
		_ = w.conn.SetWriteDeadline(time.Now().Add(writeBound))
	}
	err := w.enc.Encode(resp)
	if err == nil {
		p := newResultPump(w)
		w.tgt.w = p.bw // the persistent encoder now feeds the pump's buffer
		w.pump.Store(p)
		go p.run()
	}
	w.mu.Unlock()
	return err
}

// drain blocks until every write accepted so far reached the wire
// (v2's pump is asynchronous; v1 writes already have).
func (w *connWriter) drain() {
	if p := w.pump.Load(); p != nil {
		p.drain()
	}
}

// teardown stops the pump goroutine, if any. Safe to call more than
// once; the connection close follows it.
func (w *connWriter) teardown() {
	if p := w.pump.Load(); p != nil {
		p.close()
	}
}

// bound switches the writer to per-write deadlines and stamps an
// immediate absolute one, which also unblocks a Write already stuck on
// a full TCP buffer (deadlines apply to in-flight I/O). Lock-free on
// purpose: taking w.mu here would wait behind exactly the stuck write
// this exists to cut short.
func (w *connWriter) bound() {
	w.bounded.Store(true)
	_ = w.conn.SetWriteDeadline(time.Now().Add(writeBound))
}

// session is one client connection's server-side state: the serialised
// writer and the subscriptions the connection owns. A plain session
// (no MsgHello) cancels its queries when the connection drops; a
// resumable one parks them in the server's detached registry for the
// linger window instead.
type session struct {
	srv  *Server
	conn net.Conn
	w    *connWriter

	mu    sync.Mutex
	id    string               // guarded by mu; client-chosen resumable identity; "" = plain session
	epoch uint64               // guarded by mu; bumped on every adoption of this identity
	subs  map[string]*subState // guarded by mu
	ended bool                 // guarded by mu
}

// detachedSession holds the parked subscriptions of a resumable session
// whose connection dropped, until a resume adopts them or the linger
// timer cancels them.
type detachedSession struct {
	id    string
	epoch uint64
	subs  map[string]*subState
	timer *time.Timer
}

func (sess *session) serve() {
	defer sess.close(false)
	defer func() {
		// Contain a panicking session handler: this connection dies
		// (the deferred close above still runs), the process and the
		// other sessions do not.
		if r := recover(); r != nil {
			log.Printf("cosmosd: session panic (contained): %v\n%s", r, debug.Stack())
		}
	}()
	dec := gob.NewDecoder(sess.conn)
	idle := sess.srv.idleTimeout
	for {
		if idle > 0 {
			_ = sess.conn.SetReadDeadline(time.Now().Add(idle))
		}
		var req Request
		if err := dec.Decode(&req); err != nil {
			if !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) {
				log.Printf("cosmosd: decode: %v", err)
			}
			return
		}
		if req.Kind == MsgPing {
			// Keepalive: answer outside dispatch so a ping never waits
			// behind the synchronous backend's serialisation.
			if err := sess.w.send(&Response{ID: req.ID, Kind: MsgPong}); err != nil {
				return
			}
			continue
		}
		resp := sess.dispatch(&req)
		if resp == nil {
			continue // dispatch responded itself (MsgSubmit/MsgResume ordering)
		}
		resp.ID = req.ID
		if err := sess.w.send(resp); err != nil {
			return
		}
	}
}

// close tears the session down. Graceful closes push MsgShutdown (so
// resilient clients know the loss is terminal and do not reconnect)
// and then a MsgEnd per live subscription before the queries are
// cancelled and the connection drops; those pushes inherit the drain's
// per-write deadline, so an unresponsive subscriber cannot block the
// shutdown. An abrupt close of a resumable session parks its
// subscriptions in the detached registry — deliveries keep advancing
// each sequence counter (counted, dropped) so a later resume reports
// the exact gap. Idempotent (serve's deferred abrupt close after a
// graceful shutdown is a no-op).
func (sess *session) close(graceful bool) {
	if graceful {
		sess.w.bound()
	}
	sess.mu.Lock()
	if sess.ended {
		sess.mu.Unlock()
		return
	}
	sess.ended = true
	subs := sess.subs
	sess.subs = map[string]*subState{}
	id, epoch := sess.id, sess.epoch
	sess.mu.Unlock()
	if graceful {
		_ = sess.w.send(&Response{Kind: MsgShutdown})
		for tag, st := range subs {
			_ = sess.w.send(&Response{Kind: MsgEnd, QueryTag: tag})
			if err := sess.srv.cancelQuery(st.h); err != nil {
				log.Printf("cosmosd: cancel %s: %v", tag, err)
			}
		}
		// The v2 pump writes asynchronously: wait until the queued
		// results and the MsgEnd pushes behind them are on the wire
		// (bounded — the drain deadline kills a stuck write) before
		// the connection drops. v1 writes already happened inline.
		sess.w.drain()
		sess.w.teardown()
		_ = sess.conn.Close() // session is over; close errors carry no signal
		return
	}
	sess.w.teardown()
	if id != "" && len(subs) > 0 {
		for _, st := range subs {
			st.detach()
		}
		if sess.srv.parkDetached(id, epoch, subs) {
			_ = sess.conn.Close() // parked for resume; the conn itself is dead weight
			return
		}
		// Server stopping or linger disabled: fall through and cancel.
	}
	for tag, st := range subs {
		if err := sess.srv.cancelQuery(st.h); err != nil {
			log.Printf("cosmosd: cancel %s: %v", tag, err)
		}
	}
	_ = sess.conn.Close() // session is over; close errors carry no signal
}

// parkDetached stores a dropped resumable session's subscriptions for
// the linger window. Reports false when the server is stopping or
// resumption is disabled — the caller then cancels the queries.
func (s *Server) parkDetached(id string, epoch uint64, subs map[string]*subState) bool {
	if s.linger <= 0 {
		return false
	}
	var evicted *detachedSession
	s.mu.Lock()
	if s.stopped {
		s.mu.Unlock()
		return false
	}
	if old := s.detached[id]; old != nil {
		// A second connection claimed this identity and detached before
		// the first parked: newest state wins, the older queries die.
		delete(s.detached, id)
		old.timer.Stop()
		evicted = old
	}
	d := &detachedSession{id: id, epoch: epoch, subs: subs}
	d.timer = time.AfterFunc(s.linger, func() { s.expireDetached(id, d) })
	s.detached[id] = d
	s.mu.Unlock()
	if evicted != nil {
		s.dropDetached(evicted)
	}
	return true
}

// takeDetached removes and returns the parked session for id, if any.
func (s *Server) takeDetached(id string) *detachedSession {
	s.mu.Lock()
	defer s.mu.Unlock()
	d := s.detached[id]
	if d == nil {
		return nil
	}
	delete(s.detached, id)
	d.timer.Stop()
	return d
}

// expireDetached is the linger timer's callback: the client never came
// back, so its queries are cancelled.
func (s *Server) expireDetached(id string, d *detachedSession) {
	s.mu.Lock()
	if s.detached[id] != d {
		s.mu.Unlock()
		return // resumed (or replaced) in the meantime
	}
	delete(s.detached, id)
	s.mu.Unlock()
	s.dropDetached(d)
}

// dropDetached cancels every query of a parked session.
func (s *Server) dropDetached(d *detachedSession) {
	for tag, st := range d.subs {
		if err := s.cancelQuery(st.h); err != nil {
			log.Printf("cosmosd: cancel detached %s: %v", tag, err)
		}
	}
}

// cancelQuery removes a query from the hosted system, honouring the
// synchronous backend's serialisation (a dropped connection's teardown
// must not race another session's dispatch into the SimNet).
func (s *Server) cancelQuery(h *core.QueryHandle) error {
	if s.serialize {
		s.opMu.Lock()
		defer s.opMu.Unlock()
	}
	return s.sys.Cancel(h)
}

func errResp(format string, args ...interface{}) *Response {
	return &Response{Kind: MsgError, Error: fmt.Sprintf(format, args...)}
}

// subState is one subscription's server-side delivery state. It owns
// the per-subscription result sequence — every delivery increments seq
// whether or not a connection is attached — and a gate that buffers
// frames while a response announcing the subscription (submit OK,
// resume OK) is being written, so the client never sees a result frame
// before the response that explains it. While detached (w == nil, a
// resumable session's connection dropped), deliveries are counted and
// dropped: the hole left behind is exactly the gap a resume reports.
type subState struct {
	tag string
	h   *core.QueryHandle

	mu    sync.Mutex
	seq   uint64       // guarded by mu
	w     *connWriter  // guarded by mu; nil while detached
	gated bool         // guarded by mu
	held  []heldResult // guarded by mu
}

// heldResult is one result delivered while the subscription was gated,
// kept in its raw form so the writer that eventually flushes it picks
// the encoding (gob for v1, the pump's binary framing for v2).
type heldResult struct {
	t   stream.Tuple
	seq uint64
}

// deliver is the query's result callback; it runs on the query proxy's
// delivery goroutine (one pump per query, so calls are serial).
func (st *subState) deliver(t stream.Tuple) {
	st.mu.Lock()
	st.seq++
	seq := st.seq
	if st.gated {
		st.held = append(st.held, heldResult{t: t, seq: seq})
		st.mu.Unlock()
		return
	}
	w := st.w
	st.mu.Unlock()
	if w != nil {
		_ = w.sendResult(st, t, seq)
	}
}

// gate holds deliveries and reports the current sequence — the resume
// point a MsgResume OK announces.
func (st *subState) gate() uint64 {
	st.mu.Lock()
	st.gated = true
	seq := st.seq
	st.mu.Unlock()
	return seq
}

// open flushes held frames to w and lets subsequent deliveries write
// directly. The flush happens under the lock so a concurrent delivery
// cannot overtake a held frame.
func (st *subState) open(w *connWriter) {
	st.mu.Lock()
	for _, r := range st.held {
		_ = w.sendResult(st, r.t, r.seq)
	}
	st.held = nil
	st.gated = false
	st.w = w
	st.mu.Unlock()
}

// detach stops writing without losing count: deliveries while detached
// advance seq and vanish. Held frames already carry sequences, so
// dropping them is covered by the same gap.
func (st *subState) detach() {
	st.mu.Lock()
	st.w = nil
	st.gated = false
	st.held = nil
	st.mu.Unlock()
}

func (sess *session) dispatch(req *Request) *Response {
	s := sess.srv
	switch req.Kind {
	case MsgHello, MsgResume:
		// Session management: handled before the synchronous backend's
		// serialisation lock (hello may cancel orphaned queries, and
		// cancelQuery takes that lock itself).
		s.stateMu.RLock()
		closed := s.closed
		s.stateMu.RUnlock()
		if closed {
			return errResp("server shutting down")
		}
		if req.Kind == MsgHello {
			return sess.hello(req)
		}
		return sess.resume(req)
	case MsgRegister, MsgPublish, MsgSubmit:
		// Hold the dispatch gate for the whole operation: stop() flips
		// closed under the write side, so a request that passes this
		// check has fully landed in the system before the shutdown
		// drain begins — no acknowledged tuple can slip past Quiesce.
		s.stateMu.RLock()
		defer s.stateMu.RUnlock()
		if s.closed {
			return errResp("server shutting down")
		}
	}
	if s.serialize {
		s.opMu.Lock()
		defer s.opMu.Unlock()
	}
	switch req.Kind {
	case MsgRegister:
		info, err := FromWireInfo(req.Info)
		if err != nil {
			return errResp("bad stream info: %v", err)
		}
		if _, err := s.sys.RegisterStream(info, req.Node); err != nil {
			return errResp("%v", err)
		}
		return &Response{Kind: MsgOK}

	case MsgPublish:
		port, ok := s.sys.Source(req.Tuple.Stream)
		if !ok {
			return errResp("stream %q not registered", req.Tuple.Stream)
		}
		schema, ok := s.sys.Catalog().Schema(req.Tuple.Stream)
		if !ok {
			return errResp("no schema for %q", req.Tuple.Stream)
		}
		t, err := FromWireTuple(req.Tuple, schema)
		if err != nil {
			return errResp("bad tuple: %v", err)
		}
		if err := port.Publish(t); err != nil {
			return errResp("%v", err)
		}
		return &Response{Kind: MsgOK}

	case MsgSubmit:
		// The result callback runs on the query proxy's delivery
		// goroutine (the LiveClient pump on a live system) and writes
		// the frame onto the shared connection writer — per query, wire
		// order is delivery order. The result stream name IS the query
		// tag, so the closure needs no capture of the not-yet-known
		// tag. The sub starts gated: results delivered between the
		// proxy attaching and the MsgOK write are held, so no frame for
		// this query precedes the response announcing its tag.
		st := &subState{gated: true}
		h, err := s.sys.Submit(req.CQL, req.UserNode, st.deliver)
		if err != nil {
			return errResp("%v", err)
		}
		st.tag, st.h = h.Tag, h
		sess.mu.Lock()
		if sess.ended {
			// Lost the race with a shutdown: don't leak the query.
			sess.mu.Unlock()
			_ = s.sys.Cancel(h)
			return errResp("server shutting down")
		}
		sess.subs[h.Tag] = st
		// Write the OK and open the gate while holding the session
		// lock: a concurrent graceful close (which takes the lock
		// before writing MsgEnd) can then neither interleave this
		// subscription's MsgEnd before the response announcing its tag
		// nor before the results delivered while the submit was in
		// flight.
		_ = sess.w.send(&Response{ID: req.ID, Kind: MsgOK, QueryTag: h.Tag})
		st.open(sess.w)
		sess.mu.Unlock()
		return nil

	case MsgCancel:
		sess.mu.Lock()
		st, ok := sess.subs[req.QueryTag]
		if ok {
			delete(sess.subs, req.QueryTag)
		}
		sess.mu.Unlock()
		if !ok {
			return errResp("unknown query %q", req.QueryTag)
		}
		if err := s.sys.Cancel(st.h); err != nil {
			return errResp("%v", err)
		}
		return &Response{Kind: MsgOK}

	case MsgStats:
		st := s.sys.StatsSnapshot()
		ws := s.WireStats()
		st.Wire = &ws
		return &Response{Kind: MsgOK, Stats: st}

	case MsgCatalog:
		reg := s.sys.Catalog()
		var infos []WireInfo
		for _, name := range reg.Names() {
			if info, ok := reg.Lookup(name); ok {
				infos = append(infos, ToWireInfo(info))
			}
		}
		return &Response{Kind: MsgOK, Infos: infos}

	case MsgQuiesce:
		s.sys.Quiesce()
		return &Response{Kind: MsgOK}

	default:
		return errResp("unknown request kind %d", req.Kind)
	}
}

// hello opens a connection's session: it negotiates the wire format
// (the client announces the highest version it speaks, the server
// picks min(that, its own maximum)), and — when the client sent a
// session id — marks the session resumable under that identity and
// adopts any subscriptions a previous connection with that identity
// left parked. Parked subscriptions the client does not intend to
// resume (cancelled while disconnected, or forgotten) are cancelled.
// The OK reports the chosen wire version, the new epoch and the
// adopted tags; tags absent from the reply no longer exist server-side
// — the client resubmits those from scratch. When v2 is agreed, the OK
// is the last unframed message on the connection: writing it and
// installing the result pump happen atomically (connWriter.upgrade),
// and hello returns nil so serve does not write a second response.
func (sess *session) hello(req *Request) *Response {
	s := sess.srv
	wire := negotiateWire(req.WireVersion, s.maxWire)
	if req.SessionID == "" {
		// Version-only hello from a plain (non-resumable) client.
		if len(req.ResumeTags) > 0 {
			return errResp("hello: resume tags without a session id")
		}
		return sess.finishHello(req, &Response{Kind: MsgOK, WireVersion: wire}, wire)
	}
	d := s.takeDetached(req.SessionID)
	resume := make(map[string]bool, len(req.ResumeTags))
	for _, tag := range req.ResumeTags {
		resume[tag] = true
	}
	epoch := uint64(1)
	var adopted []string
	var orphans []*subState
	if d != nil {
		epoch = d.epoch + 1
		for tag, st := range d.subs {
			if resume[tag] {
				adopted = append(adopted, tag)
			} else {
				orphans = append(orphans, st)
			}
		}
	}
	sess.mu.Lock()
	if sess.ended {
		// Lost the race with a shutdown: nothing can be adopted.
		sess.mu.Unlock()
		if d != nil {
			s.dropDetached(d)
		}
		return errResp("server shutting down")
	}
	sess.id = req.SessionID
	sess.epoch = epoch
	for _, tag := range adopted {
		sess.subs[tag] = d.subs[tag]
	}
	sess.mu.Unlock()
	for _, st := range orphans {
		if err := s.cancelQuery(st.h); err != nil {
			log.Printf("cosmosd: cancel %s: %v", st.tag, err)
		}
	}
	sort.Strings(adopted)
	return sess.finishHello(req, &Response{Kind: MsgOK, Epoch: epoch, Tags: adopted, WireVersion: wire}, wire)
}

// finishHello delivers a hello's OK. Under v1 the response is returned
// for serve's ordinary write path; under v2 it is written through
// connWriter.upgrade so the pump installs atomically behind it, and
// nil is returned. Adopted subscriptions are still detached at this
// point (resume attaches them later), so no result can race the
// switch.
func (sess *session) finishHello(req *Request, resp *Response, wire int) *Response {
	if wire < WireV2 {
		return resp
	}
	resp.ID = req.ID
	_ = sess.w.upgrade(resp)
	return nil
}

// resume re-attaches an adopted subscription to this connection. The OK
// carries the current sequence — the resume point; everything between
// the client's last-seen sequence and that point was delivered into the
// void while detached and is the gap the client reports. The response
// is written under the session lock, before the gate opens, so no
// resumed frame precedes it.
func (sess *session) resume(req *Request) *Response {
	sess.mu.Lock()
	defer sess.mu.Unlock()
	if sess.ended {
		return errResp("server shutting down")
	}
	st := sess.subs[req.QueryTag]
	if st == nil {
		return errResp("unknown query %q", req.QueryTag)
	}
	seq := st.gate()
	_ = sess.w.send(&Response{ID: req.ID, Kind: MsgOK, QueryTag: req.QueryTag, Seq: seq, Epoch: sess.epoch})
	st.open(sess.w)
	return nil
}
