package spe

import (
	"fmt"

	"cosmos/internal/cql"
	"cosmos/internal/predicate"
	"cosmos/internal/stream"
)

// This file is the compiled half of the plan's two-plane design. At
// Compile time every attribute reference on the per-tuple path is
// resolved against the plan's input schemas: selections become
// predicate.Compiled index walks, the select list becomes (slot, column)
// pairs, join and residual predicates compile against the joined
// namespace, and equi-join inputs get hash-partitioned buffers keyed on
// the compiled join columns. Anything the compiler cannot prove
// error-free stays on the interpreted path in plan.go, which the
// compiled plane is differentially tested against.

// slotCol addresses one column of one input slot of a combination.
type slotCol struct {
	slot, col int
}

// compiledPlan holds the index-resolved artifacts of an SPJ plan
// (aggregate plans keep theirs inside aggState).
type compiledPlan struct {
	// emitCols resolves the select list; tsSlots lists the slots whose
	// hidden input-timestamp column is appended (IncludeInputTs).
	emitCols []slotCol
	tsSlots  []int
	// cmps and resid evaluate the join predicates and residual DNF over
	// the assembled joined value slice; trivial short-circuits both.
	cmps    *predicate.CompiledCmps
	resid   *predicate.Compiled
	trivial bool
	// offsets[i] is input i's value offset in the joined namespace;
	// scratch and combo are reusable per-push buffers (Push is
	// serialised per plan — under the engine lock in spe.Engine, under
	// the plan's slot lock in the exec runtime; emitted tuples never
	// alias them).
	offsets []int
	scratch []stream.Value
	combo   []stream.Tuple
}

// buildCompiled attempts to compile the whole per-tuple path. On error
// the plan is left untouched and keeps running interpreted.
func (p *Plan) buildCompiled(b *cql.Bound) error {
	selC := make([]*predicate.Compiled, len(p.inputs))
	for i, in := range p.inputs {
		c, err := predicate.Compile(in.sel, in.schema)
		if err != nil {
			return err
		}
		selC[i] = c
	}
	var cp *compiledPlan
	if p.agg == nil {
		cp = &compiledPlan{combo: make([]stream.Tuple, len(p.inputs))}
		off := 0
		cp.offsets = make([]int, len(p.inputs))
		for i, in := range p.inputs {
			cp.offsets[i] = off
			off += in.schema.Arity()
		}
		cp.scratch = make([]stream.Value, off)
		for _, c := range b.SelectCols {
			slot := p.indexOf(c.Qualifier)
			if slot < 0 {
				return fmt.Errorf("spe %s: unknown alias %s", p.ID, c.Qualifier)
			}
			col := p.inputs[slot].schema.ColIndex(c.Name)
			if col < 0 {
				return fmt.Errorf("spe %s: input of %s lacks %s", p.ID, c.Qualifier, c.Name)
			}
			cp.emitCols = append(cp.emitCols, slotCol{slot, col})
		}
		if b.IncludeInputTs && len(b.From) > 1 {
			for i, ref := range b.From {
				if ref.Window != stream.Now {
					cp.tsSlots = append(cp.tsSlots, i)
				}
			}
		}
		cmps, err := predicate.CompileAttrCmps(p.joins, p.joined)
		if err != nil {
			return err
		}
		cp.cmps = cmps
		if len(p.residual) > 0 && !p.residual.IsTrue() {
			rc, err := predicate.Compile(p.residual, p.joined)
			if err != nil {
				return err
			}
			cp.resid = rc
		}
		cp.trivial = len(p.joins) == 0 && cp.resid == nil
	}
	// Commit only after every piece compiled.
	for i, in := range p.inputs {
		in.selC = selC[i]
	}
	if cp != nil && len(p.inputs) > 1 {
		for i, in := range p.inputs {
			in.hash = p.buildJoinIndex(cp, i)
		}
	}
	p.cp = cp
	return nil
}

// adapter caches the index projection from one source schema to the
// input's projected schema. Push rebinds it by name whenever a tuple
// arrives under a different schema pointer (schema drift), mirroring the
// CBN broker's routing-table rebinds.
type adapter struct {
	src      *stream.Schema
	idx      []int
	identity bool
}

// adapt normalises an incoming tuple to the input's projected schema. In
// compiled mode the projection is a cached index copy keyed on the
// source schema pointer; drift re-resolves by name, and a drift that
// changes an attribute's kind degrades the whole plan to the interpreted
// path (the compiled comparisons trust declared kinds). The interpreted
// path projects by name per tuple, exactly as before.
func (p *Plan) adapt(in *inputState, t stream.Tuple) (stream.Tuple, error) {
	if p.compiled {
		if t.Schema != in.ad.src {
			p.rebindAdapter(in, t.Schema)
		}
		if p.compiled && t.Schema == in.ad.src {
			if in.ad.identity {
				return stream.Tuple{Schema: in.schema, Ts: t.Ts, Values: t.Values}, nil
			}
			return t.ProjectIdx(in.ad.idx, in.schema), nil
		}
	}
	return t.Project(in.schema)
}

// rebindAdapter re-resolves the input's projection against a new source
// schema. A missing attribute leaves the adapter unbound so the caller
// falls through to Project (whose error the interpreted path raises
// verbatim); an attribute whose kind no longer conforms to the compiled
// schema degrades the plan.
func (p *Plan) rebindAdapter(in *inputState, src *stream.Schema) {
	idx := make([]int, len(in.schema.Fields))
	identity := src.Arity() == len(idx)
	for i, f := range in.schema.Fields {
		j := src.ColIndex(f.Name)
		if j < 0 {
			return // missing attribute: Project reports it per tuple
		}
		if !kindConforms(f.Kind, src.Fields[j].Kind) {
			p.degrade()
			return
		}
		idx[i] = j
		if j != i {
			identity = false
		}
	}
	in.ad = adapter{src: src, idx: idx, identity: identity}
}

// kindConforms reports whether values of a source field kind always
// conform to a destination field kind (including the int widening
// NewTuple admits into float and time fields).
func kindConforms(dst, src stream.Kind) bool {
	return dst == src ||
		(src == stream.KindInt && (dst == stream.KindFloat || dst == stream.KindTime))
}

// pushCompiled is the index-resolved per-tuple path.
func (p *Plan) pushCompiled(in *inputState, t stream.Tuple) ([]stream.Tuple, error) {
	if !in.selC.IsTrue() && !in.selC.EvalValues(t.Values, t.Ts) {
		return nil, nil
	}
	if p.agg != nil {
		if err := p.evict(in); err != nil {
			return nil, err
		}
		seq := in.insert(t)
		res, err := p.agg.update(in, t, seq, true)
		if err != nil {
			return nil, err
		}
		for i := range res {
			res[i].Schema = p.Result
		}
		return res, nil
	}
	cp := p.cp
	if len(p.inputs) == 1 {
		cp.combo[0] = t
		var out []stream.Tuple
		if cp.accept(cp.combo) {
			out = append(out, cp.emit(p, cp.combo))
		}
		cp.combo[0] = stream.Tuple{}
		return out, nil
	}
	for _, other := range p.inputs {
		if err := p.evict(other); err != nil {
			return nil, err
		}
	}
	selfIdx := p.indexOf(in.alias)
	cp.combo[selfIdx] = t
	var out []stream.Tuple
	p.dfsCompiled(0, selfIdx, &out)
	cp.combo[selfIdx] = stream.Tuple{}
	in.insert(t)
	return out, nil
}

// dfsCompiled enumerates join combinations depth-first in input order —
// the same lexicographic (input, arrival) order the interpreted
// breadth-first probe produces. Each non-self input contributes either
// its equi-partition bucket (when every partner column is already placed
// and hash-exact) or a scan of its live window.
func (p *Plan) dfsCompiled(i, selfIdx int, out *[]stream.Tuple) {
	cp := p.cp
	if i == len(p.inputs) {
		if cp.accept(cp.combo) {
			*out = append(*out, cp.emit(p, cp.combo))
		}
		return
	}
	if i == selfIdx {
		p.dfsCompiled(i+1, selfIdx, out)
		return
	}
	in := p.inputs[i]
	combo := cp.combo
	if in.hash != nil {
		if key, ok := in.hash.probeKey(combo); ok {
			liveMin := in.liveMin()
			bkt := in.hash.bucket(key, liveMin)
			ovf := in.hash.liveOverflow(liveMin)
			// Merge bucket and overflow candidates in arrival order so
			// emission order matches the interpreted scan.
			bi, oi := 0, 0
			for bi < len(bkt) || oi < len(ovf) {
				var seq uint64
				if oi == len(ovf) || (bi < len(bkt) && bkt[bi] < ovf[oi]) {
					seq = bkt[bi]
					bi++
				} else {
					seq = ovf[oi]
					oi++
				}
				u := in.at(seq)
				if !p.pairwiseJoinable(combo, i, u, in) {
					continue
				}
				combo[i] = u
				p.dfsCompiled(i+1, selfIdx, out)
			}
			combo[i] = stream.Tuple{}
			return
		}
	}
	for _, u := range in.live() {
		if !p.pairwiseJoinable(combo, i, u, in) {
			continue
		}
		combo[i] = u
		p.dfsCompiled(i+1, selfIdx, out)
	}
	combo[i] = stream.Tuple{}
}

// accept evaluates the compiled join predicates and residual over a full
// combination, assembling the joined value slice into the reusable
// scratch buffer.
func (cp *compiledPlan) accept(combo []stream.Tuple) bool {
	if cp.trivial {
		return true
	}
	for s, t := range combo {
		copy(cp.scratch[cp.offsets[s]:], t.Values)
	}
	if !cp.cmps.EvalValues(cp.scratch) {
		return false
	}
	if cp.resid != nil && !cp.resid.EvalValues(cp.scratch, comboTs(combo)) {
		return false
	}
	return true
}

// emit projects a combination into the result schema through the
// pre-resolved (slot, column) pairs. Kinds were validated at compile
// time, so the tuple is built directly.
func (cp *compiledPlan) emit(p *Plan, combo []stream.Tuple) stream.Tuple {
	values := make([]stream.Value, 0, p.Result.Arity())
	for _, sc := range cp.emitCols {
		values = append(values, combo[sc.slot].Values[sc.col])
	}
	for _, s := range cp.tsSlots {
		values = append(values, stream.Time(combo[s].Ts))
	}
	return stream.Tuple{Schema: p.Result, Ts: comboTs(combo), Values: values}
}

func comboTs(combo []stream.Tuple) stream.Timestamp {
	ts := stream.Timestamp(-1 << 62)
	for _, t := range combo {
		if t.Ts > ts {
			ts = t.Ts
		}
	}
	return ts
}

// joinIndex hash-partitions one join input's window buffer on its
// compiled equi-join columns. Buckets hold absolute tuple sequences in
// arrival order; expired prefixes are trimmed lazily on probe and swept
// wholesale once evictions dominate the live window. Tuples whose key
// values are not hash-exact (stream.Value.KeyExact) go to the overflow
// list and are scanned on every probe, so Compare-equality corner cases
// still join exactly as the interpreted path would.
type joinIndex struct {
	keyCols  []int     // this input's key columns, in join-predicate order
	partners []slotCol // matching column in the combo, per key column
	buckets  map[hashKey][]uint64
	overflow []uint64
}

// buildJoinIndex resolves input i's equi-join columns against the joined
// namespace. Inputs with no equality predicate get no index (the probe
// falls back to the live-window scan — the nested loop — which is also
// what non-equi predicates use).
func (p *Plan) buildJoinIndex(cp *compiledPlan, i int) *joinIndex {
	var keyCols []int
	var partners []slotCol
	for _, jp := range p.joins {
		if jp.Op != predicate.EQ {
			continue
		}
		ls, lc := cp.locate(p.joined.ColIndex(jp.Left))
		rs, rc := cp.locate(p.joined.ColIndex(jp.Right))
		switch {
		case ls == i && rs != i:
			keyCols = append(keyCols, lc)
			partners = append(partners, slotCol{rs, rc})
		case rs == i && ls != i:
			keyCols = append(keyCols, rc)
			partners = append(partners, slotCol{ls, lc})
		}
	}
	if len(keyCols) == 0 {
		return nil
	}
	return &joinIndex{keyCols: keyCols, partners: partners, buckets: map[hashKey][]uint64{}}
}

// locate maps a joined-namespace column index to its (slot, column).
func (cp *compiledPlan) locate(col int) (int, int) {
	for s := len(cp.offsets) - 1; s >= 0; s-- {
		if col >= cp.offsets[s] {
			return s, col - cp.offsets[s]
		}
	}
	return 0, col
}

// insert files a buffered tuple under its equi-key bucket, or in the
// overflow list when any key value is not hash-exact.
func (j *joinIndex) insert(t stream.Tuple, seq uint64) {
	var k hashKey
	for m, c := range j.keyCols {
		v := t.Values[c]
		if !v.KeyExact() {
			j.overflow = append(j.overflow, seq)
			return
		}
		k = k.with(m, v)
	}
	j.buckets[k] = append(j.buckets[k], seq)
}

// probeKey builds the probe key from the partner columns already placed
// in the combo. ok is false when a partner is not yet placed or a value
// is not hash-exact; the caller then scans the live window instead.
func (j *joinIndex) probeKey(combo []stream.Tuple) (hashKey, bool) {
	var k hashKey
	for m, pt := range j.partners {
		t := combo[pt.slot]
		if t.Schema == nil {
			return hashKey{}, false
		}
		v := t.Values[pt.col]
		if !v.KeyExact() {
			return hashKey{}, false
		}
		k = k.with(m, v)
	}
	return k, true
}

// bucket returns the live sequences filed under a key, trimming the
// expired prefix in place.
func (j *joinIndex) bucket(k hashKey, liveMin uint64) []uint64 {
	bkt, ok := j.buckets[k]
	if !ok {
		return nil
	}
	n := 0
	for n < len(bkt) && bkt[n] < liveMin {
		n++
	}
	if n == len(bkt) {
		delete(j.buckets, k)
		return nil
	}
	if n > 0 {
		bkt = bkt[n:]
		j.buckets[k] = bkt
	}
	return bkt
}

// liveOverflow returns the live overflow sequences, trimming the expired
// prefix in place.
func (j *joinIndex) liveOverflow(liveMin uint64) []uint64 {
	n := 0
	for n < len(j.overflow) && j.overflow[n] < liveMin {
		n++
	}
	if n > 0 {
		j.overflow = j.overflow[n:]
	}
	return j.overflow
}

// sweep drops every expired sequence and compacts the retained slices,
// bounding memory for buckets that are never probed again.
func (j *joinIndex) sweep(liveMin uint64) {
	for k, bkt := range j.buckets {
		n := 0
		for n < len(bkt) && bkt[n] < liveMin {
			n++
		}
		if n == len(bkt) {
			delete(j.buckets, k)
			continue
		}
		if n > 0 {
			j.buckets[k] = append(bkt[:0:0], bkt[n:]...)
		}
	}
	n := 0
	for n < len(j.overflow) && j.overflow[n] < liveMin {
		n++
	}
	if n > 0 {
		j.overflow = append(j.overflow[:0:0], j.overflow[n:]...)
	}
}

// reset clears all hash state (used when rebuilding from a snapshot).
func (j *joinIndex) reset() {
	j.buckets = map[hashKey][]uint64{}
	j.overflow = nil
}
