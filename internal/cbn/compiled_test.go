package cbn

import (
	"fmt"
	"math/rand"
	"testing"

	"cosmos/internal/predicate"
	"cosmos/internal/profile"
	"cosmos/internal/querygen"
	"cosmos/internal/sensordata"
	"cosmos/internal/stream"
)

// interpretedRoute computes the reference deliveries through the
// interpreted path, bypassing the compiled table.
func interpretedRoute(b *Broker, t stream.Tuple, from IfaceID) ([]Delivery, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.routeInterpretedLocked(t, from)
}

// sameDeliveries asserts two delivery lists are identical: same
// interfaces in the same order, same projected schemas, same values.
func sameDeliveries(t *testing.T, got, want []Delivery, ctx string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d deliveries, want %d", ctx, len(got), len(want))
	}
	for i := range got {
		if got[i].Iface != want[i].Iface {
			t.Fatalf("%s: delivery %d on iface %d, want %d", ctx, i, got[i].Iface, want[i].Iface)
		}
		g, w := got[i].Tuple, want[i].Tuple
		if !g.Equal(w) {
			t.Fatalf("%s: delivery %d tuple %s, want %s", ctx, i, g, w)
		}
		ga, wa := g.Schema.AttrNames(), w.Schema.AttrNames()
		if fmt.Sprint(ga) != fmt.Sprint(wa) {
			t.Fatalf("%s: delivery %d projected attrs %v, want %v", ctx, i, ga, wa)
		}
	}
}

// TestCompiledRoutingDifferentialRandom subscribes randomized
// querygen-derived profiles on many interfaces and asserts that the
// compiled data plane delivers exactly what the interpreted plane
// delivers, tuple for tuple, projection for projection.
func TestCompiledRoutingDifferentialRandom(t *testing.T) {
	reg := stream.NewRegistry()
	if err := sensordata.RegisterAll(reg); err != nil {
		t.Fatal(err)
	}
	for _, withCatalog := range []bool{false, true} {
		t.Run(fmt.Sprintf("catalog=%v", withCatalog), func(t *testing.T) {
			gen, err := querygen.New(querygen.Config{Dist: querygen.Zipf10, Seed: 7})
			if err != nil {
				t.Fatal(err)
			}
			bound, err := gen.BindBatch(80, reg)
			if err != nil {
				t.Fatal(err)
			}
			b := NewBroker(0)
			if withCatalog {
				b.SetCatalog(reg)
			}
			const fanout = 12
			for i := 0; i <= fanout; i++ {
				b.AttachIface(IfaceID(i))
			}
			for i, q := range bound {
				b.HandleSubscribe(profile.FromQuery(q), IfaceID(1+i%fanout))
			}
			// A few hand-built profiles widen the shape space: no filter,
			// no projection, multi-disjunct, intrinsic-timestamp filters.
			all := profile.New()
			all.AddStream(sensordata.StreamName(0), nil, nil)
			b.HandleSubscribe(all, 3)
			multi := profile.New()
			multi.AddStream(sensordata.StreamName(1), []string{"station", "wind"}, predicate.DNF{
				{predicate.C("wind", predicate.GT, stream.Float(20))},
				{predicate.C("humidity", predicate.LT, stream.Float(15))},
			})
			b.HandleSubscribe(multi, 5)
			ts := profile.New()
			ts.AddStream(sensordata.StreamName(2), []string{"temperature"}, predicate.DNF{
				{predicate.C(predicate.IntrinsicTs, predicate.GE, stream.Time(0))},
			})
			b.HandleSubscribe(ts, 7)

			rng := rand.New(rand.NewSource(99))
			for station := 0; station < 12; station++ {
				tg := sensordata.NewGenerator(station, int64(station+1))
				for _, tp := range tg.Take(100) {
					from := IfaceID(rng.Intn(fanout + 1))
					want, werr := interpretedRoute(b, tp, from)
					got, gerr := b.RouteTuple(tp, from)
					if (werr == nil) != (gerr == nil) {
						t.Fatalf("station %d: error mismatch: compiled %v, interpreted %v",
							station, gerr, werr)
					}
					sameDeliveries(t, got, want,
						fmt.Sprintf("station %d from %d", station, from))
				}
				// The stream must actually be served by the compiled plane,
				// not silently fall back.
				tbl := b.table.Load()
				if tbl == nil {
					t.Fatal("no compiled table published")
				}
				st := tbl.streams[sensordata.StreamName(station)]
				if st == nil || st.fallback {
					t.Fatalf("station %d: expected a compiled entry, got %+v", station, st)
				}
			}
		})
	}
}

// TestCompiledRoutingFallbackOnBadFilter checks that demand the compiler
// must reject (a filter over a missing attribute) keeps the stream on the
// interpreted path with identical results.
func TestCompiledRoutingFallbackOnBadFilter(t *testing.T) {
	b := NewBroker(0)
	b.AttachIface(0)
	b.AttachIface(1)
	b.AttachIface(2)
	b.HandleSubscribe(tempProfile(15, nil), 1)
	bad := profile.New()
	bad.AddStream("Sensor1", nil, predicate.DNF{
		{predicate.C("nonexistent", predicate.GT, stream.Int(0))},
	})
	b.HandleSubscribe(bad, 2)

	tp := sensorTuple(1, 3, 20, 50)
	got, gerr := b.RouteTuple(tp, 0)
	want, werr := interpretedRoute(b, tp, 0)
	if (gerr == nil) != (werr == nil) {
		t.Fatalf("error mismatch: compiled %v, interpreted %v", gerr, werr)
	}
	if gerr == nil {
		sameDeliveries(t, got, want, "bad-filter stream")
	}
	tbl := b.table.Load()
	if tbl == nil || tbl.streams["Sensor1"] == nil || !tbl.streams["Sensor1"].fallback {
		t.Fatal("stream with uncompilable demand should publish a fallback entry")
	}
}

// TestCompiledRoutingSchemaDrift checks the two pointer-mismatch cases:
// a new pointer with identical layout stays on the compiled path (an
// upstream rebuild must not evict downstream brokers), while a layout
// change falls back to the interpreted path with identical deliveries.
func TestCompiledRoutingSchemaDrift(t *testing.T) {
	b := NewBroker(0)
	b.AttachIface(0)
	b.AttachIface(1)
	b.HandleSubscribe(tempProfile(10, []string{"station", "temp"}), 1)

	if _, err := b.RouteTuple(sensorTuple(1, 1, 20, 50), 0); err != nil {
		t.Fatal(err)
	}
	st := b.table.Load().streams["Sensor1"]
	if st == nil || st.schema != sensorSchema {
		t.Fatal("table should be keyed by the first tuple's schema pointer")
	}

	// Equal layout, new pointer: the compiled entry still applies.
	samelayout := sensorSchema.Rename("Sensor1")
	if !st.applies(samelayout) {
		t.Fatal("layout-equal schema should stay on the compiled path")
	}
	dt := stream.MustTuple(samelayout, 2, stream.Int(1), stream.Float(25), stream.Float(50))
	got, err := b.RouteTuple(dt, 0)
	if err != nil {
		t.Fatal(err)
	}
	want, err := interpretedRoute(b, dt, 0)
	if err != nil {
		t.Fatal(err)
	}
	sameDeliveries(t, got, want, "layout-equal schema")

	// Reordered layout: the old entry's indices would be wrong, so it
	// must not apply; the slow path rebinds the entry to the schema the
	// traffic actually carries, still delivering identically.
	reordered := stream.MustSchema("Sensor1",
		stream.Field{Name: "temp", Kind: stream.KindFloat},
		stream.Field{Name: "station", Kind: stream.KindInt},
		stream.Field{Name: "humidity", Kind: stream.KindFloat},
	)
	if st.applies(reordered) {
		t.Fatal("reordered schema must not use the old compiled entry")
	}
	rt := stream.MustTuple(reordered, 3, stream.Float(25), stream.Int(1), stream.Float(50))
	got, err = b.RouteTuple(rt, 0)
	if err != nil {
		t.Fatal(err)
	}
	want, err = interpretedRoute(b, rt, 0)
	if err != nil {
		t.Fatal(err)
	}
	sameDeliveries(t, got, want, "reordered schema")
	if len(got) != 1 {
		t.Fatalf("reordered tuple should still be delivered, got %d", len(got))
	}
	cur := b.table.Load().streams["Sensor1"]
	if cur.schema != reordered || cur.rebinds != 1 {
		t.Fatalf("entry should rebind to the new schema (rebinds=1), got schema=%p rebinds=%d",
			cur.schema, cur.rebinds)
	}
}

// TestCompiledRoutingRebindThrashCap checks that publishers alternating
// between two layouts under one stream name stop triggering per-tuple
// recompilation: past maxSchemaRebinds the entry stays put and the
// off-schema layout is served interpreted — still correctly.
func TestCompiledRoutingRebindThrashCap(t *testing.T) {
	b := NewBroker(0)
	b.AttachIface(0)
	b.AttachIface(1)
	b.HandleSubscribe(tempProfile(10, nil), 1)
	alt := stream.MustSchema("Sensor1",
		stream.Field{Name: "temp", Kind: stream.KindFloat},
		stream.Field{Name: "station", Kind: stream.KindInt},
		stream.Field{Name: "humidity", Kind: stream.KindFloat},
	)
	for i := 0; i < 2*maxSchemaRebinds; i++ {
		var tp stream.Tuple
		if i%2 == 0 {
			tp = sensorTuple(stream.Timestamp(i), 1, 20, 50)
		} else {
			tp = stream.MustTuple(alt, stream.Timestamp(i),
				stream.Float(20), stream.Int(1), stream.Float(50))
		}
		out, err := b.RouteTuple(tp, 0)
		if err != nil {
			t.Fatal(err)
		}
		if len(out) != 1 {
			t.Fatalf("tuple %d: %d deliveries, want 1", i, len(out))
		}
	}
	st := b.table.Load().streams["Sensor1"]
	if st.rebinds != maxSchemaRebinds {
		t.Fatalf("rebinds = %d, want capped at %d", st.rebinds, maxSchemaRebinds)
	}
	// A control-plane mutation resets the epoch.
	b.HandleSubscribe(tempProfile(15, nil), 1)
	if _, err := b.RouteTuple(sensorTuple(99, 1, 20, 50), 0); err != nil {
		t.Fatal(err)
	}
	if st = b.table.Load().streams["Sensor1"]; st.rebinds != 0 {
		t.Fatalf("fresh epoch should reset rebinds, got %d", st.rebinds)
	}
}

// TestCompiledTableSurvivesUpstreamRebuild checks, over a two-hop
// SimNet, that a control-plane change local to the upstream broker does
// not evict the downstream broker's compiled table: the upstream rebuild
// reuses (interns) the projected schema pointer, so the tuples it emits
// keep hitting the downstream fast path.
func TestCompiledTableSurvivesUpstreamRebuild(t *testing.T) {
	net := lineNet(2)
	src := net.AttachClient(0)
	delivered := 0
	sink := net.AttachClient(1)
	sink.OnTuple = func(stream.Tuple) { delivered++ }
	src.Advertise("Sensor1")
	sink.Subscribe(tempProfile(10, []string{"station", "temp"}))

	if err := src.Publish(sensorTuple(1, 1, 20, 50)); err != nil {
		t.Fatal(err)
	}
	down := net.Broker(1).table.Load().streams["Sensor1"]
	if down == nil || down.fallback {
		t.Fatal("downstream broker should have a compiled entry")
	}

	// A subscription arriving at the upstream broker only (fully covered,
	// so nothing propagates downstream) invalidates broker 0's table.
	extra := net.AttachClient(0)
	extra.Subscribe(tempProfile(30, []string{"station", "temp"}))
	if net.Broker(0).table.Load() != nil {
		t.Fatal("upstream table should be invalidated by the new subscription")
	}

	if err := src.Publish(sensorTuple(2, 1, 21, 50)); err != nil {
		t.Fatal(err)
	}
	cur := net.Broker(1).table.Load().streams["Sensor1"]
	if cur != down {
		t.Fatal("downstream compiled entry should be untouched by the upstream rebuild")
	}
	up := net.Broker(0).table.Load().streams["Sensor1"]
	if up == nil || up.fallback {
		t.Fatal("upstream broker should have recompiled")
	}
	// The recompiled upstream route must emit tuples with the interned
	// projected schema pointer the downstream entry is keyed on.
	if len(up.routes) == 0 || up.routes[0].view.ProjSchema != down.schema {
		t.Fatalf("upstream rebuild minted a fresh projected schema pointer: %p vs %p",
			up.routes[0].view.ProjSchema, down.schema)
	}
	if delivered != 2 {
		t.Fatalf("delivered %d tuples, want 2", delivered)
	}
}

// TestControlPlaneInvalidatesCompiledTable checks that every control
// plane mutation discards the published table, and that rebuilt routing
// reflects the new state.
func TestControlPlaneInvalidatesCompiledTable(t *testing.T) {
	build := func() *Broker {
		b := NewBroker(0)
		b.AttachIface(0)
		b.AttachIface(1)
		b.HandleSubscribe(tempProfile(10, nil), 1)
		if _, err := b.RouteTuple(sensorTuple(1, 1, 20, 50), 0); err != nil {
			t.Fatal(err)
		}
		if b.table.Load() == nil {
			t.Fatal("routing a tuple should publish a compiled table")
		}
		return b
	}

	t.Run("HandleSubscribe", func(t *testing.T) {
		b := build()
		b.AttachIface(2)
		b.HandleSubscribe(tempProfile(30, nil), 2)
		if b.table.Load() != nil {
			t.Fatal("HandleSubscribe must invalidate the compiled table")
		}
		out, err := b.RouteTuple(sensorTuple(2, 1, 35, 50), 0)
		if err != nil {
			t.Fatal(err)
		}
		if len(out) != 2 {
			t.Fatalf("rebuilt table should deliver to both subscribers, got %d", len(out))
		}
	})

	t.Run("Unsubscribe", func(t *testing.T) {
		b := build()
		b.Unsubscribe(tempProfile(10, nil), 1)
		if b.table.Load() != nil {
			t.Fatal("Unsubscribe must invalidate the compiled table")
		}
		out, err := b.RouteTuple(sensorTuple(2, 1, 20, 50), 0)
		if err != nil {
			t.Fatal(err)
		}
		if len(out) != 0 {
			t.Fatalf("after unsubscribe nothing should be delivered, got %d", len(out))
		}
	})

	t.Run("PruneStream", func(t *testing.T) {
		b := build()
		b.PruneStream("Sensor1")
		if b.table.Load() != nil {
			t.Fatal("PruneStream must invalidate the compiled table")
		}
		out, err := b.RouteTuple(sensorTuple(2, 1, 20, 50), 0)
		if err != nil {
			t.Fatal(err)
		}
		if len(out) != 0 {
			t.Fatalf("after prune nothing should be delivered, got %d", len(out))
		}
	})
}

// TestSimNetQueueCompaction exercises the drain head-index bookkeeping
// through a deep multicast cascade (every event fans out downstream),
// with the compaction threshold lowered so mid-drain compaction actually
// runs.
func TestSimNetQueueCompaction(t *testing.T) {
	orig := drainCompactThreshold
	drainCompactThreshold = 4
	defer func() { drainCompactThreshold = orig }()
	const hops = 40
	net := lineNet(hops)
	src := net.AttachClient(0)
	delivered := 0
	sink := net.AttachClient(hops - 1)
	sink.OnTuple = func(stream.Tuple) { delivered++ }
	src.Advertise("Sensor1")
	sink.Subscribe(tempProfile(0, nil))
	for i := 0; i < 50; i++ {
		if err := src.Publish(sensorTuple(stream.Timestamp(i), 1, 25, 50)); err != nil {
			t.Fatal(err)
		}
	}
	if delivered != 50 {
		t.Fatalf("delivered %d tuples, want 50", delivered)
	}
	if len(net.queue) != 0 || net.qhead != 0 {
		t.Fatalf("queue not reset after quiescence: len=%d head=%d", len(net.queue), net.qhead)
	}
}

// TestCompactQueueBookkeeping drives compactQueue directly over crafted
// queue states: pending events must survive in order, consumed slots
// must be zeroed, and the no-op case must not disturb anything.
func TestCompactQueueBookkeeping(t *testing.T) {
	n := NewSimNet(1)
	mk := func(name string) event { return event{kind: 2, name: name} }

	// No-op when nothing has been consumed.
	n.queue = []event{mk("a"), mk("b")}
	n.qhead = 0
	n.compactQueue()
	if len(n.queue) != 2 || n.queue[0].name != "a" || n.queue[1].name != "b" {
		t.Fatalf("no-op compaction mangled the queue: %+v", n.queue)
	}

	// Pending suffix slides to the front; freed capacity is zeroed.
	n.queue = []event{{}, {}, {}, mk("c"), mk("d")}
	n.qhead = 3
	n.compactQueue()
	if n.qhead != 0 {
		t.Fatalf("qhead = %d after compaction, want 0", n.qhead)
	}
	if len(n.queue) != 2 || n.queue[0].name != "c" || n.queue[1].name != "d" {
		t.Fatalf("pending events lost: %+v", n.queue)
	}
	for i, e := range n.queue[:cap(n.queue)][len(n.queue):] {
		if e.name != "" || e.prof != nil || e.tuple.Schema != nil || e.tuple.Values != nil {
			t.Fatalf("freed slot %d not zeroed: %+v", i, e)
		}
	}

	// Fully consumed queue compacts to empty.
	n.queue = []event{{}, {}}
	n.qhead = 2
	n.compactQueue()
	if len(n.queue) != 0 || n.qhead != 0 {
		t.Fatalf("fully consumed queue: len=%d head=%d", len(n.queue), n.qhead)
	}
}
