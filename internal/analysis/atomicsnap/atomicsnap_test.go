package atomicsnap_test

import (
	"testing"

	"cosmos/internal/analysis/atomicsnap"
	"cosmos/internal/analysis/framework"
)

// TestAtomicsnap runs the analyzer over the seeded-violation package and
// the all-allowed package (builder exemption, reassignment clearing —
// the false-positive regression guard).
func TestAtomicsnap(t *testing.T) {
	framework.RunTest(t, ".", atomicsnap.Analyzer,
		"./testdata/src/snap", "./testdata/src/snapneg")
}
