package framework

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
)

// Package loading without golang.org/x/tools/go/packages: `go list
// -export -deps -json` enumerates the target packages plus the export
// data (compiled type information in the build cache) of everything
// they import, and the stdlib gc importer consumes that export data
// during type checking. Only the target packages themselves are parsed
// from source — the same division of labour the real go/packages
// NeedExportFile mode uses, and it works fully offline: the repo has no
// third-party dependencies and the Go toolchain ships the stdlib.

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	CgoFiles   []string
	Imports    []string
	Export     string
	Standard   bool
	DepOnly    bool
	Incomplete bool
	Module     *struct{ Path string }
	Error      *struct{ Err string }
}

// Load lists patterns in dir (module root or below), parses every
// non-dependency package it names and type-checks them against the
// export data of their imports. The resulting Program carries full
// syntax with comments for all target packages, so cross-package
// annotation lookups work over the whole `./...` closure.
func Load(dir string, patterns []string) (*Program, error) {
	args := append([]string{"list", "-e", "-export", "-deps", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", patterns, err, stderr.String())
	}

	exportFor := map[string]string{}
	var roots, deps []listPkg
	dec := json.NewDecoder(&stdout)
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %v", err)
		}
		if p.Export != "" {
			exportFor[p.ImportPath] = p.Export
		}
		if !p.DepOnly && !p.Standard {
			if p.Error != nil {
				return nil, fmt.Errorf("go list: %s: %s", p.ImportPath, p.Error.Err)
			}
			roots = append(roots, p)
		} else if !p.Standard {
			deps = append(deps, p)
		}
	}
	if len(roots) == 0 {
		return nil, fmt.Errorf("go list %v matched no packages", patterns)
	}

	// Dependencies living in the same module(s) as the roots are parsed
	// from source too — not analyzed, but annotation-indexed, so a
	// partial run (`cosmoslint ./internal/exec`, vettool units) sees the
	// //cosmos: directives of the packages it calls into.
	rootModules := map[string]bool{}
	for _, lp := range roots {
		if lp.Module != nil {
			rootModules[lp.Module.Path] = true
		}
	}
	srcDeps := map[string]listPkg{}
	for _, lp := range deps {
		if lp.Module != nil && rootModules[lp.Module.Path] && lp.Error == nil {
			srcDeps[lp.ImportPath] = lp
		}
	}

	fset := token.NewFileSet()
	gcImp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := exportFor[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q (is the build cache warm? run `go build ./...`)", path)
		}
		return os.Open(f)
	})

	// Roots must be type-checked from source in dependency order, and a
	// root importing another root must receive the source-checked
	// types.Package rather than its export data — otherwise the same
	// declaration yields two distinct types.Object identities and every
	// cross-package annotation lookup silently misses.
	imp := &sourceFirstImporter{base: gcImp, src: map[string]*types.Package{}}
	rootByPath := map[string]listPkg{}
	for _, lp := range roots {
		rootByPath[lp.ImportPath] = lp
	}
	prog := &Program{Fset: fset}
	var ensure func(path string) error
	checking := map[string]bool{}
	ensure = func(path string) error {
		if imp.src[path] != nil || checking[path] {
			return nil
		}
		lp, isRoot := rootByPath[path]
		if !isRoot {
			var ok bool
			if lp, ok = srcDeps[path]; !ok {
				return nil // out-of-module dependency: export data suffices
			}
		}
		checking[path] = true
		for _, dep := range lp.Imports {
			if err := ensure(dep); err != nil {
				return err
			}
		}
		pkg, err := typeCheck(fset, imp, lp)
		if err != nil {
			return err
		}
		imp.src[path] = pkg.Types
		prog.Packages = append(prog.Packages, pkg)
		if isRoot {
			prog.Roots = append(prog.Roots, pkg)
		}
		return nil
	}
	for _, lp := range roots {
		if err := ensure(lp.ImportPath); err != nil {
			return nil, err
		}
	}
	prog.buildAnnotIndex()
	return prog, nil
}

// sourceFirstImporter resolves imports to already-source-checked root
// packages when available, falling back to gc export data for pure
// dependencies. This keeps types.Object identity program-wide.
type sourceFirstImporter struct {
	base types.Importer
	src  map[string]*types.Package
}

func (si *sourceFirstImporter) Import(path string) (*types.Package, error) {
	if p := si.src[path]; p != nil {
		return p, nil
	}
	return si.base.Import(path)
}

func typeCheck(fset *token.FileSet, imp types.Importer, lp listPkg) (*Package, error) {
	var files []*ast.File
	names := append(append([]string{}, lp.GoFiles...), lp.CgoFiles...)
	for _, name := range names {
		path := name
		if !filepath.IsAbs(path) {
			path = filepath.Join(lp.Dir, name)
		}
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("parsing %s: %v", path, err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(lp.ImportPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %v", lp.ImportPath, err)
	}
	return &Package{
		PkgPath:   lp.ImportPath,
		Dir:       lp.Dir,
		Syntax:    files,
		Types:     tpkg,
		TypesInfo: info,
	}, nil
}
