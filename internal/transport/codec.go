// Package transport exposes a COSMOS deployment over TCP: a daemon
// (cmd/cosmosd) hosts the system and speaks a small gob-encoded
// request/response protocol with clients (cmd/cosmosctl or the Client
// type) that register streams, publish tuples, and submit continuous
// queries whose results stream back asynchronously.
package transport

import (
	"fmt"

	"cosmos/internal/stream"
)

// WireValue is the gob-encodable form of stream.Value.
type WireValue struct {
	Kind uint8
	N    int64
	F    float64
	S    string
}

// ToWireValue converts a value for transmission.
func ToWireValue(v stream.Value) WireValue {
	w := WireValue{Kind: uint8(v.Kind())}
	switch v.Kind() {
	case stream.KindInt:
		w.N = v.AsInt()
	case stream.KindFloat:
		w.F = v.AsFloat()
	case stream.KindString:
		w.S = v.AsString()
	case stream.KindBool:
		if v.AsBool() {
			w.N = 1
		}
	case stream.KindTime:
		w.N = int64(v.AsTime())
	}
	return w
}

// FromWireValue reconstructs a value.
func FromWireValue(w WireValue) (stream.Value, error) {
	switch stream.Kind(w.Kind) {
	case stream.KindInt:
		return stream.Int(w.N), nil
	case stream.KindFloat:
		return stream.Float(w.F), nil
	case stream.KindString:
		return stream.String_(w.S), nil
	case stream.KindBool:
		return stream.Bool(w.N != 0), nil
	case stream.KindTime:
		return stream.Time(stream.Timestamp(w.N)), nil
	default:
		return stream.Value{}, fmt.Errorf("transport: unknown value kind %d", w.Kind)
	}
}

// WireField describes one schema attribute.
type WireField struct {
	Name   string
	Kind   uint8
	AvgLen int
}

// WireSchema is the gob-encodable form of stream.Schema.
type WireSchema struct {
	Stream string
	Fields []WireField
}

// ToWireSchema converts a schema.
func ToWireSchema(s *stream.Schema) WireSchema {
	out := WireSchema{Stream: s.Stream, Fields: make([]WireField, len(s.Fields))}
	for i, f := range s.Fields {
		out.Fields[i] = WireField{Name: f.Name, Kind: uint8(f.Kind), AvgLen: f.AvgLen}
	}
	return out
}

// FromWireSchema reconstructs a schema.
func FromWireSchema(w WireSchema) (*stream.Schema, error) {
	fields := make([]stream.Field, len(w.Fields))
	for i, f := range w.Fields {
		fields[i] = stream.Field{Name: f.Name, Kind: stream.Kind(f.Kind), AvgLen: f.AvgLen}
	}
	return stream.NewSchema(w.Stream, fields...)
}

// WireTuple is the gob-encodable form of stream.Tuple. The schema is
// referenced by stream name; both sides resolve it against their
// catalogues (schemas are flooded/registered before data flows).
type WireTuple struct {
	Stream string
	Ts     int64
	Values []WireValue
}

// ToWireTuple converts a tuple.
func ToWireTuple(t stream.Tuple) WireTuple {
	out := WireTuple{Stream: t.Schema.Stream, Ts: int64(t.Ts), Values: make([]WireValue, len(t.Values))}
	for i, v := range t.Values {
		out.Values[i] = ToWireValue(v)
	}
	return out
}

// FromWireTuple reconstructs a tuple against a known schema.
func FromWireTuple(w WireTuple, schema *stream.Schema) (stream.Tuple, error) {
	if schema == nil {
		return stream.Tuple{}, fmt.Errorf("transport: no schema for stream %q", w.Stream)
	}
	values := make([]stream.Value, len(w.Values))
	for i, wv := range w.Values {
		v, err := FromWireValue(wv)
		if err != nil {
			return stream.Tuple{}, err
		}
		values[i] = v
	}
	return stream.NewTuple(schema, stream.Timestamp(w.Ts), values...)
}

// WireStats carries per-attribute statistics.
type WireStats struct {
	Attr     string
	Min, Max float64
	Distinct int
}

// WireInfo is the gob-encodable stream.Info.
type WireInfo struct {
	Schema WireSchema
	Rate   float64
	Stats  []WireStats
}

// ToWireInfo converts a catalog record.
func ToWireInfo(in *stream.Info) WireInfo {
	w := WireInfo{Schema: ToWireSchema(in.Schema), Rate: in.Rate, Stats: make([]WireStats, 0, len(in.Stats))}
	for attr, s := range in.Stats {
		w.Stats = append(w.Stats, WireStats{Attr: attr, Min: s.Min, Max: s.Max, Distinct: s.Distinct})
	}
	return w
}

// FromWireInfo reconstructs a catalog record.
func FromWireInfo(w WireInfo) (*stream.Info, error) {
	schema, err := FromWireSchema(w.Schema)
	if err != nil {
		return nil, err
	}
	info := &stream.Info{Schema: schema, Rate: w.Rate, Stats: map[string]stream.AttrStats{}}
	for _, s := range w.Stats {
		info.Stats[s.Attr] = stream.AttrStats{Min: s.Min, Max: s.Max, Distinct: s.Distinct}
	}
	return info, nil
}
