package cbn

import (
	"fmt"
	"log"
	"runtime/debug"
	"sort"
	"sync"
	"sync/atomic"

	"cosmos/internal/obs"
	"cosmos/internal/overlay"
	"cosmos/internal/profile"
	"cosmos/internal/stream"
)

// LiveNet runs each broker on its own goroutine — the concurrent
// counterpart of SimNet used by core.LiveSystem and the examples.
// Protocol behaviour is identical: both drive the same Broker logic, so
// SimNet remains the deterministic differential reference for
// everything LiveNet delivers.
//
// # Ingress, egress and backpressure
//
// The three message surfaces have deliberately different elasticity:
//
//   - Client ingress is bounded by per-node credits (WithInboxCap,
//     default 1024): an injection holds a credit until the node's broker
//     has processed the message, so publishing into a node whose broker
//     has a full backlog blocks. That is the backpressure surface — a
//     slow broker throttles its publishers (e.g. exec.Runtime workers
//     emitting results) instead of dropping tuples or buffering them
//     without bound.
//   - Broker-to-broker forwarding is elastic: each node's mailbox grows
//     as needed and a broker never blocks sending to a peer. Brokers
//     therefore always make progress, which rules out the routing
//     deadlock that bounded links would allow the moment traffic flows
//     both ways across a tree edge (data up toward processors, results
//     down toward users). This mirrors SimNet, whose event queue is
//     also unbounded; per-link credit flow control is future work.
//   - Client egress is elastic: deliveries to a client are queued on an
//     unbounded per-client buffer and handed to the client's callback by
//     a dedicated pump goroutine, in arrival order. A slow client never
//     stalls a broker, which breaks the cycle broker → processor ingest
//     → worker → broker that synchronous delivery would close into a
//     deadlock.
//
// Clients may attach at any time, before or after Start — core.LiveSystem
// attaches a client per source, processor and query proxy as they appear.
// Links are topology and must be in place before Start.
//
// # Ordering
//
// Per client, Publish calls are injected in call order, every node
// mailbox and overlay hop is FIFO, and the delivery pump preserves
// arrival order, so tuples published by one client reach any given
// subscriber in publish order. No order holds between different
// publishers.
type LiveNet struct {
	brokers []*Broker
	nodes   []*liveNode

	inboxCap int

	mu      sync.Mutex
	clients []*LiveClient // guarded by mu
	started bool          // guarded by mu
	stopped bool          // guarded by mu
	wg      sync.WaitGroup
	quit    chan struct{}

	stopping atomic.Bool

	// links holds one atomic counter block per undirected overlay link,
	// shared by both direction endpoints; Stats snapshots them.
	links []*liveLinkStats

	// pending counts messages accepted but not yet fully processed —
	// including client deliveries queued on a pump. injected counts every
	// client injection ever accepted; together they let Quiesce callers
	// detect stabilisation (see core.LiveSystem.Quiesce).
	pending  atomic.Int64
	injected atomic.Int64
	idle     chan struct{}

	dataBytes atomic.Int64

	// metrics, when non-nil, observes the route stage (nil-safe).
	metrics *obs.Metrics
}

// SetMetrics attaches the observability hub; each broker routing hop
// counts one route-stage event (sampled for latency) against it. Call
// before Start.
func (n *LiveNet) SetMetrics(m *obs.Metrics) { n.metrics = m }

// QueueDepths gauges each node's mailbox backlog at snapshot time.
func (n *LiveNet) QueueDepths() []int {
	out := make([]int, len(n.nodes))
	for i, nd := range n.nodes {
		nd.mu.Lock()
		out[i] = len(nd.queue)
		nd.mu.Unlock()
	}
	return out
}

// liveNode is one node's mailbox and attachment state.
type liveNode struct {
	net *LiveNet

	// epMu guards the attachment maps so clients can attach while broker
	// goroutines route concurrently.
	epMu      sync.RWMutex
	endpoints map[IfaceID]liveEndpoint // guarded by epMu
	// reverse maps an outgoing iface to the arrival iface on the peer.
	// Guarded by epMu.
	reverse   map[IfaceID]IfaceID
	nextIface IfaceID // guarded by epMu

	// scratch is the delivery buffer RouteTupleInto recycles; owned by
	// the node's single event-loop goroutine, never shared.
	scratch []Delivery

	// mu/cond guard the elastic mailbox the node's broker drains.
	mu    sync.Mutex
	cond  *sync.Cond
	queue []liveMsg // guarded by mu
	// dead marks a node whose broker goroutine exited after a panic;
	// messages routed to it are black-holed with their accounting
	// settled, so the rest of the network keeps running and quiescing.
	// Guarded by mu.
	dead bool

	// credits bounds the node's backlog of client-injected messages:
	// inject acquires, the broker releases after processing.
	credits chan struct{}
}

// push appends to the node's mailbox and wakes its broker; never blocks.
// Pushes to a dead node settle the message's accounting (credit and
// pending count) and drop it — black-hole semantics, as any CBN shows
// for a failed broker.
func (nd *liveNode) push(m liveMsg) {
	nd.mu.Lock()
	if nd.dead {
		nd.mu.Unlock()
		if m.credit {
			<-nd.credits
		}
		nd.net.done()
		return
	}
	nd.queue = append(nd.queue, m)
	nd.cond.Signal()
	nd.mu.Unlock()
}

type liveEndpoint struct {
	isClient bool
	client   *LiveClient
	peerNode int
	// link is the undirected counter block of the overlay link this
	// endpoint sends over; nil for client endpoints.
	link *liveLinkStats
}

// liveLinkStats accumulates one undirected link's traffic counters.
// Brokers on both ends increment concurrently, hence the atomics; Stats
// snapshots them into the LinkStats shape SimNet reports.
type liveLinkStats struct {
	a, b      int
	dataBytes atomic.Int64
	dataMsgs  atomic.Int64
	ctrlBytes atomic.Int64
	ctrlMsgs  atomic.Int64
}

type liveMsg struct {
	from  IfaceID
	kind  int // 0 data, 1 subscribe, 2 advertise
	tuple stream.Tuple
	prof  *profile.Profile
	name  string
	// credit marks a client-injected message whose ingress credit the
	// broker returns after processing.
	credit bool
}

// LiveClient is a client endpoint of a LiveNet: a source, a processor
// ingress/egress port, or a user proxy. Publish/Advertise/Subscribe are
// safe for concurrent use; deliveries arrive on the client's pump
// goroutine, one at a time, in arrival order. The pump starts lazily on
// the first callback installation or delivery, so publish-only clients
// (e.g. per-worker egress) park no goroutine.
type LiveClient struct {
	net   *LiveNet
	Node  int
	iface IfaceID

	mu      sync.Mutex
	cond    *sync.Cond
	onTuple func(stream.Tuple) // guarded by mu
	queue   []stream.Tuple     // guarded by mu
	running bool               // guarded by mu
	closed  bool               // guarded by mu
	stopped chan struct{}      // guarded by mu
}

// SetOnTuple installs the delivery callback; safe to call concurrently.
func (c *LiveClient) SetOnTuple(fn func(stream.Tuple)) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.onTuple = fn
	if fn != nil {
		c.ensurePumpLocked()
	}
}

// ensurePumpLocked starts the delivery pump once. Callers hold c.mu.
func (c *LiveClient) ensurePumpLocked() {
	if !c.running && !c.closed {
		c.running = true
		go c.pump()
	}
}

// Iface returns the broker interface this client occupies — needed to
// withdraw subscriptions via Broker.Unsubscribe.
func (c *LiveClient) Iface() IfaceID { return c.iface }

// enqueue hands a delivery to the client's pump.
func (c *LiveClient) enqueue(t stream.Tuple) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.net.pending.Add(1)
	c.queue = append(c.queue, t)
	c.ensurePumpLocked()
	c.cond.Signal()
	c.mu.Unlock()
}

// pump is the client's delivery loop: it drains the elastic queue and
// invokes the callback outside the client lock, marking each delivery
// done for quiescence accounting only after the callback returns.
func (c *LiveClient) pump() {
	defer close(c.stopped)
	// Double-buffer the queue: the drained batch is zeroed and swapped
	// back in as the next fill buffer, so steady-state delivery does
	// not reallocate the queue every cycle.
	var spare []stream.Tuple
	for {
		c.mu.Lock()
		for len(c.queue) == 0 && !c.closed {
			c.cond.Wait()
		}
		if c.closed {
			dropped := len(c.queue)
			c.queue = nil
			c.mu.Unlock()
			for i := 0; i < dropped; i++ {
				c.net.done()
			}
			return
		}
		batch := c.queue
		c.queue = spare
		fn := c.onTuple
		c.mu.Unlock()
		for i, t := range batch {
			if fn != nil && !c.deliverSafe(fn, t) {
				// The callback panicked: settle the rest of the batch,
				// fail this client only, and loop back so the closed
				// branch drains whatever queued meanwhile and exits.
				for range batch[i:] {
					c.net.done()
				}
				c.fail()
				break
			}
			c.net.done()
		}
		for i := range batch {
			batch[i] = stream.Tuple{} // drop refs before recycling
		}
		spare = batch[:0]
	}
}

// deliverSafe invokes the delivery callback, containing panics: a
// panicking consumer reports false instead of taking the process down.
func (c *LiveClient) deliverSafe(fn func(stream.Tuple), t stream.Tuple) (ok bool) {
	defer func() {
		if rec := recover(); rec != nil {
			log.Printf("cbn: client delivery callback panicked (client failed): %v\n%s",
				rec, debug.Stack())
		}
	}()
	fn(t)
	return true
}

// fail closes the client after a callback panic and detaches it from
// its node, so the broker stops delivering to it. The failure domain is
// this one client; brokers and other clients are unaffected.
func (c *LiveClient) fail() {
	c.mu.Lock()
	if !c.closed {
		c.closed = true
		c.cond.Broadcast()
	}
	c.mu.Unlock()
	nd := c.net.nodes[c.Node]
	nd.epMu.Lock()
	delete(nd.endpoints, c.iface)
	nd.epMu.Unlock()
}

// shutdown closes the client, dropping queued deliveries. When wait is
// set it blocks until a running pump has exited (used by LiveNet.Stop,
// which guarantees no goroutine outlives it); callers that may hold
// locks a delivery callback could need pass wait=false.
func (c *LiveClient) shutdown(wait bool) {
	c.mu.Lock()
	if c.closed {
		running := c.running
		c.mu.Unlock()
		if wait && running {
			<-c.stopped // pump may still be winding down after fail()
		}
		return
	}
	c.closed = true
	running := c.running
	var dropped int
	if !running {
		// No pump to drain the queue; settle accounting here.
		dropped = len(c.queue)
		c.queue = nil
	}
	c.cond.Broadcast()
	c.mu.Unlock()
	if running {
		if wait {
			<-c.stopped // the pump drops and settles its queue on exit
		}
		return
	}
	for i := 0; i < dropped; i++ {
		c.net.done()
	}
}

// stop shuts the pump down and waits for it; used by LiveNet.Stop.
func (c *LiveClient) stop() { c.shutdown(true) }

// Close detaches the client: the broker stops delivering to it, its
// pump (if any) winds down, and queued deliveries are dropped. It does
// not wait for an in-flight delivery callback, so it is safe to call
// while holding locks the callback might need. Publish after Close
// still works until the network stops; idempotent and safe while
// brokers route concurrently.
func (c *LiveClient) Close() {
	nd := c.net.nodes[c.Node]
	nd.epMu.Lock()
	delete(nd.endpoints, c.iface)
	nd.epMu.Unlock()
	c.shutdown(false)
}

// LiveNetOption configures a LiveNet at construction.
type LiveNetOption func(*LiveNet)

// WithInboxCap bounds each node's backlog of client-injected messages.
// Smaller caps apply backpressure sooner: a publisher into a node whose
// broker is that many messages behind blocks until it catches up. The
// default is 1024.
func WithInboxCap(c int) LiveNetOption {
	return func(n *LiveNet) {
		if c > 0 {
			n.inboxCap = c
		}
	}
}

// NewLiveNet builds a network of n brokers with no links.
func NewLiveNet(n int, opts ...LiveNetOption) *LiveNet {
	net := &LiveNet{
		brokers:  make([]*Broker, n),
		nodes:    make([]*liveNode, n),
		inboxCap: 1024,
		quit:     make(chan struct{}),
		idle:     make(chan struct{}, 1),
	}
	for _, opt := range opts {
		opt(net)
	}
	for i := 0; i < n; i++ {
		net.brokers[i] = NewBroker(i)
		nd := &liveNode{
			net:       net,
			endpoints: map[IfaceID]liveEndpoint{},
			reverse:   map[IfaceID]IfaceID{},
			credits:   make(chan struct{}, net.inboxCap),
		}
		nd.cond = sync.NewCond(&nd.mu)
		net.nodes[i] = nd
	}
	return net
}

// NewLiveNetFromTree builds a network whose links mirror a dissemination
// tree's edges — the live counterpart of NewSimNetFromTree (LiveNet does
// not model link delays).
func NewLiveNetFromTree(t *overlay.Tree, opts ...LiveNetOption) *LiveNet {
	net := NewLiveNet(t.NumNodes(), opts...)
	for v := 0; v < t.NumNodes(); v++ {
		if v != t.Root {
			// Links precede Start by construction; the error is impossible.
			_ = net.AddLink(v, t.Parent[v])
		}
	}
	return net
}

// NumNodes returns the broker count.
func (n *LiveNet) NumNodes() int { return len(n.brokers) }

// allocIface claims the next interface on a node. Callers hold nd.epMu.
func (n *LiveNet) allocIface(node int) IfaceID {
	nd := n.nodes[node]
	id := nd.nextIface
	nd.nextIface++
	n.brokers[node].AttachIface(id)
	return id
}

// AddLink joins two brokers; links are topology and must be in place
// before Start.
func (n *LiveNet) AddLink(a, b int) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.started {
		return fmt.Errorf("cbn: cannot add links after Start")
	}
	na, nb := n.nodes[a], n.nodes[b]
	na.epMu.Lock()
	ia := n.allocIface(a)
	na.epMu.Unlock()
	nb.epMu.Lock()
	ib := n.allocIface(b)
	nb.epMu.Unlock()
	ls := &liveLinkStats{a: a, b: b}
	if ls.a > ls.b {
		ls.a, ls.b = ls.b, ls.a
	}
	n.links = append(n.links, ls)
	na.epMu.Lock()
	na.endpoints[ia] = liveEndpoint{peerNode: b, link: ls}
	na.reverse[ia] = ib
	na.epMu.Unlock()
	nb.epMu.Lock()
	nb.endpoints[ib] = liveEndpoint{peerNode: a, link: ls}
	nb.reverse[ib] = ia
	nb.epMu.Unlock()
	return nil
}

// AttachClient attaches a client endpoint at a node; safe before or
// after Start, and while brokers route concurrently.
func (n *LiveNet) AttachClient(node int) (*LiveClient, error) {
	if node < 0 || node >= len(n.brokers) {
		return nil, fmt.Errorf("cbn: node %d out of range", node)
	}
	c := &LiveClient{net: n, Node: node, stopped: make(chan struct{})}
	c.cond = sync.NewCond(&c.mu)
	nd := n.nodes[node]
	nd.epMu.Lock()
	c.iface = n.allocIface(node)
	nd.endpoints[c.iface] = liveEndpoint{isClient: true, client: c}
	nd.epMu.Unlock()
	// The stopped check and the registration share one critical section,
	// so a client either lands in the list Stop tears down or is refused.
	n.mu.Lock()
	if n.stopped {
		n.mu.Unlock()
		nd.epMu.Lock()
		delete(nd.endpoints, c.iface)
		nd.epMu.Unlock()
		return nil, fmt.Errorf("cbn: live network stopped")
	}
	n.clients = append(n.clients, c)
	n.mu.Unlock()
	return c, nil
}

// Start launches one goroutine per broker.
func (n *LiveNet) Start() {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.started || n.stopped {
		return
	}
	n.started = true
	for i := range n.brokers {
		n.wg.Add(1)
		go n.run(i)
	}
}

// Stop terminates the broker goroutines and client pumps and waits for
// them; queued messages and deliveries are dropped. Idempotent.
func (n *LiveNet) Stop() {
	n.mu.Lock()
	if n.stopped {
		n.mu.Unlock()
		return
	}
	n.stopped = true
	clients := n.clients
	n.mu.Unlock()
	n.stopping.Store(true)
	close(n.quit)
	for _, nd := range n.nodes {
		nd.mu.Lock()
		nd.cond.Broadcast()
		nd.mu.Unlock()
	}
	n.wg.Wait()
	for _, c := range clients {
		c.stop()
	}
}

// run is the per-broker event loop: drain the node mailbox FIFO,
// returning ingress credits as client-injected messages complete.
func (n *LiveNet) run(node int) {
	defer n.wg.Done()
	b := n.brokers[node]
	nd := n.nodes[node]
	// Double-buffer the mailbox: each drained batch is zeroed and
	// swapped back as the next fill buffer, so steady-state routing
	// does not reallocate the queue every drain cycle.
	var spare []liveMsg
	for {
		nd.mu.Lock()
		for len(nd.queue) == 0 && !n.stopping.Load() {
			nd.cond.Wait()
		}
		if n.stopping.Load() {
			nd.mu.Unlock()
			return
		}
		batch := nd.queue
		nd.queue = spare
		nd.mu.Unlock()
		for i, m := range batch {
			if !n.processSafe(b, node, m) {
				n.failNode(node, batch[i:])
				return
			}
			if m.credit {
				<-nd.credits
			}
			n.done()
		}
		for i := range batch {
			batch[i] = liveMsg{} // drop refs before recycling
		}
		spare = batch[:0]
	}
}

// processSafe runs one message through the broker, containing panics:
// a panicking broker reports false instead of taking the process down.
func (n *LiveNet) processSafe(b *Broker, node int, m liveMsg) (ok bool) {
	defer func() {
		if rec := recover(); rec != nil {
			log.Printf("cbn: broker %d panicked (node failed): %v\n%s",
				node, rec, debug.Stack())
		}
	}()
	n.process(b, node, m)
	return true
}

// failNode marks a node dead after its broker panicked and settles the
// accounting of every message it will never process: the unprocessed
// tail of the current batch plus anything still queued. Later pushes
// and injections to the node are black-holed (see liveNode.push and
// inject), so the rest of the network keeps flowing and Quiesce still
// converges. The failure domain is the one broker: no other node,
// client or pump is affected.
func (n *LiveNet) failNode(node int, unsettled []liveMsg) {
	nd := n.nodes[node]
	nd.mu.Lock()
	nd.dead = true
	queued := nd.queue
	nd.queue = nil
	nd.mu.Unlock()
	settle := func(m liveMsg) {
		if m.credit {
			<-nd.credits
		}
		n.done()
	}
	for _, m := range unsettled {
		settle(m)
	}
	for _, m := range queued {
		settle(m)
	}
}

// process runs one message through the node's broker and forwards the
// consequences.
func (n *LiveNet) process(b *Broker, node int, m liveMsg) {
	switch m.kind {
	case 0:
		// The node's event loop is single-threaded, so the delivery
		// scratch slice is recycled across tuples: steady-state routing
		// allocates only the projected tuples themselves.
		nd := n.nodes[node]
		// Every broker loop records route events concurrently: stripe the
		// count by node so the counting stays uncontended.
		start := n.metrics.StageStartAt(obs.StageRoute, node)
		deliveries, err := b.RouteTupleInto(m.tuple, m.from, nd.scratch)
		n.metrics.StageEnd(obs.StageRoute, start)
		n.metrics.TraceMark(int64(m.tuple.Ts), obs.StageRoute)
		if err == nil {
			for _, d := range deliveries {
				n.emit(node, d.Iface, liveMsg{kind: 0, tuple: d.Tuple})
			}
		}
		for i := range deliveries {
			deliveries[i] = Delivery{} // drop tuple refs before recycling
		}
		if deliveries != nil {
			nd.scratch = deliveries
		}
	case 1:
		for _, fw := range b.HandleSubscribe(m.prof, m.from) {
			n.emit(node, fw.Iface, liveMsg{kind: 1, prof: fw.Prof})
		}
	case 2:
		adverts, subs := b.HandleAdvertise(m.name, m.from)
		for _, a := range adverts {
			n.emit(node, a.Iface, liveMsg{kind: 2, name: a.Stream})
		}
		for _, fw := range subs {
			n.emit(node, fw.Iface, liveMsg{kind: 1, prof: fw.Prof})
		}
	}
}

// emit routes an outgoing message to the proper peer mailbox or client
// pump; never blocks (both surfaces are elastic), so a broker always
// makes progress.
func (n *LiveNet) emit(node int, iface IfaceID, m liveMsg) {
	nd := n.nodes[node]
	nd.epMu.RLock()
	ep, ok := nd.endpoints[iface]
	rev := nd.reverse[iface]
	nd.epMu.RUnlock()
	if !ok {
		return
	}
	if ep.isClient {
		if m.kind == 0 {
			ep.client.enqueue(m.tuple)
		}
		return
	}
	// Broker-to-broker hop: account the message on its overlay link,
	// mirroring SimNet's per-link data/control split.
	switch m.kind {
	case 0:
		sz := int64(m.tuple.WireSize() + DataHeaderBytes)
		n.dataBytes.Add(sz)
		ep.link.dataMsgs.Add(1)
		ep.link.dataBytes.Add(sz)
	case 1:
		ep.link.ctrlMsgs.Add(1)
		ep.link.ctrlBytes.Add(int64(profileWireSize(m.prof)))
	case 2:
		ep.link.ctrlMsgs.Add(1)
		ep.link.ctrlBytes.Add(int64(AdvertBytes + len(m.name)))
	}
	m.from = rev
	n.pending.Add(1)
	n.nodes[ep.peerNode].push(m)
}

// done marks one message as fully processed and signals idleness.
func (n *LiveNet) done() {
	if n.pending.Add(-1) == 0 {
		select {
		case n.idle <- struct{}{}:
		default:
		}
	}
}

// inject submits a client-originated message, blocking while the node's
// ingress credits are exhausted (backpressure). It reports false once
// the net stops.
func (n *LiveNet) inject(node int, iface IfaceID, m liveMsg) bool {
	nd := n.nodes[node]
	nd.mu.Lock()
	dead := nd.dead
	nd.mu.Unlock()
	if dead {
		// The node's broker failed: black-hole the injection without
		// consuming a credit the dead broker would never return. Count
		// it so the Injected/Quiesce stabilisation test stays balanced.
		n.injected.Add(1)
		return true
	}
	select {
	case nd.credits <- struct{}{}:
	case <-n.quit:
		return false
	}
	m.from = iface
	m.credit = true
	n.injected.Add(1)
	n.pending.Add(1)
	nd.push(m)
	return true
}

// Quiesce blocks until every accepted message — including client
// deliveries queued on pumps — has been fully processed. Only meaningful
// when no client is concurrently publishing; core.LiveSystem combines it
// with Injected to build a system-wide stabilisation barrier.
func (n *LiveNet) Quiesce() {
	for n.pending.Load() > 0 {
		select {
		case <-n.idle:
		case <-n.quit:
			return
		}
	}
}

// Injected returns the total number of client injections accepted so
// far. Two equal reads bracketing a Quiesce prove the network moved no
// new messages in between — the stabilisation test used by
// core.LiveSystem.Quiesce.
func (n *LiveNet) Injected() int64 { return n.injected.Load() }

// SetCatalog installs a stream catalog on every broker as the
// schema-drift guard for compiled routing.
func (n *LiveNet) SetCatalog(reg *stream.Registry) {
	for _, b := range n.brokers {
		b.SetCatalog(reg)
	}
}

// PruneStream garbage-collects a retired stream's state on every broker;
// safe while the network runs (the broker control plane is locked).
func (n *LiveNet) PruneStream(name string) {
	for _, b := range n.brokers {
		b.PruneStream(name)
	}
}

// Stats returns per-link counters sorted by (A, B) — the live
// counterpart of SimNet.Stats (LiveNet models no link delays, so DelayMs
// is zero). Each counter is read atomically, but the snapshot is not a
// consistent cut across links while traffic flows; call it after a
// Quiesce for exact readouts.
func (n *LiveNet) Stats() []*LinkStats {
	out := make([]*LinkStats, 0, len(n.links))
	for _, l := range n.links {
		out = append(out, &LinkStats{
			A: l.a, B: l.b,
			DataBytes: l.dataBytes.Load(), DataMsgs: l.dataMsgs.Load(),
			CtrlBytes: l.ctrlBytes.Load(), CtrlMsgs: l.ctrlMsgs.Load(),
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].A != out[j].A {
			return out[i].A < out[j].A
		}
		return out[i].B < out[j].B
	})
	return out
}

// DataBytes reports total tuple bytes moved across overlay links.
func (n *LiveNet) DataBytes() int64 { return n.dataBytes.Load() }

// TotalDataBytes is DataBytes under the name the System surface uses,
// mirroring SimNet.
func (n *LiveNet) TotalDataBytes() int64 { return n.dataBytes.Load() }

// Broker exposes a node's broker.
func (n *LiveNet) Broker(node int) *Broker { return n.brokers[node] }

// Advertise announces a stream from the client's node.
func (c *LiveClient) Advertise(streamName string) {
	c.net.inject(c.Node, c.iface, liveMsg{kind: 2, name: streamName})
}

// Subscribe submits a profile from the client's node.
func (c *LiveClient) Subscribe(p *profile.Profile) {
	c.net.inject(c.Node, c.iface, liveMsg{kind: 1, prof: p})
}

// Publish injects a datagram, blocking while the node's ingress credits
// are exhausted. The error reports only a stopped network; routing is
// asynchronous, so routing failures surface as dropped tuples, as in
// any CBN.
func (c *LiveClient) Publish(t stream.Tuple) error {
	if !c.net.inject(c.Node, c.iface, liveMsg{kind: 0, tuple: t}) {
		return fmt.Errorf("cbn: live network stopped")
	}
	return nil
}
