package core

import (
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"

	"cosmos/internal/exec"
	"cosmos/internal/spe"
	"cosmos/internal/stream"
)

// resultLog collects per-query result sequences keyed by result stream
// (= the query tag); live deliveries arrive on proxy pump goroutines.
type resultLog struct {
	mu sync.Mutex
	m  map[string][]string
}

func newResultLog() *resultLog { return &resultLog{m: map[string][]string{}} }

func (r *resultLog) add(t stream.Tuple) {
	r.mu.Lock()
	r.m[t.Schema.Stream] = append(r.m[t.Schema.Stream], t.String())
	r.mu.Unlock()
}

func (r *resultLog) total() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for _, seq := range r.m {
		n += len(seq)
	}
	return n
}

func (r *resultLog) snapshot() map[string][]string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string][]string, len(r.m))
	for tag, seq := range r.m {
		out[tag] = append([]string(nil), seq...)
	}
	return out
}

// driveTransportWorkload runs the mixed auction workload on either
// transport and returns the per-query result sequences. Both sources
// attach at one node: on the live transport, per-client injection order
// plus FIFO hops then guarantee every processor sees the interleaved
// trace in publish order — the precondition for matching the
// synchronous reference byte for byte. When failProc >= 0 the run
// crashes that processor halfway through (at a quiesced boundary, so
// the loss — everything past the last checkpoint — is identical on both
// transports).
func driveTransportWorkload(t *testing.T, opts Options, live bool, failProc int) map[string][]string {
	t.Helper()
	var sys *System
	if live {
		ls, err := NewLiveSystem(opts)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(ls.Close)
		sys = ls.System
	} else {
		var err error
		sys, err = NewSystem(opts)
		if err != nil {
			t.Fatal(err)
		}
	}
	infos := auctionInfos()
	openPort, err := sys.RegisterStream(infos[0], 1)
	if err != nil {
		t.Fatal(err)
	}
	closedPort, err := sys.RegisterStream(infos[1], 1)
	if err != nil {
		t.Fatal(err)
	}
	log := newResultLog()
	queries := []struct {
		text string
		node int
	}{
		{"SELECT itemID, start_price FROM OpenAuction [Now] WHERE start_price > 50", 3},
		{"SELECT itemID FROM OpenAuction [Now] WHERE start_price > 20", 4},
		{"SELECT O.itemID FROM OpenAuction [Range 1 Hour] O, ClosedAuction [Now] C WHERE O.itemID = C.itemID", 5},
		{"SELECT sellerID, COUNT(*) FROM OpenAuction [Range 1 Hour] GROUP BY sellerID", 6},
		{"SELECT itemID, buyerID FROM ClosedAuction [Now]", 7},
	}
	for _, q := range queries {
		if _, err := sys.Submit(q.text, q.node, log.add); err != nil {
			t.Fatalf("submit %q: %v", q.text, err)
		}
	}
	// Settle the control plane — subscription propagation is
	// asynchronous on the live transport — before traffic starts.
	sys.Quiesce()

	publish := func(from, to int) {
		for i := from; i < to; i++ {
			ts := stream.Timestamp(i * 500)
			if err := openPort.Publish(openT(infos[0], ts, int64(i%40), int64(i%5), float64(i%120))); err != nil {
				t.Fatal(err)
			}
			if i%3 == 0 {
				if err := closedPort.Publish(closedT(infos[1], ts+1, int64(i%40), int64(i%7))); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	publish(0, 60)
	switch {
	case failProc >= 0:
		sys.Quiesce()
		if err := sys.FailProcessor(failProc); err != nil {
			t.Fatal(err)
		}
		// Let the survivor's re-advertisements and re-subscriptions
		// settle before traffic resumes.
		sys.Quiesce()
	case live:
		// Steady state: results must reach the proxies while ingest
		// continues — no Quiesce on the data path.
		deadline := time.Now().Add(10 * time.Second)
		for log.total() == 0 {
			if time.Now().After(deadline) {
				t.Fatal("no results delivered while ingest was in flight")
			}
			time.Sleep(time.Millisecond)
		}
	}
	publish(60, 120)
	sys.Quiesce()
	return log.snapshot()
}

func compareSequences(t *testing.T, got, want map[string][]string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%d queries delivered, want %d", len(got), len(want))
	}
	for tag, ref := range want {
		g := got[tag]
		if len(g) != len(ref) {
			t.Fatalf("query %s: %d results, want %d", tag, len(g), len(ref))
		}
		for i := range g {
			if g[i] != ref[i] {
				t.Fatalf("query %s result %d differs:\nlive: %s\nsync: %s", tag, i, g[i], ref[i])
			}
		}
	}
}

// TestLiveSystemMatchesSynchronous is the keystone differential for the
// concurrent deployment: sharded processors over the goroutine-per-
// broker LiveNet, with workers publishing results straight into the
// network, must deliver per query exactly the result sequence of the
// deterministic synchronous system — at workers 1, 2 and 4, with
// checkpoints firing under live traffic, and with results flowing while
// ingest continues (no world-stop on the data path).
func TestLiveSystemMatchesSynchronous(t *testing.T) {
	base := Options{Nodes: 16, Seed: 3, CheckpointEvery: 11}
	want := driveTransportWorkload(t, base, false, -1)
	nonEmpty := 0
	for _, seq := range want {
		if len(seq) > 0 {
			nonEmpty++
		}
	}
	if nonEmpty < 4 {
		t.Fatalf("only %d queries produced results; workload too weak", nonEmpty)
	}
	for _, cfg := range []struct {
		workers, batch int
	}{{1, 1}, {2, 8}, {4, 32}} {
		t.Run(fmt.Sprintf("workers%d-batch%d", cfg.workers, cfg.batch), func(t *testing.T) {
			opts := base
			opts.ExecWorkers = cfg.workers
			opts.IngestBatch = cfg.batch
			got := driveTransportWorkload(t, opts, true, -1)
			compareSequences(t, got, want)
		})
	}
}

// TestLiveSystemFailoverMatchesSynchronous runs the workload across a
// processor crash: checkpoints captured under live traffic must restore
// on the survivor to exactly the state the synchronous system restores
// to, so the post-failover result sequences stay identical per query.
func TestLiveSystemFailoverMatchesSynchronous(t *testing.T) {
	base := Options{
		Nodes: 16, Seed: 3, CheckpointEvery: 7,
		ProcessorNodes: []int{4, 9}, Placement: RoundRobin,
	}
	want := driveTransportWorkload(t, base, false, 0)
	nonEmpty := 0
	for _, seq := range want {
		if len(seq) > 0 {
			nonEmpty++
		}
	}
	if nonEmpty < 4 {
		t.Fatalf("only %d queries produced results; workload too weak", nonEmpty)
	}
	opts := base
	opts.ExecWorkers = 2
	opts.IngestBatch = 8
	got := driveTransportWorkload(t, opts, true, 0)
	compareSequences(t, got, want)
}

// TestLiveCheckpointRestoreUnderLoad: snapshots captured by the
// consume-path checkpointer while live traffic flows (WithPlan quiesces
// one plan; ingest, other plans and the network keep running) must
// restore onto a fresh engine to exactly the captured state.
func TestLiveCheckpointRestoreUnderLoad(t *testing.T) {
	opts := Options{Nodes: 16, Seed: 3, ExecWorkers: 2, IngestBatch: 4, CheckpointEvery: 5}
	ls, err := NewLiveSystem(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(ls.Close)
	infos := auctionInfos()
	openPort, err := ls.RegisterStream(infos[0], 1)
	if err != nil {
		t.Fatal(err)
	}
	closedPort, err := ls.RegisterStream(infos[1], 1)
	if err != nil {
		t.Fatal(err)
	}
	queries := []string{
		"SELECT O.itemID FROM OpenAuction [Range 1 Hour] O, ClosedAuction [Now] C WHERE O.itemID = C.itemID",
		"SELECT sellerID, COUNT(*) FROM OpenAuction [Range 1 Hour] GROUP BY sellerID",
	}
	for i, q := range queries {
		if _, err := ls.Submit(q, 3+i, func(stream.Tuple) {}); err != nil {
			t.Fatal(err)
		}
	}
	ls.Quiesce()
	// Checkpoints fire every 5th delivery while this loop keeps
	// injecting — capture genuinely overlaps live traffic.
	for i := 0; i < 120; i++ {
		ts := stream.Timestamp(i * 500)
		if err := openPort.Publish(openT(infos[0], ts, int64(i%40), int64(i%5), float64(i%120))); err != nil {
			t.Fatal(err)
		}
		if i%3 == 0 {
			if err := closedPort.Publish(closedT(infos[1], ts+1, int64(i%40), int64(i%7))); err != nil {
				t.Fatal(err)
			}
		}
	}
	ls.Quiesce()

	proc := ls.Processors()[0]
	restored := exec.New(exec.Config{})
	recovered, err := proc.cp.Failover(restored)
	if err != nil {
		t.Fatal(err)
	}
	if len(recovered) == 0 {
		t.Fatal("no plans recovered from the checkpoint store")
	}
	snaps := 0
	for _, id := range recovered {
		snap, ok := proc.cp.Snapshot(id)
		if !ok {
			continue // registered but never captured — restarts cold
		}
		snaps++
		var got *spe.Snapshot
		if !restored.WithPlan(id, func(p *spe.Plan) { got = p.Snapshot() }) {
			t.Fatalf("plan %s missing on the restored engine", id)
		}
		if !reflect.DeepEqual(got, snap) {
			t.Errorf("plan %s: restored state differs from the live-captured checkpoint", id)
		}
	}
	if snaps == 0 {
		t.Fatal("no snapshots were captured under load")
	}
}
