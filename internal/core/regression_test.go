package core

import (
	"fmt"
	"strings"
	"testing"

	"cosmos/internal/stream"
)

// TestGroupGrowthDoesNotLeakForeignTuples is the regression test for the
// stale-subscription bug: when a singleton group (whose user subscribed
// to the unfiltered result stream) grows into a merged group, the first
// user's old, filterless subscription must not keep delivering the whole
// representative stream to it. The fix versions the result stream name
// on every membership change.
func TestGroupGrowthDoesNotLeakForeignTuples(t *testing.T) {
	sys, openPort, closedPort := newAuctionSystem(t, Options{Nodes: 16, Seed: 5})
	infos := auctionInfos()
	h := stream.Timestamp(stream.Hour)

	var got1, got2 []stream.Tuple
	// q1 first: singleton group, unfiltered result subscription.
	_, err := sys.Submit(
		"SELECT O.itemID FROM OpenAuction [Range 3 Hour] O, ClosedAuction [Now] C WHERE O.itemID = C.itemID",
		5, func(tp stream.Tuple) { got1 = append(got1, tp) })
	if err != nil {
		t.Fatal(err)
	}
	// q2 joins the group; the representative now covers 5 hours.
	_, err = sys.Submit(
		"SELECT O.itemID, C.buyerID FROM OpenAuction [Range 5 Hour] O, ClosedAuction [Now] C WHERE O.itemID = C.itemID",
		6, func(tp stream.Tuple) { got2 = append(got2, tp) })
	if err != nil {
		t.Fatal(err)
	}
	if sys.Processors()[0].Groups() != 1 {
		t.Fatal("queries should merge")
	}
	// Item closes after 4h: inside q2's window, OUTSIDE q1's.
	openPort.Publish(openT(infos[0], 0, 1, 9, 10))
	closedPort.Publish(closedT(infos[1], 4*h, 1, 77))
	if len(got1) != 0 {
		t.Errorf("q1 leaked a 4-hour close: %v", got1)
	}
	if len(got2) != 1 {
		t.Errorf("q2 deliveries = %d", len(got2))
	}
	// Item closes within 2h: both.
	openPort.Publish(openT(infos[0], 5*h, 2, 9, 10))
	closedPort.Publish(closedT(infos[1], 7*h, 2, 88))
	if len(got1) != 1 || len(got2) != 2 {
		t.Errorf("after fast close: q1=%d q2=%d", len(got1), len(got2))
	}
}

// TestThreeMemberGroupEvolution grows a group to three members and
// removes the widest, checking that deliveries stay exact throughout.
func TestThreeMemberGroupEvolution(t *testing.T) {
	sys, openPort, _ := newAuctionSystem(t, Options{Nodes: 16, Seed: 6})
	infos := auctionInfos()

	counts := make([]int, 3)
	thresholds := []float64{500, 100, 10}
	handles := make([]*QueryHandle, 3)
	for i, th := range thresholds {
		i := i
		h, err := sys.Submit(
			fmt.Sprintf("SELECT itemID FROM OpenAuction [Now] WHERE start_price > %.0f", th),
			i+3, func(stream.Tuple) { counts[i]++ })
		if err != nil {
			t.Fatal(err)
		}
		handles[i] = h
	}
	if sys.Processors()[0].Groups() != 1 {
		t.Fatalf("groups = %d", sys.Processors()[0].Groups())
	}
	// price 250: members with thresholds 100 and 10 match.
	openPort.Publish(openT(infos[0], 1, 1, 1, 250))
	if counts[0] != 0 || counts[1] != 1 || counts[2] != 1 {
		t.Fatalf("counts after 250: %v", counts)
	}
	// Remove the widest member (threshold 10); the representative
	// narrows to price > 100.
	if err := sys.Cancel(handles[2]); err != nil {
		t.Fatal(err)
	}
	openPort.Publish(openT(infos[0], 2, 2, 1, 50)) // matches nobody now
	if counts[0] != 0 || counts[1] != 1 {
		t.Fatalf("counts after 50: %v", counts)
	}
	openPort.Publish(openT(infos[0], 3, 3, 1, 600)) // matches both survivors
	if counts[0] != 1 || counts[1] != 2 {
		t.Fatalf("counts after 600: %v", counts)
	}
	if counts[2] != 1 {
		t.Fatalf("cancelled member kept receiving: %v", counts)
	}
}

// TestResultStreamVersioning checks the versioned naming contract.
func TestResultStreamVersioning(t *testing.T) {
	sys, _, _ := newAuctionSystem(t, Options{Nodes: 16, Seed: 7})
	h1, err := sys.Submit("SELECT itemID FROM OpenAuction [Now] WHERE start_price > 10", 3,
		func(stream.Tuple) {})
	if err != nil {
		t.Fatal(err)
	}
	v0 := h1.resultStreamName()
	if !strings.HasSuffix(v0, "-v0") {
		t.Errorf("initial version = %s", v0)
	}
	if _, err := sys.Submit("SELECT itemID FROM OpenAuction [Now] WHERE start_price > 20", 4,
		func(stream.Tuple) {}); err != nil {
		t.Fatal(err)
	}
	v1 := h1.resultStreamName()
	if v1 == v0 || !strings.HasSuffix(v1, "-v1") {
		t.Errorf("version after growth = %s (was %s)", v1, v0)
	}
	// The old result stream is gone from the catalogue; the new one is
	// registered.
	if _, ok := sys.Catalog().Lookup(v0); ok {
		t.Error("stale result stream still in catalogue")
	}
	if _, ok := sys.Catalog().Lookup(v1); !ok {
		t.Error("current result stream missing from catalogue")
	}
}

// resultStreamName exposes the handle's current binding for tests.
func (h *QueryHandle) resultStreamName() string {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.resultStream
}
