// Package window implements CQL time-based sliding window semantics over
// the application time domain T (paper §4): a window predicate w(T) takes
// a positive time-interval T and defines a temporal relation composed of
// the tuples that arrived within the last T time units. T ranges from
// zero ([Now]) to infinity ([Unbounded]).
//
// The package also provides the pairwise join condition of Lemma 1, which
// both the stream processing engine's window join and the query layer's
// result-splitting profiles rely on.
package window

import "cosmos/internal/stream"

// Contains reports whether a tuple with timestamp ts belongs to the
// window of size T evaluated at time now: now − T ≤ ts ≤ now.
//
// [Now] (T = 0) keeps exactly the tuples carrying the current timestamp;
// [Unbounded] keeps everything up to now.
func Contains(ts, now stream.Timestamp, T stream.Duration) bool {
	if ts > now {
		return false
	}
	if T == stream.Unbounded {
		return true
	}
	return int64(now)-int64(ts) <= int64(T)
}

// Expired reports whether a tuple with timestamp ts has fallen out of the
// window of size T at time now and can never rejoin it (timestamps are
// non-decreasing).
func Expired(ts, now stream.Timestamp, T stream.Duration) bool {
	if T == stream.Unbounded {
		return false
	}
	return int64(now)-int64(ts) > int64(T)
}

// Joinable implements Lemma 1, condition (2): for a window-based join of
// streams S1 and S2 with window sizes T1 and T2, tuples t1 ∈ S1 and
// t2 ∈ S2 can produce a join result if and only if
//
//	−T1 ≤ t1.timestamp − t2.timestamp ≤ T2.
//
// (Condition (1), the join predicates, is evaluated separately.)
func Joinable(ts1, ts2 stream.Timestamp, t1, t2 stream.Duration) bool {
	d := int64(ts1) - int64(ts2)
	if t1 != stream.Unbounded && d < -int64(t1) {
		return false
	}
	if t2 != stream.Unbounded && d > int64(t2) {
		return false
	}
	return true
}

// Covers reports whether a window of size outer contains every tuple a
// window of size inner contains at every time instant — the window-size
// condition of Theorem 1 (T_i1 ≤ T_i2).
func Covers(outer, inner stream.Duration) bool {
	if outer == stream.Unbounded {
		return true
	}
	if inner == stream.Unbounded {
		return false
	}
	return inner <= outer
}

// Max returns the larger window; merging SPJ windows takes per-stream
// maxima so the representative window covers every member (Theorem 1).
func Max(a, b stream.Duration) stream.Duration {
	if a == stream.Unbounded || b == stream.Unbounded {
		return stream.Unbounded
	}
	if a > b {
		return a
	}
	return b
}
