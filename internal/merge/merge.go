// Package merge implements the paper's query-merging technique (§4):
// composing a representative query that contains every member of a query
// group, and the incremental greedy optimiser that assigns each arriving
// query to the group where merging yields the greatest estimated
// communication benefit, Σ C(qi) − C(q_rep).
//
// Merging follows Theorems 1 and 2: representative SPJ windows take the
// per-stream maximum; representative predicates are the "loosened"
// combination of member predicates; projections take the union.
// Exactness is recovered at the data layer by re-tightening profiles
// (package profile / BuildMemberProfile).
package merge

import (
	"fmt"
	"sort"

	"cosmos/internal/cql"
	"cosmos/internal/predicate"
	"cosmos/internal/window"
)

// Mode selects how member selection predicates combine into the
// representative predicate.
type Mode int

const (
	// ExactUnion ORs member predicates (DNF union with covering
	// simplification). The representative result is exactly the union of
	// member results for single-stream filters; groups stay tight at the
	// price of larger filter expressions.
	ExactUnion Mode = iota
	// ConvexHull widens per-attribute constraints to their convex hull,
	// producing a single conjunctive filter per stream. Filters stay
	// O(#attributes) regardless of group size; the representative may
	// cover tuples no member wants (filtered out when splitting).
	ConvexHull
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	if m == ConvexHull {
		return "hull"
	}
	return "union"
}

// Queries merges two bound queries into a representative query containing
// both (q1 ⊑ rep and q2 ⊑ rep). It errors when the queries are not
// group-compatible: different group signatures, or aggregates whose
// predicates/windows are not equivalent (Theorem 2 leaves no room to
// loosen an aggregate).
func Queries(q1, q2 *cql.Bound, mode Mode) (*cql.Bound, error) {
	if q1.GroupSignature() != q2.GroupSignature() {
		return nil, fmt.Errorf("merge: incompatible group signatures")
	}
	if q1.IsAggregate() {
		return mergeAggregates(q1, q2)
	}
	rep := q1.Clone()
	rep.Raw = ""

	// Windows: per-stream maximum (Theorem 1 condition 2).
	for i, ref := range rep.From {
		w := window.Max(ref.Window, q2.Windows[ref.Alias])
		rep.From[i].Window = w
		rep.Windows[ref.Alias] = w
	}

	// Selections: loosen per mode.
	for alias, sel1 := range rep.Sel {
		sel2, ok := q2.Sel[alias]
		if !ok {
			sel2 = predicate.True()
		}
		rep.Sel[alias] = loosen(sel1, sel2, mode)
	}

	// Residual predicates: both empty stays empty; otherwise OR (an empty
	// residual means TRUE, which dominates).
	switch {
	case len(rep.Residual) == 0 && len(q2.Residual) == 0:
		// nothing
	case len(rep.Residual) == 0 || len(q2.Residual) == 0:
		rep.Residual = nil
	default:
		rep.Residual = loosen(rep.Residual, q2.Residual, mode)
		if rep.Residual.IsTrue() {
			rep.Residual = nil
		}
	}

	// Projection: union of select columns plus every attribute a member's
	// re-tightening filter references (the split point must be able to
	// evaluate member predicates on the representative's result stream),
	// deterministic order.
	rep.SelectCols, rep.OutNames = unionCols(q1, q2, filterCols(q1), filterCols(q2))
	// Multi-stream representatives expose per-input timestamps so member
	// profiles can re-tighten windows (Lemma 1).
	if len(rep.From) > 1 {
		rep.IncludeInputTs = true
	}
	if err := rep.RebuildOutSchema(); err != nil {
		return nil, fmt.Errorf("merge: %w", err)
	}
	return rep, nil
}

// filterCols collects the qualified columns referenced by a query's
// selection and residual predicates.
func filterCols(q *cql.Bound) []cql.ColRef {
	var out []cql.ColRef
	for alias, sel := range q.Sel {
		sch := q.Schemas[alias]
		for _, bare := range sel.Attrs() {
			if sch.Has(bare) {
				out = append(out, cql.ColRef{Qualifier: alias, Name: bare})
			}
		}
	}
	for _, qualified := range q.Residual.Attrs() {
		if c, ok := splitQualified(q, qualified); ok {
			out = append(out, c)
		}
	}
	return out
}

// splitQualified resolves "alias.attr" against the query's schemas.
func splitQualified(q *cql.Bound, qualified string) (cql.ColRef, bool) {
	for alias, sch := range q.Schemas {
		prefix := alias + "."
		if len(qualified) > len(prefix) && qualified[:len(prefix)] == prefix {
			name := qualified[len(prefix):]
			if sch.Has(name) {
				return cql.ColRef{Qualifier: alias, Name: name}, true
			}
		}
	}
	return cql.ColRef{}, false
}

// loosen combines two selection DNFs per the mode, collapsing to TRUE
// early when either side is TRUE.
func loosen(a, b predicate.DNF, mode Mode) predicate.DNF {
	if a.IsTrue() || b.IsTrue() {
		return predicate.True()
	}
	if mode == ConvexHull {
		return hullDNF(a, b)
	}
	return a.Or(b)
}

// hullDNF folds every disjunct of both DNFs into a single conjunction by
// repeated pairwise convex hull.
func hullDNF(a, b predicate.DNF) predicate.DNF {
	all := make([]predicate.Conj, 0, len(a)+len(b))
	all = append(all, a...)
	all = append(all, b...)
	if len(all) == 0 {
		return predicate.True()
	}
	acc := all[0]
	for _, cj := range all[1:] {
		acc = predicate.Hull(acc, cj)
	}
	if len(acc) == 0 {
		return predicate.True()
	}
	return predicate.DNF{acc}
}

// mergeAggregates merges aggregate queries, which is only possible when
// they are equivalent up to projection: equal windows (Theorem 2) and
// equivalent selections/residuals — otherwise the aggregate values would
// differ and no splitting filter could recover them.
func mergeAggregates(q1, q2 *cql.Bound) (*cql.Bound, error) {
	for alias, w1 := range q1.Windows {
		if q2.Windows[alias] != w1 {
			return nil, fmt.Errorf("merge: aggregate windows differ on %s", alias)
		}
	}
	for alias, sel1 := range q1.Sel {
		sel2, ok := q2.Sel[alias]
		if !ok {
			sel2 = predicate.True()
		}
		if !predicate.ImpliesDNF(sel1, sel2) || !predicate.ImpliesDNF(sel2, sel1) {
			return nil, fmt.Errorf("merge: aggregate selections differ on %s", alias)
		}
	}
	res1, res2 := q1.Residual, q2.Residual
	if len(res1) == 0 {
		res1 = predicate.True()
	}
	if len(res2) == 0 {
		res2 = predicate.True()
	}
	if !predicate.ImpliesDNF(res1, res2) || !predicate.ImpliesDNF(res2, res1) {
		return nil, fmt.Errorf("merge: aggregate residuals differ")
	}
	rep := q1.Clone()
	rep.Raw = ""
	// Projection union over the grouped plain columns; aggregates are
	// identical by signature. Aggregate output names canonicalise to the
	// spec rendering so that members with different AS aliases share one
	// result attribute (per-member renaming happens at delivery).
	rep.SelectCols, rep.OutNames = unionCols(q1, q2)
	for i := range rep.Aggs {
		rep.Aggs[i].OutName = rep.Aggs[i].String()
	}
	if err := rep.RebuildOutSchema(); err != nil {
		return nil, fmt.Errorf("merge: %w", err)
	}
	return rep, nil
}

// unionCols unions the select columns of two queries plus any extra
// column sets. Output names revert to canonical qualified names (user AS
// aliases are per-member concerns, reapplied when results are delivered).
func unionCols(q1, q2 *cql.Bound, extra ...[]cql.ColRef) ([]cql.ColRef, []string) {
	all := append(append([]cql.ColRef{}, q1.SelectCols...), q2.SelectCols...)
	for _, cols := range extra {
		all = append(all, cols...)
	}
	seen := map[string]bool{}
	var cols []cql.ColRef
	for _, c := range all {
		key := c.String()
		if !seen[key] {
			seen[key] = true
			cols = append(cols, c)
		}
	}
	sort.Slice(cols, func(i, j int) bool { return cols[i].String() < cols[j].String() })
	names := make([]string, len(cols))
	for i, c := range cols {
		names[i] = c.String()
	}
	return cols, names
}
