package spe

import (
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"testing"

	"cosmos/internal/cql"
	"cosmos/internal/querygen"
	"cosmos/internal/sensordata"
	"cosmos/internal/stream"
)

// forceInterpreted pins a plan to the name-resolved path, turning it
// into the differential reference for a compiled twin.
func (p *Plan) forceInterpreted() { p.degrade() }

// samePush feeds one tuple to the compiled plan and its interpreted twin
// and asserts identical emissions (count, order, timestamps, values) and
// identical error outcomes. It returns the number of emitted tuples.
func samePush(t *testing.T, ctx string, pc, pi *Plan, tp stream.Tuple) int {
	t.Helper()
	got, gerr := pc.Push(tp)
	want, werr := pi.Push(tp)
	if (gerr == nil) != (werr == nil) {
		t.Fatalf("%s: error mismatch: compiled %v, interpreted %v", ctx, gerr, werr)
	}
	if gerr != nil {
		if gerr.Error() != werr.Error() {
			t.Fatalf("%s: error text mismatch:\ncompiled:    %v\ninterpreted: %v", ctx, gerr, werr)
		}
		return 0
	}
	if len(got) != len(want) {
		t.Fatalf("%s: %d emissions, interpreted %d", ctx, len(got), len(want))
	}
	for i := range got {
		g, w := got[i], want[i]
		if g.Ts != w.Ts || g.Schema.Stream != w.Schema.Stream ||
			!reflect.DeepEqual(g.Values, w.Values) {
			t.Fatalf("%s: emission %d differs:\ncompiled:    %s\ninterpreted: %s", ctx, i, g, w)
		}
	}
	return len(got)
}

// TestCompiledPlanDifferentialQuerygen is the keystone differential test
// of the compiled operator pipeline: over randomized querygen workloads
// spanning select, self-join (equi and non-equi) and aggregate queries,
// the compiled plan must reproduce the interpreted path's emissions —
// tuples, order, errors — exactly.
func TestCompiledPlanDifferentialQuerygen(t *testing.T) {
	reg := stream.NewRegistry()
	if err := sensordata.RegisterAll(reg); err != nil {
		t.Fatal(err)
	}
	const stations = 6
	gen, err := querygen.New(querygen.Config{
		Dist:         querygen.Zipf10,
		Seed:         11,
		Streams:      stations,
		AggFraction:  0.35,
		JoinFraction: 0.35,
		WindowMenu: []stream.Duration{
			2 * stream.Minute, 5 * stream.Minute, 10 * stream.Minute,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	bounds, err := gen.BindBatch(60, reg)
	if err != nil {
		t.Fatal(err)
	}

	type pair struct {
		pc, pi *Plan
		kind   string
	}
	emitted := map[string]int{}
	var pairs []pair
	for i, b := range bounds {
		kind := "select"
		switch {
		case b.IsAggregate():
			kind = "agg"
		case len(b.From) > 1:
			kind = "join"
		}
		res := fmt.Sprintf("res%d", i)
		pc, err := Compile(fmt.Sprintf("q%d", i), b, res)
		if err != nil {
			t.Fatalf("query %d (%s): %v", i, b.Raw, err)
		}
		if !pc.Compiled() {
			t.Fatalf("query %d (%s) should compile to the index-resolved path", i, b.Raw)
		}
		pi, err := Compile(fmt.Sprintf("q%d", i), b, res)
		if err != nil {
			t.Fatal(err)
		}
		pi.forceInterpreted()
		pairs = append(pairs, pair{pc, pi, kind})
	}

	gens := make([]*sensordata.Generator, stations)
	for s := range gens {
		gens[s] = sensordata.NewGenerator(s, int64(s+1))
	}
	for round := 0; round < 120; round++ {
		for s := range gens {
			tp := gens[s].Next()
			for _, pr := range pairs {
				ctx := fmt.Sprintf("round %d station %d plan %s", round, s, pr.pc.ID)
				emitted[pr.kind] += samePush(t, ctx, pr.pc, pr.pi, tp)
			}
		}
	}
	for _, kind := range []string{"select", "join", "agg"} {
		if emitted[kind] == 0 {
			t.Errorf("workload emitted nothing for %s queries; differential is vacuous", kind)
		}
	}
}

func threeWayCatalog() *stream.Registry {
	r := stream.NewRegistry()
	infos := []*stream.Info{
		{Schema: stream.MustSchema("SA",
			stream.Field{Name: "k", Kind: stream.KindInt},
			stream.Field{Name: "v", Kind: stream.KindFloat},
		), Rate: 10},
		{Schema: stream.MustSchema("SB",
			stream.Field{Name: "k", Kind: stream.KindInt},
			stream.Field{Name: "j", Kind: stream.KindInt},
		), Rate: 10},
		{Schema: stream.MustSchema("SC",
			stream.Field{Name: "j", Kind: stream.KindInt},
			stream.Field{Name: "w", Kind: stream.KindFloat},
		), Rate: 10},
	}
	for _, in := range infos {
		if err := r.Register(in); err != nil {
			panic(err)
		}
	}
	return r
}

// TestCompiledThreeWayJoinDifferential drives a chain equi-join over
// three streams through the compiled pipeline: every input carries a
// hash partition, probe order determines which inputs can use theirs
// (the chain's far end scans until its partner is placed), and the
// emissions must match the interpreted nested loop exactly.
func TestCompiledThreeWayJoinDifferential(t *testing.T) {
	reg := threeWayCatalog()
	b, err := cql.AnalyzeString(
		`SELECT SA.k, SB.j, SC.w FROM SA [Range 1 Hour], SB [Range 1 Hour], SC [Range 30 Minute]
		 WHERE SA.k = SB.k AND SB.j = SC.j AND SA.v > 10`, reg)
	if err != nil {
		t.Fatal(err)
	}
	pc, err := Compile("three", b, "res")
	if err != nil {
		t.Fatal(err)
	}
	if !pc.Compiled() {
		t.Fatal("three-way chain join should compile")
	}
	for i, in := range pc.inputs {
		if in.hash == nil {
			t.Fatalf("input %d (%s) should have an equi-partition index", i, in.alias)
		}
	}
	pi, _ := Compile("three", b, "res")
	pi.forceInterpreted()

	saSchema, _ := reg.Schema("SA")
	sbSchema, _ := reg.Schema("SB")
	scSchema, _ := reg.Schema("SC")
	r := rand.New(rand.NewSource(5))
	ts := stream.Timestamp(0)
	emitted := 0
	events := 600
	if testing.Short() {
		events = 150
	}
	for i := 0; i < events; i++ {
		ts += stream.Timestamp(r.Int63n(int64(30 * stream.Second)))
		var tp stream.Tuple
		switch r.Intn(3) {
		case 0:
			tp = stream.MustTuple(saSchema, ts, stream.Int(r.Int63n(5)), stream.Float(float64(r.Int63n(20))))
		case 1:
			tp = stream.MustTuple(sbSchema, ts, stream.Int(r.Int63n(5)), stream.Int(r.Int63n(4)))
		default:
			tp = stream.MustTuple(scSchema, ts, stream.Int(r.Int63n(4)), stream.Float(float64(i)))
		}
		emitted += samePush(t, fmt.Sprintf("event %d", i), pc, pi, tp)
	}
	if emitted == 0 {
		t.Error("three-way workload emitted nothing; differential is vacuous")
	}
}

// TestCompiledThreeWaySelfJoinDifferential repeats one stream under two
// aliases plus a third stream: the new tuple enters the probe at both
// self-aliases, and the compiled enumeration order must still match the
// interpreted path.
func TestCompiledThreeWaySelfJoinDifferential(t *testing.T) {
	reg := threeWayCatalog()
	b, err := cql.AnalyzeString(
		`SELECT x.k, z.j FROM SA [Range 1 Hour] x, SA [Range 30 Minute] y, SB [Range 1 Hour] z
		 WHERE x.k = y.k AND y.k = z.k AND x.v >= y.v`, reg)
	if err != nil {
		t.Fatal(err)
	}
	pc, err := Compile("self3", b, "res")
	if err != nil {
		t.Fatal(err)
	}
	if !pc.Compiled() {
		t.Fatal("three-way self-join should compile")
	}
	pi, _ := Compile("self3", b, "res")
	pi.forceInterpreted()

	saSchema, _ := reg.Schema("SA")
	sbSchema, _ := reg.Schema("SB")
	r := rand.New(rand.NewSource(17))
	ts := stream.Timestamp(0)
	emitted := 0
	events := 400
	if testing.Short() {
		events = 100
	}
	for i := 0; i < events; i++ {
		ts += stream.Timestamp(r.Int63n(int64(time30s)))
		var tp stream.Tuple
		if r.Intn(2) == 0 {
			tp = stream.MustTuple(saSchema, ts, stream.Int(r.Int63n(3)), stream.Float(float64(r.Int63n(10))))
		} else {
			tp = stream.MustTuple(sbSchema, ts, stream.Int(r.Int63n(3)), stream.Int(r.Int63n(4)))
		}
		emitted += samePush(t, fmt.Sprintf("event %d", i), pc, pi, tp)
	}
	if emitted == 0 {
		t.Error("self-join workload emitted nothing; differential is vacuous")
	}
}

const time30s = 30 * stream.Second

// TestCompiledSchemaDriftLayout checks that a layout-only drift (new
// schema pointer, reordered and widened attribute set) keeps the plan on
// the compiled path: the adapter rebinds by name and results stay
// identical to the interpreted reference.
func TestCompiledSchemaDriftLayout(t *testing.T) {
	reg := threeWayCatalog()
	b, err := cql.AnalyzeString("SELECT k FROM SA [Now] WHERE v > 10", reg)
	if err != nil {
		t.Fatal(err)
	}
	pc, _ := Compile("drift", b, "res")
	pi, _ := Compile("drift", b, "res")
	pi.forceInterpreted()
	if !pc.Compiled() {
		t.Fatal("plan should compile")
	}

	saSchema, _ := reg.Schema("SA")
	samePush(t, "original", pc, pi, stream.MustTuple(saSchema, 1, stream.Int(7), stream.Float(20)))

	// Reordered layout with an extra attribute under the same name.
	drifted := stream.MustSchema("SA",
		stream.Field{Name: "extra", Kind: stream.KindString},
		stream.Field{Name: "v", Kind: stream.KindFloat},
		stream.Field{Name: "k", Kind: stream.KindInt},
	)
	n := samePush(t, "layout drift", pc, pi,
		stream.MustTuple(drifted, 2, stream.String_("x"), stream.Float(30), stream.Int(8)))
	if n != 1 {
		t.Fatalf("layout-drifted tuple emitted %d results, want 1", n)
	}
	if !pc.Compiled() {
		t.Error("layout-only drift must keep the plan compiled")
	}
	// A tuple lacking a needed attribute errors identically on both paths.
	narrow := stream.MustSchema("SA", stream.Field{Name: "k", Kind: stream.KindInt})
	samePush(t, "missing attribute", pc, pi, stream.MustTuple(narrow, 3, stream.Int(9)))
	if !pc.Compiled() {
		t.Error("a missing attribute is a per-tuple error, not a mode change")
	}
}

// TestCompiledSchemaDriftKindFallback checks the fallback trigger: a
// mid-stream drift that changes an attribute's kind permanently degrades
// the plan to the interpreted path, with emissions and errors matching
// the always-interpreted reference before, during and after the drift.
func TestCompiledSchemaDriftKindFallback(t *testing.T) {
	reg := threeWayCatalog()
	b, err := cql.AnalyzeString(
		"SELECT SA.v, SB.j FROM SA [Range 1 Hour], SB [Range 1 Hour] WHERE SA.k = SB.k", reg)
	if err != nil {
		t.Fatal(err)
	}
	pc, _ := Compile("kindrift", b, "res")
	pi, _ := Compile("kindrift", b, "res")
	pi.forceInterpreted()
	if !pc.Compiled() {
		t.Fatal("join plan should compile")
	}

	saSchema, _ := reg.Schema("SA")
	sbSchema, _ := reg.Schema("SB")
	emitted := 0
	for i := 0; i < 20; i++ {
		ts := stream.Timestamp(i) * 1000
		emitted += samePush(t, fmt.Sprintf("warm %d", i), pc, pi,
			stream.MustTuple(saSchema, ts, stream.Int(int64(i%3)), stream.Float(float64(i))))
		emitted += samePush(t, fmt.Sprintf("warm sb %d", i), pc, pi,
			stream.MustTuple(sbSchema, ts, stream.Int(int64(i%3)), stream.Int(int64(i))))
	}
	if emitted == 0 {
		t.Fatal("warmup emitted nothing")
	}

	// Mid-stream kind drift: SA.k becomes a string. The compiled plan
	// must degrade and thereafter behave exactly like the interpreted
	// reference (here: a per-tuple incomparable-kinds join error).
	drifted := stream.MustSchema("SA",
		stream.Field{Name: "k", Kind: stream.KindString},
		stream.Field{Name: "v", Kind: stream.KindFloat},
	)
	samePush(t, "kind drift", pc, pi,
		stream.MustTuple(drifted, 21000, stream.String_("oops"), stream.Float(1)))
	if pc.Compiled() {
		t.Fatal("kind drift must degrade the plan to the interpreted path")
	}
	for _, in := range pc.inputs {
		if in.hash != nil || in.selC != nil {
			t.Fatal("degraded plan should drop its compiled artifacts")
		}
	}
	// The shared window state carries over: post-drift traffic keeps
	// matching the reference.
	post := 0
	for i := 0; i < 10; i++ {
		ts := stream.Timestamp(22+i) * 1000
		post += samePush(t, fmt.Sprintf("post %d", i), pc, pi,
			stream.MustTuple(saSchema, ts, stream.Int(int64(i%3)), stream.Float(float64(i))))
		post += samePush(t, fmt.Sprintf("post sb %d", i), pc, pi,
			stream.MustTuple(sbSchema, ts, stream.Int(int64(i%3)), stream.Int(int64(i))))
	}
	if post == 0 {
		t.Error("post-drift traffic emitted nothing")
	}
}

// TestAggIncrementalEvictionState checks the incremental aggregate
// bookkeeping directly: group state is unwound as tuples expire, dead
// groups are deleted, and a dirtied MAX is recomputed from the live
// members only.
func TestAggIncrementalEvictionState(t *testing.T) {
	b := bind(t, "SELECT station, COUNT(*), SUM(temp), MAX(temp) FROM Sensor [Range 10 Second] GROUP BY station")
	p, err := Compile("agg", b, "res")
	if err != nil {
		t.Fatal(err)
	}
	if !p.Compiled() {
		t.Fatal("aggregate plan should compile")
	}
	s := stream.Timestamp(stream.Second)
	p.Push(sensorTuple(0, 1, 30))
	p.Push(sensorTuple(5*s, 1, 10))
	p.Push(sensorTuple(6*s, 2, 99))
	// At 12s the 30-reading expired: MAX must recompute to the live
	// members {10, 20}.
	out, err := p.Push(sensorTuple(12*s, 1, 20))
	if err != nil {
		t.Fatal(err)
	}
	r := out[0]
	if n := r.MustGet("COUNT(*)").AsInt(); n != 2 {
		t.Errorf("count = %d, want 2", n)
	}
	if v := r.MustGet("SUM(Sensor.temp)").AsFloat(); v != 30 {
		t.Errorf("sum = %v, want 30", v)
	}
	if v := r.MustGet("MAX(Sensor.temp)").AsFloat(); v != 20 {
		t.Errorf("max = %v, want 20 (evicted extremum must be recomputed)", v)
	}
	// Far in the future every earlier group expired; only the trigger's
	// group survives in the state map.
	if _, err := p.Push(sensorTuple(1000*s, 3, 1)); err != nil {
		t.Fatal(err)
	}
	if n := len(p.agg.groups); n != 1 {
		t.Errorf("%d groups retained after full eviction, want 1", n)
	}
}

// TestAggUpdateMissingSelectedColumnErrors pins the contract the old
// implementation violated: a selected grouping column missing from the
// tuple must surface as an error, not a silently emitted zero Value.
func TestAggUpdateMissingSelectedColumnErrors(t *testing.T) {
	sch := stream.MustSchema("S", stream.Field{Name: "station", Kind: stream.KindInt})
	a := &aggState{
		bound:     &cql.Bound{},
		schema:    sch,
		plainCols: []string{"station"},
		plainIdx:  []int{0},
		groups:    map[hashKey]*groupAgg{},
	}
	in := &inputState{schema: sch}
	other := stream.MustSchema("S", stream.Field{Name: "temp", Kind: stream.KindFloat})
	tp := stream.MustTuple(other, 1, stream.Float(3))
	if _, err := a.update(in, tp, 0, false); err == nil {
		t.Fatal("missing selected grouping column must error, not emit a zero Value")
	}
}

// TestSnapshotRestoreRebuildsCompiledState checks that restoring a
// snapshot into a fresh compiled plan rebuilds the hash partitions and
// aggregate accumulators so post-restore behaviour matches a plan that
// never failed over.
func TestSnapshotRestoreRebuildsCompiledState(t *testing.T) {
	b := bind(t, `SELECT O.itemID FROM OpenAuction [Range 2 Hour] O, ClosedAuction [Now] C WHERE O.itemID = C.itemID`)
	orig, err := Compile("q", b, "res")
	if err != nil {
		t.Fatal(err)
	}
	h := stream.Timestamp(stream.Hour)
	for i := int64(0); i < 20; i++ {
		if _, err := orig.Push(openTuple(stream.Timestamp(i)*stream.Timestamp(stream.Minute), i, 1, 10)); err != nil {
			t.Fatal(err)
		}
	}
	snap := orig.Snapshot()
	restored, err := Compile("q", b.Clone(), "res")
	if err != nil {
		t.Fatal(err)
	}
	if err := restored.Restore(snap); err != nil {
		t.Fatal(err)
	}
	if !restored.Compiled() {
		t.Fatal("restored plan should stay compiled")
	}
	for i := int64(0); i < 20; i++ {
		ctx := fmt.Sprintf("close %d", i)
		want, err := orig.Push(closedTuple(h, i, 9))
		if err != nil {
			t.Fatal(err)
		}
		got, err := restored.Push(closedTuple(h, i, 9))
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("%s: restored emitted %d, original %d", ctx, len(got), len(want))
		}
		for j := range got {
			if got[j].Ts != want[j].Ts || !reflect.DeepEqual(got[j].Values, want[j].Values) {
				t.Fatalf("%s: emission %d differs: %s vs %s", ctx, j, got[j], want[j])
			}
		}
	}

	// Aggregate state rebuild: running sums continue seamlessly.
	ab := bind(t, "SELECT station, SUM(temp) FROM Sensor [Range 1 Hour] GROUP BY station")
	aorig, _ := Compile("a", ab, "ares")
	for i := int64(0); i < 10; i++ {
		aorig.Push(sensorTuple(stream.Timestamp(i)*1000, 1, float64(i)))
	}
	asnap := aorig.Snapshot()
	arestored, _ := Compile("a", ab.Clone(), "ares")
	if err := arestored.Restore(asnap); err != nil {
		t.Fatal(err)
	}
	wantOut, _ := aorig.Push(sensorTuple(20000, 1, 5))
	gotOut, _ := arestored.Push(sensorTuple(20000, 1, 5))
	if len(gotOut) != 1 || len(wantOut) != 1 ||
		!reflect.DeepEqual(gotOut[0].Values, wantOut[0].Values) {
		t.Fatalf("aggregate restore diverged: %v vs %v", gotOut, wantOut)
	}
}

// TestCompiledHashBucketsBounded checks that equi-partition buckets do
// not accumulate dead sequences: after heavy churn the total filed
// sequences stay proportional to the live window.
func TestCompiledHashBucketsBounded(t *testing.T) {
	b := bind(t, `SELECT O.itemID FROM OpenAuction [Range 1 Second] O, ClosedAuction [Now] C WHERE O.itemID = C.itemID`)
	p, err := Compile("q", b, "res")
	if err != nil {
		t.Fatal(err)
	}
	in := p.byAlias["OpenAuction"]
	if in.hash == nil {
		t.Fatal("equi-join input should be hash partitioned")
	}
	for i := 0; i < 20000; i++ {
		// Distinct items so every bucket holds few entries; the sweep
		// must still reclaim expired ones.
		if _, err := p.Push(openTuple(stream.Timestamp(i*10), int64(i), 1, 10)); err != nil {
			t.Fatal(err)
		}
	}
	total := len(in.hash.overflow)
	for _, bkt := range in.hash.buckets {
		total += len(bkt)
	}
	live := len(in.live())
	if total > 2*live+2*compactMinHead {
		t.Errorf("hash index holds %d sequences for %d live tuples", total, live)
	}
}

// TestAggFloatSumEvictionPrecision pins the float SUM/AVG contract: the
// emitted sum must equal a fresh scan of the live members, not a running
// accumulator that cancels catastrophically once a large value leaves
// the window.
func TestAggFloatSumEvictionPrecision(t *testing.T) {
	b := bind(t, "SELECT SUM(temp) FROM Sensor [Range 1 Second]")
	p, err := Compile("agg", b, "res")
	if err != nil {
		t.Fatal(err)
	}
	p.Push(sensorTuple(0, 1, 1e17))
	p.Push(sensorTuple(500, 1, 1))
	// At 1.4s the 1e17 reading expired; the live window is {1, 2}.
	out, err := p.Push(sensorTuple(1400, 1, 2))
	if err != nil {
		t.Fatal(err)
	}
	if got := out[0].MustGet("SUM(Sensor.temp)").AsFloat(); got != 3 {
		t.Errorf("sum after large-value eviction = %v, want 3", got)
	}
}

// TestAggNaNGroupKeys pins the NaN grouping contract: every NaN keys
// into one group (as the rendered-string grouping did), and eviction
// finds and reclaims that group instead of leaking it.
func TestAggNaNGroupKeys(t *testing.T) {
	b := bind(t, "SELECT temp, COUNT(*) FROM Sensor [Range 1 Second] GROUP BY temp")
	p, err := Compile("agg", b, "res")
	if err != nil {
		t.Fatal(err)
	}
	nan := math.NaN()
	for i := 1; i <= 5; i++ {
		out, err := p.Push(sensorTuple(stream.Timestamp(i), 1, nan))
		if err != nil {
			t.Fatal(err)
		}
		if n := out[0].MustGet("COUNT(*)").AsInt(); n != int64(i) {
			t.Fatalf("NaN push %d: count = %d, want %d (NaNs must share one group)", i, n, i)
		}
	}
	// Far in the future the NaN group fully expired; only the trigger's
	// group may remain.
	if _, err := p.Push(sensorTuple(10000, 1, 7)); err != nil {
		t.Fatal(err)
	}
	if n := len(p.agg.groups); n != 1 {
		t.Errorf("%d groups retained after NaN eviction, want 1 (leak)", n)
	}
}

// TestHashKeyCompositeInjective pins the composite-key encoding: string
// values containing the old separator byte must not let distinct keys
// collide in the spill-over suffix.
func TestHashKeyCompositeInjective(t *testing.T) {
	mk := func(vals ...stream.Value) hashKey {
		var k hashKey
		for i, v := range vals {
			k = k.with(i, v)
		}
		return k
	}
	a := mk(stream.Int(1), stream.Int(2), stream.String_("a\x1fsb"), stream.String_(""))
	b := mk(stream.Int(1), stream.Int(2), stream.String_("a"), stream.String_("b\x1fs"))
	if a == b {
		t.Error("distinct composite keys collided through the string suffix")
	}
	if x, y := mk(stream.Int(1), stream.Int(2), stream.String_("q"), stream.Int(3)),
		mk(stream.Int(1), stream.Int(2), stream.String_("q"), stream.Int(3)); x != y {
		t.Error("equal composites must produce equal keys")
	}
}
