package merge

import (
	"fmt"
	"math/rand"
	"testing"

	"cosmos/internal/containment"
	"cosmos/internal/querygen"
	"cosmos/internal/sensordata"
	"cosmos/internal/stream"
)

// TestOptimizerChurnInvariants drives a random add/remove sequence
// through the optimiser and checks its invariants after every step:
//
//   - every member is contained in its group's representative
//     (Theorems 1–2),
//   - stats are consistent (query count, group count, grouping ratio),
//   - every live tag resolves via GroupOf to a group listing it.
func TestOptimizerChurnInvariants(t *testing.T) {
	reg := stream.NewRegistry()
	if err := sensordata.RegisterAll(reg); err != nil {
		t.Fatal(err)
	}
	gen, err := querygen.New(querygen.Config{Dist: querygen.Zipf15, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	o := NewOptimizer(Options{Mode: ExactUnion, MaxCandidates: 16})
	r := rand.New(rand.NewSource(77))
	live := map[string]bool{}
	next := 0

	validate := func(step int) {
		st := o.Stats()
		if st.Queries != len(live) {
			t.Fatalf("step %d: stats.Queries=%d live=%d", step, st.Queries, len(live))
		}
		groups := o.Groups()
		if st.Groups != len(groups) {
			t.Fatalf("step %d: stats.Groups=%d groups=%d", step, st.Groups, len(groups))
		}
		seen := map[string]bool{}
		for _, g := range groups {
			if len(g.Members) == 0 {
				t.Fatalf("step %d: empty group survived", step)
			}
			for _, m := range g.Members {
				if seen[m.Tag] {
					t.Fatalf("step %d: tag %s in two groups", step, m.Tag)
				}
				seen[m.Tag] = true
				if !live[m.Tag] {
					t.Fatalf("step %d: removed tag %s still grouped", step, m.Tag)
				}
				if !containment.Contains(m.Query, g.Rep) {
					t.Fatalf("step %d: member %s not contained in rep:\n member %s\n rep %s",
						step, m.Tag, m.Query.Raw, g.Rep.SynthesizeCQL())
				}
				if got, ok := o.GroupOf(m.Tag); !ok || got != g {
					t.Fatalf("step %d: GroupOf(%s) inconsistent", step, m.Tag)
				}
			}
		}
		if len(seen) != len(live) {
			t.Fatalf("step %d: grouped %d of %d live tags", step, len(seen), len(live))
		}
	}

	for step := 0; step < 400; step++ {
		if len(live) == 0 || r.Float64() < 0.7 {
			tag := fmt.Sprintf("q%04d", next)
			next++
			b, err := gen.BindBatch(1, reg)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := o.Add(tag, b[0]); err != nil {
				t.Fatal(err)
			}
			live[tag] = true
		} else {
			// Remove a random live tag.
			k := r.Intn(len(live))
			var victim string
			for tag := range live {
				if k == 0 {
					victim = tag
					break
				}
				k--
			}
			if _, ok := o.Remove(victim); !ok {
				t.Fatalf("step %d: remove of live tag %s failed", step, victim)
			}
			delete(live, victim)
		}
		if step%20 == 0 {
			validate(step)
		}
	}
	validate(400)
}
