package errdrop_test

import (
	"testing"

	"cosmos/internal/analysis/errdrop"
	"cosmos/internal/analysis/framework"
)

// TestErrdrop runs the analyzer over the seeded-violation package and
// the all-consumed package (the false-positive regression guard).
func TestErrdrop(t *testing.T) {
	framework.RunTest(t, ".", errdrop.Analyzer,
		"./testdata/src/drop", "./testdata/src/dropneg")
}
