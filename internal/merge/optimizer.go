package merge

import (
	"fmt"
	"sort"

	"cosmos/internal/cost"
	"cosmos/internal/cql"
)

// Member is one query inside a group.
type Member struct {
	// Tag is the caller-assigned identifier (query id).
	Tag string
	// Query is the bound member query.
	Query *cql.Bound
	// Bps is the cached C(q) estimate.
	Bps float64
}

// Group is a set of overlapping queries represented by one merged query
// (paper §4: "each processor maintains a number of query groups such that
// queries inside each group have overlapping results and it is beneficial
// to rewrite these queries into one query").
type Group struct {
	// ID is a process-unique group identifier.
	ID int
	// Signature is the shared group signature of every member.
	Signature string
	// Members lists the group's queries.
	Members []*Member
	// Rep is the representative query; equal to the sole member's query
	// for singleton groups.
	Rep *cql.Bound
	// RepBps is the cached C(rep).
	RepBps float64
}

// MemberBps returns Σ C(qi) over the members.
func (g *Group) MemberBps() float64 {
	sum := 0.0
	for _, m := range g.Members {
		sum += m.Bps
	}
	return sum
}

// Benefit returns the group's estimated saving, Σ C(qi) − C(rep).
func (g *Group) Benefit() float64 { return g.MemberBps() - g.RepBps }

// Options configures the grouping optimiser.
type Options struct {
	// Mode selects predicate loosening (see Mode).
	Mode Mode
	// MaxCandidates bounds how many candidate groups (sharing the
	// signature) are evaluated per insertion, most recently touched
	// first; 0 means unlimited. This is the knob that keeps insertion
	// cost bounded at web scale.
	MaxCandidates int
	// MinBenefit is the minimum estimated saving (bytes/sec) required to
	// join an existing group instead of opening a new one.
	MinBenefit float64
}

// Optimizer implements the paper's incremental greedy algorithm: "each
// new query is assigned to the query group that can achieve the maximum
// benefit".
type Optimizer struct {
	opts   Options
	est    cost.Estimator
	nextID int
	// groups indexes candidate groups by signature, most recently
	// touched last.
	groups map[string][]*Group
	byTag  map[string]*Group
	nq     int
}

// NewOptimizer builds an optimiser with the given options.
func NewOptimizer(opts Options) *Optimizer {
	return &Optimizer{
		opts:   opts,
		groups: map[string][]*Group{},
		byTag:  map[string]*Group{},
	}
}

// Placement describes where Add put a query.
type Placement struct {
	Group *Group
	// Created reports whether a new group was opened.
	Created bool
	// Benefit is the estimated marginal saving of the chosen merge
	// (zero when a new group was opened).
	Benefit float64
}

// Add inserts a query with a caller-chosen unique tag, returning its
// placement. The query joins the compatible group with the maximum
// positive marginal benefit
//
//	[C(rep_old) + C(q)] − C(rep_new)
//
// or opens a new group when no merge clears MinBenefit.
func (o *Optimizer) Add(tag string, q *cql.Bound) (Placement, error) {
	if _, dup := o.byTag[tag]; dup {
		return Placement{}, fmt.Errorf("merge: duplicate query tag %q", tag)
	}
	sig := q.GroupSignature()
	qBps := o.est.Bps(q)

	candidates := o.groups[sig]
	// Scan most recently touched first.
	var best *Group
	var bestRep *cql.Bound
	bestBenefit := o.opts.MinBenefit
	scanned := 0
	for i := len(candidates) - 1; i >= 0; i-- {
		if o.opts.MaxCandidates > 0 && scanned >= o.opts.MaxCandidates {
			break
		}
		scanned++
		g := candidates[i]
		rep, err := Queries(g.Rep, q, o.opts.Mode)
		if err != nil {
			continue // incompatible (e.g. differing aggregates)
		}
		benefit := g.RepBps + qBps - o.est.Bps(rep)
		if benefit > bestBenefit {
			best, bestRep, bestBenefit = g, rep, benefit
		}
	}

	m := &Member{Tag: tag, Query: q, Bps: qBps}
	if best == nil {
		g := &Group{
			ID:        o.nextID,
			Signature: sig,
			Members:   []*Member{m},
			Rep:       q,
			RepBps:    qBps,
		}
		o.nextID++
		o.groups[sig] = append(o.groups[sig], g)
		o.byTag[tag] = g
		o.nq++
		return Placement{Group: g, Created: true}, nil
	}

	best.Members = append(best.Members, m)
	best.Rep = bestRep
	best.RepBps = o.est.Bps(bestRep)
	o.touch(best)
	o.byTag[tag] = best
	o.nq++
	return Placement{Group: best, Benefit: bestBenefit}, nil
}

// touch moves a group to the most-recently-used end of its bucket.
func (o *Optimizer) touch(g *Group) {
	bucket := o.groups[g.Signature]
	for i, other := range bucket {
		if other == g {
			copy(bucket[i:], bucket[i+1:])
			bucket[len(bucket)-1] = g
			return
		}
	}
}

// Remove deletes a query by tag, rebuilding its group's representative
// from the remaining members. Empty groups are dropped. It returns the
// affected group (nil if it became empty) and whether the tag existed.
func (o *Optimizer) Remove(tag string) (*Group, bool) {
	g, ok := o.byTag[tag]
	if !ok {
		return nil, false
	}
	delete(o.byTag, tag)
	o.nq--
	for i, m := range g.Members {
		if m.Tag == tag {
			g.Members = append(g.Members[:i], g.Members[i+1:]...)
			break
		}
	}
	if len(g.Members) == 0 {
		bucket := o.groups[g.Signature]
		for i, other := range bucket {
			if other == g {
				o.groups[g.Signature] = append(bucket[:i], bucket[i+1:]...)
				break
			}
		}
		if len(o.groups[g.Signature]) == 0 {
			delete(o.groups, g.Signature)
		}
		return nil, true
	}
	// Rebuild the representative from scratch.
	rep := g.Members[0].Query
	for _, m := range g.Members[1:] {
		merged, err := Queries(rep, m.Query, o.opts.Mode)
		if err != nil {
			// Members were group-compatible on insertion; a failure here
			// indicates aggregate members that were identical — keep the
			// first member's query as representative.
			continue
		}
		rep = merged
	}
	g.Rep = rep
	g.RepBps = o.est.Bps(rep)
	return g, true
}

// GroupOf returns the group currently holding a tag.
func (o *Optimizer) GroupOf(tag string) (*Group, bool) {
	g, ok := o.byTag[tag]
	return g, ok
}

// Groups returns all groups, ordered by ID.
func (o *Optimizer) Groups() []*Group {
	var out []*Group
	for _, bucket := range o.groups {
		out = append(out, bucket...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Stats summarises the optimiser state for the paper's metrics.
type Stats struct {
	Queries int
	Groups  int
	// MemberBps is Σ C(qi) over all queries (the unmerged delivery rate).
	MemberBps float64
	// RepBps is Σ C(rep) over all groups (the merged delivery rate).
	RepBps float64
}

// GroupingRatio is #groups / #queries — Figure 4(b).
func (s Stats) GroupingRatio() float64 {
	if s.Queries == 0 {
		return 0
	}
	return float64(s.Groups) / float64(s.Queries)
}

// RateBenefitRatio is the rate-only benefit 1 − ΣC(rep)/ΣC(q); the
// network-weighted benefit ratio of Figure 4(a) is computed by the sim
// package, which multiplies rates by dissemination path costs.
func (s Stats) RateBenefitRatio() float64 {
	if s.MemberBps == 0 {
		return 0
	}
	return 1 - s.RepBps/s.MemberBps
}

// Stats computes current optimiser statistics.
func (o *Optimizer) Stats() Stats {
	st := Stats{Queries: o.nq}
	for _, bucket := range o.groups {
		for _, g := range bucket {
			st.Groups++
			st.MemberBps += g.MemberBps()
			st.RepBps += g.RepBps
		}
	}
	return st
}
