package obs

import (
	"encoding/json"
	"expvar"
	"net/http"
	"net/http/pprof"
	"sort"
)

// Handler builds the metrics HTTP surface served by cosmosd's
// -metrics-addr listener:
//
//	GET /metrics        expvar-style JSON: one top-level key per
//	                    registered var, values produced fresh per
//	                    request by the supplied closures
//	GET /metrics/<name> just that var
//	GET /debug/vars     the stock expvar handler
//	GET /debug/pprof/*  the stock net/http/pprof handlers
//
// vars maps names to snapshot closures returning json-encodable
// values. Closures keep obs decoupled from the packages whose state is
// exposed (core imports obs, never the reverse).
func Handler(vars map[string]func() any) http.Handler {
	mux := http.NewServeMux()
	names := make([]string, 0, len(vars))
	for name := range vars {
		names = append(names, name)
	}
	sort.Strings(names)

	writeJSON := func(w http.ResponseWriter, v any) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(v); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	}

	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		out := make(map[string]any, len(names))
		for _, name := range names {
			out[name] = vars[name]()
		}
		writeJSON(w, out)
	})
	for _, name := range names {
		fn := vars[name]
		mux.HandleFunc("/metrics/"+name, func(w http.ResponseWriter, r *http.Request) {
			writeJSON(w, fn())
		})
	}

	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
