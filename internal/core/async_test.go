package core

import (
	"fmt"
	"testing"

	"cosmos/internal/stream"
)

// driveWorkload builds a system, submits a mixed query set, publishes an
// interleaved auction trace, and returns the per-query result sequences
// (rendered). Sharded systems are quiesced before reading results.
func driveWorkload(t *testing.T, opts Options) map[string][]string {
	t.Helper()
	sys, openPort, closedPort := newAuctionSystem(t, opts)
	results := map[string][]string{}
	queries := []struct {
		text string
		node int
	}{
		{"SELECT itemID, start_price FROM OpenAuction [Now] WHERE start_price > 50", 3},
		{"SELECT itemID FROM OpenAuction [Now] WHERE start_price > 20", 4},
		{"SELECT O.itemID FROM OpenAuction [Range 1 Hour] O, ClosedAuction [Now] C WHERE O.itemID = C.itemID", 5},
		{"SELECT sellerID, COUNT(*) FROM OpenAuction [Range 1 Hour] GROUP BY sellerID", 6},
		{"SELECT itemID, buyerID FROM ClosedAuction [Now]", 7},
	}
	for _, q := range queries {
		q := q
		h, err := sys.Submit(q.text, q.node, nil)
		if err != nil {
			t.Fatalf("submit %q: %v", q.text, err)
		}
		tag := h.Tag
		h.onResult = func(tp stream.Tuple) {
			results[tag] = append(results[tag], tp.String())
		}
	}
	info := auctionInfos()
	for i := 0; i < 120; i++ {
		ts := stream.Timestamp(i * 500)
		if err := openPort.Publish(openT(info[0], ts, int64(i%40), int64(i%5), float64(i%120))); err != nil {
			t.Fatal(err)
		}
		if i%3 == 0 {
			if err := closedPort.Publish(closedT(info[1], ts+1, int64(i%40), int64(i%7))); err != nil {
				t.Fatal(err)
			}
		}
	}
	sys.Quiesce()
	return results
}

// TestShardedSystemMatchesSynchronous is the system-level differential:
// processors running the sharded execution runtime with batched ingest
// must deliver, per query, exactly the result sequence of the
// synchronous (deterministic) system.
func TestShardedSystemMatchesSynchronous(t *testing.T) {
	base := Options{Nodes: 16, Seed: 3, CheckpointEvery: 11}
	want := driveWorkload(t, base)
	nonEmpty := 0
	for _, seq := range want {
		if len(seq) > 0 {
			nonEmpty++
		}
	}
	if nonEmpty < 4 {
		t.Fatalf("only %d queries produced results; workload too weak", nonEmpty)
	}
	for _, cfg := range []struct {
		workers, batch int
	}{{1, 1}, {2, 8}, {4, 32}} {
		t.Run(fmt.Sprintf("workers%d-batch%d", cfg.workers, cfg.batch), func(t *testing.T) {
			opts := base
			opts.ExecWorkers = cfg.workers
			opts.IngestBatch = cfg.batch
			got := driveWorkload(t, opts)
			if len(got) != len(want) {
				t.Fatalf("%d queries delivered, want %d", len(got), len(want))
			}
			for tag, ref := range want {
				g := got[tag]
				if len(g) != len(ref) {
					t.Fatalf("query %s: %d results, want %d", tag, len(g), len(ref))
				}
				for i := range g {
					if g[i] != ref[i] {
						t.Fatalf("query %s result %d differs:\nsharded: %s\nsync:    %s", tag, i, g[i], ref[i])
					}
				}
			}
		})
	}
}

// TestProcessorSurfacesPlanErrors: plan failures (schema drift between
// delivery and plan) land in the processor's error counter and the
// OnPlanError callback instead of vanishing.
func TestProcessorSurfacesPlanErrors(t *testing.T) {
	var cbProc int
	var cbPlan string
	var cbErr error
	calls := 0
	opts := Options{Nodes: 8, Seed: 5, OnPlanError: func(proc int, plan string, err error) {
		cbProc, cbPlan, cbErr = proc, plan, err
		calls++
	}}
	sys, _, _ := newAuctionSystem(t, opts)
	if _, err := sys.Submit("SELECT itemID FROM OpenAuction [Now] WHERE start_price > 0", 3, nil); err != nil {
		t.Fatal(err)
	}
	proc := sys.procs[0]
	if proc.PlanErrors() != 0 {
		t.Fatalf("fresh processor reports %d plan errors", proc.PlanErrors())
	}
	// A tuple under the OpenAuction name that lacks the attributes the
	// plan needs: the runtime reports the plan failure.
	drifted := stream.MustSchema("OpenAuction", stream.Field{Name: "bogus", Kind: stream.KindInt})
	proc.consume(stream.MustTuple(drifted, 1, stream.Int(1)))
	if proc.PlanErrors() != 1 {
		t.Fatalf("plan errors = %d, want 1", proc.PlanErrors())
	}
	if calls != 1 || cbProc != proc.ID || cbPlan == "" || cbErr == nil {
		t.Fatalf("callback = (%d calls, proc %d, plan %q, err %v)", calls, cbProc, cbPlan, cbErr)
	}
}
