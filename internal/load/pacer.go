package load

import (
	"time"

	"cosmos/internal/obs"
)

// Pacer is an open-loop arrival scheduler: tick i is due at
// base + i*interval, fixed when the run starts, regardless of how long
// earlier ticks took. That is the property that makes the harness safe
// against coordinated omission (the Hazelcast Jet evaluation's rule):
// a closed-loop driver that waits for the system slows its own offered
// rate when the system stalls, so the stall never appears in the
// latency distribution. Here a stalled publisher simply falls behind
// its fixed schedule — Tick returns immediately with the intended
// (scheduled) offset, the scheduling lag is recorded, and every tuple
// stamped with the intended offset carries the backlog into the
// end-to-end latency measurement instead of hiding it.
type Pacer struct {
	start    time.Time
	base     time.Time
	interval time.Duration
	n        int64
	shifts   int
	lag      obs.Histogram
}

// NewPacer starts an open-loop schedule offering ratePerSec ticks per
// second from now.
func NewPacer(ratePerSec int) *Pacer {
	if ratePerSec <= 0 {
		ratePerSec = 1
	}
	now := time.Now()
	return &Pacer{
		start:    now,
		base:     now,
		interval: time.Duration(int64(time.Second) / int64(ratePerSec)),
	}
}

// Tick blocks until the next tick's scheduled time and returns that
// tick's intended offset from the run start — the timestamp to stamp
// into the published tuple so delivery latency is measured from when
// the tuple was *supposed* to enter the system. When the caller is
// behind schedule, Tick returns immediately (the arrival stays late,
// it is never rescheduled) and records the scheduling lag; the lag
// histogram is therefore the run's own evidence of whether the offered
// rate was actually held.
func (p *Pacer) Tick() time.Duration {
	due := p.base.Add(time.Duration(p.n) * p.interval)
	p.n++
	lag := time.Since(due)
	if lag < 0 {
		time.Sleep(-lag)
		lag = 0
	}
	p.lag.Observe(int64(lag))
	return due.Sub(p.start)
}

// Shift re-anchors the schedule so the next tick is due now. It exists
// for deliberate control-plane pauses (a failover barrier in the churn
// scenario): the pause is an announced amendment to the schedule, not a
// silent omission, so it is excluded from lag/latency accounting while
// genuine backlog remains visible. The number of shifts is reported.
func (p *Pacer) Shift() {
	p.base = time.Now().Add(-time.Duration(p.n) * p.interval)
	p.shifts++
}

// Ticks returns the number of ticks issued so far.
func (p *Pacer) Ticks() int64 { return p.n }

// Shifts returns how many times the schedule was re-anchored.
func (p *Pacer) Shifts() int { return p.shifts }

// Start returns the run's epoch: intended offsets returned by Tick and
// delivery timestamps are both measured against it.
func (p *Pacer) Start() time.Time { return p.start }

// Elapsed returns the time since the run started.
func (p *Pacer) Elapsed() time.Duration { return time.Since(p.start) }

// Offered returns the scheduled arrival rate in ticks per second.
func (p *Pacer) Offered() float64 { return float64(time.Second) / float64(p.interval) }

// LagSnapshot returns the scheduling-lag histogram: one observation per
// tick, zero when the tick fired on time.
func (p *Pacer) LagSnapshot() obs.HistSnapshot { return p.lag.Snapshot() }
