package cosmos_test

import (
	"context"
	"fmt"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"cosmos"
	"cosmos/internal/core"
	"cosmos/internal/querygen"
	"cosmos/internal/sensordata"
	"cosmos/internal/transport"
)

// The three-way differential workload: a fixed set of sensor streams and
// a seeded random querygen batch, driven identically through every
// Client backend.
const (
	diffStreams = 6
	diffQueries = 12
	diffRounds  = 100
	diffSeed    = 11
)

// diffTuple synthesises round r's reading for one station: deterministic
// values sweeping each attribute's full domain (co-prime strides), so
// every querygen predicate band gets hits regardless of the draw.
func diffTuple(station, r int) cosmos.Tuple {
	k := r + 17*station
	return cosmos.MustTuple(sensordata.Schema(station),
		cosmos.Timestamp(r)*cosmos.Timestamp(30*cosmos.Second),
		cosmos.Int(int64(station)),
		cosmos.Float(sensordata.TempMin+float64(k*7%65)),
		cosmos.Float(float64(k*13%100)),
		cosmos.Float(float64(k*131%1200)),
		cosmos.Float(float64(k*5%35)),
	)
}

func diffWorkloadQueries(t *testing.T) []string {
	t.Helper()
	gen, err := querygen.New(querygen.Config{
		Dist:    querygen.Uniform,
		Streams: diffStreams,
		Seed:    diffSeed,
		// Few, wide predicate templates keep the workload selective but
		// not starved against the sensor generator's value ranges.
		PredicateTemplates: 8,
		AggFraction:        0.35,
		JoinFraction:       0.25,
	})
	if err != nil {
		t.Fatal(err)
	}
	return gen.Batch(diffQueries)
}

// driveClient runs the differential workload through one Client: it
// registers the streams (all at one node, so publish order reaches the
// processors identically on every transport), submits the queries,
// settles the control plane, publishes round-robin from one goroutine,
// quiesces, and collects each subscription's full result sequence.
func driveClient(t *testing.T, client cosmos.Client, queries []string) [][]string {
	t.Helper()
	sources := make([]cosmos.Source, diffStreams)
	for i := 0; i < diffStreams; i++ {
		src, err := client.RegisterStream(sensordata.Info(i), 1)
		if err != nil {
			t.Fatal(err)
		}
		sources[i] = src
	}
	subs := make([]*cosmos.Subscription, len(queries))
	for i, q := range queries {
		sub, err := client.Submit(context.Background(), q, 3+i%8)
		if err != nil {
			t.Fatalf("submit %q: %v", q, err)
		}
		subs[i] = sub
	}
	// Subscription propagation is asynchronous on the concurrent
	// transports; settle it before traffic starts.
	if err := client.Quiesce(); err != nil {
		t.Fatal(err)
	}
	for round := 0; round < diffRounds; round++ {
		for i, src := range sources {
			if err := src.Publish(diffTuple(i, round)); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := client.Quiesce(); err != nil {
		t.Fatal(err)
	}
	out := make([][]string, len(subs))
	for i, sub := range subs {
		if err := sub.Cancel(); err != nil {
			t.Fatalf("cancel %s: %v", sub.Tag(), err)
		}
		for tp := range sub.Results() {
			out[i] = append(out[i], tp.String())
		}
		if err := sub.Err(); err != nil {
			t.Fatalf("subscription %d ended abnormally: %v", i, err)
		}
	}
	if err := client.Close(); err != nil {
		t.Fatal(err)
	}
	return out
}

func compareBackendSequences(t *testing.T, got, want [][]string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%d queries delivered, want %d", len(got), len(want))
	}
	for q := range want {
		if len(got[q]) != len(want[q]) {
			t.Fatalf("query %d: %d results, want %d", q, len(got[q]), len(want[q]))
		}
		for i := range want[q] {
			if got[q][i] != want[q][i] {
				t.Fatalf("query %d result %d differs:\ngot:  %s\nwant: %s",
					q, i, got[q][i], want[q][i])
			}
		}
	}
}

func diffOptions() core.Options {
	return core.Options{
		Nodes: 16, Seed: 3,
		ProcessorNodes: []int{4, 9},
		Placement:      core.RoundRobin,
	}
}

// startDiffServer hosts a LiveSystem behind a transport.Server on an
// ephemeral port — the cosmosd assembly — and returns its address.
func startDiffServer(t *testing.T, workers, batch int) string {
	t.Helper()
	opts := diffOptions()
	opts.ExecWorkers = workers
	opts.IngestBatch = batch
	return startServerWith(t, opts)
}

// startServerWith is startDiffServer for arbitrary system options.
func startServerWith(t *testing.T, opts core.Options) string {
	t.Helper()
	ls, err := core.NewLiveSystem(opts)
	if err != nil {
		t.Fatal(err)
	}
	srv := transport.NewServer(ls.System, transport.WithSystemClose(ls.Close))
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		if err := srv.Serve(ln); err != nil {
			t.Errorf("serve: %v", err)
		}
	}()
	t.Cleanup(func() {
		if err := srv.Shutdown(); err != nil {
			t.Errorf("shutdown: %v", err)
		}
		<-done
	})
	return ln.Addr().String()
}

// TestClientThreeWayDifferential is the keystone of the unified session
// API: the same seeded querygen workload, driven through the
// sync-embedded, live-embedded, and TCP-remote Client backends, must
// yield identical per-query result sequences — at workers 1, 2 and 4 on
// both live paths, race-clean.
func TestClientThreeWayDifferential(t *testing.T) {
	queries := diffWorkloadQueries(t)

	// Reference: the deterministic synchronous system.
	sys, err := core.NewSystem(diffOptions())
	if err != nil {
		t.Fatal(err)
	}
	want := driveClient(t, cosmos.Embed(sys), queries)
	nonEmpty := 0
	for _, seq := range want {
		if len(seq) > 0 {
			nonEmpty++
		}
	}
	if nonEmpty < 4 {
		t.Fatalf("only %d of %d queries produced results; workload too weak", nonEmpty, len(want))
	}

	for _, cfg := range []struct{ workers, batch int }{{1, 1}, {2, 8}, {4, 32}} {
		cfg := cfg
		t.Run(fmt.Sprintf("live-workers%d", cfg.workers), func(t *testing.T) {
			opts := diffOptions()
			opts.ExecWorkers = cfg.workers
			opts.IngestBatch = cfg.batch
			ls, err := core.NewLiveSystem(opts)
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(ls.Close)
			got := driveClient(t, cosmos.EmbedLive(ls), queries)
			compareBackendSequences(t, got, want)
		})
		t.Run(fmt.Sprintf("remote-workers%d", cfg.workers), func(t *testing.T) {
			addr := startDiffServer(t, cfg.workers, cfg.batch)
			client, err := cosmos.Dial(addr)
			if err != nil {
				t.Fatal(err)
			}
			got := driveClient(t, client, queries)
			compareBackendSequences(t, got, want)
		})
	}
}

// TestClientStatsAndCatalogAcrossBackends checks the satellite contract:
// Stats reports the same shape — per-link counters included — on the
// simulated, live, and remote backends, with the link counters
// reconciling against the aggregate, and Catalog lists the registered
// streams everywhere.
func TestClientStatsAndCatalogAcrossBackends(t *testing.T) {
	queries := diffWorkloadQueries(t)
	run := func(t *testing.T, client cosmos.Client) {
		_ = driveClient(t, client, queries[:4])
	}
	check := func(t *testing.T, client cosmos.Client) {
		infos, err := client.Catalog()
		if err != nil {
			t.Fatal(err)
		}
		found := 0
		for _, info := range infos {
			if len(info.Schema.Stream) >= 6 && info.Schema.Stream[:6] == "Sensor" {
				found++
			}
		}
		if found != diffStreams {
			t.Errorf("catalog lists %d sensor streams, want %d", found, diffStreams)
		}
		st, err := client.Stats()
		if err != nil {
			t.Fatal(err)
		}
		if st.Processors != 2 || len(st.LoadPerProc) != 2 {
			t.Errorf("stats = %+v", st)
		}
		if len(st.Links) == 0 {
			t.Fatal("no per-link stats reported")
		}
		var linkData int64
		for _, ls := range st.Links {
			linkData += ls.DataBytes
		}
		if linkData == 0 || linkData != st.TotalDataBytes {
			t.Errorf("link data sum %d vs TotalDataBytes %d", linkData, st.TotalDataBytes)
		}
	}
	t.Run("sim", func(t *testing.T) {
		sys, err := core.NewSystem(diffOptions())
		if err != nil {
			t.Fatal(err)
		}
		client := cosmos.Embed(sys)
		run(t, client)
		check(t, cosmos.Embed(sys)) // a fresh session sees the same deployment
	})
	t.Run("live", func(t *testing.T) {
		opts := diffOptions()
		opts.ExecWorkers = 2
		ls, err := core.NewLiveSystem(opts)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(ls.Close)
		run(t, cosmos.EmbedLive(ls))
		check(t, cosmos.EmbedLive(ls))
	})
	t.Run("remote", func(t *testing.T) {
		addr := startDiffServer(t, 2, 8)
		client, err := cosmos.Dial(addr)
		if err != nil {
			t.Fatal(err)
		}
		run(t, client)
		c2, err := cosmos.Dial(addr)
		if err != nil {
			t.Fatal(err)
		}
		defer c2.Close()
		check(t, c2)
	})
}

// TestSubscriptionContextAndCancelSemantics covers the session contract
// on the live backend: context cancellation tears the query down, the
// Results channel drains then closes with a nil Err, Cancel is
// idempotent, and cancelling after the client closed is a clean no-op.
func TestSubscriptionContextAndCancelSemantics(t *testing.T) {
	opts := core.Options{Nodes: 16, Seed: 1, ExecWorkers: 2}
	ls, err := core.NewLiveSystem(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(ls.Close)
	client := cosmos.EmbedLive(ls)
	schema := cosmos.MustSchema("Trades",
		cosmos.Field{Name: "symbol", Kind: cosmos.KindString},
		cosmos.Field{Name: "price", Kind: cosmos.KindFloat},
	)
	src, err := client.RegisterStream(&cosmos.StreamInfo{Schema: schema, Rate: 100}, 0)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	sub, err := client.Submit(ctx, "SELECT symbol, price FROM Trades [Now] WHERE price > 100", 7)
	if err != nil {
		t.Fatal(err)
	}
	if err := client.Quiesce(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := src.Publish(cosmos.MustTuple(schema, cosmos.Timestamp(i),
			cosmos.String("ACME"), cosmos.Float(150))); err != nil {
			t.Fatal(err)
		}
	}
	if err := client.Quiesce(); err != nil {
		t.Fatal(err)
	}
	cancel() // context teardown
	var got int
	deadline := time.After(5 * time.Second)
	for open := true; open; {
		select {
		case _, ok := <-sub.Results():
			if !ok {
				open = false
				break
			}
			got++
		case <-deadline:
			t.Fatal("Results did not close after context cancellation")
		}
	}
	if got != 10 {
		t.Errorf("drained %d results, want 10 (buffered results must survive cancellation)", got)
	}
	if err := sub.Err(); err != nil {
		t.Errorf("Err after clean context cancel = %v", err)
	}
	if err := sub.Cancel(); err != nil {
		t.Errorf("idempotent Cancel = %v", err)
	}
	// Cancel after client Close is a clean no-op too.
	sub2, err := client.Submit(context.Background(),
		"SELECT symbol FROM Trades [Now]", 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := client.Close(); err != nil {
		t.Fatal(err)
	}
	for range sub2.Results() {
	}
	if err := sub2.Cancel(); err != nil {
		t.Errorf("Cancel after client Close = %v", err)
	}
	if ls.Queries() != 0 {
		t.Errorf("%d queries left in the system after teardown", ls.Queries())
	}
}

// TestSubmitFunc exercises the callback adapter over the channel session.
func TestSubmitFunc(t *testing.T) {
	sys, err := core.NewSystem(core.Options{Nodes: 16, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	client := cosmos.Embed(sys)
	defer client.Close()
	schema := cosmos.MustSchema("Trades",
		cosmos.Field{Name: "symbol", Kind: cosmos.KindString},
		cosmos.Field{Name: "price", Kind: cosmos.KindFloat},
	)
	src, err := client.RegisterStream(&cosmos.StreamInfo{Schema: schema, Rate: 100}, 0)
	if err != nil {
		t.Fatal(err)
	}
	var n atomic.Int64
	sub, err := cosmos.SubmitFunc(context.Background(), client,
		"SELECT symbol FROM Trades [Now] WHERE price > 100", 7,
		func(cosmos.Tuple) { n.Add(1) })
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := src.Publish(cosmos.MustTuple(schema, cosmos.Timestamp(i),
			cosmos.String("ACME"), cosmos.Float(150))); err != nil {
			t.Fatal(err)
		}
	}
	if err := sub.Cancel(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for n.Load() != 5 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if n.Load() != 5 {
		t.Errorf("callback saw %d results, want 5", n.Load())
	}
}

// TestEmbedSyncConcurrentUse: the synchronous backend serialises session
// operations, so context-driven teardown firing mid-publish must not
// race the single-threaded routing cascade (run with -race in CI).
func TestEmbedSyncConcurrentUse(t *testing.T) {
	sys, err := core.NewSystem(core.Options{Nodes: 16, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	client := cosmos.Embed(sys)
	defer client.Close()
	schema := cosmos.MustSchema("Trades",
		cosmos.Field{Name: "symbol", Kind: cosmos.KindString},
		cosmos.Field{Name: "price", Kind: cosmos.KindFloat},
	)
	src, err := client.RegisterStream(&cosmos.StreamInfo{Schema: schema, Rate: 100}, 0)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	subs := make([]*cosmos.Subscription, 4)
	for i := range subs {
		if subs[i], err = client.Submit(ctx, "SELECT symbol FROM Trades [Now] WHERE price > 50", 3+i); err != nil {
			t.Fatal(err)
		}
	}
	go func() { // fire the teardown while the publish loop runs
		time.Sleep(time.Millisecond)
		cancel()
	}()
	for i := 0; i < 5000; i++ {
		if err := src.Publish(cosmos.MustTuple(schema, cosmos.Timestamp(i),
			cosmos.String("ACME"), cosmos.Float(float64(i%100)))); err != nil {
			t.Fatal(err)
		}
	}
	for _, sub := range subs {
		for range sub.Results() {
		}
		if err := sub.Err(); err != nil {
			t.Errorf("subscription ended with %v", err)
		}
	}
	if sys.Queries() != 0 {
		t.Errorf("%d queries left after context teardown", sys.Queries())
	}
}
