// Package guard seeds one violation per lockguard rule; the analyzer
// must catch every one (see the // want expectations).
package guard

import "sync"

type counter struct {
	mu sync.Mutex
	// n is guarded by mu.
	n int

	rw sync.RWMutex
	// m is guarded by rw.
	m map[string]int
}

func readNoLock(c *counter) int {
	return c.n // want "read of n \\(guarded by mu\\) without c.mu.Lock or RLock"
}

func writeNoLock(c *counter) {
	c.n = 1 // want "write to n \\(guarded by mu\\) without c.mu"
}

func incNoLock(c *counter) {
	c.n++ // want "write to n \\(guarded by mu\\) without c.mu"
}

func writeUnderRLock(c *counter) {
	c.rw.RLock()
	defer c.rw.RUnlock()
	c.m["x"] = 1 // want "write to m \\(guarded by rw\\) holding only RLock on c.rw"
}

func wrongMutex(c *counter) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.m["x"] // want "read of m \\(guarded by rw\\) without c.rw.Lock or RLock"
}

func wrongBase(a, b *counter) int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return b.n // want "read of n \\(guarded by mu\\) without b.mu.Lock or RLock"
}

type bad struct {
	// x is guarded by nosuch.
	x int // want "guarded-by comment names unknown or non-mutex sibling \"nosuch\""

	flag bool
	// y is guarded by flag.
	y int // want "guarded-by comment names unknown or non-mutex sibling \"flag\""
}

func ignoredWithReason(c *counter) int {
	// Snapshot read during shutdown; no concurrent writers remain.
	//lint:ignore lockguard read races are benign after Close drains the workers
	return c.n
}
