package profile

import (
	"math/rand"
	"testing"

	"cosmos/internal/predicate"
	"cosmos/internal/stream"
)

// genProfile builds a random single-stream profile over R's attributes
// with small integer constants, for exhaustive-domain property checks.
func genProfile(r *rand.Rand) *Profile {
	p := New()
	var filter predicate.DNF
	for d := 0; d <= r.Intn(2); d++ {
		var cj predicate.Conj
		for c := 0; c <= r.Intn(2); c++ {
			attr := []string{"A", "B"}[r.Intn(2)]
			op := []predicate.Op{predicate.EQ, predicate.LT, predicate.LE, predicate.GT, predicate.GE}[r.Intn(5)]
			cj = append(cj, predicate.C(attr, op, stream.Int(int64(r.Intn(5)))))
		}
		filter = append(filter, cj)
	}
	var attrs []string
	switch r.Intn(3) {
	case 0:
		attrs = nil // all
	case 1:
		attrs = []string{"A"}
	default:
		attrs = []string{"A", "B"}
	}
	p.AddStream("R", attrs, filter)
	return p
}

// TestMergeCoversBothInputsProperty: after p.Merge(q), every tuple
// covered by either original profile is covered by the merged one.
func TestMergeCoversBothInputsProperty(t *testing.T) {
	r := rand.New(rand.NewSource(41))
	for trial := 0; trial < 500; trial++ {
		p1 := genProfile(r)
		p2 := genProfile(r)
		merged := p1.Clone()
		merged.Merge(p2)
		for a := int64(0); a < 5; a++ {
			for b := int64(0); b < 5; b++ {
				tp := rTuple(t, 0, a, b, 0)
				c1, _ := p1.Covers(tp)
				c2, _ := p2.Covers(tp)
				cm, err := merged.Covers(tp)
				if err != nil {
					t.Fatal(err)
				}
				if (c1 || c2) && !cm {
					t.Fatalf("merge lost coverage at (%d,%d):\n p1=%s\n p2=%s\n merged=%s",
						a, b, p1, p2, merged)
				}
			}
		}
		// Projection union: the merged attrs must include both sides'.
		for _, src := range []*Profile{p1, p2} {
			srcAttrs := src.AttrsFor("R")
			mAttrs := merged.AttrsFor("R")
			if mAttrs == nil {
				continue // all attributes
			}
			if srcAttrs == nil {
				t.Fatalf("merged narrowed an all-attrs side: %s + %s -> %s", p1, p2, merged)
			}
			set := map[string]bool{}
			for _, a := range mAttrs {
				set[a] = true
			}
			for _, a := range srcAttrs {
				if !set[a] {
					t.Fatalf("merged lost attr %s: %s + %s -> %s", a, p1, p2, merged)
				}
			}
		}
	}
}

// TestCoversProfileSoundnessProperty: whenever CoversProfile(p, q)
// reports true, p covers every tuple q covers on the sample domain.
func TestCoversProfileSoundnessProperty(t *testing.T) {
	r := rand.New(rand.NewSource(43))
	positives := 0
	for trial := 0; trial < 2000; trial++ {
		p := genProfile(r)
		q := genProfile(r)
		if !p.CoversProfile(q) {
			continue
		}
		positives++
		for a := int64(0); a < 5; a++ {
			for b := int64(0); b < 5; b++ {
				tp := rTuple(t, 0, a, b, 0)
				cq, _ := q.Covers(tp)
				cp, _ := p.Covers(tp)
				if cq && !cp {
					t.Fatalf("covering violated at (%d,%d):\n p=%s\n q=%s", a, b, p, q)
				}
			}
		}
	}
	if positives < 20 {
		t.Fatalf("only %d positive covering pairs; test too weak", positives)
	}
}
