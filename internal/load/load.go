// Package load is the sustained-load harness: it drives a live COSMOS
// deployment — embedded over LiveNet or through the TCP transport — at
// a held offered rate and reports what actually happened as a
// BENCH_<area>.json trajectory point.
//
// # Measurement contract
//
// The driver is open-loop (Pacer): arrival times are fixed when the run
// starts, so a stalling system makes the driver fall behind its
// schedule rather than silently slowing the offered rate. Every tuple
// is stamped with its *intended* publish offset; delivery latency is
// measured against that stamp, and the pacer separately records the
// scheduling lag of every tick. Together these make coordinated
// omission visible instead of flattering: a stalled consumer shows up
// as an achieved-rate shortfall plus lag plus inflated latency tails,
// never as an improved distribution (pacer_test.go pins this).
//
// Latency quantiles come from the same obs log-linear histograms the
// live metrics surface uses (≤1/32 relative bucket error, lock-free on
// the record path); loss and duplication are tracked per subscription
// by carried sequence numbers (Recorder); allocations per result come
// from runtime.MemStats deltas around the run.
//
// # Scenarios
//
// Four scenarios ship as both short race-clean Go tests and full-scale
// cmd/cosmosbench runs:
//
//   - transport: the PR-7 sustained result-path workload — one daemon,
//     one TCP subscriber connection fanning out to N subscriptions —
//     rebased from scripts/bench_transport.sh's bespoke measurement.
//   - auction: the paper's running example scaled up — open/close
//     auction streams through the merging optimiser (q1/q2 share a
//     representative), millions of events at full scale.
//   - churn: a WAN sensor fleet — seeded subscription churn in the
//     style of merge/churn_test.go, a source joining mid-run, and a
//     processor leaving through the ft checkpoint/failover machinery.
//   - clients: hundreds of dialling TCP clients subscribing and
//     cancelling against one daemon.
//
// Every scenario asserts zero lost and zero duplicated results against
// its sequence ledger before reporting.
package load

import (
	"fmt"
	"sort"
	"time"
)

// Config parameterises one load run. Zero fields take scenario
// defaults (Defaults).
type Config struct {
	// Scenario selects the workload: transport, auction, churn, clients.
	Scenario string
	// Rate is the offered event rate (tuples/s across all sources).
	Rate int
	// Duration bounds the publishing phase; Events (exact event count)
	// wins when both are set.
	Duration time.Duration
	Events   int
	// Subs is the subscription count (transport: subscriptions on the
	// one connection; auction: q1/q2 pairs; churn: max live subs).
	Subs int
	// Clients is the dialling-connection count (clients scenario).
	Clients int
	// Streams is the source-stream count (churn, clients).
	Streams int
	// Workers is the per-processor execution worker-pool size.
	Workers int
	// Seed drives topology, placement and churn randomness.
	Seed int64
	// WireVersion caps the negotiated wire format (0 = newest).
	WireVersion int
	// Addr dials an external daemon instead of assembling one
	// in-process (transport and clients scenarios). Loss accounting
	// still works — it rides the carried sequence numbers — but
	// allocs/result and stage quantiles then describe only this
	// process.
	Addr string
	// DrainTimeout bounds the post-publish wait for deliveries to
	// settle (default 2 minutes). Undelivered results at the deadline
	// are charged as lost.
	DrainTimeout time.Duration
	// Out writes the report as BENCH_<area>.json to this path; empty
	// disables writing.
	Out string
}

// scenarios maps scenario name to runner. Each runner owns its
// deployment assembly, workload shape and accounting.
var scenarios = map[string]func(Config) (*Report, error){
	"transport": runTransport,
	"auction":   runAuction,
	"churn":     runChurn,
	"clients":   runClients,
}

// Scenarios lists the registered scenario names, sorted.
func Scenarios() []string {
	names := make([]string, 0, len(scenarios))
	for name := range scenarios {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Run executes one scenario and returns its report, writing it to
// cfg.Out when set. The report is returned even when the run's
// accounting found loss or duplication — callers decide how strict to
// be (tests and cosmosbench -strict fail on either).
func Run(cfg Config) (*Report, error) {
	runner, ok := scenarios[cfg.Scenario]
	if !ok {
		return nil, fmt.Errorf("load: unknown scenario %q (have %v)", cfg.Scenario, Scenarios())
	}
	cfg = cfg.withDefaults()
	rep, err := runner(cfg)
	if err != nil {
		return nil, err
	}
	rep.Scenario = cfg.Scenario
	if rep.Area == "" {
		rep.Area = cfg.Scenario
	}
	if cfg.Out != "" {
		if err := WriteReport(cfg.Out, rep); err != nil {
			return rep, err
		}
	}
	return rep, nil
}

func (c Config) withDefaults() Config {
	if c.Rate <= 0 {
		c.Rate = 5000
	}
	if c.Duration <= 0 && c.Events <= 0 {
		c.Duration = time.Second
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 2 * time.Minute
	}
	switch c.Scenario {
	case "transport":
		if c.Subs <= 0 {
			c.Subs = 16
		}
		if c.Workers <= 0 {
			c.Workers = 2
		}
		if c.Seed == 0 {
			c.Seed = 3
		}
	case "auction":
		if c.Subs <= 0 {
			c.Subs = 4 // q1/q2 pairs
		}
		if c.Workers <= 0 {
			c.Workers = 2
		}
		if c.Seed == 0 {
			c.Seed = 7
		}
	case "churn":
		if c.Subs <= 0 {
			c.Subs = 24
		}
		if c.Streams <= 0 {
			c.Streams = 8
		}
		if c.Workers <= 0 {
			c.Workers = 2
		}
		if c.Seed == 0 {
			c.Seed = 77 // the merge/churn_test.go seed
		}
	case "clients":
		if c.Clients <= 0 {
			c.Clients = 256
		}
		if c.Streams <= 0 {
			c.Streams = 4
		}
		if c.Workers <= 0 {
			c.Workers = 2
		}
		if c.Seed == 0 {
			c.Seed = 5
		}
	}
	return c
}

// targetEvents resolves the publishing budget: an exact event count
// when set, otherwise rate × duration.
func (c Config) targetEvents() int {
	if c.Events > 0 {
		return c.Events
	}
	n := int(float64(c.Rate) * c.Duration.Seconds())
	if n < 1 {
		n = 1
	}
	return n
}
