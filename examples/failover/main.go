// Failover: the query-layer fault tolerance of paper §2 in action. A
// window join runs on processor A with periodic checkpoints; A crashes;
// processor B adopts the group, restores the checkpointed window state,
// re-advertises the same result stream, and the user keeps receiving
// results — including joins against tuples buffered BEFORE the crash.
//
//	go run ./examples/failover
package main

import (
	"fmt"
	"log"

	"cosmos"
)

func main() {
	sys, err := cosmos.NewSystem(cosmos.Options{
		Nodes:           24,
		Seed:            9,
		Processors:      2,
		Placement:       cosmos.RoundRobin,
		CheckpointEvery: 4, // snapshot plan state every 4 tuples
	})
	if err != nil {
		log.Fatal(err)
	}

	orders := cosmos.MustSchema("Orders",
		cosmos.Field{Name: "orderID", Kind: cosmos.KindInt},
		cosmos.Field{Name: "amount", Kind: cosmos.KindFloat},
	)
	shipments := cosmos.MustSchema("Shipments",
		cosmos.Field{Name: "orderID", Kind: cosmos.KindInt},
		cosmos.Field{Name: "carrier", Kind: cosmos.KindString},
	)
	orderSrc, err := sys.RegisterStream(&cosmos.StreamInfo{Schema: orders, Rate: 10}, 1)
	if err != nil {
		log.Fatal(err)
	}
	shipSrc, err := sys.RegisterStream(&cosmos.StreamInfo{Schema: shipments, Rate: 10}, 2)
	if err != nil {
		log.Fatal(err)
	}

	// Orders shipped within one hour of being placed.
	h, err := sys.Submit(
		`SELECT O.orderID, O.amount, S.carrier
		 FROM Orders [Range 1 Hour] O, Shipments [Now] S
		 WHERE O.orderID = S.orderID`,
		7, func(t cosmos.Tuple) {
			fmt.Printf("  matched: order %v (%v) shipped via %v\n",
				t.MustGet("Orders.orderID"), t.MustGet("Orders.amount"),
				t.MustGet("Shipments.carrier"))
		})
	if err != nil {
		log.Fatal(err)
	}
	owner := h.Processor()
	fmt.Printf("join running on processor %d (node %d)\n", owner.ID, owner.Node)

	min := cosmos.Timestamp(cosmos.Minute)
	placeOrder := func(ts cosmos.Timestamp, id int64, amount float64) {
		if err := orderSrc.Publish(cosmos.MustTuple(orders, ts,
			cosmos.Int(id), cosmos.Float(amount))); err != nil {
			log.Fatal(err)
		}
	}
	ship := func(ts cosmos.Timestamp, id int64, carrier string) {
		if err := shipSrc.Publish(cosmos.MustTuple(shipments, ts,
			cosmos.Int(id), cosmos.String(carrier))); err != nil {
			log.Fatal(err)
		}
	}

	fmt.Println("orders placed (buffered in the join window, checkpointed):")
	for i := int64(1); i <= 8; i++ {
		placeOrder(cosmos.Timestamp(i)*min, i, float64(i)*10)
	}
	ship(9*min, 1, "DHL")

	fmt.Printf("\n!! processor %d crashes\n", owner.ID)
	if err := sys.FailProcessor(owner.ID); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("group adopted by processor %d; result stream unchanged\n\n", h.Processor().ID)

	fmt.Println("shipments arriving AFTER the crash still match pre-crash orders:")
	ship(10*min, 2, "UPS")
	ship(12*min, 5, "FedEx")
	// An order placed after failover matches too.
	placeOrder(15*min, 9, 90)
	ship(16*min, 9, "DHL")

	fmt.Printf("\nprocessor loads: p0=%d p1=%d (alive: %v, %v)\n",
		sys.Processors()[0].Load(), sys.Processors()[1].Load(),
		sys.Processors()[0].Alive(), sys.Processors()[1].Alive())
}
