package predicate

import (
	"fmt"
	"math/rand"
	"testing"

	"cosmos/internal/stream"
)

func cmpSchema() *stream.Schema {
	return stream.MustSchema("S",
		stream.Field{Name: "i1", Kind: stream.KindInt},
		stream.Field{Name: "i2", Kind: stream.KindInt},
		stream.Field{Name: "f1", Kind: stream.KindFloat},
		stream.Field{Name: "f2", Kind: stream.KindFloat},
		stream.Field{Name: "t1", Kind: stream.KindTime},
		stream.Field{Name: "s1", Kind: stream.KindString},
		stream.Field{Name: "s2", Kind: stream.KindString},
		stream.Field{Name: "b1", Kind: stream.KindBool},
		stream.Field{Name: "b2", Kind: stream.KindBool},
	)
}

// TestCompiledAttrCmpDifferential cross-checks every compiled
// specialisation against the interpreted AttrCmp.Eval over randomized
// tuples, including ints widened into float fields (the dynamic branch).
func TestCompiledAttrCmpDifferential(t *testing.T) {
	s := cmpSchema()
	r := rand.New(rand.NewSource(42))
	pairs := [][2]string{
		{"i1", "i2"}, {"i1", "t1"}, {"i1", "f1"}, {"f1", "f2"},
		{"t1", "f2"}, {"s1", "s2"}, {"b1", "b2"},
	}
	ops := []Op{EQ, NE, LT, LE, GT, GE}
	for trial := 0; trial < 300; trial++ {
		small := r.Int63n(4)
		vals := []stream.Value{
			stream.Int(small), stream.Int(r.Int63n(4)),
			// Float fields sometimes hold widened ints.
			stream.Float(float64(r.Int63n(4))), stream.Int(r.Int63n(4)),
			stream.Time(stream.Timestamp(r.Int63n(4))),
			stream.String_(fmt.Sprint(r.Int63n(3))), stream.String_(fmt.Sprint(r.Int63n(3))),
			stream.Bool(r.Intn(2) == 0), stream.Bool(r.Intn(2) == 0),
		}
		tp := stream.MustTuple(s, stream.Timestamp(trial), vals...)
		for _, pr := range pairs {
			for _, op := range ops {
				cmp := AttrCmp{Left: pr[0], Op: op, Right: pr[1]}
				cc, err := CompileAttrCmps([]AttrCmp{cmp}, s)
				if err != nil {
					t.Fatalf("%s: %v", cmp, err)
				}
				want, err := cmp.Eval(tp)
				if err != nil {
					t.Fatalf("%s: interpreted eval errored on compilable cmp: %v", cmp, err)
				}
				if got := cc.EvalValues(tp.Values); got != want {
					t.Fatalf("%s on %s: compiled %v, interpreted %v", cmp, tp, got, want)
				}
			}
		}
	}
}

// TestCompileAttrCmpsRejects checks that compilation fails exactly where
// the interpreted evaluator could error at runtime.
func TestCompileAttrCmpsRejects(t *testing.T) {
	s := cmpSchema()
	bad := []AttrCmp{
		{Left: "missing", Op: EQ, Right: "i1"},
		{Left: "i1", Op: EQ, Right: "missing"},
		{Left: "i1", Op: EQ, Right: "s1"}, // numeric vs string
		{Left: "s1", Op: LT, Right: "b1"}, // string vs bool
		{Left: "b1", Op: GE, Right: "f1"}, // bool vs numeric
	}
	for _, cmp := range bad {
		if _, err := CompileAttrCmps([]AttrCmp{cmp}, s); err == nil {
			t.Errorf("%s: should not compile", cmp)
		}
	}
	if _, err := CompileAttrCmps(nil, nil); err == nil {
		t.Error("nil schema should not compile")
	}
}

// TestCompileAttrCmpsConjunction checks conjunction semantics and the
// trivially-true empty set.
func TestCompileAttrCmpsConjunction(t *testing.T) {
	s := cmpSchema()
	cc, err := CompileAttrCmps([]AttrCmp{
		{Left: "i1", Op: EQ, Right: "i2"},
		{Left: "f1", Op: GE, Right: "f2"},
	}, s)
	if err != nil {
		t.Fatal(err)
	}
	mk := func(i1, i2 int64, f1, f2 float64) []stream.Value {
		return []stream.Value{
			stream.Int(i1), stream.Int(i2), stream.Float(f1), stream.Float(f2),
			stream.Time(0), stream.String_(""), stream.String_(""),
			stream.Bool(false), stream.Bool(false),
		}
	}
	if !cc.EvalValues(mk(3, 3, 2.5, 1.5)) {
		t.Error("both conjuncts hold; want true")
	}
	if cc.EvalValues(mk(3, 4, 2.5, 1.5)) {
		t.Error("first conjunct fails; want false")
	}
	if cc.EvalValues(mk(3, 3, 0.5, 1.5)) {
		t.Error("second conjunct fails; want false")
	}
	empty, err := CompileAttrCmps(nil, s)
	if err != nil {
		t.Fatal(err)
	}
	if !empty.EvalValues(mk(1, 2, 3, 4)) {
		t.Error("empty conjunction is TRUE")
	}
}
