package cosmos

import (
	"context"
	"fmt"

	"cosmos/internal/transport"
)

// Dial returns a Client session over TCP to a cosmosd daemon. The
// daemon hosts the deployment (a LiveSystem by default, so the
// direct-publish data path carries results onto the wire with no
// stabilisation barrier); this client is one connection's view of it.
// Close ends this connection's subscriptions and releases the
// connection — the daemon keeps running.
func Dial(addr string) (Client, error) {
	tc, err := transport.Dial(addr)
	if err != nil {
		return nil, err
	}
	return &remoteClient{tc: tc}, nil
}

// remoteClient implements Client over the internal/transport protocol.
// Subscription state lives in the transport client (which ends every
// subscription on connection loss or Close); this layer adapts its
// callback pairs onto Subscription sessions.
type remoteClient struct {
	tc *transport.Client
}

// remoteSource publishes one registered stream through the connection.
type remoteSource struct {
	tc     *transport.Client
	schema *Schema
}

func (s remoteSource) Stream() string        { return s.schema.Stream }
func (s remoteSource) Schema() *Schema       { return s.schema }
func (s remoteSource) Publish(t Tuple) error { return s.tc.Publish(t) }

func (c *remoteClient) RegisterStream(info *StreamInfo, node int) (Source, error) {
	if err := c.tc.Register(info, node); err != nil {
		return nil, err
	}
	return remoteSource{tc: c.tc, schema: info.Schema}, nil
}

func (c *remoteClient) Source(name string) (Source, error) {
	// One catalog round trip resolves existence and the schema at once,
	// matching the embedded backends' prompt unknown-stream error.
	infos, err := c.tc.Catalog()
	if err != nil {
		return nil, err
	}
	for _, info := range infos {
		if info.Schema.Stream == name {
			return remoteSource{tc: c.tc, schema: info.Schema}, nil
		}
	}
	return nil, fmt.Errorf("cosmos: stream %q not registered", name)
}

func (c *remoteClient) Submit(ctx context.Context, cql string, userNode int) (*Subscription, error) {
	sub := newSubscription()
	// The callbacks run on the connection's read loop: push never
	// blocks (elastic buffer), so a slow consumer cannot stall other
	// subscriptions sharing the connection.
	tag, err := c.tc.Submit(cql, userNode, sub.push, sub.end)
	if err != nil {
		sub.end(err)
		return nil, err
	}
	sub.setTag(tag)
	sub.cancel = func() error { return c.tc.Cancel(tag) }
	sub.watchContext(ctx)
	return sub, nil
}

func (c *remoteClient) Catalog() ([]*StreamInfo, error) { return c.tc.Catalog() }

func (c *remoteClient) Stats() (SystemStats, error) { return c.tc.Stats() }

func (c *remoteClient) Quiesce() error { return c.tc.Quiesce() }

func (c *remoteClient) Close() error { return c.tc.Close() }
