package core

import (
	"fmt"
	"math/rand"
	"sync"

	"cosmos/internal/cbn"
	"cosmos/internal/cql"
	"cosmos/internal/merge"
	"cosmos/internal/overlay"
	"cosmos/internal/stream"
	"cosmos/internal/topology"
)

// Options configures a System.
type Options struct {
	// Nodes is the overlay size (default 64).
	Nodes int
	// EdgesPerNode is the power-law attachment parameter (default 2).
	EdgesPerNode int
	// Seed drives topology and placement randomness (deterministic).
	Seed int64
	// ProcessorNodes places processors explicitly; when empty,
	// Processors (default 1) nodes are drawn at random.
	ProcessorNodes []int
	Processors     int
	// Mode selects representative-predicate composition.
	Mode merge.Mode
	// MaxCandidates bounds the merging optimiser's candidate scan.
	MaxCandidates int
	// Placement selects the query-distribution policy.
	Placement PlacementPolicy
	// Tree overrides topology generation with an explicit dissemination
	// tree (Nodes/EdgesPerNode are then ignored). Used by experiments
	// that need an exact overlay shape, e.g. Figure 3.
	Tree *overlay.Tree
	// DisableMerging turns the query-merging optimiser off: every query
	// forms its own group (the "Non-Share" baseline of Figure 3).
	DisableMerging bool
	// CheckpointEvery captures plan state every N consumed tuples per
	// processor for query-layer fault tolerance; 0 disables periodic
	// checkpoints (FailProcessor then restarts plans cold).
	CheckpointEvery int
	// ExecWorkers sets each processor's execution-runtime worker-pool
	// size. 0 (default) runs plans synchronously on the data-delivery
	// goroutine — deterministic, as the synchronous simulated network
	// expects. > 0 runs the sharded runtime: delivery enqueues into a
	// micro-batching ingest queue, plans execute on the pool, and
	// results buffer until System.Quiesce flushes them into the data
	// layer. Per-plan (hence per-query) result order is preserved;
	// cross-query interleaving is not.
	ExecWorkers int
	// IngestBatch bounds the ingest micro-batch when ExecWorkers > 0
	// (default 16).
	IngestBatch int
	// OnPlanError observes plan execution failures (schema drift between
	// the data layer and an installed plan); may be nil. Each processor
	// also counts them (Processor.PlanErrors).
	OnPlanError func(procID int, planID string, err error)
}

func (o Options) withDefaults() Options {
	if o.Nodes == 0 {
		o.Nodes = 64
	}
	if o.EdgesPerNode == 0 {
		o.EdgesPerNode = 2
	}
	if o.Processors == 0 {
		o.Processors = 1
	}
	if o.MaxCandidates == 0 {
		o.MaxCandidates = 64
	}
	return o
}

// System is an in-process COSMOS deployment.
type System struct {
	mu   sync.Mutex
	opts Options
	reg  *stream.Registry
	topo *topology.Graph
	tree *overlay.Tree
	net  *cbn.SimNet
	rng  *rand.Rand

	procs   []*Processor
	sources map[string]*SourcePort
	queries map[string]*QueryHandle
	nextQID int
}

// NewSystem builds the overlay (power-law topology, MST dissemination
// tree), the CBN, and the processors.
func NewSystem(opts Options) (*System, error) {
	opts = opts.withDefaults()
	var tree *overlay.Tree
	var g *topology.Graph // nil when an explicit tree is supplied
	if opts.Tree != nil {
		tree = opts.Tree
		opts.Nodes = tree.NumNodes()
	} else {
		var err error
		g, err = topology.GeneratePowerLaw(opts.Nodes, opts.EdgesPerNode, opts.Seed)
		if err != nil {
			return nil, err
		}
		tree, err = overlay.MST(g, 0)
		if err != nil {
			return nil, err
		}
	}
	s := &System{
		opts:    opts,
		reg:     stream.NewRegistry(),
		topo:    g,
		tree:    tree,
		net:     cbn.NewSimNetFromTree(tree),
		rng:     rand.New(rand.NewSource(opts.Seed + 17)),
		sources: map[string]*SourcePort{},
		queries: map[string]*QueryHandle{},
	}
	nodes := opts.ProcessorNodes
	if len(nodes) == 0 {
		for i := 0; i < opts.Processors; i++ {
			nodes = append(nodes, s.rng.Intn(opts.Nodes))
		}
	}
	for i, node := range nodes {
		if node < 0 || node >= opts.Nodes {
			return nil, fmt.Errorf("core: processor node %d out of range", node)
		}
		p, err := newProcessor(s, i, node)
		if err != nil {
			return nil, err
		}
		s.procs = append(s.procs, p)
	}
	return s, nil
}

// Catalog exposes the flooded schema registry.
func (s *System) Catalog() *stream.Registry { return s.reg }

// Tree exposes the dissemination tree (for inspection and examples).
func (s *System) Tree() *overlay.Tree { return s.tree }

// Processors lists the system's processors.
func (s *System) Processors() []*Processor { return s.procs }

// SourcePort publishes one source stream into the data layer.
type SourcePort struct {
	Node   int
	info   *stream.Info
	client *cbn.SimClient
}

// RegisterStream attaches a data source at a node: the schema is flooded
// into the catalog and the stream advertised through the CBN.
func (s *System) RegisterStream(info *stream.Info, node int) (*SourcePort, error) {
	if node < 0 || node >= s.opts.Nodes {
		return nil, fmt.Errorf("core: source node %d out of range", node)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	name := info.Schema.Stream
	if _, dup := s.sources[name]; dup {
		return nil, fmt.Errorf("core: stream %q already registered", name)
	}
	if err := s.reg.Register(info); err != nil {
		return nil, err
	}
	port := &SourcePort{Node: node, info: info, client: s.net.AttachClient(node)}
	port.client.Advertise(name)
	s.sources[name] = port
	return port, nil
}

// Publish injects one tuple of the port's stream.
func (p *SourcePort) Publish(t stream.Tuple) error {
	if t.Schema == nil || t.Schema.Stream != p.info.Schema.Stream {
		return fmt.Errorf("core: tuple is not of stream %q", p.info.Schema.Stream)
	}
	return p.client.Publish(t)
}

// Submit registers a continuous query on behalf of a user attached at
// userNode. Results arrive on onResult with the query's own output
// schema (stream name = the returned handle's tag). The query is routed
// to a processor by the distribution policy, merged into a query group
// when beneficial, and its results re-tightened from the group's
// representative stream.
func (s *System) Submit(text string, userNode int, onResult func(stream.Tuple)) (*QueryHandle, error) {
	if userNode < 0 || userNode >= s.opts.Nodes {
		return nil, fmt.Errorf("core: user node %d out of range", userNode)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	bound, err := cql.AnalyzeString(text, s.reg)
	if err != nil {
		return nil, err
	}
	tag := fmt.Sprintf("q%05d", s.nextQID)
	s.nextQID++

	proc := s.place(bound, userNode)
	if proc == nil {
		return nil, fmt.Errorf("core: no processor alive")
	}
	h := &QueryHandle{
		Tag:      tag,
		UserNode: userNode,
		sys:      s,
		proc:     proc,
		bound:    bound,
		onResult: onResult,
		client:   s.net.AttachClient(userNode),
	}
	h.client.OnTuple = h.deliver
	s.queries[tag] = h

	gs, err := proc.accept(tag, bound)
	if err != nil {
		delete(s.queries, tag)
		return nil, err
	}
	if err := s.refreshGroupLocked(proc, gs); err != nil {
		return nil, err
	}
	return h, nil
}

// refreshGroupLocked rebuilds delivery state for every member of a group
// after its representative (or result schema) changed.
func (s *System) refreshGroupLocked(proc *Processor, gs *groupState) error {
	singleton := len(gs.memberTags) == 1
	for _, tag := range gs.memberTags {
		h, ok := s.queries[tag]
		if !ok {
			continue
		}
		if err := h.refresh(gs.rep, gs.resultStream, singleton); err != nil {
			return fmt.Errorf("core: refreshing %s: %w", tag, err)
		}
	}
	return nil
}

// Cancel removes a query: the processor's group shrinks (or disappears)
// and the remaining members are refreshed.
func (s *System) Cancel(h *QueryHandle) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.queries[h.Tag]; !ok {
		return fmt.Errorf("core: unknown query %s", h.Tag)
	}
	delete(s.queries, h.Tag)
	h.detach()
	gs, err := h.proc.remove(h.Tag)
	if err != nil {
		return err
	}
	if gs != nil {
		return s.refreshGroupLocked(h.proc, gs)
	}
	return nil
}

// Queries returns the number of live queries.
func (s *System) Queries() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.queries)
}

// Quiesce drains every sharded processor — ingest queues, worker pools,
// and buffered results — until the system is stable, publishing results
// into the data layer from the calling goroutine (results may feed other
// processors, so the drain loops until a full pass publishes nothing).
// Call it when no source is concurrently publishing. A no-op for
// synchronous systems (ExecWorkers == 0).
func (s *System) Quiesce() {
	for {
		progress := false
		for _, p := range s.procs {
			if p.quiesce() {
				progress = true
			}
		}
		if !progress {
			return
		}
	}
}

// NetStats exposes per-link CBN counters.
func (s *System) NetStats() []*cbn.LinkStats { return s.net.Stats() }

// TotalDataBytes sums tuple traffic over all overlay links.
func (s *System) TotalDataBytes() int64 { return s.net.TotalDataBytes() }
