package cql

import (
	"fmt"
	"strconv"
	"strings"

	"cosmos/internal/predicate"
	"cosmos/internal/stream"
)

// Clone returns a deep copy of the bound query. Schemas and Infos are
// shared (they are immutable catalog records); predicate structures and
// slices are copied.
func (b *Bound) Clone() *Bound {
	out := &Bound{
		Raw:     b.Raw,
		From:    append([]StreamRef(nil), b.From...),
		Schemas: map[string]*stream.Schema{},
		Infos:   map[string]*stream.Info{},
		Sel:     map[string]predicate.DNF{},
		Windows: map[string]stream.Duration{},
	}
	for k, v := range b.Schemas {
		out.Schemas[k] = v
	}
	for k, v := range b.Infos {
		out.Infos[k] = v
	}
	for k, v := range b.Sel {
		out.Sel[k] = v.Clone()
	}
	for k, v := range b.Windows {
		out.Windows[k] = v
	}
	out.SelectCols = append([]ColRef(nil), b.SelectCols...)
	out.OutNames = append([]string(nil), b.OutNames...)
	out.Aggs = append([]AggSpec(nil), b.Aggs...)
	out.GroupBy = append([]ColRef(nil), b.GroupBy...)
	out.Residual = b.Residual.Clone()
	out.Joins = append([]predicate.AttrCmp(nil), b.Joins...)
	out.OutSchema = b.OutSchema
	out.IncludeInputTs = b.IncludeInputTs
	return out
}

// RebuildOutSchema recomputes OutSchema after SelectCols/Aggs mutation —
// used by the merge package when composing representative queries.
func (b *Bound) RebuildOutSchema() error { return b.buildOutSchema() }

// SynthesizeCQL renders the bound query back into CQL text. The output is
// parseable by this package for the supported subset and is what a query
// wrapper would hand to an underlying SPE (paper §2: per-SPE query
// wrappers translate COSMOS queries).
func (b *Bound) SynthesizeCQL() string {
	var sb strings.Builder
	sb.WriteString("SELECT ")
	first := true
	writeItem := func(s string) {
		if !first {
			sb.WriteString(", ")
		}
		first = false
		sb.WriteString(s)
	}
	for i, c := range b.SelectCols {
		item := c.String()
		if b.OutNames != nil && b.OutNames[i] != item {
			item += " AS " + b.OutNames[i]
		}
		writeItem(item)
	}
	for _, a := range b.Aggs {
		item := a.String()
		if a.OutName != item {
			item += " AS " + a.OutName
		}
		writeItem(item)
	}
	sb.WriteString(" FROM ")
	for i, ref := range b.From {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(ref.Stream)
		sb.WriteString(" [")
		sb.WriteString(windowString(ref.Window))
		sb.WriteString("]")
		if ref.Alias != ref.Stream {
			sb.WriteString(" " + ref.Alias)
		}
	}

	var conds []string
	for _, j := range b.Joins {
		conds = append(conds, j.String())
	}
	for _, ref := range b.From {
		if sel, ok := b.Sel[ref.Alias]; ok && !sel.IsTrue() && len(sel) > 0 {
			conds = append(conds, sqlDNF(sel, ref.Alias))
		}
	}
	if len(b.Residual) > 0 && !b.Residual.IsTrue() {
		conds = append(conds, sqlDNF(b.Residual, ""))
	}
	if len(conds) > 0 {
		sb.WriteString(" WHERE ")
		sb.WriteString(strings.Join(conds, " AND "))
	}
	if len(b.GroupBy) > 0 {
		sb.WriteString(" GROUP BY ")
		for i, g := range b.GroupBy {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(g.String())
		}
	}
	return sb.String()
}

// sqlDNF renders a DNF as a parenthesised SQL boolean expression. When
// alias is non-empty the constraints use bare attribute names from that
// stream's namespace and are re-qualified.
func sqlDNF(d predicate.DNF, alias string) string {
	disjuncts := make([]string, 0, len(d))
	for _, cj := range d {
		parts := make([]string, 0, len(cj))
		for _, c := range cj {
			parts = append(parts, sqlConstraint(c, alias))
		}
		if len(parts) == 0 {
			parts = append(parts, "1 = 1")
		}
		disjuncts = append(disjuncts, "("+strings.Join(parts, " AND ")+")")
	}
	if len(disjuncts) == 1 {
		return disjuncts[0]
	}
	return "(" + strings.Join(disjuncts, " OR ") + ")"
}

func sqlConstraint(c predicate.Constraint, alias string) string {
	qual := func(a string) string {
		if alias == "" {
			return a
		}
		return alias + "." + a
	}
	term := qual(c.Term.A)
	if c.Term.IsDiff() {
		term += " - " + qual(c.Term.B)
	}
	return fmt.Sprintf("%s %s %s", term, c.Op, sqlLiteral(c.Const))
}

// sqlLiteral renders a value as a CQL literal.
func sqlLiteral(v stream.Value) string {
	switch v.Kind() {
	case stream.KindString:
		return "'" + strings.ReplaceAll(v.AsString(), "'", "''") + "'"
	case stream.KindBool:
		if v.AsBool() {
			return "TRUE"
		}
		return "FALSE"
	case stream.KindFloat:
		s := strconv.FormatFloat(v.AsFloat(), 'f', -1, 64)
		if !strings.Contains(s, ".") {
			s += ".0"
		}
		return s
	default:
		return fmt.Sprintf("%d", v.AsInt())
	}
}
