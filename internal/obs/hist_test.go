package obs

import (
	"math/rand"
	"sort"
	"testing"
)

// Buckets must tile the value space: every value falls in exactly one
// bucket, bucket edges are monotone, and values below histSubCount get
// exact unit buckets.
func TestBucketBoundaries(t *testing.T) {
	// Exact range.
	for v := int64(0); v < histSubCount; v++ {
		if got := bucketIndex(v); got != int(v) {
			t.Fatalf("bucketIndex(%d) = %d, want exact bucket", v, got)
		}
	}
	if got := bucketIndex(-5); got != 0 {
		t.Fatalf("bucketIndex(-5) = %d, want 0", got)
	}
	// Every bucket's lower edge maps back to that bucket, edges are
	// strictly increasing, and the value one below the edge maps to the
	// previous bucket.
	for i := 0; i < histBuckets; i++ {
		lo := BucketLow(i)
		if got := bucketIndex(lo); got != i {
			t.Fatalf("bucketIndex(BucketLow(%d)=%d) = %d", i, lo, got)
		}
		if i > 0 {
			if prev := BucketLow(i - 1); prev >= lo {
				t.Fatalf("edges not increasing: BucketLow(%d)=%d BucketLow(%d)=%d", i-1, prev, i, lo)
			}
			if got := bucketIndex(lo - 1); got != i-1 {
				t.Fatalf("bucketIndex(%d) = %d, want %d", lo-1, got, i-1)
			}
		}
	}
	// Probe values across the magnitude range round-trip within their
	// bucket: BucketLow(idx) ≤ v < BucketLow(idx+1).
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 20000; i++ {
		v := int64(rng.Uint64() >> 1 >> uint(rng.Intn(63)))
		idx := bucketIndex(v)
		if lo := BucketLow(idx); v < lo {
			t.Fatalf("v=%d below its bucket %d edge %d", v, idx, lo)
		}
		if idx+1 < histBuckets {
			if hi := BucketLow(idx + 1); v >= hi {
				t.Fatalf("v=%d at/above next bucket %d edge %d", v, idx+1, hi)
			}
		}
	}
}

// Quantile estimates must stay within the structural relative error
// bound (1/histSubCount per side, so assert a 2/histSubCount envelope
// with +1 absolute slack for unit-width rounding).
func TestQuantileErrorBound(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var h Histogram
	vals := make([]int64, 0, 50000)
	for i := 0; i < 50000; i++ {
		// Log-uniform over ~9 decades — exercises many octaves.
		v := int64(1) << uint(rng.Intn(45))
		v += rng.Int63n(v)
		h.Observe(v)
		vals = append(vals, v)
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	s := h.Snapshot()
	if s.Count != uint64(len(vals)) {
		t.Fatalf("Count = %d, want %d", s.Count, len(vals))
	}
	for _, q := range []float64{0, 0.01, 0.25, 0.5, 0.9, 0.99, 0.999, 0.9999, 1} {
		est := s.Quantile(q)
		rank := int(q * float64(len(vals)-1))
		exact := vals[rank]
		diff := est - exact
		if diff < 0 {
			diff = -diff
		}
		if tol := exact/(histSubCount/2) + 1; diff > tol {
			t.Errorf("q=%v: est %d vs exact %d (diff %d > tol %d)", q, est, exact, diff, tol)
		}
	}
	if got := s.Quantile(1); got != s.Max {
		t.Errorf("Quantile(1) = %d, want exact max %d", got, s.Max)
	}
}

func TestQuantileEmptyAndSingle(t *testing.T) {
	var empty HistSnapshot
	if got := empty.Quantile(0.5); got != 0 {
		t.Fatalf("empty Quantile = %d", got)
	}
	var h Histogram
	h.Observe(17)
	s := h.Snapshot()
	for _, q := range []float64{0, 0.5, 1} {
		if got := s.Quantile(q); got != 17 {
			t.Fatalf("single-value Quantile(%v) = %d, want 17", q, got)
		}
	}
	if s.Mean() != 17 {
		t.Fatalf("Mean = %v", s.Mean())
	}
}

// Merging two snapshots must equal the snapshot of the combined
// observations, bucket by bucket.
func TestMerge(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var a, b, both Histogram
	for i := 0; i < 10000; i++ {
		v := rng.Int63n(1 << 40)
		if i%3 == 0 {
			a.Observe(v)
		} else {
			b.Observe(v)
		}
		both.Observe(v)
	}
	sa := a.Snapshot()
	sa.Merge(b.Snapshot())
	want := both.Snapshot()
	if sa.Count != want.Count || sa.Sum != want.Sum || sa.Max != want.Max {
		t.Fatalf("merged totals %d/%d/%d, want %d/%d/%d",
			sa.Count, sa.Sum, sa.Max, want.Count, want.Sum, want.Max)
	}
	if len(sa.Counts) != len(want.Counts) {
		t.Fatalf("merged %d buckets, want %d", len(sa.Counts), len(want.Counts))
	}
	for i := range sa.Counts {
		if sa.Counts[i] != want.Counts[i] {
			t.Fatalf("bucket %d: merged %d, want %d", i, sa.Counts[i], want.Counts[i])
		}
	}
	// Merging into the smaller side must grow it.
	small := a.Snapshot()
	var tall Histogram
	tall.Observe(1 << 50)
	small.Merge(tall.Snapshot())
	if small.Max != 1<<50 {
		t.Fatalf("Max after growing merge = %d", small.Max)
	}
}

// The record path — Observe, StageStart/StageEnd, TraceMark (off and
// on-but-not-traced) — must not allocate. Run under -race in CI.
func TestRecordPathAllocs(t *testing.T) {
	var h Histogram
	if n := testing.AllocsPerRun(1000, func() { h.Observe(12345) }); n != 0 {
		t.Errorf("Histogram.Observe allocates %v/op", n)
	}
	m := New(Options{SampleEvery: 2}) // sample aggressively: timed path too
	if n := testing.AllocsPerRun(1000, func() {
		start := m.StageStart(StageExec)
		m.StageEnd(StageExec, start)
	}); n != 0 {
		t.Errorf("StageStart/StageEnd allocates %v/op", n)
	}
	if n := testing.AllocsPerRun(1000, func() { m.TraceMark(42, StageRoute) }); n != 0 {
		t.Errorf("TraceMark (tracing off) allocates %v/op", n)
	}
	tm := New(Options{TraceEvery: 1 << 30}) // on, but key 42 never sampled
	if n := testing.AllocsPerRun(1000, func() { tm.TraceMark(42, StageRoute) }); n != 0 {
		t.Errorf("TraceMark (untraced tuple) allocates %v/op", n)
	}
	var nilM *Metrics
	if n := testing.AllocsPerRun(1000, func() {
		nilM.StageEnd(StageExec, nilM.StageStart(StageExec))
		nilM.TraceMark(1, StageExec)
	}); n != 0 {
		t.Errorf("nil Metrics path allocates %v/op", n)
	}
}

// Concurrent observers must lose no counts (exercised under -race).
func TestHistogramConcurrent(t *testing.T) {
	var h Histogram
	const goroutines, per = 8, 5000
	done := make(chan struct{})
	for g := 0; g < goroutines; g++ {
		go func(g int) {
			for i := 0; i < per; i++ {
				h.Observe(int64(g*per + i))
			}
			done <- struct{}{}
		}(g)
	}
	for g := 0; g < goroutines; g++ {
		<-done
	}
	s := h.Snapshot()
	if s.Count != goroutines*per {
		t.Fatalf("Count = %d, want %d", s.Count, goroutines*per)
	}
	var sum uint64
	for _, c := range s.Counts {
		sum += c
	}
	if sum != goroutines*per {
		t.Fatalf("bucket sum = %d, want %d", sum, goroutines*per)
	}
	if s.Max != goroutines*per-1 {
		t.Fatalf("Max = %d, want %d", s.Max, goroutines*per-1)
	}
}
