// Package suppress exercises the lint:ignore machinery; see
// framework_test.go for the expected outcomes (the assertions are
// programmatic because the reasonless case replaces the diagnostic with
// one on the comment's own line, where a want comment cannot live).
package suppress

func badOpen() {}

//lint:ignore decl documented exception for the test
func badIgnored() {}

//lint:ignore decl
func badNoReason() {}

//lint:ignore otherpass reason that names a different analyzer
func badWrongName() {}

//lint:ignore cosmoslint/decl prefixed analyzer names also match
func badPrefixed() {}

func good() {}
