// Package topology generates synthetic wide-area network topologies for
// the CBN simulation, standing in for the BRITE generator used in the
// paper's experiments (§5: "The topology generator BRITE is used to
// generate a power law network topology with 1000 nodes").
//
// Two BRITE modes are implemented:
//
//   - Barabási–Albert preferential attachment (BRITE's power-law "BA"
//     mode, the one the paper uses), and
//   - Waxman random graphs (BRITE's classic alternative), kept for
//     ablations.
//
// Nodes carry coordinates in the unit square; link delays are euclidean
// distances scaled to [MinDelayMs, MaxDelayMs], mimicking geographic
// wide-area latency.
package topology

import (
	"fmt"
	"math"
	"math/rand"
)

// Delay scaling bounds in milliseconds.
const (
	MinDelayMs = 1.0
	MaxDelayMs = 100.0
)

// Node is one router in the topology.
type Node struct {
	ID   int
	X, Y float64
}

// HalfEdge is one directed view of an undirected link.
type HalfEdge struct {
	To    int
	Delay float64 // milliseconds
}

// Graph is an undirected weighted topology.
type Graph struct {
	Nodes []Node
	// Adj[i] lists the links of node i. Both directions are present.
	Adj [][]HalfEdge
	// edges counts undirected links.
	edges int
}

// NumNodes returns the node count.
func (g *Graph) NumNodes() int { return len(g.Nodes) }

// NumEdges returns the undirected link count.
func (g *Graph) NumEdges() int { return g.edges }

// Degree returns the degree of node i.
func (g *Graph) Degree(i int) int { return len(g.Adj[i]) }

// addEdge inserts an undirected link with the geometric delay.
func (g *Graph) addEdge(a, b int) {
	d := delay(g.Nodes[a], g.Nodes[b])
	g.Adj[a] = append(g.Adj[a], HalfEdge{To: b, Delay: d})
	g.Adj[b] = append(g.Adj[b], HalfEdge{To: a, Delay: d})
	g.edges++
}

// hasEdge reports whether a link a—b exists.
func (g *Graph) hasEdge(a, b int) bool {
	for _, e := range g.Adj[a] {
		if e.To == b {
			return true
		}
	}
	return false
}

// DelayBetween returns the direct link delay between adjacent nodes, or
// (0, false) when not adjacent.
func (g *Graph) DelayBetween(a, b int) (float64, bool) {
	for _, e := range g.Adj[a] {
		if e.To == b {
			return e.Delay, true
		}
	}
	return 0, false
}

// delay maps euclidean distance in the unit square onto the delay range.
func delay(a, b Node) float64 {
	dx, dy := a.X-b.X, a.Y-b.Y
	dist := math.Sqrt(dx*dx + dy*dy) // ∈ [0, √2]
	return MinDelayMs + (MaxDelayMs-MinDelayMs)*dist/math.Sqrt2
}

// GeneratePowerLaw builds an n-node Barabási–Albert graph where every new
// node attaches m links preferentially to high-degree nodes, yielding the
// power-law degree distribution BRITE's BA mode produces.
func GeneratePowerLaw(n, m int, seed int64) (*Graph, error) {
	if m < 1 || n < m+1 {
		return nil, fmt.Errorf("topology: need n > m >= 1, got n=%d m=%d", n, m)
	}
	r := rand.New(rand.NewSource(seed))
	g := newRandomNodes(n, r)

	// Seed clique over the first m+1 nodes.
	for i := 0; i <= m; i++ {
		for j := i + 1; j <= m; j++ {
			g.addEdge(i, j)
		}
	}
	// Repeated-nodes list: node i appears degree(i) times, making
	// preferential selection O(1).
	var targets []int
	for i := 0; i <= m; i++ {
		for j := 0; j <= m; j++ {
			if i != j {
				targets = append(targets, i)
			}
		}
	}
	for v := m + 1; v < n; v++ {
		added := 0
		for added < m {
			u := targets[r.Intn(len(targets))]
			if u == v || g.hasEdge(u, v) {
				continue
			}
			g.addEdge(u, v)
			targets = append(targets, u, v)
			added++
		}
	}
	return g, nil
}

// GenerateWaxman builds an n-node Waxman graph: nodes are uniform in the
// unit square and each pair links with probability
// α·exp(−d/(β·L)) where L is the maximum distance. Disconnected
// components are patched by linking each to its geometrically nearest
// already-connected node, so the result is always connected.
func GenerateWaxman(n int, alpha, beta float64, seed int64) (*Graph, error) {
	if n < 2 || alpha <= 0 || beta <= 0 {
		return nil, fmt.Errorf("topology: bad Waxman parameters n=%d α=%f β=%f", n, alpha, beta)
	}
	r := rand.New(rand.NewSource(seed))
	g := newRandomNodes(n, r)
	L := math.Sqrt2
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			dx, dy := g.Nodes[i].X-g.Nodes[j].X, g.Nodes[i].Y-g.Nodes[j].Y
			d := math.Sqrt(dx*dx + dy*dy)
			if r.Float64() < alpha*math.Exp(-d/(beta*L)) {
				g.addEdge(i, j)
			}
		}
	}
	connectComponents(g)
	return g, nil
}

func newRandomNodes(n int, r *rand.Rand) *Graph {
	g := &Graph{
		Nodes: make([]Node, n),
		Adj:   make([][]HalfEdge, n),
	}
	for i := range g.Nodes {
		g.Nodes[i] = Node{ID: i, X: r.Float64(), Y: r.Float64()}
	}
	return g
}

// connectComponents links every disconnected component to the nearest
// node of the growing connected core.
func connectComponents(g *Graph) {
	n := g.NumNodes()
	comp := components(g)
	// Gather one representative set per component; component 0's nodes
	// form the core.
	inCore := make([]bool, n)
	for i := 0; i < n; i++ {
		if comp[i] == comp[0] {
			inCore[i] = true
		}
	}
	for c := 0; ; c++ {
		// Find any node outside the core.
		outside := -1
		for i := 0; i < n; i++ {
			if !inCore[i] {
				outside = i
				break
			}
		}
		if outside < 0 {
			return
		}
		// Link the outside component's closest pair to the core.
		bestOut, bestIn, bestD := -1, -1, math.MaxFloat64
		for i := 0; i < n; i++ {
			if comp[i] != comp[outside] {
				continue
			}
			for j := 0; j < n; j++ {
				if !inCore[j] {
					continue
				}
				dx, dy := g.Nodes[i].X-g.Nodes[j].X, g.Nodes[i].Y-g.Nodes[j].Y
				if d := dx*dx + dy*dy; d < bestD {
					bestOut, bestIn, bestD = i, j, d
				}
			}
		}
		g.addEdge(bestOut, bestIn)
		for i := 0; i < n; i++ {
			if comp[i] == comp[outside] {
				inCore[i] = true
			}
		}
	}
}

// components labels nodes by connected component.
func components(g *Graph) []int {
	n := g.NumNodes()
	comp := make([]int, n)
	for i := range comp {
		comp[i] = -1
	}
	next := 0
	var stack []int
	for i := 0; i < n; i++ {
		if comp[i] >= 0 {
			continue
		}
		comp[i] = next
		stack = append(stack[:0], i)
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, e := range g.Adj[v] {
				if comp[e.To] < 0 {
					comp[e.To] = next
					stack = append(stack, e.To)
				}
			}
		}
		next++
	}
	return comp
}

// Connected reports whether the graph is a single component.
func (g *Graph) Connected() bool {
	if g.NumNodes() == 0 {
		return true
	}
	comp := components(g)
	for _, c := range comp {
		if c != 0 {
			return false
		}
	}
	return true
}

// DegreeHistogram returns counts of nodes per degree.
func (g *Graph) DegreeHistogram() map[int]int {
	h := map[int]int{}
	for i := range g.Nodes {
		h[g.Degree(i)]++
	}
	return h
}

// MaxDegree returns the largest node degree.
func (g *Graph) MaxDegree() int {
	max := 0
	for i := range g.Nodes {
		if d := g.Degree(i); d > max {
			max = d
		}
	}
	return max
}
