package overlay

import (
	"math"
	"math/rand"
	"testing"

	"cosmos/internal/topology"
)

func graph(t *testing.T, n int, seed int64) *topology.Graph {
	t.Helper()
	g, err := topology.GeneratePowerLaw(n, 2, seed)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestDijkstraSmall(t *testing.T) {
	g := graph(t, 50, 1)
	dist, prev := Dijkstra(g, 0)
	if dist[0] != 0 || prev[0] != -1 {
		t.Fatal("source distance must be 0")
	}
	for v := 1; v < g.NumNodes(); v++ {
		if math.IsInf(dist[v], 1) {
			t.Fatalf("node %d unreachable in connected graph", v)
		}
		// Triangle property along the predecessor edge.
		p := prev[v]
		d, ok := g.DelayBetween(p, v)
		if !ok {
			t.Fatalf("prev edge %d-%d missing", p, v)
		}
		if math.Abs(dist[p]+d-dist[v]) > 1e-9 {
			t.Fatalf("dist[%d] inconsistent", v)
		}
	}
}

func TestDijkstraOptimality(t *testing.T) {
	// No edge may offer a shortcut (relaxation fixpoint).
	g := graph(t, 200, 3)
	dist, _ := Dijkstra(g, 5)
	for v := 0; v < g.NumNodes(); v++ {
		for _, e := range g.Adj[v] {
			if dist[v]+e.Delay < dist[e.To]-1e-9 {
				t.Fatalf("edge %d->%d relaxable", v, e.To)
			}
		}
	}
}

func TestMSTSpansAndIsMinimal(t *testing.T) {
	g := graph(t, 300, 2)
	tree, err := MST(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := tree.Validate(); err != nil {
		t.Fatal(err)
	}
	// MST weight must not exceed SPT weight (sum of link delays).
	spt, err := SPT(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	mstW, sptW := 0.0, 0.0
	for v := 0; v < g.NumNodes(); v++ {
		mstW += tree.LinkDelay[v]
		sptW += spt.LinkDelay[v]
	}
	if mstW > sptW+1e-9 {
		t.Errorf("MST weight %f exceeds SPT weight %f", mstW, sptW)
	}
}

// TestMSTCutProperty: for a random cut, the lightest crossing edge must
// be in the MST (classic MST characterisation, spot-checked).
func TestMSTCutProperty(t *testing.T) {
	g := graph(t, 60, 9)
	tree, err := MST(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	inMST := func(a, b int) bool {
		return tree.Parent[a] == b || tree.Parent[b] == a
	}
	r := rand.New(rand.NewSource(4))
	for trial := 0; trial < 50; trial++ {
		// Random bipartition.
		side := make([]bool, g.NumNodes())
		for i := range side {
			side[i] = r.Intn(2) == 0
		}
		bestA, bestB, bestD := -1, -1, math.Inf(1)
		unique := true
		for a := 0; a < g.NumNodes(); a++ {
			for _, e := range g.Adj[a] {
				if a < e.To && side[a] != side[e.To] {
					switch {
					case e.Delay < bestD-1e-12:
						bestA, bestB, bestD = a, e.To, e.Delay
						unique = true
					case math.Abs(e.Delay-bestD) <= 1e-12:
						unique = false
					}
				}
			}
		}
		if bestA < 0 || !unique {
			continue
		}
		if !inMST(bestA, bestB) {
			t.Fatalf("lightest cut edge %d-%d not in MST", bestA, bestB)
		}
	}
}

func TestTreePathsAndDescendants(t *testing.T) {
	g := graph(t, 100, 5)
	tree, err := MST(g, 7)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < g.NumNodes(); v++ {
		path := tree.PathToRoot(v)
		if path[len(path)-1] != 7 {
			t.Fatalf("path from %d does not end at root", v)
		}
		if tree.Depth(v) != len(path)-1 {
			t.Fatalf("depth mismatch at %d", v)
		}
		if !tree.IsDescendant(7, v) {
			t.Fatalf("everything descends from the root")
		}
	}
	// Subtree nodes of root = all nodes.
	if len(tree.SubtreeNodes(7)) != g.NumNodes() {
		t.Error("root subtree must span the tree")
	}
}

func TestEdgeFlows(t *testing.T) {
	// Tiny handmade tree: 0 root, children 1,2; 2 has child 3.
	tree := &Tree{
		Root:      0,
		Parent:    []int{-1, 0, 0, 2},
		Children:  [][]int{{1, 2}, {}, {3}, {}},
		LinkDelay: []float64{0, 10, 5, 2},
	}
	if err := tree.Validate(); err != nil {
		t.Fatal(err)
	}
	rates := []float64{0, 100, 50, 25}
	flows := tree.EdgeFlows(rates)
	if flows[1] != 100 {
		t.Errorf("flow[1] = %f", flows[1])
	}
	if flows[3] != 25 {
		t.Errorf("flow[3] = %f", flows[3])
	}
	if flows[2] != 75 { // 50 own + 25 child
		t.Errorf("flow[2] = %f", flows[2])
	}
	if flows[0] != 0 {
		t.Errorf("root has no uplink, flow = %f", flows[0])
	}
	// Cost: 10*100 + 5*75 + 2*25 = 1425.
	if c := tree.TotalCost(DelayBpsCost, rates, 0, 0); c != 1425 {
		t.Errorf("cost = %f", c)
	}
}

func TestTotalCostDegreePenalty(t *testing.T) {
	tree := &Tree{
		Root:      0,
		Parent:    []int{-1, 0, 0, 0},
		Children:  [][]int{{1, 2, 3}, {}, {}, {}},
		LinkDelay: []float64{0, 1, 1, 1},
	}
	rates := []float64{0, 1, 1, 1}
	base := tree.TotalCost(DelayBpsCost, rates, 0, 0)
	// Root degree 3; with maxDegree 1 the penalty is (3-1)²·p = 4p.
	withPenalty := tree.TotalCost(DelayBpsCost, rates, 1, 10)
	if withPenalty <= base {
		t.Error("degree penalty not applied")
	}
	if math.Abs(withPenalty-base-40) > 1e-9 {
		t.Errorf("penalty = %f, want 40", withPenalty-base)
	}
}

func TestReorganizerImprovesStar(t *testing.T) {
	g := graph(t, 120, 8)
	star, err := Star(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	delays := AllPairsDelays(g)
	rates := make([]float64, g.NumNodes())
	r := rand.New(rand.NewSource(2))
	for i := range rates {
		rates[i] = 10 + 90*r.Float64()
	}
	before := star.TotalCost(DelayBpsCost, rates, 8, 1e6)
	reorg := NewReorganizer(star, ReorgOptions{
		DelayFn:       func(a, b int) float64 { return delays[a][b] },
		MaxDegree:     8,
		DegreePenalty: 1e6,
		MaxRounds:     30,
	})
	moves := reorg.Run(rates)
	if moves == 0 {
		t.Fatal("reorganizer should find moves from a star")
	}
	if err := star.Validate(); err != nil {
		t.Fatalf("tree broken after reorg: %v", err)
	}
	after := star.TotalCost(DelayBpsCost, rates, 8, 1e6)
	if after >= before {
		t.Errorf("cost did not improve: %f -> %f", before, after)
	}
	// The huge penalty must pull the root's degree down to the cap.
	if star.Degree(0) > 8 {
		t.Errorf("root degree still %d", star.Degree(0))
	}
}

func TestReorganizerFixpointOnGoodTree(t *testing.T) {
	// An MST under a pure-delay cost with no rates should be close to a
	// local optimum: few or no moves.
	g := graph(t, 100, 11)
	tree, err := MST(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	delays := AllPairsDelays(g)
	rates := make([]float64, g.NumNodes())
	for i := range rates {
		rates[i] = 1
	}
	reorg := NewReorganizer(tree, ReorgOptions{
		DelayFn: func(a, b int) float64 { return delays[a][b] },
	})
	first := reorg.Run(rates)
	// Whatever the first pass did, a second pass must find nothing.
	second := reorg.Run(rates)
	if second != 0 {
		t.Errorf("reorganizer not at fixpoint: %d then %d moves", first, second)
	}
	if err := tree.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSharedCostMSTMinimal(t *testing.T) {
	// With every node subscribing, shared-content cost equals
	// rate × total tree weight, which the MST minimises by definition.
	g := graph(t, 150, 12)
	subs := make([]bool, g.NumNodes())
	for i := range subs {
		subs[i] = true
	}
	mst, err := MST(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	spt, err := SPT(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	star, err := Star(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	cm := mst.SharedCost(100, subs)
	if cs := spt.SharedCost(100, subs); cs < cm-1e-9 {
		t.Errorf("SPT shared cost %f below MST %f", cs, cm)
	}
	if cs := star.SharedCost(100, subs); cs < cm-1e-9 {
		t.Errorf("star shared cost %f below MST %f", cs, cm)
	}
}

func TestSharedCostOnlyDemandedLinks(t *testing.T) {
	// 0 root, children 1,2; 2 has child 3; only node 3 subscribes:
	// demanded links are 3→2 and 2→0.
	tree := &Tree{
		Root:      0,
		Parent:    []int{-1, 0, 0, 2},
		Children:  [][]int{{1, 2}, {}, {3}, {}},
		LinkDelay: []float64{0, 10, 5, 2},
	}
	subs := []bool{false, false, false, true}
	if c := tree.SharedCost(10, subs); c != (5+2)*10 {
		t.Errorf("shared cost = %f, want 70", c)
	}
	// Nobody subscribes: zero cost.
	if c := tree.SharedCost(10, make([]bool, 4)); c != 0 {
		t.Errorf("empty demand cost = %f", c)
	}
}

func TestStarAndSPTErrors(t *testing.T) {
	g := graph(t, 20, 1)
	if _, err := MST(g, -1); err == nil {
		t.Error("bad root should fail")
	}
	if _, err := SPT(g, 99); err == nil {
		t.Error("bad root should fail")
	}
	if _, err := Star(g, 20); err == nil {
		t.Error("bad root should fail")
	}
}

func TestTreeClone(t *testing.T) {
	g := graph(t, 30, 1)
	tree, _ := MST(g, 0)
	cp := tree.Clone()
	cp.Parent[5] = 0
	if tree.Parent[5] == 0 && cp.Parent[5] == tree.Parent[5] {
		t.Skip("coincidental equality")
	}
	if &tree.Parent[0] == &cp.Parent[0] {
		t.Error("clone shares backing arrays")
	}
}
