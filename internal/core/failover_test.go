package core

import (
	"testing"

	"cosmos/internal/stream"
)

// TestProcessorFailoverContinuesDelivery is the query-layer FT
// integration test: a processor with checkpointed window state fails;
// the survivor adopts its groups, restores state, re-advertises the same
// result streams, and delivery continues — including join results whose
// left side was buffered BEFORE the crash.
func TestProcessorFailoverContinuesDelivery(t *testing.T) {
	sys, err := NewSystem(Options{
		Nodes:           24,
		Seed:            9,
		Processors:      2,
		Placement:       RoundRobin,
		CheckpointEvery: 1, // checkpoint after every tuple for the test
	})
	if err != nil {
		t.Fatal(err)
	}
	infos := auctionInfos()
	openPort, err := sys.RegisterStream(infos[0], 1)
	if err != nil {
		t.Fatal(err)
	}
	closedPort, err := sys.RegisterStream(infos[1], 2)
	if err != nil {
		t.Fatal(err)
	}
	var got []stream.Tuple
	h, err := sys.Submit(
		"SELECT O.itemID FROM OpenAuction [Range 3 Hour] O, ClosedAuction [Now] C WHERE O.itemID = C.itemID",
		5, func(tp stream.Tuple) { got = append(got, tp) })
	if err != nil {
		t.Fatal(err)
	}
	owner := h.Processor()

	hr := stream.Timestamp(stream.Hour)
	// Buffer two opens; the checkpoint captures them.
	openPort.Publish(openT(infos[0], 0, 1, 9, 10))
	openPort.Publish(openT(infos[0], 1, 2, 9, 10))

	// Crash the owning processor.
	if err := sys.FailProcessor(owner.ID); err != nil {
		t.Fatal(err)
	}
	if owner.Alive() {
		t.Fatal("owner should be dead")
	}
	if h.Processor() == owner {
		t.Fatal("handle not re-homed")
	}
	if h.Processor().Load() != 1 {
		t.Errorf("backup load = %d", h.Processor().Load())
	}

	// A close arriving after the crash joins the opens buffered before
	// it — state survived via the checkpoint.
	closedPort.Publish(closedT(infos[1], 1*hr, 1, 77))
	if len(got) != 1 {
		t.Fatalf("deliveries after failover = %d, want 1", len(got))
	}
	if got[0].MustGet("OpenAuction.itemID").AsInt() != 1 {
		t.Errorf("result = %v", got[0])
	}
	// New opens keep working on the backup.
	openPort.Publish(openT(infos[0], 2*hr, 3, 9, 10))
	closedPort.Publish(closedT(infos[1], 3*hr, 3, 88))
	if len(got) != 2 {
		t.Fatalf("deliveries = %d, want 2", len(got))
	}
	// Cancelling the adopted query cleans up.
	if err := sys.Cancel(h); err != nil {
		t.Fatal(err)
	}
	if h.Processor().Load() != 0 || h.Processor().Groups() != 0 {
		t.Errorf("backup after cancel: load=%d groups=%d",
			h.Processor().Load(), h.Processor().Groups())
	}
}

func TestFailProcessorErrors(t *testing.T) {
	sys, err := NewSystem(Options{Nodes: 16, Seed: 3, Processors: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.FailProcessor(99); err == nil {
		t.Error("out of range should fail")
	}
	if err := sys.FailProcessor(0); err != nil {
		t.Fatal(err)
	}
	if err := sys.FailProcessor(0); err == nil {
		t.Error("double failure should be rejected")
	}
	// Failing the last processor leaves nobody to adopt.
	if err := sys.FailProcessor(1); err == nil {
		t.Error("no survivor should be rejected")
	}
}

func TestSubmitAfterFailureUsesSurvivor(t *testing.T) {
	sys, err := NewSystem(Options{Nodes: 16, Seed: 4, Processors: 2, Placement: RoundRobin})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.RegisterStream(auctionInfos()[0], 0); err != nil {
		t.Fatal(err)
	}
	if err := sys.FailProcessor(0); err != nil {
		t.Fatal(err)
	}
	h, err := sys.Submit("SELECT itemID FROM OpenAuction [Now]", 3, func(stream.Tuple) {})
	if err != nil {
		t.Fatal(err)
	}
	if h.Processor().ID != 1 {
		t.Errorf("query placed on dead processor")
	}
	// Kill the survivor too: submissions must now fail cleanly.
	sys2, _ := NewSystem(Options{Nodes: 16, Seed: 4, Processors: 2})
	sys2.RegisterStream(auctionInfos()[0], 0)
	sys2.FailProcessor(0)
	sys2.procs[1].mu.Lock()
	sys2.procs[1].alive = false
	sys2.procs[1].mu.Unlock()
	if _, err := sys2.Submit("SELECT itemID FROM OpenAuction [Now]", 3, nil); err == nil {
		t.Error("submit with no alive processor should fail")
	}
}
