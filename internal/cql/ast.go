package cql

import (
	"fmt"
	"strings"

	"cosmos/internal/predicate"
	"cosmos/internal/stream"
)

// ColRef names a column, optionally qualified by a stream alias.
type ColRef struct {
	Qualifier string // alias; empty when unqualified
	Name      string
}

// String returns the (possibly qualified) column name.
func (c ColRef) String() string {
	if c.Qualifier == "" {
		return c.Name
	}
	return c.Qualifier + "." + c.Name
}

// AggFunc enumerates the supported aggregate functions.
type AggFunc string

// Supported aggregate functions.
const (
	AggCount AggFunc = "COUNT"
	AggSum   AggFunc = "SUM"
	AggAvg   AggFunc = "AVG"
	AggMin   AggFunc = "MIN"
	AggMax   AggFunc = "MAX"
)

// validAgg reports whether name (upper-cased) is a known aggregate.
func validAgg(name string) (AggFunc, bool) {
	switch AggFunc(name) {
	case AggCount, AggSum, AggAvg, AggMin, AggMax:
		return AggFunc(name), true
	}
	return "", false
}

// SelectItem is one entry of the SELECT clause.
type SelectItem struct {
	// Star is SELECT * (Qualifier empty) or O.* (Qualifier set).
	Star      bool
	Qualifier string
	// Col is a plain column reference when Agg is empty and !Star.
	Col ColRef
	// Agg/AggArg/AggStar describe an aggregate such as SUM(O.price) or
	// COUNT(*).
	Agg     AggFunc
	AggArg  ColRef
	AggStar bool
	// As is the optional output name.
	As string
}

// String renders the item in CQL syntax.
func (s SelectItem) String() string {
	var b strings.Builder
	switch {
	case s.Star && s.Qualifier == "":
		b.WriteString("*")
	case s.Star:
		b.WriteString(s.Qualifier + ".*")
	case s.Agg != "":
		b.WriteString(string(s.Agg))
		b.WriteByte('(')
		if s.AggStar {
			b.WriteByte('*')
		} else {
			b.WriteString(s.AggArg.String())
		}
		b.WriteByte(')')
	default:
		b.WriteString(s.Col.String())
	}
	if s.As != "" {
		b.WriteString(" AS " + s.As)
	}
	return b.String()
}

// StreamRef is one FROM-clause entry: a stream with a CQL window and an
// optional alias ("OpenAuction [Range 3 Hour] O").
type StreamRef struct {
	Stream string
	Window stream.Duration
	Alias  string // defaults to the stream name when absent
}

// String renders the reference in CQL syntax.
func (r StreamRef) String() string {
	s := r.Stream + " [" + windowString(r.Window) + "]"
	if r.Alias != "" && r.Alias != r.Stream {
		s += " " + r.Alias
	}
	return s
}

func windowString(d stream.Duration) string {
	switch d {
	case stream.Now:
		return "Now"
	case stream.Unbounded:
		return "Unbounded"
	default:
		return "Range " + d.String()
	}
}

// Expr is a boolean WHERE-clause expression.
type Expr interface {
	fmt.Stringer
	exprNode()
}

// BoolOp is the connective of a BinExpr.
type BoolOp int

// Boolean connectives.
const (
	OpAnd BoolOp = iota
	OpOr
)

// BinExpr combines two boolean expressions with AND/OR.
type BinExpr struct {
	Op   BoolOp
	L, R Expr
}

func (b *BinExpr) exprNode() {}

// String renders the expression fully parenthesised.
func (b *BinExpr) String() string {
	op := " AND "
	if b.Op == OpOr {
		op = " OR "
	}
	return "(" + b.L.String() + op + b.R.String() + ")"
}

// Operand is one side of a comparison: a literal, a column, or a column
// difference (A - B), the form window re-tightening uses.
type Operand struct {
	IsCol  bool
	Col    ColRef
	IsDiff bool
	Col2   ColRef // subtrahend when IsDiff
	Lit    stream.Value
}

// LitOperand builds a literal operand.
func LitOperand(v stream.Value) Operand { return Operand{Lit: v} }

// ColOperand builds a column operand.
func ColOperand(c ColRef) Operand { return Operand{IsCol: true, Col: c} }

// String renders the operand.
func (o Operand) String() string {
	if o.IsDiff {
		return o.Col.String() + " - " + o.Col2.String()
	}
	if o.IsCol {
		return o.Col.String()
	}
	return o.Lit.String()
}

// CmpExpr is a comparison between two operands.
type CmpExpr struct {
	Left  Operand
	Op    predicate.Op
	Right Operand
}

func (c *CmpExpr) exprNode() {}

// String renders the comparison.
func (c *CmpExpr) String() string {
	return c.Left.String() + " " + c.Op.String() + " " + c.Right.String()
}

// Query is the parsed AST of a CQL statement.
type Query struct {
	Select  []SelectItem
	From    []StreamRef
	Where   Expr // nil when absent
	GroupBy []ColRef
	Raw     string
}

// String reconstructs CQL text from the AST (canonical spacing).
func (q *Query) String() string {
	var b strings.Builder
	b.WriteString("SELECT ")
	for i, s := range q.Select {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(s.String())
	}
	b.WriteString(" FROM ")
	for i, f := range q.From {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(f.String())
	}
	if q.Where != nil {
		b.WriteString(" WHERE ")
		b.WriteString(q.Where.String())
	}
	if len(q.GroupBy) > 0 {
		b.WriteString(" GROUP BY ")
		for i, g := range q.GroupBy {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(g.String())
		}
	}
	return b.String()
}

// HasAggregates reports whether the SELECT list contains aggregates.
func (q *Query) HasAggregates() bool {
	for _, s := range q.Select {
		if s.Agg != "" {
			return true
		}
	}
	return false
}
