// Package analysis is the registry of cosmoslint checks. Each analyzer
// encodes one repo-specific contract that ordinary go vet cannot know
// about; see the package docs under internal/analysis/* for the
// contracts themselves and ARCHITECTURE.md for how they map onto the
// two-plane (control/data) design.
package analysis

import (
	"cosmos/internal/analysis/atomicsnap"
	"cosmos/internal/analysis/errdrop"
	"cosmos/internal/analysis/framework"
	"cosmos/internal/analysis/hotpath"
	"cosmos/internal/analysis/lockguard"
)

// All returns every registered analyzer, in reporting order.
func All() []*framework.Analyzer {
	return []*framework.Analyzer{
		atomicsnap.Analyzer,
		errdrop.Analyzer,
		hotpath.Analyzer,
		lockguard.Analyzer,
	}
}
