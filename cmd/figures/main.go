// Command figures regenerates the paper's evaluation figures:
//
//	figures -fig 4a             benefit ratio vs #queries (Figure 4a)
//	figures -fig 4b             grouping ratio vs #queries (Figure 4b)
//	figures -fig 3              share vs non-share delivery (Figure 3)
//	figures -fig all            everything
//
// Figure 4 settings default to the paper's: 63 sensor streams, a
// 1000-node power-law topology with an MST dissemination tree,
// checkpoints at 2000…10000 queries, and the four workload
// distributions (uniform, zipf1.0, zipf1.5, zipf2). The paper averages
// 20 repetitions; -reps controls that (default 5 for runtime's sake).
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"cosmos/internal/merge"
	"cosmos/internal/querygen"
	"cosmos/internal/sim"
)

func main() {
	var (
		fig     = flag.String("fig", "all", "figure to regenerate: 3, 4a, 4b or all")
		reps    = flag.Int("reps", 5, "repetitions to average (paper: 20)")
		nodes   = flag.Int("nodes", 1000, "topology size")
		seed    = flag.Int64("seed", 1, "base random seed")
		queries = flag.String("queries", "2000,4000,6000,8000,10000", "comma-separated checkpoints")
		mode    = flag.String("mode", "union", "merge mode: union or hull")
		events  = flag.Int("events", 500, "auction count for figure 3")
	)
	flag.Parse()

	mergeMode := merge.ExactUnion
	if *mode == "hull" {
		mergeMode = merge.ConvexHull
	}
	checkpoints, err := parseCheckpoints(*queries)
	if err != nil {
		fatal(err)
	}

	switch *fig {
	case "3":
		runFig3(*events, *seed)
	case "4a", "4b":
		series := sweepAll(*reps, *nodes, *seed, checkpoints, mergeMode)
		printFig4(*fig, *reps, *nodes, checkpoints, mergeMode, series)
	case "all":
		runFig3(*events, *seed)
		fmt.Println()
		// One sweep feeds both Figure 4 panels.
		series := sweepAll(*reps, *nodes, *seed, checkpoints, mergeMode)
		printFig4("4a", *reps, *nodes, checkpoints, mergeMode, series)
		fmt.Println()
		printFig4("4b", *reps, *nodes, checkpoints, mergeMode, series)
	default:
		fatal(fmt.Errorf("unknown figure %q", *fig))
	}
}

func parseCheckpoints(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("bad checkpoint %q", part)
		}
		out = append(out, n)
	}
	return out, nil
}

func runFig3(events int, seed int64) {
	fmt.Printf("Figure 3 — result stream delivery, share vs non-share (%d auctions)\n", events)
	res, err := sim.RunFigure3(events, seed)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("%-8s %14s %14s %9s\n", "link", "non-share (B)", "share (B)", "saving")
	for _, l := range res.Links {
		saving := 0.0
		if l.NonShareBytes > 0 {
			saving = 1 - float64(l.ShareBytes)/float64(l.NonShareBytes)
		}
		fmt.Printf("%-8s %14d %14d %8.1f%%\n", l.Name, l.NonShareBytes, l.ShareBytes, 100*saving)
	}
	total := 1 - float64(res.ShareTotal)/float64(res.NonShareTotal)
	fmt.Printf("%-8s %14d %14d %8.1f%%\n", "total", res.NonShareTotal, res.ShareTotal, 100*total)
	fmt.Printf("deliveries: q1=%d q2=%d (identical under both strategies)\n",
		res.Q1Results, res.Q2Results)
}

// sweepAll runs the Figure 4 protocol for every distribution, averaging
// reps repetitions, and returns one averaged series per distribution.
func sweepAll(reps, nodes int, seed int64, checkpoints []int, mode merge.Mode) map[string][]*sim.Result {
	out := map[string][]*sim.Result{}
	for _, dist := range querygen.PaperDistributions() {
		var runs [][]*sim.Result
		for rep := 0; rep < reps; rep++ {
			results, err := sim.Sweep(sim.Config{
				Nodes: nodes,
				Dist:  dist,
				Seed:  seed + int64(rep)*1000,
				Mode:  mode,
			}, checkpoints)
			if err != nil {
				fatal(err)
			}
			runs = append(runs, results)
		}
		out[dist.Name] = sim.AverageResults(runs)
	}
	return out
}

func printFig4(which string, reps, nodes int, checkpoints []int, mode merge.Mode, series map[string][]*sim.Result) {
	metric := "Benefit Ratio"
	if which == "4b" {
		metric = "Grouping Ratio"
	}
	fmt.Printf("Figure %s — %s vs #queries (%d nodes, %d reps, mode=%s)\n",
		which, metric, nodes, reps, mode)
	fmt.Printf("%-9s", "#queries")
	for _, cp := range checkpoints {
		fmt.Printf(" %8d", cp)
	}
	fmt.Println()
	for _, dist := range querygen.PaperDistributions() {
		fmt.Printf("%-9s", dist.Name)
		for _, r := range series[dist.Name] {
			v := r.BenefitRatio
			if which == "4b" {
				v = r.GroupingRatio
			}
			fmt.Printf(" %8.3f", v)
		}
		fmt.Println()
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "figures:", err)
	os.Exit(1)
}
