package core

import (
	"math"
	"testing"
	"time"

	"cosmos/internal/cbn"
	"cosmos/internal/exec"
	"cosmos/internal/obs"
)

func histOf(vals ...int64) obs.HistSnapshot {
	var h obs.Histogram
	for _, v := range vals {
		h.Observe(v)
	}
	return h.Snapshot()
}

func planStats(proc int, plan string, pushes, emits int64) PlanStats {
	return PlanStats{
		PlanStats: exec.PlanStats{Plan: plan, Pushes: pushes, Emits: emits},
		Proc:      proc,
	}
}

func checkFinite(t *testing.T, name string, v float64) {
	t.Helper()
	if math.IsNaN(v) || math.IsInf(v, 0) {
		t.Fatalf("%s = %v; want finite", name, v)
	}
}

func TestBuildCostFeedZeroDelta(t *testing.T) {
	snap := SystemStats{
		Ingested:  1000,
		Delivered: 900,
		Stages:    []obs.StageStats{{Stage: "exec", Count: 1000, Lat: histOf(100, 200)}},
		Plans:     []PlanStats{planStats(0, "p0", 500, 250)},
		Links:     []cbn.LinkStats{{A: 0, B: 1, DataBytes: 4096, DataMsgs: 64}},
	}
	f := BuildCostFeed(snap, snap, time.Second)
	if f.IngestRate != 0 || f.DeliverRate != 0 {
		t.Fatalf("identical snapshots: ingest %v deliver %v, want 0/0", f.IngestRate, f.DeliverRate)
	}
	if len(f.Stages) != 1 || f.Stages[0].Rate != 0 {
		t.Fatalf("stage rate %v, want 0 across an idle window", f.Stages[0].Rate)
	}
	// Quantiles read the end snapshot — they survive an idle window.
	if f.Stages[0].P50 <= 0 {
		t.Fatal("stage quantiles lost across a zero-delta window")
	}
	if len(f.Plans) != 1 || f.Plans[0].PushRate != 0 || f.Plans[0].Selectivity != 0 {
		t.Fatalf("plan feed %+v, want zero rates and no selectivity claim for an idle window", f.Plans[0])
	}
	if len(f.Links) != 1 || f.Links[0].DataBytesPerSec != 0 {
		t.Fatalf("link rate %v, want 0", f.Links[0].DataBytesPerSec)
	}
}

func TestBuildCostFeedZeroWindow(t *testing.T) {
	cur := SystemStats{
		Ingested: 500,
		Stages:   []obs.StageStats{{Stage: "ingest", Count: 500}},
		Plans:    []PlanStats{planStats(0, "p0", 100, 40)},
	}
	for _, window := range []time.Duration{0, -time.Second} {
		f := BuildCostFeed(SystemStats{}, cur, window)
		checkFinite(t, "IngestRate", f.IngestRate)
		checkFinite(t, "DeliverRate", f.DeliverRate)
		if f.IngestRate != 0 {
			t.Fatalf("window %v: IngestRate %v, want 0", window, f.IngestRate)
		}
		for _, s := range f.Stages {
			checkFinite(t, "stage rate", s.Rate)
		}
		for _, p := range f.Plans {
			checkFinite(t, "push rate", p.PushRate)
			checkFinite(t, "selectivity", p.Selectivity)
		}
		// Selectivity is a counter ratio, not a rate: it survives a
		// degenerate window.
		if f.Plans[0].Selectivity != 0.4 {
			t.Fatalf("selectivity %v, want 0.4", f.Plans[0].Selectivity)
		}
	}
}

// A plan present only in the current snapshot is attributed its full
// counters; one that disappeared contributes nothing (its history is
// not the survivors' problem).
func TestBuildCostFeedPlanAppearsAndDisappears(t *testing.T) {
	prev := SystemStats{Plans: []PlanStats{planStats(0, "old", 1000, 1000)}}
	cur := SystemStats{Plans: []PlanStats{planStats(0, "new", 300, 150)}}
	f := BuildCostFeed(prev, cur, time.Second)
	if len(f.Plans) != 1 {
		t.Fatalf("feed carries %d plans, want only the live one", len(f.Plans))
	}
	p := f.Plans[0]
	if p.Plan != "new" || p.PushRate != 300 || p.EmitRate != 150 || p.Selectivity != 0.5 {
		t.Fatalf("new plan feed %+v, want full counters attributed to the window", p)
	}
	if _, ok := f.PlanByID("old"); ok {
		t.Fatal("vanished plan still reported")
	}
}

// The same plan ID on another processor is a different plan: deltas
// must not cross processors.
func TestBuildCostFeedPlanKeyedByProcessor(t *testing.T) {
	prev := SystemStats{Plans: []PlanStats{planStats(1, "p", 100, 100)}}
	cur := SystemStats{Plans: []PlanStats{planStats(2, "p", 80, 80)}}
	f := BuildCostFeed(prev, cur, time.Second)
	if len(f.Plans) != 1 || f.Plans[0].Proc != 2 || f.Plans[0].PushRate != 80 {
		t.Fatalf("plan feed %+v: processor 1's history leaked into processor 2's delta", f.Plans[0])
	}
}

func TestBuildCostFeedEmptyHistograms(t *testing.T) {
	cur := SystemStats{
		Stages: []obs.StageStats{{Stage: "exec", Count: 10}}, // sampling off: no latencies
		Plans:  []PlanStats{planStats(0, "p0", 10, 10)},
	}
	f := BuildCostFeed(SystemStats{}, cur, time.Second)
	s := f.Stages[0]
	if s.P50 != 0 || s.P99 != 0 || s.P9999 != 0 {
		t.Fatalf("empty-histogram quantiles (%v, %v, %v), want zeros", s.P50, s.P99, s.P9999)
	}
	if f.Plans[0].PushP50 != 0 || f.Plans[0].PushP99 != 0 {
		t.Fatalf("empty push-latency quantiles (%v, %v), want zeros", f.Plans[0].PushP50, f.Plans[0].PushP99)
	}
}

func TestBuildCostFeedLinkDeltas(t *testing.T) {
	prev := SystemStats{Links: []cbn.LinkStats{{A: 0, B: 1, DataBytes: 1000, DataMsgs: 10}}}
	cur := SystemStats{Links: []cbn.LinkStats{
		{A: 0, B: 1, DataBytes: 3000, DataMsgs: 30, DelayMs: 12},
		{A: 1, B: 2, DataBytes: 500, DataMsgs: 5},
	}}
	f := BuildCostFeed(prev, cur, 2*time.Second)
	if len(f.Links) != 2 {
		t.Fatalf("feed carries %d links, want 2", len(f.Links))
	}
	if f.Links[0].DataBytesPerSec != 1000 || f.Links[0].DataMsgsPerSec != 10 {
		t.Fatalf("link 0-1 rates (%v B/s, %v msg/s), want delta over the 2s window", f.Links[0].DataBytesPerSec, f.Links[0].DataMsgsPerSec)
	}
	if f.Links[0].DelayMs != 12 {
		t.Fatalf("link delay %v, want the current gauge", f.Links[0].DelayMs)
	}
	if f.Links[1].DataBytesPerSec != 250 {
		t.Fatalf("new link rate %v, want its full counters over the window", f.Links[1].DataBytesPerSec)
	}
}
