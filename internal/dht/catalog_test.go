package dht

import (
	"fmt"
	"testing"

	"cosmos/internal/cql"
	"cosmos/internal/sensordata"
)

func TestCatalogLookupAndCache(t *testing.T) {
	ring := New()
	for i := 0; i < 64; i++ {
		if _, err := ring.Join(fmt.Sprintf("node-%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	for s := 0; s < sensordata.NumStations; s++ {
		name := sensordata.StreamName(s)
		if _, _, err := ring.Store("node-0", name, sensordata.Info(s)); err != nil {
			t.Fatal(err)
		}
	}
	cat := NewCatalog(ring, "node-17")
	info, ok := cat.Lookup("Sensor07")
	if !ok || info.Schema.Stream != "Sensor07" {
		t.Fatalf("lookup = %v, %v", info, ok)
	}
	firstHops := cat.Hops()
	// Second lookup hits the cache: no new hops.
	if _, ok := cat.Lookup("Sensor07"); !ok {
		t.Fatal("cached lookup failed")
	}
	if cat.Hops() != firstHops {
		t.Error("cache miss on repeated lookup")
	}
	if _, ok := cat.Lookup("NoSuchStream"); ok {
		t.Error("missing stream resolved")
	}
	cat.Invalidate("Sensor07")
	if _, ok := cat.Lookup("Sensor07"); !ok {
		t.Error("lookup after invalidate failed")
	}
	if cat.Hops() <= firstHops {
		t.Error("invalidate should force a re-route")
	}
}

// TestCatalogDrivesAnalyzer proves the DHT catalog satisfies the query
// analyzer's needs end to end: binding a query resolves schemas through
// the ring.
func TestCatalogDrivesAnalyzer(t *testing.T) {
	ring := New()
	for i := 0; i < 16; i++ {
		if _, err := ring.Join(fmt.Sprintf("node-%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, err := ring.Store("node-0", "Sensor03", sensordata.Info(3)); err != nil {
		t.Fatal(err)
	}
	cat := NewCatalog(ring, "node-5")
	b, err := cql.AnalyzeString(
		"SELECT station, temperature FROM Sensor03 [Range 30 Minute] WHERE temperature > 20", cat)
	if err != nil {
		t.Fatal(err)
	}
	if len(b.From) != 1 || b.From[0].Stream != "Sensor03" {
		t.Errorf("bound = %v", b.From)
	}
	if _, err := cql.AnalyzeString("SELECT x FROM Unknown [Now]", cat); err == nil {
		t.Error("unknown stream should fail analysis")
	}
}
