// The remote example runs the full client/daemon split in one process:
// a cosmosd-style deployment — a LiveSystem behind the TCP transport
// server — and a cosmos.Dial client session driving it over a real
// socket. The same Client code would run unchanged against Embed or
// EmbedLive; that is the point of the session API.
//
// It demonstrates:
//   - the daemon assembly cosmosd uses (LiveSystem + transport.Server),
//   - channel-based Subscriptions streaming results over TCP while
//     ingest continues (no stabilisation barrier on the data path),
//   - Catalog/Stats over the wire, per-link counters included,
//   - graceful shutdown: the server drains in-flight results and ends
//     the remaining subscription cleanly before the system closes.
package main

import (
	"context"
	"fmt"
	"log"
	"net"

	"cosmos"
	"cosmos/internal/core"
	"cosmos/internal/transport"
)

const trades = 20000

func main() {
	// --- daemon side: what cosmosd assembles ---------------------------
	ls, err := core.NewLiveSystem(core.Options{
		Nodes: 24, Seed: 7, Processors: 2, ExecWorkers: 4,
	})
	if err != nil {
		log.Fatal(err)
	}
	srv := transport.NewServer(ls.System, transport.WithSystemClose(ls.Close))
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	serveDone := make(chan struct{})
	go func() {
		defer close(serveDone)
		if err := srv.Serve(ln); err != nil {
			log.Fatal(err)
		}
	}()
	fmt.Printf("daemon listening on %s (LiveSystem, 2 processors x 4 workers)\n", ln.Addr())

	// --- client side: one session over TCP -----------------------------
	client, err := cosmos.Dial(ln.Addr().String())
	if err != nil {
		log.Fatal(err)
	}
	schema := cosmos.MustSchema("Trades",
		cosmos.Field{Name: "symbol", Kind: cosmos.KindString},
		cosmos.Field{Name: "price", Kind: cosmos.KindFloat},
		cosmos.Field{Name: "size", Kind: cosmos.KindInt},
	)
	src, err := client.RegisterStream(&cosmos.StreamInfo{Schema: schema, Rate: 1000}, 1)
	if err != nil {
		log.Fatal(err)
	}
	big, err := client.Submit(context.Background(),
		"SELECT symbol, price FROM Trades [Now] WHERE price >= 990", 5)
	if err != nil {
		log.Fatal(err)
	}
	counts, err := client.Submit(context.Background(),
		"SELECT symbol, COUNT(*) FROM Trades [Unbounded] GROUP BY symbol", 9)
	if err != nil {
		log.Fatal(err)
	}
	// Subscription propagation is asynchronous; settle it before traffic.
	if err := client.Quiesce(); err != nil {
		log.Fatal(err)
	}

	symbols := []string{"ACME", "GOPH", "INIT", "KERN"}
	pubDone := make(chan struct{})
	go func() {
		defer close(pubDone)
		for i := 0; i < trades; i++ {
			t := cosmos.MustTuple(schema, cosmos.Timestamp(i),
				cosmos.String(symbols[i%len(symbols)]),
				cosmos.Float(float64(i%1000)),
				cosmos.Int(int64(1+i%100)),
			)
			if err := src.Publish(t); err != nil {
				log.Fatal(err)
			}
		}
	}()

	// Results stream over TCP while the publisher is still injecting: the
	// first big-trade alerts arrive long before the 20k tuples are in.
	streamed := 0
	for t := range big.Results() {
		streamed++
		if streamed == 1 {
			fmt.Printf("first alert while ingest runs: %v\n", t)
		}
		if streamed == 10 {
			break
		}
	}
	<-pubDone
	if err := client.Quiesce(); err != nil { // readout barrier, not a data-path step
		log.Fatal(err)
	}

	infos, err := client.Catalog()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("catalog streams: %d (Trades + live result streams)\n", len(infos))
	st, err := client.Stats()
	if err != nil {
		log.Fatal(err)
	}
	busy := 0
	for _, lk := range st.Links {
		if lk.DataMsgs > 0 {
			busy++
		}
	}
	fmt.Printf("stats: %d queries, %d processors, %d of %d links carried data\n",
		st.Queries, st.Processors, busy, len(st.Links))

	if err := big.Cancel(); err != nil {
		log.Fatal(err)
	}
	for range big.Results() { // drain what was buffered after the break
		streamed++
	}
	fmt.Printf("big-trade alerts streamed: %d (want %d)\n", streamed, trades/100)

	if err := counts.Cancel(); err != nil {
		log.Fatal(err)
	}
	grouped := 0
	for range counts.Results() {
		grouped++
	}
	fmt.Printf("grouped count updates streamed: %d (want %d)\n", grouped, trades)

	// A subscription left open sees the graceful shutdown as a clean end.
	open, err := client.Submit(context.Background(),
		"SELECT symbol FROM Trades [Now]", 3)
	if err != nil {
		log.Fatal(err)
	}
	if err := srv.Shutdown(); err != nil {
		log.Fatal(err)
	}
	<-serveDone
	for range open.Results() {
	}
	fmt.Printf("daemon shut down; open subscription ended cleanly: err=%v\n", open.Err())
	client.Close()
}
