package exec_test

import (
	"errors"
	"sync"
	"testing"

	"cosmos/internal/cql"
	"cosmos/internal/exec"
	"cosmos/internal/sensordata"
	"cosmos/internal/stream"
)

// TestPanicContainment: a panic inside one plan's push must degrade only
// that plan — it surfaces as a *PanicError through OnError, the plan
// stops consuming, and every other plan (sharing a worker or not) keeps
// emitting. Covers synchronous and sharded modes.
func TestPanicContainment(t *testing.T) {
	reg := stream.NewRegistry()
	if err := sensordata.RegisterAll(reg); err != nil {
		t.Fatal(err)
	}
	bound, err := cql.AnalyzeString("SELECT station FROM Sensor00 [Now]", reg)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, 2} {
		var mu sync.Mutex
		counts := map[string]int{}
		var errPlans []string
		var errVals []error
		rt := exec.New(exec.Config{
			Workers: workers,
			Emit: func(tp stream.Tuple) {
				mu.Lock()
				counts[tp.Schema.Stream]++
				mu.Unlock()
			},
			OnError: func(id string, err error) {
				mu.Lock()
				errPlans = append(errPlans, id)
				errVals = append(errVals, err)
				mu.Unlock()
			},
		})
		if _, err := rt.Install("victim", bound, "resV"); err != nil {
			t.Fatal(err)
		}
		if _, err := rt.Install("bystander", bound, "resB"); err != nil {
			t.Fatal(err)
		}
		gen := sensordata.NewGenerator(0, 9)
		for i := 0; i < 5; i++ {
			rt.Consume(gen.Next())
		}
		rt.Barrier()
		if !rt.InjectPanic("victim") {
			t.Fatalf("workers=%d: InjectPanic(victim) = false", workers)
		}
		for i := 0; i < 5; i++ {
			rt.Consume(gen.Next())
		}
		rt.Barrier()

		mu.Lock()
		if counts["resB"] != 10 {
			t.Errorf("workers=%d: bystander emitted %d, want 10", workers, counts["resB"])
		}
		// The victim emits its 5 pre-fault results, panics on tuple 6,
		// and is dead for the remaining 4.
		if counts["resV"] != 5 {
			t.Errorf("workers=%d: victim emitted %d, want 5", workers, counts["resV"])
		}
		if len(errPlans) != 1 || errPlans[0] != "victim" {
			t.Fatalf("workers=%d: OnError plans = %v, want [victim]", workers, errPlans)
		}
		var pe *exec.PanicError
		if !errors.As(errVals[0], &pe) || pe.PlanID != "victim" || len(pe.Stack) == 0 {
			t.Errorf("workers=%d: OnError err = %#v, want *PanicError with stack", workers, errVals[0])
		}
		mu.Unlock()

		// The dead plan stays installed but inert; InjectPanic on it now
		// reports false, and the runtime still takes control-plane calls.
		if rt.InjectPanic("victim") {
			t.Errorf("workers=%d: InjectPanic on dead plan should report false", workers)
		}
		rt.Close()
	}
}
