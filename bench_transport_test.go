// Transport result-path benchmarks: the v1(gob) vs v2(binary) A/B on
// one Dial connection, and the sustained-load run — now driven by the
// internal/load harness — that records its trajectory point to
// BENCH_transport.json (scripts/bench_transport.sh).
//
// Both drive the cosmosd assembly — LiveSystem behind transport.Server —
// with publishes entering through the embedded client, so the timed
// path is publish → eval → wire → client callback and the wire codec
// dominates the per-result cost (eval is shared across the fan-out).
package cosmos_test

import (
	"fmt"
	"net"
	"os"
	"sync/atomic"
	"testing"
	"time"

	"cosmos"
	"cosmos/internal/core"
	"cosmos/internal/load"
	"cosmos/internal/sensordata"
	"cosmos/internal/transport"
)

// benchFanout is how many subscriptions share the one benched
// connection; each published tuple yields this many wire results, so
// upstream (publish + eval) cost is amortised 1/benchFanout per result.
const benchFanout = 16

// benchHarness is one live server + embedded publisher + one remote
// subscriber connection with benchFanout counting subscriptions.
type benchHarness struct {
	src      cosmos.Source
	sub      *transport.Client
	received atomic.Int64
	target   atomic.Int64
	notify   chan struct{}
	cleanup  []func()
}

func (h *benchHarness) close() {
	for i := len(h.cleanup) - 1; i >= 0; i-- {
		h.cleanup[i]()
	}
}

// startBenchHarness wires the assembly at the given wire version.
func startBenchHarness(tb testing.TB, wire, ingestBatch int) *benchHarness {
	tb.Helper()
	h := &benchHarness{notify: make(chan struct{}, 1)}
	opts := core.Options{Nodes: 16, Seed: 3, ExecWorkers: 2, IngestBatch: ingestBatch}
	ls, err := core.NewLiveSystem(opts)
	if err != nil {
		tb.Fatal(err)
	}
	srv := transport.NewServer(ls.System, transport.WithSystemClose(ls.Close))
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		tb.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		if err := srv.Serve(ln); err != nil {
			tb.Errorf("serve: %v", err)
		}
	}()
	h.cleanup = append(h.cleanup, func() { srv.Close(); <-done })

	pub := cosmos.EmbedLive(ls)
	src, err := pub.RegisterStream(sensordata.Info(0), 1)
	if err != nil {
		tb.Fatal(err)
	}
	h.src = src

	sub, err := transport.DialConfig(ln.Addr().String(), transport.Config{WireVersion: wire})
	if err != nil {
		tb.Fatal(err)
	}
	h.cleanup = append(h.cleanup, func() { sub.Close() })
	h.sub = sub
	if got := sub.WireVersion(); got != wire {
		tb.Fatalf("negotiated wire v%d, want v%d", got, wire)
	}
	for i := 0; i < benchFanout; i++ {
		_, err := sub.Submit("SELECT station, temperature FROM Sensor00 [Now]", 3+i%8,
			func(tp cosmos.Tuple, _ uint64) {
				if n := h.received.Add(1); n >= h.target.Load() {
					select {
					case h.notify <- struct{}{}:
					default:
					}
				}
			}, nil, nil)
		if err != nil {
			tb.Fatal(err)
		}
	}
	// Settle subscription propagation before traffic starts.
	if err := pub.Quiesce(); err != nil {
		tb.Fatal(err)
	}
	return h
}

// waitResults blocks until the harness has delivered at least n
// results; the delivery callback signals notify when the target is
// crossed, so nothing spins (this host may have a single CPU).
func (h *benchHarness) waitResults(tb testing.TB, n int64) {
	tb.Helper()
	h.target.Store(n)
	deadline := time.Now().Add(2 * time.Minute)
	for h.received.Load() < n {
		select {
		case <-h.notify:
		case <-time.After(time.Until(deadline)):
			tb.Fatalf("stalled at %d/%d results", h.received.Load(), n)
		}
	}
}

// BenchmarkDialResultPath is the wire-codec A/B: identical fan-out
// workload over the v1 gob wire and the v2 binary wire; one op = one
// result delivered to a client callback. Compare ns/op and allocs/op
// between the sub-benchmarks.
func BenchmarkDialResultPath(b *testing.B) {
	for _, wire := range []int{transport.WireV1, transport.WireV2} {
		b.Run(fmt.Sprintf("wire=%d", wire), func(b *testing.B) {
			h := startBenchHarness(b, wire, 32)
			defer h.close()
			pubs := (b.N + benchFanout - 1) / benchFanout
			b.ReportAllocs()
			b.ResetTimer()
			// Publish in rounds with a blocking wait between them: deep
			// enough for batching to form, bounded so elastic buffers
			// stay small — and no spin-waiting, which on a small host
			// would drown the measurement in scheduler churn.
			const round = 256
			for published := 0; published < pubs; {
				n := round
				if pubs-published < n {
					n = pubs - published
				}
				h.target.Store(int64((published + n) * benchFanout))
				for i := 0; i < n; i++ {
					if err := h.src.Publish(diffTuple(0, published+i)); err != nil {
						b.Fatal(err)
					}
				}
				published += n
				h.waitResults(b, int64(published*benchFanout))
			}
		})
	}
}

// TestSustainedTransportLoad is the harness-driven successor of the
// bespoke sustained bench: internal/load's transport scenario holds the
// same offered rate (5000/s, 16 subscriptions, v2 wire) with an
// open-loop pacer and a per-subscription sequence ledger, so the run
// both produces the BENCH_transport.json trajectory point and asserts
// zero loss and zero duplication. With COSMOS_BENCH_OUT set the report
// is written there (scripts/bench_transport.sh points it at
// BENCH_transport.json); earlier points — including the pre-harness flat
// schema — are preserved in the file's history block.
func TestSustainedTransportLoad(t *testing.T) {
	if testing.Short() {
		t.Skip("sustained load is slow; skipped in -short")
	}
	rep, err := load.Run(load.Config{
		Scenario: "transport",
		Rate:     5000,
		Duration: time.Second,
		Subs:     benchFanout,
		Out:      os.Getenv("COSMOS_BENCH_OUT"),
	})
	if err != nil {
		t.Fatal(err)
	}
	r := rep.Results
	t.Logf("sustained v%d: %d results in %.2fs, %.0f ns/result, %.1f allocs/result, p50 %.0fµs p99 %.0fµs p99.99 %.0fµs",
		rep.Config.WireVersion, r.Delivered, r.ElapsedS, r.NsPerResult, r.AllocsPerResult,
		r.LatencyUs.P50, r.LatencyUs.P99, r.LatencyUs.P9999)
	if r.Lost != 0 || r.Duplicated != 0 {
		t.Fatalf("ledger: %d lost, %d duplicated (want 0/0)", r.Lost, r.Duplicated)
	}
	if r.Delivered != r.Expected {
		t.Fatalf("delivered %d of %d expected results", r.Delivered, r.Expected)
	}
}
