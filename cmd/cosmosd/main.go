// Command cosmosd runs a COSMOS service endpoint: an in-process overlay
// of brokers and processors behind a TCP API (see internal/transport).
// Clients (cmd/cosmosctl or transport.Client) register source streams,
// publish tuples, and submit CQL continuous queries whose results stream
// back over the connection.
//
//	cosmosd -listen :7654 -nodes 64 -processors 2 -seed 1
package main

import (
	"flag"
	"log"
	"net"

	"cosmos/internal/core"
	"cosmos/internal/merge"
	"cosmos/internal/transport"
)

func main() {
	var (
		listen     = flag.String("listen", ":7654", "TCP listen address")
		nodes      = flag.Int("nodes", 64, "overlay size")
		processors = flag.Int("processors", 1, "number of processor nodes")
		seed       = flag.Int64("seed", 1, "topology seed")
		mode       = flag.String("mode", "union", "merge mode: union or hull")
		placement  = flag.String("placement", "least-loaded", "query placement: least-loaded, nearest, round-robin")
		noMerge    = flag.Bool("no-merge", false, "disable query merging (baseline)")
	)
	flag.Parse()

	opts := core.Options{
		Nodes:          *nodes,
		Processors:     *processors,
		Seed:           *seed,
		DisableMerging: *noMerge,
	}
	if *mode == "hull" {
		opts.Mode = merge.ConvexHull
	}
	switch *placement {
	case "nearest":
		opts.Placement = core.NearestToUser
	case "round-robin":
		opts.Placement = core.RoundRobin
	case "least-loaded":
		opts.Placement = core.LeastLoaded
	default:
		log.Fatalf("cosmosd: unknown placement %q", *placement)
	}

	sys, err := core.NewSystem(opts)
	if err != nil {
		log.Fatalf("cosmosd: %v", err)
	}
	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatalf("cosmosd: %v", err)
	}
	log.Printf("cosmosd: listening on %s (%d nodes, %d processors, merging=%v)",
		ln.Addr(), *nodes, *processors, !*noMerge)
	srv := transport.NewServer(sys)
	if err := srv.Serve(ln); err != nil {
		log.Fatalf("cosmosd: %v", err)
	}
}
