package core

import (
	"errors"
	"testing"

	"cosmos/internal/exec"
	"cosmos/internal/stream"
)

// TestPlanPanicDegradesOnlyThatQuery: an armed panic firing inside one
// plan must surface as a *exec.PanicError on the processor's error
// surface and stop that query's results, while every other query on the
// system — including ones sharing the processor — keeps streaming.
func TestPlanPanicDegradesOnlyThatQuery(t *testing.T) {
	var cbPlans []string
	var cbErrs []error
	opts := Options{Nodes: 8, Seed: 5, OnPlanError: func(proc int, plan string, err error) {
		cbPlans = append(cbPlans, plan)
		cbErrs = append(cbErrs, err)
	}}
	sys, openPort, closedPort := newAuctionSystem(t, opts)

	// Distinct streams keep the two queries on distinct plans — queries
	// adopted into one shared plan group are one failure domain by
	// design (the group IS a single plan).
	var victimGot, bystanderGot int
	victim, err := sys.Submit("SELECT itemID FROM OpenAuction [Now] WHERE start_price > 0", 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	victim.onResult = func(stream.Tuple) { victimGot++ }
	bystander, err := sys.Submit("SELECT itemID, buyerID FROM ClosedAuction [Now]", 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	bystander.onResult = func(stream.Tuple) { bystanderGot++ }

	info := auctionInfos()
	pub := func(n int) {
		for i := 0; i < n; i++ {
			if err := openPort.Publish(openT(info[0], stream.Timestamp(i*500), int64(i), 1, 100)); err != nil {
				t.Fatal(err)
			}
			if err := closedPort.Publish(closedT(info[1], stream.Timestamp(i*500+1), int64(i), 2)); err != nil {
				t.Fatal(err)
			}
		}
	}
	pub(5)
	sys.Quiesce()
	if victimGot != 5 || bystanderGot != 5 {
		t.Fatalf("before fault: victim=%d bystander=%d, want 5/5", victimGot, bystanderGot)
	}

	if sys.InjectPlanPanic("no-such-query") {
		t.Error("InjectPlanPanic on unknown tag should report false")
	}
	if !sys.InjectPlanPanic(victim.Tag) {
		t.Fatal("InjectPlanPanic(victim) = false")
	}
	pub(5)
	sys.Quiesce()

	if bystanderGot != 10 {
		t.Errorf("bystander = %d results, want 10 (unaffected by the panic)", bystanderGot)
	}
	if victimGot != 5 {
		t.Errorf("victim = %d results, want 5 (dead after the panic)", victimGot)
	}
	if len(cbPlans) != 1 {
		t.Fatalf("OnPlanError calls = %d (%v), want 1", len(cbPlans), cbPlans)
	}
	var pe *exec.PanicError
	if !errors.As(cbErrs[0], &pe) {
		t.Errorf("OnPlanError err = %#v, want *exec.PanicError", cbErrs[0])
	}
	var planErrs int64
	for _, p := range sys.procs {
		planErrs += p.PlanErrors()
	}
	if planErrs != 1 {
		t.Errorf("total plan errors = %d, want 1", planErrs)
	}

	// The rest of the control plane is untouched: both queries are still
	// registered, and the survivor cancels cleanly.
	if sys.Queries() != 2 {
		t.Errorf("queries = %d, want 2 (a dead plan is degraded, not deregistered)", sys.Queries())
	}
	if err := sys.Cancel(bystander); err != nil {
		t.Errorf("cancel bystander: %v", err)
	}
	if err := sys.Cancel(victim); err != nil {
		t.Errorf("cancel victim: %v", err)
	}
}
