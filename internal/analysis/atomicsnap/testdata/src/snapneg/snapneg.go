// Package snapneg is the atomicsnap false-positive regression guard:
// the builder exemption, reassignment clearing and read-only uses must
// all stay silent.
package snapneg

import "sync/atomic"

type table struct {
	count int64
	index map[string]int
}

type holder struct {
	tbl atomic.Pointer[table]
}

func compile() *table { return &table{index: map[string]int{}} }

// builder constructs the next snapshot and publishes it; writing the
// fresh value's fields before Store is the whole point.
func builder(h *holder) {
	nt := compile()
	nt.count = 42
	nt.index["a"] = 1
	h.tbl.Store(nt)
}

// casBuilder publishes via CompareAndSwap; equally exempt.
func casBuilder(h *holder) {
	old := h.tbl.Load()
	nt := compile()
	nt.count = old.count + 1
	h.tbl.CompareAndSwap(old, nt)
}

// slowPath mirrors the broker's routeTupleSlow idiom: the snapshot
// variable is reassigned from a freshly compiled value, after which
// writes target the fresh value, not the published one.
func slowPath(h *holder) {
	t := h.tbl.Load()
	if t.count == 0 {
		t = compile()
		t.count = 7
	}
	_ = t
}

// readOnly loads and reads; no diagnostic.
func readOnly(h *holder) int64 {
	t := h.tbl.Load()
	sum := t.count
	for _, v := range t.index {
		sum += int64(v)
	}
	return sum
}

// unrelatedWrites mutate values that never came from a Load.
func unrelatedWrites() {
	t := compile()
	t.count = 9
	t.index["b"] = 2
	t.count++
}
