// Package hotdep pins cross-package annotation visibility: hotneg calls
// these from hot code, so the loader must hand hotneg the source-checked
// package (annotation-indexed) rather than bare export data.
package hotdep

//cosmos:hotpath
func Leaf(v int64) int64 { return v + 1 }

//cosmos:hotpath-ok — audited boundary in a dependency package.
func Boundary(v int64) int64 { return v * 2 }
