package overlay

// The overlay network optimizer (paper §3.2): "The overlay network
// optimizer periodically monitors the status of the network and performs
// the reorganization of the overlay network if necessary. … Each
// optimizer module at each node monitors the workloads and connections of
// its neighbors in the overlay trees. By using a configurable cost
// function defined on these parameters, it estimates whether a local
// reorganization of the overlay trees is beneficial."
//
// Following the adaptive dissemination-tree work the paper builds on
// (refs [18, 19]), reorganisation applies two local transformations to a
// non-root node v:
//
//	parent-switch up:    re-attach v to its grandparent
//	parent-switch side:  re-attach v to one of its siblings
//
// Both preserve treeness trivially (the new parent is outside v's
// subtree). A move is taken when it lowers the configurable cost —
// delay·flow plus a degree (server workload) penalty.

// ReorgOptions configures the optimizer.
type ReorgOptions struct {
	// Cost scores a link (default DelayBpsCost).
	Cost CostFunc
	// DelayFn returns the overlay link delay between any two nodes
	// (typically shortest-path delay in the underlying topology).
	DelayFn func(a, b int) float64
	// MaxDegree and DegreePenalty control the server workload term.
	MaxDegree     int
	DegreePenalty float64
	// MaxRounds bounds the local-search sweeps (default 10).
	MaxRounds int
}

// Reorganizer performs cost-driven local reorganisation of a tree.
type Reorganizer struct {
	opts ReorgOptions
	t    *Tree
}

// NewReorganizer wraps a tree; the tree is modified in place by Run.
func NewReorganizer(t *Tree, opts ReorgOptions) *Reorganizer {
	if opts.Cost == nil {
		opts.Cost = DelayBpsCost
	}
	if opts.MaxRounds == 0 {
		opts.MaxRounds = 10
	}
	return &Reorganizer{opts: opts, t: t}
}

// degreeTerm computes the workload penalty of one node's degree.
func (r *Reorganizer) degreeTerm(deg int) float64 {
	if r.opts.MaxDegree <= 0 {
		return 0
	}
	if over := deg - r.opts.MaxDegree; over > 0 {
		return r.opts.DegreePenalty * float64(over*over)
	}
	return 0
}

// moveGain computes the cost delta of re-attaching v from its current
// parent to newParent. Only three terms change: v's uplink cost, the old
// parent's degree penalty, and the new parent's degree penalty.
func (r *Reorganizer) moveGain(v, newParent int, flows []float64) float64 {
	t := r.t
	old := t.Parent[v]
	if old == newParent || newParent == v {
		return 0
	}
	curCost := r.opts.Cost(t.LinkDelay[v], flows[v])
	newDelay := r.opts.DelayFn(v, newParent)
	newCost := r.opts.Cost(newDelay, flows[v])

	curPenalty := r.degreeTerm(t.Degree(old)) + r.degreeTerm(t.Degree(newParent))
	newPenalty := r.degreeTerm(t.Degree(old)-1) + r.degreeTerm(t.Degree(newParent)+1)
	return (curCost + curPenalty) - (newCost + newPenalty)
}

// apply re-attaches v under newParent.
func (r *Reorganizer) apply(v, newParent int) {
	t := r.t
	old := t.Parent[v]
	for i, c := range t.Children[old] {
		if c == v {
			t.Children[old] = append(t.Children[old][:i], t.Children[old][i+1:]...)
			break
		}
	}
	t.Parent[v] = newParent
	t.Children[newParent] = append(t.Children[newParent], v)
	t.LinkDelay[v] = r.opts.DelayFn(v, newParent)
}

// Run performs local-search sweeps until no improving move exists or
// MaxRounds is hit, returning the number of applied moves.
func (r *Reorganizer) Run(rates []float64) int {
	t := r.t
	moves := 0
	for round := 0; round < r.opts.MaxRounds; round++ {
		improved := false
		flows := t.EdgeFlows(rates)
		for v := 0; v < t.NumNodes(); v++ {
			if v == t.Root {
				continue
			}
			parent := t.Parent[v]
			// Candidates: grandparent and siblings (local knowledge only,
			// as the optimizer module sees just its tree neighbours).
			var candidates []int
			if gp := t.Parent[parent]; gp != -1 {
				candidates = append(candidates, gp)
			}
			for _, sib := range t.Children[parent] {
				if sib != v {
					candidates = append(candidates, sib)
				}
			}
			bestGain := 1e-9
			bestParent := -1
			for _, u := range candidates {
				// A sibling inside v's subtree would create a cycle;
				// siblings never are (disjoint subtrees), grandparents
				// never are, so no descendant check is needed — but keep
				// it cheap and explicit for safety.
				if t.IsDescendant(v, u) {
					continue
				}
				if g := r.moveGain(v, u, flows); g > bestGain {
					bestGain, bestParent = g, u
				}
			}
			if bestParent >= 0 {
				r.apply(v, bestParent)
				flows = t.EdgeFlows(rates)
				improved = true
				moves++
			}
		}
		if !improved {
			break
		}
	}
	return moves
}
