package predicate

import (
	"fmt"
	"strconv"
	"strings"
)

// Interval is a (possibly half-open, possibly unbounded) numeric interval
// used to summarise the constraints a conjunction places on one term.
type Interval struct {
	HasLo, HasHi   bool
	Lo, Hi         float64
	LoOpen, HiOpen bool
}

// Universal returns the unconstrained interval (−∞, +∞).
func Universal() Interval { return Interval{} }

// PointI returns the degenerate interval [v, v].
func PointI(v float64) Interval {
	return Interval{HasLo: true, Lo: v, HasHi: true, Hi: v}
}

// AtLeast returns [v, +∞) or (v, +∞) when open.
func AtLeast(v float64, open bool) Interval {
	return Interval{HasLo: true, Lo: v, LoOpen: open}
}

// AtMost returns (−∞, v] or (−∞, v) when open.
func AtMost(v float64, open bool) Interval {
	return Interval{HasHi: true, Hi: v, HiOpen: open}
}

// Empty reports whether the interval contains no points.
func (iv Interval) Empty() bool {
	if !iv.HasLo || !iv.HasHi {
		return false
	}
	if iv.Lo > iv.Hi {
		return true
	}
	return iv.Lo == iv.Hi && (iv.LoOpen || iv.HiOpen)
}

// IsUniversal reports whether the interval is unbounded on both sides.
func (iv Interval) IsUniversal() bool { return !iv.HasLo && !iv.HasHi }

// IsPoint reports whether the interval is a single point, returning it.
func (iv Interval) IsPoint() (float64, bool) {
	if iv.HasLo && iv.HasHi && iv.Lo == iv.Hi && !iv.LoOpen && !iv.HiOpen {
		return iv.Lo, true
	}
	return 0, false
}

// Contains reports whether x lies in the interval.
func (iv Interval) Contains(x float64) bool {
	if iv.HasLo {
		if x < iv.Lo || (x == iv.Lo && iv.LoOpen) {
			return false
		}
	}
	if iv.HasHi {
		if x > iv.Hi || (x == iv.Hi && iv.HiOpen) {
			return false
		}
	}
	return true
}

// Intersect returns the intersection of two intervals.
func (iv Interval) Intersect(other Interval) Interval {
	out := iv
	if other.HasLo {
		if !out.HasLo || other.Lo > out.Lo || (other.Lo == out.Lo && other.LoOpen) {
			out.HasLo, out.Lo, out.LoOpen = true, other.Lo, other.LoOpen
		}
	}
	if other.HasHi {
		if !out.HasHi || other.Hi < out.Hi || (other.Hi == out.Hi && other.HiOpen) {
			out.HasHi, out.Hi, out.HiOpen = true, other.Hi, other.HiOpen
		}
	}
	return out
}

// Hull returns the smallest interval containing both inputs (the convex
// hull). This is the weakening used when composing representative-query
// predicates from group members.
func (iv Interval) Hull(other Interval) Interval {
	var out Interval
	if iv.HasLo && other.HasLo {
		out.HasLo = true
		switch {
		case iv.Lo < other.Lo:
			out.Lo, out.LoOpen = iv.Lo, iv.LoOpen
		case other.Lo < iv.Lo:
			out.Lo, out.LoOpen = other.Lo, other.LoOpen
		default:
			out.Lo, out.LoOpen = iv.Lo, iv.LoOpen && other.LoOpen
		}
	}
	if iv.HasHi && other.HasHi {
		out.HasHi = true
		switch {
		case iv.Hi > other.Hi:
			out.Hi, out.HiOpen = iv.Hi, iv.HiOpen
		case other.Hi > iv.Hi:
			out.Hi, out.HiOpen = other.Hi, other.HiOpen
		default:
			out.Hi, out.HiOpen = iv.Hi, iv.HiOpen && other.HiOpen
		}
	}
	return out
}

// ContainsInterval reports whether iv ⊇ other (every point of other lies in
// iv). The empty interval is contained in everything.
func (iv Interval) ContainsInterval(other Interval) bool {
	if other.Empty() {
		return true
	}
	if iv.Empty() {
		return false
	}
	if iv.HasLo {
		if !other.HasLo {
			return false
		}
		if other.Lo < iv.Lo {
			return false
		}
		if other.Lo == iv.Lo && iv.LoOpen && !other.LoOpen {
			return false
		}
	}
	if iv.HasHi {
		if !other.HasHi {
			return false
		}
		if other.Hi > iv.Hi {
			return false
		}
		if other.Hi == iv.Hi && iv.HiOpen && !other.HiOpen {
			return false
		}
	}
	return true
}

// Width returns the length of the interval clamped to the given domain
// span [dlo, dhi]; used for uniform-selectivity estimation. Returns the
// full span for unbounded intervals.
func (iv Interval) Width(dlo, dhi float64) float64 {
	lo, hi := dlo, dhi
	if iv.HasLo && iv.Lo > lo {
		lo = iv.Lo
	}
	if iv.HasHi && iv.Hi < hi {
		hi = iv.Hi
	}
	if hi < lo {
		return 0
	}
	return hi - lo
}

// String implements fmt.Stringer using standard interval notation.
func (iv Interval) String() string {
	var b strings.Builder
	if iv.LoOpen || !iv.HasLo {
		b.WriteByte('(')
	} else {
		b.WriteByte('[')
	}
	if iv.HasLo {
		b.WriteString(strconv.FormatFloat(iv.Lo, 'g', -1, 64))
	} else {
		b.WriteString("-inf")
	}
	b.WriteString(", ")
	if iv.HasHi {
		b.WriteString(strconv.FormatFloat(iv.Hi, 'g', -1, 64))
	} else {
		b.WriteString("+inf")
	}
	if iv.HiOpen || !iv.HasHi {
		b.WriteByte(')')
	} else {
		b.WriteByte(']')
	}
	return b.String()
}

// FromOp converts a single numeric comparison into an interval.
func FromOp(op Op, v float64) (Interval, bool) {
	switch op {
	case EQ:
		return PointI(v), true
	case LT:
		return AtMost(v, true), true
	case LE:
		return AtMost(v, false), true
	case GT:
		return AtLeast(v, true), true
	case GE:
		return AtLeast(v, false), true
	default:
		// NE is not an interval; handled via exclusion sets.
		return Universal(), false
	}
}

var _ fmt.Stringer = Interval{}
