// Livesystem: the full COSMOS stack on the concurrent transport. One
// goroutine per broker routes tuples through the content-based network
// while each processor's sharded execution runtime (4 workers here)
// runs the compiled plans and publishes results straight back into the
// network through per-worker clients — no outbox, no world-stop:
// results stream to the user proxies while ingestion continues.
// Quiesce appears exactly once, at the end, as the readout barrier.
//
// The synchronous system (examples/quickstart and friends) stays the
// deterministic reference: per query, this example's result counts are
// identical to a synchronous run over the same trace.
//
//	go run ./examples/livesystem
package main

import (
	"fmt"
	"log"
	"sync/atomic"
	"time"

	"cosmos"
)

const nTrades = 20_000

func main() {
	sys, err := cosmos.NewLiveSystem(cosmos.Options{
		Nodes:       32,
		Seed:        7,
		Processors:  2,
		Placement:   cosmos.RoundRobin,
		ExecWorkers: 4,
		IngestBatch: 16,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()

	trades := cosmos.MustSchema("Trades",
		cosmos.Field{Name: "symbol", Kind: cosmos.KindString},
		cosmos.Field{Name: "price", Kind: cosmos.KindFloat},
		cosmos.Field{Name: "size", Kind: cosmos.KindInt},
	)
	src, err := sys.RegisterStream(&cosmos.StreamInfo{Schema: trades, Rate: 1000}, 0)
	if err != nil {
		log.Fatal(err)
	}

	// Three continuous queries from users at different overlay nodes;
	// their callbacks run on the proxies' delivery goroutines, so the
	// counters are atomics.
	var counts [3]atomic.Int64
	queries := []string{
		"SELECT symbol, price FROM Trades [Now] WHERE price > 900",
		"SELECT symbol FROM Trades [Now] WHERE size >= 64",
		"SELECT symbol, COUNT(*) AS n FROM Trades [Range 1 Minute] GROUP BY symbol",
	}
	for i, q := range queries {
		i := i
		if _, err := sys.Submit(q, 5+i, func(cosmos.Tuple) { counts[i].Add(1) }); err != nil {
			log.Fatal(err)
		}
	}
	// The control plane (advertisements, subscription propagation) is
	// asynchronous on the live transport: settle it before traffic.
	sys.Quiesce()

	symbols := []string{"ACME", "GOPH", "INIT", "KRNL"}
	fmt.Printf("publishing %d trades through the live network...\n", nTrades)
	for i := 0; i < nTrades; i++ {
		err := src.Publish(cosmos.MustTuple(trades, cosmos.Timestamp(i),
			cosmos.String(symbols[i%len(symbols)]),
			cosmos.Float(float64(i%1000)+0.25),
			cosmos.Int(int64(i%128)),
		))
		if err != nil {
			log.Fatal(err)
		}
	}

	// Results flow with no barrier: wait (without quiescing anything)
	// until the proxies have seen some, to show the pipeline is live.
	for counts[0].Load()+counts[1].Load()+counts[2].Load() == 0 {
		time.Sleep(time.Millisecond)
	}
	fmt.Printf("results streaming to users before any barrier: %d and counting\n",
		counts[0].Load()+counts[1].Load()+counts[2].Load())

	// The only barrier in the program: stabilise so the readout is exact.
	sys.Quiesce()
	for i, q := range queries {
		fmt.Printf("q%d: %6d results  (%s)\n", i, counts[i].Load(), q)
	}
	fmt.Printf("data moved across overlay links: %d bytes\n", sys.TotalDataBytes())
}
