package spe

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"cosmos/internal/cql"
	"cosmos/internal/merge"
	"cosmos/internal/stream"
)

func catalog() *stream.Registry {
	r := stream.NewRegistry()
	infos := []*stream.Info{
		{Schema: stream.MustSchema("OpenAuction",
			stream.Field{Name: "itemID", Kind: stream.KindInt},
			stream.Field{Name: "sellerID", Kind: stream.KindInt},
			stream.Field{Name: "start_price", Kind: stream.KindFloat},
			stream.Field{Name: "timestamp", Kind: stream.KindTime},
		), Rate: 50},
		{Schema: stream.MustSchema("ClosedAuction",
			stream.Field{Name: "itemID", Kind: stream.KindInt},
			stream.Field{Name: "buyerID", Kind: stream.KindInt},
			stream.Field{Name: "timestamp", Kind: stream.KindTime},
		), Rate: 30},
		{Schema: stream.MustSchema("Sensor",
			stream.Field{Name: "station", Kind: stream.KindInt},
			stream.Field{Name: "temp", Kind: stream.KindFloat},
		), Rate: 10},
	}
	for _, in := range infos {
		if err := r.Register(in); err != nil {
			panic(err)
		}
	}
	return r
}

func bind(t *testing.T, text string) *cql.Bound {
	t.Helper()
	b, err := cql.AnalyzeString(text, catalog())
	if err != nil {
		t.Fatalf("%s: %v", text, err)
	}
	return b
}

func openTuple(ts stream.Timestamp, item, seller int64, price float64) stream.Tuple {
	sch, _ := catalog().Schema("OpenAuction")
	return stream.MustTuple(sch, ts, stream.Int(item), stream.Int(seller),
		stream.Float(price), stream.Time(ts))
}

func closedTuple(ts stream.Timestamp, item, buyer int64) stream.Tuple {
	sch, _ := catalog().Schema("ClosedAuction")
	return stream.MustTuple(sch, ts, stream.Int(item), stream.Int(buyer), stream.Time(ts))
}

func sensorTuple(ts stream.Timestamp, station int64, temp float64) stream.Tuple {
	sch, _ := catalog().Schema("Sensor")
	return stream.MustTuple(sch, ts, stream.Int(station), stream.Float(temp))
}

func TestSelectProjectSingleStream(t *testing.T) {
	b := bind(t, "SELECT itemID FROM OpenAuction [Now] WHERE start_price > 100")
	p, err := Compile("q", b, "res")
	if err != nil {
		t.Fatal(err)
	}
	out, err := p.Push(openTuple(1, 7, 1, 500))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 {
		t.Fatalf("out = %v", out)
	}
	if out[0].Schema.Stream != "res" || out[0].MustGet("OpenAuction.itemID").AsInt() != 7 {
		t.Errorf("result = %v", out[0])
	}
	out, _ = p.Push(openTuple(2, 8, 1, 50))
	if len(out) != 0 {
		t.Error("filtered tuple emitted")
	}
	// Tuples of foreign streams are ignored.
	out, err = p.Push(closedTuple(3, 7, 2))
	if err != nil || len(out) != 0 {
		t.Errorf("foreign tuple: %v, %v", out, err)
	}
}

func TestWindowJoinLemma1Boundaries(t *testing.T) {
	// Paper q1: auctions that closed within three hours of opening.
	b := bind(t, "SELECT O.itemID FROM OpenAuction [Range 3 Hour] O, ClosedAuction [Now] C WHERE O.itemID = C.itemID")
	p, err := Compile("q1", b, "res")
	if err != nil {
		t.Fatal(err)
	}
	h := stream.Timestamp(stream.Hour)
	if _, err := p.Push(openTuple(0, 1, 1, 10)); err != nil {
		t.Fatal(err)
	}
	// Close 2h later: joins.
	out, _ := p.Push(closedTuple(2*h, 1, 9))
	if len(out) != 1 {
		t.Fatalf("2h close: %v", out)
	}
	// Another open; close exactly at the 3h boundary from the first open
	// must still join the first open (boundary inclusive).
	if _, err := p.Push(openTuple(1*h, 2, 1, 10)); err != nil {
		t.Fatal(err)
	}
	out, _ = p.Push(closedTuple(3*h, 1, 9))
	if len(out) != 1 {
		t.Fatalf("3h boundary close: %v", out)
	}
	// 3h+1ms: the first open expired.
	out, _ = p.Push(closedTuple(3*h+1, 1, 9))
	if len(out) != 0 {
		t.Fatalf("expired open still joined: %v", out)
	}
	// Item 2 opened at 1h still joins at 3h+1.
	out, _ = p.Push(closedTuple(3*h+1, 2, 9))
	if len(out) != 1 {
		t.Fatalf("item 2: %v", out)
	}
}

func TestJoinPredicateMismatch(t *testing.T) {
	b := bind(t, "SELECT O.itemID FROM OpenAuction [Range 3 Hour] O, ClosedAuction [Now] C WHERE O.itemID = C.itemID")
	p, _ := Compile("q", b, "res")
	p.Push(openTuple(0, 1, 1, 10))
	out, _ := p.Push(closedTuple(1, 2, 9)) // different item
	if len(out) != 0 {
		t.Errorf("mismatched join emitted: %v", out)
	}
}

func TestJoinResultSchemaAndTimestamp(t *testing.T) {
	b := bind(t, "SELECT O.itemID, C.buyerID FROM OpenAuction [Range 1 Hour] O, ClosedAuction [Now] C WHERE O.itemID = C.itemID")
	p, _ := Compile("q", b, "res")
	p.Push(openTuple(100, 1, 1, 10))
	out, _ := p.Push(closedTuple(200, 1, 42))
	if len(out) != 1 {
		t.Fatal("no join")
	}
	r := out[0]
	if r.Ts != 200 {
		t.Errorf("result ts = %d, want max input ts", r.Ts)
	}
	if r.MustGet("ClosedAuction.buyerID").AsInt() != 42 {
		t.Errorf("result = %v", r)
	}
}

func TestResidualPredicateApplied(t *testing.T) {
	b := bind(t, `SELECT O.itemID FROM OpenAuction [Range 1 Hour] O, ClosedAuction [Now] C
		WHERE O.itemID = C.itemID AND (O.start_price > 100 OR C.buyerID = 7)`)
	p, _ := Compile("q", b, "res")
	p.Push(openTuple(0, 1, 1, 50)) // cheap
	out, _ := p.Push(closedTuple(1, 1, 7))
	if len(out) != 1 {
		t.Fatalf("buyer 7 disjunct should pass: %v", out)
	}
	out, _ = p.Push(closedTuple(2, 1, 8))
	if len(out) != 0 {
		t.Errorf("neither disjunct holds: %v", out)
	}
}

func TestSelfJoin(t *testing.T) {
	b := bind(t, `SELECT a.itemID FROM OpenAuction [Range 1 Hour] a, OpenAuction [Range 1 Hour] b
		WHERE a.itemID = b.itemID AND a.sellerID - b.sellerID >= 1`)
	p, err := Compile("q", b, "res")
	if err != nil {
		t.Fatal(err)
	}
	p.Push(openTuple(0, 1, 5, 10))
	out, err := p.Push(openTuple(1, 1, 3, 10))
	if err != nil {
		t.Fatal(err)
	}
	// The new tuple is pushed into both aliases; combination (a=old
	// seller 5, b=new seller 3) satisfies 5-3 >= 1; the mirror does not.
	// The self-pairing of the new tuple with itself (5-5) also fails.
	if len(out) != 1 {
		t.Fatalf("self join results = %v", out)
	}
}

func TestAggregateCountAvgWindow(t *testing.T) {
	b := bind(t, "SELECT station, COUNT(*), AVG(temp) FROM Sensor [Range 10 Second] GROUP BY station")
	p, err := Compile("agg", b, "res")
	if err != nil {
		t.Fatal(err)
	}
	s := stream.Timestamp(stream.Second)
	out, _ := p.Push(sensorTuple(0, 1, 10))
	if n := out[0].MustGet("COUNT(*)").AsInt(); n != 1 {
		t.Errorf("count = %d", n)
	}
	out, _ = p.Push(sensorTuple(5*s, 1, 20))
	if n := out[0].MustGet("COUNT(*)").AsInt(); n != 2 {
		t.Errorf("count = %d", n)
	}
	if avg := out[0].MustGet("AVG(Sensor.temp)").AsFloat(); avg != 15 {
		t.Errorf("avg = %f", avg)
	}
	// Different station: separate group.
	out, _ = p.Push(sensorTuple(6*s, 2, 99))
	if n := out[0].MustGet("COUNT(*)").AsInt(); n != 1 {
		t.Errorf("station 2 count = %d", n)
	}
	// After 11s the first tuple left the window.
	out, _ = p.Push(sensorTuple(11*s, 1, 30))
	if n := out[0].MustGet("COUNT(*)").AsInt(); n != 2 {
		t.Errorf("count after eviction = %d", n)
	}
	if avg := out[0].MustGet("AVG(Sensor.temp)").AsFloat(); avg != 25 {
		t.Errorf("avg after eviction = %f", avg)
	}
}

func TestAggregateMinMaxSum(t *testing.T) {
	b := bind(t, "SELECT MIN(temp), MAX(temp), SUM(temp) FROM Sensor [Range 1 Minute]")
	p, err := Compile("agg", b, "res")
	if err != nil {
		t.Fatal(err)
	}
	p.Push(sensorTuple(0, 1, 10))
	p.Push(sensorTuple(1, 1, -5))
	out, _ := p.Push(sensorTuple(2, 1, 7))
	r := out[0]
	if r.MustGet("MIN(Sensor.temp)").AsFloat() != -5 {
		t.Errorf("min = %v", r)
	}
	if r.MustGet("MAX(Sensor.temp)").AsFloat() != 10 {
		t.Errorf("max = %v", r)
	}
	if r.MustGet("SUM(Sensor.temp)").AsFloat() != 12 {
		t.Errorf("sum = %v", r)
	}
}

func TestAggregateOverJoinUnsupported(t *testing.T) {
	b := bind(t, `SELECT COUNT(*) FROM OpenAuction [Now] O, ClosedAuction [Now] C WHERE O.itemID = C.itemID`)
	if _, err := Compile("q", b, "res"); err == nil {
		t.Error("aggregate over join should be rejected at compile time")
	}
}

func TestEngineDispatchAndReplace(t *testing.T) {
	var emitted []stream.Tuple
	e := NewEngine(func(t stream.Tuple) { emitted = append(emitted, t) })
	b1 := bind(t, "SELECT itemID FROM OpenAuction [Now] WHERE start_price > 100")
	b2 := bind(t, "SELECT itemID FROM OpenAuction [Now]")
	if _, err := e.Install("q1", b1, "r1"); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Install("q2", b2, "r2"); err != nil {
		t.Fatal(err)
	}
	if err := e.Consume(openTuple(1, 7, 1, 500)); err != nil {
		t.Fatal(err)
	}
	if len(emitted) != 2 {
		t.Fatalf("emitted = %d", len(emitted))
	}
	// Replace q1 with a narrower plan; old state is dropped.
	if _, err := e.Install("q1", bind(t, "SELECT itemID FROM OpenAuction [Now] WHERE start_price > 1000"), "r1"); err != nil {
		t.Fatal(err)
	}
	emitted = nil
	e.Consume(openTuple(2, 7, 1, 500))
	if len(emitted) != 1 || emitted[0].Schema.Stream != "r2" {
		t.Fatalf("after replace: %v", emitted)
	}
	e.Remove("q2")
	emitted = nil
	e.Consume(openTuple(3, 7, 1, 2000))
	if len(emitted) != 1 || emitted[0].Schema.Stream != "r1" {
		t.Fatalf("after remove: %v", emitted)
	}
	if got := e.Plans(); len(got) != 1 || got[0] != "q1" {
		t.Errorf("plans = %v", got)
	}
}

func TestEngineRunPipeline(t *testing.T) {
	var emitted []stream.Tuple
	e := NewEngine(func(t stream.Tuple) { emitted = append(emitted, t) })
	if _, err := e.Install("q", bind(t, "SELECT itemID FROM OpenAuction [Now]"), "r"); err != nil {
		t.Fatal(err)
	}
	in := make(chan stream.Tuple, 8)
	errs := make(chan error, 1)
	go e.Run(in, errs)
	for i := 0; i < 5; i++ {
		in <- openTuple(stream.Timestamp(i), int64(i), 1, 10)
	}
	close(in)
	if err := <-errs; err != nil {
		t.Fatal(err)
	}
	if len(emitted) != 5 {
		t.Errorf("pipeline emitted %d", len(emitted))
	}
}

// TestMergedExecutionEquivalence is the keystone integration test of the
// paper's technique: executing the representative query and splitting its
// result stream with the members' re-tightening profiles yields EXACTLY
// the tuples each member query produces when executed directly.
func TestMergedExecutionEquivalence(t *testing.T) {
	q1 := bind(t, `SELECT O.* FROM OpenAuction [Range 3 Hour] O, ClosedAuction [Now] C WHERE O.itemID = C.itemID`)
	q2 := bind(t, `SELECT O.itemID, O.timestamp, C.buyerID, C.timestamp FROM OpenAuction [Range 5 Hour] O, ClosedAuction [Now] C WHERE O.itemID = C.itemID`)
	rep, err := merge.Queries(q1, q2, merge.ExactUnion)
	if err != nil {
		t.Fatal(err)
	}

	p1, err := Compile("q1", q1, "r1")
	if err != nil {
		t.Fatal(err)
	}
	p2, err := Compile("q2", q2, "r2")
	if err != nil {
		t.Fatal(err)
	}
	prep, err := Compile("rep", rep, "rep-res")
	if err != nil {
		t.Fatal(err)
	}
	prof1, err := merge.BuildMemberProfile(q1, rep, "rep-res")
	if err != nil {
		t.Fatal(err)
	}
	prof2, err := merge.BuildMemberProfile(q2, rep, "rep-res")
	if err != nil {
		t.Fatal(err)
	}

	// Deterministic random workload: auctions open and close over 8h.
	r := rand.New(rand.NewSource(2024))
	h := int64(stream.Hour)
	type ev struct {
		open  bool
		ts    stream.Timestamp
		item  int64
		extra int64
	}
	var evs []ev
	for item := int64(0); item < 120; item++ {
		openTs := stream.Timestamp(r.Int63n(8 * h))
		closeTs := openTs + stream.Timestamp(r.Int63n(7*h))
		evs = append(evs, ev{open: true, ts: openTs, item: item, extra: r.Int63n(50)})
		evs = append(evs, ev{open: false, ts: closeTs, item: item, extra: r.Int63n(900)})
	}
	sort.Slice(evs, func(i, j int) bool { return evs[i].ts < evs[j].ts })

	direct1 := map[string]int{}
	direct2 := map[string]int{}
	split1 := map[string]int{}
	split2 := map[string]int{}

	keyFor := func(tp stream.Tuple, cols []cql.ColRef) string {
		s := fmt.Sprintf("@%d", tp.Ts)
		for _, c := range cols {
			s += "|" + tp.MustGet(c.String()).String()
		}
		return s
	}

	for _, e := range evs {
		var tp stream.Tuple
		if e.open {
			tp = openTuple(e.ts, e.item, e.extra, float64(e.extra)*3)
		} else {
			tp = closedTuple(e.ts, e.item, e.extra)
		}
		out1, err := p1.Push(tp)
		if err != nil {
			t.Fatal(err)
		}
		for _, o := range out1 {
			direct1[keyFor(o, q1.SelectCols)]++
		}
		out2, err := p2.Push(tp)
		if err != nil {
			t.Fatal(err)
		}
		for _, o := range out2 {
			direct2[keyFor(o, q2.SelectCols)]++
		}
		outR, err := prep.Push(tp)
		if err != nil {
			t.Fatal(err)
		}
		for _, o := range outR {
			if ok, err := prof1.Covers(o); err != nil {
				t.Fatal(err)
			} else if ok {
				split1[keyFor(o, q1.SelectCols)]++
			}
			if ok, err := prof2.Covers(o); err != nil {
				t.Fatal(err)
			} else if ok {
				split2[keyFor(o, q2.SelectCols)]++
			}
		}
	}

	if len(direct1) == 0 || len(direct2) == 0 {
		t.Fatal("workload produced no results; test is vacuous")
	}
	compare := func(name string, direct, split map[string]int) {
		for k, n := range direct {
			if split[k] != n {
				t.Errorf("%s: key %s direct=%d split=%d", name, k, n, split[k])
			}
		}
		for k, n := range split {
			if direct[k] != n {
				t.Errorf("%s: key %s split=%d direct=%d (spurious)", name, k, n, direct[k])
			}
		}
	}
	compare("q1", direct1, split1)
	compare("q2", direct2, split2)
}

func TestWindowEvictionBoundsMemory(t *testing.T) {
	b := bind(t, "SELECT O.itemID FROM OpenAuction [Range 1 Second] O, ClosedAuction [Now] C WHERE O.itemID = C.itemID")
	p, _ := Compile("q", b, "res")
	for i := 0; i < 10000; i++ {
		p.Push(openTuple(stream.Timestamp(i*10), int64(i), 1, 10))
	}
	// 1-second window over 10ms-spaced tuples keeps ~100 tuples.
	in := p.byAlias["OpenAuction"]
	if n := len(in.live()); n > 150 {
		t.Errorf("live window grew to %d", n)
	}
	// Head-index eviction may retain a dead prefix, but compaction
	// bounds the backing buffer to roughly twice the live window.
	if n := len(in.buf); n > 2*150+compactMinHead {
		t.Errorf("backing buffer grew to %d (head %d)", n, in.head)
	}
}
