package profile

import (
	"cosmos/internal/predicate"
	"cosmos/internal/stream"
)

// CompiledStream is the compiled per-stream view of a profile against one
// schema: the filter with attribute references pre-resolved to column
// indices, and the projection as an index list. It is immutable and safe
// for concurrent use; CBN brokers install these in their lock-free
// routing tables.
type CompiledStream struct {
	// Match is the compiled filter; nil means TRUE (no filter, or a
	// trivially true one).
	Match *predicate.Compiled
	// ProjIdx lists the source column of each projected attribute; nil
	// means identity (all attributes).
	ProjIdx []int
	// ProjSchema is the schema of projected tuples; nil when ProjIdx is.
	ProjSchema *stream.Schema
}

// Covers evaluates the compiled filter against a tuple's values; the
// values must conform to the schema the view was compiled for.
//
//cosmos:hotpath
func (cs *CompiledStream) Covers(vals []stream.Value, ts stream.Timestamp) bool {
	return cs.Match == nil || cs.Match.EvalValues(vals, ts)
}

// Apply projects a covered tuple per the compiled projection.
//
//cosmos:hotpath
func (cs *CompiledStream) Apply(t stream.Tuple) stream.Tuple {
	if cs.ProjIdx == nil {
		return t
	}
	return t.ProjectIdx(cs.ProjIdx, cs.ProjSchema)
}

// CompileFor compiles the profile's interest in one stream against that
// stream's schema. It returns (nil, nil) when the profile does not
// request the stream — a compiled router then simply has no route — and
// an error whenever the interpreted path (Covers + Project) could error
// at runtime for tuples of this schema, in which case callers must stay
// on the interpreted path.
func (p *Profile) CompileFor(s *stream.Schema) (*CompiledStream, error) {
	if s == nil || !p.hasStream(s.Stream) {
		return nil, nil
	}
	cs := &CompiledStream{}
	if f, ok := p.Filters[s.Stream]; ok && !f.IsTrue() {
		m, err := predicate.Compile(f, s)
		if err != nil {
			return nil, err
		}
		cs.Match = m
	}
	if attrs, ok := p.Attrs[s.Stream]; ok && attrs != nil {
		proj, idx, err := s.ProjectIdx(attrs)
		if err != nil {
			return nil, err
		}
		// A projection selecting every column in source order is the
		// identity: leave ProjIdx nil so Apply forwards tuples without
		// copying. Downstream hops of an already-narrowed stream hit
		// this on every tuple.
		if !identityIdx(idx, s.Arity()) {
			cs.ProjSchema, cs.ProjIdx = proj, idx
		}
	}
	return cs, nil
}

// identityIdx reports whether idx is exactly [0, 1, ..., arity-1].
//
//cosmos:hotpath
func identityIdx(idx []int, arity int) bool {
	if len(idx) != arity {
		return false
	}
	for i, j := range idx {
		if i != j {
			return false
		}
	}
	return true
}
