package spe

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"cosmos/internal/containment"
	"cosmos/internal/cql"
	"cosmos/internal/stream"
)

// TestContainmentEmpirical cross-validates the containment decision
// procedure (Theorems 1–2) against actual execution: whenever
// containment.Contains(q1, q2) answers true for randomly generated
// window-join queries, every result of q1 on a random workload must
// appear among q2's results (projected to q1's columns) at the same
// timestamp — Definition 1 of the paper, checked operationally.
func TestContainmentEmpirical(t *testing.T) {
	reg := catalog()
	r := rand.New(rand.NewSource(31))

	windows := []string{"[Now]", "[Range 1 Hour]", "[Range 2 Hour]", "[Range 4 Hour]"}
	projections := []string{
		"O.itemID",
		"O.itemID, C.buyerID",
		"O.itemID, O.start_price, C.buyerID",
	}
	genJoin := func() string {
		w := windows[r.Intn(len(windows))]
		proj := projections[r.Intn(len(projections))]
		pred := ""
		if r.Intn(2) == 0 {
			pred = fmt.Sprintf(" AND O.start_price > %d", r.Intn(500))
		}
		return fmt.Sprintf(
			"SELECT %s FROM OpenAuction %s O, ClosedAuction [Now] C WHERE O.itemID = C.itemID%s",
			proj, w, pred)
	}

	// A shared random workload.
	type evT struct {
		open bool
		tp   stream.Tuple
	}
	openSchema, _ := reg.Schema("OpenAuction")
	closedSchema, _ := reg.Schema("ClosedAuction")
	h := int64(stream.Hour)
	var events []evT
	for item := int64(0); item < 60; item++ {
		openTs := stream.Timestamp(r.Int63n(6 * h))
		closeTs := openTs + stream.Timestamp(r.Int63n(5*h))
		events = append(events, evT{true, stream.MustTuple(openSchema, openTs,
			stream.Int(item), stream.Int(r.Int63n(40)), stream.Float(float64(r.Intn(1000))), stream.Time(openTs))})
		events = append(events, evT{false, stream.MustTuple(closedSchema, closeTs,
			stream.Int(item), stream.Int(r.Int63n(500)), stream.Time(closeTs))})
	}
	sort.SliceStable(events, func(i, j int) bool { return events[i].tp.Ts < events[j].tp.Ts })

	// projectRun executes a query and keys its results by timestamp plus
	// the given columns.
	projectRun := func(b *cql.Bound, cols []cql.ColRef) map[string]int {
		plan, err := Compile("exec", b, "r")
		if err != nil {
			t.Fatal(err)
		}
		out := map[string]int{}
		for _, e := range events {
			res, err := plan.Push(e.tp)
			if err != nil {
				t.Fatal(err)
			}
			for _, tp := range res {
				key := fmt.Sprintf("@%d", tp.Ts)
				for _, c := range cols {
					key += "|" + tp.MustGet(c.String()).String()
				}
				out[key]++
			}
		}
		return out
	}

	positives := 0
	for trial := 0; trial < 120; trial++ {
		q1, err := cql.AnalyzeString(genJoin(), reg)
		if err != nil {
			t.Fatal(err)
		}
		q2, err := cql.AnalyzeString(genJoin(), reg)
		if err != nil {
			t.Fatal(err)
		}
		if !containment.Contains(q1, q2) {
			continue
		}
		positives++
		// Compare both result sets keyed by timestamp + q1's columns:
		// every q1 result must appear in q2's results at least as often.
		r2Proj := projectRun(q2, q1.SelectCols)
		r1Proj := projectRun(q1, q1.SelectCols)
		for k, n := range r1Proj {
			if r2Proj[k] < n {
				t.Fatalf("containment violated:\n q1=%s\n q2=%s\n key %s: q1 has %d, q2 has %d",
					q1.Raw, q2.Raw, k, n, r2Proj[k])
			}
		}
	}
	if positives < 10 {
		t.Fatalf("only %d positive containment pairs; test too weak", positives)
	}
}
