package obs

import (
	"fmt"
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// The histogram is log-linear (the HdrHistogram / Hazelcast Jet shape):
// one octave per power of two, histSubCount linear sub-buckets per
// octave. Values below histSubCount land in exact unit buckets; above,
// a bucket spans 2^e values where e grows with the octave, so the
// relative quantile error is bounded by 1/histSubCount (~3.1%) at any
// magnitude. With 32 sub-buckets the full int64 nanosecond range needs
// 1920 buckets (~15 KiB of counters) — small enough to embed one
// histogram per stage and per plan.
const (
	histSubBits  = 5
	histSubCount = 1 << histSubBits // 32 linear sub-buckets per octave
	histBuckets  = (64 - histSubBits) * histSubCount
)

// bucketIndex maps a value to its bucket. Negative values clamp to 0.
//
//cosmos:hotpath
func bucketIndex(v int64) int {
	if v < 0 {
		v = 0
	}
	u := uint64(v)
	if u < histSubCount {
		return int(u)
	}
	e := uint(bits.Len64(u)) - 1 - histSubBits // octave shift, ≥ 0
	return int((uint64(e+1))<<histSubBits | (u>>e)&(histSubCount-1))
}

// BucketLow returns the smallest value mapping to bucket i (the
// inclusive lower edge).
func BucketLow(i int) int64 {
	if i < 2*histSubCount {
		return int64(i)
	}
	e := uint(i>>histSubBits) - 1
	sub := int64(i & (histSubCount - 1))
	return (histSubCount + sub) << e
}

// bucketMid is the representative value reported for bucket i: the
// midpoint of [BucketLow(i), BucketLow(i+1)).
func bucketMid(i int) int64 {
	lo := BucketLow(i)
	if i+1 >= histBuckets {
		return lo
	}
	return lo + (BucketLow(i+1)-lo-1)/2
}

// Histogram is a fixed-bucket log-linear latency histogram safe for
// concurrent use. Observe is lock-free and allocation-free; Snapshot
// produces a mergeable copy for quantile queries. The zero value is
// ready to use.
type Histogram struct {
	counts [histBuckets]atomic.Uint64
	count  atomic.Uint64
	sum    atomic.Int64
	max    atomic.Int64
}

// Observe records one value (nanoseconds by convention). 0 allocs,
// no locks: three atomic adds plus a max CAS that rarely retries.
//
//cosmos:hotpath
func (h *Histogram) Observe(v int64) {
	h.counts[bucketIndex(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		old := h.max.Load()
		if v <= old || h.max.CompareAndSwap(old, v) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Snapshot copies the histogram state. Concurrent Observes may or may
// not be included (the cut is not atomic across buckets), which is fine
// for monitoring: totals are eventually consistent and never regress.
func (h *Histogram) Snapshot() HistSnapshot {
	s := HistSnapshot{
		Count: h.count.Load(),
		Sum:   h.sum.Load(),
		Max:   h.max.Load(),
	}
	hi := -1
	var counts [histBuckets]uint64
	for i := range h.counts {
		if c := h.counts[i].Load(); c != 0 {
			counts[i] = c
			hi = i
		}
	}
	if hi >= 0 {
		s.Counts = append([]uint64(nil), counts[:hi+1]...)
	}
	return s
}

// HistSnapshot is a point-in-time copy of a Histogram: plain data,
// gob/json-encodable, mergeable. Counts is dense from bucket 0 and
// trimmed at the highest non-empty bucket.
type HistSnapshot struct {
	Counts []uint64
	Count  uint64
	Sum    int64
	Max    int64
}

// Merge folds o into s (s grows to cover o's buckets).
func (s *HistSnapshot) Merge(o HistSnapshot) {
	if len(o.Counts) > len(s.Counts) {
		s.Counts = append(s.Counts, make([]uint64, len(o.Counts)-len(s.Counts))...)
	}
	for i, c := range o.Counts {
		s.Counts[i] += c
	}
	s.Count += o.Count
	s.Sum += o.Sum
	if o.Max > s.Max {
		s.Max = o.Max
	}
}

// Quantile returns the value at quantile q (0 ≤ q ≤ 1) with relative
// error bounded by 1/32. Returns 0 for an empty snapshot; q=1 returns
// the exact observed maximum.
func (s HistSnapshot) Quantile(q float64) int64 {
	if s.Count == 0 {
		return 0
	}
	if q >= 1 {
		return s.Max
	}
	if q < 0 {
		q = 0
	}
	rank := uint64(math.Ceil(q * float64(s.Count)))
	if rank < 1 {
		rank = 1
	}
	var cum uint64
	for i, c := range s.Counts {
		cum += c
		if cum >= rank {
			return bucketMid(i)
		}
	}
	return s.Max
}

// Mean returns the exact mean of the observations (Sum is exact, not
// bucketed).
func (s HistSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// String renders the classic monitoring line: count and p50/p99/p99.99
// as durations.
func (s HistSnapshot) String() string {
	return fmt.Sprintf("n=%d p50=%v p99=%v p99.99=%v max=%v",
		s.Count,
		time.Duration(s.Quantile(0.50)),
		time.Duration(s.Quantile(0.99)),
		time.Duration(s.Quantile(0.9999)),
		time.Duration(s.Max))
}
