// Package snap seeds one violation per atomicsnap rule; the analyzer
// must catch every one (see the // want expectations).
package snap

import "sync/atomic"

type entry struct{ hits int64 }

type table struct {
	count   int64
	index   map[string]int
	entries []*entry
}

type holder struct {
	tbl atomic.Pointer[table]
}

func directWrite(h *holder) {
	t := h.tbl.Load()
	t.count = 1 // want "field write through atomic.Pointer snapshot"
}

func writeViaLoadExpr(h *holder) {
	h.tbl.Load().count = 2 // want "field write through atomic.Pointer snapshot"
}

func mapWrite(h *holder) {
	t := h.tbl.Load()
	t.index["x"] = 3 // want "element write through atomic.Pointer snapshot"
}

func derivedWrite(h *holder) {
	t := h.tbl.Load()
	e := t.entries[0]
	e.hits = 4 // want "field write through atomic.Pointer snapshot"
}

func rangeWrite(h *holder) {
	t := h.tbl.Load()
	for _, e := range t.entries {
		e.hits++ // want "field write through atomic.Pointer snapshot"
	}
}

func incDec(h *holder) {
	t := h.tbl.Load()
	t.count++ // want "field write through atomic.Pointer snapshot"
}

func closureWrite(h *holder) func() {
	t := h.tbl.Load()
	return func() {
		t.count = 5 // want "field write through atomic.Pointer snapshot"
	}
}

func ignoredWithReason(h *holder) {
	t := h.tbl.Load()
	// Deliberate single-writer mutation, documented for the audit.
	//lint:ignore atomicsnap hit counters are per-reader padded cells, racing by design
	t.count = 6
}
