package cql

import (
	"strings"
	"testing"

	"cosmos/internal/predicate"
	"cosmos/internal/stream"
)

func TestBoundCloneIndependence(t *testing.T) {
	cat := paperCatalog()
	b, err := AnalyzeString(q1Text, cat)
	if err != nil {
		t.Fatal(err)
	}
	c := b.Clone()
	// Mutate the clone's predicate structures and windows.
	c.Sel["OpenAuction"] = predicate.DNF{
		{predicate.C("start_price", predicate.GT, stream.Float(1))},
	}
	c.Windows["OpenAuction"] = stream.Now
	c.From[0].Window = stream.Now
	c.SelectCols = c.SelectCols[:1]
	if b.Sel["OpenAuction"].String() == c.Sel["OpenAuction"].String() {
		t.Error("clone shares Sel")
	}
	if b.Windows["OpenAuction"] != 3*stream.Hour {
		t.Error("clone mutation leaked into Windows")
	}
	if b.From[0].Window != 3*stream.Hour {
		t.Error("clone mutation leaked into From")
	}
	if len(b.SelectCols) == 1 {
		t.Error("clone shares SelectCols backing array semantics")
	}
}

func TestSynthesizeCQLStringsAndBools(t *testing.T) {
	cat := stream.NewRegistry()
	if err := cat.Register(&stream.Info{Schema: stream.MustSchema("Log",
		stream.Field{Name: "level", Kind: stream.KindString},
		stream.Field{Name: "ok", Kind: stream.KindBool},
		stream.Field{Name: "latency", Kind: stream.KindFloat},
	), Rate: 1}); err != nil {
		t.Fatal(err)
	}
	b, err := AnalyzeString(
		"SELECT latency FROM Log [Range 1 Minute] WHERE level = 'err''or' AND ok = FALSE AND latency >= 1.5", cat)
	if err != nil {
		t.Fatal(err)
	}
	text := b.SynthesizeCQL()
	for _, want := range []string{"'err''or'", "FALSE", "1.5"} {
		if !strings.Contains(text, want) {
			t.Errorf("synthesized %q lacks %q", text, want)
		}
	}
	// The synthesized text must reparse and re-bind.
	if _, err := AnalyzeString(text, cat); err != nil {
		t.Fatalf("reparse failed: %v\n%s", err, text)
	}
}

func TestSynthesizeCQLAggregates(t *testing.T) {
	cat := paperCatalog()
	b, err := AnalyzeString(
		"SELECT sellerID, COUNT(*), AVG(start_price) AS ap FROM OpenAuction [Range 1 Hour] GROUP BY sellerID", cat)
	if err != nil {
		t.Fatal(err)
	}
	text := b.SynthesizeCQL()
	if !strings.Contains(text, "COUNT(*)") || !strings.Contains(text, "AS ap") {
		t.Errorf("synthesized = %s", text)
	}
	if !strings.Contains(text, "GROUP BY OpenAuction.sellerID") {
		t.Errorf("group by missing: %s", text)
	}
	if _, err := AnalyzeString(text, cat); err != nil {
		t.Fatalf("reparse failed: %v\n%s", err, text)
	}
}

func TestInputTsAttr(t *testing.T) {
	if InputTsAttr("O") != "O.__ts" {
		t.Errorf("InputTsAttr = %s", InputTsAttr("O"))
	}
}
