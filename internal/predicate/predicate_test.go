package predicate

import (
	"math/rand"
	"testing"
	"testing/quick"

	"cosmos/internal/stream"
)

var testSch = stream.MustSchema("R",
	stream.Field{Name: "x", Kind: stream.KindInt},
	stream.Field{Name: "y", Kind: stream.KindInt},
	stream.Field{Name: "s", Kind: stream.KindString},
)

func tup(t *testing.T, x, y int64, s string) stream.Tuple {
	t.Helper()
	return stream.MustTuple(testSch, 0, stream.Int(x), stream.Int(y), stream.String_(s))
}

func TestOpHolds(t *testing.T) {
	cases := []struct {
		op   Op
		cmp  int
		want bool
	}{
		{EQ, 0, true}, {EQ, 1, false},
		{NE, 0, false}, {NE, -1, true},
		{LT, -1, true}, {LT, 0, false},
		{LE, 0, true}, {LE, 1, false},
		{GT, 1, true}, {GT, 0, false},
		{GE, 0, true}, {GE, -1, false},
	}
	for _, c := range cases {
		if got := c.op.Holds(c.cmp); got != c.want {
			t.Errorf("%s.Holds(%d) = %v", c.op, c.cmp, got)
		}
	}
}

func TestOpNegateFlip(t *testing.T) {
	for _, op := range []Op{EQ, NE, LT, LE, GT, GE} {
		if op.Negate().Negate() != op {
			t.Errorf("double negate of %s", op)
		}
		if op.Flip().Flip() != op {
			t.Errorf("double flip of %s", op)
		}
	}
	// Negation is complementary on every comparison outcome.
	for _, op := range []Op{EQ, NE, LT, LE, GT, GE} {
		for _, cmp := range []int{-1, 0, 1} {
			if op.Holds(cmp) == op.Negate().Holds(cmp) {
				t.Errorf("%s and its negation agree on %d", op, cmp)
			}
		}
	}
	// Flip mirrors the comparison: a op b == b flip(op) a.
	for _, op := range []Op{EQ, NE, LT, LE, GT, GE} {
		for _, cmp := range []int{-1, 0, 1} {
			if op.Holds(cmp) != op.Flip().Holds(-cmp) {
				t.Errorf("flip of %s wrong on %d", op, cmp)
			}
		}
	}
}

func TestTermResolve(t *testing.T) {
	tp := tup(t, 7, 3, "a")
	v, err := Attr("x").Resolve(tp)
	if err != nil || v.AsInt() != 7 {
		t.Fatalf("attr resolve = %v, %v", v, err)
	}
	v, err = Diff("x", "y").Resolve(tp)
	if err != nil || v.AsInt() != 4 {
		t.Fatalf("diff resolve = %v, %v", v, err)
	}
	if _, err := Attr("z").Resolve(tp); err == nil {
		t.Error("missing attr should error")
	}
	if _, err := Diff("x", "z").Resolve(tp); err == nil {
		t.Error("missing diff attr should error")
	}
	if _, err := Diff("x", "s").Resolve(tp); err == nil {
		t.Error("subtracting a string should error")
	}
}

func TestConstraintEval(t *testing.T) {
	tp := tup(t, 11, 2, "go")
	cases := []struct {
		c    Constraint
		want bool
	}{
		{C("x", GT, stream.Int(10)), true},
		{C("x", GT, stream.Int(11)), false},
		{C("x", LE, stream.Int(11)), true},
		{C("s", EQ, stream.String_("go")), true},
		{C("s", NE, stream.String_("go")), false},
		{Constraint{Term: Diff("x", "y"), Op: EQ, Const: stream.Int(9)}, true},
		{Constraint{Term: Diff("x", "y"), Op: LT, Const: stream.Int(9)}, false},
	}
	for _, c := range cases {
		got, err := c.c.Eval(tp)
		if err != nil {
			t.Fatalf("%s: %v", c.c, err)
		}
		if got != c.want {
			t.Errorf("%s on %v = %v, want %v", c.c, tp, got, c.want)
		}
	}
	if _, err := C("x", EQ, stream.String_("oops")).Eval(tp); err == nil {
		t.Error("kind mismatch should error")
	}
}

func TestConjEvalAndAttrs(t *testing.T) {
	cj := Conj{C("x", GT, stream.Int(5)), C("y", LT, stream.Int(10))}
	ok, err := cj.Eval(tup(t, 6, 3, ""))
	if err != nil || !ok {
		t.Fatalf("eval = %v, %v", ok, err)
	}
	ok, _ = cj.Eval(tup(t, 4, 3, ""))
	if ok {
		t.Error("x=4 should fail x>5")
	}
	attrs := cj.Attrs()
	if len(attrs) != 2 || attrs[0] != "x" || attrs[1] != "y" {
		t.Errorf("attrs = %v", attrs)
	}
	if (Conj{}).String() != "TRUE" {
		t.Error("empty conj should print TRUE")
	}
	// Empty conjunction accepts everything.
	if ok, _ := (Conj{}).Eval(tup(t, 0, 0, "")); !ok {
		t.Error("empty conj must accept")
	}
}

func TestSatisfiable(t *testing.T) {
	cases := []struct {
		cj   Conj
		want bool
	}{
		{Conj{}, true},
		{Conj{C("x", GT, stream.Int(5)), C("x", LT, stream.Int(3))}, false},
		{Conj{C("x", GT, stream.Int(5)), C("x", LT, stream.Int(7))}, true},
		{Conj{C("x", GE, stream.Int(5)), C("x", LE, stream.Int(5))}, true},
		{Conj{C("x", GT, stream.Int(5)), C("x", LE, stream.Int(5))}, false},
		{Conj{C("x", EQ, stream.Int(5)), C("x", NE, stream.Int(5))}, false},
		{Conj{C("x", EQ, stream.Int(5)), C("x", NE, stream.Int(6))}, true},
		{Conj{C("s", EQ, stream.String_("a")), C("s", EQ, stream.String_("b"))}, false},
		{Conj{C("s", EQ, stream.String_("a")), C("s", NE, stream.String_("a"))}, false},
		{Conj{C("s", EQ, stream.String_("a")), C("s", NE, stream.String_("b"))}, true},
	}
	for _, c := range cases {
		if got := c.cj.Satisfiable(); got != c.want {
			t.Errorf("Satisfiable(%s) = %v, want %v", c.cj, got, c.want)
		}
	}
}

func TestImpliesDirected(t *testing.T) {
	cases := []struct {
		a, b Conj
		want bool
	}{
		// Tighter range implies looser range.
		{Conj{C("x", GT, stream.Int(10))}, Conj{C("x", GT, stream.Int(5))}, true},
		{Conj{C("x", GT, stream.Int(5))}, Conj{C("x", GT, stream.Int(10))}, false},
		// Anything implies TRUE.
		{Conj{C("x", EQ, stream.Int(1))}, Conj{}, true},
		// TRUE implies nothing constrained.
		{Conj{}, Conj{C("x", GT, stream.Int(0))}, false},
		// Equality implies range.
		{Conj{C("x", EQ, stream.Int(7))}, Conj{C("x", GE, stream.Int(7)), C("x", LE, stream.Int(7))}, true},
		// Equality implies NE of another point.
		{Conj{C("x", EQ, stream.Int(7))}, Conj{C("x", NE, stream.Int(9))}, true},
		{Conj{C("x", EQ, stream.Int(7))}, Conj{C("x", NE, stream.Int(7))}, false},
		// Range implies NE outside it.
		{Conj{C("x", LT, stream.Int(5))}, Conj{C("x", NE, stream.Int(9))}, true},
		// Strings.
		{Conj{C("s", EQ, stream.String_("a"))}, Conj{C("s", NE, stream.String_("b"))}, true},
		{Conj{C("s", EQ, stream.String_("a"))}, Conj{C("s", EQ, stream.String_("a"))}, true},
		{Conj{C("s", NE, stream.String_("b"))}, Conj{C("s", EQ, stream.String_("a"))}, false},
		// Unsatisfiable premise implies anything.
		{Conj{C("x", GT, stream.Int(5)), C("x", LT, stream.Int(3))}, Conj{C("s", EQ, stream.String_("zz"))}, true},
		// Multi-attribute.
		{
			Conj{C("x", GT, stream.Int(10)), C("y", EQ, stream.Int(2))},
			Conj{C("x", GT, stream.Int(0))},
			true,
		},
		// Attribute-difference terms (window re-tightening form).
		{
			Conj{{Term: Diff("a.ts", "b.ts"), Op: GE, Const: stream.Int(-3)}},
			Conj{{Term: Diff("a.ts", "b.ts"), Op: GE, Const: stream.Int(-5)}},
			true,
		},
	}
	for _, c := range cases {
		if got := Implies(c.a, c.b); got != c.want {
			t.Errorf("Implies(%s, %s) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestEquivalent(t *testing.T) {
	a := Conj{C("x", GE, stream.Int(3)), C("x", LE, stream.Int(3))}
	b := Conj{C("x", EQ, stream.Int(3))}
	if !Equivalent(a, b) {
		t.Error("x in [3,3] should be equivalent to x=3")
	}
	if Equivalent(a, Conj{C("x", EQ, stream.Int(4))}) {
		t.Error("different points must not be equivalent")
	}
}

// genConj builds a random conjunction over attributes x and y with integer
// constants in [0,6) so properties can be verified by exhaustive
// evaluation over a small domain.
func genConj(r *rand.Rand) Conj {
	n := r.Intn(3)
	cj := make(Conj, 0, n)
	attrs := []string{"x", "y"}
	ops := []Op{EQ, NE, LT, LE, GT, GE}
	for i := 0; i < n; i++ {
		cj = append(cj, C(attrs[r.Intn(2)], ops[r.Intn(len(ops))], stream.Int(int64(r.Intn(6)))))
	}
	return cj
}

// evalDomain evaluates a conjunction on every point of the 6x6 domain.
func evalDomain(t *testing.T, cj Conj) [36]bool {
	t.Helper()
	var out [36]bool
	for x := int64(0); x < 6; x++ {
		for y := int64(0); y < 6; y++ {
			ok, err := cj.Eval(tup(t, x, y, ""))
			if err != nil {
				t.Fatalf("eval error: %v", err)
			}
			out[x*6+y] = ok
		}
	}
	return out
}

func TestImpliesSoundnessProperty(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 2000; i++ {
		a, b := genConj(r), genConj(r)
		if !Implies(a, b) {
			continue
		}
		ea, eb := evalDomain(t, a), evalDomain(t, b)
		for p := range ea {
			if ea[p] && !eb[p] {
				t.Fatalf("Implies(%s, %s) answered true but point %d satisfies a only", a, b, p)
			}
		}
	}
}

func TestHullWeakeningProperty(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for i := 0; i < 2000; i++ {
		a, b := genConj(r), genConj(r)
		h := Hull(a, b)
		ea, eb, eh := evalDomain(t, a), evalDomain(t, b), evalDomain(t, h)
		for p := range ea {
			if (ea[p] || eb[p]) && !eh[p] {
				t.Fatalf("Hull(%s, %s) = %s rejects point %d accepted by an input", a, b, h, p)
			}
		}
	}
}

func TestHullImpliedByInputs(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for i := 0; i < 1000; i++ {
		a, b := genConj(r), genConj(r)
		h := Hull(a, b)
		if a.Satisfiable() && !Implies(a, h) {
			t.Fatalf("a=%s does not imply Hull=%s", a, h)
		}
		if b.Satisfiable() && !Implies(b, h) {
			t.Fatalf("b=%s does not imply Hull=%s", b, h)
		}
	}
}

func TestSatisfiableSoundnessProperty(t *testing.T) {
	// If Satisfiable says no, no domain point may satisfy the conjunction.
	r := rand.New(rand.NewSource(4))
	for i := 0; i < 2000; i++ {
		cj := genConj(r)
		if cj.Satisfiable() {
			continue
		}
		e := evalDomain(t, cj)
		for p, ok := range e {
			if ok {
				t.Fatalf("unsatisfiable %s satisfied at point %d", cj, p)
			}
		}
	}
}

func TestDNFEvalOrSimplify(t *testing.T) {
	d := DNF{
		{C("x", GT, stream.Int(4))},
		{C("x", LT, stream.Int(2))},
	}
	ok, err := d.Eval(tup(t, 5, 0, ""))
	if err != nil || !ok {
		t.Fatalf("eval high = %v, %v", ok, err)
	}
	if ok, _ := d.Eval(tup(t, 3, 0, "")); ok {
		t.Error("x=3 matches neither disjunct")
	}
	if ok, _ := d.Eval(tup(t, 1, 0, "")); !ok {
		t.Error("x=1 should match")
	}

	// Simplify drops covered and unsatisfiable disjuncts.
	d2 := DNF{
		{C("x", GT, stream.Int(0))},
		{C("x", GT, stream.Int(5))},                            // covered by the first
		{C("x", GT, stream.Int(9)), C("x", LT, stream.Int(1))}, // unsat
	}
	s := d2.Simplify()
	if len(s) != 1 {
		t.Fatalf("Simplify kept %d disjuncts: %v", len(s), s)
	}
	// Duplicate disjuncts collapse to one.
	d3 := DNF{{C("x", EQ, stream.Int(1))}, {C("x", EQ, stream.Int(1))}}
	if got := len(d3.Simplify()); got != 1 {
		t.Errorf("duplicate disjuncts kept %d", got)
	}
}

func TestDNFSimplifyPreservesSemantics(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	for i := 0; i < 1000; i++ {
		d := DNF{genConj(r), genConj(r), genConj(r)}
		s := d.Simplify()
		for x := int64(0); x < 6; x++ {
			for y := int64(0); y < 6; y++ {
				tp := tup(t, x, y, "")
				b1, _ := d.Eval(tp)
				b2, _ := s.Eval(tp)
				if b1 != b2 {
					t.Fatalf("Simplify changed semantics of %s at (%d,%d): %v->%v", d, x, y, b1, b2)
				}
			}
		}
	}
}

func TestDNFOrAndTrue(t *testing.T) {
	d := True()
	if !d.IsTrue() || !d.Satisfiable() {
		t.Error("True() should be true and satisfiable")
	}
	if (DNF{}).Satisfiable() {
		t.Error("empty DNF is FALSE")
	}
	union := DNF{{C("x", GT, stream.Int(3))}}.Or(DNF{{C("x", LE, stream.Int(3))}})
	// Both disjuncts survive (neither covers the other).
	if len(union) != 2 {
		t.Errorf("Or produced %d disjuncts", len(union))
	}
	anded := True().And(Conj{C("x", EQ, stream.Int(1))})
	if ok, _ := anded.Eval(tup(t, 1, 0, "")); !ok {
		t.Error("And result should accept x=1")
	}
	if ok, _ := anded.Eval(tup(t, 2, 0, "")); ok {
		t.Error("And result should reject x=2")
	}
}

func TestImpliesDNF(t *testing.T) {
	narrow := DNF{{C("x", EQ, stream.Int(1))}, {C("x", EQ, stream.Int(5))}}
	wide := DNF{{C("x", GE, stream.Int(0))}}
	if !ImpliesDNF(narrow, wide) {
		t.Error("narrow should imply wide")
	}
	if ImpliesDNF(wide, narrow) {
		t.Error("wide should not imply narrow")
	}
	// Unsatisfiable disjuncts on the left are skipped.
	withUnsat := DNF{{C("x", GT, stream.Int(5)), C("x", LT, stream.Int(1))}}
	if !ImpliesDNF(withUnsat, narrow) {
		t.Error("unsat lhs implies anything")
	}
}

func TestDNFEvalErrorDoesNotMaskMatch(t *testing.T) {
	// First disjunct references a missing attribute; the second matches.
	d := DNF{
		{C("missing", EQ, stream.Int(1))},
		{C("x", EQ, stream.Int(5))},
	}
	ok, err := d.Eval(tup(t, 5, 0, ""))
	if !ok || err != nil {
		t.Fatalf("match should win over disjunct error: %v, %v", ok, err)
	}
	// If nothing matches, the error surfaces.
	ok, err = d.Eval(tup(t, 4, 0, ""))
	if ok || err == nil {
		t.Fatalf("expected error surfaced, got %v, %v", ok, err)
	}
}

func TestAttrCmp(t *testing.T) {
	joined := stream.MustSchema("J",
		stream.Field{Name: "O.itemID", Kind: stream.KindInt},
		stream.Field{Name: "C.itemID", Kind: stream.KindInt},
	)
	tp := stream.MustTuple(joined, 0, stream.Int(4), stream.Int(4))
	eq := AttrCmp{Left: "O.itemID", Op: EQ, Right: "C.itemID"}
	ok, err := eq.Eval(tp)
	if err != nil || !ok {
		t.Fatalf("join eval = %v, %v", ok, err)
	}
	tp2 := stream.MustTuple(joined, 0, stream.Int(4), stream.Int(5))
	if ok, _ := eq.Eval(tp2); ok {
		t.Error("4 != 5")
	}
	if _, err := (AttrCmp{Left: "nope", Op: EQ, Right: "C.itemID"}).Eval(tp); err == nil {
		t.Error("missing attr should error")
	}
	// Canonicalisation makes A=B and B=A identical.
	r1 := AttrCmp{Left: "b", Op: LT, Right: "a"}.Canonical()
	r2 := AttrCmp{Left: "a", Op: GT, Right: "b"}.Canonical()
	if r1 != r2 {
		t.Errorf("canonical forms differ: %v vs %v", r1, r2)
	}
	sig := CanonicalAttrCmps([]AttrCmp{{Left: "b", Op: EQ, Right: "a"}, {Left: "c", Op: EQ, Right: "a"}})
	sig2 := CanonicalAttrCmps([]AttrCmp{{Left: "a", Op: EQ, Right: "c"}, {Left: "a", Op: EQ, Right: "b"}})
	if sig != sig2 {
		t.Errorf("signatures differ: %q vs %q", sig, sig2)
	}
}

func TestIntervalBasics(t *testing.T) {
	iv := AtLeast(2, false).Intersect(AtMost(5, true)) // [2,5)
	if iv.Empty() || !iv.Contains(2) || iv.Contains(5) || !iv.Contains(4.9) {
		t.Errorf("interval [2,5) wrong: %v", iv)
	}
	if iv.String() != "[2, 5)" {
		t.Errorf("String = %q", iv.String())
	}
	if !Universal().IsUniversal() {
		t.Error("universal")
	}
	if p, ok := PointI(3).IsPoint(); !ok || p != 3 {
		t.Error("point")
	}
	empty := AtLeast(5, true).Intersect(AtMost(5, false))
	if !empty.Empty() {
		t.Errorf("(5,5] should be empty: %v", empty)
	}
	if PointI(1).Width(0, 10) != 0 {
		t.Error("point width")
	}
	if AtLeast(2, false).Width(0, 10) != 8 {
		t.Error("clamped width")
	}
	if Universal().Width(0, 10) != 10 {
		t.Error("universal width = span")
	}
}

func TestIntervalContainsIntervalProperty(t *testing.T) {
	f := func(alo, ahi, blo, bhi int8, aLoOpen, aHiOpen, bLoOpen, bHiOpen bool) bool {
		a := Interval{HasLo: true, Lo: float64(alo), LoOpen: aLoOpen, HasHi: true, Hi: float64(ahi), HiOpen: aHiOpen}
		b := Interval{HasLo: true, Lo: float64(blo), LoOpen: bLoOpen, HasHi: true, Hi: float64(bhi), HiOpen: bHiOpen}
		if !a.ContainsInterval(b) {
			return true // only verify the positive claim
		}
		// Sample integer and half-integer points to validate containment.
		for x := -130.0; x <= 130; x += 0.5 {
			if b.Contains(x) && !a.Contains(x) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestIntervalHullProperty(t *testing.T) {
	f := func(alo, ahi, blo, bhi int8) bool {
		a := Interval{HasLo: true, Lo: float64(alo), HasHi: true, Hi: float64(ahi)}
		b := Interval{HasLo: true, Lo: float64(blo), HasHi: true, Hi: float64(bhi)}
		h := a.Hull(b)
		if a.Empty() || b.Empty() {
			return true // hull of empty inputs is unspecified beyond soundness
		}
		return h.ContainsInterval(a) && h.ContainsInterval(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestConjStringCanonical(t *testing.T) {
	a := Conj{C("x", GT, stream.Int(1)), C("y", LT, stream.Int(2))}
	b := Conj{C("y", LT, stream.Int(2)), C("x", GT, stream.Int(1))}
	if a.String() != b.String() {
		t.Errorf("canonical strings differ: %q vs %q", a.String(), b.String())
	}
}

func TestIntervalFor(t *testing.T) {
	cj := Conj{C("x", GE, stream.Int(2)), C("x", LT, stream.Int(8))}
	iv, ok := cj.IntervalFor(Attr("x"))
	if !ok || iv.String() != "[2, 8)" {
		t.Errorf("IntervalFor = %v, %v", iv, ok)
	}
	if _, ok := cj.IntervalFor(Attr("y")); ok {
		t.Error("unconstrained term should report !ok")
	}
}

func TestParseTermKeyRoundTrip(t *testing.T) {
	for _, tm := range []Term{Attr("x"), Diff("a.ts", "b.ts"), Attr("O.itemID")} {
		if got := parseTermKey(tm.String()); got != tm {
			t.Errorf("round trip %v -> %v", tm, got)
		}
	}
}
