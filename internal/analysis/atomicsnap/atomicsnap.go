// Package atomicsnap enforces the repo's two-plane publication contract:
// control-plane code builds a fresh immutable snapshot (dispatch table,
// compiled stream set, subscriber list) and publishes it through an
// atomic.Pointer; data-plane code Loads it and must treat it as frozen.
// A write through a loaded snapshot is a data race with every concurrent
// reader — the exact class of bug the design exists to rule out.
package atomicsnap

import (
	"go/ast"
	"go/types"

	"cosmos/internal/analysis/framework"
)

// Analyzer flags writes through values obtained from atomic.Pointer
// Load calls. Taint is tracked in source order, flow-insensitively:
//
//   - the result of x.Load() (x an atomic.Pointer) is tainted;
//   - values derived from a tainted value — field selections, index
//     expressions, dereferences, range variables — are tainted;
//   - reassigning a variable from a non-tainted source clears its
//     taint (the slow-path idiom: shadow the snapshot with a freshly
//     compiled replacement, then fill the new value's fields).
//
// A function that itself publishes — calls Store, Swap or
// CompareAndSwap on an atomic.Pointer — is exempt: it is the snapshot
// builder, and writing fields of the not-yet-published value is the
// whole point.
var Analyzer = &framework.Analyzer{
	Name: "atomicsnap",
	Doc:  "flag mutation of snapshots loaded from atomic.Pointer outside their builder",
	Run:  run,
}

func run(pass *framework.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if publishes(pass.TypesInfo, fd.Body) {
				continue
			}
			checkFunc(pass, fd)
		}
	}
	return nil
}

// publishes reports whether the body calls Store/Swap/CompareAndSwap on
// an atomic.Pointer — the builder exemption.
func publishes(info *types.Info, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := framework.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		switch sel.Sel.Name {
		case "Store", "Swap", "CompareAndSwap":
			if framework.IsAtomicPointer(info.TypeOf(sel.X)) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

func checkFunc(pass *framework.Pass, fd *ast.FuncDecl) {
	info := pass.TypesInfo
	taint := map[types.Object]bool{}

	// tainted reports whether e evaluates to (part of) a loaded
	// snapshot: rooted at a tainted variable or at a Load call itself.
	var tainted func(e ast.Expr) bool
	tainted = func(e ast.Expr) bool {
		switch e := framework.Unparen(e).(type) {
		case *ast.Ident:
			obj := info.Uses[e]
			if obj == nil {
				obj = info.Defs[e]
			}
			return obj != nil && taint[obj]
		case *ast.SelectorExpr:
			return tainted(e.X)
		case *ast.IndexExpr:
			return tainted(e.X)
		case *ast.StarExpr:
			return tainted(e.X)
		case *ast.UnaryExpr:
			return tainted(e.X)
		case *ast.CallExpr:
			return isAtomicLoad(info, e)
		}
		return false
	}

	setTaint := func(id *ast.Ident, on bool) {
		obj := info.Defs[id]
		if obj == nil {
			obj = info.Uses[id]
		}
		if obj == nil {
			return
		}
		if on {
			taint[obj] = true
		} else {
			delete(taint, obj)
		}
	}

	report := func(target ast.Expr, verb string) {
		pass.Reportf(target.Pos(),
			"%s through atomic.Pointer snapshot in %s: snapshots are immutable after publication — build a fresh value and Store it",
			verb, fd.Name.Name)
	}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			// Writes through tainted bases first: t.field = v,
			// t.m[k] = v, *t = v.
			for _, lhs := range n.Lhs {
				switch l := framework.Unparen(lhs).(type) {
				case *ast.SelectorExpr:
					if tainted(l.X) {
						report(lhs, "field write")
					}
				case *ast.IndexExpr:
					if tainted(l.X) {
						report(lhs, "element write")
					}
				case *ast.StarExpr:
					if tainted(l.X) {
						report(lhs, "write")
					}
				}
			}
			// Then propagate/clear taint for plain variables.
			if len(n.Lhs) == len(n.Rhs) {
				for i, lhs := range n.Lhs {
					if id, ok := framework.Unparen(lhs).(*ast.Ident); ok {
						setTaint(id, tainted(n.Rhs[i]))
					}
				}
			} else {
				// Tuple assignment from one call: nothing a Load can
				// produce; conservatively clear.
				for _, lhs := range n.Lhs {
					if id, ok := framework.Unparen(lhs).(*ast.Ident); ok {
						setTaint(id, false)
					}
				}
			}
		case *ast.GenDecl:
			for _, spec := range n.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, name := range vs.Names {
					on := i < len(vs.Values) && tainted(vs.Values[i])
					setTaint(name, on)
				}
			}
		case *ast.RangeStmt:
			on := tainted(n.X)
			if id, ok := n.Key.(*ast.Ident); ok && id.Name != "_" {
				setTaint(id, on)
			}
			if id, ok := n.Value.(*ast.Ident); ok && id.Name != "_" {
				setTaint(id, on)
			}
		case *ast.IncDecStmt:
			switch x := framework.Unparen(n.X).(type) {
			case *ast.SelectorExpr:
				if tainted(x.X) {
					report(n.X, "field write")
				}
			case *ast.IndexExpr:
				if tainted(x.X) {
					report(n.X, "element write")
				}
			case *ast.StarExpr:
				if tainted(x.X) {
					report(n.X, "write")
				}
			}
		}
		return true
	})
}

// isAtomicLoad reports whether call is x.Load() on an atomic.Pointer.
func isAtomicLoad(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := framework.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Load" {
		return false
	}
	return framework.IsAtomicPointer(info.TypeOf(sel.X))
}
