package hotpath_test

import (
	"testing"

	"cosmos/internal/analysis/framework"
	"cosmos/internal/analysis/hotpath"
)

// TestHotpath runs the analyzer over the seeded-violation package (every
// rule must fire where // want says) and the all-allowed package (zero
// diagnostics — the false-positive regression guard).
func TestHotpath(t *testing.T) {
	framework.RunTest(t, ".", hotpath.Analyzer,
		"./testdata/src/hot", "./testdata/src/hotneg", "./testdata/src/hotdep")
}
