// Package sim assembles the paper's evaluation (§5): random continuous
// queries over 63 sensor streams, the incremental greedy merging
// optimiser, and a simulated CBN over a BRITE-style power-law topology of
// 1000 nodes with a minimum-spanning-tree dissemination tree. It reports
// the two metrics of Figure 4:
//
//	benefit ratio  — the fraction of (delay-weighted) communication cost
//	                 that query merging removes, per Figure 4(a);
//	grouping ratio — #groups / #queries, per Figure 4(b).
//
// Cost model. Result streams flow from the processor along dissemination
// tree paths to each query's user node. Without merging every query's
// result stream is shipped independently, so a link used by the paths of
// queries Q carries Σ_{q∈Q} C(q) bytes/sec. With merging, a link carries
// the representative stream filtered to the union of downstream member
// needs, bounded above by both C(rep) and Σ C(member); the simulator
// charges min(C(rep), Σ C(members downstream)), which is exact at the
// fan-out extremes (single member: C(q); near the processor: C(rep)) and
// a safe upper bound in between. Costs are delay-weighted byte rates
// (bytes/sec × ms), matching the paper's communication-cost metric.
package sim

import (
	"fmt"
	"math/rand"
	"sort"

	"cosmos/internal/cost"
	"cosmos/internal/cql"
	"cosmos/internal/merge"
	"cosmos/internal/overlay"
	"cosmos/internal/querygen"
	"cosmos/internal/sensordata"
	"cosmos/internal/stream"
	"cosmos/internal/topology"
)

// Config parameterises one simulation run.
type Config struct {
	// Nodes is the topology size (paper: 1000).
	Nodes int
	// EdgesPerNode is the Barabási–Albert attachment parameter.
	EdgesPerNode int
	// Queries is the total number of queries inserted.
	Queries int
	// Dist is the workload skew (uniform / zipf…).
	Dist querygen.Distribution
	// Seed drives every random choice.
	Seed int64
	// Mode selects representative-predicate composition.
	Mode merge.Mode
	// MaxCandidates bounds the optimiser's per-insert group scan
	// (0 = unlimited).
	MaxCandidates int
	// IncludeInputSide also counts source→processor transfer (identical
	// under both strategies; dilutes the ratio). Default false, matching
	// the paper's focus on result delivery sharing.
	IncludeInputSide bool
}

// withDefaults fills zero fields with the paper's settings.
func (c Config) withDefaults() Config {
	if c.Nodes == 0 {
		c.Nodes = 1000
	}
	if c.EdgesPerNode == 0 {
		c.EdgesPerNode = 2
	}
	if c.Queries == 0 {
		c.Queries = 2000
	}
	if c.MaxCandidates == 0 {
		c.MaxCandidates = 64
	}
	return c
}

// Result is the outcome at one checkpoint.
type Result struct {
	Queries       int
	Groups        int
	GroupingRatio float64
	// UnmergedCost and MergedCost are delay-weighted byte rates.
	UnmergedCost float64
	MergedCost   float64
	// BenefitRatio is 1 − MergedCost/UnmergedCost (Figure 4a).
	BenefitRatio float64
}

// Runner holds the assembled experiment so checkpoints can be evaluated
// as queries stream in.
type Runner struct {
	cfg       Config
	reg       *stream.Registry
	gen       *querygen.Generator
	opt       *merge.Optimizer
	est       cost.Estimator
	tree      *overlay.Tree
	rng       *rand.Rand
	processor int
	// userOf[tag] is the node hosting the query's user.
	userOf map[string]int
	// pathCache caches node→processor tree paths.
	pathCache map[int][]pathEdge
	// sourceOf maps stream name → source node (input-side accounting).
	sourceOf map[string]int
	inserted int
}

// pathEdge is one tree link on a user's delivery path, identified by its
// child endpoint (each non-root node owns its uplink).
type pathEdge struct {
	child int
	delay float64
}

// NewRunner builds the experiment: topology, MST dissemination tree,
// catalog, workload generator and optimiser.
func NewRunner(cfg Config) (*Runner, error) {
	cfg = cfg.withDefaults()
	g, err := topology.GeneratePowerLaw(cfg.Nodes, cfg.EdgesPerNode, cfg.Seed)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 1))
	processor := rng.Intn(cfg.Nodes)
	// The paper builds an MST dissemination tree over the topology; we
	// root it at the processor so result paths follow tree branches.
	tree, err := overlay.MST(g, processor)
	if err != nil {
		return nil, err
	}
	reg := stream.NewRegistry()
	if err := sensordata.RegisterAll(reg); err != nil {
		return nil, err
	}
	gen, err := querygen.New(querygen.Config{Dist: cfg.Dist, Seed: cfg.Seed + 2})
	if err != nil {
		return nil, err
	}
	r := &Runner{
		cfg: cfg,
		reg: reg,
		gen: gen,
		opt: merge.NewOptimizer(merge.Options{
			Mode:          cfg.Mode,
			MaxCandidates: cfg.MaxCandidates,
		}),
		tree:      tree,
		rng:       rng,
		processor: processor,
		userOf:    map[string]int{},
		pathCache: map[int][]pathEdge{},
		sourceOf:  map[string]int{},
	}
	for s := 0; s < sensordata.NumStations; s++ {
		r.sourceOf[sensordata.StreamName(s)] = rng.Intn(cfg.Nodes)
	}
	return r, nil
}

// Insert adds n more queries, assigning each a random user node.
func (r *Runner) Insert(n int) error {
	for i := 0; i < n; i++ {
		text := r.gen.Next()
		b, err := cql.AnalyzeString(text, r.reg)
		if err != nil {
			return fmt.Errorf("sim: generated query rejected: %w", err)
		}
		tag := fmt.Sprintf("q%06d", r.inserted)
		if _, err := r.opt.Add(tag, b); err != nil {
			return err
		}
		r.userOf[tag] = r.rng.Intn(r.cfg.Nodes)
		r.inserted++
	}
	return nil
}

// pathTo returns the tree path from a node up to the processor (root).
func (r *Runner) pathTo(node int) []pathEdge {
	if p, ok := r.pathCache[node]; ok {
		return p
	}
	var path []pathEdge
	for v := node; v != r.tree.Root; v = r.tree.Parent[v] {
		path = append(path, pathEdge{child: v, delay: r.tree.LinkDelay[v]})
	}
	r.pathCache[node] = path
	return path
}

// Evaluate computes the Figure 4 metrics for the current query set.
func (r *Runner) Evaluate() *Result {
	st := r.opt.Stats()
	res := &Result{
		Queries:       st.Queries,
		Groups:        st.Groups,
		GroupingRatio: st.GroupingRatio(),
	}
	var unmerged, merged float64
	for _, g := range r.opt.Groups() {
		repBps := g.RepBps
		// Accumulate per-link downstream member rates for this group.
		sums := map[int]float64{}   // child node → Σ member bps
		delays := map[int]float64{} // child node → link delay
		for _, m := range g.Members {
			user := r.userOf[m.Tag]
			for _, e := range r.pathTo(user) {
				sums[e.child] += m.Bps
				delays[e.child] = e.delay
			}
		}
		// Deterministic accumulation order (map iteration is randomised
		// and float addition is not associative).
		children := make([]int, 0, len(sums))
		for child := range sums {
			children = append(children, child)
		}
		sort.Ints(children)
		for _, child := range children {
			sum := sums[child]
			d := delays[child]
			unmerged += d * sum
			flow := sum
			if repBps < flow {
				flow = repBps
			}
			merged += d * flow
		}
	}
	if r.cfg.IncludeInputSide {
		in := r.inputSideCost()
		unmerged += in
		merged += in
	}
	res.UnmergedCost = unmerged
	res.MergedCost = merged
	if unmerged > 0 {
		res.BenefitRatio = 1 - merged/unmerged
	}
	return res
}

// inputSideCost estimates source→processor transfer, identical under
// both strategies (the CBN already shares input streams): per source
// stream, the demanded fraction of the stream flows along the tree path
// from the source node to the processor.
func (r *Runner) inputSideCost() float64 {
	// Union selectivity per stream across all groups' representatives,
	// under independence (upper bound).
	missByStream := map[string]float64{}
	for _, g := range r.opt.Groups() {
		for _, ref := range g.Rep.From {
			info := g.Rep.Infos[ref.Alias]
			sel := r.est.SelectivityDNF(info, g.Rep.Sel[ref.Alias])
			if _, ok := missByStream[ref.Stream]; !ok {
				missByStream[ref.Stream] = 1
			}
			missByStream[ref.Stream] *= 1 - sel
		}
	}
	names := make([]string, 0, len(missByStream))
	for name := range missByStream {
		names = append(names, name)
	}
	sort.Strings(names)
	total := 0.0
	for _, name := range names {
		info, ok := r.reg.Lookup(name)
		if !ok {
			continue
		}
		demand := info.Bps() * (1 - missByStream[name])
		for _, e := range r.pathTo(r.sourceOf[name]) {
			total += e.delay * demand
		}
	}
	return total
}

// Sweep runs the full Figure 4 protocol: insert queries up to each
// checkpoint and evaluate there.
func Sweep(cfg Config, checkpoints []int) ([]*Result, error) {
	r, err := NewRunner(cfg)
	if err != nil {
		return nil, err
	}
	var out []*Result
	for _, cp := range checkpoints {
		if cp < r.inserted {
			return nil, fmt.Errorf("sim: checkpoints must be non-decreasing")
		}
		if err := r.Insert(cp - r.inserted); err != nil {
			return nil, err
		}
		out = append(out, r.Evaluate())
	}
	return out, nil
}

// PaperCheckpoints are the x-axis points of Figure 4.
func PaperCheckpoints() []int { return []int{2000, 4000, 6000, 8000, 10000} }

// AverageResults averages metric-wise across repetitions (the paper
// repeats every experiment 20 times and reports means).
func AverageResults(runs [][]*Result) []*Result {
	if len(runs) == 0 {
		return nil
	}
	n := len(runs[0])
	out := make([]*Result, n)
	for i := 0; i < n; i++ {
		acc := &Result{Queries: runs[0][i].Queries}
		for _, run := range runs {
			acc.Groups += run[i].Groups
			acc.GroupingRatio += run[i].GroupingRatio
			acc.UnmergedCost += run[i].UnmergedCost
			acc.MergedCost += run[i].MergedCost
			acc.BenefitRatio += run[i].BenefitRatio
		}
		k := float64(len(runs))
		acc.Groups = acc.Groups / len(runs)
		acc.GroupingRatio /= k
		acc.UnmergedCost /= k
		acc.MergedCost /= k
		acc.BenefitRatio /= k
		out[i] = acc
	}
	return out
}
