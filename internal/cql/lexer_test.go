package cql

import "testing"

func lexKinds(t *testing.T, src string) []tokKind {
	t.Helper()
	toks, err := lex(src)
	if err != nil {
		t.Fatalf("lex(%q): %v", src, err)
	}
	kinds := make([]tokKind, len(toks))
	for i, tok := range toks {
		kinds[i] = tok.kind
	}
	return kinds
}

func TestLexerTokenKinds(t *testing.T) {
	kinds := lexKinds(t, "SELECT a.b, * FROM S [Range 3 Hour] WHERE x >= 2.5 AND s = 'it''s'")
	want := []tokKind{
		tokIdent, tokIdent, tokDot, tokIdent, tokComma, tokStar,
		tokIdent, tokIdent, tokLBracket, tokIdent, tokNumber, tokIdent, tokRBracket,
		tokIdent, tokIdent, tokCmp, tokNumber, tokIdent, tokIdent, tokCmp, tokString,
		tokEOF,
	}
	if len(kinds) != len(want) {
		t.Fatalf("token count = %d, want %d: %v", len(kinds), len(want), kinds)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Errorf("token %d = %v, want %v", i, kinds[i], want[i])
		}
	}
}

func TestLexerOperators(t *testing.T) {
	toks, err := lex("= != <> < <= > >=")
	if err != nil {
		t.Fatal(err)
	}
	wantTexts := []string{"=", "!=", "!=", "<", "<=", ">", ">="}
	for i, want := range wantTexts {
		if toks[i].kind != tokCmp || toks[i].text != want {
			t.Errorf("op %d = %q (%v)", i, toks[i].text, toks[i].kind)
		}
	}
}

func TestLexerStringEscapes(t *testing.T) {
	toks, err := lex("'a''b'")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].kind != tokString || toks[0].text != "a'b" {
		t.Errorf("escaped string = %q", toks[0].text)
	}
}

func TestLexerNumbers(t *testing.T) {
	toks, err := lex("42 2.5 3.")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].text != "42" || toks[1].text != "2.5" {
		t.Errorf("numbers = %q %q", toks[0].text, toks[1].text)
	}
	// "3." lexes as number 3 followed by dot (trailing dot is not part
	// of a float without a following digit).
	if toks[2].text != "3" || toks[3].kind != tokDot {
		t.Errorf("trailing dot handling: %q then %v", toks[2].text, toks[3].kind)
	}
}

func TestLexerErrors(t *testing.T) {
	for _, src := range []string{"a ! b", "'unterminated", "a # b"} {
		if _, err := lex(src); err == nil {
			t.Errorf("lex(%q) should fail", src)
		}
	}
}

func TestLexerPositions(t *testing.T) {
	toks, err := lex("ab  cd")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].pos != 0 || toks[1].pos != 4 {
		t.Errorf("positions = %d, %d", toks[0].pos, toks[1].pos)
	}
}
