// Wanrouting: the data layer by itself — content-based routing over a
// wide-area overlay, early projection, covering-based subscription
// propagation, and the overlay optimizer's cost-driven reorganisation
// (paper §3).
//
//	go run ./examples/wanrouting
package main

import (
	"fmt"
	"log"
	"math/rand"

	"cosmos/internal/cbn"
	"cosmos/internal/overlay"
	"cosmos/internal/predicate"
	"cosmos/internal/profile"
	"cosmos/internal/stream"
	"cosmos/internal/topology"
)

func main() {
	fmt.Println("== Overlay reorganisation (paper §3.2) ==")
	reorganise()
	fmt.Println()
	fmt.Println("== Content-based routing with early projection (paper §3.1) ==")
	route()
}

// reorganise builds a deliberately bad dissemination tree (a star on the
// root) and lets the optimizer's local moves repair it under a
// delay×rate cost with a server-degree penalty.
func reorganise() {
	g, err := topology.GeneratePowerLaw(200, 2, 11)
	if err != nil {
		log.Fatal(err)
	}
	tree, err := overlay.Star(g, 0)
	if err != nil {
		log.Fatal(err)
	}
	delays := overlay.AllPairsDelays(g)
	rates := make([]float64, g.NumNodes())
	rng := rand.New(rand.NewSource(2))
	for i := range rates {
		rates[i] = 10 + 90*rng.Float64()
	}
	const maxDegree, penalty = 8, 1e6
	before := tree.TotalCost(overlay.DelayBpsCost, rates, maxDegree, penalty)
	fmt.Printf("star tree: cost=%.3g, root degree=%d\n", before, tree.Degree(0))

	reorg := overlay.NewReorganizer(tree, overlay.ReorgOptions{
		DelayFn:       func(a, b int) float64 { return delays[a][b] },
		MaxDegree:     maxDegree,
		DegreePenalty: penalty,
		MaxRounds:     50,
	})
	moves := reorg.Run(rates)
	after := tree.TotalCost(overlay.DelayBpsCost, rates, maxDegree, penalty)
	fmt.Printf("after %d local moves: cost=%.3g (%.1f%% lower), root degree=%d\n",
		moves, after, 100*(1-after/before), tree.Degree(0))
}

// route sends sensor datagrams across a 30-node overlay to two
// subscribers with different projections and filters, showing that the
// network shares the common path and prunes both tuples and attributes.
func route() {
	g, err := topology.GeneratePowerLaw(30, 2, 5)
	if err != nil {
		log.Fatal(err)
	}
	tree, err := overlay.MST(g, 0)
	if err != nil {
		log.Fatal(err)
	}
	net := cbn.NewSimNetFromTree(tree)

	schema := stream.MustSchema("Sensor",
		stream.Field{Name: "station", Kind: stream.KindInt},
		stream.Field{Name: "temperature", Kind: stream.KindFloat},
		stream.Field{Name: "humidity", Kind: stream.KindFloat},
		stream.Field{Name: "solar", Kind: stream.KindFloat},
	)
	src := net.AttachClient(12)
	src.Advertise("Sensor")

	// Subscriber A: hot readings, temperature only.
	a := net.AttachClient(27)
	countA := 0
	a.OnTuple = func(stream.Tuple) { countA++ }
	profA := profile.New()
	profA.AddStream("Sensor", []string{"station", "temperature"}, predicate.DNF{
		{predicate.C("temperature", predicate.GT, stream.Float(30))},
	})
	a.Subscribe(profA)

	// Subscriber B: everything about station 7.
	b := net.AttachClient(5)
	countB := 0
	b.OnTuple = func(stream.Tuple) { countB++ }
	profB := profile.New()
	profB.AddStream("Sensor", nil, predicate.DNF{
		{predicate.C("station", predicate.EQ, stream.Int(7))},
	})
	b.Subscribe(profB)

	rng := rand.New(rand.NewSource(9))
	published := 200
	for i := 0; i < published; i++ {
		t := stream.MustTuple(schema, stream.Timestamp(i),
			stream.Int(int64(rng.Intn(20))),
			stream.Float(rng.Float64()*45),
			stream.Float(rng.Float64()*100),
			stream.Float(rng.Float64()*1200),
		)
		if err := src.Publish(t); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("published %d datagrams from node 12\n", published)
	fmt.Printf("subscriber A (temp>30, 2 attrs): %d deliveries\n", countA)
	fmt.Printf("subscriber B (station=7, all attrs): %d deliveries\n", countB)
	var dataBytes, msgs int64
	for _, ls := range net.Stats() {
		dataBytes += ls.DataBytes
		msgs += ls.DataMsgs
	}
	full := int64(published) * int64(schema.TupleWidth()+8+cbn.DataHeaderBytes) * int64(len(net.Stats()))
	fmt.Printf("network moved %d data msgs, %d bytes (flooding every link would be %d bytes)\n",
		msgs, dataBytes, full)
}
