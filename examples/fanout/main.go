// Fanout: drive many continuous queries over one hot stream through the
// sharded execution runtime (internal/exec) and contrast it with the
// sequential engine — per-plan locking, worker pinning, micro-batched
// ingestion, and checkpoint capture that quiesces one plan instead of
// stopping the world.
//
//	go run ./examples/fanout
package main

import (
	"fmt"
	"log"
	"runtime"
	"sync/atomic"
	"time"

	"cosmos/internal/cql"
	"cosmos/internal/exec"
	"cosmos/internal/sensordata"
	"cosmos/internal/spe"
	"cosmos/internal/stream"
)

const (
	nPlans  = 8
	nTuples = 200_000
	batch   = 64
)

func install(install func(id string, b *cql.Bound, res string) (*spe.Plan, error), reg *stream.Registry) {
	for i := 0; i < nPlans; i++ {
		text := fmt.Sprintf(
			"SELECT station, temperature, humidity FROM Sensor07 [Now] WHERE temperature >= %d AND humidity <= %d",
			-20+i*5, 95-i*3)
		b, err := cql.AnalyzeString(text, reg)
		if err != nil {
			log.Fatal(err)
		}
		if _, err := install(fmt.Sprintf("q%d", i), b, fmt.Sprintf("res%d", i)); err != nil {
			log.Fatal(err)
		}
	}
}

func main() {
	reg := stream.NewRegistry()
	if err := sensordata.RegisterAll(reg); err != nil {
		log.Fatal(err)
	}
	tuples := sensordata.NewGenerator(7, 1).Take(nTuples)
	fmt.Printf("%d plans x 1 stream, %d tuples, GOMAXPROCS=%d\n\n",
		nPlans, nTuples, runtime.GOMAXPROCS(0))

	// Baseline: the sequential engine — every plan under one lock.
	var seqResults atomic.Int64
	eng := spe.NewEngine(func(stream.Tuple) { seqResults.Add(1) })
	install(eng.Install, reg)
	start := time.Now()
	for _, t := range tuples {
		if err := eng.Consume(t); err != nil {
			log.Fatal(err)
		}
	}
	seqDur := time.Since(start)
	fmt.Printf("sequential engine: %8.0f tuples/s  (%d results)\n",
		float64(nTuples)/seqDur.Seconds(), seqResults.Load())

	// The sharded runtime: plans pinned across a worker pool, tuples
	// micro-batched through the channel adapter. Per-plan result order is
	// identical to the sequential engine; cross-plan order is free.
	var rtResults atomic.Int64
	rt := exec.New(exec.Config{
		Workers: 4,
		Emit:    func(stream.Tuple) { rtResults.Add(1) },
		OnError: func(plan string, err error) { log.Printf("plan %s: %v", plan, err) },
	})
	defer rt.Close()
	install(rt.Install, reg)
	ba := exec.NewBatcher(rt, 4096, batch)
	start = time.Now()
	for _, t := range tuples {
		ba.Put(t)
	}
	ba.Flush()
	rt.Barrier()
	rtDur := time.Since(start)
	ba.Close()
	fmt.Printf("sharded runtime:   %8.0f tuples/s  (%d results, %d workers, batch %d)\n",
		float64(nTuples)/rtDur.Seconds(), rtResults.Load(), rt.Workers(), batch)

	// Snapshot one plan while the others keep running: WithPlan drains
	// and locks only q3.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for _, t := range tuples[:20_000] {
			rt.Consume(t)
		}
		rt.Barrier()
	}()
	rt.WithPlan("q3", func(p *spe.Plan) {
		snap := p.Snapshot()
		fmt.Printf("\ncaptured plan %s mid-stream (watermark %d) without stopping the other %d plans\n",
			snap.PlanID, snap.Watermark, nPlans-1)
	})
	<-done
}
