package cql

import (
	"strings"
	"testing"

	"cosmos/internal/predicate"
	"cosmos/internal/stream"
)

// paperCatalog builds the auction schemas of Table 1 plus the R/S example
// of §4.
func paperCatalog() *stream.Registry {
	r := stream.NewRegistry()
	must := func(info *stream.Info) {
		if err := r.Register(info); err != nil {
			panic(err)
		}
	}
	must(&stream.Info{Schema: stream.MustSchema("OpenAuction",
		stream.Field{Name: "itemID", Kind: stream.KindInt},
		stream.Field{Name: "sellerID", Kind: stream.KindInt},
		stream.Field{Name: "start_price", Kind: stream.KindFloat},
		stream.Field{Name: "timestamp", Kind: stream.KindTime},
	), Rate: 50})
	must(&stream.Info{Schema: stream.MustSchema("ClosedAuction",
		stream.Field{Name: "itemID", Kind: stream.KindInt},
		stream.Field{Name: "buyerID", Kind: stream.KindInt},
		stream.Field{Name: "timestamp", Kind: stream.KindTime},
	), Rate: 30})
	must(&stream.Info{Schema: stream.MustSchema("R",
		stream.Field{Name: "A", Kind: stream.KindInt},
		stream.Field{Name: "B", Kind: stream.KindInt},
	), Rate: 10})
	must(&stream.Info{Schema: stream.MustSchema("S",
		stream.Field{Name: "B", Kind: stream.KindInt},
		stream.Field{Name: "C", Kind: stream.KindInt},
	), Rate: 10})
	return r
}

const q1Text = `SELECT O.* FROM OpenAuction [Range 3 Hour] O, ClosedAuction [Now] C WHERE O.itemID = C.itemID`
const q2Text = `SELECT O.itemID, O.timestamp, C.buyerID, C.timestamp FROM OpenAuction [Range 5 Hour] O, ClosedAuction [Now] C WHERE O.itemID = C.itemID`
const q3Text = `SELECT O.*, C.buyerID, C.timestamp FROM OpenAuction [Range 5 Hour] O, ClosedAuction [Now] C WHERE O.itemID = C.itemID`

func TestParsePaperQ1(t *testing.T) {
	q, err := Parse(q1Text)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Select) != 1 || !q.Select[0].Star || q.Select[0].Qualifier != "O" {
		t.Errorf("select = %v", q.Select)
	}
	if len(q.From) != 2 {
		t.Fatalf("from = %v", q.From)
	}
	if q.From[0].Stream != "OpenAuction" || q.From[0].Window != 3*stream.Hour || q.From[0].Alias != "O" {
		t.Errorf("from[0] = %+v", q.From[0])
	}
	if q.From[1].Window != stream.Now || q.From[1].Alias != "C" {
		t.Errorf("from[1] = %+v", q.From[1])
	}
	cmp, ok := q.Where.(*CmpExpr)
	if !ok || cmp.Op != predicate.EQ {
		t.Fatalf("where = %v", q.Where)
	}
}

func TestParseWindows(t *testing.T) {
	cases := map[string]stream.Duration{
		"S [Now]":              stream.Now,
		"S [Unbounded]":        stream.Unbounded,
		"S [Range 30 Minute]":  30 * stream.Minute,
		"S [Range 2 Day]":      2 * stream.Day,
		"S [Range 10 Second]":  10 * stream.Second,
		"S [range 5 hours]":    5 * stream.Hour, // case-insensitive, plural
		"S [RANGE 100 ms]":     100 * stream.Millisecond,
		"S":                    stream.Unbounded, // default
		"S [Range 15 minutes]": 15 * stream.Minute,
	}
	for text, want := range cases {
		q, err := Parse("SELECT * FROM " + text)
		if err != nil {
			t.Errorf("%s: %v", text, err)
			continue
		}
		if q.From[0].Window != want {
			t.Errorf("%s: window = %v, want %v", text, q.From[0].Window, want)
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"SELECT",
		"SELECT * FROM",
		"SELECT * WHERE x = 1",
		"SELECT * FROM S [Range x Hour]",
		"SELECT * FROM S [Range 3 Fortnight]",
		"SELECT * FROM S [Range -3 Hour]",
		"SELECT * FROM S [Maybe]",
		"SELECT * FROM S WHERE",
		"SELECT * FROM S WHERE x",
		"SELECT * FROM S WHERE x = ",
		"SELECT * FROM S WHERE NOT x = 1",
		"SELECT * FROM S WHERE (x = 1",
		"SELECT * FROM S trailing garbage !",
		"SELECT SUM(*) FROM S",
		"SELECT x AS FROM FROM S",
		"SELECT * FROM S WHERE 'a' = 'b' AND",
		"SELECT * FROM SELECT",
		"SELECT * FROM S GROUP x",
		"SELECT * FROM S WHERE x ! 1",
		"SELECT * FROM S WHERE s = 'unterminated",
	}
	for _, text := range bad {
		if _, err := Parse(text); err == nil {
			t.Errorf("Parse(%q) should fail", text)
		}
	}
}

func TestParseLiteralsAndOperators(t *testing.T) {
	q := MustParse("SELECT * FROM S WHERE a = -5 AND b >= 2.5 AND c != 'x''y' AND d <> 3 AND e = TRUE")
	// Walk the AND chain counting comparisons.
	var count int
	var walk func(e Expr)
	walk = func(e Expr) {
		switch ex := e.(type) {
		case *BinExpr:
			walk(ex.L)
			walk(ex.R)
		case *CmpExpr:
			count++
		}
	}
	walk(q.Where)
	if count != 5 {
		t.Errorf("comparison count = %d", count)
	}
	s := q.Where.String()
	if !strings.Contains(s, "-5") || !strings.Contains(s, "2.5") {
		t.Errorf("where string = %s", s)
	}
}

func TestParsePrecedenceOrAnd(t *testing.T) {
	q := MustParse("SELECT * FROM S WHERE a = 1 OR b = 2 AND c = 3")
	top, ok := q.Where.(*BinExpr)
	if !ok || top.Op != OpOr {
		t.Fatalf("top = %v", q.Where)
	}
	r, ok := top.R.(*BinExpr)
	if !ok || r.Op != OpAnd {
		t.Fatalf("AND should bind tighter: %v", q.Where)
	}
	// Parenthesised override.
	q2 := MustParse("SELECT * FROM S WHERE (a = 1 OR b = 2) AND c = 3")
	top2, ok := q2.Where.(*BinExpr)
	if !ok || top2.Op != OpAnd {
		t.Fatalf("parens should force AND at top: %v", q2.Where)
	}
}

func TestParseColumnDifference(t *testing.T) {
	q := MustParse("SELECT * FROM S WHERE a - b <= 5")
	cmp := q.Where.(*CmpExpr)
	if !cmp.Left.IsDiff || cmp.Left.Col.Name != "a" || cmp.Left.Col2.Name != "b" {
		t.Fatalf("diff operand = %+v", cmp.Left)
	}
	// A minus before a number is a negative literal, not a difference.
	q2 := MustParse("SELECT * FROM S WHERE a - b >= -3")
	cmp2 := q2.Where.(*CmpExpr)
	if !cmp2.Left.IsDiff {
		t.Error("lhs should be a difference")
	}
	if cmp2.Right.IsCol || cmp2.Right.Lit.AsInt() != -3 {
		t.Errorf("rhs = %+v", cmp2.Right)
	}
}

func TestQueryStringRoundTrip(t *testing.T) {
	texts := []string{
		q1Text, q2Text, q3Text,
		"SELECT station, AVG(temp) AS avg_temp FROM Sensor [Range 30 Minute] GROUP BY station",
		"SELECT COUNT(*) FROM S [Now]",
	}
	for _, text := range texts {
		q1, err := Parse(text)
		if err != nil {
			t.Fatalf("%s: %v", text, err)
		}
		q2, err := Parse(q1.String())
		if err != nil {
			t.Fatalf("reparse of %q: %v", q1.String(), err)
		}
		if q1.String() != q2.String() {
			t.Errorf("round trip unstable:\n%s\n%s", q1.String(), q2.String())
		}
	}
}

func TestAnalyzePaperExampleProfileParts(t *testing.T) {
	// Paper §4: SELECT R.A, S.C FROM R [Now], S [Now]
	//           WHERE R.B=S.B AND R.A>10
	// yields S = {R,S}, P = {R.A,R.B,S.B,S.C}, F = {R.A > 10}.
	cat := paperCatalog()
	b, err := AnalyzeString("SELECT R.A, S.C FROM R [Now], S [Now] WHERE R.B = S.B AND R.A > 10", cat)
	if err != nil {
		t.Fatal(err)
	}
	if len(b.From) != 2 || len(b.Joins) != 1 {
		t.Fatalf("from=%v joins=%v", b.From, b.Joins)
	}
	if got := b.Joins[0].Canonical().String(); got != "R.B = S.B" {
		t.Errorf("join = %q", got)
	}
	need := b.NeededAttrs()
	if got := strings.Join(need["R"], ","); got != "A,B" {
		t.Errorf("P(R) = %s", got)
	}
	if got := strings.Join(need["S"], ","); got != "B,C" {
		t.Errorf("P(S) = %s", got)
	}
	selR := b.Sel["R"]
	if len(selR) != 1 || selR[0].String() != "A > 10" {
		t.Errorf("F(R) = %s", selR)
	}
	if !b.Sel["S"].IsTrue() {
		t.Errorf("F(S) should be TRUE, got %s", b.Sel["S"])
	}
	if len(b.Residual) != 0 {
		t.Errorf("residual should be empty: %s", b.Residual)
	}
}

func TestAnalyzeStarExpansion(t *testing.T) {
	cat := paperCatalog()
	b, err := AnalyzeString(q3Text, cat)
	if err != nil {
		t.Fatal(err)
	}
	// O.* expands to 4 attrs + buyerID + timestamp = 6 select columns.
	if len(b.SelectCols) != 6 {
		t.Fatalf("select cols = %v", b.SelectCols)
	}
	if b.OutSchema.Arity() != 6 {
		t.Fatalf("out schema = %v", b.OutSchema)
	}
	if !b.OutSchema.Has("OpenAuction.itemID") || !b.OutSchema.Has("ClosedAuction.buyerID") {
		t.Errorf("out schema fields = %v", b.OutSchema.AttrNames())
	}
}

func TestAnalyzeAliasCanonicalisation(t *testing.T) {
	cat := paperCatalog()
	a, err := AnalyzeString(q1Text, cat)
	if err != nil {
		t.Fatal(err)
	}
	differentAlias := strings.ReplaceAll(q1Text, " O,", " OA,")
	differentAlias = strings.ReplaceAll(differentAlias, "O.", "OA.")
	b, err := AnalyzeString(differentAlias, cat)
	if err != nil {
		t.Fatal(err)
	}
	if a.GroupSignature() != b.GroupSignature() {
		t.Errorf("signatures differ:\n%s\n%s", a.GroupSignature(), b.GroupSignature())
	}
	if a.Joins[0].Canonical() != b.Joins[0].Canonical() {
		t.Errorf("joins differ after canonicalisation")
	}
}

func TestAnalyzeSelfJoinKeepsAliases(t *testing.T) {
	cat := paperCatalog()
	b, err := AnalyzeString("SELECT a.itemID FROM OpenAuction [Now] a, OpenAuction [Range 1 Hour] b WHERE a.itemID = b.itemID", cat)
	if err != nil {
		t.Fatal(err)
	}
	if b.From[0].Alias != "a" || b.From[1].Alias != "b" {
		t.Errorf("self-join aliases mangled: %v", b.From)
	}
}

func TestAnalyzeUnqualifiedResolution(t *testing.T) {
	cat := paperCatalog()
	// buyerID exists only in ClosedAuction.
	b, err := AnalyzeString("SELECT buyerID FROM OpenAuction [Now] O, ClosedAuction [Now] C WHERE O.itemID = C.itemID", cat)
	if err != nil {
		t.Fatal(err)
	}
	if b.SelectCols[0].Qualifier != "ClosedAuction" {
		t.Errorf("resolved to %v", b.SelectCols[0])
	}
	// itemID is ambiguous.
	if _, err := AnalyzeString("SELECT itemID FROM OpenAuction [Now] O, ClosedAuction [Now] C WHERE O.itemID = C.itemID", cat); err == nil {
		t.Error("ambiguous column should fail")
	}
}

func TestAnalyzeErrors(t *testing.T) {
	cat := paperCatalog()
	bad := []string{
		"SELECT * FROM Nothing",
		"SELECT O.nope FROM OpenAuction [Now] O",
		"SELECT Z.itemID FROM OpenAuction [Now] O",
		"SELECT * FROM OpenAuction [Now] X, ClosedAuction [Now] X",
		"SELECT itemID, COUNT(*) FROM OpenAuction [Now]",          // plain col with agg, no GROUP BY
		"SELECT AVG(itemID) FROM OpenAuction [Now] GROUP BY nope", // bad group col
		"SELECT * FROM OpenAuction [Now] GROUP BY itemID",         // GROUP BY without agg
		"SELECT * , COUNT(*) FROM OpenAuction [Now]",              // star with agg
		"SELECT * FROM OpenAuction [Now] O, ClosedAuction [Now] C WHERE O.itemID = C.itemID OR O.sellerID = C.buyerID", // disjunctive joins
		"SELECT * FROM OpenAuction [Now] WHERE 1 = 1",                                                                  // constant comparison
		"SELECT SUM(C.buyerID) FROM OpenAuction [Now] O, ClosedAuction [Now] C WHERE O.nope = C.itemID",
	}
	for _, text := range bad {
		if _, err := AnalyzeString(text, cat); err == nil {
			t.Errorf("Analyze(%q) should fail", text)
		}
	}
}

func TestAnalyzeAggregate(t *testing.T) {
	cat := paperCatalog()
	b, err := AnalyzeString("SELECT sellerID, COUNT(*), AVG(start_price) AS avgp FROM OpenAuction [Range 1 Hour] GROUP BY sellerID", cat)
	if err != nil {
		t.Fatal(err)
	}
	if !b.IsAggregate() || len(b.Aggs) != 2 {
		t.Fatalf("aggs = %v", b.Aggs)
	}
	if b.Aggs[0].Func != AggCount || !b.Aggs[0].Star {
		t.Errorf("agg0 = %v", b.Aggs[0])
	}
	if b.Aggs[1].OutName != "avgp" {
		t.Errorf("agg1 out name = %s", b.Aggs[1].OutName)
	}
	if b.OutSchema.Arity() != 3 {
		t.Errorf("out schema = %v", b.OutSchema)
	}
	if !b.OutSchema.Has("OpenAuction.sellerID") || !b.OutSchema.Has("avgp") {
		t.Errorf("out fields = %v", b.OutSchema.AttrNames())
	}
	// COUNT outputs int, AVG outputs float.
	if f, _ := b.OutSchema.FieldByName("COUNT(*)"); f.Kind != stream.KindInt {
		t.Errorf("COUNT kind = %v", f.Kind)
	}
	if f, _ := b.OutSchema.FieldByName("avgp"); f.Kind != stream.KindFloat {
		t.Errorf("AVG kind = %v", f.Kind)
	}
}

func TestAnalyzeResidualDisjunction(t *testing.T) {
	cat := paperCatalog()
	// Disjunction across two streams is not pushable.
	b, err := AnalyzeString("SELECT O.itemID FROM OpenAuction [Now] O, ClosedAuction [Now] C WHERE O.itemID = C.itemID AND (O.start_price > 10 OR C.buyerID = 7)", cat)
	if err != nil {
		t.Fatal(err)
	}
	if !b.Sel["OpenAuction"].IsTrue() || !b.Sel["ClosedAuction"].IsTrue() {
		t.Errorf("selections should stay TRUE when disjunction is cross-stream")
	}
	if len(b.Residual) != 2 {
		t.Fatalf("residual = %s", b.Residual)
	}
	if len(b.Joins) != 1 {
		t.Errorf("join should still be extracted: %v", b.Joins)
	}
}

func TestAnalyzeSingleStreamDisjunctionIsPushable(t *testing.T) {
	cat := paperCatalog()
	b, err := AnalyzeString("SELECT itemID FROM OpenAuction [Now] WHERE start_price > 100 OR start_price < 1", cat)
	if err != nil {
		t.Fatal(err)
	}
	sel := b.Sel["OpenAuction"]
	if len(sel) != 2 {
		t.Fatalf("sel = %s", sel)
	}
	if len(b.Residual) != 0 {
		t.Errorf("residual should be empty")
	}
}

func TestAnalyzeSameStreamColCmpIsPushable(t *testing.T) {
	cat := paperCatalog()
	b, err := AnalyzeString("SELECT A FROM R [Now] WHERE A = B", cat)
	if err != nil {
		t.Fatal(err)
	}
	sel := b.Sel["R"]
	if len(sel) != 1 || len(sel[0]) != 1 {
		t.Fatalf("sel = %s", sel)
	}
	if sel[0][0].Term.String() != "A-B" {
		t.Errorf("term = %s", sel[0][0].Term)
	}
}

func TestAnalyzeCrossStreamDiffGoesResidual(t *testing.T) {
	cat := paperCatalog()
	b, err := AnalyzeString("SELECT O.itemID FROM OpenAuction [Range 5 Hour] O, ClosedAuction [Now] C WHERE O.itemID = C.itemID AND O.timestamp - C.timestamp >= -10800000", cat)
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Residual) != 1 || len(b.Residual[0]) != 1 {
		t.Fatalf("residual = %s", b.Residual)
	}
	if b.Residual[0][0].Term.String() != "OpenAuction.timestamp-ClosedAuction.timestamp" {
		t.Errorf("term = %s", b.Residual[0][0].Term)
	}
}

func TestGroupSignatureDiffers(t *testing.T) {
	cat := paperCatalog()
	b1, err1 := AnalyzeString(q1Text, cat)
	b2, err2 := AnalyzeString(q2Text, cat)
	b3, err3 := AnalyzeString("SELECT A FROM R [Now]", cat)
	if err1 != nil || err2 != nil || err3 != nil {
		t.Fatal(err1, err2, err3)
	}
	if b1.GroupSignature() != b2.GroupSignature() {
		t.Error("q1 and q2 share FROM+join and must share a signature")
	}
	if b1.GroupSignature() == b3.GroupSignature() {
		t.Error("different FROM must produce different signatures")
	}
	agg1, err4 := AnalyzeString("SELECT sellerID, COUNT(*) FROM OpenAuction [Range 1 Hour] GROUP BY sellerID", cat)
	agg2, err5 := AnalyzeString("SELECT sellerID, SUM(start_price) FROM OpenAuction [Range 1 Hour] GROUP BY sellerID", cat)
	if err4 != nil || err5 != nil {
		t.Fatal(err4, err5)
	}
	if agg1.GroupSignature() == agg2.GroupSignature() {
		t.Error("different aggregates must produce different signatures")
	}
}

func TestAnalyzeWindowsExposed(t *testing.T) {
	cat := paperCatalog()
	b, _ := AnalyzeString(q1Text, cat)
	if b.Windows["OpenAuction"] != 3*stream.Hour || b.Windows["ClosedAuction"] != stream.Now {
		t.Errorf("windows = %v", b.Windows)
	}
}

func TestAnalyzeOutputNamesWithAS(t *testing.T) {
	cat := paperCatalog()
	b, err := AnalyzeString("SELECT O.itemID AS id FROM OpenAuction [Now] O", cat)
	if err != nil {
		t.Fatal(err)
	}
	if !b.OutSchema.Has("id") {
		t.Errorf("out fields = %v", b.OutSchema.AttrNames())
	}
}
