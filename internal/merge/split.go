package merge

import (
	"fmt"
	"sort"

	"cosmos/internal/cql"
	"cosmos/internal/predicate"
	"cosmos/internal/profile"
	"cosmos/internal/stream"
)

// BuildMemberProfile composes the profile a member's user submits to
// retrieve its own results from the representative query's result stream
// (paper §4: "Profiles are also generated for the users to retrieve their
// query results from the result stream of the representative query. It is
// actually to re-tighten the constraints that have been 'loosened' in the
// representative query").
//
// The profile's filter re-applies, over the representative's result
// attribute namespace:
//
//   - the member's per-stream selections (requalified to "alias.attr"),
//   - the member's residual predicate,
//   - Lemma 1 window constraints −Ti ≤ tsᵢ − tsⱼ ≤ Tj on the hidden
//     per-input timestamp attributes wherever the member's window is
//     narrower than the representative's.
//
// The projection set P contains the member's own output columns plus the
// attributes its filter needs (the user proxy strips the extras before
// delivery). resultStream is the unique name the processor registered for
// the representative's result stream.
func BuildMemberProfile(member, rep *cql.Bound, resultStream string) (*profile.Profile, error) {
	if member.IsAggregate() {
		return aggregateMemberProfile(member, rep, resultStream), nil
	}
	repAttrs := map[string]bool{}
	for _, f := range rep.OutSchema.Fields {
		repAttrs[f.Name] = true
	}

	// Start from TRUE and conjoin each re-tightening piece.
	filter := predicate.True()

	// Per-stream member selections, requalified.
	aliases := make([]string, 0, len(member.Sel))
	for alias := range member.Sel {
		aliases = append(aliases, alias)
	}
	sort.Strings(aliases)
	for _, alias := range aliases {
		sel := member.Sel[alias]
		if sel.IsTrue() {
			continue
		}
		requalified, err := requalifyDNF(sel, alias, repAttrs)
		if err != nil {
			return nil, err
		}
		filter = filter.AndDNF(requalified)
	}

	// Residual predicates are already in the qualified namespace.
	if len(member.Residual) > 0 && !member.Residual.IsTrue() {
		if err := checkAttrs(member.Residual, repAttrs); err != nil {
			return nil, err
		}
		filter = filter.AndDNF(member.Residual)
	}

	// Window re-tightening (Lemma 1): for each pair of streams where the
	// member window is narrower than the representative's, bound the
	// timestamp spread: ts_j − ts_i ≤ T_i for every ordered pair (i, j).
	// A [Now]-windowed representative input has no hidden timestamp
	// column — its contribution timestamp equals the result timestamp,
	// addressed via the intrinsic-timestamp term.
	tsAttr := func(alias string) (string, error) {
		if rep.Windows[alias] == stream.Now {
			return predicate.IntrinsicTs, nil
		}
		name := cql.InputTsAttr(alias)
		if !repAttrs[name] {
			return "", fmt.Errorf("merge: representative lacks timestamp attribute %s for window re-tightening", name)
		}
		return name, nil
	}
	var winCons predicate.Conj
	if len(member.From) > 1 {
		for _, refI := range member.From {
			ti := member.Windows[refI.Alias]
			if ti == stream.Unbounded {
				continue
			}
			if ti == rep.Windows[refI.Alias] {
				continue // representative window already enforces it
			}
			for _, refJ := range member.From {
				if refJ.Alias == refI.Alias {
					continue
				}
				tsI, err := tsAttr(refI.Alias)
				if err != nil {
					return nil, err
				}
				tsJ, err := tsAttr(refJ.Alias)
				if err != nil {
					return nil, err
				}
				winCons = append(winCons, predicate.Constraint{
					Term:  predicate.Diff(tsJ, tsI),
					Op:    predicate.LE,
					Const: stream.Int(int64(ti)),
				})
			}
		}
	}
	if len(winCons) > 0 {
		filter = filter.And(winCons)
	}

	// Projection: member output columns + filter attributes. The
	// intrinsic timestamp is not a schema attribute and never appears in
	// projection sets.
	attrs := map[string]bool{}
	for _, c := range member.SelectCols {
		attrs[c.String()] = true
	}
	for _, a := range filter.Attrs() {
		if a != predicate.IntrinsicTs {
			attrs[a] = true
		}
	}
	p := profile.New()
	if filter.IsTrue() {
		filter = nil
	}
	p.AddStream(resultStream, setToSlice(attrs), filter)
	return p, nil
}

// aggregateMemberProfile handles aggregate members: group compatibility
// already guarantees equivalence, so the filter is TRUE and the
// projection is the member's own output columns. Aggregate attributes
// are addressed by their canonical spec names, which is how the
// representative exposes them regardless of member AS aliases.
func aggregateMemberProfile(member, rep *cql.Bound, resultStream string) *profile.Profile {
	attrs := map[string]bool{}
	for _, c := range member.SelectCols {
		attrs[c.String()] = true
	}
	for _, a := range member.Aggs {
		attrs[a.String()] = true
	}
	p := profile.New()
	p.AddStream(resultStream, setToSlice(attrs), nil)
	return p
}

// requalifyDNF rewrites a bare-attribute DNF into the qualified result
// namespace, verifying every attribute survived into the representative's
// projection.
func requalifyDNF(d predicate.DNF, alias string, repAttrs map[string]bool) (predicate.DNF, error) {
	out := make(predicate.DNF, len(d))
	for i, cj := range d {
		out[i] = make(predicate.Conj, len(cj))
		for j, c := range cj {
			rc := c
			rc.Term.A = alias + "." + c.Term.A
			if c.Term.B != "" {
				rc.Term.B = alias + "." + c.Term.B
			}
			if !repAttrs[rc.Term.A] || (rc.Term.B != "" && !repAttrs[rc.Term.B]) {
				return nil, fmt.Errorf("merge: representative does not project %s needed by member filter", rc.Term)
			}
			out[i][j] = rc
		}
	}
	return out, nil
}

// checkAttrs verifies a qualified DNF references only representative
// output attributes.
func checkAttrs(d predicate.DNF, repAttrs map[string]bool) error {
	for _, a := range d.Attrs() {
		if !repAttrs[a] {
			return fmt.Errorf("merge: representative does not project %s needed by member residual", a)
		}
	}
	return nil
}

func setToSlice(set map[string]bool) []string {
	out := make([]string, 0, len(set))
	for a := range set {
		out = append(out, a)
	}
	sort.Strings(out)
	return out
}
