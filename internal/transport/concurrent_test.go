package transport

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"cosmos/internal/stream"
)

// TestConcurrentClients exercises the daemon with several clients
// registering, querying and publishing simultaneously — the shape a real
// deployment sees. Run with -race in CI.
func TestConcurrentClients(t *testing.T) {
	addr, shutdown := startServer(t)
	defer shutdown()

	// One publisher client registers the stream.
	pub, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()
	info := auctionInfo()
	if err := pub.Register(info, 0); err != nil {
		t.Fatal(err)
	}

	const subscribers = 4
	var delivered atomic.Int64
	var wg sync.WaitGroup
	clients := make([]*Client, subscribers)
	for i := 0; i < subscribers; i++ {
		c, err := Dial(addr)
		if err != nil {
			t.Fatal(err)
		}
		clients[i] = c
		defer c.Close()
		// Each subscriber has a different threshold.
		q := fmt.Sprintf("SELECT itemID FROM OpenAuction [Now] WHERE start_price > %d", i*100)
		if _, err := c.Submit(q, (i+3)%16, func(stream.Tuple) {
			delivered.Add(1)
		}); err != nil {
			t.Fatal(err)
		}
	}

	const tuples = 50
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < tuples; i++ {
			tp := stream.MustTuple(info.Schema, stream.Timestamp(i+1),
				stream.Int(int64(i)), stream.Float(float64((i*37)%400)))
			if err := pub.Publish(tp); err != nil {
				t.Errorf("publish: %v", err)
				return
			}
		}
	}()
	wg.Wait()

	// Expected deliveries: per tuple, the subscribers whose threshold is
	// below its price.
	want := 0
	for i := 0; i < tuples; i++ {
		price := float64((i * 37) % 400)
		for s := 0; s < subscribers; s++ {
			if price > float64(s*100) {
				want++
			}
		}
	}
	deadline := time.Now().Add(3 * time.Second)
	for delivered.Load() != int64(want) && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if got := delivered.Load(); got != int64(want) {
		t.Fatalf("delivered %d results, want %d", got, want)
	}

	st, err := pub.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Queries != subscribers {
		t.Errorf("queries = %d", st.Queries)
	}
}
