package cosmos

import (
	"strings"

	"cosmos/internal/cql"
)

// StreamUse is one FROM-clause entry of an explained query: the stream,
// the alias it is read under, and its window.
type StreamUse struct {
	Stream string
	Alias  string // equals Stream when the query gives no alias
	Window Duration
}

// String renders the entry in CQL syntax.
func (u StreamUse) String() string {
	s := u.Stream + " [" + windowText(u.Window) + "]"
	if u.Alias != "" && u.Alias != u.Stream {
		s += " " + u.Alias
	}
	return s
}

func windowText(d Duration) string {
	switch d {
	case Now:
		return "Now"
	case Unbounded:
		return "Unbounded"
	default:
		return "Range " + d.String()
	}
}

// QueryInfo is the parsed shape of a CQL statement — what Explain
// reports without binding the query to a catalog: the streams it reads
// (with windows), the select list, the filter, and the grouping.
type QueryInfo struct {
	// Streams lists the FROM-clause entries in query order.
	Streams []StreamUse
	// Select lists the rendered select items (columns, aggregates, AS
	// names) in query order.
	Select []string
	// Where is the rendered filter predicate; empty when absent.
	Where string
	// GroupBy lists the rendered grouping columns.
	GroupBy []string
	// Aggregate reports whether the query computes aggregates.
	Aggregate bool
}

// String renders the info as a multi-line explanation (the output of
// `cosmosctl explain`).
func (qi QueryInfo) String() string {
	var b strings.Builder
	b.WriteString("streams:\n")
	for _, u := range qi.Streams {
		b.WriteString("  " + u.String() + "\n")
	}
	b.WriteString("select: " + strings.Join(qi.Select, ", ") + "\n")
	if qi.Where != "" {
		b.WriteString("where:  " + qi.Where + "\n")
	}
	if len(qi.GroupBy) > 0 {
		b.WriteString("group:  " + strings.Join(qi.GroupBy, ", ") + "\n")
	}
	kind := "select-project filter"
	if qi.Aggregate {
		kind = "windowed aggregate"
	} else if len(qi.Streams) > 1 {
		kind = "window join"
	}
	b.WriteString("kind:   " + kind)
	return b.String()
}

// Explain parses a CQL statement and reports its shape without binding
// it to a catalog — the streams referenced (with windows and aliases),
// the select list, the filter, and the grouping. It accepts any
// statement ParseQuery accepts; binding errors (unknown streams or
// attributes) surface only at Submit, which resolves against the
// deployment's catalog.
func Explain(cqlText string) (QueryInfo, error) {
	q, err := cql.Parse(cqlText)
	if err != nil {
		return QueryInfo{}, err
	}
	info := QueryInfo{Aggregate: q.HasAggregates()}
	for _, ref := range q.From {
		info.Streams = append(info.Streams, StreamUse{
			Stream: ref.Stream, Alias: ref.Alias, Window: ref.Window,
		})
	}
	for _, item := range q.Select {
		info.Select = append(info.Select, item.String())
	}
	if q.Where != nil {
		info.Where = q.Where.String()
	}
	for _, g := range q.GroupBy {
		info.GroupBy = append(info.GroupBy, g.String())
	}
	return info, nil
}
