package cql

import (
	"fmt"
	"sort"
	"strings"

	"cosmos/internal/predicate"
	"cosmos/internal/stream"
)

// Catalog resolves stream names to their registry records. *stream.Registry
// satisfies it.
type Catalog interface {
	Lookup(name string) (*stream.Info, bool)
}

// AggSpec is one bound aggregate output.
type AggSpec struct {
	Func    AggFunc
	Arg     ColRef // qualified; zero when Star
	Star    bool
	OutName string
}

// String renders the spec canonically.
func (a AggSpec) String() string {
	arg := "*"
	if !a.Star {
		arg = a.Arg.String()
	}
	return string(a.Func) + "(" + arg + ")"
}

// Bound is the analyzed, normalised form of a continuous query. All column
// references are alias-qualified; when the FROM clause has no repeated
// streams, aliases are canonicalised to the stream names so that
// equivalent queries written with different aliases normalise identically
// (a prerequisite for the grouping optimiser).
type Bound struct {
	// Raw is the original CQL text.
	Raw string
	// From lists the stream references with resolved windows, in FROM
	// order. Aliases are unique.
	From []StreamRef
	// Schemas and Infos map alias → catalog records.
	Schemas map[string]*stream.Schema
	Infos   map[string]*stream.Info
	// SelectCols is the expanded SPJ select list (empty for aggregates).
	SelectCols []ColRef
	// OutNames holds the output field name for each SelectCols entry.
	OutNames []string
	// Aggs lists aggregate outputs (empty for SPJ queries).
	Aggs []AggSpec
	// GroupBy lists grouping columns, qualified.
	GroupBy []ColRef
	// Sel maps alias → pushable selection DNF over *bare* attribute names;
	// this becomes the F of the source-retrieval profile for that stream.
	Sel map[string]predicate.DNF
	// Residual is the post-join predicate (qualified names, possibly
	// attribute-difference terms) not pushable into per-stream filters.
	Residual predicate.DNF
	// Joins are the cross-stream attribute comparisons, qualified.
	Joins []predicate.AttrCmp
	// Windows maps alias → window duration.
	Windows map[string]stream.Duration
	// OutSchema describes the result stream; its Stream name is a
	// placeholder until the processor assigns a unique result stream name.
	OutSchema *stream.Schema
	// IncludeInputTs asks the engine to append one hidden attribute
	// "<alias>.__ts" (the contributing input tuple's timestamp) per FROM
	// stream to join results. Representative queries set it so that
	// result-splitting profiles can re-tighten member windows with
	// Lemma 1 constraints such as −3h ≤ O.__ts − C.__ts ≤ 0.
	IncludeInputTs bool
}

// InputTsAttr is the hidden result attribute carrying the contributing
// input tuple's timestamp for one FROM alias.
func InputTsAttr(alias string) string { return alias + ".__ts" }

// Analyze binds a parsed query against the catalog.
func Analyze(q *Query, cat Catalog) (*Bound, error) {
	b := &Bound{
		Raw:     q.Raw,
		Schemas: map[string]*stream.Schema{},
		Infos:   map[string]*stream.Info{},
		Sel:     map[string]predicate.DNF{},
		Windows: map[string]stream.Duration{},
	}
	if len(q.From) == 0 {
		return nil, fmt.Errorf("cql: query has no FROM clause")
	}

	// Resolve FROM, detecting duplicate aliases and repeated streams.
	streamCount := map[string]int{}
	for _, ref := range q.From {
		streamCount[ref.Stream]++
	}
	selfJoin := false
	for _, n := range streamCount {
		if n > 1 {
			selfJoin = true
		}
	}
	aliasSeen := map[string]bool{}
	userAliasSeen := map[string]bool{}
	aliasMap := map[string]string{} // original alias → canonical alias
	for _, ref := range q.From {
		info, ok := cat.Lookup(ref.Stream)
		if !ok {
			return nil, fmt.Errorf("cql: unknown stream %q", ref.Stream)
		}
		if userAliasSeen[ref.Alias] {
			return nil, fmt.Errorf("cql: duplicate alias %q", ref.Alias)
		}
		userAliasSeen[ref.Alias] = true
		canon := ref.Alias
		if !selfJoin {
			canon = ref.Stream
		}
		if aliasSeen[canon] {
			return nil, fmt.Errorf("cql: duplicate alias %q", canon)
		}
		aliasSeen[canon] = true
		aliasMap[ref.Alias] = canon
		b.From = append(b.From, StreamRef{Stream: ref.Stream, Window: ref.Window, Alias: canon})
		b.Schemas[canon] = info.Schema
		b.Infos[canon] = info
		b.Windows[canon] = ref.Window
	}

	resolve := func(c ColRef) (ColRef, error) { return b.resolveCol(c, aliasMap) }

	// Resolve GROUP BY first: grouped plain SELECT columns are validated
	// against it.
	for _, g := range q.GroupBy {
		c, err := resolve(g)
		if err != nil {
			return nil, err
		}
		b.GroupBy = append(b.GroupBy, c)
	}
	inGroupBy := func(c ColRef) bool {
		for _, g := range b.GroupBy {
			if g == c {
				return true
			}
		}
		return false
	}

	// Expand and validate the SELECT list.
	hasAgg := q.HasAggregates()
	for _, item := range q.Select {
		switch {
		case item.Star && hasAgg:
			return nil, fmt.Errorf("cql: * cannot be mixed with aggregates")
		case item.Star && item.Qualifier == "":
			for _, ref := range b.From {
				sch := b.Schemas[ref.Alias]
				for _, f := range sch.Fields {
					c := ColRef{Qualifier: ref.Alias, Name: f.Name}
					b.SelectCols = append(b.SelectCols, c)
					b.OutNames = append(b.OutNames, c.String())
				}
			}
		case item.Star:
			alias, ok := aliasMap[item.Qualifier]
			if !ok {
				return nil, fmt.Errorf("cql: unknown alias %q in %s.*", item.Qualifier, item.Qualifier)
			}
			for _, f := range b.Schemas[alias].Fields {
				c := ColRef{Qualifier: alias, Name: f.Name}
				b.SelectCols = append(b.SelectCols, c)
				b.OutNames = append(b.OutNames, c.String())
			}
		case item.Agg != "":
			spec := AggSpec{Func: item.Agg, Star: item.AggStar}
			if !item.AggStar {
				c, err := resolve(item.AggArg)
				if err != nil {
					return nil, err
				}
				if item.Agg != AggCount {
					f, _ := b.Schemas[c.Qualifier].FieldByName(c.Name)
					if f.Kind == stream.KindString && (item.Agg == AggSum || item.Agg == AggAvg) {
						return nil, fmt.Errorf("cql: %s over string attribute %s", item.Agg, c)
					}
				}
				spec.Arg = c
			} else if item.Agg != AggCount {
				return nil, fmt.Errorf("cql: %s(*) is not allowed; only COUNT(*)", item.Agg)
			}
			spec.OutName = item.As
			if spec.OutName == "" {
				spec.OutName = spec.String()
			}
			b.Aggs = append(b.Aggs, spec)
		default:
			c, err := resolve(item.Col)
			if err != nil {
				return nil, err
			}
			if hasAgg && !inGroupBy(c) {
				return nil, fmt.Errorf("cql: plain column %s must appear in GROUP BY when aggregating", c)
			}
			b.SelectCols = append(b.SelectCols, c)
			name := item.As
			if name == "" {
				name = c.String()
			}
			b.OutNames = append(b.OutNames, name)
		}
	}

	if len(b.GroupBy) > 0 && len(b.Aggs) == 0 {
		return nil, fmt.Errorf("cql: GROUP BY without aggregates is not supported")
	}

	// WHERE → DNF → classification.
	if q.Where != nil {
		if err := b.classifyWhere(q.Where, aliasMap); err != nil {
			return nil, err
		}
	}
	// Default every stream's selection to TRUE so profile composition can
	// rely on the map being total.
	for _, ref := range b.From {
		if _, ok := b.Sel[ref.Alias]; !ok {
			b.Sel[ref.Alias] = predicate.True()
		}
	}

	if err := b.buildOutSchema(); err != nil {
		return nil, err
	}
	return b, nil
}

// AnalyzeString parses and binds in one step.
func AnalyzeString(src string, cat Catalog) (*Bound, error) {
	q, err := Parse(src)
	if err != nil {
		return nil, err
	}
	return Analyze(q, cat)
}

// resolveCol qualifies a column reference and validates it.
func (b *Bound) resolveCol(c ColRef, aliasMap map[string]string) (ColRef, error) {
	if c.Qualifier != "" {
		alias, ok := aliasMap[c.Qualifier]
		if !ok {
			// The user may already use the canonical (stream) name.
			if _, ok := b.Schemas[c.Qualifier]; ok {
				alias = c.Qualifier
			} else {
				return ColRef{}, fmt.Errorf("cql: unknown alias %q", c.Qualifier)
			}
		}
		if !b.Schemas[alias].Has(c.Name) {
			return ColRef{}, fmt.Errorf("cql: stream %s has no attribute %s",
				b.Schemas[alias].Stream, c.Name)
		}
		return ColRef{Qualifier: alias, Name: c.Name}, nil
	}
	var found []string
	for alias, sch := range b.Schemas {
		if sch.Has(c.Name) {
			found = append(found, alias)
		}
	}
	switch len(found) {
	case 0:
		return ColRef{}, fmt.Errorf("cql: no stream has attribute %s", c.Name)
	case 1:
		return ColRef{Qualifier: found[0], Name: c.Name}, nil
	default:
		sort.Strings(found)
		return ColRef{}, fmt.Errorf("cql: attribute %s is ambiguous (%s)",
			c.Name, strings.Join(found, ", "))
	}
}

// atom is one classified WHERE comparison.
type atom struct {
	isJoin bool
	join   predicate.AttrCmp    // cross-alias column comparison
	alias  string               // owning alias for pushable constraints; "" for cross-alias diff
	con    predicate.Constraint // term-vs-const constraint (qualified names)
}

// classifyWhere converts the WHERE tree into DNF and splits it into join
// predicates, per-stream selections, and a residual.
func (b *Bound) classifyWhere(e Expr, aliasMap map[string]string) error {
	dnf, err := b.toDNF(e, aliasMap)
	if err != nil {
		return err
	}
	if len(dnf) == 0 {
		return fmt.Errorf("cql: WHERE clause is unsatisfiable")
	}

	// Join predicates must appear in every disjunct; collect the canonical
	// intersection and reject disjunctive join structure otherwise.
	joinSets := make([]map[string]predicate.AttrCmp, len(dnf))
	for i, disj := range dnf {
		joinSets[i] = map[string]predicate.AttrCmp{}
		for _, a := range disj {
			if a.isJoin {
				c := a.join.Canonical()
				joinSets[i][c.String()] = c
			}
		}
	}
	for key, cmp := range joinSets[0] {
		inAll := true
		for _, s := range joinSets[1:] {
			if _, ok := s[key]; !ok {
				inAll = false
				break
			}
		}
		if inAll {
			b.Joins = append(b.Joins, cmp)
		}
	}
	sort.Slice(b.Joins, func(i, j int) bool { return b.Joins[i].String() < b.Joins[j].String() })
	for i, s := range joinSets {
		if len(s) != len(b.Joins) {
			return fmt.Errorf("cql: disjunct %d has join predicates not shared by all disjuncts (unsupported)", i+1)
		}
	}

	// Strip joins; examine what remains.
	rest := make([][]atom, len(dnf))
	aliasesTouched := map[string]bool{}
	crossDiff := false
	for i, disj := range dnf {
		for _, a := range disj {
			if a.isJoin {
				continue
			}
			rest[i] = append(rest[i], a)
			if a.alias == "" {
				crossDiff = true
			} else {
				aliasesTouched[a.alias] = true
			}
		}
	}

	if len(dnf) == 1 {
		// Pure conjunction: split cleanly.
		perAlias := map[string]predicate.Conj{}
		var residual predicate.Conj
		for _, a := range rest[0] {
			if a.alias == "" {
				residual = append(residual, a.con)
				continue
			}
			perAlias[a.alias] = append(perAlias[a.alias], stripQualifier(a.con, a.alias))
		}
		for alias, cj := range perAlias {
			b.Sel[alias] = predicate.DNF{cj}
		}
		if len(residual) > 0 {
			b.Residual = predicate.DNF{residual}
		}
		return nil
	}

	// Multiple disjuncts: pushable only if every constraint concerns the
	// same single alias and there are no cross-alias terms.
	if !crossDiff && len(aliasesTouched) == 1 {
		var alias string
		for a := range aliasesTouched {
			alias = a
		}
		out := make(predicate.DNF, len(rest))
		for i, disj := range rest {
			cj := make(predicate.Conj, 0, len(disj))
			for _, a := range disj {
				cj = append(cj, stripQualifier(a.con, alias))
			}
			out[i] = cj
		}
		b.Sel[alias] = out.Simplify()
		return nil
	}

	// Otherwise the whole disjunction is evaluated post-join.
	out := make(predicate.DNF, len(rest))
	for i, disj := range rest {
		cj := make(predicate.Conj, 0, len(disj))
		for _, a := range disj {
			cj = append(cj, a.con)
		}
		out[i] = cj
	}
	b.Residual = out.Simplify()
	return nil
}

// stripQualifier rewrites a qualified constraint into the bare attribute
// namespace of one stream, the namespace CBN filters use.
func stripQualifier(c predicate.Constraint, alias string) predicate.Constraint {
	prefix := alias + "."
	out := c
	out.Term.A = strings.TrimPrefix(c.Term.A, prefix)
	if c.Term.B != "" {
		out.Term.B = strings.TrimPrefix(c.Term.B, prefix)
	}
	return out
}

// toDNF lowers the WHERE tree into disjunctive normal form over atoms.
func (b *Bound) toDNF(e Expr, aliasMap map[string]string) ([][]atom, error) {
	switch ex := e.(type) {
	case *BinExpr:
		l, err := b.toDNF(ex.L, aliasMap)
		if err != nil {
			return nil, err
		}
		r, err := b.toDNF(ex.R, aliasMap)
		if err != nil {
			return nil, err
		}
		if ex.Op == OpOr {
			return append(l, r...), nil
		}
		// AND: cross product.
		out := make([][]atom, 0, len(l)*len(r))
		for _, dl := range l {
			for _, dr := range r {
				d := make([]atom, 0, len(dl)+len(dr))
				d = append(d, dl...)
				d = append(d, dr...)
				out = append(out, d)
			}
		}
		return out, nil
	case *CmpExpr:
		a, err := b.classifyCmp(ex, aliasMap)
		if err != nil {
			return nil, err
		}
		return [][]atom{{a}}, nil
	default:
		return nil, fmt.Errorf("cql: unsupported WHERE expression %T", e)
	}
}

// classifyCmp normalises one comparison into an atom.
func (b *Bound) classifyCmp(c *CmpExpr, aliasMap map[string]string) (atom, error) {
	left, right, op := c.Left, c.Right, c.Op
	// Normalise literals to the right.
	if !left.IsCol && right.IsCol {
		left, right, op = right, left, op.Flip()
	}
	switch {
	case left.IsCol && !right.IsCol && !left.IsDiff:
		col, err := b.resolveCol(left.Col, aliasMap)
		if err != nil {
			return atom{}, err
		}
		return atom{
			alias: col.Qualifier,
			con:   predicate.Constraint{Term: predicate.Attr(col.String()), Op: op, Const: right.Lit},
		}, nil
	case left.IsCol && !right.IsCol && left.IsDiff:
		colA, err := b.resolveCol(left.Col, aliasMap)
		if err != nil {
			return atom{}, err
		}
		colB, err := b.resolveCol(left.Col2, aliasMap)
		if err != nil {
			return atom{}, err
		}
		alias := ""
		if colA.Qualifier == colB.Qualifier {
			alias = colA.Qualifier
		}
		return atom{
			alias: alias,
			con: predicate.Constraint{
				Term:  predicate.Diff(colA.String(), colB.String()),
				Op:    op,
				Const: right.Lit,
			},
		}, nil
	case left.IsCol && right.IsCol && !left.IsDiff && !right.IsDiff:
		colA, err := b.resolveCol(left.Col, aliasMap)
		if err != nil {
			return atom{}, err
		}
		colB, err := b.resolveCol(right.Col, aliasMap)
		if err != nil {
			return atom{}, err
		}
		if colA.Qualifier == colB.Qualifier {
			// Same-stream attribute comparison: expressible as a
			// difference term against zero, hence pushable.
			return atom{
				alias: colA.Qualifier,
				con: predicate.Constraint{
					Term:  predicate.Diff(colA.String(), colB.String()),
					Op:    op,
					Const: stream.Int(0),
				},
			}, nil
		}
		return atom{isJoin: true, join: predicate.AttrCmp{Left: colA.String(), Op: op, Right: colB.String()}}, nil
	case !left.IsCol && !right.IsCol:
		return atom{}, fmt.Errorf("cql: constant comparison %s is not supported", c)
	default:
		return atom{}, fmt.Errorf("cql: unsupported comparison form %s", c)
	}
}

// buildOutSchema derives the result stream schema. The stream name is a
// placeholder ("result"); processors rename it when registering the
// result stream.
func (b *Bound) buildOutSchema() error {
	var fields []stream.Field
	if len(b.Aggs) > 0 {
		// Selected plain columns (all validated to be grouping columns)
		// come first, then the aggregates, mirroring SQL output shape.
		for i, c := range b.SelectCols {
			f, _ := b.Schemas[c.Qualifier].FieldByName(c.Name)
			fields = append(fields, stream.Field{Name: b.OutNames[i], Kind: f.Kind, AvgLen: f.AvgLen})
		}
		for _, a := range b.Aggs {
			kind := stream.KindFloat
			switch a.Func {
			case AggCount:
				kind = stream.KindInt
			case AggMin, AggMax:
				if !a.Star {
					f, _ := b.Schemas[a.Arg.Qualifier].FieldByName(a.Arg.Name)
					kind = f.Kind
				}
			}
			fields = append(fields, stream.Field{Name: a.OutName, Kind: kind})
		}
	} else {
		for i, c := range b.SelectCols {
			f, _ := b.Schemas[c.Qualifier].FieldByName(c.Name)
			fields = append(fields, stream.Field{Name: b.OutNames[i], Kind: f.Kind, AvgLen: f.AvgLen})
		}
		if b.IncludeInputTs && len(b.From) > 1 {
			for _, ref := range b.From {
				// A [Now]-windowed input's timestamp always equals the
				// result timestamp (Lemma 1 with T = 0), so no hidden
				// column is needed for it; splitting filters use the
				// intrinsic timestamp instead.
				if ref.Window == stream.Now {
					continue
				}
				fields = append(fields, stream.Field{Name: InputTsAttr(ref.Alias), Kind: stream.KindTime})
			}
		}
	}
	sch, err := stream.NewSchema("result", fields...)
	if err != nil {
		return fmt.Errorf("cql: building output schema: %w", err)
	}
	b.OutSchema = sch
	return nil
}

// NeededAttrs returns, per alias, the sorted set of bare attribute names
// the query touches — the projection set P of its source-retrieval profile
// (paper §4: "a projection predicate is composed by using all the
// attributes in the query").
func (b *Bound) NeededAttrs() map[string][]string {
	need := map[string]map[string]bool{}
	for _, ref := range b.From {
		need[ref.Alias] = map[string]bool{}
	}
	addQualified := func(qname string) {
		for alias := range need {
			prefix := alias + "."
			if strings.HasPrefix(qname, prefix) {
				need[alias][strings.TrimPrefix(qname, prefix)] = true
				return
			}
		}
	}
	for _, c := range b.SelectCols {
		need[c.Qualifier][c.Name] = true
	}
	for _, g := range b.GroupBy {
		need[g.Qualifier][g.Name] = true
	}
	for _, a := range b.Aggs {
		if !a.Star {
			need[a.Arg.Qualifier][a.Arg.Name] = true
		}
	}
	for _, j := range b.Joins {
		addQualified(j.Left)
		addQualified(j.Right)
	}
	for alias, dnf := range b.Sel {
		for _, attr := range dnf.Attrs() {
			need[alias][attr] = true
		}
	}
	for _, attr := range b.Residual.Attrs() {
		addQualified(attr)
	}
	out := map[string][]string{}
	for alias, set := range need {
		attrs := make([]string, 0, len(set))
		for a := range set {
			attrs = append(attrs, a)
		}
		sort.Strings(attrs)
		out[alias] = attrs
	}
	return out
}

// IsAggregate reports whether the query computes aggregates.
func (b *Bound) IsAggregate() bool { return len(b.Aggs) > 0 }

// GroupSignature returns the canonical signature used by the grouping
// optimiser: queries may share a group only when they involve the same
// set of streams, the same join predicates, and — for aggregates — the
// same aggregation functions and grouping columns (paper §4).
func (b *Bound) GroupSignature() string {
	streams := make([]string, len(b.From))
	for i, ref := range b.From {
		streams[i] = ref.Stream + "/" + ref.Alias
	}
	sort.Strings(streams)
	var parts []string
	parts = append(parts, "from:"+strings.Join(streams, ","))
	parts = append(parts, "join:"+predicate.CanonicalAttrCmps(b.Joins))
	if len(b.Aggs) > 0 {
		aggs := make([]string, len(b.Aggs))
		for i, a := range b.Aggs {
			aggs[i] = a.String()
		}
		sort.Strings(aggs)
		groups := make([]string, len(b.GroupBy))
		for i, g := range b.GroupBy {
			groups[i] = g.String()
		}
		sort.Strings(groups)
		parts = append(parts, "agg:"+strings.Join(aggs, ","), "by:"+strings.Join(groups, ","))
	}
	return strings.Join(parts, ";")
}

// Aliases returns the canonical aliases in FROM order.
func (b *Bound) Aliases() []string {
	out := make([]string, len(b.From))
	for i, ref := range b.From {
		out[i] = ref.Alias
	}
	return out
}
