package stream

import (
	"fmt"
	"strings"
)

// Tuple is one element of a stream: a timestamped row conforming to a
// schema. Tuples are treated as immutable once published; operators build
// new tuples rather than mutating inputs.
type Tuple struct {
	Schema *Schema
	Ts     Timestamp
	Values []Value
}

// NewTuple builds a tuple after checking arity against the schema.
func NewTuple(s *Schema, ts Timestamp, values ...Value) (Tuple, error) {
	if len(values) != s.Arity() {
		return Tuple{}, fmt.Errorf("stream %s: tuple arity %d, schema arity %d",
			s.Stream, len(values), s.Arity())
	}
	for i, v := range values {
		if !compatible(s.Fields[i].Kind, v.Kind()) {
			return Tuple{}, fmt.Errorf("stream %s: attribute %s expects %s, got %s",
				s.Stream, s.Fields[i].Name, s.Fields[i].Kind, v.Kind())
		}
	}
	return Tuple{Schema: s, Ts: ts, Values: values}, nil
}

// MustTuple is NewTuple that panics on error.
func MustTuple(s *Schema, ts Timestamp, values ...Value) Tuple {
	t, err := NewTuple(s, ts, values...)
	if err != nil {
		panic(err)
	}
	return t
}

// compatible reports whether a value kind may populate a field kind.
// Ints widen into floats and times; everything else must match exactly.
func compatible(field, val Kind) bool {
	if field == val {
		return true
	}
	if val == KindInt && (field == KindFloat || field == KindTime) {
		return true
	}
	return false
}

// Get returns the value of the named attribute.
func (t Tuple) Get(name string) (Value, bool) {
	i := t.Schema.ColIndex(name)
	if i < 0 {
		return Value{}, false
	}
	return t.Values[i], true
}

// MustGet is Get that panics on unknown attributes; for internal plan code
// that has already validated attribute references.
func (t Tuple) MustGet(name string) Value {
	v, ok := t.Get(name)
	if !ok {
		panic(fmt.Sprintf("stream %s: no attribute %s", t.Schema.Stream, name))
	}
	return v
}

// Project returns a new tuple containing only the given attributes, bound
// to the provided projected schema (which callers typically obtain from
// Schema.Project once and reuse).
func (t Tuple) Project(proj *Schema) (Tuple, error) {
	vals := make([]Value, proj.Arity())
	for i, f := range proj.Fields {
		v, ok := t.Get(f.Name)
		if !ok {
			return Tuple{}, fmt.Errorf("stream %s: projection needs missing attribute %s",
				t.Schema.Stream, f.Name)
		}
		vals[i] = v
	}
	return Tuple{Schema: proj, Ts: t.Ts, Values: vals}, nil
}

// ProjectIdx is the compiled-path counterpart of Project: it builds the
// projected tuple from pre-resolved column indices, so the per-tuple cost
// is a single value-slice copy with no name lookups. Callers obtain idx
// and proj once (e.g. via Schema.ProjectIdx) and must ensure every index
// is in range for the tuple's value slice.
//
//cosmos:hotpath
func (t Tuple) ProjectIdx(idx []int, proj *Schema) Tuple {
	vals := make([]Value, len(idx))
	for i, j := range idx {
		vals[i] = t.Values[j]
	}
	return Tuple{Schema: proj, Ts: t.Ts, Values: vals}
}

// WireSize returns the assumed wire size of the tuple payload in bytes:
// the sum of per-value sizes plus the timestamp.
//
//cosmos:hotpath
func (t Tuple) WireSize() int {
	n := 8 // timestamp
	for _, v := range t.Values {
		n += v.WireSize()
	}
	return n
}

// Concat builds a join output tuple from two inputs under the join result
// schema (see JoinSchema). The result timestamp is the later of the two
// input timestamps, following the standard interpretation for window joins
// over application time.
func Concat(result *Schema, left, right Tuple) Tuple {
	vals := make([]Value, 0, len(left.Values)+len(right.Values))
	vals = append(vals, left.Values...)
	vals = append(vals, right.Values...)
	ts := left.Ts
	if right.Ts > ts {
		ts = right.Ts
	}
	return Tuple{Schema: result, Ts: ts, Values: vals}
}

// Equal reports whether two tuples have the same timestamp and values.
// Schemas are compared by stream name and arity only.
func (t Tuple) Equal(u Tuple) bool {
	if t.Ts != u.Ts || len(t.Values) != len(u.Values) {
		return false
	}
	if t.Schema != nil && u.Schema != nil && t.Schema.Stream != u.Schema.Stream {
		return false
	}
	for i := range t.Values {
		if !t.Values[i].Equal(u.Values[i]) {
			return false
		}
	}
	return true
}

// Key renders the tuple's values as a canonical comparable string; used by
// tests and by duplicate-elimination in result splitting.
func (t Tuple) Key() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d|", t.Ts)
	for i, v := range t.Values {
		if i > 0 {
			b.WriteByte('|')
		}
		b.WriteString(v.String())
	}
	return b.String()
}

// String implements fmt.Stringer for debugging output.
func (t Tuple) String() string {
	var b strings.Builder
	name := "?"
	if t.Schema != nil {
		name = t.Schema.Stream
	}
	fmt.Fprintf(&b, "%s@%d(", name, t.Ts)
	for i, v := range t.Values {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(v.String())
	}
	b.WriteByte(')')
	return b.String()
}
