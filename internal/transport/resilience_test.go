package transport

import (
	"net"
	"runtime"
	"sync"
	"testing"
	"time"

	"cosmos/internal/core"
	"cosmos/internal/faultnet"
	"cosmos/internal/stream"
)

// fastResilience keeps reconnect tests snappy.
func fastResilience() *Resilience {
	return &Resilience{MinBackoff: 5 * time.Millisecond, MaxBackoff: 50 * time.Millisecond}
}

// subRecorder collects one subscription's delivery stream and lifecycle
// events.
type subRecorder struct {
	mu   sync.Mutex
	seqs []uint64
	rows []stream.Tuple
	gaps []Gap
	ends []error
}

func (r *subRecorder) onResult(t stream.Tuple, seq uint64) {
	r.mu.Lock()
	r.seqs = append(r.seqs, seq)
	r.rows = append(r.rows, t)
	r.mu.Unlock()
}
func (r *subRecorder) onEnd(err error) {
	r.mu.Lock()
	r.ends = append(r.ends, err)
	r.mu.Unlock()
}
func (r *subRecorder) onGap(g Gap) {
	r.mu.Lock()
	r.gaps = append(r.gaps, g)
	r.mu.Unlock()
}
func (r *subRecorder) snapshot() ([]uint64, []Gap, []error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]uint64(nil), r.seqs...), append([]Gap(nil), r.gaps...), append([]error(nil), r.ends...)
}

// waitFor polls until cond holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestResumeAfterPartition: a partition severs the resilient
// subscriber; results emitted while it is away are reported as one gap
// with exact bounds, and delivery continues seamlessly — no duplicates,
// no reordering — at the next epoch after the partition heals.
func TestResumeAfterPartition(t *testing.T) {
	addr, shutdown := startServer(t)
	defer shutdown()
	proxy, err := faultnet.NewProxy(addr, faultnet.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()

	// Publisher: plain client straight at the server — its traffic must
	// not be disturbed by the subscriber's partition.
	pub, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()
	info := auctionInfo()
	if err := pub.Register(info, 1); err != nil {
		t.Fatal(err)
	}

	sub, err := DialConfig(proxy.Addr(), Config{Resilience: fastResilience()})
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	var rec subRecorder
	if _, err := sub.Submit("SELECT itemID FROM OpenAuction [Now]", 5,
		rec.onResult, rec.onEnd, rec.onGap); err != nil {
		t.Fatal(err)
	}

	publish := func(n int) {
		for i := 0; i < n; i++ {
			tp := stream.MustTuple(info.Schema, stream.Timestamp(i), stream.Int(int64(i)), stream.Float(500))
			if err := pub.Publish(tp); err != nil {
				t.Fatal(err)
			}
		}
	}
	publish(5)
	waitFor(t, 5*time.Second, "first 5 results", func() bool {
		seqs, _, _ := rec.snapshot()
		return len(seqs) == 5
	})

	proxy.Partition()
	waitFor(t, 5*time.Second, "client to notice the partition", func() bool {
		sub.mu.Lock()
		defer sub.mu.Unlock()
		return !sub.up
	})
	publish(3) // lost: the subscriber is away; seqs 6..8 become the gap
	proxy.Heal()
	waitFor(t, 10*time.Second, "resume with gap", func() bool {
		_, gaps, _ := rec.snapshot()
		return len(gaps) == 1
	})
	publish(2)
	waitFor(t, 5*time.Second, "post-resume results", func() bool {
		seqs, _, _ := rec.snapshot()
		return len(seqs) == 7
	})

	seqs, gaps, ends := rec.snapshot()
	wantSeqs := []uint64{1, 2, 3, 4, 5, 9, 10}
	for i, s := range seqs {
		if s != wantSeqs[i] {
			t.Fatalf("seqs = %v, want %v", seqs, wantSeqs)
		}
	}
	if gaps[0].Unknown || gaps[0].From != 6 || gaps[0].To != 8 || gaps[0].Epoch != 2 {
		t.Errorf("gap = %+v, want epoch 2 lost 6..8", gaps[0])
	}
	if gaps[0].Lost() != 3 {
		t.Errorf("gap.Lost() = %d, want 3", gaps[0].Lost())
	}
	if len(ends) != 0 {
		t.Errorf("subscription ended (%v) during a survivable partition", ends)
	}
	if got := sub.Reconnects(); got != 1 {
		t.Errorf("reconnects = %d, want 1", got)
	}
	if got := sub.Epoch(); got != 2 {
		t.Errorf("epoch = %d, want 2", got)
	}
}

// TestGracefulShutdownIsTerminal: a graceful server shutdown must end a
// resilient client's subscriptions cleanly — nil error, no reconnect
// loop against the dying listener — and later calls must say the server
// shut down rather than retry forever.
func TestGracefulShutdownIsTerminal(t *testing.T) {
	sys, err := core.NewSystem(core.Options{Nodes: 16, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(sys)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	served := make(chan struct{})
	go func() {
		defer close(served)
		if err := srv.Serve(ln); err != nil {
			t.Errorf("serve: %v", err)
		}
	}()
	addr := ln.Addr().String()

	c, err := DialConfig(addr, Config{Resilience: fastResilience()})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Register(auctionInfo(), 1); err != nil {
		t.Fatal(err)
	}
	var rec subRecorder
	if _, err := c.Submit("SELECT itemID FROM OpenAuction [Now]", 5,
		rec.onResult, rec.onEnd, rec.onGap); err != nil {
		t.Fatal(err)
	}

	if err := srv.Shutdown(); err != nil { // graceful: MsgShutdown then MsgEnd reach the wire first
		t.Fatal(err)
	}
	<-served

	waitFor(t, 5*time.Second, "clean subscription end", func() bool {
		_, _, ends := rec.snapshot()
		return len(ends) == 1
	})
	_, _, ends := rec.snapshot()
	if ends[0] != nil {
		t.Errorf("subscription ended with %v, want nil (graceful shutdown)", ends[0])
	}
	if err := c.Publish(stream.MustTuple(auctionInfo().Schema, 1, stream.Int(1), stream.Float(1))); err == nil {
		t.Error("publish after shutdown should fail")
	} else if err != errServerShutdown {
		t.Errorf("publish after shutdown = %v, want %v", err, errServerShutdown)
	}
	if got := c.Reconnects(); got != 0 {
		t.Errorf("client reconnected %d times against a shut-down server", got)
	}
}

// TestCloseAndCancelDuringBackoff: with the server partitioned away and
// a long backoff pending, Cancel must succeed locally at once and Close
// must abort the retry loop promptly, leaking no goroutines.
func TestCloseAndCancelDuringBackoff(t *testing.T) {
	addr, shutdown := startServer(t)
	defer shutdown()
	proxy, err := faultnet.NewProxy(addr, faultnet.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()

	baseline := runtime.NumGoroutine()
	c, err := DialConfig(proxy.Addr(), Config{Resilience: &Resilience{
		MinBackoff: 30 * time.Second, MaxBackoff: 60 * time.Second,
	}})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Register(auctionInfo(), 1); err != nil {
		t.Fatal(err)
	}
	var rec subRecorder
	tag, err := c.Submit("SELECT itemID FROM OpenAuction [Now]", 5,
		rec.onResult, rec.onEnd, rec.onGap)
	if err != nil {
		t.Fatal(err)
	}

	proxy.Partition()
	waitFor(t, 5*time.Second, "client to notice the partition", func() bool {
		c.mu.Lock()
		defer c.mu.Unlock()
		return !c.up
	})

	// Cancel while down: local, immediate, clean.
	start := time.Now()
	if err := c.Cancel(tag); err != nil {
		t.Errorf("cancel during backoff: %v", err)
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Errorf("cancel during backoff took %v", d)
	}
	_, _, ends := rec.snapshot()
	if len(ends) != 1 || ends[0] != nil {
		t.Errorf("ends after local cancel = %v, want one nil", ends)
	}

	// Close while the 30s backoff is pending: prompt, no leaks.
	start = time.Now()
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Errorf("close during backoff took %v, want prompt abort", d)
	}
	waitFor(t, 5*time.Second, "goroutines to drain", func() bool {
		return runtime.NumGoroutine() <= baseline
	})
}
