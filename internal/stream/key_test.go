package stream

import (
	"math"
	"testing"
)

// TestValueKeyMatchesCompare checks the contract hash state relies on:
// for KeyExact values, key equality coincides with Compare equality.
func TestValueKeyMatchesCompare(t *testing.T) {
	vals := []Value{
		Int(0), Int(5), Int(-3), Int(1 << 40),
		Float(0), Float(-0.0), Float(5), Float(5.5), Float(-3),
		Time(0), Time(5), Time(1 << 40),
		String_(""), String_("5"), String_("abc"),
		Bool(true), Bool(false),
	}
	for _, a := range vals {
		for _, b := range vals {
			if !a.KeyExact() || !b.KeyExact() {
				t.Fatalf("%s or %s unexpectedly not key-exact", a, b)
			}
			cmpEq := false
			if c, err := a.Compare(b); err == nil && c == 0 {
				cmpEq = true
			}
			keyEq := a.Key() == b.Key()
			if cmpEq != keyEq {
				t.Errorf("%s vs %s: Compare-equal %v, key-equal %v", a, b, cmpEq, keyEq)
			}
		}
	}
}

func TestValueKeyNormalisation(t *testing.T) {
	// Int, Time and integral Float collapse to one key (Compare treats
	// them as plain numbers).
	if Int(5).Key() != Float(5.0).Key() {
		t.Error("Int(5) and Float(5.0) must key identically")
	}
	if Int(5).Key() != Time(5).Key() {
		t.Error("Int(5) and Time(5) must key identically")
	}
	if Float(-0.0).Key() != Int(0).Key() {
		t.Error("Float(-0.0) and Int(0) must key identically (Compare-equal)")
	}
	// Distinct values stay distinct.
	if Float(5.5).Key() == Float(5.25).Key() {
		t.Error("distinct floats collided")
	}
	if Int(5).Key() == String_("5").Key() {
		t.Error("Int(5) and String(\"5\") must not collide")
	}
	if Bool(true).Key() == Int(1).Key() {
		t.Error("Bool(true) and Int(1) must not collide (incomparable kinds)")
	}
}

func TestValueKeyExactCorners(t *testing.T) {
	if Float(math.NaN()).KeyExact() {
		t.Error("NaN is not key-exact (Compare reports 0 against any number)")
	}
	big := int64(1) << 53
	if Int(big + 1).KeyExact() {
		t.Error("ints beyond 2^53 are not key-exact")
	}
	if Float(1e300).KeyExact() {
		t.Error("floats beyond 2^53 are not key-exact")
	}
	if !Int(big).KeyExact() || !Float(float64(big)).KeyExact() {
		t.Error("2^53 itself converts exactly and is key-exact")
	}
	if !String_("x").KeyExact() || !Bool(true).KeyExact() {
		t.Error("strings and bools are always key-exact")
	}
}

func TestValueKeyString(t *testing.T) {
	// The canonical rendering backs composite keys beyond two columns;
	// distinct keys must render distinctly and equal keys identically.
	pairs := [][2]Value{
		{Int(5), Float(5.0)},
		{Time(7), Int(7)},
	}
	for _, p := range pairs {
		if p[0].Key().String() != p[1].Key().String() {
			t.Errorf("%s and %s key-equal but render differently", p[0], p[1])
		}
	}
	distinct := []Value{Int(5), Float(5.5), String_("5"), Bool(true), Int(55)}
	seen := map[string]Value{}
	for _, v := range distinct {
		s := v.Key().String()
		if prev, dup := seen[s]; dup {
			t.Errorf("%s and %s render to the same key string %q", prev, v, s)
		}
		seen[s] = v
	}
}

func TestValueKeyNaNCanonical(t *testing.T) {
	// NaN payloads never equal themselves as map keys; the canonical
	// form keeps all NaNs in one group and lets hash state be reclaimed.
	a, b := Float(math.NaN()).Key(), Float(math.NaN()).Key()
	if a != b {
		t.Error("NaN keys must be equal")
	}
	if a == Float(0).Key() || a == Float(5.5).Key() {
		t.Error("the NaN key must not collide with real floats")
	}
	if Float(math.NaN()).Key().String() == Float(5.5).Key().String() {
		t.Error("NaN key rendering must be distinct")
	}
}
