package transport

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"cosmos/internal/stream"
)

// wireTestSchema covers every kind, strings included.
func wireTestSchema(t testing.TB) *stream.Schema {
	t.Helper()
	s, err := stream.NewSchema("Mixed",
		stream.Field{Name: "i", Kind: stream.KindInt},
		stream.Field{Name: "f", Kind: stream.KindFloat},
		stream.Field{Name: "s", Kind: stream.KindString, AvgLen: 12},
		stream.Field{Name: "b", Kind: stream.KindBool},
		stream.Field{Name: "t", Kind: stream.KindTime},
	)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// fixedWireSchema has no strings: its tuples encode to a fixed width.
func fixedWireSchema(t testing.TB) *stream.Schema {
	t.Helper()
	s, err := stream.NewSchema("Fixed",
		stream.Field{Name: "a", Kind: stream.KindInt},
		stream.Field{Name: "b", Kind: stream.KindFloat},
	)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestTupleCodecRoundTripEdgeCases: encode→decode is the identity for
// every kind, including the floats gob historically mangles elsewhere
// (NaN, ±Inf, integers past 2^53) and empty/huge strings.
func TestTupleCodecRoundTripEdgeCases(t *testing.T) {
	schema := wireTestSchema(t)
	codec := newTupleCodec(schema)
	cases := []struct {
		name string
		ts   stream.Timestamp
		vals []stream.Value
	}{
		{"zeroes", 0, []stream.Value{stream.Int(0), stream.Float(0), stream.String_(""), stream.Bool(false), stream.Time(0)}},
		{"negatives", 1, []stream.Value{stream.Int(-1), stream.Float(-0.5), stream.String_("x"), stream.Bool(true), stream.Time(1)}},
		{"extremes", 1 << 40, []stream.Value{
			stream.Int(math.MaxInt64), stream.Float(math.MaxFloat64),
			stream.String_(strings.Repeat("π≠", 4096)), stream.Bool(true),
			stream.Time(stream.Timestamp(math.MinInt64)),
		}},
		{"nan", 2, []stream.Value{stream.Int(math.MinInt64), stream.Float(math.NaN()), stream.String_("\x00\xff"), stream.Bool(false), stream.Time(7)}},
		{"inf", 3, []stream.Value{stream.Int(1 << 53), stream.Float(math.Inf(1)), stream.String_("inf"), stream.Bool(true), stream.Time(3)}},
		{"neginf", 4, []stream.Value{stream.Int((1 << 53) + 1), stream.Float(math.Inf(-1)), stream.String_(""), stream.Bool(false), stream.Time(4)}},
		{"widened", 5, []stream.Value{stream.Int(9), stream.Int(42), stream.String_("int-in-float"), stream.Bool(true), stream.Int(99)}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			orig, err := stream.NewTuple(schema, tc.ts, tc.vals...)
			if err != nil {
				t.Fatal(err)
			}
			buf := codec.appendTuple(nil, orig)
			got, pos, err := codec.decodeTuple(buf, 0)
			if err != nil {
				t.Fatalf("decode: %v", err)
			}
			if pos != len(buf) {
				t.Fatalf("decode consumed %d of %d bytes", pos, len(buf))
			}
			if got.Ts != orig.Ts {
				t.Fatalf("ts %d != %d", got.Ts, orig.Ts)
			}
			for i, v := range got.Values {
				ov := orig.Values[i]
				if v.Kind() != ov.Kind() {
					t.Fatalf("value %d kind %v != %v (kind must round-trip exactly)", i, v.Kind(), ov.Kind())
				}
				// NaN != NaN: compare bit patterns for floats.
				if v.Kind() == stream.KindFloat {
					if math.Float64bits(v.AsFloat()) != math.Float64bits(ov.AsFloat()) {
						t.Fatalf("value %d float bits differ", i)
					}
				} else if !v.Equal(ov) {
					t.Fatalf("value %d: %v != %v", i, v, ov)
				}
			}
		})
	}
}

// randomWireTuple draws a schema-conforming tuple from rng, exercising
// the int-widens-to-float/time corner on occasion.
func randomWireTuple(t testing.TB, rng *rand.Rand, schema *stream.Schema, i int) stream.Tuple {
	vals := make([]stream.Value, len(schema.Fields))
	for j, f := range schema.Fields {
		switch f.Kind {
		case stream.KindInt:
			vals[j] = stream.Int(rng.Int63() - rng.Int63())
		case stream.KindFloat:
			if rng.Intn(4) == 0 {
				vals[j] = stream.Int(rng.Int63n(1000)) // widened int
			} else {
				vals[j] = stream.Float(rng.NormFloat64() * math.Pow(10, float64(rng.Intn(40))))
			}
		case stream.KindString:
			b := make([]byte, rng.Intn(64))
			rng.Read(b)
			vals[j] = stream.String_(string(b))
		case stream.KindBool:
			vals[j] = stream.Bool(rng.Intn(2) == 0)
		case stream.KindTime:
			vals[j] = stream.Time(stream.Timestamp(rng.Int63()))
		}
	}
	tp, err := stream.NewTuple(schema, stream.Timestamp(i), vals...)
	if err != nil {
		t.Fatal(err)
	}
	return tp
}

// TestTupleCodecRandomRoundTrip: seeded property test over many random
// tuples, decoded from a concatenated buffer like a real batch.
func TestTupleCodecRandomRoundTrip(t *testing.T) {
	schema := wireTestSchema(t)
	codec := newTupleCodec(schema)
	rng := rand.New(rand.NewSource(42))
	var buf []byte
	tuples := make([]stream.Tuple, 500)
	for i := range tuples {
		tuples[i] = randomWireTuple(t, rng, schema, i)
		buf = codec.appendTuple(buf, tuples[i])
	}
	pos := 0
	for i, want := range tuples {
		got, next, err := codec.decodeTuple(buf, pos)
		if err != nil {
			t.Fatalf("tuple %d: %v", i, err)
		}
		pos = next
		if !tuplesBitEqual(got, want) {
			t.Fatalf("tuple %d: %v != %v", i, got, want)
		}
	}
	if pos != len(buf) {
		t.Fatalf("consumed %d of %d bytes", pos, len(buf))
	}
}

// TestTupleCodecTruncationNeverPanics: every proper prefix of a valid
// encoding must decode to an error, never a panic or a phantom tuple.
func TestTupleCodecTruncationNeverPanics(t *testing.T) {
	schema := wireTestSchema(t)
	codec := newTupleCodec(schema)
	tp, err := stream.NewTuple(schema, 77,
		stream.Int(123), stream.Float(4.5), stream.String_("truncate me"), stream.Bool(true), stream.Time(9))
	if err != nil {
		t.Fatal(err)
	}
	buf := codec.appendTuple(nil, tp)
	for cut := 0; cut < len(buf); cut++ {
		if _, _, err := codec.decodeTuple(buf[:cut], 0); err == nil {
			t.Fatalf("decode of %d/%d-byte prefix succeeded", cut, len(buf))
		}
	}
}

// TestTupleCodecCorruptKind: a bad kind tag errors cleanly.
func TestTupleCodecCorruptKind(t *testing.T) {
	schema := fixedWireSchema(t)
	codec := newTupleCodec(schema)
	tp, _ := stream.NewTuple(schema, 1, stream.Int(1), stream.Float(2))
	buf := codec.appendTuple(nil, tp)
	buf[8] = 0xEE // first value's kind tag
	if _, _, err := codec.decodeTuple(buf, 0); err == nil {
		t.Fatal("corrupt kind tag decoded successfully")
	}
}

// TestSchemaFrameRoundTripAndCorruption: 'S' payloads round-trip, and
// every truncation of one errors instead of panicking.
func TestSchemaFrameRoundTripAndCorruption(t *testing.T) {
	schema := wireTestSchema(t)
	buf := appendSchemaFrame(nil, 7, "Q3", schema)
	subID, tag, got, err := decodeSchemaFrame(buf)
	if err != nil {
		t.Fatal(err)
	}
	if subID != 7 || tag != "Q3" || !got.Equal(schema) {
		t.Fatalf("round trip mismatch: %d %q %v", subID, tag, got)
	}
	for cut := 0; cut < len(buf); cut++ {
		if _, _, _, err := decodeSchemaFrame(buf[:cut]); err == nil {
			t.Fatalf("schema frame prefix %d/%d decoded successfully", cut, len(buf))
		}
	}
}

// FuzzTupleDecode: arbitrary bytes must never panic the decoder, and
// valid encodings must round-trip.
func FuzzTupleDecode(f *testing.F) {
	schema, err := stream.NewSchema("Fuzz",
		stream.Field{Name: "i", Kind: stream.KindInt},
		stream.Field{Name: "s", Kind: stream.KindString},
		stream.Field{Name: "f", Kind: stream.KindFloat},
	)
	if err != nil {
		f.Fatal(err)
	}
	codec := newTupleCodec(schema)
	tp, _ := stream.NewTuple(schema, 5, stream.Int(-9), stream.String_("seed"), stream.Float(math.Pi))
	f.Add(codec.appendTuple(nil, tp))
	f.Add([]byte{})
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7, 8, 9})
	f.Fuzz(func(t *testing.T, b []byte) {
		got, pos, err := codec.decodeTuple(b, 0)
		if err != nil {
			return
		}
		if pos <= 0 || pos > len(b) {
			t.Fatalf("decode reported position %d for %d input bytes", pos, len(b))
		}
		// Whatever decodes must survive a re-encode round trip (byte
		// equality is too strong: Uvarint accepts non-minimal varints).
		again, _, err := codec.decodeTuple(codec.appendTuple(nil, got), 0)
		if err != nil {
			t.Fatalf("re-decode of re-encoded tuple: %v", err)
		}
		if !tuplesBitEqual(again, got) {
			t.Fatalf("re-encode round trip changed the tuple")
		}
	})
}

// tuplesBitEqual is Tuple.Equal with bit-exact float comparison, so NaN
// payloads (which fuzzing will find) compare equal to themselves.
func tuplesBitEqual(a, b stream.Tuple) bool {
	if a.Ts != b.Ts || len(a.Values) != len(b.Values) {
		return false
	}
	for i, v := range a.Values {
		w := b.Values[i]
		if v.Kind() != w.Kind() {
			return false
		}
		if v.Kind() == stream.KindFloat {
			if math.Float64bits(v.AsFloat()) != math.Float64bits(w.AsFloat()) {
				return false
			}
		} else if !v.Equal(w) {
			return false
		}
	}
	return true
}

// TestEncodeFastPathAllocs asserts the steady-state encode path —
// appendTuple into a pre-grown buffer — allocates nothing per tuple.
func TestEncodeFastPathAllocs(t *testing.T) {
	schema := wireTestSchema(t)
	codec := newTupleCodec(schema)
	tp, err := stream.NewTuple(schema, 3,
		stream.Int(7), stream.Float(2.5), stream.String_("steady"), stream.Bool(true), stream.Time(11))
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 0, 4096)
	allocs := testing.AllocsPerRun(1000, func() {
		buf = codec.appendTuple(buf[:0], tp)
	})
	if allocs != 0 {
		t.Fatalf("encode allocates %.1f/tuple, want 0", allocs)
	}
}

// TestDecodeFastPathAllocs bounds the decode path: for a string-free
// schema, only the value slice itself (1 alloc) per tuple.
func TestDecodeFastPathAllocs(t *testing.T) {
	schema := fixedWireSchema(t)
	codec := newTupleCodec(schema)
	tp, err := stream.NewTuple(schema, 3, stream.Int(7), stream.Float(2.5))
	if err != nil {
		t.Fatal(err)
	}
	buf := codec.appendTuple(nil, tp)
	allocs := testing.AllocsPerRun(1000, func() {
		if _, _, err := codec.decodeTuple(buf, 0); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 1 {
		t.Fatalf("decode allocates %.1f/tuple, want <= 1 (the value slice)", allocs)
	}
}

// TestWireNegotiation pins the min(client, server) rule.
func TestWireNegotiation(t *testing.T) {
	cases := []struct{ client, max, want int }{
		{0, WireMax, WireV1}, // pre-negotiation peer
		{1, WireMax, WireV1},
		{2, WireMax, WireV2},
		{2, 1, WireV1}, // server capped to v1
		{99, WireMax, WireMax},
		{-3, WireMax, WireV1},
	}
	for _, tc := range cases {
		if got := negotiateWire(tc.client, tc.max); got != tc.want {
			t.Errorf("negotiateWire(%d, %d) = %d, want %d", tc.client, tc.max, got, tc.want)
		}
	}
}
