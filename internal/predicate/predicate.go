// Package predicate implements the constraint algebra used throughout
// COSMOS: the per-stream datagram filters of data-interest profiles
// (paper §3.1), the selection predicates of continuous queries, and the
// implication/hull machinery that powers query containment (§4, Theorems
// 1–2) and representative-query composition.
//
// A filter is a conjunction (Conj) of constraints on the values of a set
// of attributes; a profile carries a disjunction of filters, modelled here
// as a DNF. A constraint compares a term — a single attribute or the
// difference of two attributes — against a constant. The attribute
// difference form is what lets result-splitting profiles re-tighten window
// predicates (e.g. −3h ≤ O.timestamp − C.timestamp ≤ 0 in the paper).
package predicate

import (
	"fmt"
	"sort"
	"strings"

	"cosmos/internal/stream"
)

// Op is a comparison operator.
type Op uint8

// Comparison operators.
const (
	EQ Op = iota
	NE
	LT
	LE
	GT
	GE
)

// String returns the SQL spelling of the operator.
func (o Op) String() string {
	switch o {
	case EQ:
		return "="
	case NE:
		return "!="
	case LT:
		return "<"
	case LE:
		return "<="
	case GT:
		return ">"
	case GE:
		return ">="
	default:
		return "?"
	}
}

// Holds reports whether the operator is satisfied by a three-way
// comparison result (negative, zero, positive).
//
//cosmos:hotpath
func (o Op) Holds(cmp int) bool {
	switch o {
	case EQ:
		return cmp == 0
	case NE:
		return cmp != 0
	case LT:
		return cmp < 0
	case LE:
		return cmp <= 0
	case GT:
		return cmp > 0
	case GE:
		return cmp >= 0
	default:
		return false
	}
}

// Negate returns the complementary operator (¬(a < b) ≡ a >= b).
func (o Op) Negate() Op {
	switch o {
	case EQ:
		return NE
	case NE:
		return EQ
	case LT:
		return GE
	case LE:
		return GT
	case GT:
		return LE
	case GE:
		return LT
	default:
		return o
	}
}

// Flip returns the operator with its operands swapped (a < b ≡ b > a).
func (o Op) Flip() Op {
	switch o {
	case LT:
		return GT
	case LE:
		return GE
	case GT:
		return LT
	case GE:
		return LE
	default:
		return o
	}
}

// Term is the left-hand side of a constraint: a single attribute A, or the
// difference A − B of two attributes when B is non-empty.
type Term struct {
	A string
	B string
}

// Attr builds a single-attribute term.
func Attr(name string) Term { return Term{A: name} }

// Diff builds an attribute-difference term A − B.
func Diff(a, b string) Term { return Term{A: a, B: b} }

// IsDiff reports whether the term is an attribute difference.
func (t Term) IsDiff() bool { return t.B != "" }

// Attrs returns the attribute names referenced by the term.
func (t Term) Attrs() []string {
	if t.B == "" {
		return []string{t.A}
	}
	return []string{t.A, t.B}
}

// IntrinsicTs is the reserved attribute name resolving to a tuple's own
// timestamp. Result-splitting profiles use it to re-tighten windows of
// [Now]-windowed join inputs, whose contribution timestamp equals the
// result timestamp (Lemma 1 with T = 0), without shipping a redundant
// hidden column.
const IntrinsicTs = "__ts"

// Resolve evaluates the term against a tuple. The reserved name
// IntrinsicTs resolves to the tuple's timestamp when no attribute of
// that name exists.
func (t Term) Resolve(tp stream.Tuple) (stream.Value, error) {
	a, err := resolveAttr(tp, t.A)
	if err != nil {
		return stream.Value{}, err
	}
	if t.B == "" {
		return a, nil
	}
	b, err := resolveAttr(tp, t.B)
	if err != nil {
		return stream.Value{}, err
	}
	return a.Sub(b)
}

func resolveAttr(tp stream.Tuple, name string) (stream.Value, error) {
	if v, ok := tp.Get(name); ok {
		return v, nil
	}
	if name == IntrinsicTs {
		return stream.Time(tp.Ts), nil
	}
	return stream.Value{}, fmt.Errorf("predicate: tuple of %s lacks attribute %s",
		tp.Schema.Stream, name)
}

// String implements fmt.Stringer.
func (t Term) String() string {
	if t.B == "" {
		return t.A
	}
	return t.A + "-" + t.B
}

// Constraint compares a term against a constant value.
type Constraint struct {
	Term  Term
	Op    Op
	Const stream.Value
}

// C is shorthand for building a single-attribute constraint.
func C(attr string, op Op, v stream.Value) Constraint {
	return Constraint{Term: Attr(attr), Op: op, Const: v}
}

// Eval evaluates the constraint against a tuple. Missing attributes and
// incomparable kinds surface as errors so callers can distinguish schema
// mismatch from a plain false.
func (c Constraint) Eval(tp stream.Tuple) (bool, error) {
	v, err := c.Term.Resolve(tp)
	if err != nil {
		return false, err
	}
	cmp, err := v.Compare(c.Const)
	if err != nil {
		return false, err
	}
	return c.Op.Holds(cmp), nil
}

// String implements fmt.Stringer.
func (c Constraint) String() string {
	return fmt.Sprintf("%s %s %s", c.Term, c.Op, c.Const)
}

// Conj is a conjunction of constraints: the datagram filter of the paper.
// The empty conjunction is TRUE.
type Conj []Constraint

// Eval evaluates the conjunction against a tuple.
func (cj Conj) Eval(tp stream.Tuple) (bool, error) {
	for _, c := range cj {
		ok, err := c.Eval(tp)
		if err != nil {
			return false, err
		}
		if !ok {
			return false, nil
		}
	}
	return true, nil
}

// Clone returns a deep copy of the conjunction.
func (cj Conj) Clone() Conj {
	if cj == nil {
		return nil
	}
	out := make(Conj, len(cj))
	copy(out, cj)
	return out
}

// And returns the conjunction of two filters.
func (cj Conj) And(other Conj) Conj {
	out := make(Conj, 0, len(cj)+len(other))
	out = append(out, cj...)
	out = append(out, other...)
	return out
}

// Attrs returns the sorted set of attribute names referenced.
func (cj Conj) Attrs() []string {
	set := map[string]bool{}
	for _, c := range cj {
		for _, a := range c.Term.Attrs() {
			set[a] = true
		}
	}
	out := make([]string, 0, len(set))
	for a := range set {
		out = append(out, a)
	}
	sort.Strings(out)
	return out
}

// String renders the conjunction in canonical (sorted) order so that equal
// conjunctions print identically; used for grouping signatures.
func (cj Conj) String() string {
	if len(cj) == 0 {
		return "TRUE"
	}
	parts := make([]string, len(cj))
	for i, c := range cj {
		parts[i] = c.String()
	}
	sort.Strings(parts)
	return strings.Join(parts, " AND ")
}

// DNF is a disjunction of conjunctions: a profile's filter set for one
// stream. The empty DNF is FALSE; use True() for the always-true DNF.
type DNF []Conj

// True returns a DNF that accepts everything.
func True() DNF { return DNF{Conj{}} }

// IsTrue reports whether the DNF trivially accepts everything.
func (d DNF) IsTrue() bool {
	for _, cj := range d {
		if len(cj) == 0 {
			return true
		}
	}
	return false
}

// Eval evaluates the disjunction against a tuple.
func (d DNF) Eval(tp stream.Tuple) (bool, error) {
	var firstErr error
	for _, cj := range d {
		ok, err := cj.Eval(tp)
		if err != nil {
			// Remember the error but keep trying other disjuncts: a
			// disjunct referencing a missing attribute must not mask a
			// disjunct that genuinely matches.
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		if ok {
			return true, nil
		}
	}
	return false, firstErr
}

// Or returns the disjunction of two DNFs, simplified.
func (d DNF) Or(other DNF) DNF {
	out := make(DNF, 0, len(d)+len(other))
	out = append(out, d...)
	out = append(out, other...)
	return out.Simplify()
}

// And distributes a conjunction over every disjunct.
func (d DNF) And(cj Conj) DNF {
	out := make(DNF, len(d))
	for i, existing := range d {
		out[i] = existing.And(cj)
	}
	return out
}

// AndDNF returns the conjunction of two DNFs by distribution (cross
// product of disjuncts), simplified.
func (d DNF) AndDNF(other DNF) DNF {
	out := make(DNF, 0, len(d)*len(other))
	for _, a := range d {
		for _, b := range other {
			out = append(out, a.And(b))
		}
	}
	return out.Simplify()
}

// Clone returns a deep copy.
func (d DNF) Clone() DNF {
	out := make(DNF, len(d))
	for i, cj := range d {
		out[i] = cj.Clone()
	}
	return out
}

// Attrs returns the sorted set of attribute names referenced anywhere.
func (d DNF) Attrs() []string {
	set := map[string]bool{}
	for _, cj := range d {
		for _, a := range cj.Attrs() {
			set[a] = true
		}
	}
	out := make([]string, 0, len(set))
	for a := range set {
		out = append(out, a)
	}
	sort.Strings(out)
	return out
}

// Simplify removes unsatisfiable disjuncts and disjuncts covered by
// (implying) another disjunct. This is the covering optimisation CBN
// routing tables rely on to stay compact.
func (d DNF) Simplify() DNF {
	kept := make(DNF, 0, len(d))
	for _, cj := range d {
		if !cj.Satisfiable() {
			continue
		}
		kept = append(kept, cj)
	}
	out := make(DNF, 0, len(kept))
	for i, cj := range kept {
		covered := false
		for j, other := range kept {
			if i == j {
				continue
			}
			// Drop cj if some other disjunct covers it. Break ties by
			// index so that two identical disjuncts keep exactly one.
			if Implies(cj, other) && (j < i || !Implies(other, cj)) {
				covered = true
				break
			}
		}
		if !covered {
			out = append(out, cj)
		}
	}
	return out
}

// Satisfiable reports whether any disjunct is satisfiable.
func (d DNF) Satisfiable() bool {
	for _, cj := range d {
		if cj.Satisfiable() {
			return true
		}
	}
	return false
}

// String renders the DNF with canonical ordering of disjuncts.
func (d DNF) String() string {
	if len(d) == 0 {
		return "FALSE"
	}
	parts := make([]string, len(d))
	for i, cj := range d {
		parts[i] = "(" + cj.String() + ")"
	}
	sort.Strings(parts)
	return strings.Join(parts, " OR ")
}

// ImpliesDNF reports whether a ⟹ b holds for DNFs, using the sound (but
// incomplete) disjunct-wise test: every disjunct of a must imply some
// disjunct of b.
func ImpliesDNF(a, b DNF) bool {
	for _, cja := range a {
		if !cja.Satisfiable() {
			continue
		}
		found := false
		for _, cjb := range b {
			if Implies(cja, cjb) {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// AttrCmp is an attribute-to-attribute comparison — the form join
// predicates take (O.itemID = C.itemID). These never appear in CBN filters
// (which compare against constants) but are part of query predicates.
type AttrCmp struct {
	Left  string
	Op    Op
	Right string
}

// Eval evaluates the comparison against a (joined) tuple carrying both
// attributes.
func (a AttrCmp) Eval(tp stream.Tuple) (bool, error) {
	l, ok := tp.Get(a.Left)
	if !ok {
		return false, fmt.Errorf("predicate: tuple lacks attribute %s", a.Left)
	}
	r, ok := tp.Get(a.Right)
	if !ok {
		return false, fmt.Errorf("predicate: tuple lacks attribute %s", a.Right)
	}
	cmp, err := l.Compare(r)
	if err != nil {
		return false, err
	}
	return a.Op.Holds(cmp), nil
}

// Canonical returns the comparison with operands ordered lexically, so
// that A=B and B=A have identical representations.
func (a AttrCmp) Canonical() AttrCmp {
	if a.Left <= a.Right {
		return a
	}
	return AttrCmp{Left: a.Right, Op: a.Op.Flip(), Right: a.Left}
}

// String implements fmt.Stringer.
func (a AttrCmp) String() string {
	return fmt.Sprintf("%s %s %s", a.Left, a.Op, a.Right)
}

// CanonicalAttrCmps returns a canonical sorted rendering of a join
// predicate set, for grouping signatures.
func CanonicalAttrCmps(cmps []AttrCmp) string {
	parts := make([]string, len(cmps))
	for i, c := range cmps {
		parts[i] = c.Canonical().String()
	}
	sort.Strings(parts)
	return strings.Join(parts, " AND ")
}
