package dht

import (
	"sync"

	"cosmos/internal/stream"
)

// Catalog adapts the DHT into the cql.Catalog interface: schema lookups
// route through the ring from a home node and cache positively, so a
// node pays the O(log n) hop cost once per stream. This is the paper's
// large-catalogue mode ("Otherwise, we use a DHT architecture to store
// the schema information, using the unique stream name as the hashing
// key"), with the local cache playing the role the flooded registry
// plays for small catalogues.
type Catalog struct {
	ring *Ring
	home string

	mu    sync.Mutex
	cache map[string]*stream.Info
	// hops accumulates routing hops spent on misses, for observability.
	hops int
}

// NewCatalog builds a catalog view of the ring as seen from home (a
// joined node name).
func NewCatalog(ring *Ring, home string) *Catalog {
	return &Catalog{ring: ring, home: home, cache: map[string]*stream.Info{}}
}

// Lookup implements cql.Catalog.
func (c *Catalog) Lookup(name string) (*stream.Info, bool) {
	c.mu.Lock()
	if info, ok := c.cache[name]; ok {
		c.mu.Unlock()
		return info, true
	}
	c.mu.Unlock()
	info, hops, err := c.ring.Get(c.home, name)
	if err != nil {
		return nil, false
	}
	c.mu.Lock()
	c.cache[name] = info
	c.hops += hops
	c.mu.Unlock()
	return info, true
}

// Invalidate drops one cached entry (schema changed / stream removed).
func (c *Catalog) Invalidate(name string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.cache, name)
}

// Hops reports the total routing hops spent on cache misses.
func (c *Catalog) Hops() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hops
}
