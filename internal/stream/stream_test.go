package stream

import (
	"math"
	"testing"
	"testing/quick"
)

func TestValueConstructorsAndAccessors(t *testing.T) {
	if v := Int(42); v.Kind() != KindInt || v.AsInt() != 42 {
		t.Errorf("Int(42) = %v", v)
	}
	if v := Float(2.5); v.Kind() != KindFloat || v.AsFloat() != 2.5 {
		t.Errorf("Float(2.5) = %v", v)
	}
	if v := String_("hi"); v.Kind() != KindString || v.AsString() != "hi" {
		t.Errorf("String_ = %v", v)
	}
	if v := Bool(true); v.Kind() != KindBool || !v.AsBool() {
		t.Errorf("Bool(true) = %v", v)
	}
	if v := Time(99); v.Kind() != KindTime || v.AsTime() != 99 {
		t.Errorf("Time(99) = %v", v)
	}
	if (Value{}).Valid() {
		t.Error("zero Value should be invalid")
	}
}

func TestValueCompareNumericCross(t *testing.T) {
	cases := []struct {
		a, b Value
		want int
	}{
		{Int(1), Int(2), -1},
		{Int(2), Int(2), 0},
		{Int(3), Int(2), 1},
		{Int(1), Float(1.5), -1},
		{Float(1.5), Int(1), 1},
		{Float(2.0), Int(2), 0},
		{Time(5), Int(5), 0},
		{Time(4), Time(9), -1},
		{String_("a"), String_("b"), -1},
		{String_("b"), String_("b"), 0},
		{Bool(false), Bool(true), -1},
	}
	for _, c := range cases {
		got, err := c.a.Compare(c.b)
		if err != nil {
			t.Fatalf("Compare(%v,%v): %v", c.a, c.b, err)
		}
		if got != c.want {
			t.Errorf("Compare(%v,%v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestValueCompareIncomparable(t *testing.T) {
	if _, err := Int(1).Compare(String_("x")); err == nil {
		t.Error("int vs string should be incomparable")
	}
	if _, err := Bool(true).Compare(Int(1)); err == nil {
		t.Error("bool vs int should be incomparable")
	}
	if Int(1).Equal(String_("1")) {
		t.Error("int and string must not be Equal")
	}
}

func TestValueCompareLargeIntsExact(t *testing.T) {
	// Two large int64s that collide when rounded to float64 must still
	// compare exactly via the integral path.
	a := Int(math.MaxInt64)
	b := Int(math.MaxInt64 - 1)
	c, err := a.Compare(b)
	if err != nil || c != 1 {
		t.Errorf("Compare(maxint, maxint-1) = %d, %v", c, err)
	}
}

func TestValueSub(t *testing.T) {
	v, err := Time(5000).Sub(Time(2000))
	if err != nil || v.AsInt() != 3000 {
		t.Fatalf("Time sub = %v, %v", v, err)
	}
	v, err = Float(1.5).Sub(Int(1))
	if err != nil || v.AsFloat() != 0.5 {
		t.Fatalf("Float sub = %v, %v", v, err)
	}
	if _, err := String_("a").Sub(Int(1)); err == nil {
		t.Error("string sub should error")
	}
}

func TestCompareAntisymmetryProperty(t *testing.T) {
	f := func(a, b int64) bool {
		x, err1 := Int(a).Compare(Int(b))
		y, err2 := Int(b).Compare(Int(a))
		return err1 == nil && err2 == nil && x == -y
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDurationString(t *testing.T) {
	cases := map[Duration]string{
		Now:         "Now",
		Unbounded:   "Unbounded",
		3 * Hour:    "3 Hour",
		30 * Minute: "30 Minute",
		2 * Day:     "2 Day",
		1500:        "1500 Millisecond",
		5 * Second:  "5 Second",
	}
	for d, want := range cases {
		if got := d.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int64(d), got, want)
		}
	}
}

func TestParseKind(t *testing.T) {
	for _, name := range []string{"int", "float", "string", "bool", "time"} {
		k, err := ParseKind(name)
		if err != nil || k == KindInvalid {
			t.Errorf("ParseKind(%q) = %v, %v", name, k, err)
		}
		if k.String() != name && !(name == "time" && k == KindTime) {
			t.Errorf("round trip %q -> %q", name, k.String())
		}
	}
	if _, err := ParseKind("blob"); err == nil {
		t.Error("ParseKind(blob) should fail")
	}
}

func testSchema(t *testing.T) *Schema {
	t.Helper()
	return MustSchema("OpenAuction",
		Field{Name: "itemID", Kind: KindInt},
		Field{Name: "sellerID", Kind: KindInt},
		Field{Name: "start_price", Kind: KindFloat},
		Field{Name: "timestamp", Kind: KindTime},
	)
}

func TestSchemaBasics(t *testing.T) {
	s := testSchema(t)
	if s.Arity() != 4 {
		t.Fatalf("arity = %d", s.Arity())
	}
	if s.ColIndex("sellerID") != 1 || s.ColIndex("nope") != -1 {
		t.Error("ColIndex wrong")
	}
	if !s.Has("itemID") || s.Has("bogus") {
		t.Error("Has wrong")
	}
	if got := s.TupleWidth(); got != 8+8+8+8 {
		t.Errorf("TupleWidth = %d", got)
	}
	want := "OpenAuction(itemID int, sellerID int, start_price float, timestamp time)"
	if s.String() != want {
		t.Errorf("String = %q", s.String())
	}
}

func TestSchemaValidation(t *testing.T) {
	if _, err := NewSchema(""); err == nil {
		t.Error("empty stream name should fail")
	}
	if _, err := NewSchema("S", Field{Name: "", Kind: KindInt}); err == nil {
		t.Error("empty field name should fail")
	}
	if _, err := NewSchema("S", Field{Name: "a", Kind: KindInt}, Field{Name: "a", Kind: KindInt}); err == nil {
		t.Error("duplicate field should fail")
	}
	if _, err := NewSchema("S", Field{Name: "a"}); err == nil {
		t.Error("invalid kind should fail")
	}
}

func TestSchemaProject(t *testing.T) {
	s := testSchema(t)
	p, err := s.Project([]string{"timestamp", "itemID"})
	if err != nil {
		t.Fatal(err)
	}
	if p.Arity() != 2 || p.Fields[0].Name != "timestamp" || p.Fields[1].Name != "itemID" {
		t.Errorf("projected schema = %v", p)
	}
	if _, err := s.Project([]string{"missing"}); err == nil {
		t.Error("projecting missing attr should fail")
	}
}

func TestSchemaRenameAndEqual(t *testing.T) {
	s := testSchema(t)
	r := s.Rename("Result1")
	if r.Stream != "Result1" || r.Arity() != s.Arity() {
		t.Errorf("rename = %v", r)
	}
	if s.Equal(r) {
		t.Error("renamed schema should not be Equal")
	}
	if !s.Equal(testSchema(t)) {
		t.Error("identical schemas should be Equal")
	}
	var nilSchema *Schema
	if nilSchema.Equal(s) || !nilSchema.Equal(nil) {
		t.Error("nil schema equality wrong")
	}
}

func TestJoinSchema(t *testing.T) {
	open := testSchema(t)
	closed := MustSchema("ClosedAuction",
		Field{Name: "itemID", Kind: KindInt},
		Field{Name: "buyerID", Kind: KindInt},
		Field{Name: "timestamp", Kind: KindTime},
	)
	js, err := JoinSchema("rep1", []string{"O", "C"}, []*Schema{open, closed})
	if err != nil {
		t.Fatal(err)
	}
	if js.Arity() != 7 {
		t.Fatalf("join arity = %d", js.Arity())
	}
	if !js.Has("O.itemID") || !js.Has("C.buyerID") || !js.Has("C.timestamp") {
		t.Errorf("join schema missing qualified attrs: %v", js)
	}
	if _, err := JoinSchema("x", []string{"A"}, []*Schema{open, closed}); err == nil {
		t.Error("mismatched alias count should fail")
	}
}

func TestTupleBasics(t *testing.T) {
	s := testSchema(t)
	tp, err := NewTuple(s, 100, Int(7), Int(3), Float(9.5), Time(100))
	if err != nil {
		t.Fatal(err)
	}
	if v := tp.MustGet("start_price"); v.AsFloat() != 9.5 {
		t.Errorf("get = %v", v)
	}
	if _, ok := tp.Get("nope"); ok {
		t.Error("Get of missing attr should fail")
	}
	if tp.WireSize() != 8+8+8+8+8 {
		t.Errorf("WireSize = %d", tp.WireSize())
	}
}

func TestTupleValidation(t *testing.T) {
	s := testSchema(t)
	if _, err := NewTuple(s, 1, Int(1)); err == nil {
		t.Error("arity mismatch should fail")
	}
	if _, err := NewTuple(s, 1, String_("x"), Int(1), Float(1), Time(1)); err == nil {
		t.Error("kind mismatch should fail")
	}
	// Int widens into float and time fields.
	if _, err := NewTuple(s, 1, Int(1), Int(2), Int(3), Int(4)); err != nil {
		t.Errorf("int widening should be allowed: %v", err)
	}
}

func TestTupleProjectAndConcat(t *testing.T) {
	s := testSchema(t)
	tp := MustTuple(s, 50, Int(7), Int(3), Float(9.5), Time(50))
	ps, _ := s.Project([]string{"itemID", "timestamp"})
	pt, err := tp.Project(ps)
	if err != nil {
		t.Fatal(err)
	}
	if len(pt.Values) != 2 || pt.Values[0].AsInt() != 7 {
		t.Errorf("projected tuple = %v", pt)
	}

	closed := MustSchema("ClosedAuction",
		Field{Name: "itemID", Kind: KindInt},
		Field{Name: "buyerID", Kind: KindInt},
		Field{Name: "timestamp", Kind: KindTime},
	)
	js, _ := JoinSchema("rep1", []string{"O", "C"}, []*Schema{s, closed})
	ct := MustTuple(closed, 80, Int(7), Int(55), Time(80))
	joined := Concat(js, tp, ct)
	if joined.Ts != 80 {
		t.Errorf("join ts = %d, want max(50,80)", joined.Ts)
	}
	if joined.MustGet("C.buyerID").AsInt() != 55 || joined.MustGet("O.itemID").AsInt() != 7 {
		t.Errorf("joined tuple = %v", joined)
	}
}

func TestTupleEqualAndKey(t *testing.T) {
	s := testSchema(t)
	a := MustTuple(s, 1, Int(1), Int(2), Float(3), Time(1))
	b := MustTuple(s, 1, Int(1), Int(2), Float(3), Time(1))
	c := MustTuple(s, 2, Int(1), Int(2), Float(3), Time(2))
	if !a.Equal(b) {
		t.Error("identical tuples should be Equal")
	}
	if a.Equal(c) {
		t.Error("different ts should not be Equal")
	}
	if a.Key() == c.Key() {
		t.Error("keys should differ")
	}
	if a.Key() != b.Key() {
		t.Error("keys should match")
	}
}

func TestRegistry(t *testing.T) {
	r := NewRegistry()
	s := testSchema(t)
	info := &Info{Schema: s, Rate: 10, Stats: map[string]AttrStats{
		"start_price": {Min: 0, Max: 100, Distinct: 100},
	}}
	if err := r.Register(info); err != nil {
		t.Fatal(err)
	}
	got, ok := r.Lookup("OpenAuction")
	if !ok || got.Rate != 10 {
		t.Fatalf("Lookup = %v, %v", got, ok)
	}
	if sc, ok := r.Schema("OpenAuction"); !ok || sc.Arity() != 4 {
		t.Error("Schema lookup failed")
	}
	if _, ok := r.Lookup("missing"); ok {
		t.Error("missing stream should not resolve")
	}
	if r.Len() != 1 || len(r.Names()) != 1 {
		t.Error("Len/Names wrong")
	}
	if got.Bps() != 10*float64(s.TupleWidth()+8) {
		t.Errorf("Bps = %f", got.Bps())
	}
	snap := r.Snapshot()
	if len(snap) != 1 {
		t.Error("Snapshot wrong")
	}
	r.Deregister("OpenAuction")
	if r.Len() != 0 {
		t.Error("Deregister failed")
	}
	if err := r.Register(nil); err == nil {
		t.Error("nil register should fail")
	}
}

func TestAttrStatsSpan(t *testing.T) {
	if (AttrStats{Min: 2, Max: 10}).Span() != 8 {
		t.Error("span wrong")
	}
	if (AttrStats{Min: 5, Max: 5}).Span() != 0 {
		t.Error("degenerate span should be 0")
	}
	if (AttrStats{Min: 9, Max: 2}).Span() != 0 {
		t.Error("inverted span should be 0")
	}
}

func TestFieldWidth(t *testing.T) {
	if (Field{Name: "s", Kind: KindString}).Width() != DefaultStringWidth {
		t.Error("default string width")
	}
	if (Field{Name: "s", Kind: KindString, AvgLen: 40}).Width() != 40 {
		t.Error("declared string width")
	}
	if (Field{Name: "n", Kind: KindInt, AvgLen: 40}).Width() != 8 {
		t.Error("AvgLen must not affect ints")
	}
}

func TestValueWireSize(t *testing.T) {
	if Int(5).WireSize() != 8 || Bool(true).WireSize() != 1 {
		t.Error("numeric wire sizes")
	}
	if String_("hello").WireSize() != 5 {
		t.Error("string wire size should be its length")
	}
	if String_("").WireSize() != 1 {
		t.Error("empty string has minimal framing size")
	}
}

func TestProjectIdxMatchesProject(t *testing.T) {
	s := MustSchema("R",
		Field{Name: "A", Kind: KindInt},
		Field{Name: "B", Kind: KindFloat},
		Field{Name: "C", Kind: KindString},
	)
	tp := MustTuple(s, 42, Int(1), Float(2.5), String_("x"))
	names := []string{"C", "A"}
	proj, idx, err := s.ProjectIdx(names)
	if err != nil {
		t.Fatal(err)
	}
	want, err := s.Project(names)
	if err != nil {
		t.Fatal(err)
	}
	if !proj.Equal(want) {
		t.Fatalf("ProjectIdx schema %s, want %s", proj, want)
	}
	fast := tp.ProjectIdx(idx, proj)
	slow, err := tp.Project(want)
	if err != nil {
		t.Fatal(err)
	}
	if !fast.Equal(slow) {
		t.Fatalf("ProjectIdx tuple %s, want %s", fast, slow)
	}
	if fast.Ts != 42 {
		t.Fatalf("ProjectIdx must keep the timestamp, got %d", fast.Ts)
	}
	if _, _, err := s.ProjectIdx([]string{"missing"}); err == nil {
		t.Fatal("ProjectIdx should reject unknown attributes")
	}
}
