package sensordata

import (
	"testing"

	"cosmos/internal/stream"
)

func TestGeneratorDeterminism(t *testing.T) {
	a := NewGenerator(3, 42).Take(100)
	b := NewGenerator(3, 42).Take(100)
	for i := range a {
		if !a[i].Equal(b[i]) {
			t.Fatalf("reading %d differs across same-seed runs", i)
		}
	}
	c := NewGenerator(3, 43).Take(100)
	same := true
	for i := range a {
		if !a[i].Equal(c[i]) {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds should differ")
	}
}

func TestGeneratorTimestampsAndDomains(t *testing.T) {
	g := NewGenerator(0, 1)
	prev := stream.Timestamp(-1)
	for _, tp := range g.Take(2000) {
		if tp.Ts <= prev {
			t.Fatalf("timestamps not strictly increasing: %d after %d", tp.Ts, prev)
		}
		prev = tp.Ts
		temp := tp.MustGet("temperature").AsFloat()
		if temp < TempMin || temp > TempMax {
			t.Fatalf("temperature %f out of domain", temp)
		}
		hum := tp.MustGet("humidity").AsFloat()
		if hum < HumidityMin || hum > HumidityMax {
			t.Fatalf("humidity %f out of domain", hum)
		}
		if tp.MustGet("station").AsInt() != 0 {
			t.Fatal("wrong station id")
		}
	}
}

func TestGeneratorDiurnalCycle(t *testing.T) {
	// Mid-day solar should exceed midnight solar on average.
	g := NewGenerator(5, 7)
	var night, day float64
	var nightN, dayN int
	for _, tp := range g.Take(4 * 2880) { // 4 days at 30s period
		frac := float64(tp.Ts%stream.Timestamp(stream.Day)) / float64(stream.Day)
		solar := tp.MustGet("solar").AsFloat()
		switch {
		case frac > 0.45 && frac < 0.55:
			day += solar
			dayN++
		case frac < 0.05 || frac > 0.95:
			night += solar
			nightN++
		}
	}
	if dayN == 0 || nightN == 0 {
		t.Fatal("sampling windows empty")
	}
	if day/float64(dayN) <= night/float64(nightN) {
		t.Errorf("no diurnal solar cycle: day %f night %f", day/float64(dayN), night/float64(nightN))
	}
}

func TestRegisterAll(t *testing.T) {
	reg := stream.NewRegistry()
	if err := RegisterAll(reg); err != nil {
		t.Fatal(err)
	}
	if reg.Len() != NumStations {
		t.Fatalf("registered %d streams", reg.Len())
	}
	info, ok := reg.Lookup(StreamName(62))
	if !ok {
		t.Fatal("last station missing")
	}
	if info.Rate <= 0 || info.Schema.Arity() != 5 {
		t.Errorf("info = %+v", info)
	}
	if _, ok := info.Stats["temperature"]; !ok {
		t.Error("stats missing")
	}
}

func TestSetPeriod(t *testing.T) {
	g := NewGenerator(0, 1)
	if err := g.SetPeriod(0); err == nil {
		t.Error("zero period should fail")
	}
	if err := g.SetPeriod(stream.Second); err != nil {
		t.Fatal(err)
	}
	a := g.Next()
	b := g.Next()
	if b.Ts-a.Ts != stream.Timestamp(stream.Second) {
		t.Errorf("period not applied: %d", b.Ts-a.Ts)
	}
}
