package core

import (
	"sync"

	"cosmos/internal/cql"
	"cosmos/internal/merge"
	"cosmos/internal/obs"
	"cosmos/internal/profile"
	"cosmos/internal/stream"
)

// QueryHandle is the user-side proxy of one continuous query (paper §2:
// "a user first connects to a broker/processor which works as the proxy
// for the user and is responsible for retrieving the result stream from
// the network and sending it back to the user").
//
// The proxy subscribes to the group's representative result stream with
// the member's re-tightening profile and — defensively — re-applies the
// profile filter and the member's own projection/AS renaming before
// invoking the user callback, so network-side slack (e.g. stale
// aggregated subscriptions upstream after a group change) never leaks
// foreign tuples to the user.
type QueryHandle struct {
	Tag      string
	UserNode int

	sys    *System
	proc   *Processor
	bound  *cql.Bound
	client netClient
	// onResult is the subscriber callback: on the client API it is a
	// subscription pump enqueue, on the daemon the wire enqueue — both
	// audited non-blocking hand-offs pinned by their own benchmarks.
	//
	//cosmos:hotpath-ok
	onResult func(stream.Tuple)

	mu           sync.Mutex
	resultStream string           // guarded by mu
	filter       *profile.Profile // guarded by mu
	out          *stream.Schema   // guarded by mu
	lookup       []string         // guarded by mu
	detached     bool             // guarded by mu

	// idxSchema/idxCache memoise lookup-name → column resolution for
	// the last result schema seen, so steady-state delivery indexes by
	// position instead of doing per-result name lookups. Both guarded
	// by mu.
	idxSchema *stream.Schema // guarded by mu
	idxCache  []int          // guarded by mu
}

// Query returns the analysed query this handle serves.
func (h *QueryHandle) Query() *cql.Bound { return h.bound }

// Processor returns the processor executing (the group of) this query.
func (h *QueryHandle) Processor() *Processor { return h.proc }

// refresh (re)binds the handle to its group's representative: builds the
// re-tightening profile, the output schema, and the value lookup table,
// then subscribes.
func (h *QueryHandle) refresh(rep *cql.Bound, resultStream string, singleton bool) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	var prof *profile.Profile
	var lookup []string
	if singleton {
		// The installed plan IS the member query: results already have
		// the member's output fields (including AS names).
		prof = profile.ForResult(resultStream)
		lookup = outputNames(h.bound)
	} else {
		var err error
		prof, err = merge.BuildMemberProfile(h.bound, rep, resultStream)
		if err != nil {
			return err
		}
		lookup = canonicalNames(h.bound)
	}
	h.resultStream = resultStream
	h.filter = prof
	h.out = h.bound.OutSchema.Rename(h.Tag)
	h.lookup = lookup
	h.idxSchema, h.idxCache = nil, nil
	h.client.Subscribe(prof)
	return nil
}

// outputNames lists the member's own output field names in schema order.
func outputNames(b *cql.Bound) []string {
	var names []string
	names = append(names, b.OutNames...)
	for _, a := range b.Aggs {
		names = append(names, a.OutName)
	}
	return names
}

// canonicalNames lists, for each member output field, the attribute name
// carrying its value in the REPRESENTATIVE's result stream.
func canonicalNames(b *cql.Bound) []string {
	var names []string
	for _, c := range b.SelectCols {
		names = append(names, c.String())
	}
	for _, a := range b.Aggs {
		names = append(names, a.String())
	}
	return names
}

// deliver handles one tuple arriving at the user proxy.
//
//cosmos:hotpath
func (h *QueryHandle) deliver(t stream.Tuple) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.detached || t.Schema == nil || t.Schema.Stream != h.resultStream {
		return
	}
	if h.filter != nil {
		ok, err := h.filter.Covers(t)
		if err != nil || !ok {
			return
		}
	}
	if t.Schema != h.idxSchema {
		idx := make([]int, len(h.lookup))
		for i, name := range h.lookup {
			j := t.Schema.ColIndex(name)
			if j < 0 {
				return // group changed under us; the refresh will re-align
			}
			idx[i] = j
		}
		h.idxSchema, h.idxCache = t.Schema, idx
	}
	values := make([]stream.Value, len(h.idxCache))
	for i, j := range h.idxCache {
		values[i] = t.Values[j]
	}
	out := stream.Tuple{Schema: h.out, Ts: t.Ts, Values: values}
	if h.onResult != nil {
		// Deliver counts results actually handed to the subscriber; the
		// sampled timing covers the user callback (a subscription pump
		// enqueue on the client API, the wire enqueue on the daemon).
		// Proxies deliver concurrently (one pump per subscriber): stripe
		// the count by the proxy's node so they never share a counter line.
		m := h.sys.obs
		start := m.StageStartAt(obs.StageDeliver, h.UserNode)
		h.onResult(out)
		m.StageEnd(obs.StageDeliver, start)
		m.TraceMark(int64(out.Ts), obs.StageDeliver)
	}
}

// detach stops delivery and withdraws the proxy's local subscription.
func (h *QueryHandle) detach() {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.detached = true
	if h.filter != nil {
		h.sys.net.Broker(h.UserNode).Unsubscribe(h.filter, h.client.Iface())
	}
}
