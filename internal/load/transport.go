package load

import (
	"fmt"
	"sync/atomic"
	"time"

	"cosmos/internal/core"
	"cosmos/internal/stream"
	"cosmos/internal/transport"
)

// runTransport is the sustained TCP result-path scenario — the
// PR-7/PR-8 BENCH_transport workload rebased onto the harness: one
// daemon (in-process unless cfg.Addr points at a running cosmosd), one
// subscriber connection fanning out to cfg.Subs subscriptions, tuples
// published at the held rate from an embedded source so the timed path
// is publish → eval → wire → client callback, with the wire codec
// dominating the per-result cost.
func runTransport(cfg Config) (*Report, error) {
	addr := cfg.Addr
	var dep *liveDeployment
	if addr == "" {
		var err error
		dep, err = startLive(core.Options{
			Nodes: 16, Seed: cfg.Seed, ExecWorkers: cfg.Workers, IngestBatch: 1,
		}, true)
		if err != nil {
			return nil, err
		}
		defer dep.close()
		addr = dep.addr
	}

	pub, err := newPublisher(dep, addr, loadInfo("Load00", cfg.Rate), 1)
	if err != nil {
		return nil, err
	}
	defer pub.close()

	sub, err := transport.DialConfig(addr, transport.Config{WireVersion: cfg.WireVersion})
	if err != nil {
		return nil, err
	}
	defer sub.Close()

	rec := NewRecorder(time.Now())
	var extractErr atomic.Value
	target := int64(cfg.targetEvents()) * int64(cfg.Subs)
	arrived := make(chan struct{}, 1)
	for i := 0; i < cfg.Subs; i++ {
		track := rec.NewTrack(1).Expect(0)
		var x seqPub
		_, err := sub.Submit(loadQuery("Load00"), 3+i%8, func(t stream.Tuple, _ uint64) {
			seq, pubNs, err := x.extract(t)
			if err != nil {
				extractErr.CompareAndSwap(nil, err)
				return
			}
			rec.Observe(track, seq, pubNs, int64(t.Ts))
			if rec.Delivered() >= target {
				select {
				case arrived <- struct{}{}:
				default:
				}
			}
		}, nil, nil)
		if err != nil {
			return nil, err
		}
	}
	// Settle subscription propagation before traffic starts.
	if err := sub.Quiesce(); err != nil {
		return nil, err
	}
	statsBefore, err := sub.Stats()
	if err != nil {
		return nil, err
	}

	var probe memProbe
	probe.start()
	pacer := NewPacer(cfg.Rate)
	rec.start = pacer.Start()
	events := cfg.targetEvents()
	for i := 0; i < events; i++ {
		intended := pacer.Tick()
		if err := pub.publish(loadTuple(pub.schema, int64(i), intended, pacer.Elapsed())); err != nil {
			return nil, fmt.Errorf("load: publish: %w", err)
		}
	}
	pubElapsed := pacer.Elapsed()

	// Drain: the delivery callbacks signal when the last expected
	// result lands; anything missing at the deadline is charged lost.
	deadline := time.Now().Add(cfg.DrainTimeout)
	for rec.Delivered() < target && time.Now().Before(deadline) {
		select {
		case <-arrived:
		case <-time.After(time.Until(deadline)):
		}
	}
	total := pacer.Elapsed()
	allocs := probe.allocsPer(rec.Delivered())
	if err, _ := extractErr.Load().(error); err != nil {
		return nil, err
	}

	final := int64(events) - 1
	for _, tr := range rec.Tracks() {
		tr.AddTailLoss(final)
	}
	lost, dups := rec.Totals()
	statsAfter, err := sub.Stats()
	if err != nil {
		return nil, err
	}

	res := baseResults(pacer, rec, pubElapsed, total)
	res.Expected = target
	res.Lost = lost
	res.Duplicated = dups
	res.AllocsPerResult = allocs
	return &Report{
		Area: "transport",
		Config: ReportConfig{
			Backend:     "tcp",
			RatePerSec:  cfg.Rate,
			DurationS:   cfg.Duration.Seconds(),
			Events:      events,
			Subs:        cfg.Subs,
			Workers:     cfg.Workers,
			Seed:        cfg.Seed,
			WireVersion: sub.WireVersion(),
		},
		Results: res,
		Stages:  stageReports(statsBefore, statsAfter),
	}, nil
}

// publisher abstracts the ingest side: an embedded SourcePort when the
// daemon runs in-process (the direct-publish path the transport bench
// always measured), a dedicated TCP connection against an external
// daemon.
type publisher struct {
	schema  *stream.Schema
	publish func(stream.Tuple) error
	close   func()
}

func newPublisher(dep *liveDeployment, addr string, info *stream.Info, node int) (*publisher, error) {
	if dep != nil {
		port, err := dep.ls.RegisterStream(info, node)
		if err != nil {
			return nil, err
		}
		return &publisher{schema: info.Schema, publish: port.Publish, close: func() {}}, nil
	}
	tc, err := transport.DialConfig(addr, transport.Config{})
	if err != nil {
		return nil, err
	}
	if err := tc.Register(info, node); err != nil {
		tc.Close()
		return nil, err
	}
	return &publisher{schema: info.Schema, publish: tc.Publish, close: func() { tc.Close() }}, nil
}
