package exec_test

import (
	"sync"
	"testing"

	"cosmos/internal/cql"
	"cosmos/internal/exec"
	"cosmos/internal/sensordata"
	"cosmos/internal/stream"
)

func batcherFixture(t *testing.T, workers int) (*exec.Runtime, *collector) {
	t.Helper()
	reg := stream.NewRegistry()
	if err := sensordata.RegisterAll(reg); err != nil {
		t.Fatal(err)
	}
	b, err := cql.AnalyzeString("SELECT station, temperature FROM Sensor00 [Now]", reg)
	if err != nil {
		t.Fatal(err)
	}
	var c collector
	rt := exec.New(exec.Config{Workers: workers, Emit: c.emit})
	if _, err := rt.Install("p0", b, "res"); err != nil {
		t.Fatal(err)
	}
	return rt, &c
}

// TestBatcherDeliversAllInOrder: every tuple put before Flush reaches
// the plan through micro-batches, and the per-plan order (here: the
// result sequence of the single plan) matches unbatched synchronous
// consumption exactly.
func TestBatcherDeliversAllInOrder(t *testing.T) {
	// Reference: the same trace through an unbatched synchronous runtime.
	refRT, refC := batcherFixture(t, 0)
	refGen := sensordata.NewGenerator(0, 3)
	for i := 0; i < 500; i++ {
		if err := refRT.Consume(refGen.Next()); err != nil {
			t.Fatal(err)
		}
	}
	refRT.Close()
	want := refC.rendered()
	if len(want) != 500 {
		t.Fatalf("reference delivered %d, want 500", len(want))
	}

	for _, workers := range []int{0, 2} {
		rt, c := batcherFixture(t, workers)
		ba := exec.NewBatcher(rt, 64, 8)
		gen := sensordata.NewGenerator(0, 3)
		for i := 0; i < 500; i++ {
			if !ba.Put(gen.Next()) {
				t.Fatal("put rejected")
			}
		}
		ba.Flush()
		rt.Barrier()
		got := c.rendered()
		diffSequences(t, "batcher", got, want)
		ba.Close()
		rt.Close()
	}
}

// TestBatcherCloseSemantics: Put after Close is rejected; Close is
// idempotent; Flush returns once closed.
func TestBatcherCloseSemantics(t *testing.T) {
	rt, _ := batcherFixture(t, 0)
	defer rt.Close()
	ba := exec.NewBatcher(rt, 8, 4)
	gen := sensordata.NewGenerator(0, 1)
	ba.Put(gen.Next())
	ba.Flush()
	ba.Close()
	ba.Close()
	if ba.Put(gen.Next()) {
		t.Fatal("put accepted after close")
	}
	ba.Flush() // must not hang

	// Concurrent Flush waiters wake on Close.
	ba2 := exec.NewBatcher(rt, 8, 4)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		ba2.Flush()
	}()
	ba2.Close()
	wg.Wait()
}
