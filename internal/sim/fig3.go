package sim

import (
	"math/rand"
	"sort"

	"cosmos/internal/cbn"
	"cosmos/internal/core"
	"cosmos/internal/overlay"
	"cosmos/internal/stream"
)

// Figure 3 of the paper illustrates shared result-stream delivery on a
// four-node overlay: queries q1 and q2 run on the SPE at n1; their users
// sit at n3 and n4, both reachable through n2. Without sharing, the
// overlapping result streams s1 and s2 both cross the n1–n2 link; with
// sharing, one representative stream s3 crosses it and is split at n2.
//
// This file runs that exact scenario end to end (real SPE, real CBN) and
// reports per-link byte counts for both strategies.

// Fig3Link is one overlay link's traffic under both strategies.
type Fig3Link struct {
	Name           string
	NonShareBytes  int64
	ShareBytes     int64
	NonShareTuples int64
	ShareTuples    int64
}

// Fig3Result is the quantified Figure 3 comparison.
type Fig3Result struct {
	Links []Fig3Link
	// Totals across all links.
	NonShareTotal, ShareTotal int64
	// Deliveries per query (identical under both strategies by
	// construction; reported to prove exactness).
	Q1Results, Q2Results int
}

// fig3Tree builds the paper's overlay: n1(0) — n2(1), n2 — n3(2),
// n2 — n4(3), with uniform 10 ms links.
func fig3Tree() *overlay.Tree {
	return &overlay.Tree{
		Root:      0,
		Parent:    []int{-1, 0, 1, 1},
		Children:  [][]int{{1}, {2, 3}, {}, {}},
		LinkDelay: []float64{0, 10, 10, 10},
	}
}

var fig3LinkNames = map[[2]int]string{
	{0, 1}: "n1-n2",
	{1, 2}: "n2-n3",
	{1, 3}: "n2-n4",
}

// RunFigure3 executes the auction scenario with events auctions and
// returns the per-link comparison. Seed controls the workload.
func RunFigure3(events int, seed int64) (*Fig3Result, error) {
	shareStats, q1Share, q2Share, err := runFig3Once(events, seed, false)
	if err != nil {
		return nil, err
	}
	nonShareStats, q1Non, q2Non, err := runFig3Once(events, seed, true)
	if err != nil {
		return nil, err
	}
	if q1Share != q1Non || q2Share != q2Non {
		// Exactness check: both strategies must deliver identical result
		// counts; a mismatch is a bug worth surfacing loudly.
		return nil, errMismatch(q1Share, q1Non, q2Share, q2Non)
	}
	res := &Fig3Result{Q1Results: q1Share, Q2Results: q2Share}
	keys := make([][2]int, 0, len(fig3LinkNames))
	for k := range fig3LinkNames {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		return fig3LinkNames[keys[i]] < fig3LinkNames[keys[j]]
	})
	find := func(stats []*cbn.LinkStats, k [2]int) *cbn.LinkStats {
		for _, ls := range stats {
			if ls.A == k[0] && ls.B == k[1] {
				return ls
			}
		}
		return &cbn.LinkStats{}
	}
	for _, k := range keys {
		ns := find(nonShareStats, k)
		sh := find(shareStats, k)
		res.Links = append(res.Links, Fig3Link{
			Name:           fig3LinkNames[k],
			NonShareBytes:  ns.DataBytes,
			ShareBytes:     sh.DataBytes,
			NonShareTuples: ns.DataMsgs,
			ShareTuples:    sh.DataMsgs,
		})
		res.NonShareTotal += ns.DataBytes
		res.ShareTotal += sh.DataBytes
	}
	return res, nil
}

type fig3MismatchError struct{ q1s, q1n, q2s, q2n int }

func errMismatch(q1s, q1n, q2s, q2n int) error {
	return &fig3MismatchError{q1s, q1n, q2s, q2n}
}

func (e *fig3MismatchError) Error() string {
	return "sim: share/non-share delivered different result counts"
}

// runFig3Once runs one strategy and returns link stats plus per-query
// delivery counts.
func runFig3Once(events int, seed int64, disableMerging bool) ([]*cbn.LinkStats, int, int, error) {
	sys, err := core.NewSystem(core.Options{
		Tree:           fig3Tree(),
		Seed:           seed,
		ProcessorNodes: []int{0}, // the SPE runs at n1
		DisableMerging: disableMerging,
	})
	if err != nil {
		return nil, 0, 0, err
	}
	open := &stream.Info{Schema: stream.MustSchema("OpenAuction",
		stream.Field{Name: "itemID", Kind: stream.KindInt},
		stream.Field{Name: "sellerID", Kind: stream.KindInt},
		stream.Field{Name: "start_price", Kind: stream.KindFloat},
		stream.Field{Name: "timestamp", Kind: stream.KindTime},
	), Rate: 50}
	closed := &stream.Info{Schema: stream.MustSchema("ClosedAuction",
		stream.Field{Name: "itemID", Kind: stream.KindInt},
		stream.Field{Name: "buyerID", Kind: stream.KindInt},
		stream.Field{Name: "timestamp", Kind: stream.KindTime},
	), Rate: 30}
	// Sources publish at n1 so input transfer does not differ between
	// strategies (the comparison is about result delivery).
	openPort, err := sys.RegisterStream(open, 0)
	if err != nil {
		return nil, 0, 0, err
	}
	closedPort, err := sys.RegisterStream(closed, 0)
	if err != nil {
		return nil, 0, 0, err
	}
	var q1Results, q2Results int
	// q1 at n3: auctions closing within 3 hours (Table 1).
	_, err = sys.Submit(
		"SELECT O.* FROM OpenAuction [Range 3 Hour] O, ClosedAuction [Now] C WHERE O.itemID = C.itemID",
		2, func(stream.Tuple) { q1Results++ })
	if err != nil {
		return nil, 0, 0, err
	}
	// q2 at n4: items/buyers of auctions closing within 5 hours.
	_, err = sys.Submit(
		"SELECT O.itemID, O.timestamp, C.buyerID, C.timestamp FROM OpenAuction [Range 5 Hour] O, ClosedAuction [Now] C WHERE O.itemID = C.itemID",
		3, func(stream.Tuple) { q2Results++ })
	if err != nil {
		return nil, 0, 0, err
	}

	rng := rand.New(rand.NewSource(seed))
	h := int64(stream.Hour)
	type ev struct {
		open      bool
		ts        stream.Timestamp
		item, aux int64
		price     float64
	}
	var evs []ev
	for item := int64(0); item < int64(events); item++ {
		openTs := stream.Timestamp(item * 600000) // one auction per 10 min
		dur := stream.Timestamp(rng.Int63n(7 * h))
		evs = append(evs, ev{open: true, ts: openTs, item: item, aux: rng.Int63n(50), price: rng.Float64() * 900})
		evs = append(evs, ev{open: false, ts: openTs + dur, item: item, aux: rng.Int63n(900)})
	}
	sort.Slice(evs, func(i, j int) bool { return evs[i].ts < evs[j].ts })
	for _, e := range evs {
		if e.open {
			t := stream.MustTuple(open.Schema, e.ts,
				stream.Int(e.item), stream.Int(e.aux), stream.Float(e.price), stream.Time(e.ts))
			if err := openPort.Publish(t); err != nil {
				return nil, 0, 0, err
			}
		} else {
			t := stream.MustTuple(closed.Schema, e.ts,
				stream.Int(e.item), stream.Int(e.aux), stream.Time(e.ts))
			if err := closedPort.Publish(t); err != nil {
				return nil, 0, 0, err
			}
		}
	}
	return sys.NetStats(), q1Results, q2Results, nil
}
