package predicate

import (
	"fmt"

	"cosmos/internal/stream"
)

// This file implements the compiled form of a DNF filter: every attribute
// reference is resolved to a column index against one schema at compile
// time (control plane), so evaluation (data plane) is a pure index walk
// over a tuple's value slice — no name lookups, no map accesses, no
// allocations, and no runtime errors. Compilation fails, instead of
// deferring an error to evaluation, whenever the interpreted evaluator
// could error at runtime (missing attribute, incomparable kinds); callers
// fall back to the interpreted path in that case, which keeps the two
// paths' observable semantics identical.

// tsCol is the sentinel column index resolving to the tuple's intrinsic
// timestamp rather than a value column.
const tsCol = -1

// cmpMode selects the comparison specialisation picked at compile time.
// Each mode reproduces exactly the branch Value.Compare would take for
// the operand kinds the schema guarantees, including the exact-integer
// path for non-float numerics (ints widened into float fields keep their
// exact comparison, hence cmpDyn).
type cmpMode uint8

const (
	// cmpInt: both sides are guaranteed non-float numerics at runtime —
	// exact int64 comparison on the payloads.
	cmpInt cmpMode = iota
	// cmpFloat: the constant is a float, so Value.Compare always takes
	// the float path regardless of the left side's runtime kind.
	cmpFloat
	// cmpDyn: non-float constant but the left side may hold a float at
	// runtime (float field, possibly populated by a widened int) — the
	// runtime kind picks exact-int vs float, as Value.Compare does.
	cmpDyn
	// cmpString / cmpBool: same-kind ordered comparisons.
	cmpString
	cmpBool
)

// compiledConstraint is one constraint with its term pre-resolved: colA
// (and colB for difference terms) index the tuple's value slice, or are
// tsCol for the intrinsic timestamp. The constant is pre-decoded into
// the payload the chosen cmpMode needs.
type compiledConstraint struct {
	colA, colB int
	diff       bool
	mode       cmpMode
	op         Op
	constN     int64
	constF     float64
	constS     string
}

// eval evaluates the constraint against a value slice. Compile has already
// proven the operand kinds comparable, so the error path of Value.Sub is
// unreachable here and every mode's comparison is total.
//
//cosmos:hotpath
func (cc *compiledConstraint) eval(vals []stream.Value, ts stream.Timestamp) bool {
	a := resolveCol(vals, ts, cc.colA)
	if cc.diff {
		b := resolveCol(vals, ts, cc.colB)
		a, _ = a.Sub(b)
	}
	var cmp int
	switch cc.mode {
	case cmpInt:
		cmp = cmp3i(a.AsInt(), cc.constN)
	case cmpFloat:
		cmp = cmp3f(a.AsFloat(), cc.constF)
	case cmpDyn:
		if a.Kind() == stream.KindFloat {
			cmp = cmp3f(a.AsFloat(), cc.constF)
		} else {
			cmp = cmp3i(a.AsInt(), cc.constN)
		}
	case cmpString:
		s := a.AsString()
		cmp = cmp3s(s, cc.constS)
	default: // cmpBool
		var n int64
		if a.AsBool() {
			n = 1
		}
		cmp = cmp3i(n, cc.constN)
	}
	return cc.op.Holds(cmp)
}

//cosmos:hotpath
func cmp3i(a, b int64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

//cosmos:hotpath
func cmp3f(a, b float64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

//cosmos:hotpath
func cmp3s(a, b string) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

//cosmos:hotpath
func resolveCol(vals []stream.Value, ts stream.Timestamp, col int) stream.Value {
	if col == tsCol {
		return stream.Time(ts)
	}
	return vals[col]
}

// Compiled is a DNF filter compiled against one schema. It is immutable
// after Compile and safe for concurrent evaluation.
type Compiled struct {
	isTrue    bool
	disjuncts [][]compiledConstraint
}

// Compile resolves every attribute reference of the DNF against the schema
// and type-checks every comparison. It returns an error whenever the
// interpreted evaluator could raise one at runtime for a tuple of this
// schema — callers must then keep using the interpreted path, which
// preserves error semantics exactly.
func Compile(d DNF, s *stream.Schema) (*Compiled, error) {
	if s == nil {
		return nil, fmt.Errorf("predicate: compile against nil schema")
	}
	c := &Compiled{isTrue: d.IsTrue()}
	if c.isTrue {
		return c, nil
	}
	c.disjuncts = make([][]compiledConstraint, len(d))
	for i, cj := range d {
		compiled := make([]compiledConstraint, len(cj))
		for j, con := range cj {
			cc, err := compileConstraint(con, s)
			if err != nil {
				return nil, err
			}
			compiled[j] = cc
		}
		c.disjuncts[i] = compiled
	}
	return c, nil
}

func compileConstraint(con Constraint, s *stream.Schema) (compiledConstraint, error) {
	colA, kindA, err := resolveRef(con.Term.A, s)
	if err != nil {
		return compiledConstraint{}, err
	}
	cc := compiledConstraint{colA: colA, op: con.Op}
	lhsKind := kindA
	// mayFloat: whether the left side can hold a float at runtime. A
	// float field may also hold a widened int, so "declared float" means
	// "runtime kind unknown", not "runtime float".
	mayFloat := kindA == stream.KindFloat
	if con.Term.IsDiff() {
		colB, kindB, err := resolveRef(con.Term.B, s)
		if err != nil {
			return compiledConstraint{}, err
		}
		if !numericKind(kindA) || !numericKind(kindB) {
			return compiledConstraint{}, fmt.Errorf(
				"predicate: cannot subtract %s from %s in %s", kindB, kindA, con.Term)
		}
		cc.colB, cc.diff = colB, true
		lhsKind = stream.KindInt // difference of numerics is numeric
		mayFloat = mayFloat || kindB == stream.KindFloat
	}
	constKind := con.Const.Kind()
	if !comparableKinds(lhsKind, constKind) {
		return compiledConstraint{}, fmt.Errorf(
			"predicate: cannot compare %s (%s) with %s", con.Term, lhsKind, constKind)
	}
	switch {
	case lhsKind == stream.KindString:
		cc.mode, cc.constS = cmpString, con.Const.AsString()
	case lhsKind == stream.KindBool:
		cc.mode = cmpBool
		if con.Const.AsBool() {
			cc.constN = 1
		}
	case constKind == stream.KindFloat:
		cc.mode, cc.constF = cmpFloat, con.Const.AsFloat()
	case !mayFloat:
		cc.mode, cc.constN = cmpInt, con.Const.AsInt()
	default:
		cc.mode = cmpDyn
		cc.constN, cc.constF = con.Const.AsInt(), con.Const.AsFloat()
	}
	return cc, nil
}

// resolveRef mirrors the interpreted resolveAttr: a schema column wins
// over the intrinsic timestamp name.
func resolveRef(name string, s *stream.Schema) (int, stream.Kind, error) {
	if i := s.ColIndex(name); i >= 0 {
		return i, s.Fields[i].Kind, nil
	}
	if name == IntrinsicTs {
		return tsCol, stream.KindTime, nil
	}
	return 0, stream.KindInvalid, fmt.Errorf(
		"predicate: tuple of %s lacks attribute %s", s.Stream, name)
}

func numericKind(k stream.Kind) bool {
	return k == stream.KindInt || k == stream.KindFloat || k == stream.KindTime
}

// comparableKinds reports whether values of the two kinds always compare
// without error under Value.Compare. Field kinds may be populated by
// widening int values, but every widening stays within the numeric kinds,
// so checking declared kinds is sound.
func comparableKinds(a, b stream.Kind) bool {
	if numericKind(a) && numericKind(b) {
		return true
	}
	return a == b && (a == stream.KindString || a == stream.KindBool)
}

// IsTrue reports whether the compiled filter accepts everything.
//
//cosmos:hotpath
func (c *Compiled) IsTrue() bool { return c.isTrue }

// EvalValues evaluates the compiled filter against a tuple's value slice
// and timestamp. It never touches attribute names and never allocates.
// The values must conform to the schema the filter was compiled against.
//
//cosmos:hotpath
func (c *Compiled) EvalValues(vals []stream.Value, ts stream.Timestamp) bool {
	if c.isTrue {
		return true
	}
	for i := range c.disjuncts {
		cj := c.disjuncts[i]
		match := true
		for j := range cj {
			if !cj[j].eval(vals, ts) {
				match = false
				break
			}
		}
		if match {
			return true
		}
	}
	return false
}
