package stream

import (
	"math"
	"strconv"
)

// This file provides canonical comparable keys for Values, used by the
// SPE's hash-partitioned join state and per-group aggregate state: Go map
// keys that agree with Value.Compare equality, so that index lookups
// reproduce exactly what a pairwise-comparison scan would find.

// maxExactFloat bounds the magnitude below which every integral float64
// converts to int64 and back without rounding (2^53).
const maxExactFloat = int64(1) << 53

// ValueKey is the canonical comparable form of a Value. Two Values that
// are equal under Compare produce identical keys (and vice versa) for all
// KeyExact values; see KeyExact for the corner cases. The zero ValueKey
// is the key of the invalid Value.
type ValueKey struct {
	kind Kind
	n    int64
	f    float64
	s    string
}

// Key returns the canonical comparable key of the value. Numeric kinds
// normalise to a single representation: ints and times share the integer
// form (Compare treats them as plain numbers), and floats holding an
// exactly-representable integer collapse into it, so Int(5), Time(5) and
// Float(5.0) — all equal under Compare — key identically.
func (v Value) Key() ValueKey {
	switch v.kind {
	case KindInt, KindTime:
		return ValueKey{kind: KindInt, n: v.n}
	case KindBool:
		return ValueKey{kind: KindBool, n: v.n}
	case KindString:
		return ValueKey{kind: KindString, s: v.s}
	case KindFloat:
		if math.IsNaN(v.f) {
			// One canonical key for every NaN: a NaN payload would
			// never equal itself as a map key, fragmenting groups and
			// stranding their state forever.
			return ValueKey{kind: KindFloat, s: "NaN"}
		}
		if v.f == math.Trunc(v.f) && v.f >= -float64(maxExactFloat) && v.f <= float64(maxExactFloat) {
			return ValueKey{kind: KindInt, n: int64(v.f)}
		}
		return ValueKey{kind: KindFloat, f: v.f}
	default:
		return ValueKey{}
	}
}

// String renders the key canonically; composite-key builders use it to
// concatenate the columns beyond their fixed-width fields. Floats use
// the exact binary exponent form so distinct values never collide.
func (k ValueKey) String() string {
	switch k.kind {
	case KindInt:
		return "i" + strconv.FormatInt(k.n, 10)
	case KindFloat:
		if k.s != "" {
			return "fNaN"
		}
		return "f" + strconv.FormatFloat(k.f, 'b', -1, 64)
	case KindBool:
		return "b" + strconv.FormatInt(k.n, 10)
	case KindString:
		return "s" + k.s
	default:
		return "?"
	}
}

// KeyExact reports whether key equality coincides with Compare equality
// for this value against every possible partner. It is false only in the
// corners where float64 rounding makes Compare coarser than the key:
// NaN (Compare's three-way test reports 0 against any number) and
// numeric magnitudes above 2^53 (where distinct int64s collapse to one
// float64). Callers maintaining hash state route non-exact values to a
// scan path instead.
func (v Value) KeyExact() bool {
	switch v.kind {
	case KindInt, KindTime:
		return v.n >= -maxExactFloat && v.n <= maxExactFloat
	case KindFloat:
		return !math.IsNaN(v.f) && v.f >= -float64(maxExactFloat) && v.f <= float64(maxExactFloat)
	default:
		return true
	}
}
