package core

import (
	"cosmos/internal/cbn"
	"cosmos/internal/profile"
	"cosmos/internal/stream"
)

// netClient is the client surface of the data layer a system component
// (source port, processor, query proxy) holds — satisfied by both
// cbn.SimClient (synchronous, deterministic) and cbn.LiveClient
// (concurrent). Publish must be safe for concurrent use on the live
// transport; on the simulated transport the single-threaded network
// imposes single-caller discipline, which System's sharded mode honours
// by buffering emissions until Quiesce.
type netClient interface {
	Advertise(streamName string)
	Subscribe(p *profile.Profile)
	// Publish hands one tuple into the network. Both implementations
	// are audited ingest boundaries: SimClient routes synchronously
	// through the (hotpath-checked) broker, LiveClient enqueues on the
	// ingress ring under its credit budget.
	//
	//cosmos:hotpath-ok
	Publish(t stream.Tuple) error
	SetOnTuple(fn func(stream.Tuple))
	Iface() cbn.IfaceID
	// Close releases the attachment (delivery stops; on the live
	// transport the pump goroutine and broker endpoint are reclaimed).
	Close()
}

// transport is the network surface the system assembles against: client
// attachment plus the control hooks query management needs. SimNet and
// LiveNet both provide it (via the adapters below), so the same
// processor/distribution/delivery components deploy over either.
type transport interface {
	AttachClient(node int) (netClient, error)
	Broker(node int) *cbn.Broker
	PruneStream(name string)
	TotalDataBytes() int64
}

// simTransport adapts the deterministic simulated network.
type simTransport struct{ net *cbn.SimNet }

func (s simTransport) AttachClient(node int) (netClient, error) {
	return s.net.AttachClient(node), nil
}
func (s simTransport) Broker(node int) *cbn.Broker { return s.net.Broker(node) }
func (s simTransport) PruneStream(name string)     { s.net.PruneStream(name) }
func (s simTransport) TotalDataBytes() int64       { return s.net.TotalDataBytes() }

// liveTransport adapts the concurrent goroutine-per-broker network.
type liveTransport struct{ net *cbn.LiveNet }

func (l liveTransport) AttachClient(node int) (netClient, error) {
	return l.net.AttachClient(node)
}
func (l liveTransport) Broker(node int) *cbn.Broker { return l.net.Broker(node) }
func (l liveTransport) PruneStream(name string)     { l.net.PruneStream(name) }
func (l liveTransport) TotalDataBytes() int64       { return l.net.TotalDataBytes() }
