// Package cbn implements the content-based network at the heart of the
// COSMOS data layer (paper §1, §3): "In a CBN, each datagram consists of
// several attribute-value pairs. A node in the network can express its
// data interest as a few selection predicates … The sources and the
// destinations are not known to each other."
//
// COSMOS extends traditional CBN with stream awareness: datagrams belong
// to named streams, and profiles carry per-stream projection sets that
// brokers apply early to save bandwidth (§3.1).
//
// The package separates protocol logic (Broker — synchronous, transport
// agnostic) from transports: SimNet runs brokers over a simulated overlay
// with deterministic FIFO delivery and per-link byte accounting (how the
// paper evaluates, §5), while LiveNet runs each broker on its own
// goroutine connected by channels.
package cbn

import (
	"sort"
	"sync"

	"cosmos/internal/predicate"
	"cosmos/internal/profile"
	"cosmos/internal/stream"
)

// IfaceID identifies one attachment point of a broker: an overlay link to
// a neighbour broker or a local client (source, processor or user proxy).
type IfaceID int

// Forward instructs the transport to send a subscription on an interface.
type Forward struct {
	Iface IfaceID
	Prof  *profile.Profile
}

// AdvertForward instructs the transport to send an advertisement.
type AdvertForward struct {
	Iface  IfaceID
	Stream string
}

// Delivery instructs the transport to send a (projected) tuple.
type Delivery struct {
	Iface IfaceID
	Tuple stream.Tuple
}

// Broker is the protocol logic of one CBN node. All methods are
// synchronous and thread-safe; transports own messaging.
type Broker struct {
	ID int

	mu     sync.Mutex
	ifaces []IfaceID
	// subs stores every profile received per interface.
	subs map[IfaceID][]*profile.Profile
	// agg caches the union of subs per interface (what that side wants).
	agg map[IfaceID]*profile.Profile
	// sent records what has been propagated out of each interface, for
	// covering-based suppression.
	sent map[IfaceID]*profile.Profile
	// adverts maps stream name → interfaces through which the stream's
	// source is reachable.
	adverts map[string]map[IfaceID]bool
	// projCache caches projected schemas keyed by stream + attr set.
	projCache map[string]*stream.Schema
}

// NewBroker builds an empty broker.
func NewBroker(id int) *Broker {
	return &Broker{
		ID:        id,
		subs:      map[IfaceID][]*profile.Profile{},
		agg:       map[IfaceID]*profile.Profile{},
		sent:      map[IfaceID]*profile.Profile{},
		adverts:   map[string]map[IfaceID]bool{},
		projCache: map[string]*stream.Schema{},
	}
}

// AttachIface registers an interface.
func (b *Broker) AttachIface(id IfaceID) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for _, existing := range b.ifaces {
		if existing == id {
			return
		}
	}
	b.ifaces = append(b.ifaces, id)
	sort.Slice(b.ifaces, func(i, j int) bool { return b.ifaces[i] < b.ifaces[j] })
}

// Ifaces returns the attached interface IDs, sorted.
func (b *Broker) Ifaces() []IfaceID {
	b.mu.Lock()
	defer b.mu.Unlock()
	return append([]IfaceID(nil), b.ifaces...)
}

// normalize widens a profile's projection sets with the attributes its
// filters evaluate, so that en-route projection never strips attributes a
// downstream filter still needs.
func normalize(p *profile.Profile) *profile.Profile {
	out := p.Clone()
	for _, s := range out.Streams {
		attrs := out.Attrs[s]
		if attrs == nil {
			continue // all attributes anyway
		}
		f := out.FilterFor(s)
		if f.IsTrue() {
			continue
		}
		set := map[string]bool{}
		for _, a := range attrs {
			set[a] = true
		}
		changed := false
		for _, a := range f.Attrs() {
			// The intrinsic timestamp resolves from the tuple itself and
			// must not enter projection sets.
			if a == predicate.IntrinsicTs {
				continue
			}
			if !set[a] {
				set[a] = true
				changed = true
			}
		}
		if changed {
			widened := make([]string, 0, len(set))
			for a := range set {
				widened = append(widened, a)
			}
			out.AddStream(s, widened, out.Filters[s])
		}
	}
	return out
}

// HandleAdvertise processes a stream advertisement arriving on an
// interface. Advertisements flood the overlay (they are rare and tiny);
// the broker remembers which interface leads to the source so future
// subscriptions travel toward it. It returns the advert forwards plus any
// pending subscriptions that must now be sent toward the advertiser
// (subscriptions that arrived before the advert).
func (b *Broker) HandleAdvertise(streamName string, from IfaceID) ([]AdvertForward, []Forward) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.adverts[streamName] == nil {
		b.adverts[streamName] = map[IfaceID]bool{}
	}
	if b.adverts[streamName][from] {
		return nil, nil // duplicate advert; stop the flood
	}
	b.adverts[streamName][from] = true

	var adverts []AdvertForward
	for _, iface := range b.ifaces {
		if iface != from {
			adverts = append(adverts, AdvertForward{Iface: iface, Stream: streamName})
		}
	}
	// Re-propagate interested subscriptions toward the new route.
	var subs []Forward
	demand := b.demandExcept(from, streamName)
	if demand != nil {
		if fw := b.coverAndRecord(demand, from); fw != nil {
			subs = append(subs, Forward{Iface: from, Prof: fw})
		}
	}
	return adverts, subs
}

// demandExcept unions the subscriptions for one stream arriving on all
// interfaces except skip; nil when there are none.
func (b *Broker) demandExcept(skip IfaceID, streamName string) *profile.Profile {
	var acc *profile.Profile
	for iface, ps := range b.subs {
		if iface == skip {
			continue
		}
		for _, p := range ps {
			for _, s := range p.Streams {
				if s != streamName {
					continue
				}
				if acc == nil {
					acc = profile.New()
				}
				one := profile.New()
				one.AddStream(s, p.Attrs[s], p.Filters[s])
				acc.Merge(one)
			}
		}
	}
	return acc
}

// coverAndRecord suppresses the parts of p already covered by what was
// sent on iface, recording the rest. Returns nil when fully covered.
func (b *Broker) coverAndRecord(p *profile.Profile, iface IfaceID) *profile.Profile {
	already := b.sent[iface]
	if already != nil && already.CoversProfile(p) {
		return nil
	}
	if already == nil {
		b.sent[iface] = p.Clone()
	} else {
		already.Merge(p)
	}
	return p
}

// HandleSubscribe processes a profile arriving on an interface, returning
// the forwards the transport must emit. Subscriptions propagate toward
// advertised sources only, with covering-based suppression (a
// subscription covered by one already sent on a link is not re-sent).
func (b *Broker) HandleSubscribe(p *profile.Profile, from IfaceID) []Forward {
	b.mu.Lock()
	defer b.mu.Unlock()
	p = normalize(p)
	b.subs[from] = append(b.subs[from], p)
	if b.agg[from] == nil {
		b.agg[from] = profile.New()
	}
	b.agg[from].Merge(p)

	// Split the profile per stream and route toward each advertiser.
	perIface := map[IfaceID]*profile.Profile{}
	for _, s := range p.Streams {
		for iface := range b.adverts[s] {
			if iface == from {
				continue
			}
			one := profile.New()
			one.AddStream(s, p.Attrs[s], p.Filters[s])
			if perIface[iface] == nil {
				perIface[iface] = profile.New()
			}
			perIface[iface].Merge(one)
		}
	}
	var out []Forward
	ifaces := make([]IfaceID, 0, len(perIface))
	for iface := range perIface {
		ifaces = append(ifaces, iface)
	}
	sort.Slice(ifaces, func(i, j int) bool { return ifaces[i] < ifaces[j] })
	for _, iface := range ifaces {
		if fw := b.coverAndRecord(perIface[iface], iface); fw != nil {
			out = append(out, Forward{Iface: iface, Prof: fw})
		}
	}
	return out
}

// RouteTuple routes a datagram arriving on an interface: it is forwarded
// on every other interface whose aggregated demand covers it, projected
// to that interface's attribute set for the stream (early projection,
// §3.1).
func (b *Broker) RouteTuple(t stream.Tuple, from IfaceID) ([]Delivery, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	var out []Delivery
	for _, iface := range b.ifaces {
		if iface == from {
			continue
		}
		agg := b.agg[iface]
		if agg == nil {
			continue
		}
		ok, err := agg.Covers(t)
		if err != nil {
			return nil, err
		}
		if !ok {
			continue
		}
		projected, err := b.project(agg, t)
		if err != nil {
			return nil, err
		}
		out = append(out, Delivery{Iface: iface, Tuple: projected})
	}
	return out, nil
}

// project applies an aggregate profile's projection with schema caching.
func (b *Broker) project(agg *profile.Profile, t stream.Tuple) (stream.Tuple, error) {
	attrs := agg.AttrsFor(t.Schema.Stream)
	if attrs == nil {
		return t, nil
	}
	key := t.Schema.Stream + "|" + joinAttrs(attrs)
	ps, ok := b.projCache[key]
	if !ok || !sameStream(ps, t.Schema) {
		var err error
		ps, err = t.Schema.Project(attrs)
		if err != nil {
			return stream.Tuple{}, err
		}
		b.projCache[key] = ps
	}
	return t.Project(ps)
}

func sameStream(a, bS *stream.Schema) bool { return a != nil && a.Stream == bS.Stream }

func joinAttrs(attrs []string) string {
	s := ""
	for i, a := range attrs {
		if i > 0 {
			s += ","
		}
		s += a
	}
	return s
}

// DemandOn returns the aggregated profile of one interface (what the far
// side wants); nil when nothing is subscribed.
func (b *Broker) DemandOn(iface IfaceID) *profile.Profile {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.agg[iface]
}

// KnowsSource reports whether the broker has a route toward a stream's
// source.
func (b *Broker) KnowsSource(streamName string) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.adverts[streamName]) > 0
}

// PruneStream discards every trace of a stream from the broker's state:
// advertisement routes, per-interface subscriptions, aggregates, and
// covering records. COSMOS processors retire result stream names when a
// query group changes; pruning plays the role of the state TTL a
// long-running deployment would use.
func (b *Broker) PruneStream(name string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	delete(b.adverts, name)
	for iface, subs := range b.subs {
		kept := subs[:0]
		changed := false
		for _, p := range subs {
			if contains(p.Streams, name) {
				changed = true
				if p.RemoveStream(name) {
					continue // profile became empty; drop it
				}
			}
			kept = append(kept, p)
		}
		b.subs[iface] = kept
		if changed {
			agg := profile.New()
			for _, p := range kept {
				agg.Merge(p)
			}
			b.agg[iface] = agg
		}
	}
	for iface, sent := range b.sent {
		if sent != nil && contains(sent.Streams, name) {
			if sent.RemoveStream(name) {
				delete(b.sent, iface)
			}
		}
	}
	for key := range b.projCache {
		if len(key) > len(name) && key[:len(name)] == name && key[len(name)] == '|' {
			delete(b.projCache, key)
		}
	}
}

func contains(list []string, s string) bool {
	for _, x := range list {
		if x == s {
			return true
		}
	}
	return false
}

// Unsubscribe removes every subscription previously received on the
// interface that Equal-matches p, rebuilding the interface aggregate.
// Propagating unsubscriptions upstream is handled by transports that
// need it (the simulator re-issues full state instead).
func (b *Broker) Unsubscribe(p *profile.Profile, from IfaceID) {
	b.mu.Lock()
	defer b.mu.Unlock()
	kept := b.subs[from][:0]
	for _, existing := range b.subs[from] {
		if !existing.Equal(normalize(p)) {
			kept = append(kept, existing)
		}
	}
	b.subs[from] = kept
	agg := profile.New()
	for _, existing := range kept {
		agg.Merge(existing)
	}
	b.agg[from] = agg
}
