// Command cosmosbench runs the sustained-load harness (internal/load)
// against a live COSMOS deployment and writes the result as a
// BENCH_<area>.json trajectory point.
//
// Each scenario assembles its own in-process deployment unless -addr
// points at a running cosmosd:
//
//	cosmosbench -scenario transport -rate 5000 -duration 1s
//	cosmosbench -scenario auction -events 2000000
//	cosmosbench -scenario churn -rate 4000 -duration 5s
//	cosmosbench -scenario clients -clients 512 -duration 2s
//
// The driver is open-loop: tuples are offered on a fixed schedule and
// stamped with their intended publish time, so a struggling system
// shows up as scheduling lag and inflated latency tails, never as a
// silently reduced offered rate. Every run accounts for loss and
// duplication per subscription via carried sequence numbers; -strict
// turns any loss or duplication into a non-zero exit (CI smoke mode).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"cosmos/internal/load"
)

func main() {
	var (
		scenario = flag.String("scenario", "",
			"workload to run: "+strings.Join(load.Scenarios(), ", "))
		rate     = flag.Int("rate", 0, "offered rate, tuples/s (0 = scenario default 5000)")
		duration = flag.Duration("duration", 0, "publishing-phase length (default 1s; -events wins)")
		events   = flag.Int("events", 0, "exact event count (overrides -duration)")
		subs     = flag.Int("subs", 0, "subscription count (scenario default)")
		clients  = flag.Int("clients", 0, "dialling-client count, clients scenario (default 256)")
		streams  = flag.Int("streams", 0, "source-stream count, churn/clients (scenario default)")
		workers  = flag.Int("workers", 0, "execution workers per processor (default 2)")
		seed     = flag.Int64("seed", 0, "topology/churn seed (scenario default)")
		wire     = flag.Int("wire", 0, "max wire version to negotiate (0 = newest)")
		addr     = flag.String("addr", "", "drive an external cosmosd at this address instead of in-process")
		out      = flag.String("out", "auto",
			`report path ("auto" = BENCH_<area>.json in the working directory, "" = don't write)`)
		drain  = flag.Duration("drain", 0, "post-publish drain deadline (default 2m)")
		strict = flag.Bool("strict", false, "exit non-zero when the run lost or duplicated results")
	)
	flag.Parse()
	if *scenario == "" {
		fmt.Fprintf(os.Stderr, "cosmosbench: -scenario required (one of %s)\n",
			strings.Join(load.Scenarios(), ", "))
		os.Exit(2)
	}

	cfg := load.Config{
		Scenario:     *scenario,
		Rate:         *rate,
		Duration:     *duration,
		Events:       *events,
		Subs:         *subs,
		Clients:      *clients,
		Streams:      *streams,
		Workers:      *workers,
		Seed:         *seed,
		WireVersion:  *wire,
		Addr:         *addr,
		DrainTimeout: *drain,
	}
	if *out != "auto" {
		cfg.Out = *out
	}

	// With -out auto the area names the file, so the run goes without
	// cfg.Out and the report is written explicitly afterwards.
	start := time.Now()
	rep, err := load.Run(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cosmosbench: %v\n", err)
		os.Exit(1)
	}
	path := cfg.Out
	if *out == "auto" {
		path = "BENCH_" + rep.Area + ".json"
		if err := load.WriteReport(path, rep); err != nil {
			fmt.Fprintf(os.Stderr, "cosmosbench: %v\n", err)
			os.Exit(1)
		}
	}

	r := rep.Results
	fmt.Printf("scenario %-9s %6.0f/s offered, %6.0f/s achieved, %d published, %d delivered in %.2fs\n",
		rep.Scenario, r.OfferedPerSec, r.AchievedPerSec, r.Published, r.Delivered, time.Since(start).Seconds())
	fmt.Printf("  latency  p50 %.0fµs  p99 %.0fµs  p99.99 %.0fµs  max %.0fµs\n",
		r.LatencyUs.P50, r.LatencyUs.P99, r.LatencyUs.P9999, r.LatencyUs.Max)
	fmt.Printf("  sched lag p50 %.0fµs  p99 %.0fµs  max %.0fµs   %.3f allocs/result\n",
		r.SchedLagUs.P50, r.SchedLagUs.P99, r.SchedLagUs.Max, r.AllocsPerResult)
	fmt.Printf("  ledger   lost %d  duplicated %d", r.Lost, r.Duplicated)
	if r.Expected > 0 {
		fmt.Printf("  (expected %d)", r.Expected)
	}
	fmt.Println()
	if path != "" {
		fmt.Printf("  report   %s\n", path)
	}

	if *strict && (r.Lost > 0 || r.Duplicated > 0) {
		fmt.Fprintf(os.Stderr, "cosmosbench: strict mode: %d lost, %d duplicated\n", r.Lost, r.Duplicated)
		os.Exit(1)
	}
}
