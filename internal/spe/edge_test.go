package spe

import (
	"testing"

	"cosmos/internal/stream"
)

func TestUnboundedWindowJoinNeverEvicts(t *testing.T) {
	b := bind(t, "SELECT O.itemID FROM OpenAuction O, ClosedAuction [Now] C WHERE O.itemID = C.itemID")
	p, err := Compile("q", b, "res")
	if err != nil {
		t.Fatal(err)
	}
	day := stream.Timestamp(stream.Day)
	p.Push(openTuple(0, 1, 1, 10))
	// A year later the open is still joinable under [Unbounded].
	out, err := p.Push(closedTuple(365*day, 1, 9))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 {
		t.Fatalf("unbounded join results = %v", out)
	}
}

func TestOutOfOrderAcrossStreamsWithinWindow(t *testing.T) {
	// The close arrives with a timestamp older than the newest open;
	// cross-stream interleaving within window bounds must still join.
	b := bind(t, "SELECT O.itemID FROM OpenAuction [Range 1 Hour] O, ClosedAuction [Range 1 Hour] C WHERE O.itemID = C.itemID")
	p, _ := Compile("q", b, "res")
	m := stream.Timestamp(stream.Minute)
	p.Push(openTuple(10*m, 1, 1, 10))
	p.Push(openTuple(30*m, 2, 1, 10))
	// Close at t=20m (older than the newest open at 30m).
	out, err := p.Push(closedTuple(20*m, 1, 9))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 {
		t.Fatalf("out-of-order close results = %v", out)
	}
	// Lemma 1 symmetric window: the close (20m) also joins an open
	// arriving later within C's window.
	out, _ = p.Push(openTuple(40*m, 1, 1, 10))
	if len(out) != 1 {
		t.Fatalf("open-after-close results = %v", out)
	}
}

func TestMultipleGroupByColumns(t *testing.T) {
	// Group by both columns of a two-attribute composite.
	b := bind(t, "SELECT sellerID, itemID, COUNT(*) FROM OpenAuction [Range 1 Hour] GROUP BY sellerID, itemID")
	p, err := Compile("agg", b, "res")
	if err != nil {
		t.Fatal(err)
	}
	p.Push(openTuple(1, 1, 10, 5))
	p.Push(openTuple(2, 1, 10, 5))
	out, _ := p.Push(openTuple(3, 1, 11, 5)) // same item, different seller
	if n := out[0].MustGet("COUNT(*)").AsInt(); n != 1 {
		t.Errorf("composite group count = %d, want 1", n)
	}
	out, _ = p.Push(openTuple(4, 1, 10, 5))
	if n := out[0].MustGet("COUNT(*)").AsInt(); n != 3 {
		t.Errorf("composite group count = %d, want 3", n)
	}
}

func TestCountSpecificColumn(t *testing.T) {
	b := bind(t, "SELECT COUNT(itemID) FROM OpenAuction [Range 1 Minute]")
	p, err := Compile("agg", b, "res")
	if err != nil {
		t.Fatal(err)
	}
	p.Push(openTuple(1, 1, 1, 1))
	out, _ := p.Push(openTuple(2, 2, 1, 1))
	if n := out[0].MustGet("COUNT(OpenAuction.itemID)").AsInt(); n != 2 {
		t.Errorf("count(col) = %d", n)
	}
}

func TestAggregateWithoutGroupBy(t *testing.T) {
	b := bind(t, "SELECT AVG(start_price) FROM OpenAuction [Range 1 Hour]")
	p, err := Compile("agg", b, "res")
	if err != nil {
		t.Fatal(err)
	}
	p.Push(openTuple(1, 1, 1, 10))
	out, _ := p.Push(openTuple(2, 2, 1, 30))
	if avg := out[0].MustGet("AVG(OpenAuction.start_price)").AsFloat(); avg != 20 {
		t.Errorf("global avg = %f", avg)
	}
}

func TestPlanIgnoresWrongStream(t *testing.T) {
	b := bind(t, "SELECT station FROM Sensor [Now]")
	p, _ := Compile("q", b, "res")
	out, err := p.Push(openTuple(1, 1, 1, 1))
	if err != nil || out != nil {
		t.Errorf("foreign stream: %v, %v", out, err)
	}
}

func TestPushProjectedInputTuples(t *testing.T) {
	// The data layer may deliver tuples already projected to the needed
	// attributes; the plan must adapt them by name.
	b := bind(t, "SELECT itemID FROM OpenAuction [Now] WHERE start_price > 5")
	p, _ := Compile("q", b, "res")
	full, _ := catalog().Schema("OpenAuction")
	projected, err := full.Project([]string{"itemID", "start_price"})
	if err != nil {
		t.Fatal(err)
	}
	tp := stream.MustTuple(projected, 1, stream.Int(7), stream.Float(10))
	out, err := p.Push(tp)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || out[0].MustGet("OpenAuction.itemID").AsInt() != 7 {
		t.Fatalf("projected input: %v", out)
	}
	// Under-projected input (missing a needed attribute) errors clearly.
	tooNarrow, _ := full.Project([]string{"itemID"})
	if _, err := p.Push(stream.MustTuple(tooNarrow, 2, stream.Int(8))); err == nil {
		t.Error("missing needed attribute should error")
	}
}

func TestSnapshotAcrossEngineReplace(t *testing.T) {
	// Replacing a plan drops state; a snapshot taken before the replace
	// can rehydrate the new plan only if the query shape matches.
	e := NewEngine(nil)
	b := bind(t, "SELECT O.itemID FROM OpenAuction [Range 1 Hour] O, ClosedAuction [Now] C WHERE O.itemID = C.itemID")
	p1, err := e.Install("g", b, "r")
	if err != nil {
		t.Fatal(err)
	}
	e.Consume(openTuple(1, 1, 1, 1))
	snap := p1.Snapshot()
	p2, err := e.Install("g", b.Clone(), "r")
	if err != nil {
		t.Fatal(err)
	}
	if err := p2.Restore(snap); err != nil {
		t.Fatal(err)
	}
	var out []stream.Tuple
	e2 := NewEngine(func(t stream.Tuple) { out = append(out, t) })
	// Ensure WithPlan sees installed plans only.
	if ok := e2.WithPlan("missing", func(*Plan) {}); ok {
		t.Error("WithPlan on missing id should report false")
	}
	_ = out
}
