package spe

import (
	"fmt"
	"sort"
	"sync"

	"cosmos/internal/cql"
	"cosmos/internal/stream"
)

// Engine hosts compiled plans and dispatches incoming tuples to every
// plan consuming the tuple's stream. It is the "stream processing
// engine" box of the processor architecture (paper Figure 2); the query
// wrapper translates COSMOS queries into plans, the data wrapper feeds
// tuples in and carries results out.
type Engine struct {
	mu    sync.Mutex
	plans map[string]*Plan // guarded by mu
	// byStream indexes the plans consuming each input stream, sorted by
	// plan ID. The lists are maintained at Install/Remove time so
	// Consume dispatches without sorting or allocating per tuple.
	// Guarded by mu.
	byStream map[string][]*Plan
	// emit receives every result tuple (already bound to the plan's
	// result stream schema). Called under the engine lock to preserve
	// per-plan result ordering.
	emit func(stream.Tuple)
}

// NewEngine builds an engine delivering results through emit (nil to
// discard).
func NewEngine(emit func(stream.Tuple)) *Engine {
	if emit == nil {
		emit = func(stream.Tuple) {}
	}
	return &Engine{
		plans:    map[string]*Plan{},
		byStream: map[string][]*Plan{},
		emit:     emit,
	}
}

// Install compiles and registers a plan under an ID, returning the plan.
// Installing an existing ID replaces the old plan atomically (used when a
// group's representative query widens).
func (e *Engine) Install(id string, b *cql.Bound, resultStream string) (*Plan, error) {
	p, err := Compile(id, b, resultStream)
	if err != nil {
		return nil, err
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if old, ok := e.plans[id]; ok {
		e.dropIndexLocked(old)
	}
	e.plans[id] = p
	for _, s := range p.InputStreams() {
		e.byStream[s] = insertByID(e.byStream[s], p)
	}
	return p, nil
}

// insertByID inserts p into a plan list sorted by ID.
func insertByID(list []*Plan, p *Plan) []*Plan {
	i := sort.Search(len(list), func(i int) bool { return list[i].ID >= p.ID })
	list = append(list, nil)
	copy(list[i+1:], list[i:])
	list[i] = p
	return list
}

// Remove uninstalls a plan.
func (e *Engine) Remove(id string) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if p, ok := e.plans[id]; ok {
		e.dropIndexLocked(p)
		delete(e.plans, id)
	}
}

func (e *Engine) dropIndexLocked(p *Plan) {
	for _, s := range p.InputStreams() {
		list := e.byStream[s]
		for i, q := range list {
			if q.ID == p.ID {
				list = append(list[:i], list[i+1:]...)
				break
			}
		}
		if len(list) == 0 {
			delete(e.byStream, s)
		} else {
			e.byStream[s] = list
		}
	}
}

// Plans lists installed plan IDs, sorted.
func (e *Engine) Plans() []string {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]string, 0, len(e.plans))
	for id := range e.plans {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Plan returns an installed plan.
func (e *Engine) Plan(id string) (*Plan, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	p, ok := e.plans[id]
	return p, ok
}

// WithPlan runs fn on an installed plan under the engine lock, so fn
// observes a quiescent plan (no concurrent Push). Checkpointing uses
// this to snapshot consistently.
func (e *Engine) WithPlan(id string, fn func(*Plan)) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	p, ok := e.plans[id]
	if ok {
		fn(p)
	}
	return ok
}

// Consume feeds one tuple to every plan registered for its stream,
// emitting results in deterministic plan-ID order.
func (e *Engine) Consume(t stream.Tuple) error {
	if t.Schema == nil {
		return fmt.Errorf("spe: tuple without schema")
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, p := range e.byStream[t.Schema.Stream] {
		out, err := p.Push(t)
		if err != nil {
			return err
		}
		for _, r := range out {
			e.emit(r)
		}
	}
	return nil
}

// Run consumes tuples from in until it closes, returning the first
// processing error. Results flow through the emit callback. This is the
// goroutine-pipeline entry point used by live nodes:
//
//	go engine.Run(in, errs)
func (e *Engine) Run(in <-chan stream.Tuple, errs chan<- error) {
	for t := range in {
		if err := e.Consume(t); err != nil {
			if errs != nil {
				errs <- err
			}
			return
		}
	}
	if errs != nil {
		errs <- nil
	}
}
