// Package hot seeds one violation per hotpath rule; the analyzer must
// catch every one (see the // want expectations).
package hot

import (
	"fmt"
	"reflect"
)

type tuple struct {
	ts     int64
	values []int64
	name   string
}

func cold(t tuple) int64 { return t.ts }

//cosmos:hotpath
func annotatedLeaf(t tuple) int64 { return t.ts }

//cosmos:hotpath-ok — audited boundary for the tests.
func auditedBoundary(t tuple) int64 { return t.ts }

//cosmos:hotpath
func callsFmt(t tuple) string {
	return fmt.Sprintf("%d", t.ts) // want "calls fmt\\.Sprintf: fmt and reflect are banned"
}

//cosmos:hotpath
func callsReflect(t tuple) bool {
	return reflect.DeepEqual(t, t) // want "calls reflect\\.DeepEqual: fmt and reflect are banned"
}

//cosmos:hotpath
func rangesOverMap(m map[string]int64) int64 {
	var sum int64
	for _, v := range m { // want "range over map"
		sum += v
	}
	return sum
}

//cosmos:hotpath
func concatenates(t tuple) string {
	return t.name + "!" // want "string concatenation"
}

//cosmos:hotpath
func concatAssigns(t tuple) string {
	s := t.name
	s += "!" // want "string concatenation"
	return s
}

//cosmos:hotpath
func capturesClosure(t tuple) func() int64 {
	f := func() int64 { return t.ts } // want "closure created in hot path"
	return f
}

//cosmos:hotpath
func spawnsGoroutine(t tuple) {
	ch := make(chan int64, 1)
	go func() { ch <- t.ts }() // want "go statement in hot path"
}

//cosmos:hotpath
func callsUnannotated(t tuple) int64 {
	return cold(t) // want "calls [\\w./-]*hot\\.cold, which is neither //cosmos:hotpath nor //cosmos:hotpath-ok"
}

type sink func(tuple)

//cosmos:hotpath
func callsBareFuncValue(emit sink, t tuple) {
	emit(t) // want "calls through func value emit"
}

type iface interface {
	Push(tuple) error
}

//cosmos:hotpath
func callsUnvouchedIface(s iface, t tuple) {
	s.Push(t) // want "calls \\([\\w./-]*hot\\.iface\\)\\.Push, which is neither"
}

//cosmos:hotpath
func ignoredWithReason(t tuple) int64 {
	// The cold fallback below is deliberate and documented; no
	// diagnostic may surface for it.
	//lint:ignore hotpath cold branch exercised only on schema drift
	return cold(t)
}
