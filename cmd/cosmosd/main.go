// Command cosmosd runs a COSMOS service endpoint: an in-process overlay
// of brokers and processors behind a TCP API (see internal/transport).
// Clients (cmd/cosmosctl or cosmos.Dial) register source streams,
// publish tuples, and submit CQL continuous queries whose results stream
// back over the connection.
//
// By default the daemon assembles a core.LiveSystem: goroutine-per-
// broker routing with sharded execution runtimes (-workers) publishing
// results directly into the network, so remote subscribers receive
// results while ingest continues — no stabilisation barrier on the
// steady-state path. -sim falls back to the deterministic synchronous
// system (the differential reference; useful for reproducible traces).
//
// On SIGINT/SIGTERM the daemon shuts down gracefully: it stops the
// listener, drains in-flight subscriptions onto the wire, notifies every
// subscriber (MsgEnd), and closes the system instead of exiting
// mid-delivery.
//
//	cosmosd -listen :7654 -nodes 64 -processors 2 -workers 4 -seed 1
package main

import (
	"flag"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"cosmos/internal/core"
	"cosmos/internal/merge"
	"cosmos/internal/obs"
	"cosmos/internal/transport"
)

func main() {
	var (
		listen     = flag.String("listen", ":7654", "TCP listen address")
		nodes      = flag.Int("nodes", 64, "overlay size")
		processors = flag.Int("processors", 1, "number of processor nodes")
		workers    = flag.Int("workers", 4, "execution workers per processor (live system)")
		seed       = flag.Int64("seed", 1, "topology seed")
		mode       = flag.String("mode", "union", "merge mode: union or hull")
		placement  = flag.String("placement", "least-loaded", "query placement: least-loaded, nearest, round-robin")
		noMerge    = flag.Bool("no-merge", false, "disable query merging (baseline)")
		sim        = flag.Bool("sim", false, "serve the synchronous simulated system instead of the live one")
		idle       = flag.Duration("idle-timeout", 90*time.Second,
			"drop connections silent for this long (clients heartbeat every 15s; 0 disables)")
		linger = flag.Duration("session-linger", 2*time.Minute,
			"keep an abruptly dropped resilient session's subscriptions resumable for this long (0 disables)")
		wire = flag.Int("wire", transport.WireMax,
			"maximum wire format version to negotiate (1 forces the plain gob codec)")
		metricsAddr = flag.String("metrics-addr", "",
			"serve /metrics (JSON), /debug/vars and /debug/pprof on this address (empty disables)")
		sampleEvery = flag.Int("sample-every", 0,
			"latency sampling period: time every Nth event per stage (0 = default, negative disables)")
		traceEvery = flag.Int("trace-every", 0,
			"trace every Nth published tuple through the pipeline (0 disables)")
		traceSeed = flag.Int64("trace-seed", 0, "phase offset for the systematic trace sampler")
	)
	flag.Parse()
	if *wire < transport.WireV1 || *wire > transport.WireMax {
		log.Fatalf("cosmosd: -wire %d out of range (this daemon speaks 1..%d)", *wire, transport.WireMax)
	}

	opts := core.Options{
		Nodes:          *nodes,
		Processors:     *processors,
		Seed:           *seed,
		DisableMerging: *noMerge,
		Obs: obs.Options{
			SampleEvery: *sampleEvery,
			TraceEvery:  *traceEvery,
			TraceSeed:   *traceSeed,
		},
	}
	if *mode == "hull" {
		opts.Mode = merge.ConvexHull
	}
	switch *placement {
	case "nearest":
		opts.Placement = core.NearestToUser
	case "round-robin":
		opts.Placement = core.RoundRobin
	case "least-loaded":
		opts.Placement = core.LeastLoaded
	default:
		log.Fatalf("cosmosd: unknown placement %q", *placement)
	}

	var (
		sys      *core.System
		srvOpts  []transport.ServerOption
		transprt = "live"
	)
	srvOpts = append(srvOpts,
		transport.WithIdleTimeout(*idle),
		transport.WithSessionLinger(*linger),
		transport.WithWireVersion(*wire))
	if *sim {
		transprt = "sim"
		s, err := core.NewSystem(opts)
		if err != nil {
			log.Fatalf("cosmosd: %v", err)
		}
		sys = s
	} else {
		opts.ExecWorkers = *workers
		ls, err := core.NewLiveSystem(opts)
		if err != nil {
			log.Fatalf("cosmosd: %v", err)
		}
		sys = ls.System
		srvOpts = append(srvOpts, transport.WithSystemClose(ls.Close))
	}

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatalf("cosmosd: %v", err)
	}
	log.Printf("cosmosd: listening on %s (%s transport, %d nodes, %d processors, merging=%v)",
		ln.Addr(), transprt, *nodes, *processors, !*noMerge)
	srv := transport.NewServer(sys, srvOpts...)

	if *metricsAddr != "" {
		// The metrics surface reads lock-free snapshots, so serving it
		// never blocks the data path; pprof rides the same mux.
		handler := obs.Handler(map[string]func() any{
			"stats":  func() any { st := sys.StatsSnapshot(); ws := srv.WireStats(); st.Wire = &ws; return st },
			"traces": func() any { return sys.Obs().Traces() },
		})
		mln, err := net.Listen("tcp", *metricsAddr)
		if err != nil {
			log.Fatalf("cosmosd: metrics listener: %v", err)
		}
		log.Printf("cosmosd: metrics on http://%s/metrics (pprof at /debug/pprof/)", mln.Addr())
		go func() {
			if err := http.Serve(mln, handler); err != nil {
				log.Printf("cosmosd: metrics server: %v", err)
			}
		}()
	}

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	shutdownDone := make(chan struct{})
	go func() {
		defer close(shutdownDone)
		sig := <-sigc
		log.Printf("cosmosd: %v: draining subscriptions and shutting down", sig)
		if err := srv.Shutdown(); err != nil {
			log.Printf("cosmosd: shutdown: %v", err)
		}
	}()

	if err := srv.Serve(ln); err != nil {
		log.Fatalf("cosmosd: %v", err)
	}
	// Serve returns nil only when the server was stopped — here, only
	// the signal handler does that; wait for its drain to finish.
	<-shutdownDone
	log.Printf("cosmosd: bye")
}
