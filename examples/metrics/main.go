// Metrics: the end-to-end observability layer on a live deployment.
// The system always counts every stage event (one atomic add); here we
// also turn the dials up — SampleEvery: 1 puts every event in the
// latency histograms, TraceEvery: 200 follows every 200th published
// tuple through the pipeline — run a burst of traffic, and read all
// three surfaces back: per-stage counts and quantiles, per-plan series
// with the member queries each plan serves, and sampled per-tuple
// latency breakdowns. A daemon exposes the same snapshot over HTTP
// (cosmosd -metrics-addr) and `cosmosctl top` renders it live.
//
//	go run ./examples/metrics
package main

import (
	"fmt"
	"log"
	"sync/atomic"
	"time"

	"cosmos"
)

const nReadings = 10_000

func main() {
	sys, err := cosmos.NewLiveSystem(cosmos.Options{
		Nodes:       32,
		Seed:        7,
		Processors:  2,
		Placement:   cosmos.RoundRobin,
		ExecWorkers: 4,
		IngestBatch: 16,
		Obs: cosmos.ObsOptions{
			SampleEvery: 1,   // histogram every event (default: every 512th)
			TraceEvery:  200, // follow every 200th tuple end to end
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()

	readings := cosmos.MustSchema("Readings",
		cosmos.Field{Name: "station", Kind: cosmos.KindInt},
		cosmos.Field{Name: "temp", Kind: cosmos.KindFloat},
	)
	src, err := sys.RegisterStream(&cosmos.StreamInfo{Schema: readings, Rate: 1000}, 0)
	if err != nil {
		log.Fatal(err)
	}

	var delivered atomic.Int64
	queries := []string{
		"SELECT station, temp FROM Readings [Now] WHERE temp > 30",
		"SELECT station, COUNT(*) AS n FROM Readings [Range 1 Minute] GROUP BY station",
	}
	for i, q := range queries {
		if _, err := sys.Submit(q, 5+i, func(cosmos.Tuple) { delivered.Add(1) }); err != nil {
			log.Fatal(err)
		}
	}
	sys.Quiesce() // settle subscription propagation before traffic

	start := time.Now()
	for i := 0; i < nReadings; i++ {
		err := src.Publish(cosmos.MustTuple(readings, cosmos.Timestamp(i),
			cosmos.Int(int64(i%8)), cosmos.Float(float64(i%40))))
		if err != nil {
			log.Fatal(err)
		}
	}
	sys.Quiesce() // readout barrier: make the final snapshot exact
	window := time.Since(start)

	st := sys.StatsSnapshot()
	fmt.Printf("published %d readings in %v; %d results delivered\n\n",
		st.Ingested, window.Round(time.Millisecond), delivered.Load())

	// Surface 1: per-stage counters + sampled latency histograms.
	fmt.Println("stage      events   rate       p50        p99        p99.99")
	for _, s := range st.Stages {
		if s.Count == 0 {
			continue // wire stage is idle in an embedded deployment
		}
		fmt.Printf("%-10s %-8d %-10s %-10v %-10v %v\n",
			s.Stage, s.Count,
			fmt.Sprintf("%.0f/s", float64(s.Count)/window.Seconds()),
			time.Duration(s.Lat.Quantile(0.50)).Round(10*time.Nanosecond),
			time.Duration(s.Lat.Quantile(0.99)).Round(10*time.Nanosecond),
			time.Duration(s.Lat.Quantile(0.9999)).Round(10*time.Nanosecond))
	}

	// Surface 2: per-plan series — the observed rates, selectivities and
	// push latencies the adaptive optimiser will consume.
	fmt.Println("\nplan                         proc pushes emits  sel   push-p99   queries")
	for _, p := range st.Plans {
		sel := 0.0
		if p.Pushes > 0 {
			sel = float64(p.Emits) / float64(p.Pushes)
		}
		fmt.Printf("%-28s p%-3d %-6d %-6d %-5.2f %-10v %v\n",
			p.Plan, p.Proc, p.Pushes, p.Emits, sel,
			time.Duration(p.PushLat.Quantile(0.99)).Round(10*time.Nanosecond),
			p.Queries)
	}

	// Surface 3: sampled tuple traces — where one tuple's time went.
	traces := sys.Obs().Traces()
	fmt.Printf("\n%d tuples traced end to end; the last one:\n", len(traces))
	if len(traces) > 0 {
		tr := traces[len(traces)-1]
		fmt.Printf("  tuple ts=%d of %s\n", tr.Key, tr.Stream)
		for _, span := range tr.Breakdown() {
			fmt.Printf("    %-8s +%v\n", span.Stage, span.Offset.Round(10*time.Nanosecond))
		}
	}
}
