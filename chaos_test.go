package cosmos_test

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"cosmos"
	"cosmos/internal/core"
	"cosmos/internal/faultnet"
	"cosmos/internal/sensordata"
	"cosmos/internal/transport"
)

// chaosRecorder collects one subscription's delivery stream under
// concurrent reconnects.
type chaosRecorder struct {
	mu   sync.Mutex
	seqs []uint64
	rows []string
	gaps []transport.Gap
	ends []error
}

func (r *chaosRecorder) settled(total int) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	lost := 0
	for _, g := range r.gaps {
		lost += int(g.Lost())
	}
	return len(r.seqs)+lost >= total
}

// TestChaosReconnectDifferential is the keystone of the resilience
// work: the full three-way differential workload is subscribed to
// through a fault-injecting proxy that kills the server->client
// connection every few dozen frames, mid-frame half the time. The
// resilient client must reconnect, resume every subscription at the
// next epoch, and report exactly what was lost — so each query's
// delivered rows must be a gap-annotated subsequence of the
// deterministic sync system's result sequence: strictly increasing
// sequence numbers (zero duplicates, zero reordering), every row
// matching the reference at its sequence position, and gap ranges
// exactly covering the undelivered remainder.
func TestChaosReconnectDifferential(t *testing.T) {
	// KillEveryWrites 60 keeps the minimum per-connection kill budget
	// (30 writes) above the resume overhead (~1 hello + 12 resume
	// replies), so every epoch makes forward progress.
	runChaosDifferential(t, faultnet.Config{
		Seed:             7,
		KillEveryWrites:  60,
		MidFrameFraction: 0.5,
	})
}

// TestChaosByteCutDifferential reruns the differential with the cut at
// an exact byte offset instead of a jittered write count: every
// connection is severed precisely CutAtBytes into the server->client
// stream, which under the v2 wire provably lands inside length-prefixed
// batch frames (the 32KiB bufio flushes are far larger than the
// distance between cut and frame start). The client must discard the
// partial frame and resume without duplicating or corrupting a row.
func TestChaosByteCutDifferential(t *testing.T) {
	// 8000 bytes per epoch clears the per-resume handshake overhead
	// (hello + 12 resume replies, a few KB of gob) with room for data,
	// so every epoch makes forward progress.
	runChaosDifferential(t, faultnet.Config{
		Seed:       11,
		CutAtBytes: 8000,
	})
}

func runChaosDifferential(t *testing.T, faults faultnet.Config) {
	if testing.Short() {
		t.Skip("chaos differential is slow; skipped in -short")
	}
	queries := diffWorkloadQueries(t)

	// Reference: the deterministic synchronous system.
	sys, err := core.NewSystem(diffOptions())
	if err != nil {
		t.Fatal(err)
	}
	want := driveClient(t, cosmos.Embed(sys), queries)

	addr := startDiffServer(t, 2, 8)
	proxy, err := faultnet.NewProxy(addr, faults)
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()

	// Control path: registration and publishing run on a direct,
	// non-proxied session. The resilient client's publish retry is
	// at-least-once, which would corrupt the differential reference;
	// only the subscription side goes through the chaos proxy.
	control, err := cosmos.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer control.Close()
	sources := make([]cosmos.Source, diffStreams)
	for i := 0; i < diffStreams; i++ {
		src, err := control.RegisterStream(sensordata.Info(i), 1)
		if err != nil {
			t.Fatal(err)
		}
		sources[i] = src
	}

	subcli, err := transport.DialConfig(proxy.Addr(), transport.Config{
		Resilience: &transport.Resilience{
			MinBackoff:        5 * time.Millisecond,
			MaxBackoff:        50 * time.Millisecond,
			HeartbeatInterval: 250 * time.Millisecond,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer subcli.Close()
	recs := make([]*chaosRecorder, len(queries))
	for i, q := range queries {
		rec := &chaosRecorder{}
		recs[i] = rec
		_, err := subcli.Submit(q, 3+i%8,
			func(tp cosmos.Tuple, seq uint64) {
				rec.mu.Lock()
				rec.seqs = append(rec.seqs, seq)
				rec.rows = append(rec.rows, tp.String())
				rec.mu.Unlock()
			},
			func(err error) {
				rec.mu.Lock()
				rec.ends = append(rec.ends, err)
				rec.mu.Unlock()
			},
			func(g transport.Gap) {
				rec.mu.Lock()
				rec.gaps = append(rec.gaps, g)
				rec.mu.Unlock()
			})
		if err != nil {
			t.Fatalf("submit %q: %v", q, err)
		}
	}
	if err := control.Quiesce(); err != nil {
		t.Fatal(err)
	}

	for round := 0; round < diffRounds; round++ {
		for i, src := range sources {
			if err := src.Publish(diffTuple(i, round)); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := control.Quiesce(); err != nil {
		t.Fatal(err)
	}

	// Everything is delivered or counted server-side now. Let the
	// subscriber come back one final time and settle every query:
	// delivered + lost must account for the full reference sequence.
	proxy.DisableFaults()
	deadline := time.Now().Add(30 * time.Second)
	for q := range queries {
		for !recs[q].settled(len(want[q])) {
			if time.Now().After(deadline) {
				recs[q].mu.Lock()
				delivered, gaps := len(recs[q].seqs), recs[q].gaps
				recs[q].mu.Unlock()
				t.Fatalf("query %d never settled: %d delivered, gaps %v, want %d total",
					q, delivered, gaps, len(want[q]))
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
	if subcli.Reconnects() == 0 {
		t.Error("no reconnects happened; the chaos proxy injected no faults")
	}
	t.Logf("chaos: %d reconnects, epoch %d, %d proxy kills",
		subcli.Reconnects(), subcli.Epoch(), proxy.Kills())

	for q := range queries {
		rec := recs[q]
		rec.mu.Lock()
		seqs, rows, gaps, ends := rec.seqs, rec.rows, rec.gaps, rec.ends
		rec.mu.Unlock()
		if len(ends) != 0 {
			t.Fatalf("query %d: subscription ended (%v) during survivable chaos", q, ends)
		}
		// covered[s] says how sequence s was accounted for: delivered
		// exactly once or inside exactly one gap — never both, never
		// twice (zero duplicates), never neither (exact loss report).
		covered := make([]int, len(want[q])+1)
		var prev uint64
		for i, s := range seqs {
			if s <= prev {
				t.Fatalf("query %d: sequence not strictly increasing at %d: %v", q, i, seqs)
			}
			prev = s
			if s == 0 || s > uint64(len(want[q])) {
				t.Fatalf("query %d: sequence %d out of range (reference has %d)", q, s, len(want[q]))
			}
			if rows[i] != want[q][s-1] {
				t.Fatalf("query %d seq %d differs:\ngot:  %s\nwant: %s", q, s, rows[i], want[q][s-1])
			}
			covered[s]++
		}
		for _, g := range gaps {
			if g.Unknown {
				t.Fatalf("query %d: unknown-loss gap %v (session was never detached past linger)", q, g)
			}
			if g.From == 0 || g.To > uint64(len(want[q])) {
				t.Fatalf("query %d: gap %v out of range (reference has %d)", q, g, len(want[q]))
			}
			for s := g.From; s <= g.To; s++ {
				covered[s]++
			}
		}
		for s := 1; s <= len(want[q]); s++ {
			if covered[s] != 1 {
				t.Fatalf("query %d: sequence %d accounted for %d times (want exactly once: delivered or in one gap)\nseqs: %v\ngaps: %v",
					q, s, covered[s], seqs, gaps)
			}
		}
	}
	if err := subcli.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestChaosPlanPanicContainment: a panic injected into one query's plan
// on a live system degrades exactly that query — the other query, on
// its own plan over a different stream, keeps streaming, and both
// subscriptions stay open and cancel cleanly afterwards.
func TestChaosPlanPanicContainment(t *testing.T) {
	opts := diffOptions()
	opts.ExecWorkers = 2
	ls, err := core.NewLiveSystem(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(ls.Close)
	client := cosmos.EmbedLive(ls)

	srcs := make([]cosmos.Source, 2)
	for i := range srcs {
		src, err := client.RegisterStream(sensordata.Info(i), 1)
		if err != nil {
			t.Fatal(err)
		}
		srcs[i] = src
	}
	// Distinct streams keep the two queries on distinct plans — one
	// failure domain each.
	subA, err := client.Submit(context.Background(),
		"SELECT station, temperature FROM Sensor00 [Now]", 3)
	if err != nil {
		t.Fatal(err)
	}
	subB, err := client.Submit(context.Background(),
		"SELECT station, temperature FROM Sensor01 [Now]", 4)
	if err != nil {
		t.Fatal(err)
	}
	var aGot, bGot atomic.Int64
	go func() {
		for range subA.Results() {
			aGot.Add(1)
		}
	}()
	go func() {
		for range subB.Results() {
			bGot.Add(1)
		}
	}()
	if err := client.Quiesce(); err != nil {
		t.Fatal(err)
	}

	pub := func(from, to int) {
		for r := from; r < to; r++ {
			for i, src := range srcs {
				if err := src.Publish(diffTuple(i, r)); err != nil {
					t.Fatal(err)
				}
			}
		}
		if err := client.Quiesce(); err != nil {
			t.Fatal(err)
		}
	}
	wait := func(what string, cond func() bool) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for !cond() {
			if time.Now().After(deadline) {
				t.Fatalf("timed out waiting for %s (A=%d B=%d)", what, aGot.Load(), bGot.Load())
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	pub(0, 5)
	wait("baseline results", func() bool { return aGot.Load() == 5 && bGot.Load() == 5 })

	if !ls.System.InjectPlanPanic(subA.Tag()) {
		t.Fatal("InjectPlanPanic(subA) = false")
	}
	pub(5, 10)
	wait("bystander results after the panic", func() bool { return bGot.Load() == 10 })
	if got := aGot.Load(); got != 5 {
		t.Errorf("victim delivered %d results, want 5 (dead after the panic)", got)
	}

	// Both subscriptions are still live sessions: the survivor keeps
	// its channel open until cancelled, and both cancel cleanly.
	if err := subB.Cancel(); err != nil {
		t.Errorf("cancel bystander: %v", err)
	}
	if err := subA.Cancel(); err != nil {
		t.Errorf("cancel victim: %v", err)
	}
	for _, sub := range []*cosmos.Subscription{subA, subB} {
		select {
		case _, ok := <-sub.Results():
			_ = ok
		case <-time.After(5 * time.Second):
			t.Fatal("results channel did not close after cancel")
		}
		if err := sub.Err(); err != nil {
			t.Errorf("subscription ended abnormally: %v", err)
		}
	}
}
