package ft

import (
	"reflect"
	"sync"
	"testing"
	"time"

	"cosmos/internal/cql"
	"cosmos/internal/exec"
	"cosmos/internal/spe"
	"cosmos/internal/stream"
)

// TestCheckpointCaptureDoesNotBlockOtherPlans: capturing one plan on the
// sharded runtime must leave plans on other workers consuming — the
// per-plan quiesce replaces the old stop-the-world engine lock.
func TestCheckpointCaptureDoesNotBlockOtherPlans(t *testing.T) {
	cat := catalog()
	join, err := cql.AnalyzeString(
		"SELECT O.itemID FROM OpenAuction [Range 1 Hour] O, ClosedAuction [Now] C WHERE O.itemID = C.itemID", cat)
	if err != nil {
		t.Fatal(err)
	}
	sel, err := cql.AnalyzeString("SELECT itemID FROM ClosedAuction [Now]", cat)
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	emitted := 0
	rt := exec.New(exec.Config{Workers: 2, Emit: func(stream.Tuple) {
		mu.Lock()
		emitted++
		mu.Unlock()
	}})
	defer rt.Close()
	// Install order pins "captured" to worker 0 and "busy" to worker 1.
	if _, err := rt.Install("captured", join, "resJ"); err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Install("busy", sel, "resS"); err != nil {
		t.Fatal(err)
	}
	closed, _ := cat.Schema("ClosedAuction")

	cp := NewCheckpointer()
	// Hold the captured plan mid-snapshot (a deliberately slow Capture).
	holding := make(chan struct{})
	release := make(chan struct{})
	captureDone := make(chan struct{})
	go func() {
		defer close(captureDone)
		rt.WithPlan("captured", func(p *spe.Plan) {
			close(holding)
			<-release
			cp.Capture(p)
		})
	}()
	<-holding

	// While the capture holds plan "captured", plan "busy" (other
	// worker) must consume and drain freely.
	progressed := make(chan struct{})
	go func() {
		defer close(progressed)
		for i := 0; i < 64; i++ {
			rt.Consume(stream.MustTuple(closed, stream.Timestamp(i+1), stream.Int(int64(i))))
		}
		rt.Drain("busy")
	}()
	select {
	case <-progressed:
	case <-time.After(5 * time.Second):
		t.Fatal("plan on another worker blocked behind checkpoint capture")
	}
	mu.Lock()
	if emitted < 64 {
		mu.Unlock()
		t.Fatalf("busy plan emitted %d results under capture, want >= 64", emitted)
	}
	mu.Unlock()
	close(release)
	<-captureDone
	if _, ok := cp.Snapshot("captured"); !ok {
		t.Fatal("capture did not store a snapshot")
	}
}

// TestCheckpointUnderLoadRestoresExactly: a snapshot captured while
// other plans consume concurrently must restore to identical plan state.
func TestCheckpointUnderLoadRestoresExactly(t *testing.T) {
	cat := catalog()
	join, err := cql.AnalyzeString(
		"SELECT O.itemID FROM OpenAuction [Range 1 Hour] O, ClosedAuction [Now] C WHERE O.itemID = C.itemID", cat)
	if err != nil {
		t.Fatal(err)
	}
	noise, err := cql.AnalyzeString("SELECT itemID FROM ClosedAuction [Now]", cat)
	if err != nil {
		t.Fatal(err)
	}
	rt := exec.New(exec.Config{Workers: 2})
	defer rt.Close()
	if _, err := rt.Install("target", join, "resT"); err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Install("noise", noise, "resN"); err != nil {
		t.Fatal(err)
	}
	open, _ := cat.Schema("OpenAuction")
	closed, _ := cat.Schema("ClosedAuction")

	// Feed the target's window while a second goroutine hammers the
	// noise plan and a third captures repeatedly.
	cp := NewCheckpointer()
	cp.Register("target", join, "resT")
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
				rt.Consume(stream.MustTuple(closed, stream.Timestamp(i+1), stream.Int(int64(1000+i))))
			}
		}
	}()
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				rt.WithPlan("target", func(p *spe.Plan) { cp.Capture(p) })
			}
		}
	}()
	for i := 0; i < 200; i++ {
		rt.Consume(stream.MustTuple(open, stream.Timestamp(i*10+1), stream.Int(int64(i)), stream.Float(1)))
	}
	rt.Drain("target")
	close(stop)
	wg.Wait()

	// Final capture under quiesce is the authoritative state.
	var want *spe.Snapshot
	rt.WithPlan("target", func(p *spe.Plan) {
		cp.Capture(p)
		want = p.Snapshot()
	})
	// Restore onto a fresh runtime and compare the round-tripped state.
	survivor := exec.New(exec.Config{Workers: 2})
	defer survivor.Close()
	recovered, err := cp.Failover(survivor)
	if err != nil {
		t.Fatal(err)
	}
	if len(recovered) != 1 || recovered[0] != "target" {
		t.Fatalf("recovered = %v", recovered)
	}
	survivor.WithPlan("target", func(p *spe.Plan) {
		got := p.Snapshot()
		if got.Watermark != want.Watermark {
			t.Errorf("watermark = %d, want %d", got.Watermark, want.Watermark)
		}
		if !reflect.DeepEqual(got.Buffers, want.Buffers) {
			t.Errorf("restored buffers differ from captured state")
		}
	})
}
