package cosmos_test

import (
	"sync"
	"testing"

	"cosmos"
)

func TestPublicAPIQuickstart(t *testing.T) {
	sys, err := cosmos.NewSystem(cosmos.Options{Nodes: 16, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	schema := cosmos.MustSchema("Trades",
		cosmos.Field{Name: "symbol", Kind: cosmos.KindString},
		cosmos.Field{Name: "price", Kind: cosmos.KindFloat},
	)
	src, err := sys.RegisterStream(&cosmos.StreamInfo{Schema: schema, Rate: 100}, 0)
	if err != nil {
		t.Fatal(err)
	}
	var got []cosmos.Tuple
	h, err := sys.Submit(
		"SELECT symbol, price FROM Trades [Range 5 Minute] WHERE price > 100",
		7, func(tp cosmos.Tuple) { got = append(got, tp) })
	if err != nil {
		t.Fatal(err)
	}
	pub := func(ts cosmos.Timestamp, sym string, price float64) {
		if err := src.Publish(cosmos.MustTuple(schema, ts,
			cosmos.String(sym), cosmos.Float(price))); err != nil {
			t.Fatal(err)
		}
	}
	pub(1, "ACME", 101.5)
	pub(2, "ACME", 99.0)
	pub(3, "GOPH", 250.0)
	if len(got) != 2 {
		t.Fatalf("results = %d", len(got))
	}
	if got[0].MustGet("Trades.symbol").AsString() != "ACME" ||
		got[1].MustGet("Trades.price").AsFloat() != 250.0 {
		t.Errorf("results = %v", got)
	}
	if err := sys.Cancel(h); err != nil {
		t.Fatal(err)
	}
}

func TestPublicAPILiveSystem(t *testing.T) {
	sys, err := cosmos.NewLiveSystem(cosmos.Options{
		Nodes: 16, Seed: 1, ExecWorkers: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	schema := cosmos.MustSchema("Trades",
		cosmos.Field{Name: "symbol", Kind: cosmos.KindString},
		cosmos.Field{Name: "price", Kind: cosmos.KindFloat},
	)
	src, err := sys.RegisterStream(&cosmos.StreamInfo{Schema: schema, Rate: 100}, 0)
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var got []cosmos.Tuple
	_, err = sys.Submit(
		"SELECT symbol, price FROM Trades [Range 5 Minute] WHERE price > 100",
		7, func(tp cosmos.Tuple) {
			mu.Lock()
			got = append(got, tp)
			mu.Unlock()
		})
	if err != nil {
		t.Fatal(err)
	}
	sys.Quiesce() // settle the asynchronous control plane before traffic
	pub := func(ts cosmos.Timestamp, sym string, price float64) {
		if err := src.Publish(cosmos.MustTuple(schema, ts,
			cosmos.String(sym), cosmos.Float(price))); err != nil {
			t.Fatal(err)
		}
	}
	pub(1, "ACME", 101.5)
	pub(2, "ACME", 99.0)
	pub(3, "GOPH", 250.0)
	sys.Quiesce()
	mu.Lock()
	defer mu.Unlock()
	if len(got) != 2 {
		t.Fatalf("results = %d", len(got))
	}
	if got[0].MustGet("Trades.symbol").AsString() != "ACME" ||
		got[1].MustGet("Trades.price").AsFloat() != 250.0 {
		t.Errorf("results = %v", got)
	}
}

func TestParseQuery(t *testing.T) {
	if err := cosmos.ParseQuery("SELECT a FROM S [Now] WHERE a > 1"); err != nil {
		t.Errorf("valid query rejected: %v", err)
	}
	if err := cosmos.ParseQuery("SELECT FROM"); err == nil {
		t.Error("invalid query accepted")
	}
}

func TestDurationConstants(t *testing.T) {
	if cosmos.Hour != 60*cosmos.Minute || cosmos.Day != 24*cosmos.Hour {
		t.Error("duration constants inconsistent")
	}
	if cosmos.Now != 0 {
		t.Error("Now must be the zero window")
	}
}
