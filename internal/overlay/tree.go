package overlay

import (
	"container/heap"
	"fmt"
	"math"

	"cosmos/internal/topology"
)

// Tree is a rooted overlay dissemination tree. Every non-root node has an
// overlay link to its parent with a known delay; overlay links need not
// be physical topology edges (they are routed paths), so delays come from
// shortest-path distances in general.
type Tree struct {
	Root     int
	Parent   []int // Parent[Root] == -1
	Children [][]int
	// LinkDelay[v] is the delay of the overlay link v—Parent[v] in ms;
	// zero for the root.
	LinkDelay []float64
}

// NumNodes returns the node count.
func (t *Tree) NumNodes() int { return len(t.Parent) }

// MST builds the minimum spanning tree of the topology (Prim, delay
// weights) rooted at root — the dissemination tree construction the
// paper's experiment uses ("a minimum spanning tree is constructed as the
// dissemination tree").
func MST(g *topology.Graph, root int) (*Tree, error) {
	n := g.NumNodes()
	if root < 0 || root >= n {
		return nil, fmt.Errorf("overlay: root %d out of range", root)
	}
	inTree := make([]bool, n)
	best := make([]float64, n)
	parent := make([]int, n)
	for i := range best {
		best[i] = math.Inf(1)
		parent[i] = -1
	}
	best[root] = 0
	pq := &nodeHeap{{node: root, key: 0}}
	reached := 0
	for pq.Len() > 0 {
		item := heap.Pop(pq).(heapItem)
		v := item.node
		if inTree[v] {
			continue
		}
		inTree[v] = true
		reached++
		for _, e := range g.Adj[v] {
			if !inTree[e.To] && e.Delay < best[e.To] {
				best[e.To] = e.Delay
				parent[e.To] = v
				heap.Push(pq, heapItem{node: e.To, key: e.Delay})
			}
		}
	}
	if reached != n {
		return nil, fmt.Errorf("overlay: topology is disconnected (%d of %d reached)", reached, n)
	}
	return fromParents(root, parent, func(v, p int) float64 {
		d, _ := g.DelayBetween(v, p)
		return d
	})
}

// SPT builds the shortest-path tree from root (delay metric): the
// structure unicast-based systems implicitly use, kept for ablations.
func SPT(g *topology.Graph, root int) (*Tree, error) {
	n := g.NumNodes()
	if root < 0 || root >= n {
		return nil, fmt.Errorf("overlay: root %d out of range", root)
	}
	dist, prev := Dijkstra(g, root)
	for v := 0; v < n; v++ {
		if v != root && math.IsInf(dist[v], 1) {
			return nil, fmt.Errorf("overlay: node %d unreachable from root", v)
		}
	}
	return fromParents(root, prev, func(v, p int) float64 {
		d, ok := g.DelayBetween(v, p)
		if !ok {
			return dist[v] - dist[p]
		}
		return d
	})
}

// Star builds the degenerate one-level tree where every node attaches
// directly to the root over its shortest path — a worst case for root
// load, useful as a reorganisation starting point in tests.
func Star(g *topology.Graph, root int) (*Tree, error) {
	n := g.NumNodes()
	if root < 0 || root >= n {
		return nil, fmt.Errorf("overlay: root %d out of range", root)
	}
	dist, _ := Dijkstra(g, root)
	parent := make([]int, n)
	for v := 0; v < n; v++ {
		parent[v] = root
	}
	parent[root] = -1
	return fromParents(root, parent, func(v, p int) float64 { return dist[v] })
}

// fromParents assembles a Tree from a parent vector, validating shape.
func fromParents(root int, parent []int, delayOf func(v, p int) float64) (*Tree, error) {
	n := len(parent)
	t := &Tree{
		Root:      root,
		Parent:    make([]int, n),
		Children:  make([][]int, n),
		LinkDelay: make([]float64, n),
	}
	copy(t.Parent, parent)
	t.Parent[root] = -1
	for v := 0; v < n; v++ {
		if v == root {
			continue
		}
		p := t.Parent[v]
		if p < 0 || p >= n {
			return nil, fmt.Errorf("overlay: node %d has invalid parent %d", v, p)
		}
		t.Children[p] = append(t.Children[p], v)
		t.LinkDelay[v] = delayOf(v, p)
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}

// Validate checks that the structure is a tree spanning all nodes.
func (t *Tree) Validate() error {
	n := t.NumNodes()
	seen := make([]bool, n)
	count := 0
	stack := []int{t.Root}
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[v] {
			return fmt.Errorf("overlay: cycle at node %d", v)
		}
		seen[v] = true
		count++
		stack = append(stack, t.Children[v]...)
	}
	if count != n {
		return fmt.Errorf("overlay: tree spans %d of %d nodes", count, n)
	}
	return nil
}

// PathToRoot returns the node sequence v, parent(v), …, root.
func (t *Tree) PathToRoot(v int) []int {
	var path []int
	for v != -1 {
		path = append(path, v)
		v = t.Parent[v]
	}
	return path
}

// Depth returns the hop count from v to the root.
func (t *Tree) Depth(v int) int { return len(t.PathToRoot(v)) - 1 }

// RootDelay returns the summed overlay delay from v up to the root.
func (t *Tree) RootDelay(v int) float64 {
	total := 0.0
	for v != t.Root {
		total += t.LinkDelay[v]
		v = t.Parent[v]
	}
	return total
}

// IsDescendant reports whether node d lies in the subtree rooted at a.
func (t *Tree) IsDescendant(a, d int) bool {
	for d != -1 {
		if d == a {
			return true
		}
		d = t.Parent[d]
	}
	return false
}

// SubtreeNodes lists the nodes of the subtree rooted at v (including v).
func (t *Tree) SubtreeNodes(v int) []int {
	var out []int
	stack := []int{v}
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		out = append(out, u)
		stack = append(stack, t.Children[u]...)
	}
	return out
}

// Degree returns the overlay degree of v in the tree (children + parent).
func (t *Tree) Degree(v int) int {
	d := len(t.Children[v])
	if v != t.Root {
		d++
	}
	return d
}

// Clone deep-copies the tree.
func (t *Tree) Clone() *Tree {
	out := &Tree{
		Root:      t.Root,
		Parent:    append([]int(nil), t.Parent...),
		LinkDelay: append([]float64(nil), t.LinkDelay...),
		Children:  make([][]int, len(t.Children)),
	}
	for i, c := range t.Children {
		out.Children[i] = append([]int(nil), c...)
	}
	return out
}

// EdgeFlows computes, for every node v ≠ root, the data rate (bps)
// flowing over the overlay link parent(v)→v when data is disseminated
// from the root to subscribers: the sum of subscriber rates in v's
// subtree. rates[u] is u's own consumption rate.
func (t *Tree) EdgeFlows(rates []float64) []float64 {
	n := t.NumNodes()
	flow := make([]float64, n)
	// Post-order accumulation without recursion.
	order := make([]int, 0, n)
	stack := []int{t.Root}
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		order = append(order, v)
		stack = append(stack, t.Children[v]...)
	}
	for i := n - 1; i >= 0; i-- {
		v := order[i]
		f := rates[v]
		for _, c := range t.Children[v] {
			f += flow[c]
		}
		flow[v] = f
	}
	flow[t.Root] = 0 // no uplink
	return flow
}

// SharedCost models dissemination of ONE shared stream (multicast): a
// link carries the stream's full rate exactly once if any subscriber
// lives in its subtree, zero otherwise. Total cost is therefore
// rate × Σ delay over demanded links — which the minimum spanning tree
// minimises when everyone subscribes; this is why the paper's experiment
// disseminates over an MST. Contrast EdgeFlows/TotalCost, which model
// per-subscriber distinct content (flows add up).
func (t *Tree) SharedCost(rateBps float64, subscriber []bool) float64 {
	n := t.NumNodes()
	demanded := make([]bool, n)
	order := make([]int, 0, n)
	stack := []int{t.Root}
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		order = append(order, v)
		stack = append(stack, t.Children[v]...)
	}
	for i := n - 1; i >= 0; i-- {
		v := order[i]
		d := subscriber[v]
		for _, c := range t.Children[v] {
			d = d || demanded[c]
		}
		demanded[v] = d
	}
	total := 0.0
	for v := 0; v < n; v++ {
		if v != t.Root && demanded[v] {
			total += t.LinkDelay[v] * rateBps
		}
	}
	return total
}

// CostFunc scores one overlay link carrying a flow; the reorganiser
// minimises the sum over links plus per-node load penalties. This is the
// "configurable cost function" of §3.2.
type CostFunc func(linkDelayMs, flowBps float64) float64

// DelayBpsCost is the default cost: delay-weighted traffic volume.
func DelayBpsCost(linkDelayMs, flowBps float64) float64 {
	return linkDelayMs * flowBps
}

// TotalCost evaluates the tree under a cost function and subscriber
// rates, adding a quadratic penalty for node degrees above maxDegree
// (server workload term; 0 disables).
func (t *Tree) TotalCost(cost CostFunc, rates []float64, maxDegree int, penalty float64) float64 {
	flows := t.EdgeFlows(rates)
	total := 0.0
	for v := 0; v < t.NumNodes(); v++ {
		if v != t.Root {
			total += cost(t.LinkDelay[v], flows[v])
		}
		if maxDegree > 0 {
			if over := t.Degree(v) - maxDegree; over > 0 {
				total += penalty * float64(over*over)
			}
		}
	}
	return total
}
