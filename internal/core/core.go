// Package core assembles COSMOS (paper §2): processors running stream
// processing engines behind query wrappers, brokers routing data through
// the content-based network, the query-distribution (load management)
// service, per-processor query management with the merging optimiser,
// and user proxies that retrieve result streams and re-tighten them.
//
// The same components deploy over either transport:
//
//   - System (NewSystem) runs over the single-threaded cbn.SimNet —
//     deterministic, fully observable, the substrate for the paper's
//     experiments and the differential reference for everything else.
//   - LiveSystem (NewLiveSystem) runs over the concurrent cbn.LiveNet —
//     goroutine-per-broker routing, sharded execution runtimes, and
//     workers publishing results directly into the network.
//
// The ordering contract is per-plan total order: each query group's
// plan observes its input streams in delivery order and its results
// reach each subscribed proxy in emission order; no order holds across
// plans. Quiesce is a stabilisation barrier (tests, checkpoints,
// readouts), never part of the steady-state data path. The cmd/cosmosd
// daemon runs the same components over TCP.
package core
