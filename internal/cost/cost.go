// Package cost estimates continuous-query output rates — the C(q) of the
// paper's benefit function (§4: "The benefit of the rewriting can be
// estimated as Σ C(qi) − C(q), where C(q) is the estimated rate (bps) of
// the result stream of q") — plus the filter selectivities those
// estimates are built from.
//
// The estimator follows the classical System-R playbook: attribute values
// are assumed uniform over the active domain recorded in the stream's
// AttrStats, predicates independent, equality joins keyed on the larger
// distinct count. These assumptions are crude but uniform across compared
// plans, which is all the greedy grouping optimiser requires.
package cost

import (
	"cosmos/internal/cql"
	"cosmos/internal/predicate"
	"cosmos/internal/stream"
)

// Default selectivities when no statistics are available, following the
// traditional System-R constants.
const (
	DefaultEqSelectivity    = 0.05
	DefaultRangeSelectivity = 1.0 / 3.0
	DefaultNeSelectivity    = 0.95
	DefaultJoinSelectivity  = 0.01
)

// minTickSeconds is the effective window contribution of a [Now] window:
// tuples only meet partners that share their timestamp, which over the
// millisecond application-time domain means a one-tick (1 ms) slice.
const minTickSeconds = 0.001

// DatagramOverheadBytes is the per-tuple framing overhead on the wire
// (headers, stream id, routing metadata). It matters to the merging
// benefit: unmerged delivery pays this overhead once per member stream,
// merged delivery once per representative tuple.
const DatagramOverheadBytes = 16

// Estimate is the cost summary of one query's result stream.
type Estimate struct {
	// TuplesPerSec is the estimated result rate in tuples per second.
	TuplesPerSec float64
	// TupleBytes is the assumed result tuple width (payload + timestamp).
	TupleBytes int
}

// Bps returns the estimated result stream bandwidth in bytes per second,
// including per-datagram framing — the C(q) of the paper.
func (e Estimate) Bps() float64 {
	return e.TuplesPerSec * float64(e.TupleBytes+DatagramOverheadBytes)
}

// Estimator computes selectivities and output rates against catalog
// statistics.
type Estimator struct{}

// SelectivityConstraint estimates the fraction of tuples satisfying one
// constraint, given the owning stream's statistics.
func (Estimator) SelectivityConstraint(info *stream.Info, c predicate.Constraint) float64 {
	var stats stream.AttrStats
	known := false
	if info != nil && !c.Term.IsDiff() {
		if s, ok := info.Stats[c.Term.A]; ok && s.Span() > 0 {
			stats, known = s, true
		}
	}
	switch c.Op {
	case predicate.EQ:
		if known && stats.Distinct > 0 {
			return 1 / float64(stats.Distinct)
		}
		return DefaultEqSelectivity
	case predicate.NE:
		if known && stats.Distinct > 0 {
			return 1 - 1/float64(stats.Distinct)
		}
		return DefaultNeSelectivity
	default:
		if known {
			iv, ok := predicate.FromOp(c.Op, c.Const.AsFloat())
			if ok {
				w := iv.Width(stats.Min, stats.Max)
				return clamp01(w / stats.Span())
			}
		}
		return DefaultRangeSelectivity
	}
}

// SelectivityConj estimates a conjunction's selectivity assuming
// attribute independence, but collapsing multiple range constraints on
// the same term into a single interval so that "a ≥ 2 AND a ≤ 5" is not
// double-counted.
func (e Estimator) SelectivityConj(info *stream.Info, cj predicate.Conj) float64 {
	if len(cj) == 0 {
		return 1
	}
	if !cj.Satisfiable() {
		return 0
	}
	// Partition constraints per term; handle pure-range terms via the
	// combined interval, everything else constraint-wise.
	perTerm := map[string][]predicate.Constraint{}
	order := []string{}
	for _, c := range cj {
		key := c.Term.String()
		if _, seen := perTerm[key]; !seen {
			order = append(order, key)
		}
		perTerm[key] = append(perTerm[key], c)
	}
	sel := 1.0
	for _, key := range order {
		cons := perTerm[key]
		if s, ok := e.rangeOnlySelectivity(info, cons); ok {
			sel *= s
			continue
		}
		for _, c := range cons {
			sel *= e.SelectivityConstraint(info, c)
		}
	}
	return clamp01(sel)
}

// rangeOnlySelectivity handles a term constrained exclusively by range
// operators with known stats, returning the width of the intersected
// interval over the domain span.
func (e Estimator) rangeOnlySelectivity(info *stream.Info, cons []predicate.Constraint) (float64, bool) {
	if info == nil || len(cons) < 2 {
		return 0, false
	}
	term := cons[0].Term
	if term.IsDiff() {
		return 0, false
	}
	stats, ok := info.Stats[term.A]
	if !ok || stats.Span() <= 0 {
		return 0, false
	}
	iv := predicate.Universal()
	for _, c := range cons {
		one, isRange := predicate.FromOp(c.Op, c.Const.AsFloat())
		if !isRange || c.Op == predicate.EQ {
			return 0, false
		}
		iv = iv.Intersect(one)
	}
	return clamp01(iv.Width(stats.Min, stats.Max) / stats.Span()), true
}

// SelectivityDNF estimates a disjunction's selectivity with the standard
// inclusion bound: 1 − Π(1 − sel_i).
func (e Estimator) SelectivityDNF(info *stream.Info, d predicate.DNF) float64 {
	if d.IsTrue() {
		return 1
	}
	if len(d) == 0 {
		return 0
	}
	miss := 1.0
	for _, cj := range d {
		miss *= 1 - e.SelectivityConj(info, cj)
	}
	return clamp01(1 - miss)
}

// joinSelectivity estimates one equality/inequality join predicate.
func (Estimator) joinSelectivity(b *cql.Bound, j predicate.AttrCmp) float64 {
	if j.Op != predicate.EQ {
		return DefaultRangeSelectivity
	}
	d1 := distinctOf(b, j.Left)
	d2 := distinctOf(b, j.Right)
	d := d1
	if d2 > d {
		d = d2
	}
	if d <= 0 {
		return DefaultJoinSelectivity
	}
	return 1 / float64(d)
}

// distinctOf resolves the distinct count of a qualified attribute.
func distinctOf(b *cql.Bound, qualified string) int {
	for alias, info := range b.Infos {
		prefix := alias + "."
		if len(qualified) > len(prefix) && qualified[:len(prefix)] == prefix {
			if s, ok := info.Stats[qualified[len(prefix):]]; ok {
				return s.Distinct
			}
			return 0
		}
	}
	return 0
}

// OutputRate estimates the result stream rate of a bound query: the C(q)
// used by the grouping optimiser.
//
// Single stream:  r·sel(F)                       tuples/s
// Two-way join:   r1·sel1 · r2·sel2 · jsel · W   tuples/s, W = effective
//
//	window seconds (T1+T2, floored at one tick)
//
// n-way joins fold pairwise left-to-right. Aggregates follow the
// Istream-per-update model: every surviving input tuple emits one updated
// aggregate row, so the rate is the filtered input rate with the
// (typically much narrower) aggregate tuple width.
func (e Estimator) OutputRate(b *cql.Bound) Estimate {
	type leg struct {
		rate float64
		win  stream.Duration
	}
	legs := make([]leg, 0, len(b.From))
	for _, ref := range b.From {
		info := b.Infos[ref.Alias]
		sel := e.SelectivityDNF(info, b.Sel[ref.Alias])
		legs = append(legs, leg{rate: info.Rate * sel, win: ref.Window})
	}

	out := legs[0].rate
	accWin := legs[0].win
	for i := 1; i < len(legs); i++ {
		w := windowSeconds(accWin) + windowSeconds(legs[i].win)
		if w < minTickSeconds {
			w = minTickSeconds
		}
		out = out * legs[i].rate * w
		accWin = maxDur(accWin, legs[i].win)
	}
	// Join predicate selectivities.
	for _, j := range b.Joins {
		out *= e.joinSelectivity(b, j)
	}
	// Residual predicates: estimated without per-stream stats (terms are
	// qualified and often cross-stream differences).
	if len(b.Residual) > 0 && !b.Residual.IsTrue() {
		out *= e.SelectivityDNF(nil, b.Residual)
	}
	if out < 0 {
		out = 0
	}
	return Estimate{TuplesPerSec: out, TupleBytes: b.OutSchema.TupleWidth() + 8}
}

// Bps is shorthand for OutputRate(b).Bps().
func (e Estimator) Bps(b *cql.Bound) float64 { return e.OutputRate(b).Bps() }

// windowSeconds converts a window to seconds, treating Unbounded as a
// day-long horizon so that estimates stay finite; production deployments
// should bound windows explicitly.
func windowSeconds(d stream.Duration) float64 {
	if d == stream.Unbounded {
		return float64(stream.Day) / 1000
	}
	return float64(d) / 1000
}

func maxDur(a, b stream.Duration) stream.Duration {
	if a > b {
		return a
	}
	return b
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}
