package load

import (
	"testing"
	"time"
)

func newTestRecorder() *Recorder { return NewRecorder(time.Now()) }

func feed(r *Recorder, t *Track, seqs ...int64) {
	for _, s := range seqs {
		r.Observe(t, s, 0, 0)
	}
}

func wantTotals(t *testing.T, r *Recorder, lost, dups int64) {
	t.Helper()
	gotLost, gotDups := r.Totals()
	if gotLost != lost || gotDups != dups {
		t.Fatalf("Totals() = (lost %d, dups %d), want (%d, %d)", gotLost, gotDups, lost, dups)
	}
}

func TestTrackInOrder(t *testing.T) {
	r := newTestRecorder()
	tr := r.NewTrack(1).Expect(0)
	feed(r, tr, 0, 1, 2, 3, 4)
	wantTotals(t, r, 0, 0)
	if r.Delivered() != 5 || tr.Received() != 5 {
		t.Fatalf("delivered %d / received %d, want 5 / 5", r.Delivered(), tr.Received())
	}
	if !tr.Settled(4) || tr.Settled(5) {
		t.Fatalf("Settled(4)=%v Settled(5)=%v, want true/false", tr.Settled(4), tr.Settled(5))
	}
}

func TestTrackDuplicatesAndRegressions(t *testing.T) {
	r := newTestRecorder()
	tr := r.NewTrack(1)
	feed(r, tr, 0, 1, 1, 2, 0)
	wantTotals(t, r, 0, 2) // the repeat and the regression both count
}

func TestTrackHole(t *testing.T) {
	r := newTestRecorder()
	tr := r.NewTrack(1)
	feed(r, tr, 0, 1, 4) // 2 and 3 skipped
	wantTotals(t, r, 2, 0)
	if last, ok := tr.Last(); !ok || last != 4 {
		t.Fatalf("Last() = (%d, %v), want (4, true)", last, ok)
	}
}

// A jump that is not a stride multiple still rounds to at least one
// loss: the stream provably skipped something.
func TestTrackMisalignedJump(t *testing.T) {
	r := newTestRecorder()
	tr := r.NewTrack(2)
	feed(r, tr, 0, 3)
	wantTotals(t, r, 1, 0)
}

func TestTrackStride(t *testing.T) {
	r := newTestRecorder()
	tr := r.NewTrack(2).Expect(0)
	feed(r, tr, 0, 2, 4)
	wantTotals(t, r, 0, 0)
	if !tr.Settled(5) {
		t.Fatal("Settled(5) = false: next due is 6, nothing outstanding through 5")
	}
	if tr.Settled(6) {
		t.Fatal("Settled(6) = true: sequence 6 is due and missing")
	}
	feed(r, tr, 8) // skipped 6
	wantTotals(t, r, 1, 0)
}

// Expect turns a late first delivery into accounted loss; without it
// the first delivery is free.
func TestTrackExpectLateStart(t *testing.T) {
	r := newTestRecorder()
	pinned := r.NewTrack(1).Expect(0)
	free := r.NewTrack(1)
	feed(r, pinned, 3)
	feed(r, free, 3)
	wantTotals(t, r, 3, 0) // only the pinned track charges 0,1,2
}

func TestTrackTailLoss(t *testing.T) {
	r := newTestRecorder()
	tr := r.NewTrack(1).Expect(0)
	feed(r, tr, 0, 1, 2)
	tr.AddTailLoss(9) // 3..9 never arrived
	wantTotals(t, r, 7, 0)
}

// A track that never delivered is charged from its declared first due
// sequence — and not at all without a declaration, since nothing is
// provably due.
func TestTrackTailLossUnstarted(t *testing.T) {
	r := newTestRecorder()
	declared := r.NewTrack(1).Expect(5)
	undeclared := r.NewTrack(1)
	declared.AddTailLoss(9)   // 5..9 due and missing
	undeclared.AddTailLoss(9) // no provable due sequences
	wantTotals(t, r, 5, 0)
}

func TestTrackSettledUnstarted(t *testing.T) {
	r := newTestRecorder()
	declared := r.NewTrack(1).Expect(5)
	undeclared := r.NewTrack(1)
	if !declared.Settled(4) {
		t.Fatal("Settled(4) = false: first due sequence 5 lies beyond the stream")
	}
	if declared.Settled(5) {
		t.Fatal("Settled(5) = true: sequence 5 is due and missing")
	}
	if !undeclared.Settled(1 << 40) {
		t.Fatal("undeclared unstarted track must always be settled")
	}
}

// Close exempts a deliberately cancelled subscription from tail-loss
// and settlement accounting without forgetting its in-stream ledger.
func TestTrackClose(t *testing.T) {
	r := newTestRecorder()
	tr := r.NewTrack(1).Expect(0)
	feed(r, tr, 0, 1)
	tr.Close()
	tr.AddTailLoss(9)
	wantTotals(t, r, 0, 0)
	if !tr.Settled(9) || !tr.Closed() {
		t.Fatal("closed track must report settled and closed")
	}
}

// The dual latency channels: intended-offset latency is always
// recorded and clamped at zero; service latency only when the scenario
// stamps an actual publish offset.
func TestRecorderLatencyChannels(t *testing.T) {
	r := newTestRecorder()
	tr := r.NewTrack(1)
	r.Observe(tr, 0, 0, -1)               // no actual stamp
	r.Observe(tr, 1, int64(time.Hour), 0) // delivered "before" intended: clamps to 0
	if lat := r.LatencySnapshot(); lat.Count != 2 {
		t.Fatalf("latency count %d, want 2", lat.Count)
	}
	if svc := r.SvcSnapshot(); svc.Count != 1 {
		t.Fatalf("service latency count %d, want 1", svc.Count)
	}
}
