package core

import (
	"cosmos/internal/cbn"
	"cosmos/internal/exec"
	"cosmos/internal/obs"
)

// SystemStats summarises a running deployment in the transport-
// independent shape the client API reports on every backend: the
// embedded clients fill it from the live System, and cmd/cosmosd ships
// it over the wire verbatim (all fields are plain data).
type SystemStats struct {
	// Queries is the number of live continuous queries.
	Queries int
	// Processors is the number of processor nodes (alive or crashed).
	Processors int
	// GroupsPerProc / LoadPerProc list, per processor, the installed
	// query groups and the assigned-query load.
	GroupsPerProc []int
	LoadPerProc   []int
	// TotalDataBytes sums tuple traffic over all overlay links.
	TotalDataBytes int64
	// Links holds per-link counters, sorted by (A, B). Both transports
	// account them: SimNet synchronously, LiveNet with per-link atomics.
	Links []cbn.LinkStats

	// Ingested / Delivered count tuples accepted from sources and
	// results handed to subscribers (the ingest and deliver stage
	// counters).
	Ingested  int64
	Delivered int64
	// SampleEvery is the effective latency sampling period (0 =
	// sampling off): stage and plan histograms hold every
	// SampleEvery-th event.
	SampleEvery int64
	// Stages holds one entry per data-path stage (ingest, route, exec,
	// deliver, wire) in pipeline order: total event count plus the
	// sampled latency histogram.
	Stages []obs.StageStats
	// Plans holds one entry per installed plan across all processors,
	// sorted by (Proc, Plan).
	Plans []PlanStats
	// Workers holds one entry per exec worker across all processors
	// (empty for synchronous runtimes).
	Workers []WorkerStats
	// PlanErrsPerProc / IngestQueuePerProc gauge, per processor, the
	// plan-failure count and the pending ingest micro-batch backlog.
	PlanErrsPerProc    []int64
	IngestQueuePerProc []int
	// BrokerQueues gauges each broker node's mailbox backlog (live
	// transport only; nil on the simulated one, which has no mailboxes).
	BrokerQueues []int
	// Wire carries the TCP transport's result-path series. Only the
	// daemon-side server fills it; nil on embedded backends.
	Wire *obs.WireStats
}

// PlanStats is one installed plan's execution series plus its
// query-management context: which processor hosts it, which queries it
// serves, and the result stream carrying its output.
type PlanStats struct {
	exec.PlanStats
	Proc         int
	Queries      []string
	ResultStream string
}

// WorkerStats is one exec worker's series, tagged with its processor.
type WorkerStats struct {
	exec.WorkerStats
	Proc int
}

// StatsSnapshot captures the deployment's statistics. On the live
// transport the counters are read atomically but the snapshot is not a
// consistent cut under traffic; Quiesce first for exact readouts.
func (s *System) StatsSnapshot() SystemStats {
	st := SystemStats{
		Queries:        s.Queries(),
		Processors:     len(s.procs),
		TotalDataBytes: s.TotalDataBytes(),
		Ingested:       s.obs.StageCount(obs.StageIngest),
		Delivered:      s.obs.StageCount(obs.StageDeliver),
		SampleEvery:    s.obs.SampleEvery(),
		Stages:         s.obs.StageSnapshots(),
	}
	for _, p := range s.procs {
		st.GroupsPerProc = append(st.GroupsPerProc, p.Groups())
		st.LoadPerProc = append(st.LoadPerProc, p.Load())
		st.PlanErrsPerProc = append(st.PlanErrsPerProc, p.PlanErrors())
		pending := 0
		if p.batcher != nil {
			pending = p.batcher.Pending()
		}
		st.IngestQueuePerProc = append(st.IngestQueuePerProc, pending)

		plans, workers := p.rt.StatsSnapshot()
		for _, ps := range plans {
			tags, res := p.planQueries(ps.Plan)
			st.Plans = append(st.Plans, PlanStats{
				PlanStats:    ps,
				Proc:         p.ID,
				Queries:      tags,
				ResultStream: res,
			})
		}
		for _, ws := range workers {
			st.Workers = append(st.Workers, WorkerStats{WorkerStats: ws, Proc: p.ID})
		}
	}
	if s.live != nil {
		st.BrokerQueues = s.live.QueueDepths()
	}
	for _, ls := range s.NetStats() {
		st.Links = append(st.Links, *ls)
	}
	return st
}
