package load

import (
	"fmt"
	"math/rand"
	"sync/atomic"
	"time"

	"cosmos/internal/core"
	"cosmos/internal/stream"
)

// The churn scenario is a WAN sensor fleet under control-plane motion:
// cfg.Streams fleet streams spread over a 48-node seeded overlay with
// three processors, pass-through subscriptions churning (submit/cancel
// with the merge/churn_test.go seed-77 add bias) between bursts of
// held-rate traffic, a new source stream joining a third of the way in,
// and one processor leaving at 60% through the ft checkpoint/failover
// machinery.
//
// Every control-plane op happens at an announced quiesced boundary,
// with the pacer's schedule Shift-ed across it (reported as
// schedule_shifts) so the pause is a visible amendment, not hidden lag.
// The boundaries are not merely cosmetic: a live group-membership
// change renames the group's versioned result stream and the old
// version stops carrying data the instant the plan is replaced
// (internal/core/processor.go), so an op issued against in-flight
// traffic drops a co-member's tuple on the floor — the ledgers here
// caught exactly that. Until group handover is hitless (ROADMAP), the
// scenario drains before each op; the ledgers stay armed across every
// boundary, so a replayed or swallowed tuple still fails the run.
const (
	churnNodes      = 48
	churnAddBias    = 0.7 // p(submit) per churn op, as in merge/churn_test.go
	churnCheckpoint = 16
)

// churnSub is one subscription's bookkeeping: its ledger and its source
// stream index. Ops settle behind quiesced boundaries, so every track
// carries an exact first due sequence (Expect).
type churnSub struct {
	handle *core.QueryHandle
	track  *Track
	stream int
}

// churnStream is one fleet source: its port and the next sequence
// number in its own accounting space.
type churnStream struct {
	info *stream.Info
	port *core.SourcePort
	next int64
}

func runChurn(cfg Config) (*Report, error) {
	dep, err := startLive(core.Options{
		Nodes:           churnNodes,
		Seed:            cfg.Seed,
		ProcessorNodes:  []int{2, 11, 19},
		Placement:       core.RoundRobin,
		ExecWorkers:     cfg.Workers,
		IngestBatch:     1,
		CheckpointEvery: churnCheckpoint,
	}, false)
	if err != nil {
		return nil, err
	}
	defer dep.close()
	sys := dep.ls.System

	rng := rand.New(rand.NewSource(cfg.Seed))
	perStream := cfg.Rate / cfg.Streams
	if perStream < 1 {
		perStream = 1
	}
	streams := make([]*churnStream, 0, cfg.Streams+1)
	addStream := func(name string, node int) error {
		info := loadInfo(name, perStream)
		port, err := sys.RegisterStream(info, node)
		if err != nil {
			return err
		}
		streams = append(streams, &churnStream{info: info, port: port})
		return nil
	}
	for i := 0; i < cfg.Streams; i++ {
		if err := addStream(fmt.Sprintf("Fleet%02d", i), (5+7*i)%churnNodes); err != nil {
			return nil, err
		}
	}

	rec := NewRecorder(time.Now())
	var extractErr atomic.Value
	var subs []*churnSub
	// submit installs one pass-through subscription. The caller settles
	// it behind a quiesced boundary before the next publish, so the
	// track's first due sequence is exactly the stream's next one.
	submit := func(streamIdx int) error {
		track := rec.NewTrack(1).Expect(streams[streamIdx].next)
		var x seqPub
		h, err := sys.Submit(loadQuery(streams[streamIdx].info.Schema.Stream),
			rng.Intn(churnNodes), func(t stream.Tuple) {
				seq, pubNs, err := x.extract(t)
				if err != nil {
					extractErr.CompareAndSwap(nil, err)
					return
				}
				rec.Observe(track, seq, pubNs, int64(t.Ts))
			})
		if err != nil {
			return err
		}
		subs = append(subs, &churnSub{handle: h, track: track, stream: streamIdx})
		return nil
	}
	live := func() []*churnSub {
		var out []*churnSub
		for _, cs := range subs {
			if !cs.track.Closed() {
				out = append(out, cs)
			}
		}
		return out
	}

	// Half the budget subscribes up front, settled before traffic.
	for i := 0; i < cfg.Subs/2; i++ {
		if err := submit(i % len(streams)); err != nil {
			return nil, err
		}
	}
	sys.Quiesce()
	statsBefore := sys.StatsSnapshot()

	events := cfg.targetEvents()
	joinAt := events / 3
	failAt := events * 3 / 5
	churnEvery := events / (cfg.Subs + 1)
	if churnEvery < 1 {
		churnEvery = 1
	}
	submitted, cancelled := 0, 0

	var probe memProbe
	probe.start()
	pacer := NewPacer(cfg.Rate)
	rec.start = pacer.Start()

	for i := 0; i < events; i++ {
		switch {
		case i == joinAt:
			// A new source joins the fleet mid-run. Settling it behind a
			// quiesced boundary (announced via Shift) gives its
			// subscriptions an exact expected-first of zero.
			if err := addStream("FleetJoin", 23); err != nil {
				return nil, err
			}
			joined := len(streams) - 1
			for j := 0; j < 2; j++ {
				if err := submit(joined); err != nil {
					return nil, err
				}
			}
			sys.Quiesce()
			pacer.Shift()
		case i == failAt:
			// Processor leave: drain to a quiesced boundary, crash, let
			// the survivor's adoption settle, resume the schedule.
			sys.Quiesce()
			if err := sys.FailProcessor(1); err != nil {
				return nil, err
			}
			sys.Quiesce()
			pacer.Shift()
		case i > 0 && i%churnEvery == 0:
			// Membership op at a drained boundary: the pre-op quiesce
			// flushes in-flight results of the group about to be
			// re-versioned, the post-op quiesce settles the replacement
			// advertisement and subscriptions before traffic resumes.
			sys.Quiesce()
			alive := live()
			if (rng.Float64() < churnAddBias && len(alive) < cfg.Subs) || len(alive) <= 1 {
				if err := submit(rng.Intn(len(streams))); err != nil {
					return nil, err
				}
				submitted++
			} else {
				victim := alive[rng.Intn(len(alive))]
				victim.track.Close()
				if err := sys.Cancel(victim.handle); err != nil {
					return nil, fmt.Errorf("load: cancel: %w", err)
				}
				cancelled++
			}
			sys.Quiesce()
			pacer.Shift()
		}
		intended := pacer.Tick()
		s := streams[i%len(streams)]
		if err := s.port.Publish(loadTuple(s.info.Schema, s.next, intended, pacer.Elapsed())); err != nil {
			return nil, fmt.Errorf("load: publish %s: %w", s.info.Schema.Stream, err)
		}
		s.next++
	}
	pubElapsed := pacer.Elapsed()

	// Quiesce settles deliveries end to end; the poll below is a cheap
	// safeguard with the drain deadline as backstop.
	sys.Quiesce()
	waitUntil(time.Now().Add(cfg.DrainTimeout), func() bool {
		for _, cs := range live() {
			if !cs.track.Settled(streams[cs.stream].next - 1) {
				return false
			}
		}
		return true
	})
	total := pacer.Elapsed()
	allocs := probe.allocsPer(rec.Delivered())
	if err, _ := extractErr.Load().(error); err != nil {
		return nil, err
	}

	for _, cs := range subs {
		if final := streams[cs.stream].next - 1; final >= 0 {
			cs.track.AddTailLoss(final)
		}
	}
	lost, dups := rec.Totals()
	statsAfter := sys.StatsSnapshot()

	res := baseResults(pacer, rec, pubElapsed, total)
	res.Lost = lost
	res.Duplicated = dups
	res.AllocsPerResult = allocs
	return &Report{
		Area: "churn",
		Config: ReportConfig{
			Backend:    "live",
			RatePerSec: cfg.Rate,
			DurationS:  cfg.Duration.Seconds(),
			Events:     events,
			Subs:       cfg.Subs,
			Streams:    cfg.Streams,
			Workers:    cfg.Workers,
			Seed:       cfg.Seed,
			Shifts:     pacer.Shifts(),
		},
		Results: res,
		Stages:  stageReports(statsBefore, statsAfter),
	}, nil
}
