#!/usr/bin/env bash
# Refresh every area's sustained-load trajectory point.
#
#   scripts/bench.sh                    # all four BENCH_<area>.json files
#   scripts/bench.sh auction churn     # just these areas
#
# Each area runs cmd/cosmosbench at its full-scale shape; the previous
# point of each file is preserved in its history block, so successive
# runs (one per PR) accumulate comparable trajectories.
set -euo pipefail
cd "$(dirname "$0")/.."

areas=("$@")
if [ ${#areas[@]} -eq 0 ]; then
    areas=(transport auction churn clients)
fi

go build -o /tmp/cosmosbench ./cmd/cosmosbench
for area in "${areas[@]}"; do
    echo "== $area =="
    case "$area" in
    transport) /tmp/cosmosbench -scenario transport -rate 5000 -duration 1s -subs 16 -strict ;;
    auction)   /tmp/cosmosbench -scenario auction -rate 5000 -duration 2s -strict ;;
    churn)     /tmp/cosmosbench -scenario churn -rate 4000 -duration 2s -strict ;;
    clients)   /tmp/cosmosbench -scenario clients -rate 4000 -duration 1s -clients 128 -strict ;;
    *)         echo "unknown area: $area" >&2; exit 2 ;;
    esac
    echo
done
