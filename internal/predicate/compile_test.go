package predicate

import (
	"math/rand"
	"testing"

	"cosmos/internal/stream"
)

var compileSchema = stream.MustSchema("R",
	stream.Field{Name: "A", Kind: stream.KindInt},
	stream.Field{Name: "B", Kind: stream.KindFloat},
	stream.Field{Name: "C", Kind: stream.KindString},
	stream.Field{Name: "D", Kind: stream.KindBool},
	stream.Field{Name: "T", Kind: stream.KindTime},
)

func compileTuple(ts stream.Timestamp, a int64, bv float64, c string, d bool, tt stream.Timestamp) stream.Tuple {
	return stream.MustTuple(compileSchema, ts,
		stream.Int(a), stream.Float(bv), stream.String_(c), stream.Bool(d), stream.Time(tt))
}

func TestCompileEvalBasics(t *testing.T) {
	d := DNF{
		{C("A", GE, stream.Int(5)), C("B", LT, stream.Float(2.5))},
		{C("C", EQ, stream.String_("x"))},
	}
	c, err := Compile(d, compileSchema)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	cases := []struct {
		tp   stream.Tuple
		want bool
	}{
		{compileTuple(1, 7, 1.0, "y", false, 0), true},  // first disjunct
		{compileTuple(1, 7, 3.0, "x", false, 0), true},  // second disjunct
		{compileTuple(1, 3, 1.0, "y", false, 0), false}, // neither
	}
	for i, tc := range cases {
		if got := c.EvalValues(tc.tp.Values, tc.tp.Ts); got != tc.want {
			t.Errorf("case %d: EvalValues = %v, want %v", i, got, tc.want)
		}
		interp, err := d.Eval(tc.tp)
		if err != nil {
			t.Fatalf("case %d: interpreted Eval: %v", i, err)
		}
		if interp != tc.want {
			t.Errorf("case %d: interpreted = %v, want %v", i, interp, tc.want)
		}
	}
}

func TestCompileTrueAndFalse(t *testing.T) {
	c, err := Compile(True(), compileSchema)
	if err != nil {
		t.Fatal(err)
	}
	if !c.IsTrue() || !c.EvalValues(nil, 0) {
		t.Error("compiled TRUE should accept everything")
	}
	f, err := Compile(DNF{}, compileSchema)
	if err != nil {
		t.Fatal(err)
	}
	if f.EvalValues(compileTuple(1, 1, 1, "", false, 0).Values, 1) {
		t.Error("compiled FALSE (empty DNF) should reject everything")
	}
}

func TestCompileIntrinsicTimestamp(t *testing.T) {
	d := DNF{{C(IntrinsicTs, GE, stream.Time(100))}}
	c, err := Compile(d, compileSchema)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	if !c.EvalValues(compileTuple(150, 0, 0, "", false, 0).Values, 150) {
		t.Error("ts=150 should satisfy __ts >= 100")
	}
	if c.EvalValues(compileTuple(50, 0, 0, "", false, 0).Values, 50) {
		t.Error("ts=50 should not satisfy __ts >= 100")
	}
	// A real column named __ts must win over the intrinsic, matching the
	// interpreted resolveAttr precedence.
	shadow := stream.MustSchema("S", stream.Field{Name: IntrinsicTs, Kind: stream.KindInt})
	cs, err := Compile(DNF{{C(IntrinsicTs, EQ, stream.Int(7))}}, shadow)
	if err != nil {
		t.Fatalf("Compile shadow: %v", err)
	}
	tp := stream.MustTuple(shadow, 999, stream.Int(7))
	if !cs.EvalValues(tp.Values, tp.Ts) {
		t.Error("column __ts should shadow the intrinsic timestamp")
	}
}

func TestCompileDiffTerm(t *testing.T) {
	d := DNF{{
		Constraint{Term: Diff("T", IntrinsicTs), Op: GE, Const: stream.Int(-1000)},
		Constraint{Term: Diff("T", IntrinsicTs), Op: LE, Const: stream.Int(0)},
	}}
	c, err := Compile(d, compileSchema)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	in := compileTuple(5000, 0, 0, "", false, 4500)
	out := compileTuple(5000, 0, 0, "", false, 2000)
	if !c.EvalValues(in.Values, in.Ts) {
		t.Error("T-__ts = -500 should be within [-1000, 0]")
	}
	if c.EvalValues(out.Values, out.Ts) {
		t.Error("T-__ts = -3000 should be outside [-1000, 0]")
	}
}

func TestCompileErrors(t *testing.T) {
	bad := []DNF{
		{{C("missing", GT, stream.Int(1))}},                                // unknown attribute
		{{C("C", GT, stream.Int(1))}},                                      // string vs int
		{{C("A", EQ, stream.Bool(true))}},                                  // int vs bool
		{{Constraint{Term: Diff("A", "C"), Op: EQ, Const: stream.Int(0)}}}, // diff over string
		{{C("A", EQ, stream.Value{})}},                                     // invalid constant
	}
	for i, d := range bad {
		if _, err := Compile(d, compileSchema); err == nil {
			t.Errorf("case %d: Compile(%s) should fail", i, d)
		}
	}
	// Whenever Compile succeeds, the interpreted evaluator must be
	// error-free for schema-conforming tuples — that is the contract the
	// broker's fallback decision relies on.
	good := DNF{{C("A", LT, stream.Float(3.5))}, {C("T", GE, stream.Int(0))}}
	if _, err := Compile(good, compileSchema); err != nil {
		t.Fatalf("Compile(good): %v", err)
	}
	if _, err := good.Eval(compileTuple(1, 1, 1, "", false, 0)); err != nil {
		t.Fatalf("interpreted Eval(good): %v", err)
	}
}

// TestCompileMatchesInterpretedRandom fuzzes random DNFs over random
// tuples and asserts the compiled evaluator agrees with the interpreted
// one wherever compilation succeeds.
func TestCompileMatchesInterpretedRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	numAttrs := []string{"A", "B", "T"}
	randConstraint := func() Constraint {
		a := numAttrs[rng.Intn(len(numAttrs))]
		op := Op(rng.Intn(6))
		if rng.Intn(4) == 0 {
			b := numAttrs[rng.Intn(len(numAttrs))]
			return Constraint{Term: Diff(a, b), Op: op, Const: stream.Int(int64(rng.Intn(21) - 10))}
		}
		if rng.Intn(2) == 0 {
			return C(a, op, stream.Int(int64(rng.Intn(21)-10)))
		}
		return C(a, op, stream.Float(float64(rng.Intn(200))/10-10))
	}
	for trial := 0; trial < 500; trial++ {
		d := make(DNF, 1+rng.Intn(3))
		for i := range d {
			cj := make(Conj, rng.Intn(4))
			for j := range cj {
				cj[j] = randConstraint()
			}
			d[i] = cj
		}
		c, err := Compile(d, compileSchema)
		if err != nil {
			t.Fatalf("trial %d: Compile(%s): %v", trial, d, err)
		}
		for k := 0; k < 20; k++ {
			tp := compileTuple(
				stream.Timestamp(rng.Intn(100)),
				int64(rng.Intn(21)-10),
				float64(rng.Intn(200))/10-10,
				"s", rng.Intn(2) == 0,
				stream.Timestamp(rng.Intn(100)),
			)
			want, err := d.Eval(tp)
			if err != nil {
				t.Fatalf("trial %d: interpreted Eval: %v", trial, err)
			}
			if got := c.EvalValues(tp.Values, tp.Ts); got != want {
				t.Fatalf("trial %d: %s on %s: compiled %v, interpreted %v",
					trial, d, tp, got, want)
			}
		}
	}
}
