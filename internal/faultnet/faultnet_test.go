package faultnet

import (
	"bytes"
	"io"
	"net"
	"sync"
	"testing"
	"time"
)

// echoServer accepts connections and echoes every byte back until the
// peer disconnects. Returns its address and a stop func.
func echoServer(t *testing.T) (string, func()) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				_, _ = io.Copy(c, c)
				_ = c.Close()
			}()
		}
	}()
	return ln.Addr().String(), func() { _ = ln.Close(); wg.Wait() }
}

// TestProxyPassThrough: zero config forwards traffic unchanged.
func TestProxyPassThrough(t *testing.T) {
	addr, stop := echoServer(t)
	defer stop()
	p, err := NewProxy(addr, Config{})
	if err != nil {
		t.Fatalf("proxy: %v", err)
	}
	defer p.Close()

	conn, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer conn.Close()
	msg := []byte("hello through the proxy")
	if _, err := conn.Write(msg); err != nil {
		t.Fatalf("write: %v", err)
	}
	got := make([]byte, len(msg))
	if _, err := io.ReadFull(conn, got); err != nil {
		t.Fatalf("read: %v", err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("echo mismatch: got %q want %q", got, msg)
	}
	if p.Kills() != 0 {
		t.Fatalf("pass-through proxy killed %d connections", p.Kills())
	}
}

// TestProxyKillsAfterBudget: with KillEveryWrites set, the proxy severs
// the connection after a bounded number of server→client frames, and
// redialling works.
func TestProxyKillsAfterBudget(t *testing.T) {
	addr, stop := echoServer(t)
	defer stop()
	p, err := NewProxy(addr, Config{Seed: 1, KillEveryWrites: 4})
	if err != nil {
		t.Fatalf("proxy: %v", err)
	}
	defer p.Close()

	for round := 0; round < 3; round++ {
		conn, err := net.Dial("tcp", p.Addr())
		if err != nil {
			t.Fatalf("round %d dial: %v", round, err)
		}
		// Ping-pong one byte at a time so each echo is one
		// server→client write; the kill budget is in [2, 6).
		survived := 0
		for i := 0; i < 50; i++ {
			if _, err := conn.Write([]byte{byte(i)}); err != nil {
				break
			}
			one := make([]byte, 1)
			_ = conn.SetReadDeadline(time.Now().Add(2 * time.Second))
			if _, err := io.ReadFull(conn, one); err != nil {
				break
			}
			survived++
		}
		_ = conn.Close()
		if survived >= 50 {
			t.Fatalf("round %d: connection survived %d echoes, kill never fired", round, survived)
		}
	}
	if p.Kills() < 3 {
		t.Fatalf("got %d kills, want >= 3", p.Kills())
	}
}

// TestProxyDeterministicSchedule: the same seed yields the same kill
// points for the same traffic shape.
func TestProxyDeterministicSchedule(t *testing.T) {
	run := func(seed int64) []int {
		addr, stop := echoServer(t)
		defer stop()
		p, err := NewProxy(addr, Config{Seed: seed, KillEveryWrites: 6})
		if err != nil {
			t.Fatalf("proxy: %v", err)
		}
		defer p.Close()
		var points []int
		for round := 0; round < 3; round++ {
			conn, err := net.Dial("tcp", p.Addr())
			if err != nil {
				t.Fatalf("dial: %v", err)
			}
			survived := 0
			for i := 0; i < 100; i++ {
				if _, err := conn.Write([]byte{1}); err != nil {
					break
				}
				one := make([]byte, 1)
				_ = conn.SetReadDeadline(time.Now().Add(2 * time.Second))
				if _, err := io.ReadFull(conn, one); err != nil {
					break
				}
				survived++
			}
			_ = conn.Close()
			points = append(points, survived)
		}
		return points
	}
	a, b := run(42), run(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged: %v vs %v", a, b)
		}
	}
}

// TestProxyPartitionAndHeal: a partition severs live connections and
// kills new ones; healing restores service.
func TestProxyPartitionAndHeal(t *testing.T) {
	addr, stop := echoServer(t)
	defer stop()
	p, err := NewProxy(addr, Config{})
	if err != nil {
		t.Fatalf("proxy: %v", err)
	}
	defer p.Close()

	conn, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	if _, err := conn.Write([]byte{1}); err != nil {
		t.Fatalf("write: %v", err)
	}
	one := make([]byte, 1)
	if _, err := io.ReadFull(conn, one); err != nil {
		t.Fatalf("read: %v", err)
	}

	p.Partition()
	_ = conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := io.ReadFull(conn, one); err == nil {
		t.Fatal("read succeeded across a partition")
	}
	_ = conn.Close()

	p.Heal()
	conn2, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatalf("dial after heal: %v", err)
	}
	defer conn2.Close()
	if _, err := conn2.Write([]byte{2}); err != nil {
		t.Fatalf("write after heal: %v", err)
	}
	_ = conn2.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := io.ReadFull(conn2, one); err != nil {
		t.Fatalf("read after heal: %v", err)
	}
}

// TestWrapListenerInjects: WrapListener applies faults to accepted
// conns directly (server-side injection, no proxy hop).
func TestWrapListenerInjects(t *testing.T) {
	raw, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	ln := WrapListener(raw, Config{Seed: 3, KillEveryWrites: 3})
	defer ln.Close()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				_, _ = io.Copy(c, c)
				_ = c.Close()
			}()
		}
	}()

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	survived := 0
	for i := 0; i < 50; i++ {
		if _, err := conn.Write([]byte{1}); err != nil {
			break
		}
		one := make([]byte, 1)
		_ = conn.SetReadDeadline(time.Now().Add(2 * time.Second))
		if _, err := io.ReadFull(conn, one); err != nil {
			break
		}
		survived++
	}
	_ = conn.Close()
	if survived >= 50 {
		t.Fatal("wrapped listener never killed the connection")
	}
	if ln.Kills() == 0 {
		t.Fatal("kill counter not incremented")
	}
	_ = raw.Close()
	wg.Wait()
}

// TestDisableFaults: after DisableFaults, fresh connections stop being
// killed.
func TestDisableFaults(t *testing.T) {
	addr, stop := echoServer(t)
	defer stop()
	p, err := NewProxy(addr, Config{Seed: 9, KillEveryWrites: 2})
	if err != nil {
		t.Fatalf("proxy: %v", err)
	}
	defer p.Close()
	p.DisableFaults()

	conn, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer conn.Close()
	for i := 0; i < 20; i++ {
		if _, err := conn.Write([]byte{1}); err != nil {
			t.Fatalf("write %d failed after DisableFaults: %v", i, err)
		}
		one := make([]byte, 1)
		_ = conn.SetReadDeadline(time.Now().Add(2 * time.Second))
		if _, err := io.ReadFull(conn, one); err != nil {
			t.Fatalf("read %d failed after DisableFaults: %v", i, err)
		}
	}
}

// TestProxyCutAtExactByteOffset: CutAtBytes severs the server→client
// stream after precisely the configured byte — the client receives an
// exact prefix of the stream, regardless of how writes were chunked,
// so a protocol test can provably truncate inside a length-prefixed
// frame.
func TestProxyCutAtExactByteOffset(t *testing.T) {
	addr, stop := echoServer(t)
	defer stop()
	const cut = 3137
	p, err := NewProxy(addr, Config{Seed: 1, CutAtBytes: cut})
	if err != nil {
		t.Fatalf("proxy: %v", err)
	}
	defer p.Close()

	conn, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer conn.Close()

	// Push 10000 patterned bytes through the echo in odd-sized chunks
	// so the cut cannot land on a write boundary by accident.
	pattern := make([]byte, 10000)
	for i := range pattern {
		pattern[i] = byte(i * 31)
	}
	go func() {
		for off := 0; off < len(pattern); {
			n := 613
			if off+n > len(pattern) {
				n = len(pattern) - off
			}
			if _, err := conn.Write(pattern[off : off+n]); err != nil {
				return
			}
			off += n
		}
	}()

	got, _ := io.ReadAll(conn) // until the injected kill closes the conn
	if len(got) != cut {
		t.Fatalf("received %d bytes, want exactly %d", len(got), cut)
	}
	if !bytes.Equal(got, pattern[:cut]) {
		t.Fatalf("received bytes are not the exact stream prefix")
	}
	if p.Kills() != 1 {
		t.Fatalf("kills = %d, want 1", p.Kills())
	}
}
