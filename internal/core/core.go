// Package core assembles COSMOS (paper §2): processors running stream
// processing engines behind query wrappers, brokers routing data through
// the content-based network, the query-distribution (load management)
// service, per-processor query management with the merging optimiser,
// and user proxies that retrieve result streams and re-tighten them.
//
// A System is an in-process COSMOS deployment over a simulated overlay:
// deterministic, fully observable, and the substrate for the examples
// and integration tests. The cmd/cosmosd daemon runs the same components
// over TCP.
package core
