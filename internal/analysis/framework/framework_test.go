package framework_test

import (
	"go/ast"
	"strings"
	"testing"

	"cosmos/internal/analysis/framework"
)

// declAnalyzer reports every function whose name starts with "bad" —
// a minimal check to drive the suppression machinery end to end.
var declAnalyzer = &framework.Analyzer{
	Name: "decl",
	Doc:  "test analyzer: reports functions named bad*",
	Run: func(p *framework.Pass) error {
		for _, f := range p.Files {
			for _, d := range f.Decls {
				if fd, ok := d.(*ast.FuncDecl); ok && strings.HasPrefix(fd.Name.Name, "bad") {
					p.Reportf(fd.Pos(), "function %s is bad", fd.Name.Name)
				}
			}
		}
		return nil
	},
}

// TestSuppression checks the four lint:ignore outcomes: no comment
// (reported), documented ignore (silent), reasonless ignore (replaced
// by a diagnostic on the comment itself), and an ignore naming a
// different analyzer (reported).
func TestSuppression(t *testing.T) {
	prog, err := framework.Load(".", []string{"./testdata/src/suppress"})
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	diags, err := framework.RunAnalyzers(prog, []*framework.Analyzer{declAnalyzer})
	if err != nil {
		t.Fatalf("run: %v", err)
	}

	var got []string
	for _, d := range diags {
		got = append(got, d.Message)
	}
	want := []string{
		"function badOpen is bad",
		"lint:ignore without a reason — document why the finding is acceptable",
		"function badWrongName is bad",
	}
	if len(got) != len(want) {
		t.Fatalf("got %d diagnostics %q, want %d %q", len(got), got, len(want), want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("diagnostic %d: got %q, want %q", i, got[i], want[i])
		}
	}
}
