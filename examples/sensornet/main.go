// Sensornet: the paper's evaluation workload (§5) run live — 63
// SensorScope-like environmental streams, a population of random
// monitoring queries drawn from a zipf distribution, query merging at
// the processor, and real data flowing through the content-based
// network.
//
//	go run ./examples/sensornet [-queries 80] [-dist zipf1.5] [-readings 40]
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"

	"cosmos/internal/core"
	"cosmos/internal/querygen"
	"cosmos/internal/sensordata"
	"cosmos/internal/stream"
)

func main() {
	var (
		queries  = flag.Int("queries", 80, "number of random queries")
		distName = flag.String("dist", "zipf1.5", "workload skew: uniform, zipf1.0, zipf1.5, zipf2")
		readings = flag.Int("readings", 40, "readings per station to publish")
		seed     = flag.Int64("seed", 1, "random seed")
	)
	flag.Parse()

	var dist querygen.Distribution
	for _, d := range querygen.PaperDistributions() {
		if d.Name == *distName {
			dist = d
		}
	}
	if dist.Name == "" {
		log.Fatalf("unknown distribution %q", *distName)
	}

	// A 128-node overlay with one processor.
	sys, err := core.NewSystem(core.Options{Nodes: 128, Seed: *seed})
	if err != nil {
		log.Fatal(err)
	}
	// Register the 63 stations at random overlay nodes and keep their
	// publish ports and generators.
	rng := rand.New(rand.NewSource(*seed))
	ports := make([]*core.SourcePort, sensordata.NumStations)
	gens := make([]*sensordata.Generator, sensordata.NumStations)
	for s := 0; s < sensordata.NumStations; s++ {
		port, err := sys.RegisterStream(sensordata.Info(s), rng.Intn(128))
		if err != nil {
			log.Fatal(err)
		}
		ports[s] = port
		gens[s] = sensordata.NewGenerator(s, *seed)
	}

	// Submit the random query population; count deliveries per query.
	gen, err := querygen.New(querygen.Config{Dist: dist, Seed: *seed})
	if err != nil {
		log.Fatal(err)
	}
	delivered := make([]int, *queries)
	for i := 0; i < *queries; i++ {
		i := i
		text := gen.Next()
		if _, err := sys.Submit(text, rng.Intn(128), func(stream.Tuple) {
			delivered[i]++
		}); err != nil {
			log.Fatalf("submitting %q: %v", text, err)
		}
	}
	proc := sys.Processors()[0]
	st := proc.Stats()
	fmt.Printf("submitted %d %s queries → %d groups (grouping ratio %.2f)\n",
		st.Queries, dist.Name, st.Groups, st.GroupingRatio())
	fmt.Printf("estimated delivery saving from merging: %.1f%%\n", 100*st.RateBenefitRatio())

	// Stream readings through the network, round-robin across stations.
	for r := 0; r < *readings; r++ {
		for s := 0; s < sensordata.NumStations; s++ {
			if err := ports[s].Publish(gens[s].Next()); err != nil {
				log.Fatal(err)
			}
		}
	}
	total := 0
	active := 0
	for _, n := range delivered {
		total += n
		if n > 0 {
			active++
		}
	}
	fmt.Printf("published %d readings; delivered %d results to %d/%d queries\n",
		*readings*sensordata.NumStations, total, active, *queries)
	fmt.Printf("data moved across overlay links: %d bytes\n", sys.TotalDataBytes())
}
