package exec

import (
	"sync"

	"cosmos/internal/stream"
)

// Batcher is the batching channel adapter between a tuple producer (the
// data wrapper's delivery callback) and a Runtime: tuples are queued on
// a channel and a drain goroutine coalesces whatever is immediately
// available — up to maxBatch — into one ConsumeBatch call, amortising
// dispatch-table lookups and lock acquisitions across the micro-batch
// (the Hazelcast-Jet-style batching the related work describes). Under
// light load batches degenerate to single tuples and latency stays at
// one channel hop; under load batches fill and throughput wins.
//
// Each batch buffer is handed over to the runtime (sharded mode borrows
// it until the tuples are processed), so buffers are never reused.
type Batcher struct {
	rt   *Runtime
	in   chan stream.Tuple
	max  int
	quit chan struct{}
	done chan struct{}

	mu      sync.Mutex
	cond    *sync.Cond
	pending int  // guarded by mu; tuples accepted but not yet dispatched to the runtime
	closed  bool // guarded by mu
}

// NewBatcher starts a batcher draining into rt. queueLen bounds the
// intake channel (default 1024); maxBatch bounds one micro-batch
// (default 16).
func NewBatcher(rt *Runtime, queueLen, maxBatch int) *Batcher {
	if queueLen <= 0 {
		queueLen = 1024
	}
	if maxBatch <= 0 {
		maxBatch = 16
	}
	b := &Batcher{
		rt:   rt,
		in:   make(chan stream.Tuple, queueLen),
		max:  maxBatch,
		quit: make(chan struct{}),
		done: make(chan struct{}),
	}
	b.cond = sync.NewCond(&b.mu)
	go b.run()
	return b
}

// Put queues one tuple, blocking when the intake channel is full
// (backpressure). It reports false when the batcher is closed.
func (b *Batcher) Put(t stream.Tuple) bool {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return false
	}
	b.pending++
	b.mu.Unlock()
	select {
	case b.in <- t:
		return true
	case <-b.quit:
		b.settle(1)
		return false
	}
}

// Flush blocks until every tuple accepted before the call has been
// dispatched to the runtime. Pair with Runtime.Barrier to also wait for
// sharded processing.
func (b *Batcher) Flush() {
	b.mu.Lock()
	for b.pending > 0 && !b.closed {
		b.cond.Wait()
	}
	b.mu.Unlock()
}

// Pending reports the number of tuples accepted but not yet dispatched
// to the runtime — zero means the batcher is drained (the stabilisation
// probe core.LiveSystem.Quiesce uses).
func (b *Batcher) Pending() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.pending
}

// Close stops the batcher; tuples still queued are dropped (call Flush
// first for a graceful drain).
func (b *Batcher) Close() {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return
	}
	b.closed = true
	b.cond.Broadcast()
	b.mu.Unlock()
	close(b.quit)
	<-b.done
}

func (b *Batcher) settle(n int) {
	b.mu.Lock()
	b.pending -= n
	if b.pending == 0 {
		b.cond.Broadcast()
	}
	b.mu.Unlock()
}

// run drains the intake channel: one blocking receive starts a batch,
// then whatever is immediately available tops it up.
func (b *Batcher) run() {
	defer close(b.done)
	for {
		select {
		case <-b.quit:
			return
		case t := <-b.in:
			batch := make([]stream.Tuple, 1, b.max)
			batch[0] = t
		fill:
			for len(batch) < b.max {
				select {
				case t2 := <-b.in:
					batch = append(batch, t2)
				default:
					break fill
				}
			}
			_ = b.rt.ConsumeBatch(batch) // plan errors surface via Config.OnError
			b.settle(len(batch))
		}
	}
}
