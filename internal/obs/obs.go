// Package obs is the observability plane of the system: lock-free
// counters and gauges, fixed-bucket log-linear latency histograms, and
// sampled per-tuple tracing, threaded through every stage of the data
// path (client ingest, broker routing, plan execution, result delivery,
// and the TCP wire).
//
// # Design contract
//
// The data path is the product; observation must not tax it. The rules:
//
//   - Counting is always on and costs one uncontended atomic add per
//     event — the same counter doubles as the sampling clock.
//   - Latency timing is sampled 1-in-SampleEvery (systematic, not
//     random: deterministic replay stays deterministic). Unsampled
//     events pay zero clock reads; sampled events pay two monotonic
//     reads and one histogram Observe. Nothing on the record path
//     allocates — the compiled hot paths keep their 0–3 allocs/tuple.
//   - Tracing is off by default (TraceEvery == 0). When off, a trace
//     mark is one nil/field check with no atomics. When on, 1-in-
//     TraceEvery published tuples (seedable phase) are followed through
//     the stages keyed by their application timestamp.
//
// All methods are safe on a nil *Metrics and degrade to no-ops, so
// instrumented call sites need no conditionals.
//
// Snapshots (StageStats, HistSnapshot, WireStats, Trace) are plain
// data: gob- and json-encodable, so the same stats shape travels over
// the TCP transport unchanged.
package obs

import (
	"sync/atomic"
	"time"
)

// epoch anchors the package monotonic clock; Now readings are
// comparable within a process only.
var epoch = time.Now()

// Now returns nanoseconds since the process epoch on the monotonic
// clock (immune to wall-clock steps).
//
//cosmos:hotpath
func Now() int64 { return int64(time.Since(epoch)) }

// Counter is a lock-free monotonically increasing event counter.
type Counter struct{ v atomic.Int64 }

//cosmos:hotpath
func (c *Counter) Inc() { c.v.Add(1) }

//cosmos:hotpath
func (c *Counter) Add(n int64) { c.v.Add(n) }

//cosmos:hotpath
func (c *Counter) Load() int64 { return c.v.Load() }

// Gauge is a lock-free instantaneous value (queue depth, connections).
type Gauge struct{ v atomic.Int64 }

//cosmos:hotpath
func (g *Gauge) Set(n int64) { g.v.Store(n) }

//cosmos:hotpath
func (g *Gauge) Add(n int64) { g.v.Add(n) }

//cosmos:hotpath
func (g *Gauge) Load() int64 { return g.v.Load() }

// Stage identifies one hop of the tuple data path.
type Stage uint8

const (
	// StageIngest: Source.Publish handing a tuple to the network client.
	StageIngest Stage = iota
	// StageRoute: one broker routing a tuple to its link/local targets.
	StageRoute
	// StageExec: one compiled plan executing one tuple push.
	StageExec
	// StageDeliver: a matched result crossing a query's delivery proxy
	// to the subscriber callback.
	StageDeliver
	// StageWire: a result batch written to a TCP session's wire.
	StageWire
	// NumStages bounds the per-stage arrays.
	NumStages
)

var stageNames = [NumStages]string{"ingest", "route", "exec", "deliver", "wire"}

//cosmos:hotpath
func (s Stage) String() string {
	if int(s) < len(stageNames) {
		return stageNames[s]
	}
	return "unknown"
}

// DefaultSampleEvery is the default 1-in-N latency sampling period. At
// typical tuple rates it keeps the histogram statistically dense within
// seconds while amortising the two clock reads to noise.
const DefaultSampleEvery = 512

// Options configures a Metrics instance.
type Options struct {
	// SampleEvery is the latency sampling period: every SampleEvery-th
	// event per stage is timed. 0 means DefaultSampleEvery; negative
	// disables latency sampling entirely (counters stay on).
	SampleEvery int
	// TraceEvery enables per-tuple tracing of every TraceEvery-th
	// published tuple. 0 (the default) disables tracing.
	TraceEvery int
	// TraceSeed offsets the systematic trace sampler's phase, so
	// repeated runs can trace different tuple cohorts deterministically.
	TraceSeed int64
	// TraceCap bounds retained traces (FIFO eviction); 0 means 256.
	TraceCap int
}

// NumStripes shards each stage's tick counter. Hot stages are recorded
// from many goroutines at once (one delivery proxy per subscriber, one
// broker per overlay node), and a single shared counter would make
// them false-share one cache line; striping keeps the counting cost at
// one *uncontended* atomic add. Each stripe is an independent
// systematic sampling clock, so the overall sampled fraction stays
// 1-in-sampleEvery. Power of two: stripe hints are reduced by masking.
const NumStripes = 16

// stripedTick is one cache-line-padded shard of a stage counter.
type stripedTick struct {
	n atomic.Int64
	_ [7]int64
}

// stageState is one stage's always-on counter (doubling as the sampling
// clock, striped against recorder contention) plus its sampled latency
// histogram. The histogram is shared: only 1-in-sampleEvery events
// touch it, which amortises its contention to noise.
type stageState struct {
	ticks [NumStripes]stripedTick
	lat   Histogram
}

// count sums the stripes — the stage's exact event count.
func (st *stageState) count() int64 {
	var n int64
	for i := range st.ticks {
		n += st.ticks[i].n.Load()
	}
	return n
}

// Metrics is the per-system observability hub. One instance is shared
// by every component of a core.System (brokers, processors, delivery
// proxies, the transport server).
type Metrics struct {
	sampleEvery int64 // 0 = sampling disabled; immutable
	stages      [NumStages]stageState
	tracer      tracer
}

// New builds a Metrics hub. A nil result is never returned; callers may
// still hold a nil *Metrics (fully disabled) — every method tolerates
// it.
func New(o Options) *Metrics {
	se := int64(o.SampleEvery)
	switch {
	case se == 0:
		se = DefaultSampleEvery
	case se < 0:
		se = 0
	}
	m := &Metrics{sampleEvery: se}
	m.tracer.init(o)
	return m
}

// StageStart counts one event at stage s on stripe 0. When the event
// is chosen for latency sampling it returns the start timestamp to
// pass to StageEnd; otherwise (and on a nil receiver) it returns 0.
// Call sites with a natural concurrent identity (worker, proxy, broker
// node, session) should use StageStartAt instead.
//
//cosmos:hotpath
func (m *Metrics) StageStart(s Stage) int64 { return m.StageStartAt(s, 0) }

// StageStartAt is StageStart on the stripe selected by hint (reduced
// modulo NumStripes). Distinct concurrent recorders should pass
// distinct hints so their counting never contends on one cache line.
//
//cosmos:hotpath
func (m *Metrics) StageStartAt(s Stage, hint int) int64 {
	if m == nil {
		return 0
	}
	n := m.stages[s].ticks[hint&(NumStripes-1)].n.Add(1)
	if m.sampleEvery > 0 && n%m.sampleEvery == 0 {
		return Now()
	}
	return 0
}

// StageStartN counts n events at stage s on stripe 0 (batch call
// sites). The batch is timed when it crosses a sampling boundary.
//
//cosmos:hotpath
func (m *Metrics) StageStartN(s Stage, n int64) int64 { return m.StageStartNAt(s, n, 0) }

// StageStartNAt is StageStartN on the stripe selected by hint.
//
//cosmos:hotpath
func (m *Metrics) StageStartNAt(s Stage, n int64, hint int) int64 {
	if m == nil || n <= 0 {
		return 0
	}
	c := m.stages[s].ticks[hint&(NumStripes-1)].n.Add(n)
	if m.sampleEvery > 0 && c/m.sampleEvery != (c-n)/m.sampleEvery {
		return Now()
	}
	return 0
}

// StageEnd completes a sampled timing started by StageStart/StageStartN
// and returns the observed duration (0 when the event was unsampled).
//
//cosmos:hotpath
func (m *Metrics) StageEnd(s Stage, start int64) int64 {
	if m == nil || start == 0 {
		return 0
	}
	d := Now() - start
	if d < 0 {
		d = 0
	}
	m.stages[s].lat.Observe(d)
	return d
}

// StageCount returns the number of events counted at stage s (summed
// over the stripes).
func (m *Metrics) StageCount(s Stage) int64 {
	if m == nil {
		return 0
	}
	return m.stages[s].count()
}

// StageLatency snapshots stage s's sampled latency histogram.
func (m *Metrics) StageLatency(s Stage) HistSnapshot {
	if m == nil {
		return HistSnapshot{}
	}
	return m.stages[s].lat.Snapshot()
}

// SampleEvery reports the effective latency sampling period (0 =
// sampling disabled).
//
//cosmos:hotpath
func (m *Metrics) SampleEvery() int64 {
	if m == nil {
		return 0
	}
	return m.sampleEvery
}

// StageStats is the exported per-stage series: total event count, how
// many were latency-sampled, and the sampled latency distribution.
type StageStats struct {
	Stage   string
	Count   int64
	Sampled uint64
	Lat     HistSnapshot
}

// StageSnapshots returns one StageStats per stage, in Stage order.
func (m *Metrics) StageSnapshots() []StageStats {
	if m == nil {
		return nil
	}
	out := make([]StageStats, NumStages)
	for s := Stage(0); s < NumStages; s++ {
		lat := m.stages[s].lat.Snapshot()
		out[s] = StageStats{
			Stage:   s.String(),
			Count:   m.stages[s].count(),
			Sampled: lat.Count,
			Lat:     lat,
		}
	}
	return out
}

// WireStats is the TCP transport's result-path series, filled by the
// daemon-side server (nil in embedded backends).
type WireStats struct {
	// Connections is the number of live client sessions.
	Connections int
	// Results / Batches / Bytes count result tuples, 'D' frames, and
	// frame payload bytes written since start.
	Results int64
	Batches int64
	Bytes   int64
	// QueueDepth is the instantaneous sum of pending results across all
	// session result pumps.
	QueueDepth int
}
