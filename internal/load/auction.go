package load

import (
	"fmt"
	"sync/atomic"
	"time"

	"cosmos/internal/core"
	"cosmos/internal/overlay"
	"cosmos/internal/stream"
)

// The auction scenario scales the paper's running example (Table 1 /
// Figure 3) to an arbitrary event count: open/close auction streams on
// the 4-node overlay, cfg.Subs pairs of q1 ("closed within three
// hours") and q2 ("closed within five hours") users whose queries the
// optimiser merges into one representative plan, driven at the held
// rate.
//
// The workload is constructed so expected counts are exact: item i
// opens at application time 3i hours and closes gap(i) later, where
// gap alternates 2h (matches both queries) and 4h (matches only q2's
// 5-hour window). Every close therefore yields exactly one result per
// q2 subscription and every even-sequence close exactly one per q1
// subscription — so q1 ledgers run at stride 2 and the scenario
// doubles as a correctness check of merging + split re-tightening
// under load: a mis-tightened q1 result stream shows up as duplicates.
const (
	auctionOpenStep = 3 // hours between opens
	auctionGapEven  = 2 // hours open→close, even items (inside q1's 3h)
	auctionGapOdd   = 4 // hours open→close, odd items (only q2's 5h)
)

func auctionQuery(windowHours int) string {
	return fmt.Sprintf(
		"SELECT C.seq, C.pubns FROM OpenAuctionL [Range %d Hour] O, ClosedAuctionL [Now] C WHERE O.itemID = C.itemID",
		windowHours)
}

func auctionInfos(rate int) (open, closed *stream.Info) {
	open = &stream.Info{
		Schema: stream.MustSchema("OpenAuctionL",
			stream.Field{Name: "itemID", Kind: stream.KindInt},
			stream.Field{Name: "seq", Kind: stream.KindInt},
			stream.Field{Name: "pubns", Kind: stream.KindInt},
			stream.Field{Name: "price", Kind: stream.KindFloat},
		),
		Rate: float64(rate) / 2,
		Stats: map[string]stream.AttrStats{
			"itemID": {Min: 0, Max: 1e9, Distinct: 1e9},
			"seq":    {Min: 0, Max: 1e9, Distinct: 1e9},
			"pubns":  {Min: 0, Max: 1e15, Distinct: 1e9},
			"price":  {Min: 0, Max: 1000, Distinct: 1000},
		},
	}
	closed = &stream.Info{
		Schema: stream.MustSchema("ClosedAuctionL",
			stream.Field{Name: "itemID", Kind: stream.KindInt},
			stream.Field{Name: "seq", Kind: stream.KindInt},
			stream.Field{Name: "pubns", Kind: stream.KindInt},
			stream.Field{Name: "buyer", Kind: stream.KindInt},
		),
		Rate: float64(rate) / 2,
		Stats: map[string]stream.AttrStats{
			"itemID": {Min: 0, Max: 1e9, Distinct: 1e9},
			"seq":    {Min: 0, Max: 1e9, Distinct: 1e9},
			"pubns":  {Min: 0, Max: 1e15, Distinct: 1e9},
			"buyer":  {Min: 0, Max: 1e6, Distinct: 1e6},
		},
	}
	return open, closed
}

// fourNodeTree is Figure 3's overlay: n1 — n2, n2 — n3, n2 — n4.
func fourNodeTree() *overlay.Tree {
	return &overlay.Tree{
		Root:      0,
		Parent:    []int{-1, 0, 1, 1},
		Children:  [][]int{{1}, {2, 3}, {}, {}},
		LinkDelay: []float64{0, 10, 10, 10},
	}
}

func runAuction(cfg Config) (*Report, error) {
	dep, err := startLive(core.Options{
		Tree:            fourNodeTree(),
		ProcessorNodes:  []int{0},
		Seed:            cfg.Seed,
		ExecWorkers:     cfg.Workers,
		IngestBatch:     1,
		CheckpointEvery: 0,
	}, false)
	if err != nil {
		return nil, err
	}
	defer dep.close()
	sys := dep.ls.System

	openInfo, closedInfo := auctionInfos(cfg.Rate)
	openPort, err := sys.RegisterStream(openInfo, 0)
	if err != nil {
		return nil, err
	}
	closePort, err := sys.RegisterStream(closedInfo, 0)
	if err != nil {
		return nil, err
	}

	// N items → 2N events; closes carry the accounted sequence space.
	items := cfg.targetEvents() / 2
	if items < 2 {
		items = 2
	}
	events := 2 * items
	evens := int64((items + 1) / 2)

	rec := NewRecorder(time.Now())
	var extractErr atomic.Value
	subscribe := func(windowHours int, stride int64, userNode int) error {
		track := rec.NewTrack(stride).Expect(0) // close 0 is even: due under both windows
		var x seqPub
		_, err := sys.Submit(auctionQuery(windowHours), userNode, func(t stream.Tuple) {
			seq, pubNs, err := x.extract(t)
			if err != nil {
				extractErr.CompareAndSwap(nil, err)
				return
			}
			// Ts is hour-scale application time here (window joins need
			// it), so no actual-publish stamp: service latency is absent.
			rec.Observe(track, seq, pubNs, -1)
		})
		return err
	}
	for i := 0; i < cfg.Subs; i++ {
		if err := subscribe(3, 2, 2); err != nil { // q1 at n3: even closes only
			return nil, err
		}
		if err := subscribe(5, 1, 3); err != nil { // q2 at n4: every close
			return nil, err
		}
	}
	sys.Quiesce() // settle subscription propagation
	statsBefore := sys.StatsSnapshot()
	expected := int64(cfg.Subs) * (evens + int64(items))

	var probe memProbe
	probe.start()
	pacer := NewPacer(cfg.Rate)
	rec.start = pacer.Start()

	// Merged open/close schedule in application-time order, generated
	// lazily: opens at 3i h, closes at 3i+gap(i) h (monotonic since the
	// step exceeds the gap spread).
	hour := int64(stream.Hour)
	openTs := func(i int) int64 { return int64(i) * auctionOpenStep * hour }
	closeTs := func(i int) int64 {
		gap := int64(auctionGapEven)
		if i%2 == 1 {
			gap = auctionGapOdd
		}
		return openTs(i) + gap*hour
	}
	no, nc := 0, 0
	for no < items || nc < items {
		intended := pacer.Tick()
		if no < items && (nc >= items || openTs(no) <= closeTs(nc)) {
			t := stream.MustTuple(openInfo.Schema, stream.Timestamp(openTs(no)),
				stream.Int(int64(no)), stream.Int(int64(no)), stream.Int(int64(intended)),
				stream.Float(float64(no%997)))
			if err := openPort.Publish(t); err != nil {
				return nil, fmt.Errorf("load: publish open: %w", err)
			}
			no++
		} else {
			t := stream.MustTuple(closedInfo.Schema, stream.Timestamp(closeTs(nc)),
				stream.Int(int64(nc)), stream.Int(int64(nc)), stream.Int(int64(intended)),
				stream.Int(int64(100+nc)))
			if err := closePort.Publish(t); err != nil {
				return nil, fmt.Errorf("load: publish close: %w", err)
			}
			nc++
		}
	}
	pubElapsed := pacer.Elapsed()

	deadline := time.Now().Add(cfg.DrainTimeout)
	waitUntil(deadline, func() bool { return rec.Delivered() >= expected })
	total := pacer.Elapsed()
	allocs := probe.allocsPer(rec.Delivered())
	if err, _ := extractErr.Load().(error); err != nil {
		return nil, err
	}

	lastEven := int64(2 * ((items - 1) / 2))
	for _, tr := range rec.Tracks() {
		if trStride(tr) == 2 {
			tr.AddTailLoss(lastEven)
		} else {
			tr.AddTailLoss(int64(items) - 1)
		}
	}
	lost, dups := rec.Totals()
	statsAfter := sys.StatsSnapshot()

	res := baseResults(pacer, rec, pubElapsed, total)
	res.Expected = expected
	res.Lost = lost
	res.Duplicated = dups
	res.AllocsPerResult = allocs
	return &Report{
		Area: "auction",
		Config: ReportConfig{
			Backend:    "live",
			RatePerSec: cfg.Rate,
			DurationS:  cfg.Duration.Seconds(),
			Events:     events,
			Subs:       2 * cfg.Subs,
			Workers:    cfg.Workers,
			Seed:       cfg.Seed,
		},
		Results: res,
		Stages:  stageReports(statsBefore, statsAfter),
	}, nil
}

// trStride reads a track's stride (accounting helper; tracks are
// package-local).
func trStride(t *Track) int64 { return t.stride }
