// Integration tests of the end-to-end observability layer: full
// instrumentation must never change what the system computes, and the
// three exposure surfaces — stage counters, sampled histograms, tuple
// traces — must agree with each other and with ground truth counted at
// the client.
package cosmos_test

import (
	"context"
	"testing"
	"time"

	"cosmos"
	"cosmos/internal/core"
	"cosmos/internal/obs"
	"cosmos/internal/sensordata"
)

// fullObs samples every event and traces every 4th tuple — the heaviest
// instrumentation the system offers.
func fullObs() cosmos.ObsOptions {
	return cosmos.ObsOptions{SampleEvery: 1, TraceEvery: 4}
}

// TestObservabilityDifferential re-runs the backend differential with
// full instrumentation on: per-event latency sampling plus 1-in-4 tuple
// tracing on the sync, live and TCP backends must still yield result
// sequences identical to the uninstrumented synchronous reference.
func TestObservabilityDifferential(t *testing.T) {
	queries := diffWorkloadQueries(t)

	// Uninstrumented reference (default counters-only observability).
	ref, err := core.NewSystem(diffOptions())
	if err != nil {
		t.Fatal(err)
	}
	want := driveClient(t, cosmos.Embed(ref), queries)

	t.Run("sync", func(t *testing.T) {
		opts := diffOptions()
		opts.Obs = fullObs()
		sys, err := core.NewSystem(opts)
		if err != nil {
			t.Fatal(err)
		}
		got := driveClient(t, cosmos.Embed(sys), queries)
		compareBackendSequences(t, got, want)
		if n := sys.Obs().StageCount(obs.StageIngest); n != int64(diffRounds*diffStreams) {
			t.Errorf("ingest count %d, want %d", n, diffRounds*diffStreams)
		}
		if len(sys.Obs().Traces()) == 0 {
			t.Error("no traces retained with TraceEvery=4")
		}
	})
	t.Run("live", func(t *testing.T) {
		opts := diffOptions()
		opts.ExecWorkers = 2
		opts.IngestBatch = 8
		opts.Obs = fullObs()
		ls, err := core.NewLiveSystem(opts)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(ls.Close)
		got := driveClient(t, cosmos.EmbedLive(ls), queries)
		compareBackendSequences(t, got, want)
	})
	t.Run("remote", func(t *testing.T) {
		opts := diffOptions()
		opts.ExecWorkers = 2
		opts.IngestBatch = 8
		opts.Obs = fullObs()
		addr := startServerWith(t, opts)
		client, err := cosmos.Dial(addr)
		if err != nil {
			t.Fatal(err)
		}
		got := driveClient(t, client, queries)
		compareBackendSequences(t, got, want)

		// The stats shape must survive the wire: re-dial and read the
		// daemon's counters back through MsgStats.
		probe, err := cosmos.Dial(addr)
		if err != nil {
			t.Fatal(err)
		}
		defer probe.Close()
		st, err := probe.Stats()
		if err != nil {
			t.Fatal(err)
		}
		if st.Ingested != int64(diffRounds*diffStreams) {
			t.Errorf("remote stats: Ingested %d, want %d", st.Ingested, diffRounds*diffStreams)
		}
		if st.SampleEvery != 1 {
			t.Errorf("remote stats: SampleEvery %d, want 1", st.SampleEvery)
		}
		if len(st.Stages) != int(obs.NumStages) {
			t.Fatalf("remote stats: %d stages, want %d", len(st.Stages), int(obs.NumStages))
		}
		for _, s := range st.Stages {
			switch s.Stage {
			case "ingest", "route", "exec", "deliver", "wire":
				if s.Count > 0 && s.Lat.Count == 0 {
					t.Errorf("stage %s: %d events but empty histogram at SampleEvery=1", s.Stage, s.Count)
				}
			default:
				t.Errorf("unknown stage %q over the wire", s.Stage)
			}
		}
		if wire := st.Stages[obs.StageWire].Count; wire == 0 {
			t.Error("remote stats: wire stage count is zero after a remote differential")
		}
		if st.Wire == nil || st.Wire.Results == 0 {
			t.Errorf("remote stats: Wire series missing or empty: %+v", st.Wire)
		}
	})
}

// TestTraceHistogramCrossCheck drives a known workload through an
// instrumented live system and cross-checks every surface against
// ground truth: stage counters against tuples published and results
// received, histogram totals against stage counters (SampleEvery=1
// times every event), per-plan counters against the exec stage, the
// systematic trace cohort against its expected size, and the cost feed
// distilled from the same snapshot.
func TestTraceHistogramCrossCheck(t *testing.T) {
	const (
		published  = 64
		traceEvery = 4
	)
	opts := core.Options{
		Nodes: 16, Seed: 3, ExecWorkers: 2,
		Obs: cosmos.ObsOptions{SampleEvery: 1, TraceEvery: traceEvery},
	}
	ls, err := core.NewLiveSystem(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(ls.Close)
	client := cosmos.EmbedLive(ls)

	src, err := client.RegisterStream(sensordata.Info(0), 1)
	if err != nil {
		t.Fatal(err)
	}
	sub, err := client.Submit(context.Background(),
		"SELECT station, temperature FROM Sensor00 [Now]", 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := client.Quiesce(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < published; i++ {
		if err := src.Publish(diffTuple(0, i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := client.Quiesce(); err != nil {
		t.Fatal(err)
	}
	// Snapshot before Cancel: cancelling the last member query
	// uninstalls the plan, and with it the per-plan series.
	st := ls.System.StatsSnapshot()

	if err := sub.Cancel(); err != nil {
		t.Fatal(err)
	}
	results := 0
	for range sub.Results() {
		results++
	}
	if results == 0 {
		t.Fatal("select-all query delivered no results")
	}

	// Counters vs ground truth.
	if st.Ingested != published {
		t.Errorf("Ingested %d, want %d", st.Ingested, published)
	}
	if st.Delivered != int64(results) {
		t.Errorf("Delivered %d, want %d results the client counted", st.Delivered, results)
	}

	// Histogram totals vs counters: at SampleEvery=1 every event is in
	// the histogram, so snapshot counts must equal stage counts exactly.
	if st.SampleEvery != 1 {
		t.Fatalf("SampleEvery %d, want 1", st.SampleEvery)
	}
	for _, s := range st.Stages {
		if uint64(s.Count) != s.Lat.Count {
			t.Errorf("stage %s: count %d != histogram total %d", s.Stage, s.Count, s.Lat.Count)
		}
		if s.Lat.Count > 0 && s.Lat.Quantile(0.99) <= 0 {
			t.Errorf("stage %s: non-empty histogram reports p99 %d", s.Stage, s.Lat.Quantile(0.99))
		}
	}

	// Per-plan series vs the exec stage: plans partition exec pushes.
	var pushes, emits, tuplesRun int64
	for _, p := range st.Plans {
		pushes += p.Pushes
		emits += p.Emits
		if uint64(p.Pushes) != p.PushLat.Count {
			t.Errorf("plan %s: %d pushes but %d histogram samples", p.Plan, p.Pushes, p.PushLat.Count)
		}
		if len(p.Queries) == 0 {
			t.Errorf("plan %s: no member queries reported", p.Plan)
		}
	}
	if execCount := st.Stages[obs.StageExec].Count; pushes != execCount {
		t.Errorf("plan pushes sum %d != exec stage count %d", pushes, execCount)
	}
	if emits != int64(results) {
		t.Errorf("plan emits sum %d != %d delivered results", emits, results)
	}
	for _, w := range st.Workers {
		tuplesRun += w.Tuples
	}
	if tuplesRun != pushes {
		t.Errorf("worker tuple sum %d != plan pushes %d", tuplesRun, pushes)
	}

	// The systematic trace cohort: every traceEvery-th publish, so
	// exactly published/traceEvery traces, each marked through route,
	// exec and deliver with monotone offsets.
	traces := ls.System.Obs().Traces()
	if len(traces) != published/traceEvery {
		t.Fatalf("%d traces, want %d", len(traces), published/traceEvery)
	}
	for _, tr := range traces {
		seen := map[string]bool{}
		last := time.Duration(-1)
		for _, span := range tr.Breakdown() {
			seen[span.Stage] = true
			if span.Offset < last {
				t.Errorf("trace %d: stage %s offset %v before previous %v",
					tr.Key, span.Stage, span.Offset, last)
			}
			last = span.Offset
		}
		for _, stage := range []string{"route", "exec", "deliver"} {
			if !seen[stage] {
				t.Errorf("trace %d: no %s mark (events: %v)", tr.Key, stage, tr.Events)
			}
		}
		if tr.End() <= 0 {
			t.Errorf("trace %d: non-positive end-to-end latency %v", tr.Key, tr.End())
		}
	}

	// The cost feed distilled from the same snapshot (what `cosmosctl
	// top` renders and the adaptive optimiser will consume).
	feed := core.BuildCostFeed(core.SystemStats{}, st, time.Second)
	if feed.IngestRate != published {
		t.Errorf("feed ingest rate %.1f, want %d over a 1s window", feed.IngestRate, published)
	}
	planFeed := false
	for _, p := range feed.Plans {
		planFeed = true
		if p.Selectivity <= 0 {
			t.Errorf("plan %s: feed selectivity %.2f, want > 0", p.Plan, p.Selectivity)
		}
		if p.PushP99 <= 0 {
			t.Errorf("plan %s: feed push p99 %v, want > 0", p.Plan, p.PushP99)
		}
	}
	if !planFeed {
		t.Error("cost feed carries no plans")
	}
}
