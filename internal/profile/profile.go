// Package profile implements COSMOS data-interest profiles (paper §3.1).
//
// A profile π is a triple ⟨S, P, F⟩ where S is a set of stream names, P
// specifies the attributes of streams in S that are of interest (the
// projection the network applies early, the paper's extension over
// traditional CBN), and F is a set of filters. Each filter is defined on
// one stream and is a disjunction of conjunctions of constraints on that
// stream's attributes; a datagram is covered by the profile if it is
// covered by any filter of its stream.
package profile

import (
	"fmt"
	"sort"
	"strings"

	"cosmos/internal/predicate"
	"cosmos/internal/stream"
)

// Filter is the per-stream filter of a profile: a DNF over the stream's
// attribute namespace.
type Filter struct {
	Stream string
	Pred   predicate.DNF
}

// Covers reports whether a tuple of the filter's stream satisfies the
// filter. Errors (schema mismatch) surface as non-coverage with the error.
func (f Filter) Covers(t stream.Tuple) (bool, error) {
	return f.Pred.Eval(t)
}

// Profile is the data-interest profile ⟨S, P, F⟩.
type Profile struct {
	// Streams is S: the requested stream names, sorted.
	Streams []string
	// Attrs is P: per stream, the attribute names of interest, sorted.
	// A nil entry for a stream means "all attributes".
	Attrs map[string][]string
	// Filters is F: per stream, the filter DNF. A missing entry means the
	// stream is requested unconditionally (TRUE).
	Filters map[string]predicate.DNF
}

// New builds an empty profile.
func New() *Profile {
	return &Profile{
		Attrs:   map[string][]string{},
		Filters: map[string]predicate.DNF{},
	}
}

// AddStream registers interest in a stream with a projection set (nil for
// all attributes) and a filter (nil for TRUE).
func (p *Profile) AddStream(name string, attrs []string, filter predicate.DNF) {
	if !p.hasStream(name) {
		p.Streams = append(p.Streams, name)
		sort.Strings(p.Streams)
	}
	if attrs != nil {
		p.Attrs[name] = stream.SortedAttrSet(attrs)
	} else {
		delete(p.Attrs, name)
	}
	if filter != nil {
		p.Filters[name] = filter
	} else {
		delete(p.Filters, name)
	}
}

func (p *Profile) hasStream(name string) bool {
	for _, s := range p.Streams {
		if s == name {
			return true
		}
	}
	return false
}

// Covers reports whether the profile covers a datagram: the datagram's
// stream must be in S and satisfy that stream's filter (paper §3.1).
// This is the interpreted matcher; steady-state routing uses the
// compiled views, and the delivery proxy's defensive re-check here is
// per-result, not per-published-tuple.
//
//cosmos:hotpath-ok
func (p *Profile) Covers(t stream.Tuple) (bool, error) {
	if t.Schema == nil || !p.hasStream(t.Schema.Stream) {
		return false, nil
	}
	f, ok := p.Filters[t.Schema.Stream]
	if !ok || f.IsTrue() {
		return true, nil
	}
	return f.Eval(t)
}

// Project applies the early projection of the profile to a covered
// datagram, returning the tuple restricted to the interest attributes.
// The projected schema is cached by the caller in practice; this
// convenience recomputes it.
func (p *Profile) Project(t stream.Tuple) (stream.Tuple, error) {
	attrs, ok := p.Attrs[t.Schema.Stream]
	if !ok {
		return t, nil
	}
	ps, err := t.Schema.Project(attrs)
	if err != nil {
		return stream.Tuple{}, err
	}
	return t.Project(ps)
}

// AttrsFor returns the projection set for a stream; nil means all.
func (p *Profile) AttrsFor(name string) []string { return p.Attrs[name] }

// RemoveStream drops all interest in a stream, reporting whether the
// profile becomes empty. Brokers use it to garbage-collect state for
// retired result streams.
func (p *Profile) RemoveStream(name string) (empty bool) {
	for i, s := range p.Streams {
		if s == name {
			p.Streams = append(p.Streams[:i], p.Streams[i+1:]...)
			break
		}
	}
	delete(p.Attrs, name)
	delete(p.Filters, name)
	return len(p.Streams) == 0
}

// FilterFor returns the filter for a stream; a TRUE DNF when absent.
func (p *Profile) FilterFor(name string) predicate.DNF {
	if f, ok := p.Filters[name]; ok {
		return f
	}
	return predicate.True()
}

// Clone returns a deep copy.
func (p *Profile) Clone() *Profile {
	out := New()
	out.Streams = append([]string(nil), p.Streams...)
	for k, v := range p.Attrs {
		out.Attrs[k] = append([]string(nil), v...)
	}
	for k, v := range p.Filters {
		out.Filters[k] = v.Clone()
	}
	return out
}

// Merge unions another profile into this one, in place: streams union,
// projection sets union (nil/all dominates), filters OR-ed. This is the
// aggregation a CBN broker applies to the profiles of one interface.
func (p *Profile) Merge(other *Profile) {
	for _, s := range other.Streams {
		mergedAttrs := unionAttrs(p, other, s)
		var mergedFilter predicate.DNF
		switch {
		case !p.hasStream(s):
			mergedFilter = other.FilterFor(s)
		default:
			a, b := p.FilterFor(s), other.FilterFor(s)
			if a.IsTrue() || b.IsTrue() {
				mergedFilter = nil // TRUE
			} else {
				mergedFilter = a.Or(b)
			}
		}
		if mergedFilter != nil && mergedFilter.IsTrue() {
			mergedFilter = nil
		}
		p.AddStream(s, mergedAttrs, mergedFilter)
	}
}

// unionAttrs unions the projection sets of a stream across two profiles,
// where nil means "all attributes" and therefore dominates.
func unionAttrs(a, b *Profile, s string) []string {
	aAttrs, aHas := a.Attrs[s], a.hasStream(s)
	bAttrs := b.Attrs[s]
	if (aHas && aAttrs == nil) || bAttrs == nil {
		return nil
	}
	if !aHas {
		return bAttrs
	}
	set := map[string]bool{}
	for _, x := range aAttrs {
		set[x] = true
	}
	for _, x := range bAttrs {
		set[x] = true
	}
	out := make([]string, 0, len(set))
	for x := range set {
		out = append(out, x)
	}
	sort.Strings(out)
	return out
}

// CoversProfile reports whether p covers q: every datagram covered by q
// is covered by p AND p requests at least q's attributes. Brokers use
// this to suppress redundant subscription propagation (covering-based
// routing).
func (p *Profile) CoversProfile(q *Profile) bool {
	for _, s := range q.Streams {
		if !p.hasStream(s) {
			return false
		}
		// Projection: p's attrs must be a superset (nil = all).
		pAttrs, qAttrs := p.Attrs[s], q.Attrs[s]
		if pAttrs != nil {
			if qAttrs == nil {
				return false
			}
			set := map[string]bool{}
			for _, x := range pAttrs {
				set[x] = true
			}
			for _, x := range qAttrs {
				if !set[x] {
					return false
				}
			}
		}
		// Filter: q's filter must imply p's.
		if !predicate.ImpliesDNF(q.FilterFor(s), p.FilterFor(s)) {
			return false
		}
	}
	return true
}

// String renders the profile compactly for logs and tests.
func (p *Profile) String() string {
	var b strings.Builder
	b.WriteString("π⟨S={")
	b.WriteString(strings.Join(p.Streams, ","))
	b.WriteString("}")
	for _, s := range p.Streams {
		if attrs, ok := p.Attrs[s]; ok {
			fmt.Fprintf(&b, " P(%s)={%s}", s, strings.Join(attrs, ","))
		}
		if f, ok := p.Filters[s]; ok && !f.IsTrue() {
			fmt.Fprintf(&b, " F(%s)=%s", s, f)
		}
	}
	b.WriteString("⟩")
	return b.String()
}

// Equal reports structural equality of two profiles (after canonical
// ordering). Filters compare by canonical string rendering.
func (p *Profile) Equal(q *Profile) bool {
	if len(p.Streams) != len(q.Streams) {
		return false
	}
	for i := range p.Streams {
		if p.Streams[i] != q.Streams[i] {
			return false
		}
	}
	for _, s := range p.Streams {
		pa, qa := p.Attrs[s], q.Attrs[s]
		if (pa == nil) != (qa == nil) || len(pa) != len(qa) {
			return false
		}
		for i := range pa {
			if pa[i] != qa[i] {
				return false
			}
		}
		if p.FilterFor(s).String() != q.FilterFor(s).String() {
			return false
		}
	}
	return true
}
