package sim

import (
	"testing"

	"cosmos/internal/merge"
	"cosmos/internal/querygen"
)

// smallCfg keeps unit-test runs fast; benches use paper scale.
func smallCfg(dist querygen.Distribution, seed int64) Config {
	return Config{
		Nodes:        200,
		EdgesPerNode: 2,
		Dist:         dist,
		Seed:         seed,
		Mode:         merge.ExactUnion,
	}
}

func TestRunnerBasics(t *testing.T) {
	r, err := NewRunner(smallCfg(querygen.Zipf15, 1))
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Insert(300); err != nil {
		t.Fatal(err)
	}
	res := r.Evaluate()
	if res.Queries != 300 {
		t.Fatalf("queries = %d", res.Queries)
	}
	if res.Groups <= 0 || res.Groups > 300 {
		t.Fatalf("groups = %d", res.Groups)
	}
	if res.GroupingRatio <= 0 || res.GroupingRatio > 1 {
		t.Fatalf("grouping ratio = %f", res.GroupingRatio)
	}
	if res.BenefitRatio < 0 || res.BenefitRatio >= 1 {
		t.Fatalf("benefit ratio = %f", res.BenefitRatio)
	}
	if res.MergedCost > res.UnmergedCost {
		t.Fatalf("merged cost %f exceeds unmerged %f", res.MergedCost, res.UnmergedCost)
	}
}

func TestSkewIncreasesBenefit(t *testing.T) {
	// The paper's headline: zipf workloads merge better than uniform,
	// and benefit grows with the skew parameter.
	benefit := func(dist querygen.Distribution) float64 {
		total := 0.0
		for seed := int64(0); seed < 3; seed++ {
			r, err := NewRunner(smallCfg(dist, seed))
			if err != nil {
				t.Fatal(err)
			}
			if err := r.Insert(500); err != nil {
				t.Fatal(err)
			}
			total += r.Evaluate().BenefitRatio
		}
		return total / 3
	}
	u := benefit(querygen.Uniform)
	z1 := benefit(querygen.Zipf10)
	z2 := benefit(querygen.Zipf20)
	if !(u < z1 && z1 < z2) {
		t.Errorf("benefit ordering violated: uniform=%f zipf1=%f zipf2=%f", u, z1, z2)
	}
}

func TestBenefitGrowsWithQueries(t *testing.T) {
	// Figure 4(a): more queries → more sharing opportunities.
	results, err := Sweep(smallCfg(querygen.Zipf15, 4), []int{200, 600, 1200})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("results = %d", len(results))
	}
	if !(results[0].BenefitRatio < results[2].BenefitRatio) {
		t.Errorf("benefit did not grow: %f -> %f",
			results[0].BenefitRatio, results[2].BenefitRatio)
	}
}

func TestGroupingRatioFallsWithQueriesAndSkew(t *testing.T) {
	// Figure 4(b): grouping ratio falls as queries accumulate, and skew
	// lowers it further.
	res, err := Sweep(smallCfg(querygen.Zipf15, 5), []int{200, 1000})
	if err != nil {
		t.Fatal(err)
	}
	if res[1].GroupingRatio >= res[0].GroupingRatio {
		t.Errorf("grouping ratio did not fall: %f -> %f",
			res[0].GroupingRatio, res[1].GroupingRatio)
	}
	uni, err := Sweep(smallCfg(querygen.Uniform, 5), []int{1000})
	if err != nil {
		t.Fatal(err)
	}
	if res[1].GroupingRatio >= uni[0].GroupingRatio {
		t.Errorf("skew should lower grouping ratio: zipf=%f uniform=%f",
			res[1].GroupingRatio, uni[0].GroupingRatio)
	}
}

func TestDeterminism(t *testing.T) {
	a, err := Sweep(smallCfg(querygen.Zipf10, 9), []int{400})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Sweep(smallCfg(querygen.Zipf10, 9), []int{400})
	if err != nil {
		t.Fatal(err)
	}
	if a[0].BenefitRatio != b[0].BenefitRatio || a[0].Groups != b[0].Groups {
		t.Error("same seed must reproduce identical results")
	}
}

func TestIncludeInputSideDilutesRatio(t *testing.T) {
	cfg := smallCfg(querygen.Zipf15, 6)
	without, err := Sweep(cfg, []int{400})
	if err != nil {
		t.Fatal(err)
	}
	cfg.IncludeInputSide = true
	with, err := Sweep(cfg, []int{400})
	if err != nil {
		t.Fatal(err)
	}
	if with[0].BenefitRatio >= without[0].BenefitRatio {
		t.Errorf("input side should dilute benefit: %f vs %f",
			with[0].BenefitRatio, without[0].BenefitRatio)
	}
	if with[0].BenefitRatio <= 0 {
		t.Error("benefit should remain positive")
	}
}

func TestSweepValidation(t *testing.T) {
	if _, err := Sweep(smallCfg(querygen.Uniform, 1), []int{100, 50}); err == nil {
		t.Error("decreasing checkpoints must fail")
	}
}

func TestAverageResults(t *testing.T) {
	a := []*Result{{Queries: 10, Groups: 4, GroupingRatio: 0.4, BenefitRatio: 0.2, UnmergedCost: 100, MergedCost: 80}}
	b := []*Result{{Queries: 10, Groups: 6, GroupingRatio: 0.6, BenefitRatio: 0.4, UnmergedCost: 200, MergedCost: 120}}
	avg := AverageResults([][]*Result{a, b})
	approx := func(x, y float64) bool { return x-y < 1e-9 && y-x < 1e-9 }
	if avg[0].Groups != 5 || !approx(avg[0].GroupingRatio, 0.5) || !approx(avg[0].BenefitRatio, 0.3) {
		t.Errorf("avg = %+v", avg[0])
	}
	if AverageResults(nil) != nil {
		t.Error("empty input should return nil")
	}
}

func TestPaperCheckpoints(t *testing.T) {
	cps := PaperCheckpoints()
	if len(cps) != 5 || cps[0] != 2000 || cps[4] != 10000 {
		t.Errorf("checkpoints = %v", cps)
	}
}

func TestHullModeRuns(t *testing.T) {
	cfg := smallCfg(querygen.Zipf15, 7)
	cfg.Mode = merge.ConvexHull
	res, err := Sweep(cfg, []int{300})
	if err != nil {
		t.Fatal(err)
	}
	if res[0].BenefitRatio < 0 {
		t.Errorf("hull benefit = %f", res[0].BenefitRatio)
	}
}

// TestHullVsUnionSameRegime: the ablation A4 claim — hull and union
// representative composition land in the same benefit regime. The
// directions can cross either way: hull loosens predicates (larger true
// result) but its single-interval selectivity estimate is exact where
// the union's independence assumption overcounts overlapping disjuncts,
// so under estimated rates hull sometimes reports slightly HIGHER
// benefit. The test pins both within a factor band of each other.
func TestHullVsUnionSameRegime(t *testing.T) {
	var union, hull float64
	for seed := int64(0); seed < 3; seed++ {
		cfg := smallCfg(querygen.Zipf15, seed)
		u, err := Sweep(cfg, []int{400})
		if err != nil {
			t.Fatal(err)
		}
		cfg.Mode = merge.ConvexHull
		h, err := Sweep(cfg, []int{400})
		if err != nil {
			t.Fatal(err)
		}
		union += u[0].BenefitRatio
		hull += h[0].BenefitRatio
	}
	union /= 3
	hull /= 3
	if hull < union*0.5 || hull > union*1.5 {
		t.Errorf("hull benefit %f out of regime vs union %f", hull, union)
	}
}
