// Package hotpath checks the repo's allocation/locking discipline on
// the per-tuple data path. Functions annotated //cosmos:hotpath (broker
// routing, exec push, result delivery, wire encode, obs record) carry
// the 0–3 allocs/tuple budget the benchmarks pin; this analyzer turns
// the budget's structural preconditions into compile-time errors so a
// regression fails the build, not just the bench.
package hotpath

import (
	"go/ast"
	"go/token"
	"go/types"

	"cosmos/internal/analysis/framework"
)

// Analyzer is the hotpath check. Inside a //cosmos:hotpath function it
// flags:
//
//   - calls into fmt or reflect (formatting and reflection are the two
//     classic silent allocators);
//   - ranging over a map (hash-order walk; also defeats the
//     deterministic-replay contract of the differential tests);
//   - non-constant string concatenation (allocates per tuple);
//   - closure creation, except immediately-invoked literals and
//     defer/go operands (non-escaping, open-coded by the compiler);
//   - go statements (a goroutine per tuple is never the design);
//   - calls whose callee is not vouched for: a callee must be a
//     builtin, a conversion, a function of an allowlisted leaf package
//     (sync, sync/atomic, math, math/bits, time, encoding/binary,
//     unicode/utf8), or carry //cosmos:hotpath (checked recursively) or
//     //cosmos:hotpath-ok (audited boundary). Dynamic calls through
//     func values and interface methods are vouched by annotating the
//     named func type, the field/variable declaration, or the
//     interface method.
//
// Deliberate cold branches inside hot functions (panic containment,
// fallback paths) are documented with `//lint:ignore hotpath <reason>`.
var Analyzer = &framework.Analyzer{
	Name: "hotpath",
	Doc:  "enforce the allocation/locking discipline of //cosmos:hotpath functions",
	Run:  run,
}

// allowedPkgs are leaf packages whose functions are callable from hot
// code without annotation: allocation-free by contract (or, for sync
// and time, deliberate costs the design accounts for — plan locks,
// monotonic clock reads).
var allowedPkgs = map[string]bool{
	"sync":            true,
	"sync/atomic":     true,
	"math":            true,
	"math/bits":       true,
	"time":            true,
	"encoding/binary": true,
	"unicode/utf8":    true,
}

// deniedPkgs always draw a targeted diagnostic, annotation or not.
var deniedPkgs = map[string]bool{
	"fmt":     true,
	"reflect": true,
}

func run(pass *framework.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, _ := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if obj == nil || pass.Prog.Annot(obj)&framework.AnnotHotpath == 0 {
				continue
			}
			checkFunc(pass, fd)
		}
	}
	return nil
}

func checkFunc(pass *framework.Pass, fd *ast.FuncDecl) {
	info := pass.TypesInfo

	// First pass: func literals that never escape — immediately
	// invoked, or the operand of defer (open-coded, stack-allocated).
	// go-statement operands are collected too so the literal is not
	// double-reported on top of the go diagnostic itself.
	nonEscaping := map[*ast.FuncLit]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if lit, ok := framework.Unparen(n.Fun).(*ast.FuncLit); ok {
				nonEscaping[lit] = true
			}
		case *ast.DeferStmt:
			if lit, ok := framework.Unparen(n.Call.Fun).(*ast.FuncLit); ok {
				nonEscaping[lit] = true
			}
		case *ast.GoStmt:
			if lit, ok := framework.Unparen(n.Call.Fun).(*ast.FuncLit); ok {
				nonEscaping[lit] = true
			}
		}
		return true
	})

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			pass.Reportf(n.Pos(), "go statement in hot path function %s (goroutine per tuple)", fd.Name.Name)
		case *ast.RangeStmt:
			if t := info.TypeOf(n.X); t != nil {
				if _, ok := t.Underlying().(*types.Map); ok {
					pass.Reportf(n.Pos(), "range over map in hot path function %s (hash-order walk, non-deterministic)", fd.Name.Name)
				}
			}
		case *ast.FuncLit:
			if !nonEscaping[n] {
				pass.Reportf(n.Pos(), "closure created in hot path function %s (allocates; hoist it to construction time)", fd.Name.Name)
			}
		case *ast.BinaryExpr:
			if n.Op == token.ADD && isNonConstString(info, n) {
				pass.Reportf(n.Pos(), "string concatenation in hot path function %s (allocates per tuple)", fd.Name.Name)
			}
		case *ast.AssignStmt:
			if n.Tok == token.ADD_ASSIGN && len(n.Lhs) == 1 && isStringType(info.TypeOf(n.Lhs[0])) {
				pass.Reportf(n.Pos(), "string concatenation in hot path function %s (allocates per tuple)", fd.Name.Name)
			}
		case *ast.CallExpr:
			checkCall(pass, fd, n)
		}
		return true
	})
}

func isStringType(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// isNonConstString reports a string-typed + expression that is not
// folded to a constant by the compiler.
func isNonConstString(info *types.Info, e *ast.BinaryExpr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Value != nil {
		return false
	}
	return isStringType(tv.Type)
}

func checkCall(pass *framework.Pass, fd *ast.FuncDecl, call *ast.CallExpr) {
	info := pass.TypesInfo
	if framework.IsConversion(info, call) {
		return
	}
	if _, ok := framework.Unparen(call.Fun).(*ast.FuncLit); ok {
		return // immediately-invoked literal; its body is checked in place
	}
	obj := framework.Callee(info, call)
	switch obj := obj.(type) {
	case *types.Builtin:
		return
	case *types.TypeName:
		return // conversion spelled through a named type
	case *types.Func:
		checkFuncCallee(pass, fd, call, obj)
	case *types.Var:
		// Call through a func value: vouched by an annotation on the
		// variable/field declaration or on the value's named type.
		if pass.Prog.Annot(obj)&(framework.AnnotHotpathOK|framework.AnnotHotpath) != 0 {
			return
		}
		if namedTypeVouched(pass, info.TypeOf(call.Fun)) {
			return
		}
		pass.Reportf(call.Pos(),
			"hot path function %s calls through func value %s: annotate its declaration or its named type //cosmos:hotpath-ok",
			fd.Name.Name, obj.Name())
	case *types.Nil:
		// Impossible; ignore.
	default:
		if namedTypeVouched(pass, info.TypeOf(call.Fun)) {
			return
		}
		pass.Reportf(call.Pos(),
			"hot path function %s makes a dynamic call that cannot be vouched for; name the func value and annotate it //cosmos:hotpath-ok",
			fd.Name.Name)
	}
}

func checkFuncCallee(pass *framework.Pass, fd *ast.FuncDecl, call *ast.CallExpr, callee *types.Func) {
	pkg := callee.Pkg()
	if pkg == nil {
		return // universe-scope methods (error.Error)
	}
	if deniedPkgs[pkg.Path()] {
		pass.Reportf(call.Pos(),
			"hot path function %s calls %s: fmt and reflect are banned on the data path",
			fd.Name.Name, callee.FullName())
		return
	}
	annot := pass.Prog.Annot(callee)
	if annot&(framework.AnnotHotpath|framework.AnnotHotpathOK) != 0 {
		return
	}
	// An interface method can also be vouched by its interface type.
	if sig, ok := callee.Type().(*types.Signature); ok && sig.Recv() != nil {
		if types.IsInterface(sig.Recv().Type()) && namedTypeVouched(pass, sig.Recv().Type()) {
			return
		}
	}
	if pass.Prog.HasPackage(pkg.Path()) {
		pass.Reportf(call.Pos(),
			"hot path function %s calls %s, which is neither //cosmos:hotpath nor //cosmos:hotpath-ok",
			fd.Name.Name, callee.FullName())
		return
	}
	if allowedPkgs[pkg.Path()] {
		return
	}
	pass.Reportf(call.Pos(),
		"hot path function %s calls %s: package %s is not on the hot-path allowlist",
		fd.Name.Name, callee.FullName(), pkg.Path())
}

// namedTypeVouched reports whether t is a named type whose declaration
// carries a hotpath annotation.
func namedTypeVouched(pass *framework.Pass, t types.Type) bool {
	if t == nil {
		return false
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	return pass.Prog.Annot(named.Obj())&(framework.AnnotHotpathOK|framework.AnnotHotpath) != 0
}
