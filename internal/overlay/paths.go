// Package overlay builds and maintains the dissemination structures of
// the COSMOS data layer (paper §3.2): nodes are organised into overlay
// dissemination trees whose shape is optimised against a configurable
// cost function of server workload and overlay link delay, with periodic
// local reorganisation (refs [18, 19] of the paper).
package overlay

import (
	"container/heap"
	"math"

	"cosmos/internal/topology"
)

// Dijkstra computes shortest path delays from src over the topology,
// returning per-node distance (ms) and predecessor (-1 for src/unreached).
func Dijkstra(g *topology.Graph, src int) (dist []float64, prev []int) {
	n := g.NumNodes()
	dist = make([]float64, n)
	prev = make([]int, n)
	for i := range dist {
		dist[i] = math.Inf(1)
		prev[i] = -1
	}
	dist[src] = 0
	pq := &nodeHeap{{node: src, key: 0}}
	for pq.Len() > 0 {
		item := heap.Pop(pq).(heapItem)
		if item.key > dist[item.node] {
			continue
		}
		for _, e := range g.Adj[item.node] {
			if nd := item.key + e.Delay; nd < dist[e.To] {
				dist[e.To] = nd
				prev[e.To] = item.node
				heap.Push(pq, heapItem{node: e.To, key: nd})
			}
		}
	}
	return dist, prev
}

// AllPairsDelays runs Dijkstra from every node. O(V·E·logV); fine for the
// 1000-node experiment scale.
func AllPairsDelays(g *topology.Graph) [][]float64 {
	n := g.NumNodes()
	out := make([][]float64, n)
	for i := 0; i < n; i++ {
		out[i], _ = Dijkstra(g, i)
	}
	return out
}

type heapItem struct {
	node int
	key  float64
}

type nodeHeap []heapItem

func (h nodeHeap) Len() int            { return len(h) }
func (h nodeHeap) Less(i, j int) bool  { return h[i].key < h[j].key }
func (h nodeHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *nodeHeap) Push(x interface{}) { *h = append(*h, x.(heapItem)) }
func (h *nodeHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}
