package transport

import (
	"bufio"
	crand "crypto/rand"
	"encoding/binary"
	"encoding/gob"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"net"
	"sort"
	"strings"
	"sync"
	"time"

	"cosmos/internal/stream"
)

// Client is a COSMOS service client: it registers streams, publishes
// tuples, and submits continuous queries over one TCP connection.
// Result tuples arrive asynchronously on per-query callbacks; a
// per-query end callback fires exactly once when the subscription
// terminates (local cancel, server shutdown, or connection loss).
//
// A plain client (Dial) is fail-fast: connection loss ends every
// subscription with the error. A resilient client (DialConfig with a
// Resilience) instead reconnects with backoff, resumes its
// subscriptions at the server's new session epoch, and reports the
// delivery gap on each — see Resilience. Calls made during an outage
// park until the connection is back (or the retry budget is spent);
// a call whose connection died mid-flight is retried on the next
// connection, so Publish under resilience is at-least-once.
type Client struct {
	addr      string
	res       Resilience
	resilient bool
	sessionID string
	hb        time.Duration
	reqWire   int // highest wire version this client offers in hellos

	// wmu serialises gob writes and guards swapping the encoder on
	// reconnect. It is separate from mu so a blocking Encode (full
	// client→server TCP buffer) never holds the state lock the read
	// loop needs — the split the server's connWriter makes.
	wmu sync.Mutex
	enc *gob.Encoder // guarded by wmu

	mu         sync.Mutex
	cond       *sync.Cond              // broadcast on any state flip (up/terminal/failed/closed)
	conn       net.Conn                // guarded by mu
	readerDone chan struct{}           // guarded by mu; closed when the current connection's read loop exits
	up         bool                    // guarded by mu
	epoch      uint64                  // guarded by mu
	nextID     uint64                  // guarded by mu
	pending    map[uint64]*pendingCall // guarded by mu
	subs       map[string]*clientSub   // guarded by mu; by logical (first-assigned) tag
	byServer   map[string]*clientSub   // guarded by mu; by current server-side tag
	regs       []Request               // guarded by mu; stream registrations to replay on a fresh server
	dropTags   []string                // guarded by mu; server tags cancelled while disconnected
	reconnects int                     // guarded by mu
	wireVer    int                     // guarded by mu; version the current connection's hello agreed on
	closed     bool                    // guarded by mu
	terminal   bool                    // guarded by mu; server announced graceful shutdown: loss is final
	failErr    error                   // guarded by mu; permanent failure (plain-client loss, retries exhausted)

	stop      chan struct{} // closed by Close: aborts backoff waits and the pinger
	loops     sync.WaitGroup
	closeOnce sync.Once
}

// pendingCall is one in-flight request. For a Submit, sub is registered
// by the READ LOOP the moment it processes the MsgOK — before it
// decodes any later frame — so a result or end push right behind the
// response can never slip through an unregistered window.
type pendingCall struct {
	ch    chan *Response
	sub   *clientSub
	hello bool // the read loop switches framing when this OK arrives
}

// clientSub is one subscription's client-side state. The logical tag
// (the tag Submit returned) is stable across reconnects; the server
// tag changes when a reconnect had to resubmit from scratch.
type clientSub struct {
	cql      string
	userNode int
	onResult func(stream.Tuple, uint64)
	onEnd    func(error)
	onGap    func(Gap)

	mu      sync.Mutex
	logical string // guarded by mu
	server  string // guarded by mu
	lastSeq uint64 // guarded by mu
	ended   bool   // guarded by mu
}

// end fires onEnd exactly once.
func (cs *clientSub) end(err error) {
	cs.mu.Lock()
	if cs.ended {
		cs.mu.Unlock()
		return
	}
	cs.ended = true
	cs.mu.Unlock()
	if cs.onEnd != nil {
		cs.onEnd(err)
	}
}

// Sentinel state errors.
var (
	errClientClosed   = errors.New("transport: client closed")
	errServerShutdown = errors.New("transport: server shut down")
	errConnLost       = errors.New("transport: connection lost")
)

// Config tunes DialConfig.
type Config struct {
	// Resilience, when non-nil, turns on the reconnecting session
	// machinery with the given tuning (zero fields take defaults).
	// nil keeps the fail-fast behaviour of Dial.
	Resilience *Resilience
	// WireVersion caps the wire format version offered in the hello
	// (see WireV1/WireV2). 0 offers WireMax; 1 forces the plain gob
	// protocol. Values outside [0, WireMax] fail the dial.
	WireVersion int
}

// Dial connects to a cosmosd server with fail-fast semantics.
func Dial(addr string) (*Client, error) { return DialConfig(addr, Config{}) }

// DialConfig connects with explicit configuration. The initial dial is
// always fail-fast (a wrong address should error immediately);
// resilience governs what happens after.
func DialConfig(addr string, cfg Config) (*Client, error) {
	c := &Client{
		addr:     addr,
		hb:       defaultHeartbeat,
		reqWire:  WireMax,
		pending:  map[uint64]*pendingCall{},
		subs:     map[string]*clientSub{},
		byServer: map[string]*clientSub{},
		stop:     make(chan struct{}),
	}
	c.cond = sync.NewCond(&c.mu)
	if cfg.WireVersion != 0 {
		if cfg.WireVersion < WireV1 || cfg.WireVersion > WireMax {
			return nil, fmt.Errorf("transport: unsupported wire version %d (this client speaks 1..%d)", cfg.WireVersion, WireMax)
		}
		c.reqWire = cfg.WireVersion
	}
	if cfg.Resilience != nil {
		c.resilient = true
		c.res = cfg.Resilience.withDefaults()
		c.hb = c.res.HeartbeatInterval
		var raw [12]byte
		if _, err := crand.Read(raw[:]); err != nil {
			return nil, fmt.Errorf("transport: session id: %v", err)
		}
		c.sessionID = hex.EncodeToString(raw[:])
	}
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	c.conn = conn
	c.enc = gob.NewEncoder(conn)
	c.up = true
	c.readerDone = make(chan struct{})
	c.loops.Add(1)
	go c.readLoop(conn, c.readerDone)
	// Every connection opens with a hello: it negotiates the wire
	// format and, for a resilient client, announces the resumable
	// session identity (plain clients send an empty one).
	hello, err, _ := c.roundTrip(&Request{Kind: MsgHello, SessionID: c.sessionID, WireVersion: c.reqWire}, nil)
	if err != nil {
		_ = c.Close()
		return nil, fmt.Errorf("transport: hello: %v", err)
	}
	if err := c.checkWire(hello); err != nil {
		_ = c.Close()
		return nil, err
	}
	if c.resilient {
		c.mu.Lock()
		c.epoch = 1
		c.mu.Unlock()
	}
	// Every client heartbeats so a server running with an idle timeout
	// never mistakes a quiet subscriber for a dead one.
	c.loops.Add(1)
	go c.pinger()
	return c, nil
}

// Close terminates the client; outstanding calls fail and every live
// subscription ends cleanly (onEnd(nil)). A close during a reconnect
// backoff aborts the retry loop promptly. Idempotent.
func (c *Client) Close() error {
	c.closeOnce.Do(func() {
		c.mu.Lock()
		c.closed = true
		subs := c.subs
		c.subs = map[string]*clientSub{}
		c.byServer = map[string]*clientSub{}
		for id, pc := range c.pending {
			delete(c.pending, id)
			close(pc.ch)
		}
		conn := c.conn
		c.cond.Broadcast()
		c.mu.Unlock()
		close(c.stop)
		// End subscriptions before the read loop can observe the closed
		// connection, so a user-initiated Close reads as a clean end,
		// not a connection error.
		for _, cs := range subs {
			cs.end(nil)
		}
		if conn != nil {
			_ = conn.Close() // already tearing down; FIN errors are uninformative
		}
		c.loops.Wait()
	})
	return nil
}

// Reconnects reports how many times the client has re-established its
// session after a connection loss.
func (c *Client) Reconnects() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.reconnects
}

// Epoch is the current session epoch (0 for plain clients, 1 after the
// initial hello, +1 per successful resume).
func (c *Client) Epoch() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.epoch
}

// WireVersion reports the wire format version the current connection's
// hello agreed on (0 before the first hello completes).
func (c *Client) WireVersion() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.wireVer
}

// checkWire validates a hello OK's negotiated version: the server must
// have picked something this client offered. A violation is a protocol
// mismatch, reported clearly instead of surfacing later as a gob
// decode error on framed bytes.
func (c *Client) checkWire(hello *Response) error {
	ver := hello.WireVersion
	if ver == 0 {
		ver = WireV1
	}
	if ver < WireV1 || ver > c.reqWire {
		return fmt.Errorf("transport: server chose wire version %d, client offered at most %d (wire version mismatch)", ver, c.reqWire)
	}
	return nil
}

// write encodes one request on the current connection.
func (c *Client) write(req *Request) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	return c.enc.Encode(req)
}

// pinger sends a keepalive on the heartbeat interval while connected.
// A failed ping write is ignored — the read loop's deadline or decode
// error is the authoritative loss signal.
func (c *Client) pinger() {
	defer c.loops.Done()
	t := time.NewTicker(c.hb)
	defer t.Stop()
	for {
		select {
		case <-c.stop:
			return
		case <-t.C:
			c.mu.Lock()
			up := c.up
			c.mu.Unlock()
			if up {
				_ = c.write(&Request{Kind: MsgPing})
			}
		}
	}
}

func (c *Client) readLoop(conn net.Conn, done chan struct{}) {
	defer c.loops.Done()
	defer close(done)
	// The decoder reads through an explicit bufio.Reader. gob never
	// over-reads from an io.ByteReader, so after the hello OK switches
	// the connection to v2 framing, the loop can strip frame markers
	// from the same reader without losing buffered bytes — one decoder
	// for the connection's whole life (gob type definitions are sent
	// once per stream; restarting the decoder would desynchronise it).
	br := bufio.NewReaderSize(conn, 32<<10)
	dec := gob.NewDecoder(br)
	framed := false
	wireSubs := map[uint32]*wireSub{}
	var idle time.Duration
	if c.resilient {
		idle = 3 * c.hb
	}
	for {
		if idle > 0 {
			_ = conn.SetReadDeadline(time.Now().Add(idle))
		}
		if framed {
			marker, err := br.ReadByte()
			if err != nil {
				c.connLost(conn, err)
				return
			}
			switch marker {
			case frameGob:
				// Control message: decoded by the shared gob decoder
				// below.
			case frameData, frameSchema:
				if err := c.readBinaryFrame(br, marker, wireSubs); err != nil {
					c.connLost(conn, err)
					return
				}
				continue
			default:
				c.connLost(conn, fmt.Errorf("transport: unknown frame marker %#x (wire version mismatch?)", marker))
				return
			}
		}
		var resp Response
		if err := dec.Decode(&resp); err != nil {
			c.connLost(conn, err)
			return
		}
		switch resp.Kind {
		case MsgResult:
			c.handleResult(&resp)
			continue
		case MsgEnd:
			c.handleEnd(&resp)
			continue
		case MsgShutdown:
			// Graceful server shutdown: terminal on the wire. The
			// MsgEnd pushes that follow end each subscription cleanly;
			// the client must not reconnect-loop against the dying
			// listener.
			c.mu.Lock()
			c.terminal = true
			c.cond.Broadcast()
			c.mu.Unlock()
			continue
		case MsgPong:
			continue
		}
		c.mu.Lock()
		pc := c.pending[resp.ID]
		delete(c.pending, resp.ID)
		if pc != nil && pc.hello && resp.Kind == MsgOK {
			// The hello OK is the last unframed server→client message:
			// flip to v2 framing here, before any later byte is read.
			// Only versions we actually offered switch the mode — a
			// bogus higher answer is rejected by checkWire, and
			// misframing until then would just masquerade as loss.
			ver := resp.WireVersion
			if ver == 0 {
				ver = WireV1
			}
			c.wireVer = ver
			framed = ver >= WireV2 && ver <= c.reqWire
		}
		var lateEnd func()
		if pc != nil && pc.sub != nil {
			cs := pc.sub
			switch {
			case resp.Kind != MsgOK || resp.QueryTag == "":
				// Submit failed; no subscription came to exist.
			case c.closed:
				// Close already ended every subscription; ending this
				// one here keeps the exactly-once onEnd contract.
				lateEnd = func() { cs.end(nil) }
			default:
				cs.mu.Lock()
				if cs.logical == "" {
					cs.logical = resp.QueryTag
				}
				if cs.server != "" && cs.server != resp.QueryTag {
					delete(c.byServer, cs.server) // resubmitted under a new tag
				}
				cs.server = resp.QueryTag
				// A (re)submit starts a fresh server-side sequence.
				// Reset here, before any later frame is decoded, so
				// the dup-guard cannot drop the new stream's first
				// results against the old session's counter.
				cs.lastSeq = 0
				logical := cs.logical
				cs.mu.Unlock()
				c.subs[logical] = cs
				c.byServer[resp.QueryTag] = cs
			}
		}
		c.mu.Unlock()
		if lateEnd != nil {
			lateEnd()
		}
		if pc != nil {
			r := resp
			pc.ch <- &r
		}
	}
}

func (c *Client) handleResult(resp *Response) {
	schema, err := FromWireSchema(resp.Schema)
	if err != nil {
		return
	}
	t, err := FromWireTuple(resp.Tuple, schema)
	if err != nil {
		return
	}
	tag := resp.QueryTag
	if tag == "" {
		tag = schema.Stream // result stream name == query tag
	}
	c.mu.Lock()
	cs := c.byServer[tag]
	c.mu.Unlock()
	if cs == nil {
		return
	}
	cs.mu.Lock()
	if cs.ended {
		cs.mu.Unlock()
		return
	}
	if resp.Seq != 0 {
		if resp.Seq <= cs.lastSeq {
			// Duplicate of a frame we saw before the reconnect.
			cs.mu.Unlock()
			return
		}
		cs.lastSeq = resp.Seq
	}
	fn := cs.onResult
	cs.mu.Unlock()
	if fn != nil {
		fn(t, resp.Seq)
	}
}

// wireSub is the read loop's per-connection decode state for one v2
// data-frame subscription id, established by its 'S' frame. cs may be
// nil when the subscription was cancelled concurrently — its frames
// are then parsed (to stay in sync) and dropped.
type wireSub struct {
	cs    *clientSub
	codec *tupleCodec
}

// readBinaryFrame consumes one length-prefixed v2 frame (marker
// already read) into a pooled buffer and dispatches it. Any malformed
// byte returns an error — treated as connection loss, never a panic.
func (c *Client) readBinaryFrame(br *bufio.Reader, marker byte, subs map[uint32]*wireSub) error {
	var hdr [4]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n > maxFramePayload {
		return fmt.Errorf("transport: frame length %d exceeds limit (wire version mismatch?)", n)
	}
	bufp := getFrameBuf()
	defer putFrameBuf(bufp)
	if cap(*bufp) < int(n) {
		*bufp = make([]byte, n)
	}
	b := (*bufp)[:n]
	*bufp = b
	if _, err := io.ReadFull(br, b); err != nil {
		return err
	}
	if marker == frameSchema {
		subID, tag, schema, err := decodeSchemaFrame(b)
		if err != nil {
			return err
		}
		c.mu.Lock()
		cs := c.byServer[tag]
		c.mu.Unlock()
		subs[subID] = &wireSub{cs: cs, codec: newTupleCodec(schema)}
		return nil
	}
	subID, count, firstSeq, err := decodeDataHeader(b)
	if err != nil {
		return err
	}
	ws := subs[subID]
	if ws == nil {
		return fmt.Errorf("transport: data frame for unannounced sub %d", subID)
	}
	pos := dataHeaderSize
	// One value arena per frame: each tuple hands its sub-slice to the
	// user callback, so the backing array lives as long as they do.
	arity := ws.codec.arity
	arena := make([]stream.Value, count*arity)
	for i := 0; i < count; i++ {
		t, next, err := ws.codec.decodeTupleInto(b, pos, arena[i*arity:(i+1)*arity:(i+1)*arity])
		if err != nil {
			return err
		}
		pos = next
		if ws.cs != nil {
			c.deliverResult(ws.cs, t, firstSeq+uint64(i))
		}
	}
	if pos != len(b) {
		return fmt.Errorf("transport: %d trailing bytes in data frame", len(b)-pos)
	}
	return nil
}

// deliverResult applies the per-subscription dup-guard and hands the
// tuple to the callback — the v2 counterpart of handleResult's tail.
func (c *Client) deliverResult(cs *clientSub, t stream.Tuple, seq uint64) {
	cs.mu.Lock()
	if cs.ended || seq <= cs.lastSeq {
		// Ended, or a duplicate of a frame seen before a reconnect.
		cs.mu.Unlock()
		return
	}
	cs.lastSeq = seq
	fn := cs.onResult
	cs.mu.Unlock()
	if fn != nil {
		fn(t, seq)
	}
}

func (c *Client) handleEnd(resp *Response) {
	c.mu.Lock()
	cs := c.byServer[resp.QueryTag]
	if cs != nil {
		delete(c.byServer, resp.QueryTag)
		cs.mu.Lock()
		logical := cs.logical
		cs.mu.Unlock()
		delete(c.subs, logical)
	}
	c.mu.Unlock()
	if cs == nil {
		return
	}
	var err error
	if resp.Error != "" {
		err = fmt.Errorf("transport: server: %s", resp.Error)
	}
	cs.end(err)
}

// connLost is the read loop's exit path: decide whether the loss is
// final (plain client, closed, terminal shutdown, retries exhausted)
// or retryable (resilient client — kick the reconnect loop and keep
// the subscriptions alive, parked).
func (c *Client) connLost(conn net.Conn, err error) {
	c.mu.Lock()
	if conn != c.conn {
		// A stale generation already replaced by a reconnect.
		c.mu.Unlock()
		return
	}
	wasUp := c.up
	c.up = false
	retryable := c.resilient && !c.closed && !c.terminal && c.failErr == nil
	if !retryable && !c.closed && !c.terminal && c.failErr == nil {
		c.failErr = fmt.Errorf("transport: connection lost: %v", err)
	}
	for id, pc := range c.pending {
		delete(c.pending, id)
		close(pc.ch)
	}
	var ended []*clientSub
	clean := c.closed || c.terminal
	if !retryable {
		for tag, cs := range c.subs {
			delete(c.subs, tag)
			ended = append(ended, cs)
		}
		c.byServer = map[string]*clientSub{}
	}
	if retryable && wasUp {
		// First observer of this outage: start the reconnect loop.
		// (A loss during the resume phase keeps the existing loop.)
		c.loops.Add(1)
		go c.reconnectLoop()
	}
	c.cond.Broadcast()
	c.mu.Unlock()
	for _, cs := range ended {
		if clean {
			cs.end(nil)
		} else {
			cs.end(fmt.Errorf("transport: connection lost: %v", err))
		}
	}
}

// failPermanent records an unrecoverable resilience failure and ends
// every subscription with it.
func (c *Client) failPermanent(err error) {
	c.mu.Lock()
	if c.closed || c.terminal || c.failErr != nil {
		c.mu.Unlock()
		return
	}
	c.failErr = err
	var ended []*clientSub
	for tag, cs := range c.subs {
		delete(c.subs, tag)
		ended = append(ended, cs)
	}
	c.byServer = map[string]*clientSub{}
	c.cond.Broadcast()
	c.mu.Unlock()
	for _, cs := range ended {
		cs.end(err)
	}
}

// reconnectLoop re-establishes the session after a loss: exponential
// backoff + jitter between attempts, aborted promptly by Close, bounded
// by MaxRetries per outage.
func (c *Client) reconnectLoop() {
	defer c.loops.Done()
	lastErr := errors.New("connection lost")
	for attempt := 1; ; attempt++ {
		if c.res.MaxRetries > 0 && attempt > c.res.MaxRetries {
			c.failPermanent(fmt.Errorf("transport: reconnect failed after %d attempts: %v", c.res.MaxRetries, lastErr))
			return
		}
		select {
		case <-time.After(c.res.backoff(attempt)):
		case <-c.stop:
			return
		}
		c.mu.Lock()
		done := c.closed || c.terminal || c.failErr != nil
		c.mu.Unlock()
		if done {
			return
		}
		conn, err := net.DialTimeout("tcp", c.addr, 10*time.Second)
		if err != nil {
			lastErr = err
			continue
		}
		if err := c.restore(conn); err != nil {
			lastErr = err
			_ = conn.Close()
			c.mu.Lock()
			done := c.closed || c.terminal || c.failErr != nil
			c.mu.Unlock()
			if done {
				return
			}
			continue
		}
		return
	}
}

// restore runs the re-establishment protocol on a fresh connection:
// hello (adopt whatever the server still has of the session), replay
// stream registrations when the server is fresh, then per subscription
// either resume (gap = last seen → resume point) or resubmit from
// scratch (gap unknown). Any failure aborts the whole attempt; the
// reconnect loop retries it.
func (c *Client) restore(conn net.Conn) error {
	// Wait out the previous connection's read loop first. The gob
	// decoder reads through its own buffer, so a read loop can keep
	// draining already-buffered result frames after its connection was
	// closed; a delivery landing between this attempt's lastSeq
	// snapshot and the resume would be counted twice — once delivered,
	// once inside the reported gap. The drain is bounded: the socket is
	// closed (or dead), so only the finite buffer remains.
	c.mu.Lock()
	prev := c.readerDone
	c.mu.Unlock()
	if prev != nil {
		<-prev
	}
	done := make(chan struct{})
	c.mu.Lock()
	if c.closed || c.terminal {
		c.mu.Unlock()
		return errClientClosed
	}
	c.conn = conn
	c.readerDone = done
	c.mu.Unlock()
	c.wmu.Lock()
	c.enc = gob.NewEncoder(conn)
	c.wmu.Unlock()
	c.loops.Add(1)
	go c.readLoop(conn, done)

	c.mu.Lock()
	regs := make([]Request, len(c.regs))
	copy(regs, c.regs)
	// Snapshot each live sub's server tag under its lock; the sort and
	// the hello below use the snapshot, not the (re-lockable) field.
	type liveSub struct {
		cs  *clientSub
		tag string
	}
	var live []liveSub
	for _, cs := range c.subs {
		cs.mu.Lock()
		if !cs.ended && cs.server != "" {
			live = append(live, liveSub{cs: cs, tag: cs.server})
		}
		cs.mu.Unlock()
	}
	c.mu.Unlock()
	sort.Slice(live, func(i, j int) bool { return live[i].tag < live[j].tag })
	tags := make([]string, len(live))
	for i, ls := range live {
		tags[i] = ls.tag
	}

	hello, err, _ := c.roundTrip(&Request{Kind: MsgHello, SessionID: c.sessionID, ResumeTags: tags, WireVersion: c.reqWire}, nil)
	if err != nil {
		return err
	}
	if err := c.checkWire(hello); err != nil {
		// A version mismatch will not heal by retrying (the server
		// changed under us): fail the session rather than loop.
		c.failPermanent(err)
		return err
	}
	epoch := hello.Epoch
	adopted := make(map[string]bool, len(hello.Tags))
	for _, tag := range hello.Tags {
		adopted[tag] = true
	}
	if len(adopted) == 0 {
		// Nothing survived server-side (fresh server, or the session
		// lingered out): replay stream registrations so resubmits and
		// later publishes find their streams. "already registered"
		// means the stream survived (same server, session expired) or
		// another client re-registered it first — both fine.
		for i := range regs {
			req := regs[i]
			if _, err, _ := c.roundTrip(&req, nil); err != nil &&
				!strings.Contains(err.Error(), "already registered") {
				return err
			}
		}
	}
	var gaps []func()
	for _, ls := range live {
		cs := ls.cs
		cs.mu.Lock()
		server, lastSeq, ended := cs.server, cs.lastSeq, cs.ended
		cs.mu.Unlock()
		if ended {
			continue
		}
		if adopted[server] {
			ok, err, _ := c.roundTrip(&Request{Kind: MsgResume, QueryTag: server, LastSeq: lastSeq}, nil)
			if err != nil {
				return err
			}
			if ok.Seq > lastSeq {
				// Advance, never regress: the new connection's read
				// loop may already have delivered flushed frames past
				// the resume point before we processed the OK, and
				// stamping the older ok.Seq back would let the next
				// reconnect re-report those frames inside a gap.
				cs.mu.Lock()
				if ok.Seq > cs.lastSeq {
					cs.lastSeq = ok.Seq
				}
				cs.mu.Unlock()
				cs := cs
				gap := Gap{Epoch: epoch, From: lastSeq + 1, To: ok.Seq}
				gaps = append(gaps, func() { c.applyGap(cs, gap) })
			}
		} else {
			if _, err, _ := c.roundTrip(&Request{Kind: MsgSubmit, CQL: cs.cql, UserNode: cs.userNode}, cs); err != nil {
				// Retryable too: after a server restart another client
				// may not have re-registered the streams yet.
				return err
			}
			// lastSeq was reset by the read loop when it processed the
			// submit OK, before any of the new stream's frames.
			cs := cs
			gap := Gap{Epoch: epoch, Unknown: true}
			gaps = append(gaps, func() { c.applyGap(cs, gap) })
		}
	}
	c.mu.Lock()
	c.epoch = epoch
	c.up = true
	c.reconnects++
	drops := c.dropTags
	c.dropTags = nil
	c.cond.Broadcast()
	c.mu.Unlock()
	// Gap callbacks and the cleanup of tags cancelled while down run
	// after the session is up (they may issue calls of their own).
	for _, fire := range gaps {
		fire()
	}
	for _, tag := range drops {
		// Best-effort: the hello already cancelled unresumed tags, so
		// "unknown query" here is the common, fine, answer.
		_, _, _ = c.roundTrip(&Request{Kind: MsgCancel, QueryTag: tag}, nil)
	}
	return nil
}

// applyGap reports a delivery gap per the configured policy.
func (c *Client) applyGap(cs *clientSub, gap Gap) {
	if cs.onGap != nil {
		cs.onGap(gap)
	}
	if c.res.OnGap != GapError {
		return
	}
	cs.mu.Lock()
	server, logical := cs.server, cs.logical
	cs.mu.Unlock()
	c.mu.Lock()
	delete(c.subs, logical)
	delete(c.byServer, server)
	c.mu.Unlock()
	_, _, _ = c.roundTrip(&Request{Kind: MsgCancel, QueryTag: server}, nil)
	cs.end(fmt.Errorf("transport: delivery %s", gap))
}

// stateErr maps the client's current state to the error a failed call
// should surface.
func (c *Client) stateErr() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	switch {
	case c.closed:
		return errClientClosed
	case c.terminal:
		return errServerShutdown
	case c.failErr != nil:
		return c.failErr
	default:
		return errConnLost
	}
}

// waitReady parks until the session is usable, or reports the terminal
// state error. Plain clients never park: any loss sets failErr.
func (c *Client) waitReady() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	for {
		switch {
		case c.closed:
			return errClientClosed
		case c.terminal:
			return errServerShutdown
		case c.failErr != nil:
			return c.failErr
		case c.up:
			return nil
		}
		c.cond.Wait()
	}
}

// roundTrip sends one request on the current connection and waits for
// its response, without parking: internal restore traffic uses it while
// the session is down. connFail reports whether the failure was
// connection-level (retryable under resilience) rather than a server
// error.
func (c *Client) roundTrip(req *Request, sub *clientSub) (resp *Response, err error, connFail bool) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, errClientClosed, false
	}
	c.nextID++
	req.ID = c.nextID
	pc := &pendingCall{ch: make(chan *Response, 1), sub: sub, hello: req.Kind == MsgHello}
	c.pending[req.ID] = pc
	c.mu.Unlock()
	if err := c.write(req); err != nil {
		c.mu.Lock()
		delete(c.pending, req.ID)
		c.mu.Unlock()
		return nil, fmt.Errorf("transport: write: %v", err), true
	}
	r, ok := <-pc.ch
	if !ok {
		err := c.stateErr()
		return nil, err, errors.Is(err, errConnLost)
	}
	if r.Kind == MsgError {
		return nil, fmt.Errorf("transport: server: %s", r.Error), false
	}
	return r, nil, false
}

// call sends a request and waits for its response, parking across
// outages and retrying calls whose connection died mid-flight (which
// makes such calls at-least-once under resilience).
func (c *Client) call(req *Request) (*Response, error) { return c.callSub(req, nil) }

func (c *Client) callSub(req *Request, sub *clientSub) (*Response, error) {
	for {
		if err := c.waitReady(); err != nil {
			return nil, err
		}
		resp, err, connFail := c.roundTrip(req, sub)
		if err == nil {
			return resp, nil
		}
		if !connFail || !c.resilient {
			return nil, err
		}
	}
}

// Register announces a source stream hosted at an overlay node. A
// resilient client records it for replay: after a reconnect to a fresh
// server the registration is repeated before anything is resubmitted.
func (c *Client) Register(info *stream.Info, node int) error {
	req := &Request{Kind: MsgRegister, Info: ToWireInfo(info), Node: node}
	if _, err := c.call(req); err != nil {
		return err
	}
	if c.resilient {
		c.mu.Lock()
		replaced := false
		for i := range c.regs {
			if c.regs[i].Info.Schema.Stream == req.Info.Schema.Stream {
				c.regs[i] = Request{Kind: MsgRegister, Info: req.Info, Node: node}
				replaced = true
				break
			}
		}
		if !replaced {
			c.regs = append(c.regs, Request{Kind: MsgRegister, Info: req.Info, Node: node})
		}
		c.mu.Unlock()
	}
	return nil
}

// Publish sends one tuple of a registered stream. Under resilience a
// publish whose connection died mid-flight is retried on the next
// connection: at-least-once. Pipelines that need exactly-once publish
// must deduplicate upstream or avoid -retry on the publishing path.
func (c *Client) Publish(t stream.Tuple) error {
	_, err := c.call(&Request{Kind: MsgPublish, Tuple: ToWireTuple(t)})
	return err
}

// Submit registers a continuous query for a user at an overlay node;
// results stream into onResult (which runs on the client's read-loop
// goroutine — per query, call order is wire order) until the
// subscription ends. seq is the server-side result sequence number,
// strictly increasing per subscription and restarting from 1 when a
// reconnect had to resubmit from scratch (Gap.Unknown reports that).
// onEnd, which may be nil, fires exactly once: after a local Cancel or
// Close (nil error), a server-side end such as a graceful daemon
// shutdown (nil error), or an unrecoverable connection loss (the
// error). onGap, which may be nil, fires after every reconnect that
// lost results (see Gap); under GapError the subscription then ends
// with an error instead of continuing.
func (c *Client) Submit(cqlText string, userNode int, onResult func(stream.Tuple, uint64), onEnd func(error), onGap func(Gap)) (string, error) {
	cs := &clientSub{cql: cqlText, userNode: userNode, onResult: onResult, onEnd: onEnd, onGap: onGap}
	resp, err := c.callSub(&Request{Kind: MsgSubmit, CQL: cqlText, UserNode: userNode}, cs)
	if err != nil {
		return "", err
	}
	return resp.QueryTag, nil
}

// Cancel stops a query; its onEnd callback fires with a nil error.
// Cancelling during an outage succeeds locally at once (the server
// learns on the next reconnect — or never, which the session linger
// cleans up). Cancelling an already-ended or unknown subscription
// returns the server's error (or the closed-client error) without side
// effects.
func (c *Client) Cancel(tag string) error {
	c.mu.Lock()
	cs := c.subs[tag]
	var server string
	if cs != nil {
		cs.mu.Lock()
		server = cs.server
		cs.mu.Unlock()
		if !c.up && c.resilient && !c.closed && !c.terminal && c.failErr == nil {
			// Down: cancel locally without parking behind the backoff.
			delete(c.subs, tag)
			delete(c.byServer, server)
			c.dropTags = append(c.dropTags, server)
			c.mu.Unlock()
			cs.end(nil)
			return nil
		}
	}
	c.mu.Unlock()
	if cs == nil {
		_, err := c.call(&Request{Kind: MsgCancel, QueryTag: tag})
		return err
	}
	_, err := c.call(&Request{Kind: MsgCancel, QueryTag: server})
	c.mu.Lock()
	delete(c.subs, tag)
	delete(c.byServer, server)
	c.mu.Unlock()
	cs.end(nil)
	return err
}

// Stats fetches daemon statistics.
func (c *Client) Stats() (SystemStats, error) {
	resp, err := c.call(&Request{Kind: MsgStats})
	if err != nil {
		return SystemStats{}, err
	}
	return resp.Stats, nil
}

// Catalog fetches the daemon's stream catalog, sorted by stream name.
func (c *Client) Catalog() ([]*stream.Info, error) {
	resp, err := c.call(&Request{Kind: MsgCatalog})
	if err != nil {
		return nil, err
	}
	infos := make([]*stream.Info, 0, len(resp.Infos))
	for _, w := range resp.Infos {
		info, err := FromWireInfo(w)
		if err != nil {
			return nil, err
		}
		infos = append(infos, info)
	}
	return infos, nil
}

// Quiesce runs the server-side stabilisation barrier: it returns after
// no tuple is in flight anywhere in the deployment. Meaningful only
// while no client is concurrently publishing; meant for tests and
// readouts, never the steady-state path.
func (c *Client) Quiesce() error {
	_, err := c.call(&Request{Kind: MsgQuiesce})
	return err
}
