// Command cosmosctl is the CLI client of cosmosd, built on the
// transport-agnostic cosmos.Client session API (cosmos.Dial).
//
//	cosmosctl -addr :7654 register -stream 'Trades(symbol string, price float)' -rate 100 -node 0
//	cosmosctl -addr :7654 publish  -stream Trades -ts 1000 -values 'ACME,101.5'
//	cosmosctl -addr :7654 submit   -cql 'SELECT symbol, price FROM Trades [Range 5 Minute] WHERE price > 100' -node 3 -count 10
//	cosmosctl explain -cql 'SELECT symbol, price FROM Trades [Range 5 Minute] WHERE price > 100'
//	cosmosctl -addr :7654 catalog
//	cosmosctl -addr :7654 stats
//	cosmosctl -addr :7654 top -interval 1s -n 5
//	cosmosctl -addr :7654 quiesce
//
// `submit` streams results until -count results arrived (0 = forever, or
// until the server ends the subscription — e.g. a graceful cosmosd
// shutdown). `explain` is local: it parses the query without a server.
// `query` is accepted as an alias of `submit`.
//
// With -retry the session is resilient: a lost connection is redialed
// with backoff and live subscriptions resume on the new connection
// (results lost while disconnected are reported as a gap). Without it
// any connection failure exits non-zero immediately. A graceful cosmosd
// shutdown ends the session cleanly in both modes — it never triggers a
// reconnect loop.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"cosmos"
	"cosmos/internal/stream"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7654", "cosmosd address")
	retry := flag.Bool("retry", false,
		"survive connection loss: redial with backoff and resume subscriptions")
	wire := flag.Int("wire", 0,
		"wire format version to offer: 0 = newest, 1 = plain gob, 2 = binary data frames")
	flag.Parse()
	args := flag.Args()
	if len(args) < 1 {
		usage()
	}

	// explain is purely local — no connection.
	if args[0] == "explain" {
		cmdExplain(args[1:])
		return
	}

	var opts []cosmos.DialOption
	if *wire != 0 {
		opts = append(opts, cosmos.WithWireVersion(*wire))
	}
	if *retry {
		opts = append(opts, cosmos.WithResilience(cosmos.Resilience{
			MaxRetries: 120,
			MinBackoff: 50 * time.Millisecond,
			MaxBackoff: 2 * time.Second,
		}))
	}
	client, err := cosmos.Dial(*addr, opts...)
	if err != nil {
		fail("cannot connect to cosmosd at %s: %v (is cosmosd running?)", *addr, err)
	}
	defer client.Close()

	switch args[0] {
	case "register":
		cmdRegister(client, args[1:])
	case "publish":
		cmdPublish(client, args[1:])
	case "submit", "query":
		cmdSubmit(client, args[1:])
	case "catalog":
		cmdCatalog(client)
	case "stats":
		cmdStats(client)
	case "top":
		cmdTop(client, args[1:])
	case "quiesce":
		if err := client.Quiesce(); err != nil {
			fail("quiesce: %v", err)
		}
		fmt.Println("quiesced")
	default:
		usage()
	}
}

// fail prints one clear message and exits non-zero — connection-level
// failures must never surface as a raw panic or a zero exit.
func fail(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "cosmosctl: "+format+"\n", args...)
	os.Exit(1)
}

func usage() {
	fmt.Fprintln(os.Stderr,
		"usage: cosmosctl [-addr host:port] [-retry] [-wire N] register|publish|submit|explain|catalog|stats|top|quiesce [flags]")
	os.Exit(2)
}

// parseSchemaDDL parses "Name(attr kind, attr kind, ...)".
func parseSchemaDDL(ddl string) (*stream.Schema, error) {
	open := strings.Index(ddl, "(")
	if open < 0 || !strings.HasSuffix(ddl, ")") {
		return nil, fmt.Errorf("schema must look like Name(attr kind, ...)")
	}
	name := strings.TrimSpace(ddl[:open])
	body := ddl[open+1 : len(ddl)-1]
	var fields []stream.Field
	for _, part := range strings.Split(body, ",") {
		bits := strings.Fields(strings.TrimSpace(part))
		if len(bits) != 2 {
			return nil, fmt.Errorf("bad field %q", part)
		}
		kind, err := stream.ParseKind(bits[1])
		if err != nil {
			return nil, err
		}
		fields = append(fields, stream.Field{Name: bits[0], Kind: kind})
	}
	return stream.NewSchema(name, fields...)
}

func cmdRegister(c cosmos.Client, args []string) {
	fs := flag.NewFlagSet("register", flag.ExitOnError)
	ddl := fs.String("stream", "", "schema DDL: Name(attr kind, ...)")
	rate := fs.Float64("rate", 1, "publication rate, tuples/sec")
	node := fs.Int("node", 0, "overlay node hosting the source")
	fs.Parse(args)
	schema, err := parseSchemaDDL(*ddl)
	if err != nil {
		fail("%v", err)
	}
	info := &stream.Info{Schema: schema, Rate: *rate}
	if _, err := c.RegisterStream(info, *node); err != nil {
		fail("%v", err)
	}
	fmt.Printf("registered %s at node %d\n", schema, *node)
}

func cmdPublish(c cosmos.Client, args []string) {
	fs := flag.NewFlagSet("publish", flag.ExitOnError)
	name := fs.String("stream", "", "stream name")
	ts := fs.Int64("ts", 0, "application timestamp (ms)")
	raw := fs.String("values", "", "comma-separated attribute values")
	fs.Parse(args)
	if *name == "" {
		fail("-stream required")
	}
	// The source carries its catalog schema — sources publish into
	// streams any session registered.
	src, err := c.Source(*name)
	if err != nil {
		fail("%v", err)
	}
	schema := src.Schema()
	parts := strings.Split(*raw, ",")
	if len(parts) != schema.Arity() {
		fail("%d values for %d attributes", len(parts), schema.Arity())
	}
	values := make([]stream.Value, len(parts))
	for i, part := range parts {
		v, err := parseValue(schema.Fields[i].Kind, strings.TrimSpace(part))
		if err != nil {
			fail("%v", err)
		}
		values[i] = v
	}
	t, err := stream.NewTuple(schema, stream.Timestamp(*ts), values...)
	if err != nil {
		fail("%v", err)
	}
	if err := src.Publish(t); err != nil {
		fail("%v", err)
	}
	fmt.Println("published", t)
}

func parseValue(kind stream.Kind, s string) (stream.Value, error) {
	switch kind {
	case stream.KindInt:
		n, err := strconv.ParseInt(s, 10, 64)
		return stream.Int(n), err
	case stream.KindFloat:
		f, err := strconv.ParseFloat(s, 64)
		return stream.Float(f), err
	case stream.KindBool:
		b, err := strconv.ParseBool(s)
		return stream.Bool(b), err
	case stream.KindTime:
		n, err := strconv.ParseInt(s, 10, 64)
		return stream.Time(stream.Timestamp(n)), err
	default:
		return stream.String_(s), nil
	}
}

func cmdSubmit(c cosmos.Client, args []string) {
	fs := flag.NewFlagSet("submit", flag.ExitOnError)
	cqlText := fs.String("cql", "", "continuous query text")
	node := fs.Int("node", 0, "user's overlay node")
	count := fs.Int("count", 0, "exit after N results (0 = run until the subscription ends)")
	fs.Parse(args)
	sub, err := c.Submit(context.Background(), *cqlText, *node)
	if err != nil {
		fail("%v", err)
	}
	fmt.Fprintf(os.Stderr, "query %s running; streaming results...\n", sub.Tag())
	received := 0
	for t := range sub.Results() {
		fmt.Println(t)
		received++
		if *count > 0 && received == *count {
			if err := sub.Cancel(); err != nil {
				fmt.Fprintf(os.Stderr, "cosmosctl: cancel: %v\n", err)
			}
			// Keep draining: buffered results still arrive until the
			// channel closes.
		}
	}
	for _, g := range sub.Gaps() {
		fmt.Fprintf(os.Stderr, "cosmosctl: %s\n", g)
	}
	if err := sub.Err(); err != nil {
		fail("connection to cosmosd lost: %v (rerun with -retry to resume across restarts)", err)
	}
	fmt.Fprintf(os.Stderr, "subscription %s ended after %d results\n", sub.Tag(), received)
}

func cmdExplain(args []string) {
	fs := flag.NewFlagSet("explain", flag.ExitOnError)
	cqlText := fs.String("cql", "", "continuous query text")
	fs.Parse(args)
	info, err := cosmos.Explain(*cqlText)
	if err != nil {
		fail("%v", err)
	}
	fmt.Println(info)
}

func cmdCatalog(c cosmos.Client) {
	infos, err := c.Catalog()
	if err != nil {
		fail("%v", err)
	}
	for _, info := range infos {
		fmt.Printf("%s  rate=%.1f/s\n", info.Schema, info.Rate)
	}
}

func cmdStats(c cosmos.Client) {
	st, err := c.Stats()
	if err != nil {
		fail("%v", err)
	}
	fmt.Printf("queries:    %d\n", st.Queries)
	fmt.Printf("processors: %d\n", st.Processors)
	for i := range st.LoadPerProc {
		fmt.Printf("  p%d: load=%d groups=%d\n", i, st.LoadPerProc[i], st.GroupsPerProc[i])
	}
	fmt.Printf("data bytes: %d\n", st.TotalDataBytes)
	fmt.Printf("links:      %d\n", len(st.Links))
	for _, ls := range topLinks(st.Links, 5) {
		fmt.Printf("  %d-%d: data=%dB/%d msgs ctrl=%dB/%d msgs\n",
			ls.A, ls.B, ls.DataBytes, ls.DataMsgs, ls.CtrlBytes, ls.CtrlMsgs)
	}
}

// topLinks returns the n busiest links by data bytes (ties keep catalog
// order), skipping idle ones.
func topLinks(links []cosmos.LinkStats, n int) []cosmos.LinkStats {
	busy := make([]cosmos.LinkStats, 0, len(links))
	for _, ls := range links {
		if ls.DataBytes > 0 || ls.CtrlBytes > 0 {
			busy = append(busy, ls)
		}
	}
	sort.SliceStable(busy, func(i, j int) bool { return busy[i].DataBytes > busy[j].DataBytes })
	if len(busy) > n {
		busy = busy[:n]
	}
	return busy
}
