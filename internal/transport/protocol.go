package transport

import "cosmos/internal/core"

// The wire protocol: clients send Requests; the server answers each with
// one Response carrying the same ID, and additionally pushes Response
// messages with Kind = MsgResult for every result tuple of subscribed
// queries and one Kind = MsgEnd when a subscription terminates
// server-side (graceful daemon shutdown). Client→server traffic is
// always gob-encoded on the single TCP connection; the server→client
// direction is gob under wire version 1 and marker-framed under
// version 2 (binary batched data frames — see wire.go). The version is
// negotiated by the MsgHello that opens every connection; the hello's
// OK is the last unframed server→client message.

// MsgKind discriminates protocol messages.
type MsgKind uint8

// Protocol message kinds.
const (
	// Requests.
	MsgRegister MsgKind = iota // register a source stream (WireInfo)
	MsgPublish                 // publish one tuple (WireTuple)
	MsgSubmit                  // submit a CQL query (CQL)
	MsgCancel                  // cancel a query (QueryTag)
	MsgStats                   // fetch system statistics
	MsgCatalog                 // list the stream catalog
	MsgQuiesce                 // run the stabilisation barrier (readouts/tests)
	// Responses.
	MsgOK     // generic success
	MsgError  // Error carries the message
	MsgResult // asynchronous result delivery (QueryTag + Tuple + Schema)
	MsgEnd    // asynchronous subscription end (QueryTag + optional Error)
	// Resilience extensions (PR 6). Appended so kind numbers stay
	// stable against older peers.
	MsgHello    // announce a resumable session (SessionID + ResumeTags); OK carries Epoch + adopted Tags
	MsgResume   // resume a subscription after reconnect (QueryTag + LastSeq); OK carries Seq + Epoch
	MsgPing     // keepalive probe; answered with MsgPong
	MsgPong     // keepalive answer
	MsgShutdown // pushed on graceful server shutdown: loss is terminal, do not reconnect
)

// Request is a client → server message.
type Request struct {
	ID   uint64
	Kind MsgKind
	// Register
	Info WireInfo
	Node int
	// Publish
	Tuple WireTuple
	// Submit
	CQL      string
	UserNode int
	// Cancel / Resume
	QueryTag string
	// Hello
	SessionID  string   // client-chosen stable identity of a resumable session
	ResumeTags []string // subscriptions the client intends to resume
	// Resume
	LastSeq uint64 // highest result sequence the client saw for QueryTag
	// Hello: the highest wire format version the client speaks.
	// 0 means a pre-negotiation peer and is treated as WireV1.
	WireVersion int
}

// Response is a server → client message.
type Response struct {
	ID   uint64 // echoes the request ID; 0 for pushed results/ends
	Kind MsgKind
	// Error (also set on MsgEnd when the subscription died abnormally)
	Error string
	// Submit success; also identifies pushed MsgResult/MsgEnd messages
	QueryTag string
	// Result push
	Tuple  WireTuple
	Schema WireSchema
	// Stats
	Stats SystemStats
	// Catalog
	Infos []WireInfo
	// Resilience: per-subscription result sequence (MsgResult; on a
	// MsgResume OK it is the resume point — the seq already assigned
	// to the query's latest emission).
	Seq uint64
	// Session epoch, bumped on every adoption (MsgHello/MsgResume OKs).
	Epoch uint64
	// Subscriptions adopted from a detached session (MsgHello OK).
	Tags []string
	// The wire format version the server chose (MsgHello OK):
	// min(client's announced version, server's maximum). 0 from an
	// old server means WireV1.
	WireVersion int
}

// SystemStats is the transport-independent statistics shape; the daemon
// ships core's snapshot verbatim (all fields are plain data, so it gob-
// encodes as-is, per-link counters included).
type SystemStats = core.SystemStats
