package framework

import (
	"go/ast"
	"go/types"
	"strings"
)

// Unparen strips any number of enclosing parentheses.
func Unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

// Callee resolves the object a call expression invokes: a *types.Func
// for static function/method calls (including interface methods — the
// interface's method object), a *types.Var for calls through
// func-valued variables, fields or parameters, a *types.Builtin for
// builtins, a *types.TypeName for conversions, or nil when the callee
// is not a plain identifier/selector (e.g. a call of a call result).
func Callee(info *types.Info, call *ast.CallExpr) types.Object {
	switch fun := Unparen(call.Fun).(type) {
	case *ast.Ident:
		return info.Uses[fun]
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			return sel.Obj()
		}
		// Qualified identifier (pkg.Func) or a type in a selector.
		return info.Uses[fun.Sel]
	case *ast.IndexExpr:
		// Generic instantiation f[T](...).
		if id, ok := Unparen(fun.X).(*ast.Ident); ok {
			return info.Uses[id]
		}
	}
	return nil
}

// IsConversion reports whether the call expression is a type conversion.
func IsConversion(info *types.Info, call *ast.CallExpr) bool {
	tv, ok := info.Types[call.Fun]
	return ok && tv.IsType()
}

// IsAtomicPointer reports whether t (after stripping one level of
// pointer indirection) is sync/atomic.Pointer[T].
func IsAtomicPointer(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil &&
		obj.Pkg().Path() == "sync/atomic" && obj.Name() == "Pointer"
}

// BasePath renders an expression as a canonical access path for
// syntactic matching ("s", "b.mu", "r.slots[id]"). Identifiers resolve
// through their object so shadowing cannot alias two paths. The second
// result is false when the expression contains a component (call,
// literal, channel receive, ...) that has no stable path.
func BasePath(info *types.Info, e ast.Expr) (string, bool) {
	switch e := Unparen(e).(type) {
	case *ast.Ident:
		obj := info.Uses[e]
		if obj == nil {
			obj = info.Defs[e]
		}
		if obj == nil {
			return "", false
		}
		// Objects are unique per declaration; position disambiguates
		// same-named variables in different scopes.
		return obj.Name() + "@" + itoa(int(obj.Pos())), true
	case *ast.SelectorExpr:
		base, ok := BasePath(info, e.X)
		if !ok {
			return "", false
		}
		return base + "." + e.Sel.Name, true
	case *ast.IndexExpr:
		base, ok := BasePath(info, e.X)
		if !ok {
			return "", false
		}
		idx, ok := BasePath(info, e.Index)
		if !ok {
			idx = "?"
		}
		return base + "[" + idx + "]", true
	case *ast.StarExpr:
		return BasePath(info, e.X)
	case *ast.UnaryExpr:
		return BasePath(info, e.X)
	case *ast.BasicLit:
		return strings.TrimSpace(e.Value), true
	}
	return "", false
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

// RootIdentObj walks selector/index/star/unary chains to the root
// identifier's object; nil when the chain bottoms out elsewhere.
func RootIdentObj(info *types.Info, e ast.Expr) types.Object {
	for {
		switch x := Unparen(e).(type) {
		case *ast.Ident:
			if obj := info.Uses[x]; obj != nil {
				return obj
			}
			return info.Defs[x]
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.UnaryExpr:
			e = x.X
		default:
			return nil
		}
	}
}
