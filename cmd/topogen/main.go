// Command topogen generates BRITE-style topologies and reports their
// statistics; -dot emits Graphviz for visual inspection.
//
//	topogen -n 1000 -m 2 -seed 1
//	topogen -model waxman -n 300 -alpha 0.15 -beta 0.2 -dot > g.dot
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"sort"

	"cosmos/internal/overlay"
	"cosmos/internal/topology"
)

func main() {
	var (
		n     = flag.Int("n", 1000, "number of nodes")
		m     = flag.Int("m", 2, "edges per new node (BA model)")
		seed  = flag.Int64("seed", 1, "random seed")
		model = flag.String("model", "ba", "ba (power law) or waxman")
		alpha = flag.Float64("alpha", 0.15, "Waxman alpha")
		beta  = flag.Float64("beta", 0.2, "Waxman beta")
		dot   = flag.Bool("dot", false, "emit Graphviz instead of stats")
	)
	flag.Parse()

	var g *topology.Graph
	var err error
	switch *model {
	case "ba":
		g, err = topology.GeneratePowerLaw(*n, *m, *seed)
	case "waxman":
		g, err = topology.GenerateWaxman(*n, *alpha, *beta, *seed)
	default:
		err = fmt.Errorf("unknown model %q", *model)
	}
	if err != nil {
		log.Fatalf("topogen: %v", err)
	}

	if *dot {
		emitDot(g)
		return
	}
	fmt.Printf("model=%s nodes=%d edges=%d connected=%v maxDegree=%d\n",
		*model, g.NumNodes(), g.NumEdges(), g.Connected(), g.MaxDegree())
	hist := g.DegreeHistogram()
	degrees := make([]int, 0, len(hist))
	for d := range hist {
		degrees = append(degrees, d)
	}
	sort.Ints(degrees)
	fmt.Println("degree histogram:")
	for _, d := range degrees {
		fmt.Printf("  %4d: %d\n", d, hist[d])
	}
	tree, err := overlay.MST(g, 0)
	if err != nil {
		log.Fatalf("topogen: %v", err)
	}
	maxDepth, sumDelay := 0, 0.0
	for v := 0; v < g.NumNodes(); v++ {
		if d := tree.Depth(v); d > maxDepth {
			maxDepth = d
		}
		sumDelay += tree.LinkDelay[v]
	}
	fmt.Printf("MST: weight=%.1fms maxDepth=%d\n", sumDelay, maxDepth)
}

func emitDot(g *topology.Graph) {
	fmt.Fprintln(os.Stdout, "graph topology {")
	for i := range g.Nodes {
		for _, e := range g.Adj[i] {
			if e.To > i {
				fmt.Printf("  n%d -- n%d [len=%.1f];\n", i, e.To, e.Delay)
			}
		}
	}
	fmt.Fprintln(os.Stdout, "}")
}
