package transport

import (
	"net"
	"sync"
	"testing"
	"time"

	"cosmos/internal/core"
	"cosmos/internal/stream"
)

func wireRoundTripValue(t *testing.T, v stream.Value) stream.Value {
	t.Helper()
	out, err := FromWireValue(ToWireValue(v))
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestValueCodecRoundTrip(t *testing.T) {
	values := []stream.Value{
		stream.Int(-42),
		stream.Float(3.25),
		stream.String_("hello 'world'"),
		stream.Bool(true),
		stream.Bool(false),
		stream.Time(123456),
	}
	for _, v := range values {
		got := wireRoundTripValue(t, v)
		if !got.Equal(v) || got.Kind() != v.Kind() {
			t.Errorf("round trip %v -> %v", v, got)
		}
	}
	if _, err := FromWireValue(WireValue{Kind: 99}); err == nil {
		t.Error("unknown kind should fail")
	}
}

func TestSchemaAndTupleCodec(t *testing.T) {
	sch := stream.MustSchema("S",
		stream.Field{Name: "a", Kind: stream.KindInt},
		stream.Field{Name: "b", Kind: stream.KindString, AvgLen: 24},
	)
	got, err := FromWireSchema(ToWireSchema(sch))
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(sch) {
		t.Errorf("schema round trip: %v vs %v", got, sch)
	}
	tp := stream.MustTuple(sch, 77, stream.Int(1), stream.String_("x"))
	wt := ToWireTuple(tp)
	back, err := FromWireTuple(wt, sch)
	if err != nil {
		t.Fatal(err)
	}
	if !back.Equal(tp) {
		t.Errorf("tuple round trip: %v vs %v", back, tp)
	}
	if _, err := FromWireTuple(wt, nil); err == nil {
		t.Error("nil schema should fail")
	}
}

func TestInfoCodec(t *testing.T) {
	info := &stream.Info{
		Schema: stream.MustSchema("S", stream.Field{Name: "a", Kind: stream.KindFloat}),
		Rate:   12.5,
		Stats:  map[string]stream.AttrStats{"a": {Min: 0, Max: 9, Distinct: 10}},
	}
	got, err := FromWireInfo(ToWireInfo(info))
	if err != nil {
		t.Fatal(err)
	}
	if got.Rate != 12.5 || got.Stats["a"].Distinct != 10 || !got.Schema.Equal(info.Schema) {
		t.Errorf("info round trip: %+v", got)
	}
}

// startServer spins up a daemon-backed system on an ephemeral port.
func startServer(t *testing.T) (addr string, shutdown func()) {
	t.Helper()
	sys, err := core.NewSystem(core.Options{Nodes: 16, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(sys)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		if err := srv.Serve(ln); err != nil {
			t.Errorf("serve: %v", err)
		}
	}()
	return ln.Addr().String(), func() {
		srv.Close()
		<-done
	}
}

func auctionInfo() *stream.Info {
	return &stream.Info{Schema: stream.MustSchema("OpenAuction",
		stream.Field{Name: "itemID", Kind: stream.KindInt},
		stream.Field{Name: "start_price", Kind: stream.KindFloat},
	), Rate: 10}
}

func TestClientServerEndToEnd(t *testing.T) {
	addr, shutdown := startServer(t)
	defer shutdown()

	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	info := auctionInfo()
	if err := c.Register(info, 1); err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var got []stream.Tuple
	tag, err := c.Submit("SELECT itemID FROM OpenAuction [Now] WHERE start_price > 100", 5,
		func(tp stream.Tuple, _ uint64) {
			mu.Lock()
			got = append(got, tp)
			mu.Unlock()
		}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if tag == "" {
		t.Fatal("empty tag")
	}
	pub := func(ts stream.Timestamp, item int64, price float64) {
		tp := stream.MustTuple(info.Schema, ts, stream.Int(item), stream.Float(price))
		if err := c.Publish(tp); err != nil {
			t.Fatal(err)
		}
	}
	pub(1, 7, 500)
	pub(2, 8, 50)
	pub(3, 9, 300)

	// Results are pushed asynchronously; poll briefly.
	deadline := time.Now().Add(2 * time.Second)
	for {
		mu.Lock()
		n := len(got)
		mu.Unlock()
		if n >= 2 || time.Now().After(deadline) {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(got) != 2 {
		t.Fatalf("results = %d, want 2", len(got))
	}
	if got[0].MustGet("OpenAuction.itemID").AsInt() != 7 ||
		got[1].MustGet("OpenAuction.itemID").AsInt() != 9 {
		t.Errorf("results = %v", got)
	}

	st, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Queries != 1 || st.Processors != 1 || st.TotalDataBytes == 0 {
		t.Errorf("stats = %+v", st)
	}
	if err := c.Cancel(tag); err != nil {
		t.Fatal(err)
	}
	if err := c.Cancel(tag); err == nil {
		t.Error("double cancel should fail")
	}
	st, _ = c.Stats()
	if st.Queries != 0 {
		t.Errorf("queries after cancel = %d", st.Queries)
	}
}

func TestServerErrors(t *testing.T) {
	addr, shutdown := startServer(t)
	defer shutdown()
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Publish before register.
	tp := stream.MustTuple(auctionInfo().Schema, 1, stream.Int(1), stream.Float(1))
	if err := c.Publish(tp); err == nil {
		t.Error("publish of unregistered stream should fail")
	}
	// Bad query.
	if _, err := c.Submit("SELECT FROM nowhere", 0, nil, nil, nil); err == nil {
		t.Error("bad query should fail")
	}
	// Bad node.
	if err := c.Register(auctionInfo(), 9999); err == nil {
		t.Error("bad node should fail")
	}
}

func TestConnectionDropCancelsQueries(t *testing.T) {
	sys, err := core.NewSystem(core.Options{Nodes: 16, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(sys)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	defer srv.Close()

	c, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Register(auctionInfo(), 1); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Submit("SELECT itemID FROM OpenAuction [Now]", 2, nil, nil, nil); err != nil {
		t.Fatal(err)
	}
	if sys.Queries() != 1 {
		t.Fatalf("queries = %d", sys.Queries())
	}
	c.Close()
	deadline := time.Now().Add(2 * time.Second)
	for sys.Queries() != 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if sys.Queries() != 0 {
		t.Error("queries should be cancelled when the connection drops")
	}
}
