package cosmos

import (
	"context"
	"fmt"

	"cosmos/internal/transport"
)

// Resilience tunes a remote client's reconnect/resubscribe machinery;
// pass it via WithResilience. See the field docs for defaults.
type Resilience = transport.Resilience

// GapPolicy is the client's reaction to a delivery gap after a resume.
type GapPolicy = transport.GapPolicy

// Gap policies.
const (
	// GapResume (default) records the gap on the Subscription and
	// keeps streaming from the resume point.
	GapResume = transport.GapResume
	// GapError ends the Subscription with an error describing the gap.
	GapError = transport.GapError
)

// Gap describes results lost across a reconnect; Subscription.Gaps
// reports them.
type Gap = transport.Gap

// DialOption configures Dial.
type DialOption func(*dialConfig)

type dialConfig struct {
	resilience  *Resilience
	wireVersion int
}

// WithResilience opts the connection into the reconnecting session
// machinery: on connection loss the client retries with exponential
// backoff + jitter, re-registers its streams when the server turned out
// to be fresh, resumes every live Subscription at the server's new
// session epoch, and records the delivery gap on the Subscription
// instead of killing it. Without this option (the zero state) a lost
// connection ends every subscription — the historical fail-fast
// behaviour.
func WithResilience(r Resilience) DialOption {
	return func(c *dialConfig) { c.resilience = &r }
}

// WithWireVersion caps the wire format version the connection offers
// in its hello (1 = plain gob, 2 = binary batched data frames). The
// default, 0, offers the newest version the client speaks; the server
// answers with the highest version both sides support. Forcing 1 is a
// debugging/compatibility escape hatch (cosmosctl's -wire flag).
func WithWireVersion(v int) DialOption {
	return func(c *dialConfig) { c.wireVersion = v }
}

// Dial returns a Client session over TCP to a cosmosd daemon. The
// daemon hosts the deployment (a LiveSystem by default, so the
// direct-publish data path carries results onto the wire with no
// stabilisation barrier); this client is one connection's view of it.
// Close ends this connection's subscriptions and releases the
// connection — the daemon keeps running.
func Dial(addr string, opts ...DialOption) (Client, error) {
	var cfg dialConfig
	for _, opt := range opts {
		opt(&cfg)
	}
	tc, err := transport.DialConfig(addr, transport.Config{Resilience: cfg.resilience, WireVersion: cfg.wireVersion})
	if err != nil {
		return nil, err
	}
	return &remoteClient{tc: tc}, nil
}

// remoteClient implements Client over the internal/transport protocol.
// Subscription state lives in the transport client (which ends every
// subscription on connection loss or Close); this layer adapts its
// callback pairs onto Subscription sessions.
type remoteClient struct {
	tc *transport.Client
}

// remoteSource publishes one registered stream through the connection.
type remoteSource struct {
	tc     *transport.Client
	schema *Schema
}

func (s remoteSource) Stream() string        { return s.schema.Stream }
func (s remoteSource) Schema() *Schema       { return s.schema }
func (s remoteSource) Publish(t Tuple) error { return s.tc.Publish(t) }

func (c *remoteClient) RegisterStream(info *StreamInfo, node int) (Source, error) {
	if err := c.tc.Register(info, node); err != nil {
		return nil, err
	}
	return remoteSource{tc: c.tc, schema: info.Schema}, nil
}

func (c *remoteClient) Source(name string) (Source, error) {
	// One catalog round trip resolves existence and the schema at once,
	// matching the embedded backends' prompt unknown-stream error.
	infos, err := c.tc.Catalog()
	if err != nil {
		return nil, err
	}
	for _, info := range infos {
		if info.Schema.Stream == name {
			return remoteSource{tc: c.tc, schema: info.Schema}, nil
		}
	}
	return nil, fmt.Errorf("cosmos: stream %q not registered", name)
}

func (c *remoteClient) Submit(ctx context.Context, cql string, userNode int) (*Subscription, error) {
	sub := newSubscription()
	// The callbacks run on the connection's read loop: push never
	// blocks (elastic buffer), so a slow consumer cannot stall other
	// subscriptions sharing the connection.
	onResult := func(t Tuple, seq uint64) { sub.push(t) }
	tag, err := c.tc.Submit(cql, userNode, onResult, sub.end, sub.addGap)
	if err != nil {
		sub.end(err)
		return nil, err
	}
	sub.setTag(tag)
	sub.cancel = func() error { return c.tc.Cancel(tag) }
	sub.watchContext(ctx)
	return sub, nil
}

func (c *remoteClient) Catalog() ([]*StreamInfo, error) { return c.tc.Catalog() }

func (c *remoteClient) Stats() (SystemStats, error) { return c.tc.Stats() }

func (c *remoteClient) Quiesce() error { return c.tc.Quiesce() }

func (c *remoteClient) Close() error { return c.tc.Close() }
