// Package cbn implements the content-based network at the heart of the
// COSMOS data layer (paper §1, §3): "In a CBN, each datagram consists of
// several attribute-value pairs. A node in the network can express its
// data interest as a few selection predicates … The sources and the
// destinations are not known to each other."
//
// COSMOS extends traditional CBN with stream awareness: datagrams belong
// to named streams, and profiles carry per-stream projection sets that
// brokers apply early to save bandwidth (§3.1).
//
// # Two-plane design
//
// The broker separates a rare, interpreted control plane from a hot,
// compiled data plane:
//
//   - Control plane (HandleAdvertise, HandleSubscribe, Unsubscribe,
//     PruneStream, AttachIface): mutex-protected, works on symbolic
//     profiles (attribute names, DNF filters) because covering-based
//     suppression needs the full predicate algebra. Every mutation that
//     feeds routing (subscriptions, aggregates, interfaces) invalidates
//     the compiled routing table; HandleAdvertise needs no invalidation
//     because advert state never enters the table.
//   - Data plane (RouteTuple): reads an immutable routing table published
//     through an atomic.Pointer — one map lookup per tuple, then
//     index-resolved predicate evaluation (predicate.Compiled) and
//     index-based projection (stream.Tuple.ProjectIdx). No mutex, no name
//     lookups, and zero heap allocations for tuples that match nothing.
//
// Per stream, the table is compiled lazily on the first routed tuple and
// keyed by that tuple's schema pointer; tuples carrying a different
// schema pointer (schema drift), and filters the compiler cannot prove
// error-free for the schema, fall back to the interpreted path, which is
// kept bit-identical in delivery and error semantics.
//
// The package separates protocol logic (Broker — synchronous, transport
// agnostic) from transports: SimNet runs brokers over a simulated overlay
// with deterministic FIFO delivery and per-link byte accounting (how the
// paper evaluates, §5), while LiveNet runs each broker on its own
// goroutine with elastic mailboxes between brokers, credit-bounded
// client ingress (backpressure) and per-client delivery pumps; LiveNet
// brokers route concurrently against the same published table without
// contending on the mutex. See the LiveNet type for the elasticity and
// ordering contract.
package cbn

import (
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"cosmos/internal/predicate"
	"cosmos/internal/profile"
	"cosmos/internal/stream"
)

// IfaceID identifies one attachment point of a broker: an overlay link to
// a neighbour broker or a local client (source, processor or user proxy).
type IfaceID int

// Forward instructs the transport to send a subscription on an interface.
type Forward struct {
	Iface IfaceID
	Prof  *profile.Profile
}

// AdvertForward instructs the transport to send an advertisement.
type AdvertForward struct {
	Iface  IfaceID
	Stream string
}

// Delivery instructs the transport to send a (projected) tuple.
type Delivery struct {
	Iface IfaceID
	Tuple stream.Tuple
}

// compiledRoute is one data-plane forwarding decision: deliver on iface
// when the view's compiled filter matches, after its index-based
// projection.
type compiledRoute struct {
	iface IfaceID
	view  *profile.CompiledStream
}

// streamTable is the compiled routing state of one stream. Immutable
// after publication.
type streamTable struct {
	// schema is the schema pointer the routes were compiled against;
	// tuples carrying any other pointer take the interpreted path.
	schema *stream.Schema
	// fallback marks streams whose demand could not be compiled (a filter
	// or projection the compiler cannot prove error-free, or catalog
	// drift): their tuples stay on the interpreted path, without retrying
	// compilation per tuple.
	fallback bool
	// rebinds counts how often the stream's entry has been recompiled for
	// a new schema pointer since the last control-plane invalidation;
	// routeTupleSlow uses it to stop alternating-schema thrash.
	rebinds uint8
	routes  []compiledRoute
}

// route is the lock-free data path: evaluate each route's compiled filter
// directly on the tuple's value slice and project by index. It allocates
// only for the delivery slice (none when the caller recycles a scratch
// slice) and projected tuples; a tuple matching no route allocates
// nothing.
//
//cosmos:hotpath
func (st *streamTable) route(t stream.Tuple, from IfaceID, scratch []Delivery) []Delivery {
	out := scratch[:0]
	for i := range st.routes {
		r := &st.routes[i]
		if r.iface == from {
			continue
		}
		if !r.view.Covers(t.Values, t.Ts) {
			continue
		}
		if out == nil {
			// Sized on first match only, keeping non-matching tuples
			// allocation free.
			out = make([]Delivery, 0, len(st.routes))
		}
		out = append(out, Delivery{Iface: r.iface, Tuple: r.view.Apply(t)})
	}
	return out
}

// routeTable is one immutable snapshot of the compiled routing state,
// published via Broker.table. Copy-on-write: publishing a new stream
// entry replaces the whole table.
type routeTable struct {
	streams map[string]*streamTable
}

// Broker is the protocol logic of one CBN node. All methods are
// synchronous and thread-safe; transports own messaging.
type Broker struct {
	ID int

	// table is the compiled routing table read lock-free by RouteTuple.
	// nil until the first tuple of any stream is routed; reset to nil by
	// every control-plane mutation.
	table atomic.Pointer[routeTable]

	// mu is the control-plane lock; every field below is guarded by mu.
	mu sync.Mutex
	// ifaces is guarded by mu.
	ifaces []IfaceID
	// subs stores every profile received per interface; guarded by mu.
	subs map[IfaceID][]*profile.Profile
	// agg caches the union of subs per interface (what that side
	// wants); guarded by mu.
	agg map[IfaceID]*profile.Profile
	// sent records what has been propagated out of each interface, for
	// covering-based suppression; guarded by mu.
	sent map[IfaceID]*profile.Profile
	// adverts maps stream name → interfaces through which the stream's
	// source is reachable; guarded by mu.
	adverts map[string]map[IfaceID]bool
	// projCache caches projected schemas keyed by stream + attr set,
	// for the interpreted fallback path; guarded by mu.
	projCache map[string]*stream.Schema
	// catalog optionally holds the node's stream catalog; when set, a
	// tuple schema that disagrees with the registered one is treated as
	// drift and compiled routing is refused for the stream. Guarded by
	// mu.
	catalog *stream.Registry
}

// NewBroker builds an empty broker.
func NewBroker(id int) *Broker {
	return &Broker{
		ID:        id,
		subs:      map[IfaceID][]*profile.Profile{},
		agg:       map[IfaceID]*profile.Profile{},
		sent:      map[IfaceID]*profile.Profile{},
		adverts:   map[string]map[IfaceID]bool{},
		projCache: map[string]*stream.Schema{},
	}
}

// SetCatalog installs the node's stream catalog as a schema-drift guard
// for compiled routing (see package comment). Optional; a nil catalog
// trusts the first schema pointer seen per stream.
func (b *Broker) SetCatalog(reg *stream.Registry) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.catalog = reg
	b.invalidateLocked()
}

// invalidateLocked discards the compiled routing table; the next routed
// tuple of each stream recompiles it from current broker state. Callers
// hold b.mu.
func (b *Broker) invalidateLocked() {
	b.table.Store(nil)
}

// AttachIface registers an interface.
func (b *Broker) AttachIface(id IfaceID) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for _, existing := range b.ifaces {
		if existing == id {
			return
		}
	}
	b.ifaces = append(b.ifaces, id)
	sort.Slice(b.ifaces, func(i, j int) bool { return b.ifaces[i] < b.ifaces[j] })
	b.invalidateLocked()
}

// Ifaces returns the attached interface IDs, sorted.
func (b *Broker) Ifaces() []IfaceID {
	b.mu.Lock()
	defer b.mu.Unlock()
	return append([]IfaceID(nil), b.ifaces...)
}

// normalize widens a profile's projection sets with the attributes its
// filters evaluate, so that en-route projection never strips attributes a
// downstream filter still needs.
func normalize(p *profile.Profile) *profile.Profile {
	out := p.Clone()
	for _, s := range out.Streams {
		attrs := out.Attrs[s]
		if attrs == nil {
			continue // all attributes anyway
		}
		f := out.FilterFor(s)
		if f.IsTrue() {
			continue
		}
		set := map[string]bool{}
		for _, a := range attrs {
			set[a] = true
		}
		changed := false
		for _, a := range f.Attrs() {
			// The intrinsic timestamp resolves from the tuple itself and
			// must not enter projection sets.
			if a == predicate.IntrinsicTs {
				continue
			}
			if !set[a] {
				set[a] = true
				changed = true
			}
		}
		if changed {
			widened := make([]string, 0, len(set))
			for a := range set {
				widened = append(widened, a)
			}
			out.AddStream(s, widened, out.Filters[s])
		}
	}
	return out
}

// HandleAdvertise processes a stream advertisement arriving on an
// interface. Advertisements flood the overlay (they are rare and tiny);
// the broker remembers which interface leads to the source so future
// subscriptions travel toward it. It returns the advert forwards plus any
// pending subscriptions that must now be sent toward the advertiser
// (subscriptions that arrived before the advert).
func (b *Broker) HandleAdvertise(streamName string, from IfaceID) ([]AdvertForward, []Forward) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.adverts[streamName] == nil {
		b.adverts[streamName] = map[IfaceID]bool{}
	}
	if b.adverts[streamName][from] {
		return nil, nil // duplicate advert; stop the flood
	}
	b.adverts[streamName][from] = true

	var adverts []AdvertForward
	for _, iface := range b.ifaces {
		if iface != from {
			adverts = append(adverts, AdvertForward{Iface: iface, Stream: streamName})
		}
	}
	// Re-propagate interested subscriptions toward the new route.
	var subs []Forward
	demand := b.demandExcept(from, streamName)
	if demand != nil {
		if fw := b.coverAndRecord(demand, from); fw != nil {
			subs = append(subs, Forward{Iface: from, Prof: fw})
		}
	}
	return adverts, subs
}

// demandExcept unions the subscriptions for one stream arriving on all
// interfaces except skip; nil when there are none. Callers hold b.mu.
func (b *Broker) demandExcept(skip IfaceID, streamName string) *profile.Profile {
	var acc *profile.Profile
	for iface, ps := range b.subs {
		if iface == skip {
			continue
		}
		for _, p := range ps {
			for _, s := range p.Streams {
				if s != streamName {
					continue
				}
				if acc == nil {
					acc = profile.New()
				}
				one := profile.New()
				one.AddStream(s, p.Attrs[s], p.Filters[s])
				acc.Merge(one)
			}
		}
	}
	return acc
}

// coverAndRecord suppresses the parts of p already covered by what was
// sent on iface, recording the rest. Returns nil when fully covered.
// Callers hold b.mu.
func (b *Broker) coverAndRecord(p *profile.Profile, iface IfaceID) *profile.Profile {
	already := b.sent[iface]
	if already != nil && already.CoversProfile(p) {
		return nil
	}
	if already == nil {
		b.sent[iface] = p.Clone()
	} else {
		already.Merge(p)
	}
	return p
}

// HandleSubscribe processes a profile arriving on an interface, returning
// the forwards the transport must emit. Subscriptions propagate toward
// advertised sources only, with covering-based suppression (a
// subscription covered by one already sent on a link is not re-sent).
func (b *Broker) HandleSubscribe(p *profile.Profile, from IfaceID) []Forward {
	b.mu.Lock()
	defer b.mu.Unlock()
	p = normalize(p)
	b.subs[from] = append(b.subs[from], p)
	if b.agg[from] == nil {
		b.agg[from] = profile.New()
	}
	b.agg[from].Merge(p)
	b.invalidateLocked()

	// Split the profile per stream and route toward each advertiser.
	perIface := map[IfaceID]*profile.Profile{}
	for _, s := range p.Streams {
		for iface := range b.adverts[s] {
			if iface == from {
				continue
			}
			one := profile.New()
			one.AddStream(s, p.Attrs[s], p.Filters[s])
			if perIface[iface] == nil {
				perIface[iface] = profile.New()
			}
			perIface[iface].Merge(one)
		}
	}
	var out []Forward
	ifaces := make([]IfaceID, 0, len(perIface))
	for iface := range perIface {
		ifaces = append(ifaces, iface)
	}
	sort.Slice(ifaces, func(i, j int) bool { return ifaces[i] < ifaces[j] })
	for _, iface := range ifaces {
		if fw := b.coverAndRecord(perIface[iface], iface); fw != nil {
			out = append(out, Forward{Iface: iface, Prof: fw})
		}
	}
	return out
}

// RouteTuple routes a datagram arriving on an interface: it is forwarded
// on every other interface whose aggregated demand covers it, projected
// to that interface's attribute set for the stream (early projection,
// §3.1).
//
// The hot path is lock-free: a published routing table entry compiled for
// the tuple's exact schema pointer is consulted without taking the
// broker mutex. Everything else — first tuple of a stream, schema drift,
// uncompilable demand — goes through the interpreted slow path, whose
// deliveries (and errors) the compiled path reproduces exactly.
//
//cosmos:hotpath
func (b *Broker) RouteTuple(t stream.Tuple, from IfaceID) ([]Delivery, error) {
	return b.RouteTupleInto(t, from, nil)
}

// RouteTupleInto is RouteTuple with a caller-owned scratch slice for
// the deliveries (appended from scratch[:0], grown as needed). A
// single-threaded transport can recycle the returned slice across
// tuples and route match-free traffic with zero allocations.
//
//cosmos:hotpath
func (b *Broker) RouteTupleInto(t stream.Tuple, from IfaceID, scratch []Delivery) ([]Delivery, error) {
	if t.Schema != nil {
		if tbl := b.table.Load(); tbl != nil {
			if st, ok := tbl.streams[t.Schema.Stream]; ok && !st.fallback && st.applies(t.Schema) {
				return st.route(t, from, scratch), nil
			}
		}
	}
	// Deliberate cold exit: first tuple of a stream, schema drift, or
	// uncompilable demand take the interpreted mutex path.
	//lint:ignore hotpath slow path runs once per (stream, schema) epoch, not per tuple
	return b.routeTupleSlow(t, from)
}

// applies reports whether the compiled entry is valid for tuples of the
// given schema: the pointer it was compiled against, or — so that an
// upstream broker recompiling its own table (and thus minting fresh
// projected-schema pointers) cannot knock this broker off the lock-free
// path — any schema with an identical layout, for which the compiled
// column indices and kind decisions are equally sound.
//
//cosmos:hotpath
func (st *streamTable) applies(s *stream.Schema) bool {
	return st.schema == s || st.schema.Equal(s)
}

// maxSchemaRebinds caps how often a stream's entry may be recompiled for
// a new schema pointer between control-plane invalidations. Legitimate
// schema evolution rebinds once per epoch; publishers alternating between
// different layouts under one stream name would otherwise recompile per
// tuple, so past the cap the stream settles on the interpreted path.
const maxSchemaRebinds = 8

// routeTupleSlow is the mutex-protected path: it compiles and publishes
// the stream's routing entry when the table has none — or rebinds it when
// tuples have moved to a new schema — then routes: compiled if the entry
// applies, interpreted otherwise.
func (b *Broker) routeTupleSlow(t stream.Tuple, from IfaceID) ([]Delivery, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if t.Schema != nil {
		tbl := b.table.Load()
		var st *streamTable
		if tbl != nil {
			st = tbl.streams[t.Schema.Stream]
		}
		switch {
		case st == nil:
			st = b.compileStreamLocked(t.Schema)
			b.publishLocked(t.Schema.Stream, st)
		case !st.applies(t.Schema) && st.rebinds < maxSchemaRebinds:
			// The stream's traffic moved to a new schema (e.g. an
			// upstream broker changed its projection while old-schema
			// tuples were still in flight): recompile for what is
			// actually arriving instead of pinning the stream to the
			// interpreted path forever.
			rebinds := st.rebinds + 1
			st = b.compileStreamLocked(t.Schema)
			st.rebinds = rebinds
			b.publishLocked(t.Schema.Stream, st)
		}
		if !st.fallback && st.applies(t.Schema) {
			return st.route(t, from, nil), nil
		}
	}
	return b.routeInterpretedLocked(t, from)
}

// compileStreamLocked builds the compiled routing entry for one stream
// against the given schema pointer. Demand that cannot be compiled
// (because the interpreted evaluator could error for this schema) yields
// a fallback entry instead. Callers hold b.mu.
func (b *Broker) compileStreamLocked(s *stream.Schema) *streamTable {
	st := &streamTable{schema: s}
	if b.catalog != nil {
		if reg, ok := b.catalog.Schema(s.Stream); ok && !reg.Equal(s) {
			st.fallback = true // schema drift vs the catalog
			return st
		}
	}
	for _, iface := range b.ifaces {
		agg := b.agg[iface]
		if agg == nil {
			continue
		}
		cs, err := agg.CompileFor(s)
		if err != nil {
			st.fallback = true
			st.routes = nil
			return st
		}
		if cs == nil {
			continue // this side has no interest in the stream
		}
		cs.ProjSchema = b.internProjSchema(cs.ProjSchema)
		st.routes = append(st.routes, compiledRoute{iface: iface, view: cs})
	}
	return st
}

// internProjSchema canonicalises a projected schema through projCache so
// successive recompiles (and the interpreted path) hand out one stable
// pointer per (stream, attr set). Downstream brokers key their own
// compiled tables on the schema pointer of arriving tuples; minting a
// fresh pointer on every rebuild would evict them from the fast path.
// Callers hold b.mu.
func (b *Broker) internProjSchema(ps *stream.Schema) *stream.Schema {
	if ps == nil {
		return nil
	}
	key := ps.Stream + "|" + strings.Join(ps.AttrNames(), ",")
	if cached, ok := b.projCache[key]; ok && cached.Equal(ps) {
		return cached
	}
	b.projCache[key] = ps
	return ps
}

// publishLocked installs a stream's compiled entry into a fresh immutable
// table snapshot (copy-on-write). Callers hold b.mu.
func (b *Broker) publishLocked(name string, st *streamTable) {
	old := b.table.Load()
	var streams map[string]*streamTable
	if old == nil {
		streams = map[string]*streamTable{name: st}
	} else {
		streams = make(map[string]*streamTable, len(old.streams)+1)
		for k, v := range old.streams {
			streams[k] = v
		}
		streams[name] = st
	}
	b.table.Store(&routeTable{streams: streams})
}

// routeInterpretedLocked is the interpreted data path: per-interface
// aggregate profiles evaluated symbolically. It is the semantic reference
// the compiled path must match, and serves first tuples, schema drift and
// uncompilable demand. Callers hold b.mu.
func (b *Broker) routeInterpretedLocked(t stream.Tuple, from IfaceID) ([]Delivery, error) {
	var out []Delivery
	for _, iface := range b.ifaces {
		if iface == from {
			continue
		}
		agg := b.agg[iface]
		if agg == nil {
			continue
		}
		ok, err := agg.Covers(t)
		if err != nil {
			return nil, err
		}
		if !ok {
			continue
		}
		projected, err := b.project(agg, t)
		if err != nil {
			return nil, err
		}
		out = append(out, Delivery{Iface: iface, Tuple: projected})
	}
	return out, nil
}

// project applies an aggregate profile's projection with schema caching.
// Callers hold b.mu.
func (b *Broker) project(agg *profile.Profile, t stream.Tuple) (stream.Tuple, error) {
	attrs := agg.AttrsFor(t.Schema.Stream)
	if attrs == nil {
		return t, nil
	}
	key := t.Schema.Stream + "|" + strings.Join(attrs, ",")
	ps, ok := b.projCache[key]
	if !ok || !sameStream(ps, t.Schema) {
		var err error
		ps, err = t.Schema.Project(attrs)
		if err != nil {
			return stream.Tuple{}, err
		}
		b.projCache[key] = ps
	}
	return t.Project(ps)
}

func sameStream(a, bS *stream.Schema) bool { return a != nil && a.Stream == bS.Stream }

// DemandOn returns the aggregated profile of one interface (what the far
// side wants); nil when nothing is subscribed.
func (b *Broker) DemandOn(iface IfaceID) *profile.Profile {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.agg[iface]
}

// KnowsSource reports whether the broker has a route toward a stream's
// source.
func (b *Broker) KnowsSource(streamName string) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.adverts[streamName]) > 0
}

// PruneStream discards every trace of a stream from the broker's state:
// advertisement routes, per-interface subscriptions, aggregates, and
// covering records. COSMOS processors retire result stream names when a
// query group changes; pruning plays the role of the state TTL a
// long-running deployment would use.
func (b *Broker) PruneStream(name string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.invalidateLocked()
	delete(b.adverts, name)
	for iface, subs := range b.subs {
		kept := subs[:0]
		changed := false
		for _, p := range subs {
			if contains(p.Streams, name) {
				changed = true
				if p.RemoveStream(name) {
					continue // profile became empty; drop it
				}
			}
			kept = append(kept, p)
		}
		b.subs[iface] = kept
		if changed {
			agg := profile.New()
			for _, p := range kept {
				agg.Merge(p)
			}
			b.agg[iface] = agg
		}
	}
	for iface, sent := range b.sent {
		if sent != nil && contains(sent.Streams, name) {
			if sent.RemoveStream(name) {
				delete(b.sent, iface)
			}
		}
	}
	for key := range b.projCache {
		if len(key) > len(name) && key[:len(name)] == name && key[len(name)] == '|' {
			delete(b.projCache, key)
		}
	}
}

func contains(list []string, s string) bool {
	for _, x := range list {
		if x == s {
			return true
		}
	}
	return false
}

// Unsubscribe removes every subscription previously received on the
// interface that Equal-matches p, rebuilding the interface aggregate.
// Propagating unsubscriptions upstream is handled by transports that
// need it (the simulator re-issues full state instead).
func (b *Broker) Unsubscribe(p *profile.Profile, from IfaceID) {
	b.mu.Lock()
	defer b.mu.Unlock()
	kept := b.subs[from][:0]
	for _, existing := range b.subs[from] {
		if !existing.Equal(normalize(p)) {
			kept = append(kept, existing)
		}
	}
	b.subs[from] = kept
	agg := profile.New()
	for _, existing := range kept {
		agg.Merge(existing)
	}
	b.agg[from] = agg
	b.invalidateLocked()
}
