package cost

import (
	"time"

	"cosmos/internal/obs"
)

// Feed is the typed runtime-statistics input the adaptive
// re-optimisation layer consumes: observed (not estimated) rates,
// selectivities and latency quantiles over one measurement window,
// distilled from two core.SystemStats snapshots that bracket it
// (core.BuildCostFeed does the distillation).
//
// The contract with the estimator: Estimator predicts C(q) from
// catalog statistics a priori; a Feed reports what actually happened,
// in the same units (tuples/s, bytes/s), so the optimiser can replace
// or calibrate estimates plan-by-plan — Strider-style hybrid adaptive
// re-optimisation on window statistics. Rates are per second over
// Window; a plan absent from the earlier snapshot gets its full
// counters attributed to the window (it was installed mid-window).
type Feed struct {
	// Window is the measurement interval the rates are normalised over.
	Window time.Duration
	// IngestRate / DeliverRate are system-wide tuples/s accepted from
	// sources and results/s handed to subscribers.
	IngestRate  float64
	DeliverRate float64
	// Stages reports each data-path stage's observed rate and latency
	// quantiles, pipeline order (ingest, route, exec, deliver, wire).
	Stages []StageFeed
	// Plans reports per-plan observations, sorted by (Proc, Plan).
	Plans []PlanFeed
	// Links reports per-overlay-link observed bandwidth, sorted (A, B).
	Links []LinkFeed
}

// StageFeed is one stage's observed window statistics.
type StageFeed struct {
	Stage string
	// Rate is events/s through the stage over the window.
	Rate float64
	// P50/P99/P9999 are sampled latency quantiles over the system's
	// lifetime histogram (not window-differenced: quantiles of merged
	// histograms cannot be subtracted; treat them as current-regime
	// estimates).
	P50, P99, P9999 time.Duration
}

// PlanFeed is one installed plan's observed window statistics — the
// per-plan measurement the merging optimiser needs to re-evaluate a
// group online.
type PlanFeed struct {
	Plan string
	Proc int
	// Queries lists the member query tags the plan serves.
	Queries []string
	// PushRate / EmitRate are input and output tuples/s over the window.
	PushRate float64
	EmitRate float64
	// Selectivity is the observed output/input ratio over the window
	// (the measured counterpart of Estimator's predicted selectivity);
	// 0 when the plan saw no input.
	Selectivity float64
	// PushP50 / PushP99 are the plan's sampled push-latency quantiles.
	PushP50, PushP99 time.Duration
}

// LinkFeed is one overlay link's observed window bandwidth — the
// measured C(q) transport cost the placement optimiser weighs.
type LinkFeed struct {
	A, B int
	// DataBytesPerSec / DataMsgsPerSec are tuple traffic over the
	// window; DelayMs is the link's configured latency.
	DataBytesPerSec float64
	DataMsgsPerSec  float64
	DelayMs         float64
}

// PlanByID returns the PlanFeed for a plan ID, if present.
func (f *Feed) PlanByID(plan string) (PlanFeed, bool) {
	for _, p := range f.Plans {
		if p.Plan == plan {
			return p, true
		}
	}
	return PlanFeed{}, false
}

// Rate normalises a counter delta over a window.
func Rate(delta int64, window time.Duration) float64 {
	if window <= 0 {
		return 0
	}
	return float64(delta) / window.Seconds()
}

// Quantiles extracts the standard (p50, p99, p99.99) triple from a
// histogram snapshot as durations.
func Quantiles(h obs.HistSnapshot) (p50, p99, p9999 time.Duration) {
	return time.Duration(h.Quantile(0.50)),
		time.Duration(h.Quantile(0.99)),
		time.Duration(h.Quantile(0.9999))
}
