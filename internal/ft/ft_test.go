package ft

import (
	"testing"

	"cosmos/internal/cql"
	"cosmos/internal/overlay"
	"cosmos/internal/spe"
	"cosmos/internal/stream"
	"cosmos/internal/topology"
)

var testSchema = stream.MustSchema("S",
	stream.Field{Name: "v", Kind: stream.KindInt},
)

func tup(ts stream.Timestamp, v int64) stream.Tuple {
	return stream.MustTuple(testSchema, ts, stream.Int(v))
}

func TestRetransmitLostFrames(t *testing.T) {
	tx := NewRetransmitter(64)
	rx := &Receiver{}

	f1 := tx.Send(tup(1, 1))
	f2 := tx.Send(tup(2, 2))
	f3 := tx.Send(tup(3, 3))

	// Deliver 1, lose 2, deliver 3 → gap (1,2].
	if fresh, gap := rx.Accept(f1); !fresh || gap != nil {
		t.Fatalf("frame 1: fresh=%v gap=%v", fresh, gap)
	}
	fresh, gap := rx.Accept(f3)
	if !fresh || gap == nil {
		t.Fatalf("frame 3 should reveal a gap")
	}
	if gap.From != 1 || gap.To != 2 {
		t.Fatalf("gap = %+v", gap)
	}
	// NACK-driven replay recovers frame 2.
	frames, err := tx.Replay(gap.From, gap.To)
	if err != nil {
		t.Fatal(err)
	}
	if len(frames) != 1 || frames[0].Seq != f2.Seq || frames[0].Tuple.MustGet("v").AsInt() != 2 {
		t.Fatalf("replay = %v", frames)
	}
	// Duplicates are rejected.
	if fresh, _ := rx.Accept(f3); fresh {
		t.Error("duplicate accepted")
	}
}

func TestAckEvictsAndReplayBeyondHorizonFails(t *testing.T) {
	tx := NewRetransmitter(4)
	for i := 1; i <= 10; i++ {
		tx.Send(tup(stream.Timestamp(i), int64(i)))
	}
	// Window 4 keeps frames 7..10 only.
	if tx.Pending() != 4 {
		t.Fatalf("pending = %d", tx.Pending())
	}
	if _, err := tx.Replay(2, 5); err == nil {
		t.Error("replay beyond horizon should fail")
	}
	tx.Ack(8)
	if tx.Pending() != 2 {
		t.Errorf("pending after ack = %d", tx.Pending())
	}
	frames, err := tx.Replay(8, 10)
	if err != nil || len(frames) != 2 {
		t.Fatalf("replay after ack = %v, %v", frames, err)
	}
}

func TestRepairTree(t *testing.T) {
	g, err := topology.GeneratePowerLaw(40, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	tree, err := overlay.MST(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	delays := overlay.AllPairsDelays(g)
	// Pick an internal (non-root) node with children.
	failed := -1
	for v := 0; v < tree.NumNodes(); v++ {
		if v != tree.Root && len(tree.Children[v]) > 0 {
			failed = v
			break
		}
	}
	if failed < 0 {
		t.Skip("no internal node")
	}
	orphans := append([]int(nil), tree.Children[failed]...)
	parent := tree.Parent[failed]
	res, err := RepairTree(tree, failed, func(a, b int) float64 { return delays[a][b] })
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Resubscribe) != len(orphans) {
		t.Fatalf("resubscribe = %v, orphans = %v", res.Resubscribe, orphans)
	}
	for _, c := range orphans {
		if tree.Parent[c] != parent {
			t.Errorf("orphan %d reattached to %d, want %d", c, tree.Parent[c], parent)
		}
	}
	// All surviving nodes still reach the root.
	for v := 0; v < tree.NumNodes(); v++ {
		if v == failed {
			continue
		}
		path := tree.PathToRoot(v)
		if path[len(path)-1] != tree.Root {
			t.Fatalf("node %d lost connectivity", v)
		}
		for _, hop := range path {
			if hop == failed {
				t.Fatalf("node %d still routes through the failed node", v)
			}
		}
	}
}

func TestRepairTreeErrors(t *testing.T) {
	g, _ := topology.GeneratePowerLaw(10, 2, 1)
	tree, _ := overlay.MST(g, 0)
	if _, err := RepairTree(tree, tree.Root, nil); err == nil {
		t.Error("root failure should be rejected")
	}
	if _, err := RepairTree(tree, 99, nil); err == nil {
		t.Error("out of range should be rejected")
	}
}

func catalog() *stream.Registry {
	r := stream.NewRegistry()
	r.Register(&stream.Info{Schema: stream.MustSchema("OpenAuction",
		stream.Field{Name: "itemID", Kind: stream.KindInt},
		stream.Field{Name: "price", Kind: stream.KindFloat},
	), Rate: 10})
	r.Register(&stream.Info{Schema: stream.MustSchema("ClosedAuction",
		stream.Field{Name: "itemID", Kind: stream.KindInt},
	), Rate: 10})
	return r
}

func TestCheckpointFailoverResumesExactly(t *testing.T) {
	cat := catalog()
	b, err := cql.AnalyzeString(
		"SELECT O.itemID FROM OpenAuction [Range 1 Hour] O, ClosedAuction [Now] C WHERE O.itemID = C.itemID", cat)
	if err != nil {
		t.Fatal(err)
	}
	open, _ := cat.Schema("OpenAuction")
	closed, _ := cat.Schema("ClosedAuction")
	openT := func(ts stream.Timestamp, item int64) stream.Tuple {
		return stream.MustTuple(open, ts, stream.Int(item), stream.Float(1))
	}
	closedT := func(ts stream.Timestamp, item int64) stream.Tuple {
		return stream.MustTuple(closed, ts, stream.Int(item))
	}

	// Primary runs and checkpoints after buffering opens.
	var primaryOut []stream.Tuple
	primary := spe.NewEngine(func(t stream.Tuple) { primaryOut = append(primaryOut, t) })
	plan, err := primary.Install("g1", b, "res")
	if err != nil {
		t.Fatal(err)
	}
	cp := NewCheckpointer()
	cp.Register("g1", b, "res")
	primary.Consume(openT(100, 1))
	primary.Consume(openT(200, 2))
	cp.Capture(plan)

	// Primary fails here. Survivor takes over from the checkpoint.
	var survivorOut []stream.Tuple
	survivor := spe.NewEngine(func(t stream.Tuple) { survivorOut = append(survivorOut, t) })
	recovered, err := cp.Failover(survivor)
	if err != nil {
		t.Fatal(err)
	}
	if len(recovered) != 1 || recovered[0] != "g1" {
		t.Fatalf("recovered = %v", recovered)
	}
	// A close arriving after failover joins the opens buffered BEFORE
	// the failure — state survived.
	survivor.Consume(closedT(300, 1))
	if len(survivorOut) != 1 || survivorOut[0].MustGet("OpenAuction.itemID").AsInt() != 1 {
		t.Fatalf("survivor out = %v", survivorOut)
	}
	// Reference: an engine without the checkpoint would miss the join.
	cold := spe.NewEngine(nil)
	if _, err := cold.Install("g1", b, "res"); err != nil {
		t.Fatal(err)
	}
	var coldOut int
	cold2 := spe.NewEngine(func(stream.Tuple) { coldOut++ })
	cold2.Install("g1", b, "res")
	cold2.Consume(closedT(300, 1))
	if coldOut != 0 {
		t.Error("cold engine should have no state")
	}
}

func TestCheckpointDrop(t *testing.T) {
	cp := NewCheckpointer()
	cat := catalog()
	b, _ := cql.AnalyzeString("SELECT itemID FROM OpenAuction [Now]", cat)
	cp.Register("q", b, "r")
	e := spe.NewEngine(nil)
	p, _ := e.Install("q", b, "r")
	cp.Capture(p)
	if _, ok := cp.Snapshot("q"); !ok {
		t.Fatal("snapshot missing")
	}
	cp.Drop("q")
	if _, ok := cp.Snapshot("q"); ok {
		t.Error("snapshot survived drop")
	}
	survivor := spe.NewEngine(nil)
	recovered, err := cp.Failover(survivor)
	if err != nil || len(recovered) != 0 {
		t.Errorf("failover after drop = %v, %v", recovered, err)
	}
}

func TestSnapshotRestoreRoundTrip(t *testing.T) {
	cat := catalog()
	b, _ := cql.AnalyzeString("SELECT itemID FROM OpenAuction [Range 1 Hour]", cat)
	p1, err := spe.Compile("q", b, "r")
	if err != nil {
		t.Fatal(err)
	}
	open, _ := cat.Schema("OpenAuction")
	for i := 0; i < 5; i++ {
		p1.Push(stream.MustTuple(open, stream.Timestamp(i*1000), stream.Int(int64(i)), stream.Float(1)))
	}
	snap := p1.Snapshot()
	p2, _ := spe.Compile("q", b, "r")
	if err := p2.Restore(snap); err != nil {
		t.Fatal(err)
	}
	s2 := p2.Snapshot()
	if s2.Watermark != snap.Watermark {
		t.Error("watermark differs")
	}
	if len(s2.Buffers["OpenAuction"]) != len(snap.Buffers["OpenAuction"]) {
		t.Error("buffers differ")
	}
	// Restore into an incompatible plan fails.
	other, _ := cql.AnalyzeString("SELECT itemID FROM ClosedAuction [Now]", cat)
	p3, _ := spe.Compile("other", other, "r")
	if err := p3.Restore(snap); err == nil {
		t.Error("incompatible restore should fail")
	}
}
