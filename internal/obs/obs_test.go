package obs

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestStageCountingAndSampling(t *testing.T) {
	m := New(Options{SampleEvery: 4})
	sampled := 0
	for i := 0; i < 100; i++ {
		start := m.StageStart(StageIngest)
		if start != 0 {
			sampled++
		}
		m.StageEnd(StageIngest, start)
	}
	if got := m.StageCount(StageIngest); got != 100 {
		t.Fatalf("StageCount = %d", got)
	}
	if sampled != 25 {
		t.Fatalf("sampled %d of 100 at every=4", sampled)
	}
	if lat := m.StageLatency(StageIngest); lat.Count != 25 {
		t.Fatalf("latency observations = %d, want 25", lat.Count)
	}
	// Batch counting crosses sampling boundaries.
	b := New(Options{SampleEvery: 10})
	timed := 0
	for i := 0; i < 30; i++ {
		if start := b.StageStartN(StageWire, 7); start != 0 {
			timed++
			b.StageEnd(StageWire, start)
		}
	}
	if got := b.StageCount(StageWire); got != 210 {
		t.Fatalf("batch StageCount = %d", got)
	}
	if timed != 21 { // 210/10 boundaries crossed
		t.Fatalf("batch sampled %d, want 21", timed)
	}
}

// Striped counting: distinct hints land on distinct shards, the stage
// count is their exact sum, and each stripe samples 1-in-SampleEvery
// of its own events — so the overall sampled fraction is preserved.
func TestStripedCounting(t *testing.T) {
	m := New(Options{SampleEvery: 4})
	sampled := 0
	for stripe := 0; stripe < 2*NumStripes; stripe++ { // hints wrap modulo NumStripes
		for i := 0; i < 100; i++ {
			if start := m.StageStartAt(StageDeliver, stripe); start != 0 {
				sampled++
				m.StageEnd(StageDeliver, start)
			}
		}
	}
	if got := m.StageCount(StageDeliver); got != 2*NumStripes*100 {
		t.Fatalf("StageCount = %d, want %d", got, 2*NumStripes*100)
	}
	// Two hint rounds fold onto each stripe: 200 events per stripe, 50
	// sampled each.
	if want := 2 * NumStripes * 25; sampled != want {
		t.Fatalf("sampled %d, want %d", sampled, want)
	}
	if lat := m.StageLatency(StageDeliver); int(lat.Count) != 2*NumStripes*25 {
		t.Fatalf("latency observations = %d", lat.Count)
	}
	// Batch variant.
	b := New(Options{SampleEvery: 10})
	timed := 0
	for stripe := 0; stripe < NumStripes; stripe++ {
		for i := 0; i < 30; i++ {
			if start := b.StageStartNAt(StageWire, 7, stripe); start != 0 {
				timed++
				b.StageEnd(StageWire, start)
			}
		}
	}
	if got := b.StageCount(StageWire); got != int64(NumStripes)*210 {
		t.Fatalf("batch StageCount = %d", got)
	}
	if timed != NumStripes*21 {
		t.Fatalf("batch sampled %d, want %d", timed, NumStripes*21)
	}
}

func TestSamplingDisabled(t *testing.T) {
	m := New(Options{SampleEvery: -1})
	for i := 0; i < 1000; i++ {
		if start := m.StageStart(StageExec); start != 0 {
			t.Fatal("sampled with sampling disabled")
		}
	}
	if m.StageCount(StageExec) != 1000 {
		t.Fatal("counters must stay on when sampling is off")
	}
	if New(Options{}).SampleEvery() != DefaultSampleEvery {
		t.Fatal("zero SampleEvery must mean the default")
	}
}

func TestStageSnapshotsOrder(t *testing.T) {
	m := New(Options{})
	m.StageStart(StageRoute)
	ss := m.StageSnapshots()
	if len(ss) != int(NumStages) {
		t.Fatalf("%d stages", len(ss))
	}
	want := []string{"ingest", "route", "exec", "deliver", "wire"}
	for i, s := range ss {
		if s.Stage != want[i] {
			t.Fatalf("stage[%d] = %q, want %q", i, s.Stage, want[i])
		}
	}
	if ss[StageRoute].Count != 1 {
		t.Fatalf("route count = %d", ss[StageRoute].Count)
	}
}

// Tracing is systematic and seedable: every N-th publish is traced,
// and the seed shifts which cohort.
func TestTracerDeterministic(t *testing.T) {
	m := New(Options{TraceEvery: 4})
	for ts := int64(1); ts <= 16; ts++ {
		m.TraceSample(ts, "s")
		m.TraceMark(ts, StageRoute)
		m.TraceMark(ts, StageExec)
	}
	traces := m.Traces()
	if len(traces) != 4 {
		t.Fatalf("%d traces, want 4", len(traces))
	}
	for i, tr := range traces {
		if want := int64(4 * (i + 1)); tr.Key != want {
			t.Fatalf("trace %d key %d, want %d", i, tr.Key, want)
		}
		if len(tr.Events) != 2 || tr.Events[0].Stage != "route" || tr.Events[1].Stage != "exec" {
			t.Fatalf("trace %d events %+v", i, tr.Events)
		}
		bd := tr.Breakdown()
		if len(bd) != 2 || bd[1].Offset < bd[0].Offset {
			t.Fatalf("breakdown %+v", bd)
		}
		if tr.End() <= 0 {
			t.Fatalf("End = %v", tr.End())
		}
	}
	// A different seed traces a shifted cohort.
	m2 := New(Options{TraceEvery: 4, TraceSeed: 1})
	for ts := int64(1); ts <= 16; ts++ {
		m2.TraceSample(ts, "s")
	}
	tr2 := m2.Traces()
	if len(tr2) != 4 || tr2[0].Key == traces[0].Key {
		t.Fatalf("seeded cohort not shifted: %+v", tr2)
	}
}

func TestTracerCapEviction(t *testing.T) {
	m := New(Options{TraceEvery: 1, TraceCap: 3})
	for ts := int64(1); ts <= 10; ts++ {
		m.TraceSample(ts, "s")
	}
	traces := m.Traces()
	if len(traces) != 3 {
		t.Fatalf("%d retained, want 3", len(traces))
	}
	if traces[0].Key != 8 || traces[2].Key != 10 {
		t.Fatalf("FIFO eviction kept %d..%d", traces[0].Key, traces[2].Key)
	}
}

func TestTracerOffIsInert(t *testing.T) {
	m := New(Options{})
	m.TraceSample(1, "s")
	m.TraceMark(1, StageExec)
	if m.TraceOn() || m.Traces() != nil {
		t.Fatal("tracing must be off by default")
	}
	var nilM *Metrics
	nilM.TraceSample(1, "s")
	nilM.TraceMark(1, StageExec)
	if nilM.Traces() != nil || nilM.TraceOn() {
		t.Fatal("nil Metrics must be inert")
	}
}

func TestHandler(t *testing.T) {
	m := New(Options{SampleEvery: 1})
	m.StageEnd(StageIngest, m.StageStart(StageIngest))
	h := Handler(map[string]func() any{
		"stages": func() any { return m.StageSnapshots() },
	})
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 {
		t.Fatalf("/metrics: %d", rec.Code)
	}
	var out map[string][]StageStats
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatalf("bad JSON: %v", err)
	}
	if out["stages"][StageIngest].Count != 1 {
		t.Fatalf("stages JSON: %+v", out["stages"])
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics/stages", nil))
	if rec.Code != 200 || !strings.Contains(rec.Body.String(), `"ingest"`) {
		t.Fatalf("/metrics/stages: %d %q", rec.Code, rec.Body.String())
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/pprof/cmdline", nil))
	if rec.Code != 200 {
		t.Fatalf("pprof cmdline: %d", rec.Code)
	}
}
