package dht

import (
	"fmt"
	"math"
	"testing"

	"cosmos/internal/stream"
)

func info(name string) *stream.Info {
	return &stream.Info{
		Schema: stream.MustSchema(name, stream.Field{Name: "v", Kind: stream.KindFloat}),
		Rate:   1,
	}
}

func buildRing(t *testing.T, n int) *Ring {
	t.Helper()
	r := New()
	for i := 0; i < n; i++ {
		if _, err := r.Join(fmt.Sprintf("node-%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	return r
}

func TestStoreAndGet(t *testing.T) {
	r := buildRing(t, 16)
	if _, _, err := r.Store("node-0", "Sensor7", info("Sensor7")); err != nil {
		t.Fatal(err)
	}
	got, hops, err := r.Get("node-5", "Sensor7")
	if err != nil {
		t.Fatal(err)
	}
	if got.Schema.Stream != "Sensor7" {
		t.Errorf("got %v", got.Schema)
	}
	if hops < 0 || hops > 16 {
		t.Errorf("hops = %d", hops)
	}
	if _, _, err := r.Get("node-5", "missing"); err == nil {
		t.Error("missing key should error")
	}
}

func TestLookupHopsLogarithmic(t *testing.T) {
	r := buildRing(t, 256)
	for i := 0; i < 64; i++ {
		key := fmt.Sprintf("stream-%d", i)
		if _, _, err := r.Store("node-0", key, info("S")); err != nil {
			t.Fatal(err)
		}
	}
	maxHops := 0
	total := 0
	count := 0
	for i := 0; i < 64; i++ {
		key := fmt.Sprintf("stream-%d", i)
		for _, origin := range []string{"node-1", "node-100", "node-200"} {
			_, hops, err := r.Get(origin, key)
			if err != nil {
				t.Fatal(err)
			}
			total += hops
			count++
			if hops > maxHops {
				maxHops = hops
			}
		}
	}
	// Chord bound: O(log n) ≈ 8 for 256 nodes; allow slack ×2.
	bound := int(2 * math.Log2(256))
	if maxHops > bound {
		t.Errorf("max hops = %d exceeds %d", maxHops, bound)
	}
	if avg := float64(total) / float64(count); avg > float64(bound)/2 {
		t.Errorf("avg hops = %f too high", avg)
	}
}

func TestReplicationSurvivesLeave(t *testing.T) {
	r := buildRing(t, 12)
	if _, _, err := r.Store("node-0", "CriticalStream", info("CriticalStream")); err != nil {
		t.Fatal(err)
	}
	owner, err := r.Owner("CriticalStream")
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Leave(owner.Name); err != nil {
		t.Fatal(err)
	}
	// The record must still be retrievable from any surviving node.
	origin := ""
	for i := 0; i < 12; i++ {
		name := fmt.Sprintf("node-%d", i)
		if name != owner.Name {
			origin = name
			break
		}
	}
	got, _, err := r.Get(origin, "CriticalStream")
	if err != nil {
		t.Fatalf("record lost after owner departure: %v", err)
	}
	if got.Schema.Stream != "CriticalStream" {
		t.Error("wrong record")
	}
}

func TestJoinTakesOverKeys(t *testing.T) {
	r := buildRing(t, 4)
	for i := 0; i < 32; i++ {
		key := fmt.Sprintf("s-%d", i)
		if _, _, err := r.Store("node-0", key, info("S")); err != nil {
			t.Fatal(err)
		}
	}
	// Join many more nodes; every key must remain reachable and be owned
	// by the correct successor.
	for i := 4; i < 40; i++ {
		if _, err := r.Join(fmt.Sprintf("node-%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 32; i++ {
		key := fmt.Sprintf("s-%d", i)
		got, _, err := r.Get("node-39", key)
		if err != nil {
			t.Fatalf("%s unreachable after joins: %v", key, err)
		}
		if got == nil {
			t.Fatalf("%s nil", key)
		}
		owner, _ := r.Owner(key)
		if owner.data[key] == nil {
			t.Fatalf("owner %s does not hold %s", owner.Name, key)
		}
	}
}

func TestLeaveErrors(t *testing.T) {
	r := buildRing(t, 3)
	if err := r.Leave("ghost"); err == nil {
		t.Error("leaving unknown node should fail")
	}
	if err := r.Leave("node-0"); err != nil {
		t.Fatal(err)
	}
	if r.Size() != 2 {
		t.Errorf("size = %d", r.Size())
	}
}

func TestEmptyRingErrors(t *testing.T) {
	r := New()
	if _, _, err := r.Store("x", "k", info("S")); err == nil {
		t.Error("store on empty ring should fail")
	}
	if _, _, err := r.Get("x", "k"); err == nil {
		t.Error("get on empty ring should fail")
	}
	if _, err := r.Owner("k"); err == nil {
		t.Error("owner on empty ring should fail")
	}
}

func TestUnknownOrigin(t *testing.T) {
	r := buildRing(t, 3)
	if _, _, err := r.Get("ghost", "k"); err == nil {
		t.Error("unknown origin should fail")
	}
}

func TestKeysDeduplicated(t *testing.T) {
	r := buildRing(t, 8)
	r.Store("node-0", "a", info("S"))
	r.Store("node-0", "b", info("S"))
	keys := r.Keys()
	if len(keys) != 2 || keys[0] != "a" || keys[1] != "b" {
		t.Errorf("keys = %v", keys)
	}
}

func TestConsistentRouting(t *testing.T) {
	// Routing from different origins must reach the same owner.
	r := buildRing(t, 64)
	r.Store("node-0", "theKey", info("S"))
	owner, _ := r.Owner("theKey")
	for i := 0; i < 64; i += 7 {
		got, _, err := r.Get(fmt.Sprintf("node-%d", i), "theKey")
		if err != nil {
			t.Fatal(err)
		}
		if got == nil {
			t.Fatal("nil record")
		}
		target, hops := r.route(r.nodes[i%len(r.nodes)], HashKey("theKey"))
		if target != owner {
			t.Fatalf("route from %d reached %s, owner is %s", i, target.Name, owner.Name)
		}
		if hops < 0 {
			t.Fatal("negative hops")
		}
	}
}
