// Package exec is the execution runtime of a COSMOS processor: it owns
// tuple dispatch between the data wrapper and the compiled plans of the
// stream processing engine (paper Figure 2). Where spe.Engine runs every
// plan of a stream sequentially under one engine lock, the runtime
// shards execution so a multi-core processor saturates its cores the way
// the cooperative worker pools of modern stream engines do (Hazelcast
// Jet), while the data path amortises dispatch over micro-batches.
//
// # Architecture
//
// The runtime mirrors the two-plane design of cbn.Broker and the
// compiled plan pipeline:
//
//   - Control plane (Install, Remove, Close): mutex-protected registry of
//     plan slots. Every mutation rebuilds a precomputed, immutable
//     dispatch table — per stream, the plans consuming it sorted by plan
//     ID, pre-partitioned by owning worker — and publishes it through an
//     atomic.Pointer.
//   - Data plane (Consume, ConsumeBatch): loads the table lock-free; one
//     map lookup per tuple (or per same-stream run of a batch), no
//     per-tuple sorting, no allocation on the dispatch path. A tuple of a
//     stream no plan consumes costs one pointer load and one map lookup,
//     and allocates nothing.
//
// Plan state is guarded by a per-plan mutex, not an engine-wide one:
// Push only touches plan-local state, so two plans never contend, and
// quiescing one plan (WithPlan, checkpoint capture) stalls neither the
// dispatch path nor unrelated plans.
//
// # Sharded mode and the ordering contract
//
// With Config.Workers > 0 each installed plan is pinned to one worker
// (round-robin at first Install), and tuples fan out to the workers
// owning the stream's plans over per-worker FIFO queues. The ordering
// contract is:
//
//   - Per-plan total order: every plan observes the tuples of all of its
//     input streams in exactly the order they were passed to
//     Consume/ConsumeBatch, and its emissions preserve that order. This
//     holds because a plan lives on exactly one worker and the worker
//     queue is FIFO.
//   - No cross-plan order: emissions of different plans interleave
//     arbitrarily, and Emit may be invoked concurrently (it must be safe
//     for concurrent use when Workers > 0).
//
// With Workers == 0 the runtime is synchronous: Consume pushes to every
// plan of the stream in ascending plan-ID order on the caller's
// goroutine and reproduces the sequential spe.Engine byte for byte —
// emissions, order, and error returns — which keeps it the differential
// reference for the sharded mode. Workers == 1 yields the same global
// order, delivered asynchronously.
//
// # Emission sinks and backpressure
//
// Results leave the runtime through emission sinks. Config.Emit is the
// shared sink; Config.EmitForWorker optionally gives each worker its own
// (e.g. one cbn.LiveClient per worker, so a plan's results flow into the
// network on its owning worker's connection and per-plan emission order
// is preserved end to end). Sinks are invoked under the emitting plan's
// lock, on the worker's goroutine.
//
// Sinks may block — that is the backpressure path. A sink publishing
// into a full broker channel stalls exactly its worker; the worker's
// bounded queue then stalls dispatch (Consume/ConsumeBatch block on the
// queue send), throttling ingestion instead of dropping or buffering
// tuples unboundedly. Other workers keep running.
//
// Plan execution errors are reported through Config.OnError in both
// modes; the synchronous mode additionally returns the first error and,
// like the sequential engine, stops dispatching the tuple to the
// remaining plans.
package exec

import (
	"errors"
	"fmt"
	"runtime/debug"
	"sort"
	"sync"
	"sync/atomic"

	"cosmos/internal/cql"
	"cosmos/internal/obs"
	"cosmos/internal/spe"
	"cosmos/internal/stream"
)

// errNoSchema mirrors the sequential engine's rejection of schema-less
// tuples.
var errNoSchema = errors.New("exec: tuple without schema")

// PanicError reports a plan that panicked during execution. The runtime
// contains the panic: the plan is degraded to an errored (dead) state —
// surfaced through Config.OnError with this error — while every other
// plan, the worker pool, and the process keep running.
type PanicError struct {
	PlanID string
	Value  interface{} // the recovered panic value
	Stack  []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("exec: plan %s panicked: %v", e.PlanID, e.Value)
}

// Sink consumes result tuples on the data path. Implementations are
// audited boundaries: the runtime's discard sink, the delivery proxy's
// handoff and the transport pump all carry their own benchmarks, so the
// hot-path checker treats any Sink call as vouched for.
//
//cosmos:hotpath-ok
type Sink func(stream.Tuple)

// Config parameterises a Runtime.
type Config struct {
	// Workers is the worker-pool size. 0 runs every plan synchronously
	// on the consuming goroutine (the sequential reference mode); > 0
	// pins each plan to one of Workers shards.
	Workers int
	// QueueLen bounds each worker's task queue (backpressure); default
	// 128 tasks.
	QueueLen int
	// Emit receives every result tuple. Must be safe for concurrent use
	// when Workers > 0 (per-plan emission order is preserved; cross-plan
	// interleaving is arbitrary). Nil discards results. Emit may block:
	// a blocked sink throttles its worker (see the package comment).
	Emit Sink
	// EmitForWorker, when non-nil, resolves a dedicated sink per worker
	// at startup: worker i emits through EmitForWorker(i). A nil sink
	// falls back to Emit. The synchronous mode (Workers == 0) always
	// uses Emit. Per-worker sinks carry per-plan emission order into the
	// sink because each plan is pinned to one worker.
	EmitForWorker func(worker int) Sink
	// OnError observes plan execution failures (schema drift between the
	// data layer and an installed plan). Called with the plan ID, or ""
	// for dispatch-level failures (schema-less tuple). May be nil.
	OnError func(planID string, err error)
	// Metrics, when non-nil, receives per-push exec-stage counts and
	// sampled latency plus trace marks; per-plan counters are kept
	// either way (they ride under the plan lock for free). See
	// Runtime.StatsSnapshot.
	Metrics *obs.Metrics
}

// Runtime hosts compiled plans and dispatches tuples to them.
type Runtime struct {
	emit    Sink
	onError func(string, error)
	metrics *obs.Metrics
	workers []*worker
	quit    chan struct{}
	wg      sync.WaitGroup

	// table is the compiled dispatch state read lock-free by the data
	// plane; rebuilt eagerly by every control-plane mutation.
	table atomic.Pointer[dispatchTable]

	mu         sync.RWMutex
	slots      map[string]*planSlot // guarded by mu
	nextWorker int                  // guarded by mu
	closed     bool                 // guarded by mu
}

// planSlot is the runtime-side holder of one installed plan. The slot
// mutex is the plan's execution lock: Push, snapshot capture and plan
// replacement all run under it.
type planSlot struct {
	id string
	w  *worker // owning worker; nil in synchronous mode

	mu          sync.Mutex
	plan        *spe.Plan // guarded by mu
	dead        bool      // guarded by mu
	injectPanic bool      // guarded by mu; one-shot fault-injection: panic on the next push

	// Per-plan series, guarded by mu (incrementing under the lock the
	// push already holds costs nothing extra). lat is allocated on the
	// first sampled push.
	pushes, emits, errs int64          // guarded by mu
	lat                 *obs.Histogram // guarded by mu
}

// dispatchTable is one immutable snapshot of the per-stream dispatch
// state.
type dispatchTable struct {
	streams map[string]*streamEntry
}

// streamEntry lists the plans consuming one stream.
type streamEntry struct {
	// slots is sorted by plan ID — the synchronous dispatch order.
	slots []*planSlot
	// shards partitions slots by owning worker (each preserving plan-ID
	// order), precomputed so sharded dispatch is one queue send per
	// worker with no per-tuple grouping.
	shards []shard
}

type shard struct {
	w     *worker
	slots []*planSlot
}

// task is one unit of worker work: a tuple (or micro-batch) against the
// worker's slots for one stream, or a drain barrier.
type task struct {
	slots  []*planSlot
	tuples []stream.Tuple // micro-batch; nil for a single tuple
	one    stream.Tuple
	single bool
	done   chan struct{} // barrier marker; all other fields empty
}

type worker struct {
	r      *Runtime
	idx    int
	ch     chan task
	emit   Sink         // this worker's emission sink
	tuples atomic.Int64 // tuples dispatched through this worker
}

// New builds a runtime. Close must be called to release the worker pool
// when Workers > 0.
func New(cfg Config) *Runtime {
	if cfg.Emit == nil {
		cfg.Emit = func(stream.Tuple) {}
	}
	if cfg.QueueLen <= 0 {
		cfg.QueueLen = 128
	}
	r := &Runtime{
		emit:    cfg.Emit,
		onError: cfg.OnError,
		metrics: cfg.Metrics,
		quit:    make(chan struct{}),
		slots:   map[string]*planSlot{},
	}
	for i := 0; i < cfg.Workers; i++ {
		sink := cfg.Emit
		if cfg.EmitForWorker != nil {
			if s := cfg.EmitForWorker(i); s != nil {
				sink = s
			}
		}
		w := &worker{r: r, idx: i, ch: make(chan task, cfg.QueueLen), emit: sink}
		r.workers = append(r.workers, w)
		r.wg.Add(1)
		go w.run()
	}
	return r
}

// Workers returns the worker-pool size (0 = synchronous).
func (r *Runtime) Workers() int { return len(r.workers) }

func (r *Runtime) reportError(planID string, err error) {
	if r.onError != nil {
		r.onError(planID, err)
	}
}

// Install compiles and registers a plan under an ID, returning the plan.
// Installing an existing ID replaces the old plan (used when a group's
// representative query widens) and keeps its worker pinning; a new ID is
// pinned round-robin. In sharded mode the old plan's worker queue is
// drained before the swap, so tuples enqueued before the replacement
// still reach the old plan — the sequential engine's replacement
// semantics.
func (r *Runtime) Install(id string, b *cql.Bound, resultStream string) (*spe.Plan, error) {
	p, err := spe.Compile(id, b, resultStream)
	if err != nil {
		return nil, err
	}
	r.mu.RLock()
	existing := r.slots[id]
	r.mu.RUnlock()
	if existing != nil && existing.w != nil {
		existing.w.flush()
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return nil, fmt.Errorf("exec: runtime closed")
	}
	s, ok := r.slots[id]
	if !ok {
		s = &planSlot{id: id}
		if len(r.workers) > 0 {
			s.w = r.workers[r.nextWorker%len(r.workers)]
			r.nextWorker++
		}
		r.slots[id] = s
	}
	s.mu.Lock()
	s.plan = p
	s.dead = false
	s.mu.Unlock()
	r.publishLocked()
	return p, nil
}

// Remove uninstalls a plan. Tuples already queued for the plan's worker
// are skipped the moment Remove returns.
func (r *Runtime) Remove(id string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	s, ok := r.slots[id]
	if !ok {
		return
	}
	delete(r.slots, id)
	s.mu.Lock()
	s.dead = true
	s.plan = nil
	s.mu.Unlock()
	r.publishLocked()
}

// publishLocked rebuilds the dispatch table from the slot registry and
// publishes it. Callers hold r.mu.
func (r *Runtime) publishLocked() {
	ids := make([]string, 0, len(r.slots))
	for id := range r.slots {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	streams := map[string]*streamEntry{}
	for _, id := range ids {
		s := r.slots[id]
		// A slot whose plan died by panic keeps its registry entry (the
		// ID stays claimed) but leaves the dispatch table.
		s.mu.Lock()
		p := s.plan
		s.mu.Unlock()
		if p == nil {
			continue
		}
		for _, name := range p.InputStreams() {
			e := streams[name]
			if e == nil {
				e = &streamEntry{}
				streams[name] = e
			}
			e.slots = append(e.slots, s)
		}
	}
	if len(r.workers) > 0 {
		for _, e := range streams {
			byWorker := map[*worker][]*planSlot{}
			for _, s := range e.slots {
				byWorker[s.w] = append(byWorker[s.w], s)
			}
			for _, w := range r.workers {
				if slots := byWorker[w]; len(slots) > 0 {
					e.shards = append(e.shards, shard{w: w, slots: slots})
				}
			}
		}
	}
	r.table.Store(&dispatchTable{streams: streams})
}

// Plans lists installed plan IDs, sorted.
func (r *Runtime) Plans() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.slots))
	for id := range r.slots {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Plan returns an installed plan. The plan may be executing concurrently
// in sharded mode; use WithPlan to observe or mutate its state.
func (r *Runtime) Plan(id string) (*spe.Plan, bool) {
	r.mu.RLock()
	s := r.slots[id]
	r.mu.RUnlock()
	if s == nil {
		return nil, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.dead {
		return nil, false
	}
	return s.plan, true
}

// WithPlan quiesces one plan — not the world — and runs fn on it: in
// sharded mode the plan's worker queue is drained first, then fn runs
// under the plan's own lock while every other plan keeps executing.
// Checkpoint capture uses this to snapshot consistently without
// stalling unrelated plans.
func (r *Runtime) WithPlan(id string, fn func(*spe.Plan)) bool {
	r.mu.RLock()
	s := r.slots[id]
	r.mu.RUnlock()
	if s == nil {
		return false
	}
	if s.w != nil {
		s.w.flush()
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.dead {
		return false
	}
	fn(s.plan)
	return true
}

// Drain blocks until every tuple enqueued for the plan before the call
// has been processed. A no-op in synchronous mode; false when the plan
// is not installed.
func (r *Runtime) Drain(id string) bool {
	r.mu.RLock()
	s := r.slots[id]
	r.mu.RUnlock()
	if s == nil {
		return false
	}
	if s.w != nil {
		s.w.flush()
	}
	return true
}

// Barrier blocks until every tuple enqueued before the call — for any
// plan — has been processed. A no-op in synchronous mode.
func (r *Runtime) Barrier() {
	for _, w := range r.workers {
		w.flush()
	}
}

// Close stops the worker pool. Tuples still queued are dropped; call
// Barrier first for a graceful drain. The runtime accepts no work after
// Close.
func (r *Runtime) Close() {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return
	}
	r.closed = true
	r.table.Store(nil)
	r.mu.Unlock()
	close(r.quit)
	r.wg.Wait()
}

// Consume feeds one tuple to every plan registered for its stream. In
// synchronous mode plans run in ascending plan-ID order and the first
// plan error is returned (remaining plans are skipped, matching the
// sequential engine); in sharded mode the tuple is queued to the owning
// workers and errors surface through OnError only.
func (r *Runtime) Consume(t stream.Tuple) error {
	if t.Schema == nil {
		r.reportError("", errNoSchema)
		return errNoSchema
	}
	tbl := r.table.Load()
	if tbl == nil {
		return nil
	}
	e := tbl.streams[t.Schema.Stream]
	if e == nil {
		return nil
	}
	if len(r.workers) == 0 {
		return r.pushAll(e.slots, t)
	}
	for i := range e.shards {
		sh := &e.shards[i]
		sh.w.send(task{slots: sh.slots, one: t, single: true})
	}
	return nil
}

// ConsumeBatch feeds a micro-batch, amortising the dispatch-table lookup
// and queue sends over runs of same-stream tuples. Semantically it
// equals calling Consume per tuple in order: a tuple's failure (reported
// through OnError) never drops the tuples after it, and the first error
// is returned. In sharded mode the runtime borrows the batch until its
// tuples are processed: callers must not reuse the backing array before
// a Barrier (the Batcher adapter hands over ownership per batch).
func (r *Runtime) ConsumeBatch(ts []stream.Tuple) error {
	tbl := r.table.Load()
	var firstErr error
	record := func(err error) {
		if firstErr == nil {
			firstErr = err
		}
	}
	i := 0
	for i < len(ts) {
		if ts[i].Schema == nil {
			r.reportError("", errNoSchema)
			record(errNoSchema)
			i++
			continue
		}
		name := ts[i].Schema.Stream
		j := i + 1
		for j < len(ts) && ts[j].Schema != nil && ts[j].Schema.Stream == name {
			j++
		}
		if tbl != nil {
			if e := tbl.streams[name]; e != nil {
				run := ts[i:j]
				if len(r.workers) == 0 {
					for _, t := range run {
						if err := r.pushAll(e.slots, t); err != nil {
							record(err)
						}
					}
				} else {
					for k := range e.shards {
						sh := &e.shards[k]
						sh.w.send(task{slots: sh.slots, tuples: run})
					}
				}
			}
		}
		i = j
	}
	return firstErr
}

// pushAll is the synchronous dispatch loop (plan-ID order, first error
// aborts — the sequential engine's contract).
func (r *Runtime) pushAll(slots []*planSlot, t stream.Tuple) error {
	for _, s := range slots {
		if err := s.push(r, r.emit, t); err != nil {
			return err
		}
	}
	return nil
}

// push runs one tuple through one plan under the plan's lock, emitting
// its results in order through the given sink (the runtime's shared sink
// in synchronous mode, the owning worker's sink in sharded mode). A
// panic inside the plan (or the sink) is contained: the slot degrades
// to dead — skipping all further tuples — and the failure surfaces as a
// *PanicError through OnError (and the return value, synchronous mode),
// exactly like any other plan error. The worker survives.
//
//cosmos:hotpath
func (s *planSlot) push(r *Runtime, emit Sink, t stream.Tuple) (err error) {
	m := r.metrics
	s.mu.Lock()
	if s.dead {
		s.mu.Unlock()
		return nil
	}
	// Stripe the exec count by owning worker: sharded workers push
	// concurrently and must not contend on one counter line.
	hint := 0
	if s.w != nil {
		hint = s.w.idx
	}
	start := m.StageStartAt(obs.StageExec, hint)
	func() {
		defer func() {
			if rec := recover(); rec != nil {
				s.dead = true
				s.plan = nil
				//lint:ignore hotpath panic containment is the cold branch; capturing the stack is the point
				err = &PanicError{PlanID: s.id, Value: rec, Stack: debug.Stack()}
			}
		}()
		if s.injectPanic {
			s.injectPanic = false
			panic("exec: injected fault")
		}
		var out []stream.Tuple
		out, err = s.plan.Push(t)
		if err == nil {
			s.emits += int64(len(out))
			for _, res := range out {
				emit(res)
			}
		}
	}()
	s.pushes++
	if err != nil {
		s.errs++
	}
	if d := m.StageEnd(obs.StageExec, start); d != 0 {
		if s.lat == nil {
			s.lat = &obs.Histogram{}
		}
		s.lat.Observe(d)
	}
	s.mu.Unlock()
	if m.TraceOn() {
		m.TraceMark(int64(t.Ts), obs.StageExec)
	}
	if err != nil {
		//lint:ignore hotpath error reporting is the cold branch
		r.reportError(s.id, err)
	}
	return err
}

// InjectPanic arms a one-shot panic on the plan's next push — the
// runtime's fault-injection hook for containment tests. Reports whether
// the plan is installed (and alive).
func (r *Runtime) InjectPanic(id string) bool {
	r.mu.RLock()
	s := r.slots[id]
	r.mu.RUnlock()
	if s == nil {
		return false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.dead {
		return false
	}
	s.injectPanic = true
	return true
}

// send enqueues a task, bailing out if the runtime is closing.
func (w *worker) send(tk task) {
	select {
	case w.ch <- tk:
	case <-w.r.quit:
	}
}

// flush waits until the worker has processed everything queued before
// the call.
func (w *worker) flush() {
	done := make(chan struct{})
	select {
	case w.ch <- task{done: done}:
	case <-w.r.quit:
		return
	}
	select {
	case <-done:
	case <-w.r.quit:
	}
}

// run is the worker loop: FIFO over the task queue, so every plan pinned
// here observes its tuples in enqueue order.
func (w *worker) run() {
	defer w.r.wg.Done()
	for {
		select {
		case <-w.r.quit:
			return
		case tk := <-w.ch:
			w.exec(tk)
		}
	}
}

func (w *worker) exec(tk task) {
	if tk.done != nil {
		close(tk.done)
		return
	}
	if tk.single {
		w.tuples.Add(1)
		for _, s := range tk.slots {
			_ = s.push(w.r, w.emit, tk.one) // error already reported; plans are independent
		}
		return
	}
	w.tuples.Add(int64(len(tk.tuples)))
	for _, t := range tk.tuples {
		for _, s := range tk.slots {
			_ = s.push(w.r, w.emit, t)
		}
	}
}
