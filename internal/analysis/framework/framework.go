// Package framework is the chassis of cosmoslint: a self-contained
// reimplementation of the core golang.org/x/tools/go/analysis surface
// (Analyzer, Pass, diagnostics, an analysistest-style harness) on the
// standard library alone. The build environment vendors no third-party
// modules, so the x/tools driver cannot be imported; the API here is
// deliberately shaped like go/analysis so the analyzers under
// internal/analysis/* read idiomatically and could be ported to the real
// framework by swapping imports.
//
// Two deliberate deviations from go/analysis:
//
//   - A Pass sees the whole Program, not just one package. The repo's
//     invariants are cross-package (a //cosmos:hotpath function in
//     internal/exec calls into internal/obs), and facts-style export is
//     far more machinery than a program-wide annotation index.
//   - Suppression is built in: a `//lint:ignore <analyzers> <reason>`
//     comment on the diagnostic's line, or the line above it, silences
//     the named analyzers. The reason is mandatory — an undocumented
//     suppression is itself reported.
//
// # Annotations
//
// The index recognises two machine-checked source annotations, written
// as directive comments in declaration doc blocks:
//
//	//cosmos:hotpath     — the function is on the per-tuple data path:
//	                       the hotpath analyzer checks its body, and it
//	                       may be called from other hotpath functions.
//	//cosmos:hotpath-ok  — the declaration (function, method, interface
//	                       method, named func type, or func-valued
//	                       field/var) is callable from hotpath code but
//	                       is not itself checked: an audited boundary,
//	                       e.g. a sink contract pinned by its own
//	                       AllocsPerRun benchmarks.
package framework

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// Analyzer describes one static check, mirroring analysis.Analyzer.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and lint:ignore
	// comments. Lower-case, no spaces.
	Name string
	// Doc is the one-paragraph contract shown by `cosmoslint -list`.
	Doc string
	// Run executes the check against one package of the program.
	Run func(*Pass) error
}

// Diagnostic is one finding, positioned in the program's FileSet.
type Diagnostic struct {
	Pos      token.Pos
	Analyzer string
	Message  string
}

// Package is one type-checked package of the loaded program.
type Package struct {
	PkgPath   string
	Dir       string
	Syntax    []*ast.File
	Types     *types.Package
	TypesInfo *types.Info
}

// Pass carries one (analyzer, package) unit of work.
type Pass struct {
	Analyzer  *Analyzer
	Prog      *Program
	Pkg       *Package
	Fset      *token.FileSet
	Files     []*ast.File
	TypesInfo *types.Info

	diags *[]Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      pos,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Program is the whole loaded-and-type-checked target. Roots are the
// packages named by the load patterns — the ones analyzers run over.
// Packages additionally includes same-module dependencies parsed from
// source so their annotations are indexed even on partial runs;
// out-of-module dependencies are consumed as export data and carry no
// syntax.
type Program struct {
	Fset     *token.FileSet
	Roots    []*Package
	Packages []*Package

	annots map[types.Object]Annot
}

// Annot is the set of cosmos directive annotations on one declaration.
type Annot uint8

// Annotation bits; see the package comment for their contracts.
const (
	AnnotHotpath Annot = 1 << iota
	AnnotHotpathOK
)

// Annot returns the directive annotations on obj's declaration, or 0.
// Declarations of every loaded package are indexed, so a hotpath
// function in one package can vouch for its callees in another.
func (prog *Program) Annot(obj types.Object) Annot {
	if obj == nil {
		return 0
	}
	return prog.annots[obj]
}

// HasPackage reports whether path was loaded from source (i.e. its
// declarations are annotation-indexed). Dependencies that arrived as
// export data are not "in" the program.
func (prog *Program) HasPackage(path string) bool {
	for _, p := range prog.Packages {
		if p.PkgPath == path {
			return true
		}
	}
	return false
}

// groupHasDirective reports whether a comment group carries the given
// //cosmos: directive as a whole comment line.
func groupHasDirective(g *ast.CommentGroup, directive string) bool {
	if g == nil {
		return false
	}
	for _, c := range g.List {
		text := strings.TrimSpace(c.Text)
		if text == directive || strings.HasPrefix(text, directive+" ") {
			return true
		}
	}
	return false
}

func annotOf(groups ...*ast.CommentGroup) Annot {
	var a Annot
	for _, g := range groups {
		if groupHasDirective(g, "//cosmos:hotpath") {
			a |= AnnotHotpath
		}
		if groupHasDirective(g, "//cosmos:hotpath-ok") {
			a |= AnnotHotpathOK
		}
	}
	return a
}

// buildAnnotIndex walks every loaded package's declarations and records
// cosmos directives against their types.Object, so analyzers resolve
// annotations through the type checker instead of re-parsing comments.
func (prog *Program) buildAnnotIndex() {
	prog.annots = map[types.Object]Annot{}
	record := func(obj types.Object, a Annot) {
		if obj != nil && a != 0 {
			prog.annots[obj] |= a
		}
	}
	for _, pkg := range prog.Packages {
		info := pkg.TypesInfo
		for _, f := range pkg.Syntax {
			for _, decl := range f.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					record(info.Defs[d.Name], annotOf(d.Doc))
				case *ast.GenDecl:
					for _, spec := range d.Specs {
						switch s := spec.(type) {
						case *ast.TypeSpec:
							// A single-spec GenDecl's doc conventionally
							// belongs to the spec.
							a := annotOf(d.Doc, s.Doc, s.Comment)
							record(info.Defs[s.Name], a)
							indexTypeMembers(info, s.Type, record)
						case *ast.ValueSpec:
							a := annotOf(d.Doc, s.Doc, s.Comment)
							for _, name := range s.Names {
								record(info.Defs[name], a)
							}
						}
					}
				}
			}
		}
	}
}

// indexTypeMembers records annotations on struct fields and interface
// methods (both are ast.Fields with their own doc/line comments).
func indexTypeMembers(info *types.Info, typ ast.Expr, record func(types.Object, Annot)) {
	switch t := typ.(type) {
	case *ast.StructType:
		for _, field := range t.Fields.List {
			a := annotOf(field.Doc, field.Comment)
			for _, name := range field.Names {
				record(info.Defs[name], a)
			}
		}
	case *ast.InterfaceType:
		for _, m := range t.Methods.List {
			a := annotOf(m.Doc, m.Comment)
			for _, name := range m.Names {
				record(info.Defs[name], a)
			}
		}
	}
}

// ignoreRe matches `lint:ignore <analyzers> <reason>` in a comment;
// <analyzers> is a comma-separated list of analyzer names (each
// optionally prefixed "cosmoslint/") and the reason is mandatory.
var ignoreRe = regexp.MustCompile(`lint:ignore\s+(\S+)\s*(.*)$`)

// suppressed reports whether d is silenced by a lint:ignore comment on
// its line or the line directly above, and returns a non-nil diagnostic
// replacing it when the suppression itself is malformed.
func (prog *Program) suppressed(pkg *Package, d Diagnostic) (bool, *Diagnostic) {
	pos := prog.Fset.Position(d.Pos)
	var file *ast.File
	for _, f := range pkg.Syntax {
		if prog.Fset.Position(f.Pos()).Filename == pos.Filename {
			file = f
			break
		}
	}
	if file == nil {
		return false, nil
	}
	for _, g := range file.Comments {
		for _, c := range g.List {
			m := ignoreRe.FindStringSubmatch(c.Text)
			if m == nil {
				continue
			}
			cline := prog.Fset.Position(c.Pos()).Line
			if cline != pos.Line && cline != pos.Line-1 {
				continue
			}
			names := strings.Split(m[1], ",")
			applies := false
			for _, n := range names {
				n = strings.TrimPrefix(strings.TrimSpace(n), "cosmoslint/")
				if n == d.Analyzer || n == "*" {
					applies = true
				}
			}
			if !applies {
				continue
			}
			if strings.TrimSpace(m[2]) == "" {
				rep := Diagnostic{
					Pos:      c.Pos(),
					Analyzer: d.Analyzer,
					Message:  "lint:ignore without a reason — document why the finding is acceptable",
				}
				return true, &rep
			}
			return true, nil
		}
	}
	return false, nil
}

// RunAnalyzers executes every analyzer over every root package of the
// program and returns the surviving diagnostics sorted by position.
// lint:ignore suppression is applied here so the driver, the tests and
// the vettool mode agree on what counts as a finding.
func RunAnalyzers(prog *Program, analyzers []*Analyzer) ([]Diagnostic, error) {
	var all []Diagnostic
	for _, pkg := range prog.Roots {
		for _, a := range analyzers {
			var diags []Diagnostic
			pass := &Pass{
				Analyzer:  a,
				Prog:      prog,
				Pkg:       pkg,
				Fset:      prog.Fset,
				Files:     pkg.Syntax,
				TypesInfo: pkg.TypesInfo,
				diags:     &diags,
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %v", a.Name, pkg.PkgPath, err)
			}
			for _, d := range diags {
				ok, replacement := prog.suppressed(pkg, d)
				if replacement != nil {
					all = append(all, *replacement)
				}
				if !ok {
					all = append(all, d)
				}
			}
		}
	}
	sort.Slice(all, func(i, j int) bool {
		pi, pj := prog.Fset.Position(all[i].Pos), prog.Fset.Position(all[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		return all[i].Analyzer < all[j].Analyzer
	})
	return all, nil
}
