package core

import (
	"fmt"
	"testing"

	"cosmos/internal/merge"
	"cosmos/internal/spe"
	"cosmos/internal/stream"
)

func auctionInfos() []*stream.Info {
	return []*stream.Info{
		{Schema: stream.MustSchema("OpenAuction",
			stream.Field{Name: "itemID", Kind: stream.KindInt},
			stream.Field{Name: "sellerID", Kind: stream.KindInt},
			stream.Field{Name: "start_price", Kind: stream.KindFloat},
			stream.Field{Name: "timestamp", Kind: stream.KindTime},
		), Rate: 50},
		{Schema: stream.MustSchema("ClosedAuction",
			stream.Field{Name: "itemID", Kind: stream.KindInt},
			stream.Field{Name: "buyerID", Kind: stream.KindInt},
			stream.Field{Name: "timestamp", Kind: stream.KindTime},
		), Rate: 30},
	}
}

func openT(info *stream.Info, ts stream.Timestamp, item, seller int64, price float64) stream.Tuple {
	return stream.MustTuple(info.Schema, ts, stream.Int(item), stream.Int(seller),
		stream.Float(price), stream.Time(ts))
}

func closedT(info *stream.Info, ts stream.Timestamp, item, buyer int64) stream.Tuple {
	return stream.MustTuple(info.Schema, ts, stream.Int(item), stream.Int(buyer), stream.Time(ts))
}

func newAuctionSystem(t *testing.T, opts Options) (*System, *SourcePort, *SourcePort) {
	t.Helper()
	sys, err := NewSystem(opts)
	if err != nil {
		t.Fatal(err)
	}
	infos := auctionInfos()
	openPort, err := sys.RegisterStream(infos[0], 1)
	if err != nil {
		t.Fatal(err)
	}
	closedPort, err := sys.RegisterStream(infos[1], 2)
	if err != nil {
		t.Fatal(err)
	}
	return sys, openPort, closedPort
}

func TestSingleQueryEndToEnd(t *testing.T) {
	sys, openPort, _ := newAuctionSystem(t, Options{Nodes: 16, Seed: 3})
	var got []stream.Tuple
	h, err := sys.Submit("SELECT itemID AS id FROM OpenAuction [Now] WHERE start_price > 100", 7,
		func(tp stream.Tuple) { got = append(got, tp) })
	if err != nil {
		t.Fatal(err)
	}
	info := auctionInfos()[0]
	if err := openPort.Publish(openT(info, 1, 11, 1, 500)); err != nil {
		t.Fatal(err)
	}
	if err := openPort.Publish(openT(info, 2, 12, 1, 50)); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("deliveries = %d", len(got))
	}
	r := got[0]
	if r.Schema.Stream != h.Tag {
		t.Errorf("result stream = %s", r.Schema.Stream)
	}
	// AS renaming applied at the proxy.
	if !r.Schema.Has("id") || r.MustGet("id").AsInt() != 11 {
		t.Errorf("result = %v", r)
	}
}

func TestPaperAuctionMergingEndToEnd(t *testing.T) {
	// Table 1 / Figure 3: q1 and q2 submitted by users at different
	// nodes are merged into one representative at the processor, and the
	// result stream is split back so each user sees exactly its own
	// query's results.
	sys, openPort, closedPort := newAuctionSystem(t, Options{Nodes: 24, Seed: 5, Mode: merge.ExactUnion})
	var got1, got2 []stream.Tuple
	_, err := sys.Submit(
		"SELECT O.* FROM OpenAuction [Range 3 Hour] O, ClosedAuction [Now] C WHERE O.itemID = C.itemID",
		10, func(tp stream.Tuple) { got1 = append(got1, tp) })
	if err != nil {
		t.Fatal(err)
	}
	_, err = sys.Submit(
		"SELECT O.itemID, O.timestamp, C.buyerID, C.timestamp FROM OpenAuction [Range 5 Hour] O, ClosedAuction [Now] C WHERE O.itemID = C.itemID",
		11, func(tp stream.Tuple) { got2 = append(got2, tp) })
	if err != nil {
		t.Fatal(err)
	}
	// Both queries share FROM + join: one group on the processor.
	proc := sys.Processors()[0]
	if proc.Groups() != 1 {
		t.Fatalf("groups = %d, want 1 (merged)", proc.Groups())
	}

	infos := auctionInfos()
	h := stream.Timestamp(stream.Hour)
	// Item 1 opens at t=0, closes at 2h → within both windows.
	openPort.Publish(openT(infos[0], 0, 1, 9, 10))
	closedPort.Publish(closedT(infos[1], 2*h, 1, 77))
	// Item 2 opens at 0, closes at 4h → only q2's 5-hour window.
	openPort.Publish(openT(infos[0], 0, 2, 9, 10))
	closedPort.Publish(closedT(infos[1], 4*h, 2, 88))
	// Item 3 opens at 0, closes at 6h → neither.
	openPort.Publish(openT(infos[0], 0, 3, 9, 10))
	closedPort.Publish(closedT(infos[1], 6*h, 3, 99))

	if len(got1) != 1 {
		t.Fatalf("q1 deliveries = %d, want 1", len(got1))
	}
	if got1[0].MustGet("OpenAuction.itemID").AsInt() != 1 {
		t.Errorf("q1 got %v", got1[0])
	}
	// q1 outputs O.* — four attributes.
	if got1[0].Schema.Arity() != 4 {
		t.Errorf("q1 schema = %v", got1[0].Schema)
	}
	if len(got2) != 2 {
		t.Fatalf("q2 deliveries = %d, want 2", len(got2))
	}
	if got2[0].MustGet("OpenAuction.itemID").AsInt() != 1 ||
		got2[1].MustGet("OpenAuction.itemID").AsInt() != 2 {
		t.Errorf("q2 got %v", got2)
	}
	if got2[0].MustGet("ClosedAuction.buyerID").AsInt() != 77 {
		t.Errorf("q2 buyer = %v", got2[0])
	}
	// q2 outputs exactly its 4 selected columns — no leaked __ts or
	// extra attributes from the representative.
	if got2[0].Schema.Arity() != 4 {
		t.Errorf("q2 schema = %v", got2[0].Schema.AttrNames())
	}
}

func TestMergingSavesTraffic(t *testing.T) {
	// Two identical heavy queries: merged delivery must move fewer bytes
	// than two independent deliveries of the same content. Compare
	// against a two-processor system where the queries land on different
	// processors (and therefore cannot merge).
	run := func(processors int) int64 {
		sys, err := NewSystem(Options{
			Nodes: 24, Seed: 9, Processors: processors,
			ProcessorNodes: nil, Placement: RoundRobin,
		})
		if err != nil {
			t.Fatal(err)
		}
		info := auctionInfos()[0]
		port, err := sys.RegisterStream(info, 3)
		if err != nil {
			t.Fatal(err)
		}
		q := "SELECT itemID FROM OpenAuction [Now] WHERE start_price > 10"
		if _, err := sys.Submit(q, 20, func(stream.Tuple) {}); err != nil {
			t.Fatal(err)
		}
		if _, err := sys.Submit(q, 21, func(stream.Tuple) {}); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 50; i++ {
			port.Publish(openT(info, stream.Timestamp(i), int64(i), 1, 100))
		}
		return sys.TotalDataBytes()
	}
	mergedBytes := run(1)
	splitBytes := run(2)
	if mergedBytes >= splitBytes {
		t.Errorf("merging should reduce traffic: merged=%d split=%d", mergedBytes, splitBytes)
	}
}

func TestCancelShrinksGroup(t *testing.T) {
	sys, openPort, _ := newAuctionSystem(t, Options{Nodes: 16, Seed: 4})
	var got1, got2 []stream.Tuple
	h1, err := sys.Submit("SELECT itemID FROM OpenAuction [Now] WHERE start_price > 100", 5,
		func(tp stream.Tuple) { got1 = append(got1, tp) })
	if err != nil {
		t.Fatal(err)
	}
	h2, err := sys.Submit("SELECT itemID FROM OpenAuction [Now] WHERE start_price > 10", 6,
		func(tp stream.Tuple) { got2 = append(got2, tp) })
	if err != nil {
		t.Fatal(err)
	}
	proc := sys.Processors()[0]
	if proc.Groups() != 1 || proc.Load() != 2 {
		t.Fatalf("groups=%d load=%d", proc.Groups(), proc.Load())
	}
	if err := sys.Cancel(h1); err != nil {
		t.Fatal(err)
	}
	if proc.Load() != 1 {
		t.Errorf("load after cancel = %d", proc.Load())
	}
	info := auctionInfos()[0]
	openPort.Publish(openT(info, 1, 7, 1, 50))
	if len(got1) != 0 {
		t.Error("cancelled query received results")
	}
	if len(got2) != 1 {
		t.Errorf("surviving query deliveries = %d", len(got2))
	}
	if err := sys.Cancel(h2); err != nil {
		t.Fatal(err)
	}
	if proc.Groups() != 0 || sys.Queries() != 0 {
		t.Errorf("state after all cancels: groups=%d queries=%d", proc.Groups(), sys.Queries())
	}
	if err := sys.Cancel(h2); err == nil {
		t.Error("double cancel should fail")
	}
}

func TestAggregateQueryEndToEnd(t *testing.T) {
	sys, openPort, _ := newAuctionSystem(t, Options{Nodes: 16, Seed: 8})
	var got []stream.Tuple
	_, err := sys.Submit(
		"SELECT sellerID, COUNT(*) AS n FROM OpenAuction [Range 1 Hour] GROUP BY sellerID", 4,
		func(tp stream.Tuple) { got = append(got, tp) })
	if err != nil {
		t.Fatal(err)
	}
	info := auctionInfos()[0]
	openPort.Publish(openT(info, 1, 1, 42, 10))
	openPort.Publish(openT(info, 2, 2, 42, 10))
	if len(got) != 2 {
		t.Fatalf("deliveries = %d", len(got))
	}
	last := got[1]
	if last.MustGet("n").AsInt() != 2 {
		t.Errorf("count = %v", last)
	}
	if last.MustGet("OpenAuction.sellerID").AsInt() != 42 {
		t.Errorf("group col = %v", last)
	}
}

func TestAggregateMergingSharedDelivery(t *testing.T) {
	// Two identical aggregates with different AS names merge; each user
	// sees its own output name.
	sys, openPort, _ := newAuctionSystem(t, Options{Nodes: 16, Seed: 8})
	var gotA, gotB []stream.Tuple
	_, err := sys.Submit("SELECT sellerID, COUNT(*) AS n FROM OpenAuction [Range 1 Hour] GROUP BY sellerID", 4,
		func(tp stream.Tuple) { gotA = append(gotA, tp) })
	if err != nil {
		t.Fatal(err)
	}
	_, err = sys.Submit("SELECT sellerID, COUNT(*) AS howmany FROM OpenAuction [Range 1 Hour] GROUP BY sellerID", 5,
		func(tp stream.Tuple) { gotB = append(gotB, tp) })
	if err != nil {
		t.Fatal(err)
	}
	if sys.Processors()[0].Groups() != 1 {
		t.Fatalf("aggregates should merge into one group")
	}
	info := auctionInfos()[0]
	openPort.Publish(openT(info, 1, 1, 7, 10))
	if len(gotA) != 1 || len(gotB) != 1 {
		t.Fatalf("deliveries = %d, %d", len(gotA), len(gotB))
	}
	if !gotA[0].Schema.Has("n") || gotA[0].MustGet("n").AsInt() != 1 {
		t.Errorf("A got %v", gotA[0])
	}
	if !gotB[0].Schema.Has("howmany") || gotB[0].MustGet("howmany").AsInt() != 1 {
		t.Errorf("B got %v", gotB[0])
	}
}

func TestPlacementPolicies(t *testing.T) {
	for _, policy := range []PlacementPolicy{LeastLoaded, RoundRobin, NearestToUser} {
		sys, err := NewSystem(Options{
			Nodes: 32, Seed: 2, Processors: 3, Placement: policy,
		})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sys.RegisterStream(auctionInfos()[0], 0); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 9; i++ {
			_, err := sys.Submit(
				fmt.Sprintf("SELECT itemID FROM OpenAuction [Now] WHERE sellerID = %d", i),
				i%32, func(stream.Tuple) {})
			if err != nil {
				t.Fatal(err)
			}
		}
		total := 0
		for _, p := range sys.Processors() {
			total += p.Load()
		}
		if total != 9 {
			t.Fatalf("%v: total load = %d", policy, total)
		}
		if policy == LeastLoaded || policy == RoundRobin {
			for _, p := range sys.Processors() {
				if p.Load() != 3 {
					t.Errorf("%v: processor %d load = %d, want 3", policy, p.ID, p.Load())
				}
			}
		}
	}
}

func TestMergedAndDirectAgree(t *testing.T) {
	// The system's merged execution must agree with a direct standalone
	// plan execution of the same query on the same inputs.
	sys, openPort, closedPort := newAuctionSystem(t, Options{Nodes: 16, Seed: 6})
	qText := "SELECT O.itemID FROM OpenAuction [Range 2 Hour] O, ClosedAuction [Now] C WHERE O.itemID = C.itemID"
	var viaSystem []stream.Tuple
	_, err := sys.Submit(qText, 3, func(tp stream.Tuple) { viaSystem = append(viaSystem, tp) })
	if err != nil {
		t.Fatal(err)
	}
	// A second overlapping query forces group formation.
	if _, err := sys.Submit(
		"SELECT O.itemID, C.buyerID FROM OpenAuction [Range 4 Hour] O, ClosedAuction [Now] C WHERE O.itemID = C.itemID",
		4, func(stream.Tuple) {}); err != nil {
		t.Fatal(err)
	}

	bound := sys.queries["q00000"].bound
	direct, err := spe.Compile("direct", bound, "direct")
	if err != nil {
		t.Fatal(err)
	}
	var viaDirect []stream.Tuple

	infos := auctionInfos()
	hr := stream.Timestamp(stream.Hour)
	events := []stream.Tuple{
		openT(infos[0], 0, 1, 1, 10),
		openT(infos[0], 1*hr, 2, 1, 10),
		closedT(infos[1], 90*stream.Timestamp(stream.Minute), 1, 5),
		closedT(infos[1], 3*hr, 2, 6),
		closedT(infos[1], 5*hr, 1, 7),
	}
	for _, ev := range events {
		out, err := direct.Push(ev)
		if err != nil {
			t.Fatal(err)
		}
		viaDirect = append(viaDirect, out...)
		if ev.Schema.Stream == "OpenAuction" {
			openPort.Publish(ev)
		} else {
			closedPort.Publish(ev)
		}
	}
	if len(viaSystem) != len(viaDirect) {
		t.Fatalf("system=%d direct=%d results", len(viaSystem), len(viaDirect))
	}
	for i := range viaSystem {
		if viaSystem[i].Ts != viaDirect[i].Ts ||
			viaSystem[i].MustGet("OpenAuction.itemID").AsInt() != viaDirect[i].MustGet("OpenAuction.itemID").AsInt() {
			t.Errorf("result %d differs: %v vs %v", i, viaSystem[i], viaDirect[i])
		}
	}
}

func TestSystemValidation(t *testing.T) {
	if _, err := NewSystem(Options{Nodes: 8, ProcessorNodes: []int{99}}); err == nil {
		t.Error("out-of-range processor node should fail")
	}
	sys, err := NewSystem(Options{Nodes: 8, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.RegisterStream(auctionInfos()[0], 99); err == nil {
		t.Error("out-of-range source node should fail")
	}
	if _, err := sys.RegisterStream(auctionInfos()[0], 0); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.RegisterStream(auctionInfos()[0], 1); err == nil {
		t.Error("duplicate stream should fail")
	}
	if _, err := sys.Submit("SELECT nope FROM Nothing", 0, nil); err == nil {
		t.Error("invalid query should fail")
	}
	if _, err := sys.Submit("SELECT itemID FROM OpenAuction [Now]", 99, nil); err == nil {
		t.Error("out-of-range user node should fail")
	}
	port := sys.sources["OpenAuction"]
	bad := stream.MustTuple(auctionInfos()[1].Schema, 0, stream.Int(1), stream.Int(2), stream.Time(0))
	if err := port.Publish(bad); err == nil {
		t.Error("publishing a foreign stream should fail")
	}
}
