package transport

import (
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"cosmos/internal/core"
	"cosmos/internal/stream"
)

// Server exposes a core deployment over TCP. The hosted system is
// usually a LiveSystem (cmd/cosmosd's default): subscription results
// then reach the wire through the per-worker direct-publish data path —
// each query proxy's delivery pump writes result frames as they arrive,
// with no stabilisation barrier on the steady-state path.
type Server struct {
	sys      *core.System
	closeSys func()
	// serialize marks a hosted synchronous (SimNet) system: its
	// single-threaded network cannot take concurrent publishes, so
	// dispatch from the per-connection goroutines funnels through opMu.
	// Live systems skip it — their surfaces are thread-safe. The price
	// of emulating a single-threaded network faithfully is that one
	// session's blocking write inside a publish cascade stalls the
	// others' system operations; -sim is the replay/debug mode, and a
	// graceful shutdown still terminates because it bounds every
	// writer first.
	serialize bool
	opMu      sync.Mutex

	// stateMu orders dispatch against shutdown: work-accepting requests
	// (register/publish/submit) hold the read side for their whole
	// operation, and stop flips closed under the write side — so once
	// stop proceeds, every accepted publish has fully landed in the
	// system and the drain covers it.
	stateMu sync.RWMutex
	closed  bool

	mu       sync.Mutex
	ln       net.Listener
	sessions map[*session]struct{}
	stopped  bool
	wg       sync.WaitGroup
}

// ServerOption configures a Server.
type ServerOption func(*Server)

// WithSystemClose installs the deployment teardown Shutdown calls after
// the last connection has drained — core.LiveSystem.Close for a live
// daemon, nothing for an embedded test system.
func WithSystemClose(fn func()) ServerOption {
	return func(s *Server) { s.closeSys = fn }
}

// NewServer wraps a system; callers own the listener lifecycle via Serve.
func NewServer(sys *core.System, opts ...ServerOption) *Server {
	s := &Server{
		sys:       sys,
		serialize: !sys.Live(),
		sessions:  map[*session]struct{}{},
	}
	for _, opt := range opts {
		opt(s)
	}
	return s
}

// Serve accepts connections until the listener closes.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	s.ln = ln
	stopped := s.stopped
	s.mu.Unlock()
	if stopped {
		// Stopped before Serve stored the listener (e.g. a SIGTERM in
		// the startup window): close it here so we don't accept
		// forever on a listener Shutdown never saw.
		ln.Close()
		return nil
	}
	for {
		conn, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			stopped := s.stopped
			s.mu.Unlock()
			if stopped {
				return nil
			}
			return err
		}
		sess := &session{
			srv:     s,
			conn:    conn,
			w:       &connWriter{conn: conn, enc: gob.NewEncoder(conn)},
			queries: map[string]*core.QueryHandle{},
		}
		s.mu.Lock()
		if s.stopped {
			s.mu.Unlock()
			conn.Close()
			return nil
		}
		s.sessions[sess] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go func() {
			defer s.wg.Done()
			sess.serve()
			s.mu.Lock()
			delete(s.sessions, sess)
			s.mu.Unlock()
		}()
	}
}

// Close stops accepting, drops every connection, and waits for the
// handlers (each cancels its own queries on the way out). For the
// graceful variant — drain in-flight results, notify subscribers, close
// the hosted system — use Shutdown.
func (s *Server) Close() error {
	err, _ := s.stop(false)
	return err
}

// Shutdown is the graceful stop: close the listener, run the
// stabilisation barrier so every result already in flight reaches the
// wire, end each live subscription with a MsgEnd push, drop the
// connections, wait for the handlers, and finally close the hosted
// system (WithSystemClose). New publishes and submits are rejected the
// moment the stop begins ("server shutting down"), so a steadily
// publishing client cannot livelock the drain; what was accepted before
// still reaches subscribers. Idempotent, like Close: whichever runs
// first wins.
func (s *Server) Shutdown() error {
	err, first := s.stop(true)
	if first && s.closeSys != nil {
		s.closeSys()
	}
	return err
}

// stop implements Close (graceful=false) and Shutdown (graceful=true);
// reports whether this call was the one that performed the stop.
func (s *Server) stop(graceful bool) (error, bool) {
	s.mu.Lock()
	if s.stopped {
		s.mu.Unlock()
		return nil, false
	}
	s.stopped = true
	ln := s.ln
	sessions := make([]*session, 0, len(s.sessions))
	for sess := range s.sessions {
		sessions = append(sessions, sess)
	}
	s.mu.Unlock()
	if graceful {
		// Bound every write first: a subscriber that stopped reading
		// (full TCP buffer) would otherwise block a result write
		// inside a delivery pump — or a dispatch we are about to wait
		// out — indefinitely. The bound refreshes per write, so a
		// healthy-but-slow drain of a large backlog is not truncated;
		// only a stuck writer is.
		for _, sess := range sessions {
			sess.w.bound()
		}
	}
	// Flip the dispatch gate. Taking the write side waits for every
	// in-flight register/publish/submit (they hold the read side for
	// their whole operation), so once we proceed, everything the server
	// acknowledged has fully landed in the system — the drain below
	// covers it — and everything later is rejected.
	s.stateMu.Lock()
	s.closed = true
	s.stateMu.Unlock()
	var err error
	if ln != nil {
		err = ln.Close()
	}
	if graceful {
		// Flush results already accepted by the system onto the wire:
		// query-proxy pumps write result frames from their own
		// goroutines, and Quiesce returns only after those deliveries
		// (callback included) complete. This converges because the
		// gate above stopped further publishes — only the finite
		// backlog drains. On a synchronous system the barrier
		// serialises with any in-flight dispatch.
		if s.serialize {
			s.opMu.Lock()
		}
		s.sys.Quiesce()
		if s.serialize {
			s.opMu.Unlock()
		}
	}
	for _, sess := range sessions {
		sess.close(graceful)
	}
	s.wg.Wait()
	return err, true
}

// connWriter serialises gob writes on one connection. Once bounded
// (graceful shutdown), every write refreshes a per-write deadline: a
// healthy-but-slow drain keeps extending it, while a subscriber that
// stopped reading fails its write within the bound instead of stalling
// the drain forever.
type connWriter struct {
	conn    net.Conn
	bounded atomic.Bool

	mu  sync.Mutex
	enc *gob.Encoder
}

// writeBound is the per-write deadline applied during a graceful drain.
const writeBound = 5 * time.Second

func (w *connWriter) send(r *Response) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.bounded.Load() {
		_ = w.conn.SetWriteDeadline(time.Now().Add(writeBound))
	}
	return w.enc.Encode(r)
}

// bound switches the writer to per-write deadlines and stamps an
// immediate absolute one, which also unblocks a Write already stuck on
// a full TCP buffer (deadlines apply to in-flight I/O). Lock-free on
// purpose: taking w.mu here would wait behind exactly the stuck write
// this exists to cut short.
func (w *connWriter) bound() {
	w.bounded.Store(true)
	_ = w.conn.SetWriteDeadline(time.Now().Add(writeBound))
}

// session is one client connection's server-side state: the serialised
// writer and the queries the connection owns (cancelled when it drops).
type session struct {
	srv  *Server
	conn net.Conn
	w    *connWriter

	mu      sync.Mutex
	queries map[string]*core.QueryHandle
	ended   bool
}

func (sess *session) serve() {
	defer sess.close(false)
	dec := gob.NewDecoder(sess.conn)
	for {
		var req Request
		if err := dec.Decode(&req); err != nil {
			if !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) {
				log.Printf("cosmosd: decode: %v", err)
			}
			return
		}
		resp := sess.dispatch(&req)
		if resp == nil {
			continue // dispatch responded itself (MsgSubmit ordering)
		}
		resp.ID = req.ID
		if err := sess.w.send(resp); err != nil {
			return
		}
	}
}

// close tears the session down: graceful closes push a MsgEnd per live
// subscription before the queries are cancelled and the connection
// drops. The pushes inherit the drain's per-write deadline (the server
// bounds every session writer before closing sessions), so an
// unresponsive subscriber cannot block the shutdown. Idempotent
// (serve's deferred abrupt close after a graceful shutdown is a no-op).
func (sess *session) close(graceful bool) {
	if graceful {
		sess.w.bound()
	}
	sess.mu.Lock()
	if sess.ended {
		sess.mu.Unlock()
		return
	}
	sess.ended = true
	queries := sess.queries
	sess.queries = map[string]*core.QueryHandle{}
	sess.mu.Unlock()
	for tag, h := range queries {
		if graceful {
			_ = sess.w.send(&Response{Kind: MsgEnd, QueryTag: tag})
		}
		if err := sess.srv.cancelQuery(h); err != nil {
			log.Printf("cosmosd: cancel %s: %v", tag, err)
		}
	}
	sess.conn.Close()
}

// cancelQuery removes a query from the hosted system, honouring the
// synchronous backend's serialisation (a dropped connection's teardown
// must not race another session's dispatch into the SimNet).
func (s *Server) cancelQuery(h *core.QueryHandle) error {
	if s.serialize {
		s.opMu.Lock()
		defer s.opMu.Unlock()
	}
	return s.sys.Cancel(h)
}

func errResp(format string, args ...interface{}) *Response {
	return &Response{Kind: MsgError, Error: fmt.Sprintf(format, args...)}
}

// resultGate buffers a new subscription's result frames until its
// MsgOK response has been written, so the client never sees a result
// for a tag it has not been told about. Deliveries already arrive
// serially (one proxy pump per query); the gate only fixes their order
// relative to the OK.
type resultGate struct {
	w    *connWriter
	mu   sync.Mutex
	open bool
	held []*Response
}

func (g *resultGate) deliver(t stream.Tuple) {
	resp := &Response{
		Kind:     MsgResult,
		QueryTag: t.Schema.Stream,
		Tuple:    ToWireTuple(t),
		Schema:   ToWireSchema(t.Schema),
	}
	g.mu.Lock()
	if !g.open {
		g.held = append(g.held, resp)
		g.mu.Unlock()
		return
	}
	g.mu.Unlock()
	_ = g.w.send(resp)
}

// release flushes the held frames and lets subsequent deliveries write
// directly. The flush happens under the gate lock so a concurrent
// delivery cannot overtake a held frame.
func (g *resultGate) release() {
	g.mu.Lock()
	for _, r := range g.held {
		_ = g.w.send(r)
	}
	g.held = nil
	g.open = true
	g.mu.Unlock()
}

func (sess *session) dispatch(req *Request) *Response {
	s := sess.srv
	switch req.Kind {
	case MsgRegister, MsgPublish, MsgSubmit:
		// Hold the dispatch gate for the whole operation: stop() flips
		// closed under the write side, so a request that passes this
		// check has fully landed in the system before the shutdown
		// drain begins — no acknowledged tuple can slip past Quiesce.
		s.stateMu.RLock()
		defer s.stateMu.RUnlock()
		if s.closed {
			return errResp("server shutting down")
		}
	}
	if s.serialize {
		s.opMu.Lock()
		defer s.opMu.Unlock()
	}
	switch req.Kind {
	case MsgRegister:
		info, err := FromWireInfo(req.Info)
		if err != nil {
			return errResp("bad stream info: %v", err)
		}
		if _, err := s.sys.RegisterStream(info, req.Node); err != nil {
			return errResp("%v", err)
		}
		return &Response{Kind: MsgOK}

	case MsgPublish:
		port, ok := s.sys.Source(req.Tuple.Stream)
		if !ok {
			return errResp("stream %q not registered", req.Tuple.Stream)
		}
		schema, ok := s.sys.Catalog().Schema(req.Tuple.Stream)
		if !ok {
			return errResp("no schema for %q", req.Tuple.Stream)
		}
		t, err := FromWireTuple(req.Tuple, schema)
		if err != nil {
			return errResp("bad tuple: %v", err)
		}
		if err := port.Publish(t); err != nil {
			return errResp("%v", err)
		}
		return &Response{Kind: MsgOK}

	case MsgSubmit:
		// The result callback runs on the query proxy's delivery
		// goroutine (the LiveClient pump on a live system) and writes
		// the frame onto the shared connection writer — per query, wire
		// order is delivery order. The result stream name IS the query
		// tag, so the closure needs no capture of the not-yet-known
		// tag. The gate holds back results delivered between the proxy
		// attaching and the MsgOK write, so no frame for this query
		// precedes the response announcing its tag.
		gate := &resultGate{w: sess.w}
		h, err := s.sys.Submit(req.CQL, req.UserNode, gate.deliver)
		if err != nil {
			return errResp("%v", err)
		}
		sess.mu.Lock()
		if sess.ended {
			// Lost the race with a shutdown: don't leak the query.
			sess.mu.Unlock()
			_ = s.sys.Cancel(h)
			return errResp("server shutting down")
		}
		sess.queries[h.Tag] = h
		// Write the OK and flush the gate while holding the session
		// lock: a concurrent graceful close (which takes the lock
		// before writing MsgEnd) can then neither interleave this
		// subscription's MsgEnd before the response announcing its tag
		// nor before the results delivered while the submit was in
		// flight.
		_ = sess.w.send(&Response{ID: req.ID, Kind: MsgOK, QueryTag: h.Tag})
		gate.release()
		sess.mu.Unlock()
		return nil

	case MsgCancel:
		sess.mu.Lock()
		h, ok := sess.queries[req.QueryTag]
		if ok {
			delete(sess.queries, req.QueryTag)
		}
		sess.mu.Unlock()
		if !ok {
			return errResp("unknown query %q", req.QueryTag)
		}
		if err := s.sys.Cancel(h); err != nil {
			return errResp("%v", err)
		}
		return &Response{Kind: MsgOK}

	case MsgStats:
		return &Response{Kind: MsgOK, Stats: s.sys.StatsSnapshot()}

	case MsgCatalog:
		reg := s.sys.Catalog()
		var infos []WireInfo
		for _, name := range reg.Names() {
			if info, ok := reg.Lookup(name); ok {
				infos = append(infos, ToWireInfo(info))
			}
		}
		return &Response{Kind: MsgOK, Infos: infos}

	case MsgQuiesce:
		s.sys.Quiesce()
		return &Response{Kind: MsgOK}

	default:
		return errResp("unknown request kind %d", req.Kind)
	}
}
