package transport

import (
	"fmt"
	"math/rand"
	"time"
)

// Resilience tunes the reconnecting client. A client dialled with a
// Resilience config (DialConfig with a non-nil Resilience) announces a
// resumable session to the server and, on connection loss, retries
// with exponential backoff + jitter, re-registers its streams when the
// server turns out to be fresh, resumes (or resubmits) its active
// subscriptions at the new session epoch, and reports the delivery gap
// on each subscription instead of killing it. The zero value of every
// field picks the documented default.
type Resilience struct {
	// MaxRetries bounds consecutive failed reconnect attempts per
	// outage; once exhausted the client fails permanently and every
	// subscription ends with the error. <= 0 means retry forever.
	MaxRetries int

	// MinBackoff is the delay before the first reconnect attempt
	// (default 50ms). Subsequent attempts double it, capped at
	// MaxBackoff (default 5s); each delay is jittered in [50%, 150%].
	MinBackoff time.Duration
	MaxBackoff time.Duration

	// HeartbeatInterval is the keepalive ping cadence (default 15s).
	// The client applies a read deadline of three intervals, so a dead
	// server is detected even when no results flow.
	HeartbeatInterval time.Duration

	// OnGap says what to do when a resume reveals lost results.
	OnGap GapPolicy
}

// GapPolicy is the client's reaction to a delivery gap after a resume.
type GapPolicy int

const (
	// GapResume (default) reports the gap on the subscription and
	// keeps streaming from the resume point.
	GapResume GapPolicy = iota
	// GapError ends the subscription with an error describing the gap
	// (exactly-once consumers resubscribe and rebuild instead).
	GapError
)

// Gap describes results lost across a reconnect: the server kept
// counting deliveries while the client was away, so [From, To] is the
// exact sequence range that fell into the hole. Unknown marks the
// harsher case — the server no longer knew the session (restart or
// linger expiry) and the subscription was resubmitted from scratch, so
// the loss cannot be quantified and sequence numbering restarts at 1.
type Gap struct {
	Epoch    uint64 // session epoch after the reconnect that revealed the gap
	From, To uint64 // lost sequence range, inclusive (zero when Unknown)
	Unknown  bool   // resubmitted from scratch; loss unquantifiable
}

// Lost is the number of results known to be lost (0 when Unknown).
func (g Gap) Lost() uint64 {
	if g.Unknown || g.To < g.From {
		return 0
	}
	return g.To - g.From + 1
}

func (g Gap) String() string {
	if g.Unknown {
		return fmt.Sprintf("gap[epoch %d: resubmitted, loss unknown]", g.Epoch)
	}
	return fmt.Sprintf("gap[epoch %d: lost %d..%d]", g.Epoch, g.From, g.To)
}

// Defaults.
const (
	defaultMinBackoff = 50 * time.Millisecond
	defaultMaxBackoff = 5 * time.Second
	defaultHeartbeat  = 15 * time.Second
)

// withDefaults fills zero fields.
func (r Resilience) withDefaults() Resilience {
	if r.MinBackoff <= 0 {
		r.MinBackoff = defaultMinBackoff
	}
	if r.MaxBackoff < r.MinBackoff {
		r.MaxBackoff = defaultMaxBackoff
		if r.MaxBackoff < r.MinBackoff {
			r.MaxBackoff = r.MinBackoff
		}
	}
	if r.HeartbeatInterval <= 0 {
		r.HeartbeatInterval = defaultHeartbeat
	}
	return r
}

// backoff computes the jittered delay before reconnect attempt n (1-based).
func (r Resilience) backoff(attempt int) time.Duration {
	d := r.MinBackoff
	for i := 1; i < attempt && d < r.MaxBackoff; i++ {
		d *= 2
	}
	if d > r.MaxBackoff {
		d = r.MaxBackoff
	}
	// Jitter in [50%, 150%) so a fleet of clients does not hammer a
	// recovering server in lockstep.
	return d/2 + time.Duration(rand.Int63n(int64(d)))
}
