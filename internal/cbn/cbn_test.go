package cbn

import (
	"math/rand"
	"sync"
	"testing"

	"cosmos/internal/overlay"
	"cosmos/internal/predicate"
	"cosmos/internal/profile"
	"cosmos/internal/stream"
	"cosmos/internal/topology"
)

var sensorSchema = stream.MustSchema("Sensor1",
	stream.Field{Name: "station", Kind: stream.KindInt},
	stream.Field{Name: "temp", Kind: stream.KindFloat},
	stream.Field{Name: "humidity", Kind: stream.KindFloat},
)

func sensorTuple(ts stream.Timestamp, station int64, temp, hum float64) stream.Tuple {
	return stream.MustTuple(sensorSchema, ts,
		stream.Int(station), stream.Float(temp), stream.Float(hum))
}

func tempProfile(minTemp float64, attrs []string) *profile.Profile {
	p := profile.New()
	p.AddStream("Sensor1", attrs, predicate.DNF{
		{predicate.C("temp", predicate.GT, stream.Float(minTemp))},
	})
	return p
}

// lineNet builds brokers 0—1—2—…—(n-1).
func lineNet(n int) *SimNet {
	net := NewSimNet(n)
	for i := 0; i+1 < n; i++ {
		net.AddLink(i, i+1, 10)
	}
	return net
}

func TestSimNetDeliveryAndFiltering(t *testing.T) {
	net := lineNet(3)
	src := net.AttachClient(0)
	var got []stream.Tuple
	subscriber := net.AttachClient(2)
	subscriber.OnTuple = func(tp stream.Tuple) { got = append(got, tp) }

	src.Advertise("Sensor1")
	subscriber.Subscribe(tempProfile(20, nil))

	if err := src.Publish(sensorTuple(1, 7, 25, 0.5)); err != nil {
		t.Fatal(err)
	}
	if err := src.Publish(sensorTuple(2, 7, 15, 0.5)); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("deliveries = %d, want 1", len(got))
	}
	if got[0].MustGet("temp").AsFloat() != 25 {
		t.Errorf("wrong tuple delivered: %v", got[0])
	}
	// The cold tuple must not have crossed any link.
	stats := net.Stats()
	for _, ls := range stats {
		if ls.DataMsgs != 1 {
			t.Errorf("link %d-%d carried %d data msgs, want 1", ls.A, ls.B, ls.DataMsgs)
		}
	}
}

func TestSimNetEarlyProjection(t *testing.T) {
	full := lineNet(3)
	src := full.AttachClient(0)
	sub := full.AttachClient(2)
	sub.OnTuple = func(stream.Tuple) {}
	src.Advertise("Sensor1")
	sub.Subscribe(tempProfile(-100, nil)) // all attrs
	src.Publish(sensorTuple(1, 7, 25, 0.5))
	fullBytes := full.TotalDataBytes()

	proj := lineNet(3)
	src2 := proj.AttachClient(0)
	var got stream.Tuple
	sub2 := proj.AttachClient(2)
	sub2.OnTuple = func(tp stream.Tuple) { got = tp }
	src2.Advertise("Sensor1")
	sub2.Subscribe(tempProfile(-100, []string{"temp"}))
	src2.Publish(sensorTuple(1, 7, 25, 0.5))
	projBytes := proj.TotalDataBytes()

	if projBytes >= fullBytes {
		t.Errorf("early projection did not save bytes: %d vs %d", projBytes, fullBytes)
	}
	if got.Schema.Arity() != 1 || !got.Schema.Has("temp") {
		t.Errorf("delivered tuple not projected: %v", got)
	}
}

func TestSimNetSharedLinkMulticast(t *testing.T) {
	// Topology: 0 — 1, with two subscribers hanging off node 1 via a
	// further hop each: 1—2 and 1—3. Identical interests must traverse
	// the shared 0—1 link ONCE.
	net := NewSimNet(4)
	net.AddLink(0, 1, 10)
	net.AddLink(1, 2, 10)
	net.AddLink(1, 3, 10)
	src := net.AttachClient(0)
	n2 := net.AttachClient(2)
	n3 := net.AttachClient(3)
	count2, count3 := 0, 0
	n2.OnTuple = func(stream.Tuple) { count2++ }
	n3.OnTuple = func(stream.Tuple) { count3++ }
	src.Advertise("Sensor1")
	n2.Subscribe(tempProfile(20, nil))
	n3.Subscribe(tempProfile(20, nil))
	src.Publish(sensorTuple(1, 7, 25, 0.5))
	if count2 != 1 || count3 != 1 {
		t.Fatalf("deliveries = %d, %d", count2, count3)
	}
	for _, ls := range net.Stats() {
		if ls.DataMsgs != 1 {
			t.Errorf("link %d-%d carried %d data msgs, want 1 (shared dissemination)",
				ls.A, ls.B, ls.DataMsgs)
		}
	}
}

func TestSimNetProjectionIsUnionOfDownstreamNeeds(t *testing.T) {
	// Subscriber A wants temp only, subscriber B wants humidity only;
	// the shared link must carry the union {temp, humidity}, and each
	// final hop only the requested attribute.
	net := NewSimNet(4)
	net.AddLink(0, 1, 10)
	net.AddLink(1, 2, 10)
	net.AddLink(1, 3, 10)
	src := net.AttachClient(0)
	a := net.AttachClient(2)
	b := net.AttachClient(3)
	var gotA, gotB stream.Tuple
	a.OnTuple = func(tp stream.Tuple) { gotA = tp }
	b.OnTuple = func(tp stream.Tuple) { gotB = tp }
	src.Advertise("Sensor1")
	// Filterless profiles: projection sets stay exactly as requested
	// (with filters, the network would widen them to keep filter attrs).
	pa := profile.New()
	pa.AddStream("Sensor1", []string{"temp"}, nil)
	pb := profile.New()
	pb.AddStream("Sensor1", []string{"humidity"}, nil)
	a.Subscribe(pa)
	b.Subscribe(pb)
	src.Publish(sensorTuple(1, 7, 25, 0.5))

	if !gotA.Schema.Has("temp") || gotA.Schema.Has("humidity") {
		t.Errorf("A received %v", gotA)
	}
	if !gotB.Schema.Has("humidity") || gotB.Schema.Has("temp") {
		t.Errorf("B received %v", gotB)
	}
	// The shared 0—1 link carried the union of needs: verify by byte
	// accounting — union (2 floats) is larger than each final hop (1).
	var shared, hopA *LinkStats
	for _, ls := range net.Stats() {
		switch {
		case ls.A == 0 && ls.B == 1:
			shared = ls
		case ls.A == 1 && ls.B == 2:
			hopA = ls
		}
	}
	if shared == nil || hopA == nil {
		t.Fatal("missing link stats")
	}
	if shared.DataBytes <= hopA.DataBytes {
		t.Errorf("shared link should carry the attr union: %d vs %d",
			shared.DataBytes, hopA.DataBytes)
	}
}

func TestBrokerCoveringSuppression(t *testing.T) {
	// Two subscriptions where the second is covered by the first must
	// not propagate twice.
	net := lineNet(3)
	src := net.AttachClient(0)
	sub := net.AttachClient(2)
	sub.OnTuple = func(stream.Tuple) {}
	src.Advertise("Sensor1")
	sub.Subscribe(tempProfile(10, nil))
	ctrlAfterFirst := totalCtrlMsgs(net)
	sub.Subscribe(tempProfile(20, nil)) // covered: temp>20 implies temp>10
	ctrlAfterSecond := totalCtrlMsgs(net)
	if ctrlAfterSecond != ctrlAfterFirst {
		t.Errorf("covered subscription propagated: %d -> %d control msgs",
			ctrlAfterFirst, ctrlAfterSecond)
	}
	// A widening subscription must propagate.
	sub.Subscribe(tempProfile(0, nil))
	if totalCtrlMsgs(net) == ctrlAfterSecond {
		t.Error("widening subscription suppressed")
	}
}

func totalCtrlMsgs(net *SimNet) int64 {
	var total int64
	for _, ls := range net.Stats() {
		total += ls.CtrlMsgs
	}
	return total
}

func TestSubscribeBeforeAdvertise(t *testing.T) {
	// A subscription issued before the source advertises must still take
	// effect once the advert arrives.
	net := lineNet(3)
	src := net.AttachClient(0)
	var got []stream.Tuple
	sub := net.AttachClient(2)
	sub.OnTuple = func(tp stream.Tuple) { got = append(got, tp) }

	sub.Subscribe(tempProfile(20, nil))
	src.Advertise("Sensor1")
	src.Publish(sensorTuple(1, 7, 25, 0.5))
	if len(got) != 1 {
		t.Fatalf("late advert: deliveries = %d, want 1", len(got))
	}
}

func TestNormalizeKeepsFilterAttrs(t *testing.T) {
	// A profile projecting only station but filtering on temp must keep
	// temp across intermediate hops so the filter stays evaluable.
	net := lineNet(4)
	src := net.AttachClient(0)
	var got stream.Tuple
	sub := net.AttachClient(3)
	sub.OnTuple = func(tp stream.Tuple) { got = tp }
	src.Advertise("Sensor1")
	sub.Subscribe(tempProfile(20, []string{"station"}))
	src.Publish(sensorTuple(1, 9, 25, 0.5))
	if got.Schema == nil {
		t.Fatal("no delivery")
	}
	// Delivered tuple carries station (+ temp, since the network widens
	// the projection with filter attributes).
	if !got.Schema.Has("station") {
		t.Errorf("delivered = %v", got)
	}
	src.Publish(sensorTuple(2, 9, 5, 0.5))
	if got.Ts != 1 {
		t.Error("cold tuple should have been filtered at the first hop")
	}
}

func TestRouteTupleErrorOnBadFilter(t *testing.T) {
	b := NewBroker(0)
	b.AttachIface(0)
	b.AttachIface(1)
	bad := profile.New()
	bad.AddStream("Sensor1", nil, predicate.DNF{
		{predicate.C("no_such_attr", predicate.GT, stream.Float(0))},
	})
	b.HandleSubscribe(bad, 1)
	if _, err := b.RouteTuple(sensorTuple(1, 1, 1, 1), 0); err == nil {
		t.Error("filter referencing a missing attribute should error")
	}
}

func TestUnsubscribeStopsDelivery(t *testing.T) {
	b := NewBroker(0)
	b.AttachIface(0)
	b.AttachIface(1)
	p := tempProfile(20, nil)
	b.HandleSubscribe(p, 1)
	if d, _ := b.RouteTuple(sensorTuple(1, 1, 25, 0), 0); len(d) != 1 {
		t.Fatal("expected delivery before unsubscribe")
	}
	b.Unsubscribe(p, 1)
	if d, _ := b.RouteTuple(sensorTuple(2, 1, 25, 0), 0); len(d) != 0 {
		t.Error("delivery after unsubscribe")
	}
}

// TestSimNetCompletenessProperty: over a random tree, a subscriber
// receives exactly the tuples its profile covers.
func TestSimNetCompletenessProperty(t *testing.T) {
	g, err := topology.GeneratePowerLaw(30, 2, 13)
	if err != nil {
		t.Fatal(err)
	}
	tree, err := overlay.MST(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(99))
	for trial := 0; trial < 20; trial++ {
		net := NewSimNetFromTree(tree)
		src := net.AttachClient(r.Intn(30))
		subNode := r.Intn(30)
		threshold := -10 + 40*r.Float64()
		var got []stream.Tuple
		sub := net.AttachClient(subNode)
		sub.OnTuple = func(tp stream.Tuple) { got = append(got, tp) }
		src.Advertise("Sensor1")
		sub.Subscribe(tempProfile(threshold, nil))

		var want int
		for i := 0; i < 50; i++ {
			temp := -20 + 60*r.Float64()
			if err := src.Publish(sensorTuple(stream.Timestamp(i), int64(i%7), temp, 0)); err != nil {
				t.Fatal(err)
			}
			if temp > threshold {
				want++
			}
		}
		if len(got) != want {
			t.Fatalf("trial %d: got %d deliveries, want %d", trial, len(got), want)
		}
	}
}

func TestLiveNetEndToEnd(t *testing.T) {
	net := NewLiveNet(3)
	if err := net.AddLink(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := net.AddLink(1, 2); err != nil {
		t.Fatal(err)
	}
	src, err := net.AttachClient(0)
	if err != nil {
		t.Fatal(err)
	}
	sub, err := net.AttachClient(2)
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var got []stream.Tuple
	sub.SetOnTuple(func(tp stream.Tuple) {
		mu.Lock()
		got = append(got, tp)
		mu.Unlock()
	})
	net.Start()
	defer net.Stop()

	src.Advertise("Sensor1")
	net.Quiesce()
	sub.Subscribe(tempProfile(20, nil))
	net.Quiesce()
	for i := 0; i < 10; i++ {
		src.Publish(sensorTuple(stream.Timestamp(i), 1, float64(10+2*i), 0))
	}
	net.Quiesce()

	mu.Lock()
	defer mu.Unlock()
	// temps 10,12,…,28: those > 20 are 22,24,26,28 → 4 deliveries.
	if len(got) != 4 {
		t.Fatalf("live deliveries = %d, want 4", len(got))
	}
	if net.DataBytes() == 0 {
		t.Error("no data bytes accounted")
	}
}

func TestLiveNetConfigAfterStart(t *testing.T) {
	net := NewLiveNet(2)
	if err := net.AddLink(0, 1); err != nil {
		t.Fatal(err)
	}
	net.Start()
	defer net.Stop()
	if err := net.AddLink(0, 1); err == nil {
		t.Error("AddLink after Start must fail")
	}
	// Clients, by contrast, attach at any time: LiveSystem attaches one
	// per source, processor and query proxy as they appear.
	src, err := net.AttachClient(0)
	if err != nil {
		t.Fatalf("AttachClient after Start: %v", err)
	}
	sub, err := net.AttachClient(1)
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	delivered := 0
	sub.SetOnTuple(func(stream.Tuple) {
		mu.Lock()
		delivered++
		mu.Unlock()
	})
	src.Advertise("Sensor1")
	net.Quiesce()
	sub.Subscribe(tempProfile(0, nil))
	net.Quiesce()
	for i := 0; i < 5; i++ {
		if err := src.Publish(sensorTuple(stream.Timestamp(i), 1, 30, 0)); err != nil {
			t.Fatal(err)
		}
	}
	net.Quiesce()
	mu.Lock()
	defer mu.Unlock()
	if delivered != 5 {
		t.Fatalf("post-start clients delivered %d tuples, want 5", delivered)
	}
}

func TestLiveClientClose(t *testing.T) {
	net := NewLiveNet(2)
	if err := net.AddLink(0, 1); err != nil {
		t.Fatal(err)
	}
	net.Start()
	defer net.Stop()
	src, err := net.AttachClient(0)
	if err != nil {
		t.Fatal(err)
	}
	sub, err := net.AttachClient(1)
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	delivered := 0
	sub.SetOnTuple(func(stream.Tuple) {
		mu.Lock()
		delivered++
		mu.Unlock()
	})
	src.Advertise("Sensor1")
	net.Quiesce()
	sub.Subscribe(tempProfile(0, nil))
	net.Quiesce()
	if err := src.Publish(sensorTuple(1, 1, 30, 0)); err != nil {
		t.Fatal(err)
	}
	net.Quiesce()
	mu.Lock()
	before := delivered
	mu.Unlock()
	if before != 1 {
		t.Fatalf("pre-close deliveries = %d, want 1", before)
	}
	sub.Close()
	sub.Close() // idempotent
	// The detached endpoint no longer receives; Quiesce still settles.
	if err := src.Publish(sensorTuple(2, 1, 30, 0)); err != nil {
		t.Fatal(err)
	}
	net.Quiesce()
	mu.Lock()
	defer mu.Unlock()
	if delivered != before {
		t.Fatalf("closed client received %d more deliveries", delivered-before)
	}
}

func TestAdvertiseDuplicateSuppressed(t *testing.T) {
	net := lineNet(3)
	src := net.AttachClient(0)
	src.Advertise("Sensor1")
	base := totalCtrlMsgs(net)
	src.Advertise("Sensor1") // duplicate flood must be suppressed
	if totalCtrlMsgs(net) != base {
		t.Error("duplicate advertisement flooded again")
	}
}
