package cbn

import (
	"fmt"
	"sync"
	"sync/atomic"

	"cosmos/internal/profile"
	"cosmos/internal/stream"
)

// LiveNet runs each broker on its own goroutine, with buffered channels
// as overlay links — the concurrent counterpart of SimNet used by the
// real node runtime and the examples. Protocol behaviour is identical:
// both drive the same Broker logic. LiveNet is the direct beneficiary of
// the compiled data plane: per-goroutine brokers route tuples against
// the lock-free table without serialising on the broker mutex.
type LiveNet struct {
	brokers   []*Broker
	endpoints []map[IfaceID]liveEndpoint
	nextIface []IfaceID
	inboxes   []chan liveMsg
	reverse   map[route]IfaceID

	mu      sync.Mutex
	started bool
	wg      sync.WaitGroup
	quit    chan struct{}
	pending atomic.Int64
	idle    chan struct{}

	dataBytes atomic.Int64
}

type liveEndpoint struct {
	isClient bool
	client   *LiveClient
	peerNode int
}

type liveMsg struct {
	from  IfaceID
	kind  int // 0 data, 1 subscribe, 2 advertise
	tuple stream.Tuple
	prof  *profile.Profile
	name  string
}

// LiveClient is a client endpoint of a LiveNet.
type LiveClient struct {
	net   *LiveNet
	Node  int
	iface IfaceID

	mu      sync.Mutex
	onTuple func(stream.Tuple)
}

// SetOnTuple installs the delivery callback; safe to call concurrently.
func (c *LiveClient) SetOnTuple(fn func(stream.Tuple)) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.onTuple = fn
}

func (c *LiveClient) deliver(t stream.Tuple) {
	c.mu.Lock()
	fn := c.onTuple
	c.mu.Unlock()
	if fn != nil {
		fn(t)
	}
}

// NewLiveNet builds a network of n brokers with no links.
func NewLiveNet(n int) *LiveNet {
	net := &LiveNet{
		brokers:   make([]*Broker, n),
		endpoints: make([]map[IfaceID]liveEndpoint, n),
		nextIface: make([]IfaceID, n),
		inboxes:   make([]chan liveMsg, n),
		reverse:   map[route]IfaceID{},
		quit:      make(chan struct{}),
		idle:      make(chan struct{}, 1),
	}
	for i := 0; i < n; i++ {
		net.brokers[i] = NewBroker(i)
		net.endpoints[i] = map[IfaceID]liveEndpoint{}
		net.inboxes[i] = make(chan liveMsg, 1024)
	}
	return net
}

func (n *LiveNet) allocIface(node int) IfaceID {
	id := n.nextIface[node]
	n.nextIface[node]++
	n.brokers[node].AttachIface(id)
	return id
}

// AddLink joins two brokers; must be called before Start.
func (n *LiveNet) AddLink(a, b int) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.started {
		return fmt.Errorf("cbn: cannot add links after Start")
	}
	ia := n.allocIface(a)
	ib := n.allocIface(b)
	n.endpoints[a][ia] = liveEndpoint{peerNode: b}
	n.endpoints[b][ib] = liveEndpoint{peerNode: a}
	n.reverse[route{a, ia}] = ib
	n.reverse[route{b, ib}] = ia
	return nil
}

// AttachClient attaches a client endpoint; must be called before Start.
func (n *LiveNet) AttachClient(node int) (*LiveClient, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.started {
		return nil, fmt.Errorf("cbn: cannot attach clients after Start")
	}
	c := &LiveClient{net: n, Node: node, iface: n.allocIface(node)}
	n.endpoints[node][c.iface] = liveEndpoint{isClient: true, client: c}
	return c, nil
}

// Start launches one goroutine per broker.
func (n *LiveNet) Start() {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.started {
		return
	}
	n.started = true
	for i := range n.brokers {
		n.wg.Add(1)
		go n.run(i)
	}
}

// Stop terminates the broker goroutines and waits for them.
func (n *LiveNet) Stop() {
	n.mu.Lock()
	if !n.started {
		n.mu.Unlock()
		return
	}
	n.mu.Unlock()
	close(n.quit)
	n.wg.Wait()
}

// run is the per-broker event loop.
func (n *LiveNet) run(node int) {
	defer n.wg.Done()
	b := n.brokers[node]
	for {
		select {
		case <-n.quit:
			return
		case m := <-n.inboxes[node]:
			switch m.kind {
			case 0:
				deliveries, err := b.RouteTuple(m.tuple, m.from)
				if err == nil {
					for _, d := range deliveries {
						n.emit(node, d.Iface, liveMsg{kind: 0, tuple: d.Tuple})
					}
				}
			case 1:
				for _, fw := range b.HandleSubscribe(m.prof, m.from) {
					n.emit(node, fw.Iface, liveMsg{kind: 1, prof: fw.Prof})
				}
			case 2:
				adverts, subs := b.HandleAdvertise(m.name, m.from)
				for _, a := range adverts {
					n.emit(node, a.Iface, liveMsg{kind: 2, name: a.Stream})
				}
				for _, fw := range subs {
					n.emit(node, fw.Iface, liveMsg{kind: 1, prof: fw.Prof})
				}
			}
			n.done()
		}
	}
}

// emit routes an outgoing message to the proper inbox or client.
func (n *LiveNet) emit(node int, iface IfaceID, m liveMsg) {
	ep, ok := n.endpoints[node][iface]
	if !ok {
		return
	}
	if ep.isClient {
		if m.kind == 0 {
			ep.client.deliver(m.tuple)
		}
		return
	}
	if m.kind == 0 {
		n.dataBytes.Add(int64(m.tuple.WireSize() + DataHeaderBytes))
	}
	m.from = n.reverse[route{node, iface}]
	n.pending.Add(1)
	select {
	case n.inboxes[ep.peerNode] <- m:
	case <-n.quit:
		n.pending.Add(-1)
	}
}

// done marks one message as fully processed and signals idleness.
func (n *LiveNet) done() {
	if n.pending.Add(-1) == 0 {
		select {
		case n.idle <- struct{}{}:
		default:
		}
	}
}

// inject submits a client-originated message.
func (n *LiveNet) inject(node int, iface IfaceID, m liveMsg) {
	m.from = iface
	n.pending.Add(1)
	select {
	case n.inboxes[node] <- m:
	case <-n.quit:
		n.pending.Add(-1)
	}
}

// Quiesce blocks until every in-flight message has been processed. Only
// meaningful when no client is concurrently publishing.
func (n *LiveNet) Quiesce() {
	for n.pending.Load() > 0 {
		select {
		case <-n.idle:
		case <-n.quit:
			return
		}
	}
}

// SetCatalog installs a stream catalog on every broker as the
// schema-drift guard for compiled routing; call before Start.
func (n *LiveNet) SetCatalog(reg *stream.Registry) {
	for _, b := range n.brokers {
		b.SetCatalog(reg)
	}
}

// DataBytes reports total tuple bytes moved across overlay links.
func (n *LiveNet) DataBytes() int64 { return n.dataBytes.Load() }

// Broker exposes a node's broker.
func (n *LiveNet) Broker(node int) *Broker { return n.brokers[node] }

// Advertise announces a stream from the client's node.
func (c *LiveClient) Advertise(streamName string) {
	c.net.inject(c.Node, c.iface, liveMsg{kind: 2, name: streamName})
}

// Subscribe submits a profile from the client's node.
func (c *LiveClient) Subscribe(p *profile.Profile) {
	c.net.inject(c.Node, c.iface, liveMsg{kind: 1, prof: p})
}

// Publish injects a datagram.
func (c *LiveClient) Publish(t stream.Tuple) {
	c.net.inject(c.Node, c.iface, liveMsg{kind: 0, tuple: t})
}
