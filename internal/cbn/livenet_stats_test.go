package cbn

import (
	"testing"

	"cosmos/internal/overlay"
	"cosmos/internal/stream"
	"cosmos/internal/topology"
)

// TestLiveNetPerLinkStatsMatchSim drives the same scenario — one
// advertised source, two subscribers, 60 tuples — through SimNet and
// LiveNet over the same tree, and requires identical per-link counters:
// the live transport's atomics must account exactly what the
// deterministic simulator accounts, link for link, data and control
// plane alike. Control-plane ops are quiesce-separated so the
// propagation waves process in the same order on both transports.
func TestLiveNetPerLinkStatsMatchSim(t *testing.T) {
	g, err := topology.GeneratePowerLaw(16, 2, 7)
	if err != nil {
		t.Fatal(err)
	}
	tree, err := overlay.MST(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	const srcNode, subA, subB = 3, 9, 14

	publishAll := func(pub func(stream.Tuple) error) {
		for i := 0; i < 60; i++ {
			tp := sensorTuple(stream.Timestamp(i), int64(i%5), float64(i%40), 0.5)
			if err := pub(tp); err != nil {
				t.Fatal(err)
			}
		}
	}

	// Simulated reference.
	sim := NewSimNetFromTree(tree)
	simSrc := sim.AttachClient(srcNode)
	simSrc.Advertise("Sensor1")
	sim.AttachClient(subA).Subscribe(tempProfile(10, nil))
	sim.AttachClient(subB).Subscribe(tempProfile(25, nil))
	publishAll(simSrc.Publish)
	want := sim.Stats()

	// Live run, quiesced between control-plane waves.
	live := NewLiveNetFromTree(tree)
	liveSrc, err := live.AttachClient(srcNode)
	if err != nil {
		t.Fatal(err)
	}
	ca, err := live.AttachClient(subA)
	if err != nil {
		t.Fatal(err)
	}
	cb, err := live.AttachClient(subB)
	if err != nil {
		t.Fatal(err)
	}
	ca.SetOnTuple(func(stream.Tuple) {})
	cb.SetOnTuple(func(stream.Tuple) {})
	live.Start()
	defer live.Stop()
	liveSrc.Advertise("Sensor1")
	live.Quiesce()
	ca.Subscribe(tempProfile(10, nil))
	live.Quiesce()
	cb.Subscribe(tempProfile(25, nil))
	live.Quiesce()
	publishAll(liveSrc.Publish)
	live.Quiesce()
	got := live.Stats()

	if len(got) != len(want) {
		t.Fatalf("live has %d links, sim %d", len(got), len(want))
	}
	var gotData, wantData int64
	for i := range got {
		g, w := got[i], want[i]
		if g.A != w.A || g.B != w.B {
			t.Fatalf("link %d: live (%d,%d) vs sim (%d,%d)", i, g.A, g.B, w.A, w.B)
		}
		if g.DataBytes != w.DataBytes || g.DataMsgs != w.DataMsgs {
			t.Errorf("link %d-%d: data live %dB/%d vs sim %dB/%d",
				g.A, g.B, g.DataBytes, g.DataMsgs, w.DataBytes, w.DataMsgs)
		}
		if g.CtrlBytes != w.CtrlBytes || g.CtrlMsgs != w.CtrlMsgs {
			t.Errorf("link %d-%d: ctrl live %dB/%d vs sim %dB/%d",
				g.A, g.B, g.CtrlBytes, g.CtrlMsgs, w.CtrlBytes, w.CtrlMsgs)
		}
		gotData += g.DataBytes
		wantData += w.DataBytes
	}
	if gotData == 0 {
		t.Fatal("no data traffic accounted; scenario too weak")
	}
	// The per-link counters must also reconcile with the aggregate.
	if live.TotalDataBytes() != gotData {
		t.Errorf("TotalDataBytes %d != sum of per-link data bytes %d",
			live.TotalDataBytes(), gotData)
	}
	if sim.TotalDataBytes() != wantData {
		t.Errorf("sim TotalDataBytes %d != link sum %d", sim.TotalDataBytes(), wantData)
	}
}
