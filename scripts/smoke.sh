#!/usr/bin/env bash
# End-to-end smoke over a real socket: start cosmosd (LiveSystem by
# default), drive it with cosmosctl — explain, register, catalog,
# publish, submit (streaming results), stats, top, quiesce — assert the
# streamed results and the -metrics-addr HTTP surface (live tuple
# counts, pprof), then shut the daemon down gracefully with SIGTERM.
# CI runs this; it is also handy locally: ./scripts/smoke.sh
set -euo pipefail
cd "$(dirname "$0")/.."

bin="$(mktemp -d)"
daemon_pid=""
cleanup() {
  [ -n "$daemon_pid" ] && kill "$daemon_pid" 2>/dev/null || true
  rm -rf "$bin"
}
trap cleanup EXIT

go build -o "$bin" ./cmd/cosmosd ./cmd/cosmosctl

addr="127.0.0.1:7954"
maddr="127.0.0.1:7955"
"$bin/cosmosd" -listen "$addr" -nodes 32 -processors 2 -workers 2 -seed 1 \
  -metrics-addr "$maddr" -sample-every 1 \
  >"$bin/cosmosd.log" 2>&1 &
daemon_pid=$!

ctl() { "$bin/cosmosctl" -addr "$addr" "$@"; }

# Minimal HTTP GET over bash's /dev/tcp — no curl dependency.
http_get() {
  exec 3<>"/dev/tcp/${1%%:*}/${1##*:}"
  printf 'GET %s HTTP/1.0\r\nHost: %s\r\n\r\n' "$2" "$1" >&3
  cat <&3
  exec 3<&- 3>&-
}

# Wait for the daemon to accept connections.
up=""
for _ in $(seq 1 100); do
  if ctl stats >/dev/null 2>&1; then up=1; break; fi
  sleep 0.1
done
[ -n "$up" ] || { echo "cosmosd never came up"; cat "$bin/cosmosd.log"; exit 1; }

echo "== explain (local, no server round trip)"
# (plain grep, not -q: -q exits on first match and SIGPIPEs tee under pipefail)
ctl explain -cql 'SELECT symbol, price FROM Trades [Range 5 Minute] WHERE price > 100' \
  | tee /dev/stderr | grep 'select-project filter' >/dev/null

echo "== register + catalog"
ctl register -stream 'Trades(symbol string, price float)' -rate 100 -node 1
ctl catalog | grep -q 'Trades'

echo "== submit (streaming) + publish"
out="$bin/results.txt"
ctl submit -cql 'SELECT symbol, price FROM Trades [Range 5 Minute] WHERE price > 100' \
  -node 3 -count 3 >"$out" 2>"$bin/submit.log" &
submit_pid=$!
# Wait until the subscription is live, then settle its propagation.
sub=""
for _ in $(seq 1 100); do
  if grep -q 'streaming results' "$bin/submit.log" 2>/dev/null; then sub=1; break; fi
  sleep 0.1
done
[ -n "$sub" ] || { echo "submit never started"; cat "$bin/submit.log"; exit 1; }
ctl quiesce >/dev/null

i=0
while kill -0 "$submit_pid" 2>/dev/null && [ "$i" -lt 50 ]; do
  ctl publish -stream Trades -ts $((i * 1000)) -values "ACME,$((200 + i))" >/dev/null
  i=$((i + 1))
done
wait "$submit_pid"
lines="$(wc -l <"$out")"
[ "$lines" -ge 3 ] || { echo "streamed $lines results, want >= 3"; cat "$out"; exit 1; }
grep -q 'ACME' "$out"
echo "streamed $lines results:"
cat "$out"

echo "== metrics endpoint (-metrics-addr)"
http_get "$maddr" /metrics >"$bin/metrics.json"
# The daemon has ingested the published trades: the live stats var must
# report a non-zero tuple count.
grep -Eq '"Ingested": *[1-9]' "$bin/metrics.json" \
  || { echo "metrics endpoint reports no ingested tuples"; cat "$bin/metrics.json"; exit 1; }
grep -q '"Stages"' "$bin/metrics.json" \
  || { echo "metrics endpoint missing stage series"; cat "$bin/metrics.json"; exit 1; }
http_get "$maddr" /debug/pprof/cmdline >"$bin/pprof.out"
grep -aq 'cosmosd' "$bin/pprof.out" \
  || { echo "pprof endpoint not responding"; cat "$bin/pprof.out"; exit 1; }
echo "metrics + pprof OK"

echo "== top (single frame)"
ctl top -n 1 -interval 0.2s >"$bin/top.txt"
grep -q '^STAGE' "$bin/top.txt" || { echo "top printed no stage table"; cat "$bin/top.txt"; exit 1; }
grep -q '^ingest' "$bin/top.txt" || { echo "top missing ingest stage"; cat "$bin/top.txt"; exit 1; }
cat "$bin/top.txt"

echo "== SIGKILL + restart survived by a -retry session"
out2="$bin/results2.txt"
ctl -retry submit -cql 'SELECT symbol, price FROM Trades [Range 5 Minute] WHERE price > 100' \
  -node 5 -count 6 >"$out2" 2>"$bin/submit2.log" &
retry_pid=$!
sub=""
for _ in $(seq 1 100); do
  if grep -q 'streaming results' "$bin/submit2.log" 2>/dev/null; then sub=1; break; fi
  sleep 0.1
done
[ -n "$sub" ] || { echo "retry submit never started"; cat "$bin/submit2.log"; exit 1; }
ctl quiesce >/dev/null
# Land a few results on the resilient subscription, then murder the
# daemon mid-stream — no drain, no goodbye.
i=0
while [ "$(wc -l <"$out2")" -lt 3 ] && [ "$i" -lt 50 ]; do
  ctl publish -stream Trades -ts $((100000 + i * 1000)) -values "ACME,$((300 + i))" >/dev/null
  i=$((i + 1))
done
[ "$(wc -l <"$out2")" -ge 3 ] || { echo "resilient submit streamed no results pre-kill"; cat "$bin/submit2.log"; exit 1; }
kill -9 "$daemon_pid"
wait "$daemon_pid" 2>/dev/null || true
"$bin/cosmosd" -listen "$addr" -nodes 32 -processors 2 -workers 2 -seed 1 \
  >"$bin/cosmosd2.log" 2>&1 &
daemon_pid=$!
up=""
for _ in $(seq 1 100); do
  if ctl stats >/dev/null 2>&1; then up=1; break; fi
  sleep 0.1
done
[ -n "$up" ] || { echo "restarted cosmosd never came up"; cat "$bin/cosmosd2.log"; exit 1; }
# The fresh daemon has an empty catalog: re-register, then keep
# publishing until the resumed subscription reaches its -count and the
# client exits 0 — proving the -retry session rode out the restart.
ctl register -stream 'Trades(symbol string, price float)' -rate 100 -node 1
i=0
while kill -0 "$retry_pid" 2>/dev/null && [ "$i" -lt 100 ]; do
  ctl publish -stream Trades -ts $((200000 + i * 1000)) -values "ACME,$((400 + i))" >/dev/null 2>&1 || true
  i=$((i + 1))
  sleep 0.1
done
wait "$retry_pid" || { echo "-retry submit exited non-zero"; cat "$bin/submit2.log"; exit 1; }
lines2="$(wc -l <"$out2")"
[ "$lines2" -ge 6 ] || { echo "resilient session streamed $lines2 results, want >= 6"; cat "$out2"; exit 1; }
grep -q 'gap\[' "$bin/submit2.log" || { echo "no gap reported across the restart"; cat "$bin/submit2.log"; exit 1; }
echo "resilient session survived the restart ($lines2 results):"
cat "$out2"

echo "== stats"
ctl stats | tee /dev/stderr | grep '^queries:' >/dev/null

echo "== graceful shutdown (SIGTERM)"
kill -TERM "$daemon_pid"
wait "$daemon_pid"
daemon_pid=""
grep -q 'bye' "$bin/cosmosd2.log" || { echo "daemon did not shut down gracefully"; cat "$bin/cosmosd2.log"; exit 1; }

echo "smoke OK"
