// Package cosmos is a Go implementation of COSMOS — the COoperative and
// Self-tuning Management Of Streaming data system of "Rethinking the
// Design of Distributed Stream Processing Systems" (Zhou, Aberer,
// Salehi, Tan; ICDE 2008).
//
// COSMOS routes high-rate data streams through a content-based network
// (CBN): sources publish named, schema'd streams without knowing their
// consumers; processors and users express data interest as profiles
// ⟨S, P, F⟩ — stream set, projection attributes, and filters — and the
// network filters and projects datagrams as early as possible. On top of
// that substrate, overlapping continuous queries are merged into
// representative queries executed once; the representative's result
// stream is split back into per-user results by re-tightening profiles
// inside the network.
//
// # Quick start
//
// The Client interface is the session surface — the same code drives a
// deployment embedded over the deterministic SimNet (Embed), embedded
// over the concurrent LiveNet (EmbedLive), or remote behind a cosmosd
// daemon (Dial):
//
//	sys, _ := cosmos.NewSystem(cosmos.Options{Nodes: 32, Seed: 1})
//	client := cosmos.Embed(sys) // or cosmos.EmbedLive(ls), cosmos.Dial(addr)
//	schema := cosmos.MustSchema("Trades",
//		cosmos.Field{Name: "symbol", Kind: cosmos.KindString},
//		cosmos.Field{Name: "price", Kind: cosmos.KindFloat},
//	)
//	src, _ := client.RegisterStream(&cosmos.StreamInfo{Schema: schema, Rate: 100}, 0)
//	sub, _ := client.Submit(ctx,
//		"SELECT symbol, price FROM Trades [Range 5 Minute] WHERE price > 100", 7)
//	src.Publish(cosmos.MustTuple(schema, 1,
//		cosmos.String("ACME"), cosmos.Float(101.5)))
//	for t := range sub.Results() { fmt.Println(t) }
//
// The underlying System/LiveSystem callback API (System.Submit) remains
// available for embedded deployments; SubmitFunc adapts the callback
// form onto any Client.
//
// The deeper machinery — the CQL-subset analyzer, continuous-query
// containment (Theorems 1–2 of the paper), the merging optimiser, the
// CBN broker protocol, the overlay optimiser, and the evaluation harness
// reproducing the paper's Figure 4 — lives in the internal packages and
// is exercised by the examples, the cmd tools and the benchmarks.
package cosmos

import (
	"cosmos/internal/core"
	"cosmos/internal/cql"
	"cosmos/internal/merge"
	"cosmos/internal/stream"
)

// System is an in-process COSMOS deployment: an overlay of brokers and
// processors connected by a content-based network.
type System = core.System

// LiveSystem is a System deployed over the concurrent goroutine-per-
// broker network, with processors publishing results directly into it.
type LiveSystem = core.LiveSystem

// Options configures NewSystem.
type Options = core.Options

// QueryHandle identifies a live continuous query and delivers results.
type QueryHandle = core.QueryHandle

// SourcePort publishes one registered source stream.
type SourcePort = core.SourcePort

// Processor is a COSMOS server with a stream processing engine.
type Processor = core.Processor

// Placement policies for the query-distribution (load management)
// service.
const (
	LeastLoaded   = core.LeastLoaded
	NearestToUser = core.NearestToUser
	RoundRobin    = core.RoundRobin
)

// MergeExactUnion and MergeConvexHull select how member predicates
// combine into representative queries.
const (
	MergeExactUnion = merge.ExactUnion
	MergeConvexHull = merge.ConvexHull
)

// Data model re-exports.
type (
	// Tuple is one timestamped element of a stream.
	Tuple = stream.Tuple
	// Schema is the ordered attribute list of a stream.
	Schema = stream.Schema
	// Field is one schema attribute.
	Field = stream.Field
	// Value is a dynamically typed attribute value.
	Value = stream.Value
	// StreamInfo is the catalog record of a stream: schema, rate, stats.
	StreamInfo = stream.Info
	// AttrStats summarises one attribute's value distribution.
	AttrStats = stream.AttrStats
	// Timestamp is an application timestamp in milliseconds.
	Timestamp = stream.Timestamp
	// Duration is a window length in milliseconds.
	Duration = stream.Duration
)

// Attribute kinds.
const (
	KindInt    = stream.KindInt
	KindFloat  = stream.KindFloat
	KindString = stream.KindString
	KindBool   = stream.KindBool
	KindTime   = stream.KindTime
)

// Window duration units and sentinels.
const (
	Millisecond = stream.Millisecond
	Second      = stream.Second
	Minute      = stream.Minute
	Hour        = stream.Hour
	Day         = stream.Day
	Now         = stream.Now
	Unbounded   = stream.Unbounded
)

// Value constructors.
var (
	// Int builds an integer value.
	Int = stream.Int
	// Float builds a float value.
	Float = stream.Float
	// String builds a string value.
	String = stream.String_
	// Bool builds a boolean value.
	Bool = stream.Bool
	// Time builds a timestamp value.
	Time = stream.Time
)

// NewSystem builds an in-process COSMOS deployment: a power-law overlay
// topology, an MST dissemination tree, the CBN, and the processors. The
// network is the deterministic single-threaded simulator (the paper's
// evaluation substrate); see NewLiveSystem for the concurrent transport.
func NewSystem(opts Options) (*System, error) { return core.NewSystem(opts) }

// NewLiveSystem builds the same deployment over the concurrent
// transport: one goroutine per broker, sharded execution runtimes on
// the processors (Options.ExecWorkers), and workers publishing results
// straight into the network — results reach subscribers while ingest
// continues. Per query, result sequences match the synchronous System.
// Call Close to release the network and runtime goroutines; Quiesce is
// a stabilisation barrier for tests and readouts, not a data-path step.
func NewLiveSystem(opts Options) (*LiveSystem, error) { return core.NewLiveSystem(opts) }

// NewSchema builds a stream schema, validating field names.
func NewSchema(streamName string, fields ...Field) (*Schema, error) {
	return stream.NewSchema(streamName, fields...)
}

// MustSchema is NewSchema that panics on error.
func MustSchema(streamName string, fields ...Field) *Schema {
	return stream.MustSchema(streamName, fields...)
}

// NewTuple builds a tuple, validating arity and kinds against the schema.
func NewTuple(s *Schema, ts Timestamp, values ...Value) (Tuple, error) {
	return stream.NewTuple(s, ts, values...)
}

// MustTuple is NewTuple that panics on error.
func MustTuple(s *Schema, ts Timestamp, values ...Value) Tuple {
	return stream.MustTuple(s, ts, values...)
}

// ParseQuery parses a CQL statement without binding it to a catalog;
// useful for validation. Explain additionally reports the parsed shape
// (streams, windows, select list).
func ParseQuery(text string) error {
	_, err := cql.Parse(text)
	return err
}
