package merge

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"cosmos/internal/containment"
	"cosmos/internal/cql"
	"cosmos/internal/stream"
)

func catalog() *stream.Registry {
	r := stream.NewRegistry()
	infos := []*stream.Info{
		{Schema: stream.MustSchema("OpenAuction",
			stream.Field{Name: "itemID", Kind: stream.KindInt},
			stream.Field{Name: "sellerID", Kind: stream.KindInt},
			stream.Field{Name: "start_price", Kind: stream.KindFloat},
			stream.Field{Name: "timestamp", Kind: stream.KindTime},
		), Rate: 50, Stats: map[string]stream.AttrStats{
			"itemID":      {Min: 0, Max: 10000, Distinct: 10000},
			"sellerID":    {Min: 0, Max: 500, Distinct: 500},
			"start_price": {Min: 0, Max: 1000, Distinct: 1000},
		}},
		{Schema: stream.MustSchema("ClosedAuction",
			stream.Field{Name: "itemID", Kind: stream.KindInt},
			stream.Field{Name: "buyerID", Kind: stream.KindInt},
			stream.Field{Name: "timestamp", Kind: stream.KindTime},
		), Rate: 30, Stats: map[string]stream.AttrStats{
			"itemID":  {Min: 0, Max: 10000, Distinct: 10000},
			"buyerID": {Min: 0, Max: 800, Distinct: 800},
		}},
		{Schema: stream.MustSchema("Sensor",
			stream.Field{Name: "station", Kind: stream.KindInt},
			stream.Field{Name: "temp", Kind: stream.KindFloat},
		), Rate: 10, Stats: map[string]stream.AttrStats{
			"station": {Min: 0, Max: 63, Distinct: 63},
			"temp":    {Min: -20, Max: 45, Distinct: 650},
		}},
	}
	for _, in := range infos {
		if err := r.Register(in); err != nil {
			panic(err)
		}
	}
	return r
}

func bind(t *testing.T, text string) *cql.Bound {
	t.Helper()
	b, err := cql.AnalyzeString(text, catalog())
	if err != nil {
		t.Fatalf("%s: %v", text, err)
	}
	return b
}

const (
	q1Text = `SELECT O.* FROM OpenAuction [Range 3 Hour] O, ClosedAuction [Now] C WHERE O.itemID = C.itemID`
	q2Text = `SELECT O.itemID, O.timestamp, C.buyerID, C.timestamp FROM OpenAuction [Range 5 Hour] O, ClosedAuction [Now] C WHERE O.itemID = C.itemID`
)

// TestPaperMergeQ1Q2 reproduces the paper's running example: merging q1
// and q2 yields a representative equivalent to q3 of Table 1.
func TestPaperMergeQ1Q2(t *testing.T) {
	q1, q2 := bind(t, q1Text), bind(t, q2Text)
	rep, err := Queries(q1, q2, ExactUnion)
	if err != nil {
		t.Fatal(err)
	}
	// Windows: O takes max(3h,5h)=5h, C stays Now.
	if rep.Windows["OpenAuction"] != 5*stream.Hour {
		t.Errorf("O window = %v", rep.Windows["OpenAuction"])
	}
	if rep.Windows["ClosedAuction"] != stream.Now {
		t.Errorf("C window = %v", rep.Windows["ClosedAuction"])
	}
	// Projection: O.* plus C.buyerID, C.timestamp — exactly q3's select
	// list from Table 1.
	want := []string{
		"ClosedAuction.buyerID", "ClosedAuction.timestamp",
		"OpenAuction.itemID", "OpenAuction.sellerID", "OpenAuction.start_price", "OpenAuction.timestamp",
	}
	var got []string
	for _, c := range rep.SelectCols {
		got = append(got, c.String())
	}
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Errorf("projection = %v, want %v", got, want)
	}
	// Containment: both members contained in the representative.
	if !containment.Contains(q1, rep) {
		t.Errorf("q1 not contained in rep: %v", containment.Explain(q1, rep))
	}
	if !containment.Contains(q2, rep) {
		t.Errorf("q2 not contained in rep: %v", containment.Explain(q2, rep))
	}
	// The representative exposes the OpenAuction input timestamp for
	// re-tightening; the [Now]-windowed ClosedAuction needs no hidden
	// column (its timestamp equals the result timestamp).
	if !rep.OutSchema.Has(cql.InputTsAttr("OpenAuction")) {
		t.Errorf("rep lacks OpenAuction.__ts: %v", rep.OutSchema.AttrNames())
	}
	if rep.OutSchema.Has(cql.InputTsAttr("ClosedAuction")) {
		t.Errorf("rep carries a redundant ClosedAuction.__ts: %v", rep.OutSchema.AttrNames())
	}
}

func TestMemberProfileReTightensWindow(t *testing.T) {
	q1, q2 := bind(t, q1Text), bind(t, q2Text)
	rep, err := Queries(q1, q2, ExactUnion)
	if err != nil {
		t.Fatal(err)
	}
	p1, err := BuildMemberProfile(q1, rep, "rep-result")
	if err != nil {
		t.Fatal(err)
	}
	// q1's O window (3h) is narrower than the rep's (5h): expect a
	// timestamp-difference constraint mentioning the hidden __ts attrs.
	f := p1.FilterFor("rep-result")
	if f.IsTrue() {
		t.Fatalf("p1 filter should re-tighten: %s", p1)
	}
	fs := f.String()
	// The ClosedAuction side is [Now]-windowed: its timestamp is the
	// result timestamp, addressed by the intrinsic __ts term.
	if !strings.Contains(fs, "__ts-OpenAuction.__ts") {
		t.Errorf("p1 filter = %s", fs)
	}
	// 3 hours in milliseconds.
	if !strings.Contains(fs, "<= 10800000") {
		t.Errorf("p1 window bound wrong: %s", fs)
	}

	// q2's windows equal the rep's: no re-tightening needed.
	p2, err := BuildMemberProfile(q2, rep, "rep-result")
	if err != nil {
		t.Fatal(err)
	}
	if !p2.FilterFor("rep-result").IsTrue() {
		t.Errorf("p2 filter should be TRUE: %s", p2)
	}
	// p2 projects exactly q2's four columns.
	if len(p2.AttrsFor("rep-result")) != 4 {
		t.Errorf("p2 attrs = %v", p2.AttrsFor("rep-result"))
	}
}

func TestMemberProfileReTightensSelection(t *testing.T) {
	a := bind(t, "SELECT itemID FROM OpenAuction [Now] WHERE start_price > 100")
	b := bind(t, "SELECT itemID FROM OpenAuction [Now] WHERE start_price > 10")
	rep, err := Queries(a, b, ExactUnion)
	if err != nil {
		t.Fatal(err)
	}
	// The rep must project start_price so members can re-filter.
	if !rep.OutSchema.Has("OpenAuction.start_price") {
		t.Fatalf("rep projection lacks filter attr: %v", rep.OutSchema.AttrNames())
	}
	pa, err := BuildMemberProfile(a, rep, "r")
	if err != nil {
		t.Fatal(err)
	}
	fs := pa.FilterFor("r").String()
	if !strings.Contains(fs, "OpenAuction.start_price > 100") {
		t.Errorf("member filter = %s", fs)
	}
	// Evaluate the member profile against result tuples.
	tp := stream.MustTuple(rep.OutSchema.Rename("r"), 0, stream.Int(1), stream.Float(50))
	ok, err := pa.Covers(tp)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("price 50 must not reach member a")
	}
	tp2 := stream.MustTuple(rep.OutSchema.Rename("r"), 0, stream.Int(1), stream.Float(500))
	if ok, _ := pa.Covers(tp2); !ok {
		t.Error("price 500 must reach member a")
	}
}

func TestMergeModesUnionVsHull(t *testing.T) {
	a := bind(t, "SELECT itemID FROM OpenAuction [Now] WHERE start_price > 900")
	b := bind(t, "SELECT itemID FROM OpenAuction [Now] WHERE start_price < 100")
	union, err := Queries(a, b, ExactUnion)
	if err != nil {
		t.Fatal(err)
	}
	hull, err := Queries(a, b, ConvexHull)
	if err != nil {
		t.Fatal(err)
	}
	selU := union.Sel["OpenAuction"]
	selH := hull.Sel["OpenAuction"]
	if len(selU) != 2 {
		t.Errorf("union sel = %s", selU)
	}
	// Hull of (>900) and (<100) drops to TRUE (no shared bounds).
	if !selH.IsTrue() && len(selH) != 1 {
		t.Errorf("hull sel = %s", selH)
	}
	// Both contain the members.
	for _, rep := range []*cql.Bound{union, hull} {
		if !containment.Contains(a, rep) || !containment.Contains(b, rep) {
			t.Errorf("rep does not contain members")
		}
	}
}

func TestMergeIncompatibleSignatures(t *testing.T) {
	a := bind(t, "SELECT itemID FROM OpenAuction [Now]")
	b := bind(t, "SELECT station FROM Sensor [Now]")
	if _, err := Queries(a, b, ExactUnion); err == nil {
		t.Error("different streams must not merge")
	}
}

func TestMergeAggregates(t *testing.T) {
	a := bind(t, "SELECT station, AVG(temp) FROM Sensor [Range 30 Minute] GROUP BY station")
	b := bind(t, "SELECT station, AVG(temp) FROM Sensor [Range 30 Minute] GROUP BY station")
	rep, err := Queries(a, b, ExactUnion)
	if err != nil {
		t.Fatalf("identical aggregates should merge: %v", err)
	}
	if !containment.Contains(a, rep) {
		t.Error("member not contained")
	}
	// Different windows cannot merge (Theorem 2).
	c := bind(t, "SELECT station, AVG(temp) FROM Sensor [Range 60 Minute] GROUP BY station")
	if _, err := Queries(a, c, ExactUnion); err == nil {
		t.Error("different aggregate windows must not merge")
	}
	// Different selections cannot merge.
	d := bind(t, "SELECT station, AVG(temp) FROM Sensor [Range 30 Minute] WHERE temp > 0 GROUP BY station")
	if _, err := Queries(a, d, ExactUnion); err == nil {
		t.Error("different aggregate selections must not merge")
	}
}

func TestAggregateMemberProfile(t *testing.T) {
	a := bind(t, "SELECT station, AVG(temp) FROM Sensor [Range 30 Minute] GROUP BY station")
	b := bind(t, "SELECT station, AVG(temp), COUNT(*) FROM Sensor [Range 30 Minute] GROUP BY station")
	// Same signature requires same agg set; a and b differ → no merge.
	if _, err := Queries(a, b, ExactUnion); err == nil {
		t.Error("different agg sets must not merge")
	}
	rep, err := Queries(a, a.Clone(), ExactUnion)
	if err != nil {
		t.Fatal(err)
	}
	p, err := BuildMemberProfile(a, rep, "agg-result")
	if err != nil {
		t.Fatal(err)
	}
	if !p.FilterFor("agg-result").IsTrue() {
		t.Error("aggregate member filter should be TRUE")
	}
	attrs := p.AttrsFor("agg-result")
	if strings.Join(attrs, ",") != "AVG(Sensor.temp),Sensor.station" {
		t.Errorf("attrs = %v", attrs)
	}
}

func TestOptimizerGroupsIdenticalQueries(t *testing.T) {
	o := NewOptimizer(Options{Mode: ExactUnion})
	q := "SELECT itemID FROM OpenAuction [Now] WHERE start_price > 500"
	var lastGroup *Group
	for i := 0; i < 5; i++ {
		p, err := o.Add(fmt.Sprintf("q%d", i), bind(t, q))
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 && !p.Created {
			t.Error("first query should open a group")
		}
		if i > 0 {
			if p.Created {
				t.Errorf("query %d should join the existing group", i)
			}
			if p.Benefit <= 0 {
				t.Errorf("identical query benefit = %f", p.Benefit)
			}
		}
		lastGroup = p.Group
	}
	if len(lastGroup.Members) != 5 {
		t.Errorf("members = %d", len(lastGroup.Members))
	}
	st := o.Stats()
	if st.Queries != 5 || st.Groups != 1 {
		t.Errorf("stats = %+v", st)
	}
	if st.GroupingRatio() != 0.2 {
		t.Errorf("grouping ratio = %f", st.GroupingRatio())
	}
	// Five identical queries delivered once. Members ship (itemID, ts) +
	// framing = 32 bytes; the representative additionally carries
	// start_price for re-tightening (40 bytes), so the saving is
	// 1 − 40/(5·32) = 0.75.
	if r := st.RateBenefitRatio(); r < 0.74 || r > 0.76 {
		t.Errorf("rate benefit ratio = %f", r)
	}
}

func TestOptimizerSeparatesDisjointQueries(t *testing.T) {
	o := NewOptimizer(Options{Mode: ExactUnion})
	if _, err := o.Add("a", bind(t, "SELECT itemID FROM OpenAuction [Now]")); err != nil {
		t.Fatal(err)
	}
	p, err := o.Add("b", bind(t, "SELECT station FROM Sensor [Now]"))
	if err != nil {
		t.Fatal(err)
	}
	if !p.Created {
		t.Error("different signature should open a new group")
	}
	st := o.Stats()
	if st.Groups != 2 {
		t.Errorf("groups = %d", st.Groups)
	}
}

func TestOptimizerRemove(t *testing.T) {
	o := NewOptimizer(Options{Mode: ExactUnion})
	qa := "SELECT itemID FROM OpenAuction [Now] WHERE start_price > 500"
	qb := "SELECT itemID FROM OpenAuction [Now] WHERE start_price > 100"
	if _, err := o.Add("a", bind(t, qa)); err != nil {
		t.Fatal(err)
	}
	pb, err := o.Add("b", bind(t, qb))
	if err != nil {
		t.Fatal(err)
	}
	if pb.Created {
		t.Fatal("b should merge with a")
	}
	g, ok := o.Remove("b")
	if !ok || g == nil {
		t.Fatalf("remove = %v, %v", g, ok)
	}
	// Representative shrinks back to a's own predicate.
	fs := g.Rep.Sel["OpenAuction"].String()
	if !strings.Contains(fs, "> 500") || strings.Contains(fs, "> 100") {
		t.Errorf("rebuilt rep sel = %s", fs)
	}
	// Removing the last member drops the group.
	g2, ok := o.Remove("a")
	if !ok || g2 != nil {
		t.Errorf("final remove = %v, %v", g2, ok)
	}
	if st := o.Stats(); st.Queries != 0 || st.Groups != 0 {
		t.Errorf("stats after removes = %+v", st)
	}
	if _, ok := o.Remove("nope"); ok {
		t.Error("removing unknown tag should report false")
	}
}

func TestOptimizerMinBenefit(t *testing.T) {
	// With a huge MinBenefit nothing ever merges.
	o := NewOptimizer(Options{Mode: ExactUnion, MinBenefit: 1e12})
	o.Add("a", bind(t, "SELECT itemID FROM OpenAuction [Now]"))
	p, _ := o.Add("b", bind(t, "SELECT itemID FROM OpenAuction [Now]"))
	if !p.Created {
		t.Error("MinBenefit should prevent merging")
	}
}

func TestOptimizerMaxCandidates(t *testing.T) {
	o := NewOptimizer(Options{Mode: ExactUnion, MaxCandidates: 1})
	// Three disjoint-ish selections on the same stream open groups; with
	// MaxCandidates=1 only the most recent group is considered.
	o.Add("a", bind(t, "SELECT itemID FROM OpenAuction [Now] WHERE sellerID = 1"))
	o.Add("b", bind(t, "SELECT itemID FROM OpenAuction [Now] WHERE sellerID = 2"))
	// Identical to "a" but the candidate scan only sees b's group; the
	// merge with b's group still succeeds (union mode) if beneficial,
	// otherwise a new group opens. Either way, no panic and stats are
	// consistent.
	o.Add("c", bind(t, "SELECT itemID FROM OpenAuction [Now] WHERE sellerID = 1"))
	st := o.Stats()
	if st.Queries != 3 {
		t.Errorf("queries = %d", st.Queries)
	}
}

func TestOptimizerDuplicateTag(t *testing.T) {
	o := NewOptimizer(Options{})
	if _, err := o.Add("x", bind(t, "SELECT itemID FROM OpenAuction [Now]")); err != nil {
		t.Fatal(err)
	}
	if _, err := o.Add("x", bind(t, "SELECT itemID FROM OpenAuction [Now]")); err == nil {
		t.Error("duplicate tag should error")
	}
}

// TestMergeContainmentProperty: representatives contain their members for
// randomly generated single-stream queries, in both modes.
func TestMergeContainmentProperty(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	windows := []string{"[Now]", "[Range 10 Minute]", "[Range 1 Hour]", "[Range 5 Hour]"}
	genQuery := func() string {
		w := windows[r.Intn(len(windows))]
		lo := r.Intn(900)
		hi := lo + 1 + r.Intn(1000-lo)
		return fmt.Sprintf(
			"SELECT itemID FROM OpenAuction %s WHERE start_price >= %d AND start_price <= %d", w, lo, hi)
	}
	for _, mode := range []Mode{ExactUnion, ConvexHull} {
		for i := 0; i < 200; i++ {
			a, b := bind(t, genQuery()), bind(t, genQuery())
			rep, err := Queries(a, b, mode)
			if err != nil {
				t.Fatal(err)
			}
			if !containment.Contains(a, rep) || !containment.Contains(b, rep) {
				t.Fatalf("mode %v: rep %s does not contain members %s / %s",
					mode, rep.SynthesizeCQL(), a.Raw, b.Raw)
			}
		}
	}
}

// TestMergeAssociativityOfAttrs: merging q1,q2 then q3 produces a rep
// whose projection covers every member's filter attrs, regardless of
// order.
func TestMergeAttrAccumulation(t *testing.T) {
	a := bind(t, "SELECT itemID FROM OpenAuction [Now] WHERE start_price > 100")
	b := bind(t, "SELECT itemID FROM OpenAuction [Now] WHERE sellerID = 3")
	c := bind(t, "SELECT timestamp FROM OpenAuction [Now]")
	rep12, err := Queries(a, b, ExactUnion)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Queries(rep12, c, ExactUnion)
	if err != nil {
		t.Fatal(err)
	}
	for _, attr := range []string{"OpenAuction.start_price", "OpenAuction.sellerID", "OpenAuction.itemID", "OpenAuction.timestamp"} {
		if !rep.OutSchema.Has(attr) {
			t.Errorf("rep lacks %s: %v", attr, rep.OutSchema.AttrNames())
		}
	}
	for _, m := range []*cql.Bound{a, b, c} {
		if _, err := BuildMemberProfile(m, rep, "r"); err != nil {
			t.Errorf("member profile: %v", err)
		}
	}
}

func TestSynthesizeCQLRoundTrip(t *testing.T) {
	q1, q2 := bind(t, q1Text), bind(t, q2Text)
	rep, err := Queries(q1, q2, ExactUnion)
	if err != nil {
		t.Fatal(err)
	}
	text := rep.SynthesizeCQL()
	// The synthesized representative (modulo hidden __ts columns, which
	// are added by IncludeInputTs at execution time) must reparse.
	if _, err := cql.AnalyzeString(text, catalog()); err != nil {
		t.Errorf("synthesized CQL does not reparse: %v\n%s", err, text)
	}
}
