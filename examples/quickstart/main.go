// Quickstart: publish a stream into COSMOS and run a continuous query
// against it through the public API.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"cosmos"
)

func main() {
	// A small overlay: 32 brokers, one of them a processor.
	sys, err := cosmos.NewSystem(cosmos.Options{Nodes: 32, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}

	// Describe and register a source stream at node 0. The schema floods
	// the catalogue; the stream is advertised through the content-based
	// network so nobody needs to know who consumes it.
	trades := cosmos.MustSchema("Trades",
		cosmos.Field{Name: "symbol", Kind: cosmos.KindString},
		cosmos.Field{Name: "price", Kind: cosmos.KindFloat},
		cosmos.Field{Name: "size", Kind: cosmos.KindInt},
	)
	src, err := sys.RegisterStream(&cosmos.StreamInfo{
		Schema: trades,
		Rate:   100,
		Stats: map[string]cosmos.AttrStats{
			"price": {Min: 0, Max: 1000, Distinct: 10000},
		},
	}, 0)
	if err != nil {
		log.Fatal(err)
	}

	// A user at node 7 asks for large trades over a 5-minute window.
	// Results arrive on the callback with the query's own schema.
	h, err := sys.Submit(
		"SELECT symbol, price FROM Trades [Range 5 Minute] WHERE price > 100 AND size >= 10",
		7,
		func(t cosmos.Tuple) {
			fmt.Printf("  result: %s @%d price=%v\n",
				t.MustGet("Trades.symbol").AsString(), t.Ts, t.MustGet("Trades.price"))
		})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("query %s running on processor %d\n", h.Tag, h.Processor().ID)

	// Publish a handful of trades.
	pub := func(ts cosmos.Timestamp, sym string, price float64, size int64) {
		err := src.Publish(cosmos.MustTuple(trades, ts,
			cosmos.String(sym), cosmos.Float(price), cosmos.Int(size)))
		if err != nil {
			log.Fatal(err)
		}
	}
	fmt.Println("publishing trades:")
	pub(1000, "ACME", 101.50, 20) // matches
	pub(2000, "ACME", 99.10, 50)  // price too low
	pub(3000, "GOPH", 250.00, 5)  // size too small
	pub(4000, "GOPH", 251.25, 12) // matches

	// The data layer only moved tuples that someone downstream wanted.
	fmt.Printf("total data moved across overlay links: %d bytes\n", sys.TotalDataBytes())

	if err := sys.Cancel(h); err != nil {
		log.Fatal(err)
	}
	fmt.Println("query cancelled; done")
}
